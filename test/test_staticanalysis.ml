(* lib/staticanalysis: the fixpoint engine's convergence contract, the
   stack-discipline pass's ability to catch a seeded pivot bug, translation
   validation on directly-lowered regions, and stealth/pool-bloat smoke. *)

open Minic.Ast
module FP = Staticanalysis.Fixpoint
module SD = Staticanalysis.Stackdisc
module TV = Staticanalysis.Transval
module F = Verify.Finding

(* --- fixpoint engine ------------------------------------------------------ *)

(* Unbounded counter over a 2-node cycle: join climbs forever, so
   convergence is entirely the widening operator's doing. *)
module Count = struct
  type t = Bounded of int | Inf
  let equal = ( = )
  let join a b =
    match (a, b) with
    | Inf, _ | _, Inf -> Inf
    | Bounded x, Bounded y -> Bounded (max x y)
  let widen old joined = if equal old joined then old else Inf
end

module CFP = FP.Make (FP.Int_node) (Count)

let cycle_transfer n st =
  let st' =
    match st with Count.Inf -> Count.Inf | Count.Bounded k -> Count.Bounded (k + 1)
  in
  [ ((n + 1) mod 2, st') ]

let test_widening_terminates () =
  let res =
    CFP.solve ~entries:[ (0, Count.Bounded 0) ] ~transfer:cycle_transfer ()
  in
  Alcotest.(check int) "both nodes reached" 2 res.CFP.stats.FP.nodes;
  Alcotest.(check bool) "widening fired" true (res.CFP.stats.FP.widenings > 0);
  Alcotest.(check bool) "cycle stabilized at top" true
    (CFP.H.find_opt res.CFP.state 0 = Some Count.Inf
     && CFP.H.find_opt res.CFP.state 1 = Some Count.Inf)

(* A broken widening (identity) must surface as the typed Divergence error
   via the max_steps backstop, never as a hang. *)
module Noisy = struct
  type t = int
  let equal = Int.equal
  let join = max
  let widen _old joined = joined     (* deliberately does not stabilize *)
end

module NFP = FP.Make (FP.Int_node) (Noisy)

let test_divergence_backstop () =
  match
    NFP.solve ~widen_after:4 ~max_steps:100 ~entries:[ (0, 0) ]
      ~transfer:(fun n st -> [ ((n + 1) mod 2, st + 1) ])
      ()
  with
  | _ -> Alcotest.fail "expected Divergence"
  | exception FP.Divergence msg ->
    Alcotest.(check bool) "message names the backstop" true
      (String.length msg > 0)

(* --- stack discipline ----------------------------------------------------- *)

let fact_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "fact"
        [ set "r" (c 1);
          For (set "i" (c 1), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "r" (Bin (Mul, v "r", v "i")) ]);
          Return (v "r") ] ]

let rewrite ?(config = Ropc.Config.rop_k ~seed:3 1.0) () =
  let img = Minic.Codegen.compile fact_prog in
  let r = Ropc.Rewriter.rewrite img ~functions:[ "fact" ] ~config in
  (img, r)

let test_clean_chain_passes () =
  let _, r = rewrite () in
  let findings, stats = SD.chain_pass r.Ropc.Rewriter.audit in
  Alcotest.(check int) "no errors on a clean rewrite" 0
    (List.length (F.errors findings));
  (* the solver actually visited the chain *)
  List.iter
    (fun (_, s) -> Alcotest.(check bool) "nodes visited" true (s.FP.nodes > 0))
    stats

(* The seeded bug: debug_unbalanced_epilogue skews the epilogue's virtual
   stack by one slot.  ropcheck's linear walk does not model the unswitch
   arithmetic; the interprocedural height analysis must flag it. *)
let test_injected_unbalance_caught () =
  let config =
    { (Ropc.Config.rop_k ~seed:3 1.0) with
      Ropc.Config.debug_unbalanced_epilogue = true }
  in
  let _, r = rewrite ~config () in
  let findings, _ = SD.chain_pass r.Ropc.Rewriter.audit in
  let tags = List.map (fun f -> f.F.tag) (F.errors findings) in
  Alcotest.(check bool) "chain-unswitch-unbalanced reported" true
    (List.mem "chain-unswitch-unbalanced" tags)

(* --- translation validation ----------------------------------------------- *)

let test_transval_proves_fact () =
  (* k = 0.25 leaves most points directly lowered; k = 1.0 would shield
     every one behind a P3 loop and (correctly) skip them all *)
  let orig, r = rewrite ~config:(Ropc.Config.rop_k ~seed:3 0.25) () in
  let tv =
    TV.run ~orig ~rewritten:r.Ropc.Rewriter.image r.Ropc.Rewriter.audit
  in
  Alcotest.(check bool) "proved at least one region" true (tv.TV.tv_proven > 0);
  Alcotest.(check int) "no unproven regions" 0 tv.TV.tv_unproven;
  Alcotest.(check int) "no findings" 0 (List.length tv.TV.tv_findings);
  (* every region is accounted for: proven or skipped-with-reason *)
  List.iter
    (fun (_, _, reason) ->
       Alcotest.(check bool) "skip has a reason" true (String.length reason > 0))
    tv.TV.tv_skipped

(* Instruction hiding at k = 1.0 shields every point behind a P3 loop, but
   the hidden-payload regions are real lowered code and must still be
   validated — the +ih audit converts would-be skips into proven regions. *)
let test_transval_proves_hidden () =
  let orig, r = rewrite ~config:(Ropc.Config.rop_k ~seed:3 ~hiding:true 1.0) () in
  let tv =
    TV.run ~orig ~rewritten:r.Ropc.Rewriter.image r.Ropc.Rewriter.audit
  in
  Alcotest.(check bool) "proved hidden-payload regions" true (tv.TV.tv_proven > 0);
  Alcotest.(check int) "no unproven regions" 0 tv.TV.tv_unproven;
  Alcotest.(check int) "no findings" 0 (List.length tv.TV.tv_findings)

(* The seeded hidden-payload bug: a stray register write smuggled into one
   payload.  The differential runs cannot see it unless the register is
   observed downstream, but translation validation compares full final
   states and must refuse to prove the region. *)
let test_injected_hidden_caught () =
  let config =
    { (Ropc.Config.rop_k ~seed:3 ~hiding:true 1.0) with
      Ropc.Config.debug_hidden_payload = true }
  in
  let orig, r = rewrite ~config () in
  let tv =
    TV.run ~orig ~rewritten:r.Ropc.Rewriter.image r.Ropc.Rewriter.audit
  in
  let tags = List.map (fun f -> f.F.tag) tv.TV.tv_findings in
  Alcotest.(check bool) "transval-mismatch reported" true
    (List.mem "transval-mismatch" tags)

(* --- stealth + pool bloat ------------------------------------------------- *)

let test_stealth_smoke () =
  let _, r = rewrite () in
  let st =
    Staticanalysis.Stealth.run ~rewritten:r.Ropc.Rewriter.image
      r.Ropc.Rewriter.audit
  in
  List.iter
    (fun fs ->
       let s = fs.Staticanalysis.Stealth.fs_score in
       Alcotest.(check bool) "score in [0,100]" true (s >= 0. && s <= 100.))
    st.Staticanalysis.Stealth.sl_funcs;
  Alcotest.(check bool) "rewritten fact scored" true
    (List.exists
       (fun fs -> fs.Staticanalysis.Stealth.fs_name = "fact")
       st.Staticanalysis.Stealth.sl_funcs)

(* Stealth recalibration for the opaque layer: residuals are plain data
   words and the dispatch trampoline is one more pool pointer, so the
   opaque chain must never look MORE like an injected ROP payload than the
   literal chain it replaces — and both must stay below the warning
   threshold on today's corpus shapes. *)
let test_stealth_opaque_vs_literal () =
  let score config =
    let _, r = rewrite ~config () in
    let st =
      Staticanalysis.Stealth.run ~rewritten:r.Ropc.Rewriter.image
        r.Ropc.Rewriter.audit
    in
    match
      List.find_opt
        (fun fs -> fs.Staticanalysis.Stealth.fs_name = "fact")
        st.Staticanalysis.Stealth.sl_funcs
    with
    | Some fs ->
      (fs.Staticanalysis.Stealth.fs_score,
       fs.Staticanalysis.Stealth.fs_slot_frac)
    | None -> Alcotest.fail "fact not scored"
  in
  let lit_score, lit_slot = score (Ropc.Config.rop_k ~seed:3 1.0) in
  let opq_score, opq_slot =
    score (Ropc.Config.rop_k ~seed:3 ~opaque:true 1.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "opaque slot_frac %.3f <= literal %.3f" opq_slot lit_slot)
    true (opq_slot <= lit_slot +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "opaque score %.1f <= literal %.1f" opq_score lit_score)
    true (opq_score <= lit_score +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "opaque score %.1f below warning threshold" opq_score)
    true (opq_score < Staticanalysis.Stealth.warning_threshold)

let test_poolbloat_smoke () =
  let _, r = rewrite () in
  let pb = Staticanalysis.Poolbloat.run r.Ropc.Rewriter.audit in
  let open Staticanalysis.Poolbloat in
  Alcotest.(check bool) "pool has gadgets" true (pb.pb_total > 0);
  Alcotest.(check bool) "referenced <= total" true
    (pb.pb_referenced <= pb.pb_total);
  Alcotest.(check bool) "live bytes within pool" true
    (pb.pb_live_bytes <= pb.pb_pool_bytes)

(* --- driver --------------------------------------------------------------- *)

let test_driver_end_to_end () =
  let orig, r = rewrite () in
  let report =
    Staticanalysis.Driver.lint ~orig ~rewritten:r.Ropc.Rewriter.image
      r.Ropc.Rewriter.audit
  in
  Alcotest.(check int) "no errors" 0
    (List.length (F.errors report.Staticanalysis.Driver.r_findings));
  let passes =
    List.map
      (fun t -> t.Staticanalysis.Driver.t_pass)
      report.Staticanalysis.Driver.r_timings
  in
  Alcotest.(check (list string)) "all four passes timed"
    [ "stackdisc"; "transval"; "stealth"; "poolbloat" ] passes

let () =
  Alcotest.run "staticanalysis"
    [ ("fixpoint",
       [ Alcotest.test_case "widening terminates a counter cycle" `Quick
           test_widening_terminates;
         Alcotest.test_case "broken widening raises Divergence" `Quick
           test_divergence_backstop ]);
      ("stackdisc",
       [ Alcotest.test_case "clean chain has no errors" `Quick
           test_clean_chain_passes;
         Alcotest.test_case "seeded unbalanced epilogue caught" `Quick
           test_injected_unbalance_caught ]);
      ("transval",
       [ Alcotest.test_case "fact regions proven" `Quick
           test_transval_proves_fact;
         Alcotest.test_case "hidden-payload regions proven" `Quick
           test_transval_proves_hidden;
         Alcotest.test_case "seeded hidden payload caught" `Quick
           test_injected_hidden_caught ]);
      ("stealth",
       [ Alcotest.test_case "scores bounded" `Quick test_stealth_smoke;
         Alcotest.test_case "opaque chains score no worse than literal" `Quick
           test_stealth_opaque_vs_literal ]);
      ("poolbloat",
       [ Alcotest.test_case "accounting invariants" `Quick
           test_poolbloat_smoke ]);
      ("driver",
       [ Alcotest.test_case "end to end on fact" `Quick
           test_driver_end_to_end ]) ]
