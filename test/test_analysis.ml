(* Tests for CFG reconstruction and liveness on compiler output. *)

open Minic.Ast

let fact_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "fact"
        [ set "r" (c 1);
          For (set "i" (c 1), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "r" (Bin (Mul, v "r", v "i")) ]);
          Return (v "r") ] ]

let switch_prog =
  program
    [ func ~params:[ "n" ] "classify"
        [ Switch (v "n",
                  [ (0, [ Return (c 100) ]); (1, [ Return (c 101) ]);
                    (2, [ Return (c 102) ]); (3, [ Return (c 103) ]);
                    (4, [ Return (c 104) ]); (6, [ Return (c 106) ]) ],
                  [ Return (c (-1)) ]) ] ]

let test_cfg_fact () =
  let img = Minic.Codegen.compile fact_prog in
  let cfg = Analysis.Cfg.of_image img "fact" in
  Alcotest.(check bool) "not failed" false cfg.Analysis.Cfg.failed;
  Alcotest.(check bool) "several blocks" true (List.length cfg.Analysis.Cfg.order >= 3);
  (* entry block exists and every successor is a known block *)
  List.iter
    (fun a ->
       let b = Analysis.Cfg.block_exn cfg a in
       List.iter
         (fun s -> ignore (Analysis.Cfg.block_exn cfg s))
         (Analysis.Cfg.successors b))
    cfg.Analysis.Cfg.order;
  (* exactly one ret block for this function *)
  let rets =
    List.filter
      (fun a ->
         match (Analysis.Cfg.block_exn cfg a).Analysis.Cfg.b_term with
         | Analysis.Cfg.T_ret -> true
         | _ -> false)
      cfg.Analysis.Cfg.order
  in
  Alcotest.(check bool) "has ret block" true (List.length rets >= 1)

let test_cfg_switch_table () =
  let img = Minic.Codegen.compile switch_prog in
  let cfg = Analysis.Cfg.of_image img "classify" in
  Alcotest.(check bool) "not failed" false cfg.Analysis.Cfg.failed;
  let tables =
    List.filter_map
      (fun a ->
         match (Analysis.Cfg.block_exn cfg a).Analysis.Cfg.b_term with
         | Analysis.Cfg.T_jmp_table { entries; _ } -> Some (List.length entries)
         | _ -> None)
      cfg.Analysis.Cfg.order
  in
  match tables with
  | [ n ] ->
    (* cases 0..6 -> 7 table entries *)
    Alcotest.(check int) "table entries" 7 n
  | _ -> Alcotest.failf "expected exactly one jump table, found %d" (List.length tables)

let test_liveness_flags () =
  let img = Minic.Codegen.compile fact_prog in
  let cfg = Analysis.Cfg.of_image img "fact" in
  let live = Analysis.Liveness.compute cfg in
  (* find a cmp/test instruction whose block ends with jcc: flags must be
     live after it *)
  let found = ref false in
  List.iter
    (fun a ->
       let b = Analysis.Cfg.block_exn cfg a in
       match b.Analysis.Cfg.b_term with
       | Analysis.Cfg.T_jcc _ ->
         (match List.rev b.Analysis.Cfg.b_instrs with
          | last :: _ ->
            if Analysis.Reguse.clobbers_flags last.Analysis.Cfg.instr then begin
              found := true;
              Alcotest.(check bool) "flags live after test"
                true (Analysis.Liveness.flags_live_after live last.Analysis.Cfg.addr)
            end
          | [] -> ())
       | _ -> ())
    cfg.Analysis.Cfg.order;
  Alcotest.(check bool) "found a flag-setting instr before jcc" true !found

let test_liveness_param () =
  (* at entry, the parameter register RDI must be live *)
  let img = Minic.Codegen.compile fact_prog in
  let cfg = Analysis.Cfg.of_image img "fact" in
  let live = Analysis.Liveness.compute cfg in
  let entry_block = Analysis.Cfg.block_exn cfg cfg.Analysis.Cfg.entry in
  match entry_block.Analysis.Cfg.b_instrs with
  | first :: _ ->
    let out = Analysis.Liveness.live_out_at live first.Analysis.Cfg.addr in
    (* after 'push rbp', rdi (param n) still live *)
    Alcotest.(check bool) "rdi live at entry" true
      (Analysis.Regset.mem_reg out X86.Isa.RDI)
  | [] -> Alcotest.fail "empty entry block"

(* --- hand-built fixtures -------------------------------------------------- *)

(* Tiny raw-assembly functions make the expected live sets checkable by eye,
   unlike compiler output where the answer depends on codegen choices. *)

let link_fn name items =
  Asm.link { Asm.u_functions = [ (name, items) ]; Asm.u_data = [] }

(* Address of the first instruction in the function satisfying [p]. *)
let find_instr cfg p =
  let found = ref None in
  List.iter
    (fun a ->
       let b = Analysis.Cfg.block_exn cfg a in
       List.iter
         (fun (bi : Analysis.Cfg.binstr) ->
            if !found = None && p bi.Analysis.Cfg.instr then
              found := Some bi.Analysis.Cfg.addr)
         b.Analysis.Cfg.b_instrs)
    cfg.Analysis.Cfg.order;
  match !found with
  | Some a -> a
  | None -> Alcotest.fail "fixture instruction not found"

(* cmp feeding a jcc: flags live exactly between them, dead past the join *)
let test_fixture_jcc_flags () =
  let open X86.Isa in
  let img =
    link_fn "f"
      [ Asm.Ins (Alu (Cmp, W64, Reg RDI, Imm 5L));
        Asm.Jcc_l (E, "yes");
        Asm.Ins (Mov (W64, Reg RAX, Imm 1L));
        Asm.Ins Ret;
        Asm.Label "yes";
        Asm.Ins (Mov (W64, Reg RAX, Imm 2L));
        Asm.Ins Ret ]
  in
  let cfg = Analysis.Cfg.of_image img "f" in
  Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed;
  let live = Analysis.Liveness.compute cfg in
  let cmp_addr =
    find_instr cfg (function Alu (Cmp, _, _, _) -> true | _ -> false)
  in
  let mov1_addr =
    find_instr cfg (function Mov (_, _, Imm 1L) -> true | _ -> false)
  in
  Alcotest.(check bool) "flags live after cmp" true
    (Analysis.Liveness.flags_live_after live cmp_addr);
  Alcotest.(check bool) "flags dead past the branch" false
    (Analysis.Liveness.flags_live_after live mov1_addr);
  (* rdi fed the cmp; once both arms only return constants it is dead *)
  Alcotest.(check bool) "rdi dead in ret arm" false
    (Analysis.Regset.mem_reg
       (Analysis.Liveness.live_out_at live mov1_addr) X86.Isa.RDI)

(* a jump out of the function is a tail call: argument registers must be
   treated as live at it, unlike at a plain ret *)
let test_fixture_tail_args () =
  let open X86.Isa in
  let img =
    link_fn "caller"
      [ Asm.Ins (Mov (W64, Reg RDI, Imm 7L));
        Asm.Ins (Mov (W64, Reg RAX, Imm 0L));
        (* out-of-bounds rel32: classified T_tail, target irrelevant *)
        Asm.Ins (Jmp (J_rel 0x100)) ]
  in
  let cfg = Analysis.Cfg.of_image img "caller" in
  Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed;
  let live = Analysis.Liveness.compute cfg in
  let mov_rdi =
    find_instr cfg
      (function Mov (_, Reg RDI, _) -> true | _ -> false)
  in
  Alcotest.(check bool) "rdi (arg) live through the tail call" true
    (Analysis.Regset.mem_reg
       (Analysis.Liveness.live_out_at live mov_rdi) X86.Isa.RDI)

(* a register read only inside the loop body must stay live across the
   back edge: one forward sweep gets this wrong, the fixpoint does not *)
let test_fixture_loop_backedge () =
  let open X86.Isa in
  let img =
    link_fn "loopf"
      [ Asm.Ins (Mov (W64, Reg RAX, Imm 0L));
        Asm.Label "head";
        Asm.Ins (Alu (Add, W64, Reg RAX, Reg RDI));
        Asm.Ins (Unary (Dec, W64, Reg RCX));
        Asm.Jcc_l (NE, "head");
        Asm.Ins Ret ]
  in
  let cfg = Analysis.Cfg.of_image img "loopf" in
  Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed;
  let live = Analysis.Liveness.compute cfg in
  let dec_addr =
    find_instr cfg (function Unary (Dec, _, _) -> true | _ -> false)
  in
  let out = Analysis.Liveness.live_out_at live dec_addr in
  (* rdi is only read at the top of the loop: it reaches the bottom's
     live-out exclusively around the back edge *)
  Alcotest.(check bool) "rdi live around back edge" true
    (Analysis.Regset.mem_reg out X86.Isa.RDI);
  Alcotest.(check bool) "rcx live around back edge" true
    (Analysis.Regset.mem_reg out X86.Isa.RCX);
  Alcotest.(check bool) "flags live into jcc" true
    (Analysis.Liveness.flags_live_after live dec_addr);
  (* and the loop-carried uses propagate to the function entry *)
  let entry_mov =
    find_instr cfg (function Mov (_, Reg RAX, _) -> true | _ -> false)
  in
  Alcotest.(check bool) "rdi live at entry" true
    (Analysis.Regset.mem_reg
       (Analysis.Liveness.live_out_at live entry_mov) X86.Isa.RDI)

(* a jump-table case with no terminator falls through into the next case:
   the fall-through block is reachable both through the table and linearly,
   and the fixpoint must merge the two flows at it *)
let test_fixture_table_fallthrough () =
  let open X86.Isa in
  let img =
    link_fn "jt"
      [ Asm.Ins (Alu (Cmp, W64, Reg RDI, Imm 2L));
        Asm.Jcc_l (A, "default");
        Asm.Lea_l (RSI, "table");
        Asm.Ins
          (Mov (W64, Reg RSI,
                Mem { base = Some RSI; index = Some (RDI, 8); disp = 0L }));
        Asm.Ins (Jmp (J_op (Reg RSI)));
        Asm.Label "table";
        Asm.Quad_l "case0";
        Asm.Quad_l "case1";
        Asm.Quad_l "case2";
        Asm.Label "case0";
        Asm.Ins (Mov (W64, Reg RAX, Imm 10L));
        (* deliberately no jump: falls through into case1 *)
        Asm.Label "case1";
        Asm.Ins (Alu (Add, W64, Reg RAX, Imm 1L));
        Asm.Ins Ret;
        Asm.Label "case2";
        Asm.Ins (Mov (W64, Reg RAX, Imm 30L));
        Asm.Ins Ret;
        Asm.Label "default";
        Asm.Ins (Mov (W64, Reg RAX, Imm 0L));
        Asm.Ins Ret ]
  in
  let cfg = Analysis.Cfg.of_image img "jt" in
  Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed;
  let entries =
    List.find_map
      (fun a ->
         match (Analysis.Cfg.block_exn cfg a).Analysis.Cfg.b_term with
         | Analysis.Cfg.T_jmp_table { entries; _ } -> Some entries
         | _ -> None)
      cfg.Analysis.Cfg.order
  in
  match entries with
  | Some [ a0; a1; _a2 ] ->
    (* case0 must end in a fall edge into case1, which is itself a table
       target: two distinct predecessors kinds for one block *)
    (match (Analysis.Cfg.block_exn cfg a0).Analysis.Cfg.b_term with
     | Analysis.Cfg.T_fall t ->
       Alcotest.(check int64) "falls into case1" a1 t
     | _ -> Alcotest.fail "case0 should fall through");
    (* liveness still converges over the merged flows *)
    let live = Analysis.Liveness.compute cfg in
    let mov10 =
      find_instr cfg (function Mov (_, _, Imm 10L) -> true | _ -> false)
    in
    (* rax written in case0 is read by case1's add: live across the fall *)
    Alcotest.(check bool) "rax live across fall edge" true
      (Analysis.Regset.mem_reg
         (Analysis.Liveness.live_out_at live mov10) X86.Isa.RAX)
  | Some es -> Alcotest.failf "expected 3 table entries, got %d" (List.length es)
  | None -> Alcotest.fail "no jump table recognized"

(* a direct jump into the immediate payload of a wide mov: the decoder keeps
   both decodings, yielding physically overlapping blocks at unaligned
   addresses — the same shape gadget confusion relies on (§V-D) *)
let test_fixture_overlapping_blocks () =
  let open X86.Isa in
  (* imm32 bytes [0x01; 0x02; 0x00; 0x00] decode as nop; ret at +3 *)
  let mov = Mov (W64, Reg RAX, Imm 0x201L) in
  let mov_len = Bytes.length (X86.Encode.encode mov) in
  let img =
    (* jmp rel targets mov_start+3, i.e. the imm payload *)
    link_fn "ov" [ Asm.Ins mov; Asm.Ins (Jmp (J_rel (3 - (mov_len + 5)))) ]
  in
  let cfg = Analysis.Cfg.of_image img "ov" in
  Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed;
  let entry = cfg.Analysis.Cfg.entry in
  let inner = Int64.add entry 3L in
  let b_entry = Analysis.Cfg.block_exn cfg entry in
  let b_inner = Analysis.Cfg.block_exn cfg inner in
  (* the inner block starts strictly inside the entry block's first instr *)
  (match b_entry.Analysis.Cfg.b_instrs with
   | first :: _ ->
     Alcotest.(check bool) "blocks overlap" true
       (Int64.compare inner (Analysis.Cfg.next_addr first) < 0)
   | [] -> Alcotest.fail "empty entry block");
  (* and decodes to nop; ret carved out of the immediate *)
  (match b_inner.Analysis.Cfg.b_instrs, b_inner.Analysis.Cfg.b_term with
   | [ { Analysis.Cfg.instr = Nop; _ } ], Analysis.Cfg.T_ret -> ()
   | _ -> Alcotest.fail "inner block should decode as nop; ret");
  ignore (Analysis.Liveness.compute cfg)

(* a function with no ret at all: every path loops forever.  The liveness
   fixpoint must still converge (the back edge is the only flow), and so
   must a counting domain under the engine's widening backstop *)
let test_fixture_retless_loop () =
  let open X86.Isa in
  let img =
    link_fn "spin"
      [ Asm.Ins (Mov (W64, Reg RAX, Imm 0L));
        Asm.Label "head";
        Asm.Ins (Alu (Add, W64, Reg RAX, Reg RDI));
        Asm.Jmp_l "head" ]
  in
  let cfg = Analysis.Cfg.of_image img "spin" in
  Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed;
  let rets =
    List.filter
      (fun a ->
         (Analysis.Cfg.block_exn cfg a).Analysis.Cfg.b_term = Analysis.Cfg.T_ret)
      cfg.Analysis.Cfg.order
  in
  Alcotest.(check int) "no ret blocks" 0 (List.length rets);
  let live = Analysis.Liveness.compute cfg in
  (* rdi is read every iteration: live around the back edge forever *)
  let add_addr =
    find_instr cfg (function Alu (Add, _, _, _) -> true | _ -> false)
  in
  Alcotest.(check bool) "rdi live in endless loop" true
    (Analysis.Regset.mem_reg
       (Analysis.Liveness.live_out_at live add_addr) X86.Isa.RDI);
  (* drive the generic engine over the same CFG with an unbounded counting
     domain: without widening the trip count would climb forever; the
     engine's widen_after cutoff must force convergence, not Divergence *)
  let module Count = struct
    type t = Bounded of int | Inf
    let equal = ( = )
    let join a b =
      match a, b with
      | Inf, _ | _, Inf -> Inf
      | Bounded x, Bounded y -> Bounded (max x y)
    let widen old joined = if equal old joined then old else Inf
  end in
  let module FP = Staticanalysis.Fixpoint.Make
      (Staticanalysis.Fixpoint.Int64_node) (Count)
  in
  let res =
    FP.solve
      ~entries:[ (cfg.Analysis.Cfg.entry, Count.Bounded 0) ]
      ~transfer:(fun a st ->
          let b = Analysis.Cfg.block_exn cfg a in
          let st' =
            match st with
            | Count.Inf -> Count.Inf
            | Count.Bounded n -> Count.Bounded (n + 1)
          in
          List.map (fun s -> (s, st')) (Analysis.Cfg.successors b))
      ()
  in
  Alcotest.(check bool) "widening fired" true
    (res.FP.stats.Staticanalysis.Fixpoint.widenings > 0);
  let head =
    List.find (fun a -> a <> cfg.Analysis.Cfg.entry) cfg.Analysis.Cfg.order
  in
  Alcotest.(check bool) "loop head widened to top" true
    (FP.H.find_opt res.FP.state head = Some Count.Inf)

let test_cfg_randomfuns () =
  (* CFG reconstruction succeeds on the whole corpus *)
  let corpus = Minic.Randomfuns.corpus () in
  List.iter
    (fun (t : Minic.Randomfuns.t) ->
       let img = Minic.Codegen.compile t.prog in
       let cfg = Analysis.Cfg.of_image img "target" in
       Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed)
    corpus

let () =
  Alcotest.run "analysis"
    [ ("cfg",
       [ Alcotest.test_case "factorial blocks" `Quick test_cfg_fact;
         Alcotest.test_case "switch jump table" `Quick test_cfg_switch_table;
         Alcotest.test_case "randomfuns corpus" `Slow test_cfg_randomfuns ]);
      ("liveness",
       [ Alcotest.test_case "flags live before jcc" `Quick test_liveness_flags;
         Alcotest.test_case "param live at entry" `Quick test_liveness_param;
         Alcotest.test_case "fixture: jcc flag window" `Quick
           test_fixture_jcc_flags;
         Alcotest.test_case "fixture: tail-call args" `Quick
           test_fixture_tail_args;
         Alcotest.test_case "fixture: loop back edge" `Quick
           test_fixture_loop_backedge ]);
      ("fixpoint-edges",
       [ Alcotest.test_case "jump-table fallthrough" `Quick
           test_fixture_table_fallthrough;
         Alcotest.test_case "overlapping unaligned blocks" `Quick
           test_fixture_overlapping_blocks;
         Alcotest.test_case "ret-less infinite loop widens" `Quick
           test_fixture_retless_loop ]) ]
