(* Tests for CFG reconstruction and liveness on compiler output. *)

open Minic.Ast

let fact_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "fact"
        [ set "r" (c 1);
          For (set "i" (c 1), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "r" (Bin (Mul, v "r", v "i")) ]);
          Return (v "r") ] ]

let switch_prog =
  program
    [ func ~params:[ "n" ] "classify"
        [ Switch (v "n",
                  [ (0, [ Return (c 100) ]); (1, [ Return (c 101) ]);
                    (2, [ Return (c 102) ]); (3, [ Return (c 103) ]);
                    (4, [ Return (c 104) ]); (6, [ Return (c 106) ]) ],
                  [ Return (c (-1)) ]) ] ]

let test_cfg_fact () =
  let img = Minic.Codegen.compile fact_prog in
  let cfg = Analysis.Cfg.of_image img "fact" in
  Alcotest.(check bool) "not failed" false cfg.Analysis.Cfg.failed;
  Alcotest.(check bool) "several blocks" true (List.length cfg.Analysis.Cfg.order >= 3);
  (* entry block exists and every successor is a known block *)
  List.iter
    (fun a ->
       let b = Analysis.Cfg.block_exn cfg a in
       List.iter
         (fun s -> ignore (Analysis.Cfg.block_exn cfg s))
         (Analysis.Cfg.successors b))
    cfg.Analysis.Cfg.order;
  (* exactly one ret block for this function *)
  let rets =
    List.filter
      (fun a ->
         match (Analysis.Cfg.block_exn cfg a).Analysis.Cfg.b_term with
         | Analysis.Cfg.T_ret -> true
         | _ -> false)
      cfg.Analysis.Cfg.order
  in
  Alcotest.(check bool) "has ret block" true (List.length rets >= 1)

let test_cfg_switch_table () =
  let img = Minic.Codegen.compile switch_prog in
  let cfg = Analysis.Cfg.of_image img "classify" in
  Alcotest.(check bool) "not failed" false cfg.Analysis.Cfg.failed;
  let tables =
    List.filter_map
      (fun a ->
         match (Analysis.Cfg.block_exn cfg a).Analysis.Cfg.b_term with
         | Analysis.Cfg.T_jmp_table { entries; _ } -> Some (List.length entries)
         | _ -> None)
      cfg.Analysis.Cfg.order
  in
  match tables with
  | [ n ] ->
    (* cases 0..6 -> 7 table entries *)
    Alcotest.(check int) "table entries" 7 n
  | _ -> Alcotest.failf "expected exactly one jump table, found %d" (List.length tables)

let test_liveness_flags () =
  let img = Minic.Codegen.compile fact_prog in
  let cfg = Analysis.Cfg.of_image img "fact" in
  let live = Analysis.Liveness.compute cfg in
  (* find a cmp/test instruction whose block ends with jcc: flags must be
     live after it *)
  let found = ref false in
  List.iter
    (fun a ->
       let b = Analysis.Cfg.block_exn cfg a in
       match b.Analysis.Cfg.b_term with
       | Analysis.Cfg.T_jcc _ ->
         (match List.rev b.Analysis.Cfg.b_instrs with
          | last :: _ ->
            if Analysis.Reguse.clobbers_flags last.Analysis.Cfg.instr then begin
              found := true;
              Alcotest.(check bool) "flags live after test"
                true (Analysis.Liveness.flags_live_after live last.Analysis.Cfg.addr)
            end
          | [] -> ())
       | _ -> ())
    cfg.Analysis.Cfg.order;
  Alcotest.(check bool) "found a flag-setting instr before jcc" true !found

let test_liveness_param () =
  (* at entry, the parameter register RDI must be live *)
  let img = Minic.Codegen.compile fact_prog in
  let cfg = Analysis.Cfg.of_image img "fact" in
  let live = Analysis.Liveness.compute cfg in
  let entry_block = Analysis.Cfg.block_exn cfg cfg.Analysis.Cfg.entry in
  match entry_block.Analysis.Cfg.b_instrs with
  | first :: _ ->
    let out = Analysis.Liveness.live_out_at live first.Analysis.Cfg.addr in
    (* after 'push rbp', rdi (param n) still live *)
    Alcotest.(check bool) "rdi live at entry" true
      (Analysis.Regset.mem_reg out X86.Isa.RDI)
  | [] -> Alcotest.fail "empty entry block"

(* --- hand-built fixtures -------------------------------------------------- *)

(* Tiny raw-assembly functions make the expected live sets checkable by eye,
   unlike compiler output where the answer depends on codegen choices. *)

let link_fn name items =
  Asm.link { Asm.u_functions = [ (name, items) ]; Asm.u_data = [] }

(* Address of the first instruction in the function satisfying [p]. *)
let find_instr cfg p =
  let found = ref None in
  List.iter
    (fun a ->
       let b = Analysis.Cfg.block_exn cfg a in
       List.iter
         (fun (bi : Analysis.Cfg.binstr) ->
            if !found = None && p bi.Analysis.Cfg.instr then
              found := Some bi.Analysis.Cfg.addr)
         b.Analysis.Cfg.b_instrs)
    cfg.Analysis.Cfg.order;
  match !found with
  | Some a -> a
  | None -> Alcotest.fail "fixture instruction not found"

(* cmp feeding a jcc: flags live exactly between them, dead past the join *)
let test_fixture_jcc_flags () =
  let open X86.Isa in
  let img =
    link_fn "f"
      [ Asm.Ins (Alu (Cmp, W64, Reg RDI, Imm 5L));
        Asm.Jcc_l (E, "yes");
        Asm.Ins (Mov (W64, Reg RAX, Imm 1L));
        Asm.Ins Ret;
        Asm.Label "yes";
        Asm.Ins (Mov (W64, Reg RAX, Imm 2L));
        Asm.Ins Ret ]
  in
  let cfg = Analysis.Cfg.of_image img "f" in
  Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed;
  let live = Analysis.Liveness.compute cfg in
  let cmp_addr =
    find_instr cfg (function Alu (Cmp, _, _, _) -> true | _ -> false)
  in
  let mov1_addr =
    find_instr cfg (function Mov (_, _, Imm 1L) -> true | _ -> false)
  in
  Alcotest.(check bool) "flags live after cmp" true
    (Analysis.Liveness.flags_live_after live cmp_addr);
  Alcotest.(check bool) "flags dead past the branch" false
    (Analysis.Liveness.flags_live_after live mov1_addr);
  (* rdi fed the cmp; once both arms only return constants it is dead *)
  Alcotest.(check bool) "rdi dead in ret arm" false
    (Analysis.Regset.mem_reg
       (Analysis.Liveness.live_out_at live mov1_addr) X86.Isa.RDI)

(* a jump out of the function is a tail call: argument registers must be
   treated as live at it, unlike at a plain ret *)
let test_fixture_tail_args () =
  let open X86.Isa in
  let img =
    link_fn "caller"
      [ Asm.Ins (Mov (W64, Reg RDI, Imm 7L));
        Asm.Ins (Mov (W64, Reg RAX, Imm 0L));
        (* out-of-bounds rel32: classified T_tail, target irrelevant *)
        Asm.Ins (Jmp (J_rel 0x100)) ]
  in
  let cfg = Analysis.Cfg.of_image img "caller" in
  Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed;
  let live = Analysis.Liveness.compute cfg in
  let mov_rdi =
    find_instr cfg
      (function Mov (_, Reg RDI, _) -> true | _ -> false)
  in
  Alcotest.(check bool) "rdi (arg) live through the tail call" true
    (Analysis.Regset.mem_reg
       (Analysis.Liveness.live_out_at live mov_rdi) X86.Isa.RDI)

(* a register read only inside the loop body must stay live across the
   back edge: one forward sweep gets this wrong, the fixpoint does not *)
let test_fixture_loop_backedge () =
  let open X86.Isa in
  let img =
    link_fn "loopf"
      [ Asm.Ins (Mov (W64, Reg RAX, Imm 0L));
        Asm.Label "head";
        Asm.Ins (Alu (Add, W64, Reg RAX, Reg RDI));
        Asm.Ins (Unary (Dec, W64, Reg RCX));
        Asm.Jcc_l (NE, "head");
        Asm.Ins Ret ]
  in
  let cfg = Analysis.Cfg.of_image img "loopf" in
  Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed;
  let live = Analysis.Liveness.compute cfg in
  let dec_addr =
    find_instr cfg (function Unary (Dec, _, _) -> true | _ -> false)
  in
  let out = Analysis.Liveness.live_out_at live dec_addr in
  (* rdi is only read at the top of the loop: it reaches the bottom's
     live-out exclusively around the back edge *)
  Alcotest.(check bool) "rdi live around back edge" true
    (Analysis.Regset.mem_reg out X86.Isa.RDI);
  Alcotest.(check bool) "rcx live around back edge" true
    (Analysis.Regset.mem_reg out X86.Isa.RCX);
  Alcotest.(check bool) "flags live into jcc" true
    (Analysis.Liveness.flags_live_after live dec_addr);
  (* and the loop-carried uses propagate to the function entry *)
  let entry_mov =
    find_instr cfg (function Mov (_, Reg RAX, _) -> true | _ -> false)
  in
  Alcotest.(check bool) "rdi live at entry" true
    (Analysis.Regset.mem_reg
       (Analysis.Liveness.live_out_at live entry_mov) X86.Isa.RDI)

let test_cfg_randomfuns () =
  (* CFG reconstruction succeeds on the whole corpus *)
  let corpus = Minic.Randomfuns.corpus () in
  List.iter
    (fun (t : Minic.Randomfuns.t) ->
       let img = Minic.Codegen.compile t.prog in
       let cfg = Analysis.Cfg.of_image img "target" in
       Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed)
    corpus

let () =
  Alcotest.run "analysis"
    [ ("cfg",
       [ Alcotest.test_case "factorial blocks" `Quick test_cfg_fact;
         Alcotest.test_case "switch jump table" `Quick test_cfg_switch_table;
         Alcotest.test_case "randomfuns corpus" `Slow test_cfg_randomfuns ]);
      ("liveness",
       [ Alcotest.test_case "flags live before jcc" `Quick test_liveness_flags;
         Alcotest.test_case "param live at entry" `Quick test_liveness_param;
         Alcotest.test_case "fixture: jcc flag window" `Quick
           test_fixture_jcc_flags;
         Alcotest.test_case "fixture: tail-call args" `Quick
           test_fixture_tail_args;
         Alcotest.test_case "fixture: loop back edge" `Quick
           test_fixture_loop_backedge ]) ]
