(* lib/serve: wire protocol, one-shot entry, and server semantics.

   The protocol tests are pure (encode/decode, framing, fuzz).  The server
   tests drive a real forked server — over a socketpair ([L_pair], the
   --stdio mode) for the semantics that need deterministic frame batching,
   and over a real Unix-domain socket for the connect/accept path.  All
   servers run with [jobs = 0] (inline compute on the event loop): every
   frame batch written in a single [write] is admitted in one read phase
   before the next dispatch, which makes coalescing, shedding and drain
   order exact rather than probabilistic. *)

module P = Serve.Protocol
module O = Serve.Oneshot

let () = ignore (Unix.alarm 600)   (* hard backstop: a hung server fails CI *)

let tmpdir () =
  let d = Filename.temp_file "serve_test" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let spec p c s = { O.sp_prog = p; sp_config = c; sp_seed = s }

(* --- protocol: round trips --------------------------------------------------- *)

let rw ?(id = 1) ?(seed = 1) ?(want = false) ?digest ?prog config =
  { P.rq_id = id;
    rq_body =
      P.Rewrite
        { P.q_prog = prog; q_digest = digest; q_config = config;
          q_seed = seed; q_want_image = want } }

let sample_reply ~image =
  { P.rr_prog = "fact";
    rr_digest = String.make 32 'a';
    rr_key = "serve/v1|aaaa|rop0.25|seed=7";
    rr_cache = P.Miss;
    rr_image = image;
    rr_image_digest = String.make 32 'b';
    rr_funcs = [ ("main", "ok chain=0x400000 bytes=128 blocks=3 points=2");
                 ("aux", "failed: no gadget") ];
    rr_gadget_uses = 123;
    rr_unique_gadgets = 17;
    rr_queue_ms = 0.25;
    rr_rewrite_ms = 3.0 }

let sample_stats =
  { P.st_uptime_s = 12.5; st_jobs = 4; st_queue_depth = 2; st_inflight = 3;
    st_requests = 100; st_completed = 90; st_hits = 40; st_misses = 50;
    st_coalesced = 5; st_shed = 3; st_expired = 1; st_errors = 1;
    st_throughput_rps = 7.2; st_hit_rate = 44.44444444444444;
    st_p50_ms = 1.5; st_p90_ms = 9.0; st_p99_ms = 30.125;
    st_cache_entries = 50; st_cache_bytes = 123456 }

let test_request_roundtrip () =
  let reqs =
    [ rw ~id:1 ~prog:"fact" "rop0.25";
      rw ~id:42 ~seed:9 ~want:true ~prog:"base64" "rop1.0+p2+gc";
      rw ~id:3 ~digest:(String.make 32 'f') "plain";
      rw ~id:4 ~prog:"corpus" ~digest:"dd" ~seed:0 "rop0";
      { P.rq_id = 5; rq_body = P.Stats };
      { P.rq_id = 6; rq_body = P.Ping };
      { P.rq_id = 7; rq_body = P.Shutdown } ]
  in
  List.iter
    (fun r ->
       match P.decode_request (P.encode_request r) with
       | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
       | Error m -> Alcotest.failf "decode failed: %s" m)
    reqs

let test_response_roundtrip () =
  (* the image payload covers every byte value: hex transport must be 8-bit
     clean, and jfloat must round-trip the timing floats losslessly *)
  let all_bytes = String.init 256 Char.chr in
  let resps =
    [ { P.rs_id = 1; rs_body = P.R_rewrite (sample_reply ~image:(Some all_bytes)) };
      { P.rs_id = 2;
        rs_body =
          P.R_rewrite
            { (sample_reply ~image:None) with
              P.rr_cache = P.Hit; rr_queue_ms = 0.0; rr_rewrite_ms = 0.0 } };
      { P.rs_id = 3;
        rs_body =
          P.R_rewrite
            { (sample_reply ~image:None) with
              P.rr_cache = P.Coalesced; rr_funcs = [];
              rr_rewrite_ms = 1.0 /. 3.0 } };
      { P.rs_id = 4; rs_body = P.R_stats sample_stats };
      { P.rs_id = 5; rs_body = P.R_pong };
      { P.rs_id = 6; rs_body = P.R_bye };
      { P.rs_id = 0; rs_body = P.R_error { code = 429; msg = "queue full" } };
      { P.rs_id = 7;
        rs_body = P.R_error { code = 400; msg = "with \"quotes\"\nand\tctrl \x01" } } ]
  in
  List.iter
    (fun r ->
       match P.decode_response (P.encode_response r) with
       | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
       | Error m -> Alcotest.failf "decode failed: %s" m)
    resps

let test_hex () =
  let all = String.init 256 Char.chr in
  Alcotest.(check string) "hex round-trips every byte" all
    (ok (P.hex_decode (P.hex_encode all)));
  (match P.hex_decode "abc" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "odd-length hex accepted");
  match P.hex_decode "zz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad hex digit accepted"

(* --- protocol: framing ------------------------------------------------------- *)

let test_frame_blocking () =
  let r, w = Unix.pipe () in
  P.write_frame w "hello";
  P.write_frame w "";   (* zero-length payload is a legal frame *)
  Alcotest.(check string) "first frame" "hello"
    (match P.read_frame r with Ok p -> p | Error _ -> Alcotest.fail "read 1");
  Alcotest.(check string) "empty frame" ""
    (match P.read_frame r with Ok p -> p | Error _ -> Alcotest.fail "read 2");
  Unix.close w;
  (match P.read_frame r with
   | Error `Eof -> ()
   | _ -> Alcotest.fail "close at frame boundary must read as Eof");
  Unix.close r

let test_frame_truncated () =
  (* header cut short *)
  let r, w = Unix.pipe () in
  P.write_all w "\x00\x00";
  Unix.close w;
  (match P.read_frame r with
   | Error `Truncated -> ()
   | _ -> Alcotest.fail "partial header must read as Truncated");
  Unix.close r;
  (* full header, body cut short *)
  let r, w = Unix.pipe () in
  let f = P.frame "abcdef" in
  P.write_all w (String.sub f 0 (String.length f - 2));
  Unix.close w;
  (match P.read_frame r with
   | Error `Truncated -> ()
   | _ -> Alcotest.fail "partial body must read as Truncated");
  Unix.close r

let test_frame_oversized () =
  let r, w = Unix.pipe () in
  let len = P.max_frame + 1 in
  let hdr =
    String.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff))
  in
  P.write_all w hdr;
  (match P.read_frame r with
   | Error (`Oversized n) ->
     Alcotest.(check int) "oversized length reported" len n
   | _ -> Alcotest.fail "oversized header must be rejected");
  Unix.close w;
  Unix.close r;
  match P.frame (String.make (P.max_frame + 1) 'x') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "frame() must refuse oversized payloads"

let test_deframer_incremental () =
  let payloads = [ "alpha"; ""; "bravo-bravo"; String.make 1000 'z' ] in
  let stream = String.concat "" (List.map P.frame payloads) in
  let d = P.deframer () in
  (* worst-case fragmentation: one byte per feed *)
  let got = ref [] in
  String.iter
    (fun ch ->
       match P.feed d (String.make 1 ch) with
       | Ok fs -> got := !got @ fs
       | Error m -> Alcotest.failf "deframer error: %s" m)
    stream;
  Alcotest.(check (list string)) "frames reassembled in order" payloads !got;
  (* an oversized length field poisons the stream permanently *)
  let d = P.deframer () in
  let len = P.max_frame + 1 in
  let hdr =
    String.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff))
  in
  match P.feed d hdr with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "deframer must reject an oversized length"

(* --- protocol: decoder fuzz -------------------------------------------------- *)

(* Decoders face the network: whatever bytes arrive, they must return
   [Error], never raise.  Half the cases are mutations of a valid message
   (the adversarial-but-plausible region), half are raw noise. *)
let fuzz_one rng valid decode =
  let s =
    if Util.Rng.bool rng then begin
      let n = String.length valid in
      let b = Bytes.of_string valid in
      for _ = 1 to Util.Rng.int rng 4 do
        Bytes.set b (Util.Rng.int rng n) (Char.chr (Util.Rng.int rng 256))
      done;
      Bytes.sub_string b 0 (Util.Rng.int rng (n + 1))
    end
    else
      String.init (Util.Rng.int rng 80) (fun _ -> Char.chr (Util.Rng.int rng 256))
  in
  match decode s with Ok _ -> () | Error (_ : string) -> ()

let test_decode_fuzz () =
  let rng = Util.Rng.of_key ~seed:11 "serve-protocol-fuzz" in
  let vreq = P.encode_request (rw ~id:7 ~want:true ~prog:"fact" "rop0.25") in
  let vresp =
    P.encode_response
      { P.rs_id = 7; rs_body = P.R_rewrite (sample_reply ~image:(Some "\x00\xff")) }
  in
  let vstats =
    P.encode_response { P.rs_id = 8; rs_body = P.R_stats sample_stats }
  in
  for _ = 1 to 400 do
    fuzz_one rng vreq P.decode_request;
    fuzz_one rng vresp P.decode_response;
    fuzz_one rng vstats P.decode_response
  done

(* --- oneshot: config naming -------------------------------------------------- *)

let test_config_names () =
  (* every matrix name parses back to exactly the matrix's config, at a
     non-default seed (the seed must thread through parsing) *)
  List.iter
    (fun (name, cfg) ->
       match O.config_of_name ~seed:5 name with
       | Ok cfg' ->
         Alcotest.(check bool)
           (Printf.sprintf "%S resolves to its matrix config" name) true
           (cfg = cfg')
       | Error m -> Alcotest.failf "%S failed to parse: %s" name m)
    (O.config_matrix 5);
  (* feature order is immaterial *)
  Alcotest.(check bool) "+gc+p2 = +p2+gc" true
    (ok (O.config_of_name ~seed:1 "rop1.0+gc+p2")
     = ok (O.config_of_name ~seed:1 "rop1.0+p2+gc"));
  (* config_name emits the vocabulary config_of_name accepts *)
  Alcotest.(check string) "name of k=0.25" "rop0.25"
    (O.config_name ~plain:false 0.25);
  Alcotest.(check string) "name with features" "rop1+p2+gc"
    (O.config_name ~p2:true ~confusion:true ~plain:false 1.0);
  Alcotest.(check string) "plain wins" "plain" (O.config_name ~plain:true 0.5);
  List.iter
    (fun bad ->
       match O.config_of_name ~seed:1 bad with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "%S should not parse" bad)
    [ ""; "plain+p2"; "rop"; "rop2.0"; "rop-0.1"; "ropx"; "rop0.5+zz";
      "gadget"; "+p2" ]

(* --- oneshot: determinism and image canonicalisation ------------------------- *)

let test_oneshot_deterministic () =
  let a1 = ok (O.one_shot (spec "fact" "rop1.0+p2+gc" 3)) in
  let a2 = ok (O.one_shot (spec "fact" "rop1.0+p2+gc" 3)) in
  Alcotest.(check string) "same spec, same bytes" a1.O.a_image a2.O.a_image;
  Alcotest.(check string) "same digest" a1.O.a_image_digest a2.O.a_image_digest;
  Alcotest.(check bool) "per-function audit carried" true (a1.O.a_funcs <> []);
  let a3 = ok (O.one_shot (spec "fact" "rop1.0+p2+gc" 4)) in
  Alcotest.(check bool) "seed changes the bytes" false
    (a1.O.a_image = a3.O.a_image);
  (* a warm table reused across configs still reproduces the cold path:
     the prepared context is config- and seed-independent *)
  let w = O.warm () in
  let b1 = ok (O.rewrite w (spec "fact" "rop1.0+p2+gc" 3)) in
  let _ = ok (O.rewrite w (spec "fact" "rop0.25" 9)) in
  let b2 = ok (O.rewrite w (spec "fact" "rop1.0+p2+gc" 3)) in
  Alcotest.(check string) "warm = cold" a1.O.a_image b1.O.a_image;
  Alcotest.(check string) "warm unaffected by interleaved configs"
    a1.O.a_image b2.O.a_image;
  match O.one_shot (spec "no-such-program" "rop0.25" 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown program must be an error"

let test_image_roundtrip () =
  let e = Option.get (O.find "base64") in
  let img = e.O.e_build () in
  let ser = Image.serialize img in
  let img' = ok (Image.deserialize ser) in
  Alcotest.(check string) "canonical form is a fixpoint" ser
    (Image.serialize img');
  Alcotest.(check string) "digest = digest of serialization"
    (Image.digest img)
    (Digest.to_hex (Digest.string ser));
  match Image.deserialize (String.sub ser 0 (String.length ser - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated serialization must be rejected"

(* --- server harness ---------------------------------------------------------- *)

let test_opts () =
  { Serve.Server.default_opts with Serve.Server.cache_dir = tmpdir () }

(* Fork a server over a socketpair; the parent keeps the client end.  The
   single fd pair is the --stdio deployment shape. *)
let with_pair_server opts f =
  let srv, cli = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close cli;
    let rc =
      try Serve.Server.run ~opts (Serve.Server.L_pair (srv, srv))
      with _ -> 3
    in
    Unix._exit rc
  | pid ->
    Unix.close srv;
    let finally () =
      (try Unix.close cli with Unix.Unix_error _ -> ());
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    Fun.protect ~finally (fun () -> f cli pid)

let with_socket_server opts f =
  let path = Filename.temp_file "serve_test" ".sock" in
  Sys.remove path;
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    let rc =
      try Serve.Server.run ~opts (Serve.Server.L_socket path) with _ -> 3
    in
    Unix._exit rc
  | pid ->
    let rec connect n =
      if n = 0 then Alcotest.fail "server did not come up"
      else
        match Serve.Client.connect path with
        | Ok c -> c
        | Error _ ->
          Unix.sleepf 0.02;
          connect (n - 1)
    in
    let finally () =
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
       | 0, _ ->
         (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
         (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
       | _ -> ()
       | exception Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ()
    in
    Fun.protect ~finally (fun () -> f (connect 250) pid)

(* One write = one read batch on the server: admission order and batching
   are deterministic for everything sent here. *)
let send_batch fd reqs =
  P.write_all fd
    (String.concat "" (List.map (fun r -> P.frame (P.encode_request r)) reqs))

let recv fd =
  match P.read_frame fd with
  | Ok p -> ok (P.decode_response p)
  | Error `Eof -> Alcotest.fail "server closed early"
  | Error `Truncated -> Alcotest.fail "truncated frame from server"
  | Error (`Oversized n) -> Alcotest.failf "oversized frame from server: %d" n

let rec recv_n fd n = if n = 0 then [] else recv fd :: recv_n fd (n - 1)

let expect_eof fd =
  match P.read_frame fd with
  | Error `Eof -> ()
  | Ok _ -> Alcotest.fail "expected EOF, got a frame"
  | Error _ -> Alcotest.fail "expected clean EOF"

let expect_exit0 pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "server exited %d" n
  | _ -> Alcotest.fail "server killed by a signal"

let body_of id rs =
  match List.find_opt (fun r -> r.P.rs_id = id) rs with
  | Some r -> r.P.rs_body
  | None -> Alcotest.failf "no response for id %d" id

let cache_of = function
  | P.R_rewrite r -> r.P.rr_cache
  | P.R_error e -> Alcotest.failf "expected rewrite, got error %d: %s" e.code e.msg
  | _ -> Alcotest.fail "expected a rewrite reply"

let err_code = function
  | P.R_error e -> e.code
  | _ -> Alcotest.fail "expected an error reply"

(* --- server semantics -------------------------------------------------------- *)

let test_server_miss_hit_identity () =
  with_socket_server { (test_opts ()) with Serve.Server.shards = 3 }
  @@ fun c pid ->
  ok (Serve.Client.ping c);
  let r1 =
    ok (Serve.Client.rewrite c ~want_image:true ~prog:"fact"
          ~config:"rop0.25" ~seed:1 ())
  in
  Alcotest.(check bool) "first request misses" true (r1.P.rr_cache = P.Miss);
  let r2 =
    ok (Serve.Client.rewrite c ~want_image:true ~prog:"fact"
          ~config:"rop0.25" ~seed:1 ())
  in
  Alcotest.(check bool) "repeat hits" true (r2.P.rr_cache = P.Hit);
  Alcotest.(check string) "hit serves identical bytes"
    (Option.get r1.P.rr_image) (Option.get r2.P.rr_image);
  (* the acceptance property: served output is byte-identical to the cold
     one-shot CLI path *)
  let a = ok (O.one_shot (spec "fact" "rop0.25" 1)) in
  Alcotest.(check string) "served = one-shot bytes" a.O.a_image
    (Option.get r1.P.rr_image);
  Alcotest.(check string) "served = one-shot digest" a.O.a_image_digest
    r1.P.rr_image_digest;
  (* digest-only addressing probes the cache without rebuilding *)
  (match
     Serve.Client.call c
       (P.Rewrite
          { P.q_prog = None; q_digest = Some a.O.a_digest;
            q_config = "rop0.25"; q_seed = 1; q_want_image = false })
   with
   | Ok (P.R_rewrite r) ->
     Alcotest.(check bool) "digest probe hits" true (r.P.rr_cache = P.Hit)
   | Ok _ | Error _ -> Alcotest.fail "digest probe failed");
  (match
     Serve.Client.call c
       (P.Rewrite
          { P.q_prog = None; q_digest = Some (String.make 32 '0');
            q_config = "rop0.25"; q_seed = 1; q_want_image = false })
   with
   | Ok (P.R_error e) ->
     Alcotest.(check int) "unknown digest is 404" 404 e.code
   | Ok _ | Error _ -> Alcotest.fail "unknown digest must 404");
  (match Serve.Client.rewrite c ~prog:"no-such" ~config:"rop0.25" ~seed:1 () with
   | Error m ->
     Alcotest.(check bool) "unknown program is 404" true
       (String.length m > 4 && String.sub m 0 4 = "404:")
   | Ok _ -> Alcotest.fail "unknown program must 404");
  (match Serve.Client.rewrite c ~prog:"fact" ~config:"rop9" ~seed:1 () with
   | Error m ->
     Alcotest.(check bool) "bad config is 400" true
       (String.length m > 4 && String.sub m 0 4 = "400:")
   | Ok _ -> Alcotest.fail "bad config must 400");
  let st = ok (Serve.Client.stats c) in
  Alcotest.(check int) "stats: requests" 6 st.P.st_requests;
  Alcotest.(check int) "stats: hits" 2 st.P.st_hits;
  Alcotest.(check int) "stats: misses" 1 st.P.st_misses;
  Alcotest.(check int) "stats: errors" 3 st.P.st_errors;
  Alcotest.(check int) "stats: one cache entry" 1 st.P.st_cache_entries;
  Alcotest.(check bool) "stats: cache holds bytes" true (st.P.st_cache_bytes > 0);
  ok (Serve.Client.shutdown c);
  expect_exit0 pid;
  Serve.Client.close c

let test_server_coalescing () =
  with_pair_server (test_opts ()) @@ fun fd pid ->
  (* three identical in-flight keys in one batch: one compute, first waiter
     Miss, the rest Coalesced with the same artifact *)
  send_batch fd
    [ rw ~id:1 ~seed:7 ~want:true ~prog:"fact" "rop0.25";
      rw ~id:2 ~seed:7 ~want:true ~prog:"fact" "rop0.25";
      rw ~id:3 ~seed:7 ~want:true ~prog:"fact" "rop0.25" ];
  let rs = recv_n fd 3 in
  Alcotest.(check bool) "first waiter is the miss" true
    (cache_of (body_of 1 rs) = P.Miss);
  Alcotest.(check bool) "second coalesces" true
    (cache_of (body_of 2 rs) = P.Coalesced);
  Alcotest.(check bool) "third coalesces" true
    (cache_of (body_of 3 rs) = P.Coalesced);
  let dig = function
    | P.R_rewrite r -> r.P.rr_image_digest
    | _ -> Alcotest.fail "expected rewrite"
  in
  Alcotest.(check string) "coalesced waiters get the same artifact"
    (dig (body_of 1 rs)) (dig (body_of 2 rs));
  Alcotest.(check string) "all three agree"
    (dig (body_of 1 rs)) (dig (body_of 3 rs));
  (* a later request on the now-cached key is a plain hit *)
  send_batch fd [ rw ~id:4 ~seed:7 ~prog:"fact" "rop0.25" ];
  Alcotest.(check bool) "then it is cached" true
    (cache_of (body_of 4 (recv_n fd 1)) = P.Hit);
  send_batch fd [ { P.rq_id = 5; rq_body = P.Shutdown } ];
  (match body_of 5 (recv_n fd 1) with
   | P.R_bye -> ()
   | _ -> Alcotest.fail "expected bye");
  expect_eof fd;
  expect_exit0 pid

let test_server_shed () =
  with_pair_server { (test_opts ()) with Serve.Server.max_queue = 1 }
  @@ fun fd pid ->
  (* three distinct keys against a queue of one: the first is accepted, the
     overflow is shed immediately with 429 — and the server neither hangs
     nor drops the accepted request *)
  send_batch fd
    [ rw ~id:1 ~seed:1 ~prog:"fact" "rop0";
      rw ~id:2 ~seed:2 ~prog:"fact" "rop0";
      rw ~id:3 ~seed:3 ~prog:"fact" "rop0" ];
  let rs = recv_n fd 3 in
  Alcotest.(check bool) "accepted request completes" true
    (cache_of (body_of 1 rs) = P.Miss);
  Alcotest.(check int) "second is shed" 429 (err_code (body_of 2 rs));
  Alcotest.(check int) "third is shed" 429 (err_code (body_of 3 rs));
  (* shedding is back-pressure, not a failure: the connection still serves *)
  send_batch fd [ { P.rq_id = 4; rq_body = P.Ping } ];
  (match body_of 4 (recv_n fd 1) with
   | P.R_pong -> ()
   | _ -> Alcotest.fail "expected pong");
  let st =
    send_batch fd [ { P.rq_id = 5; rq_body = P.Stats } ];
    match body_of 5 (recv_n fd 1) with
    | P.R_stats s -> s
    | _ -> Alcotest.fail "expected stats"
  in
  Alcotest.(check int) "stats count the shed pair" 2 st.P.st_shed;
  Unix.close fd;
  expect_exit0 pid

let test_server_deadline () =
  let dir = tmpdir () in
  (* warm a cache with one artifact under a normal server... *)
  with_pair_server { (test_opts ()) with Serve.Server.cache_dir = dir }
    (fun fd pid ->
       send_batch fd [ rw ~id:1 ~seed:1 ~prog:"fact" "rop0" ];
       Alcotest.(check bool) "precompute misses" true
         (cache_of (body_of 1 (recv_n fd 1)) = P.Miss);
       Unix.close fd;
       expect_exit0 pid);
  (* ...then serve from the same cache with an already-expired deadline:
     every queued compute is answered 504 before dispatch, but cache hits
     never enter the queue, so the precomputed key still serves *)
  with_pair_server
    { (test_opts ()) with
      Serve.Server.cache_dir = dir; deadline_ms = Some (-1.0) }
    (fun fd pid ->
       send_batch fd
         [ rw ~id:1 ~seed:1 ~prog:"fact" "rop0";     (* cached: hit *)
           rw ~id:2 ~seed:2 ~prog:"fact" "rop0" ];   (* queued: expires *)
       let rs = recv_n fd 2 in
       Alcotest.(check bool) "hit bypasses the deadline" true
         (cache_of (body_of 1 rs) = P.Hit);
       Alcotest.(check int) "queued request expires with 504" 504
         (err_code (body_of 2 rs));
       send_batch fd [ { P.rq_id = 3; rq_body = P.Stats } ];
       (match body_of 3 (recv_n fd 1) with
        | P.R_stats s ->
          Alcotest.(check int) "stats count the expiry" 1 s.P.st_expired
        | _ -> Alcotest.fail "expected stats");
       Unix.close fd;
       expect_exit0 pid)

let test_server_drain_on_shutdown () =
  with_pair_server (test_opts ()) @@ fun fd pid ->
  (* work queued behind a shutdown verb in the same batch must still
     complete and flush: drain means "stop accepting", never "drop" *)
  send_batch fd
    [ rw ~id:1 ~seed:21 ~prog:"fact" "rop0.25";
      rw ~id:2 ~seed:22 ~prog:"fact" "rop0.25";
      { P.rq_id = 3; rq_body = P.Shutdown } ];
  let rs = recv_n fd 3 in
  Alcotest.(check bool) "queued request 1 completed during drain" true
    (cache_of (body_of 1 rs) = P.Miss);
  Alcotest.(check bool) "queued request 2 completed during drain" true
    (cache_of (body_of 2 rs) = P.Miss);
  (match body_of 3 rs with
   | P.R_bye -> ()
   | _ -> Alcotest.fail "expected bye");
  expect_eof fd;
  expect_exit0 pid

let test_server_sigterm_drain () =
  with_pair_server (test_opts ()) @@ fun fd pid ->
  send_batch fd [ rw ~id:1 ~seed:1 ~want:true ~prog:"fact" "rop0.5" ];
  let r1 = body_of 1 (recv_n fd 1) in
  Alcotest.(check bool) "request served" true (cache_of r1 = P.Miss);
  (* SIGTERM with replies flushed and nothing queued: clean exit 0, EOF at
     a frame boundary on the client *)
  Unix.kill pid Sys.sigterm;
  expect_eof fd;
  expect_exit0 pid

let test_server_protocol_errors () =
  with_pair_server (test_opts ()) @@ fun fd pid ->
  (* an unparseable frame is answered (id 0) but the connection survives *)
  P.write_all fd (P.frame "{this is not json");
  Alcotest.(check int) "malformed JSON answered with 400" 400
    (err_code (body_of 0 (recv_n fd 1)));
  send_batch fd [ { P.rq_id = 2; rq_body = P.Ping } ];
  (match body_of 2 (recv_n fd 1) with
   | P.R_pong -> ()
   | _ -> Alcotest.fail "connection should survive bad JSON");
  (* an oversized length field is unframeable: answered once, then cut *)
  let len = P.max_frame + 1 in
  P.write_all fd
    (String.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff)));
  Alcotest.(check int) "oversized frame answered with 400" 400
    (err_code (body_of 0 (recv_n fd 1)));
  expect_eof fd;
  expect_exit0 pid

let () =
  Alcotest.run "serve"
    [ ("protocol",
       [ Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
         Alcotest.test_case "response round-trip" `Quick
           test_response_roundtrip;
         Alcotest.test_case "hex transport" `Quick test_hex;
         Alcotest.test_case "blocking frames" `Quick test_frame_blocking;
         Alcotest.test_case "truncated frames" `Quick test_frame_truncated;
         Alcotest.test_case "oversized frames" `Quick test_frame_oversized;
         Alcotest.test_case "incremental deframer" `Quick
           test_deframer_incremental;
         Alcotest.test_case "decoder fuzz" `Quick test_decode_fuzz ]);
      ("oneshot",
       [ Alcotest.test_case "config naming" `Quick test_config_names;
         Alcotest.test_case "deterministic rewrites" `Quick
           test_oneshot_deterministic;
         Alcotest.test_case "image round-trip" `Quick test_image_roundtrip ]);
      ("server",
       [ Alcotest.test_case "miss, hit, byte identity" `Quick
           test_server_miss_hit_identity;
         Alcotest.test_case "duplicate coalescing" `Quick
           test_server_coalescing;
         Alcotest.test_case "queue-full shed" `Quick test_server_shed;
         Alcotest.test_case "queue deadline" `Quick test_server_deadline;
         Alcotest.test_case "drain on shutdown verb" `Quick
           test_server_drain_on_shutdown;
         Alcotest.test_case "drain on SIGTERM" `Quick
           test_server_sigterm_drain;
         Alcotest.test_case "protocol errors" `Quick
           test_server_protocol_errors ]) ]
