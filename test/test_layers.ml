(* ROPfuscator layer suite: opaque-constant encoding, instruction hiding and
   per-function configs.  The differential core mirrors test_ropc.ml — rewrite
   and native must agree on every input — and is extended with non-vacuity
   checks on the audit (the layers must actually fire, or the differential
   wall proves nothing) and unit tests for the layer plumbing itself:
   the opaque-residual algebra, the per-function config resolver, and the
   Serve.Oneshot config-name bijection the caches and CLIs share. *)

open Minic.Ast

let rewrite_result ?(config = Ropc.Config.plain ()) prog fnames =
  let img = Minic.Codegen.compile prog in
  let r = Ropc.Rewriter.rewrite img ~functions:fnames ~config in
  List.iter
    (fun (f, res) ->
       match res with
       | Ok _ -> ()
       | Error e ->
         Alcotest.failf "rewrite of %s failed: %s" f
           (Ropc.Rewriter.failure_to_string e))
    r.Ropc.Rewriter.funcs;
  (img, r)

let run img fname args =
  (Runner.call_exn ~fuel:100_000_000 img ~func:fname ~args).Runner.rax

let check_same ?config name prog fname inputs =
  let native_img, r = rewrite_result ?config prog [ fname ] in
  let rop_img = r.Ropc.Rewriter.image in
  List.iter
    (fun args ->
       let n = run native_img fname args in
       let v = run rop_img fname args in
       if n <> v then
         Alcotest.failf "%s: native=%Ld rop=%Ld on args %s" name n v
           (String.concat "," (List.map Int64.to_string args)))
    inputs

(* --- programs (same shapes as test_ropc.ml: loop, recursion, arrays) ------- *)

let fact_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "fact"
        [ set "r" (c 1);
          For (set "i" (c 1), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "r" (Bin (Mul, v "r", v "i")) ]);
          Return (v "r") ] ]

let fib_prog =
  program
    [ func ~params:[ "n" ] "fib"
        [ If (Bin (Lts, v "n", c 2),
              [ Return (v "n") ],
              [ Return
                  (Bin (Add,
                        call "fib" [ Bin (Sub, v "n", c 1) ],
                        call "fib" [ Bin (Sub, v "n", c 2) ])) ]) ] ]

let array_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "i"; "sum" ] ~arrays:[ ("buf", 64) ] "arrsum"
        [ For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ store8 (Bin (Add, Addr_local "buf", v "i"))
                   (Bin (Mul, v "i", v "i")) ]);
          set "sum" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "sum"
                   (Bin (Add, v "sum",
                         load8 (Bin (Add, Addr_local "buf", v "i")))) ]);
          Return (v "sum") ] ]

(* immediate-heavy, with zero / negative / large constants: the values the
   opaque encoder must round-trip exactly under int64 wrap-around *)
let consts_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "r" ] "konst"
        [ set "r" (c 0);
          If (Bin (Eq, v "n", c 0), [ Return (c 0) ], []);
          If (Bin (Eq, v "n", c 1), [ Return (c (-1)) ], []);
          If (Bin (Eq, v "n", c 2), [ Return (c 0x7FFFFFFF) ], []);
          If (Bin (Eq, v "n", c 3), [ Return (c (-0x80000000)) ], []);
          Return (Bin (Add, Bin (Mul, v "n", c 0x1234567), c (-42))) ] ]

let inputs_n = [ [ 0L ]; [ 1L ]; [ 2L ]; [ 5L ]; [ 8L ] ]

(* --- the opaque-residual algebra ------------------------------------------- *)

(* stored + mult*(residue+1) = value must hold for every int64 triple: the
   encoder relies on two's-complement wrap-around, so the identity has no
   range restriction — including 0, -1 and both int64 extremes. *)
let recovers ~value ~residue ~mult =
  let stored = Ropc.Chain.opaque_stored ~value ~residue ~mult in
  Int64.add stored (Int64.mul mult (Int64.add residue 1L)) = value

let test_opaque_algebra_edges () =
  let interesting =
    [ 0L; 1L; -1L; 2L; -2L; 42L; 0xDEADBEEFL; Int64.max_int; Int64.min_int;
      Int64.add Int64.max_int (-1L); Int64.add Int64.min_int 1L ]
  in
  List.iter
    (fun value ->
       List.iter
         (fun residue ->
            List.iter
              (fun mult ->
                 if not (recovers ~value ~residue ~mult) then
                   Alcotest.failf
                     "opaque_stored not invertible: value=%Ld residue=%Ld mult=%Ld"
                     value residue mult)
              interesting)
         interesting)
    interesting

let prop_opaque_algebra =
  QCheck.Test.make ~name:"opaque_stored invertible on random int64 triples"
    ~count:1000
    QCheck.(triple int64 int64 int64)
    (fun (value, residue, mult) -> recovers ~value ~residue ~mult)

(* --- encode -> emulate -> recover ------------------------------------------ *)

let layer_configs =
  [ ("+oc", fun seed -> Ropc.Config.rop_k ~seed ~opaque:true 1.0);
    ("+ih", fun seed -> Ropc.Config.rop_k ~seed ~hiding:true 1.0);
    ("+oc+ih", fun seed -> Ropc.Config.rop_k ~seed ~opaque:true ~hiding:true 1.0);
    ("+oc+ih+pf",
     fun seed ->
       Ropc.Config.rop_k ~seed ~opaque:true ~hiding:true ~pf:true 1.0) ]

let test_layers_fact () =
  List.iter
    (fun (tag, mk) ->
       List.iter
         (fun seed ->
            check_same ~config:(mk seed)
              (Printf.sprintf "fact%s seed=%d" tag seed)
              fact_prog "fact" inputs_n)
         [ 1; 2; 3 ])
    layer_configs

let test_layers_fib () =
  List.iter
    (fun (tag, mk) ->
       check_same ~config:(mk 1) ("fib" ^ tag) fib_prog "fib"
         [ [ 0L ]; [ 1L ]; [ 7L ]; [ 10L ] ])
    layer_configs

let test_layers_array () =
  List.iter
    (fun (tag, mk) ->
       check_same ~config:(mk 1) ("arrsum" ^ tag) array_prog "arrsum" inputs_n)
    layer_configs

let test_layers_consts () =
  List.iter
    (fun (tag, mk) ->
       List.iter
         (fun seed ->
            check_same ~config:(mk seed)
              (Printf.sprintf "konst%s seed=%d" tag seed)
              consts_prog "konst"
              [ [ 0L ]; [ 1L ]; [ 2L ]; [ 3L ]; [ 4L ]; [ 77L ]; [ -5L ] ])
         [ 1; 2 ])
    layer_configs

(* random corpus x layer config x input: the qcheck leg of the wall *)
let corpus_lazy = lazy (Minic.Randomfuns.corpus ())

let prop_layers_differential =
  QCheck.Test.make ~name:"layered rop = native on random corpus inputs"
    ~count:25
    QCheck.(triple (int_range 0 71) (int_range 0 3) (map Int64.of_int int))
    (fun (idx, cfg_idx, input) ->
       let t = List.nth (Lazy.force corpus_lazy) idx in
       let _, mk = List.nth layer_configs cfg_idx in
       let input = Int64.logand input t.Minic.Randomfuns.input_mask in
       let native_img, r = rewrite_result ~config:(mk 1) t.prog [ "target" ] in
       run native_img "target" [ input ]
       = run r.Ropc.Rewriter.image "target" [ input ])

(* --- audit non-vacuity ----------------------------------------------------- *)

module A = Ropc.Audit

let audit_of ~config prog fnames =
  let _, r = rewrite_result ~config prog fnames in
  r.Ropc.Rewriter.audit

(* +oc must actually emit opaque slots, each recoverable against the P1
   array ground truth recorded in the same audit; every opaque load ends in
   the jmp-reg dispatch slot that rejoins the chain. *)
let test_opaque_nonvacuous () =
  let audit =
    audit_of ~config:(Ropc.Config.rop_k ~opaque:true 1.0) fact_prog [ "fact" ]
  in
  let opaques = ref 0 and dispatches = ref 0 in
  List.iter
    (fun (f : A.func) ->
       let p1 =
         match f.A.f_p1 with
         | Some (_, _, a) -> a
         | None -> Alcotest.fail "opaque config rewrote without a P1 array"
       in
       Array.iter
         (fun (_, s) ->
            match s with
            | Ropc.Chain.S_opaque { oq_value; oq_cls; oq_residue; oq_mult } ->
              incr opaques;
              if oq_cls < 0 || oq_cls >= Array.length p1 then
                Alcotest.failf "opaque class %d outside P1 array" oq_cls;
              if Int64.of_int p1.(oq_cls) <> oq_residue then
                Alcotest.failf
                  "audited residue %Ld disagrees with P1 class %d (= %d)"
                  oq_residue oq_cls p1.(oq_cls);
              if not (recovers ~value:oq_value ~residue:oq_residue ~mult:oq_mult)
              then Alcotest.failf "slot for %Ld not recoverable" oq_value
            | Ropc.Chain.S_opaque_dispatch _ -> incr dispatches
            | _ -> ())
         f.A.f_layout)
    audit.A.a_funcs;
  if !opaques = 0 then
    Alcotest.fail "+oc at p=60, k=1.0 emitted no opaque slots (vacuous test)";
  if !dispatches = 0 then
    Alcotest.fail "+oc emitted opaque slots but no dispatch trampolines"

(* +ih must mark hidden-payload byte ranges on some audited points, and the
   ranges must be well-formed and lie inside the point's slot span. *)
let test_hiding_nonvacuous () =
  let audit =
    audit_of ~config:(Ropc.Config.rop_k ~hiding:true 1.0) fact_prog [ "fact" ]
  in
  let hidden = ref 0 in
  List.iter
    (fun (f : A.func) ->
       List.iter
         (fun (p : A.point) ->
            match p.A.p_hidden with
            | None -> ()
            | Some (lo, hi) ->
              incr hidden;
              if lo < 0 || hi <= lo then
                Alcotest.failf "malformed hidden range [%d,%d) at %s" lo hi
                  p.A.p_desc;
              if
                not
                  (Array.exists (fun (off, _) -> off >= lo && off < hi)
                     p.A.p_slots)
              then
                Alcotest.failf "hidden range [%d,%d) covers no slot of %s" lo
                  hi p.A.p_desc)
         f.A.f_points)
    audit.A.a_funcs;
  if !hidden = 0 then
    Alcotest.fail "+ih at k=1.0 hid no payloads (vacuous test)"

(* without the layers, no layer artifacts may leak into the audit *)
let test_layers_off_by_default () =
  let audit =
    audit_of ~config:(Ropc.Config.rop_k 1.0) fact_prog [ "fact" ]
  in
  List.iter
    (fun (f : A.func) ->
       Array.iter
         (fun (_, s) ->
            match s with
            | Ropc.Chain.S_opaque _ | Ropc.Chain.S_opaque_dispatch _ ->
              Alcotest.fail "opaque slot emitted with opaque_constants=false"
            | _ -> ())
         f.A.f_layout;
       List.iter
         (fun (p : A.point) ->
            if p.A.p_hidden <> None then
              Alcotest.fail "hidden range recorded with instr_hiding=false")
         f.A.f_points)
    audit.A.a_funcs

(* --- per-function config resolution ---------------------------------------- *)

let test_for_function () =
  let strong = Ropc.Config.rop_k ~seed:7 ~opaque:true ~hiding:true ~pf:true 1.0 in
  (* find one name on each side of the byte-sum parity heuristic *)
  let sensitive, weak =
    if Ropc.Config.name_sensitive "target" then ("target", "helper")
    else ("helper", "target")
  in
  Alcotest.(check bool)
    "heuristic splits target/helper" true
    (Ropc.Config.name_sensitive sensitive
     && not (Ropc.Config.name_sensitive weak));
  let s = Ropc.Config.for_function strong sensitive in
  Alcotest.(check bool) "sensitive keeps opaque layer" true
    s.Ropc.Config.opaque_constants;
  Alcotest.(check bool) "sensitive keeps hiding layer" true
    s.Ropc.Config.instr_hiding;
  Alcotest.(check bool) "resolved config does not recurse" true
    (s.Ropc.Config.per_function = None);
  let w = Ropc.Config.for_function strong weak in
  Alcotest.(check bool) "weak side drops opaque layer" false
    w.Ropc.Config.opaque_constants;
  Alcotest.(check bool) "weak side drops hiding layer" false
    w.Ropc.Config.instr_hiding;
  Alcotest.(check int) "weak side inherits parent seed" 7 w.Ropc.Config.seed;
  Alcotest.(check bool) "weak side does not recurse" true
    (w.Ropc.Config.per_function = None);
  (* explicit sensitivity list overrides the heuristic *)
  let listed =
    { strong with
      Ropc.Config.per_function =
        (match strong.Ropc.Config.per_function with
         | Some pf ->
           Some { pf with Ropc.Config.pf_sensitive = Some [ weak ] }
         | None -> None) }
  in
  Alcotest.(check bool) "listed name gets strong config" true
    (Ropc.Config.for_function listed weak).Ropc.Config.opaque_constants;
  Alcotest.(check bool) "unlisted name gets weak config" false
    (Ropc.Config.for_function listed sensitive).Ropc.Config.opaque_constants;
  (* no split: for_function is the identity *)
  let base = Ropc.Config.rop_k ~opaque:true 0.5 in
  Alcotest.(check bool) "no split: identity" true
    (Ropc.Config.for_function base "anything" = base)

(* a two-function program under +pf, with one name on each side of the
   sensitivity heuristic ("main" is sensitive, "helper" is not): both sides
   of the split must still be behaviourally faithful *)
let two_fn_prog =
  program
    [ func ~params:[ "x" ] "helper" [ Return (Bin (Mul, v "x", c 3)) ];
      func ~params:[ "n" ] ~locals:[ "acc"; "i" ] "main"
        [ set "acc" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "acc" (Bin (Add, v "acc", call "helper" [ v "i" ])) ]);
          Return (v "acc") ] ]

let test_perfunction_differential () =
  let config = Ropc.Config.rop_k ~opaque:true ~hiding:true ~pf:true 1.0 in
  let native_img, r = rewrite_result ~config two_fn_prog [ "main"; "helper" ] in
  List.iter
    (fun args ->
       let n = run native_img "main" args in
       let v = run r.Ropc.Rewriter.image "main" args in
       if n <> v then
         Alcotest.failf "main+pf: native=%Ld rop=%Ld" n v)
    inputs_n;
  (* the two sides must genuinely differ: exactly the sensitive functions
     carry opaque slots *)
  let opaque_funcs =
    List.filter_map
      (fun (f : A.func) ->
         if
           Array.exists
             (fun (_, s) ->
                match s with Ropc.Chain.S_opaque _ -> true | _ -> false)
             f.A.f_layout
         then Some f.A.f_name
         else None)
      r.Ropc.Rewriter.audit.A.a_funcs
  in
  List.iter
    (fun fname ->
       let expected = Ropc.Config.name_sensitive fname in
       let got = List.mem fname opaque_funcs in
       if expected <> got then
         Alcotest.failf "%s: sensitive=%b but has-opaque-slots=%b" fname
           expected got)
    [ "main"; "helper" ]

(* --- Serve.Oneshot config naming bijection --------------------------------- *)

let test_config_name_roundtrip () =
  (* every matrix row's name parses back, and re-describing the parsed
     config is stable (same describe string as parsing the name twice) *)
  List.iter
    (fun (name, cfg) ->
       match Serve.Oneshot.config_of_name ~seed:1 name with
       | Error e -> Alcotest.failf "matrix name %s does not parse: %s" name e
       | Ok parsed ->
         Alcotest.(check string)
           (Printf.sprintf "matrix row %s round-trips" name)
           (Ropc.Config.describe cfg)
           (Ropc.Config.describe parsed))
    (Serve.Oneshot.config_matrix 1);
  (* flag combinations round-trip through config_name -> config_of_name *)
  List.iter
    (fun (opaque, hiding, pf) ->
       let name =
         Serve.Oneshot.config_name ~opaque ~hiding ~pf ~plain:false 0.5
       in
       match Serve.Oneshot.config_of_name ~seed:3 name with
       | Error e -> Alcotest.failf "%s does not parse: %s" name e
       | Ok cfg ->
         Alcotest.(check bool) (name ^ " oc") opaque
           cfg.Ropc.Config.opaque_constants;
         Alcotest.(check bool) (name ^ " ih") hiding
           cfg.Ropc.Config.instr_hiding;
         Alcotest.(check bool) (name ^ " pf") pf
           (cfg.Ropc.Config.per_function <> None))
    [ (false, false, false); (true, false, false); (false, true, false);
      (true, true, false); (true, true, true); (false, false, true) ];
  (* malformed layer suffixes are rejected, not silently ignored *)
  List.iter
    (fun bad ->
       match Serve.Oneshot.config_of_name ~seed:1 bad with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "bogus config name %S parsed" bad)
    [ "plain+oc"; "rop0.5+ocx"; "rop0.5+hide"; "rop2.0+oc" ]

let () =
  Alcotest.run "layers"
    [ ("algebra",
       [ Alcotest.test_case "opaque_stored edges" `Quick
           test_opaque_algebra_edges;
         QCheck_alcotest.to_alcotest prop_opaque_algebra ]);
      ("differential",
       [ Alcotest.test_case "fact x layers x seeds" `Quick test_layers_fact;
         Alcotest.test_case "fib x layers" `Quick test_layers_fib;
         Alcotest.test_case "arrays x layers" `Quick test_layers_array;
         Alcotest.test_case "constants x layers" `Quick test_layers_consts;
         QCheck_alcotest.to_alcotest prop_layers_differential ]);
      ("audit",
       [ Alcotest.test_case "opaque slots non-vacuous" `Quick
           test_opaque_nonvacuous;
         Alcotest.test_case "hidden ranges non-vacuous" `Quick
           test_hiding_nonvacuous;
         Alcotest.test_case "layers off by default" `Quick
           test_layers_off_by_default ]);
      ("perfunction",
       [ Alcotest.test_case "for_function resolution" `Quick test_for_function;
         Alcotest.test_case "split differential" `Quick
           test_perfunction_differential ]);
      ("naming",
       [ Alcotest.test_case "oneshot round-trip" `Quick
           test_config_name_roundtrip ]) ]
