(* Portfolio solver: differential verdicts against a brute-force oracle,
   per-strategy agreement, seeded determinism, and deadline discipline.

   The portfolio races four strategies in eval slices; its contract is that
   racing changes *throughput*, never *verdicts*: Sat models must concretely
   satisfy, Unsat must only come from a complete strategy, and a fixed rng
   seed must make the whole race reproducible. *)

module E = Symex.Expr
module S = Symex.Solver

let rng = Util.Rng.create 31337

let rec gen_expr r k depth =
  if depth = 0 then
    if Util.Rng.bool r then E.Const (Int64.of_int (Util.Rng.int r 300))
    else E.Input (Util.Rng.int r k)
  else
    match Util.Rng.int r 7 with
    | 0 | 1 | 2 ->
      let op =
        Util.Rng.choose r
          [ E.Add; E.Sub; E.Mul; E.And; E.Or; E.Xor; E.Eq; E.Ult; E.Slt ]
      in
      E.Bin (op, gen_expr r k (depth - 1), gen_expr r k (depth - 1))
    | 3 ->
      E.Un (Util.Rng.choose r [ E.Not; E.Neg; E.Bool_not ],
            gen_expr r k (depth - 1))
    | _ -> gen_expr r k (depth - 1)

let gen_query r k =
  List.init (1 + Util.Rng.int r 3)
    (fun _ ->
       { S.cond = gen_expr r k (1 + Util.Rng.int r 3);
         want = Util.Rng.bool r })

(* ground truth on a <=2-byte query: sweep the whole input space *)
let oracle_sat cs =
  let sat = ref false in
  let v0 = ref 0 and v1 = ref 0 in
  let input i = if i = 0 then !v0 else if i = 1 then !v1 else 0 in
  (try
     for a = 0 to 255 do
       v0 := a;
       for b = 0 to 255 do
         v1 := b;
         let ev = E.evaluator ~input in
         if List.for_all (fun c -> (ev c.S.cond <> 0L) = c.S.want) cs then begin
           sat := true;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !sat

let test_verdicts_vs_oracle () =
  (* 2-byte corpus with a budget big enough for the enumeration strategy to
     finish: every race must settle, and must settle *correctly* *)
  for i = 1 to 40 do
    let cs = gen_query rng 2 in
    match
      S.solve_verdict ~rng:(Util.Rng.create (1000 + i)) ~mode:S.Portfolio
        ~n_inputs:2 ~max_evals:300_000 cs
    with
    | S.V_sat m ->
      Alcotest.(check bool)
        (Printf.sprintf "query %d: model satisfies concretely" i)
        true (S.check m cs)
    | S.V_unsat ->
      Alcotest.(check bool)
        (Printf.sprintf "query %d: oracle confirms unsat" i)
        false (oracle_sat cs)
    | S.V_unknown ->
      Alcotest.failf
        "query %d: portfolio returned unknown with a complete-budget race" i
  done

let test_unsat_needs_completeness () =
  (* (in0 & 1) == 7 has no model; only a complete strategy may say so *)
  let cs =
    [ { S.cond =
          E.bin E.Eq (E.bin E.And (E.Input 0) (E.Const 1L)) (E.Const 7L);
        want = true } ]
  in
  match
    S.solve_verdict ~mode:S.Portfolio ~n_inputs:1 ~max_evals:50_000 cs
  with
  | S.V_unsat -> ()
  | S.V_sat _ -> Alcotest.fail "unsatisfiable query declared sat"
  | S.V_unknown -> Alcotest.fail "complete 1-byte race must prove unsat"

(* hash-like 3-byte equation: no gradient, zero probe fails, 16.7M space *)
let hard_query () =
  let h in0 in1 in2 =
    E.bin E.Xor
      (E.bin E.Mul (E.bin E.Xor (E.bin E.Mul in0 (E.Const 131L)) in1)
         (E.Const 131L))
      in2
  in
  [ { S.cond =
        E.bin E.Eq
          (h (E.Input 0) (E.Input 1) (E.Input 2))
          (h (E.Const 0x5AL) (E.Const 0xC3L) (E.Const 0x77L));
      want = true } ]

let test_unknown_only_when_all_fail () =
  let cs = hard_query () in
  let budget = 2_000 in
  (match
     S.solve_verdict ~rng:(Util.Rng.create 9) ~mode:S.Portfolio ~n_inputs:3
       ~max_evals:budget cs
   with
   | S.V_unknown -> ()
   | S.V_sat _ -> Alcotest.fail "tiny budget cannot crack the hash query"
   | S.V_unsat -> Alcotest.fail "the query is satisfiable, unsat is unsound");
  (* the per-strategy oracle: each strategy alone, given 4x the portfolio's
     budget, also fails — Unknown really meant "all strategies agree" *)
  let q = S.compile_query cs in
  let bytes = S.relevant_bytes ~n_inputs:3 cs in
  let run_alone st =
    let budget = ref (4 * budget) in
    let rec go () =
      if !budget <= 0 then None
      else
        match st.S.st_step (min 512 !budget) with
        | S.Sr_found m -> Some m
        | S.Sr_exhausted _ -> None
        | S.Sr_running ->
          budget := !budget - 512;
          go ()
    in
    go ()
  in
  let stats = S.make_stats () in
  let strategies =
    [ S.strat_inversion ~stats ~deadline:0.0 ~n_inputs:3 ~bytes q cs;
      S.strat_interval ~stats ~deadline:0.0 ~n_inputs:3 ~bytes q;
      S.strat_enumeration ~stats ~deadline:0.0 ~n_inputs:3 ~bytes q;
      S.strat_local_search ~stats ~deadline:0.0 ~rng:(Util.Rng.create 9)
        ~n_inputs:3 ~bytes q ]
  in
  List.iter
    (fun st ->
       match run_alone st with
       | None -> ()
       | Some _ ->
         Alcotest.failf "strategy %s alone beats the portfolio's Unknown"
           st.S.st_name)
    strategies

let model_str = function
  | S.V_sat m ->
    "sat:" ^ String.concat "," (List.map string_of_int (Array.to_list m))
  | S.V_unsat -> "unsat"
  | S.V_unknown -> "unknown"

let test_deterministic_given_seed () =
  (* identical (query, seed, budget) -> identical verdict AND model: the
     race is single-threaded round-robin, there is no wall-clock input *)
  for i = 1 to 25 do
    let cs = gen_query rng 2 in
    let run () =
      S.solve_verdict
        ~rng:(Util.Rng.of_key ~seed:5 (Printf.sprintf "q%d" i))
        ~mode:S.Portfolio ~n_inputs:2 ~max_evals:40_000 cs
    in
    Alcotest.(check string)
      (Printf.sprintf "query %d: race is reproducible" i)
      (model_str (run ())) (model_str (run ()))
  done

let test_win_counters () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) @@ fun () ->
  let races0 = !S.m_races in
  let wins () = List.fold_left (fun a (_, c) -> a + !c) 0 S.m_wins in
  let wins0 = wins () in
  let cs =
    [ { S.cond = E.bin E.Eq (E.Input 0) (E.Const 77L); want = true } ]
  in
  (match
     S.solve_verdict ~mode:S.Portfolio ~n_inputs:1 ~max_evals:50_000 cs
   with
   | S.V_sat m -> Alcotest.(check int) "race solved" 77 m.(0)
   | _ -> Alcotest.fail "expected sat");
  Alcotest.(check int) "one race recorded" (races0 + 1) !S.m_races;
  Alcotest.(check int) "exactly one winner" (wins0 + 1) (wins ())

let elapsed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let test_deadline_respected () =
  (* regression for the deadline-overshoot bug: a huge eval budget with a
     tight wall deadline must return promptly, in both modes *)
  let cs = hard_query () in
  List.iter
    (fun mode ->
       let v, dt =
         elapsed (fun () ->
             S.solve_verdict ~mode ~deadline:(Unix.gettimeofday () +. 0.15)
               ~n_inputs:3 ~max_evals:50_000_000 cs)
       in
       (* a lucky Sat before the deadline is fine; what must never happen
          is running the eval budget dry past the wall *)
       (match v with
        | S.V_unknown -> ()
        | S.V_sat m ->
          Alcotest.(check bool) "early sat validates" true (S.check m cs)
        | S.V_unsat -> Alcotest.fail "the query is satisfiable");
       Alcotest.(check bool)
         "solve returns within ~4x the deadline margin" true (dt < 0.6))
    [ S.Pipeline; S.Portfolio ]

let test_enumerate_deadline () =
  (* enumerate restarts the solver per value: the restart loop itself must
     poll the wall budget *)
  let e = E.bin E.Add (E.Input 0) (E.bin E.Mul (E.Input 1) (E.Const 256L)) in
  let _, dt =
    elapsed (fun () ->
        S.enumerate ~deadline:(Unix.gettimeofday () +. 0.15) ~n_inputs:2
          ~max_evals:5_000_000 ~limit:100_000 [] e)
  in
  Alcotest.(check bool) "enumerate stops at the deadline" true (dt < 0.6)

let () =
  Alcotest.run "portfolio"
    [ ("verdicts",
       [ Alcotest.test_case "agree with brute-force oracle" `Quick
           test_verdicts_vs_oracle;
         Alcotest.test_case "unsat requires completeness" `Quick
           test_unsat_needs_completeness;
         Alcotest.test_case "unknown means all strategies fail" `Quick
           test_unknown_only_when_all_fail ]);
      ("determinism",
       [ Alcotest.test_case "seeded race is reproducible" `Quick
           test_deterministic_given_seed;
         Alcotest.test_case "win/loss counters" `Quick test_win_counters ]);
      ("deadlines",
       [ Alcotest.test_case "solve_verdict honors wall deadline" `Quick
           test_deadline_respected;
         Alcotest.test_case "enumerate honors wall deadline" `Quick
           test_enumerate_deadline ]) ]
