(* Tests for the symbolic-execution stack: expression semantics vs. the
   concrete machine, solver soundness, and end-to-end attacks (DSE cracks
   native targets; the symbolic stepper agrees with concrete execution on
   obfuscated chains). *)

module E = Symex.Expr

(* --- expression evaluation ------------------------------------------------ *)

let gen_expr_conc =
  (* random expression over 2 input bytes, paired evaluation *)
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then
      oneof
        [ map (fun v -> E.Const (Int64.of_int v)) int;
          oneofl [ E.Input 0; E.Input 1 ] ]
    else
      let sub = go (depth - 1) in
      oneof
        [ (let* a = sub in
           let* b = sub in
           let* op =
             oneofl
               [ E.Add; E.Sub; E.Mul; E.And; E.Or; E.Xor; E.Shl; E.Shr;
                 E.Eq; E.Ult; E.Slt ]
           in
           return (E.Bin (op, a, b)));
          (let* a = sub in
           oneofl [ E.Un (E.Not, a); E.Un (E.Neg, a) ]) ]
  in
  go 4

let prop_eval_matches_compiled =
  QCheck.Test.make ~name:"compiled eval = tree eval" ~count:500
    QCheck.(pair (make gen_expr_conc) (pair (int_bound 255) (int_bound 255)))
    (fun (e, (b0, b1)) ->
       let input i = if i = 0 then b0 else b1 in
       let tree = E.eval ~input e in
       let memo = (E.evaluator ~input) e in
       let comp = E.compile [ e ] in
       let v = E.run comp ~input in
       tree = memo && tree = v.(comp.E.roots.(0)))

let prop_solver_sound =
  QCheck.Test.make ~name:"solver models satisfy constraints" ~count:200
    QCheck.(make gen_expr_conc)
    (fun e ->
       let cs = [ { Symex.Solver.cond = e; want = true } ] in
       match Symex.Solver.solve ~n_inputs:2 ~max_evals:70000 cs with
       | Some m -> Symex.Solver.check m cs
       | None -> true)

let test_solver_finds_eq () =
  (* in[0] ^ 0x5A == 0x33 *)
  let e =
    E.bin E.Eq (E.bin E.Xor (E.Input 0) (E.Const 0x5AL)) (E.Const 0x33L)
  in
  match Symex.Solver.solve ~n_inputs:1 ~max_evals:1000
          [ { Symex.Solver.cond = e; want = true } ]
  with
  | Some m -> Alcotest.(check int) "x" (0x5A lxor 0x33) m.(0)
  | None -> Alcotest.fail "no model"

let test_solver_unsat () =
  let e = E.bin E.Eq (E.bin E.And (E.Input 0) (E.Const 1L)) (E.Const 7L) in
  Alcotest.(check bool) "unsat" true
    (Symex.Solver.solve ~n_inputs:1 ~max_evals:1000
       [ { Symex.Solver.cond = e; want = true } ]
     = None)

(* --- symbolic stepper vs concrete machine ---------------------------------- *)

(* run both engines on a corpus function for the same input; RAX must agree *)
let sym_matches_concrete ?config (t : Minic.Randomfuns.t) input =
  let img = Minic.Codegen.compile t.prog in
  let img =
    match config with
    | None -> img
    | Some config ->
      (Ropc.Rewriter.rewrite img ~functions:[ "target" ] ~config).Ropc.Rewriter.image
  in
  let n_inputs = Int64.to_int (Int64.add (Int64.div (Int64.of_int 63) 8L) 1L) in
  ignore n_inputs;
  let n_inputs = t.params.Minic.Randomfuns.input_size in
  let tgt = { Symex.Engine.img; func = "target"; n_inputs } in
  let ctx =
    Symex.Engine.make_ctx ~goal:Symex.Engine.G_secret
      ~budget:{ Symex.Engine.default_budget with wall_seconds = 60.0 } tgt
  in
  let witness = Array.init n_inputs (fun i ->
      Int64.to_int (Int64.logand (Int64.shift_right_logical input (8 * i)) 0xFFL))
  in
  let st, _, outcome = Symex.Engine.concolic_path ctx witness in
  match outcome with
  | `Halt ->
    let ev = E.evaluator ~input:(Symex.Solver.input_of_model witness) in
    let sym = ev (Symex.Sym_state.get st X86.Isa.RAX) in
    let conc = (Runner.call_exn ~fuel:200_000_000 img ~func:"target" ~args:[ input ]).Runner.rax in
    sym = conc
  | `Fault _ -> false
  | `Fuel -> true   (* inconclusive: P3-heavy chains can outlast the budget *)

let corpus_lazy = lazy (Minic.Randomfuns.corpus ())

let prop_sym_concrete_native =
  QCheck.Test.make ~name:"symbolic = concrete (native)" ~count:25
    QCheck.(pair (int_range 0 71) (map Int64.of_int int))
    (fun (idx, input) ->
       let t = List.nth (Lazy.force corpus_lazy) idx in
       sym_matches_concrete t (Int64.logand input t.Minic.Randomfuns.input_mask))

let prop_sym_concrete_rop =
  QCheck.Test.make ~name:"symbolic = concrete (ROP+P1+P3)" ~count:10
    QCheck.(pair (int_range 0 71) (map Int64.of_int int))
    (fun (idx, input) ->
       let t = List.nth (Lazy.force corpus_lazy) idx in
       sym_matches_concrete ~config:(Ropc.Config.rop_k 0.25) t
         (Int64.logand input t.Minic.Randomfuns.input_mask))

(* --- end-to-end attacks ----------------------------------------------------- *)

let scaled_fun ~input_size ~control_index =
  Minic.Randomfuns.generate
    (Minic.Randomfuns.default_params ~loop_size:5 ~seed:1 ~input_size
       ~control_index ())

let test_dse_cracks_native () =
  let t = scaled_fun ~input_size:1 ~control_index:0 in
  let img = Minic.Codegen.compile t.prog in
  let tgt = { Symex.Engine.img; func = "target"; n_inputs = 1 } in
  let budget = { Symex.Engine.default_budget with wall_seconds = 10.0 } in
  let r = Symex.Engine.dse ~goal:Symex.Engine.G_secret ~budget tgt in
  match r.Symex.Engine.secret_input with
  | Some m ->
    let got = (Runner.call_exn img ~func:"target" ~args:[ Int64.of_int m.(0) ]).Runner.rax in
    Alcotest.(check int64) "accepted" 1L got
  | None -> Alcotest.fail "DSE failed on an unobfuscated 1-byte target"

let test_se_cracks_native () =
  let t = scaled_fun ~input_size:1 ~control_index:0 in
  let img = Minic.Codegen.compile t.prog in
  let tgt = { Symex.Engine.img; func = "target"; n_inputs = 1 } in
  let budget = { Symex.Engine.default_budget with wall_seconds = 10.0 } in
  let r = Symex.Engine.se ~goal:Symex.Engine.G_secret ~budget tgt in
  Alcotest.(check bool) "found" true (r.Symex.Engine.secret_input <> None)

let test_dse_coverage_native () =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:5 ~seed:2 ~input_size:1
         ~control_index:1 ~point_test:false ~coverage_probes:true ())
  in
  let img = Minic.Codegen.compile t.prog in
  let tgt = { Symex.Engine.img; func = "target"; n_inputs = 1 } in
  let budget = { Symex.Engine.default_budget with wall_seconds = 10.0 } in
  let r = Symex.Engine.dse ~goal:Symex.Engine.G_coverage ~budget tgt in
  Alcotest.(check bool)
    (Printf.sprintf "covered %d/%d" (Hashtbl.length r.Symex.Engine.covered) t.n_probes)
    true
    (Hashtbl.length r.Symex.Engine.covered >= t.n_probes - 1)

let test_dse_slowed_by_rop () =
  (* the headline effect: a target DSE cracks fast natively resists when
     ROP-encoded with P1+P3 *)
  let t = scaled_fun ~input_size:1 ~control_index:0 in
  let img = Minic.Codegen.compile t.prog in
  let budget = { Symex.Engine.default_budget with wall_seconds = 3.0 } in
  let tgt = { Symex.Engine.img; func = "target"; n_inputs = 1 } in
  let r_native = Symex.Engine.dse ~goal:Symex.Engine.G_secret ~budget tgt in
  Alcotest.(check bool) "native cracked" true (r_native.Symex.Engine.secret_input <> None);
  let rw =
    Ropc.Rewriter.rewrite img ~functions:[ "target" ]
      ~config:(Ropc.Config.rop_k 1.0)
  in
  let tgtr =
    { Symex.Engine.img = rw.Ropc.Rewriter.image; func = "target"; n_inputs = 1 }
  in
  let r_rop = Symex.Engine.dse ~goal:Symex.Engine.G_secret ~budget tgtr in
  (* either not cracked, or took markedly longer *)
  Alcotest.(check bool) "rop resists or is much slower" true
    (r_rop.Symex.Engine.secret_input = None
     || r_rop.Symex.Engine.time > 5.0 *. r_native.Symex.Engine.time)

(* --- adversarial inputs: contradictions, faults, budget exhaustion ----------- *)

let test_contradictory_constraints () =
  (* a satisfiable condition asserted both ways can have no model *)
  let e =
    E.bin E.Eq (E.bin E.And (E.Input 0) (E.Const 0xFFL)) (E.Const 3L)
  in
  Alcotest.(check bool) "contradiction is unsat" true
    (Symex.Solver.solve ~n_inputs:1 ~max_evals:5_000
       [ { Symex.Solver.cond = e; want = true };
         { Symex.Solver.cond = e; want = false } ]
     = None)

(* target: idiv of min_int by (input - 2).  input=1 divides by -1 and
   overflows #DE; input=2 divides by zero; input=0 divides by -2 and
   returns cleanly. *)
let div_fault_image () =
  let open X86.Isa in
  let body =
    [ Mov (W64, Reg RAX, Imm Int64.min_int);
      Mov (W64, Reg RCX, Reg RDI);
      Alu (Sub, W64, Reg RCX, Imm 2L);
      Mov (W64, Reg RDX, Reg RAX);
      Shift (Sar, W64, Reg RDX, S_imm 63);
      MulDiv (Idiv, Reg RCX);
      Ret ]
  in
  let text = X86.Encode.encode_list body in
  let img = Image.create () in
  ignore
    (Image.add_section img ~name:".text" ~addr:Image.text_base ~data:text
       ~writable:false ~executable:true);
  Image.add_symbol img ~is_function:true ~name:"target" ~addr:Image.text_base
    ~size:(Bytes.length text) ();
  img

let test_div_overflow_fault_paths () =
  let img = div_fault_image () in
  (* the concrete machine's verdicts *)
  let conc arg = (Runner.call img ~func:"target" ~args:[ arg ]).Runner.status in
  Alcotest.(check bool) "concrete overflow" true
    (conc 1L = Machine.Exec.Fault "divide overflow");
  Alcotest.(check bool) "concrete divide by zero" true
    (conc 2L = Machine.Exec.Fault "divide by zero");
  Alcotest.(check bool) "concrete clean path" true
    (conc 0L = Machine.Exec.Halted);
  (* the concolic stepper must fault in exactly the same places *)
  let tgt = { Symex.Engine.img; func = "target"; n_inputs = 1 } in
  let ctx =
    Symex.Engine.make_ctx ~goal:Symex.Engine.G_secret
      ~budget:{ Symex.Engine.default_budget with wall_seconds = 10.0 } tgt
  in
  let outcome w =
    let _, _, o = Symex.Engine.concolic_path ctx [| w |] in
    o
  in
  Alcotest.(check bool) "symbolic overflow fault" true
    (outcome 1 = `Fault "divide overflow");
  Alcotest.(check bool) "symbolic divide-by-zero fault" true
    (outcome 2 = `Fault "divide by zero");
  Alcotest.(check bool) "symbolic clean path" true (outcome 0 = `Halt)

let test_budget_exhaustion_returns_unknown () =
  (* a P1-hardened target under a ~50 ms budget: the engine must come back
     with Unknown (no secret, timed_out set) instead of spinning *)
  let t = scaled_fun ~input_size:1 ~control_index:0 in
  let img = Minic.Codegen.compile t.prog in
  let rw =
    Ropc.Rewriter.rewrite img ~functions:[ "target" ]
      ~config:(Ropc.Config.rop_k 1.0)
  in
  let tgt =
    { Symex.Engine.img = rw.Ropc.Rewriter.image; func = "target";
      n_inputs = 1 }
  in
  let budget = { Symex.Engine.default_budget with wall_seconds = 0.05 } in
  let t0 = Unix.gettimeofday () in
  let r = Symex.Engine.dse ~goal:Symex.Engine.G_secret ~budget tgt in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "no secret under an impossible deadline" true
    (r.Symex.Engine.secret_input = None);
  Alcotest.(check bool) "timed_out reported" true
    r.Symex.Engine.stats.Symex.Engine.timed_out;
  Alcotest.(check bool)
    (Printf.sprintf "returned promptly (%.2fs)" elapsed)
    true (elapsed < 10.0)

let test_oversized_query_refused () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  (* individually satisfiable (any input >= 8 works), but one constraint past
     the solver's refusal threshold *)
  let cs =
    List.init (Symex.Solver.max_constraints + 1) (fun i ->
        { Symex.Solver.cond =
            E.bin E.Eq (E.Input 0) (E.Const (Int64.of_int (i mod 8)));
          want = false })
  in
  let t0 = Unix.gettimeofday () in
  let r = Symex.Solver.solve ~n_inputs:1 ~max_evals:60_000 cs in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "refused, not solved" true (r = None);
  Alcotest.(check bool)
    (Printf.sprintf "refused outright (%.2fs)" elapsed)
    true (elapsed < 2.0);
  Alcotest.(check bool) "refusal is visible in metrics" true
    (List.assoc_opt "symex.solver.refused_oversized"
       (Obs.Metrics.snapshot ())
     = Some (Obs.Metrics.Counter 1));
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ()

let () =
  Alcotest.run "symex"
    [ ("expr",
       List.map QCheck_alcotest.to_alcotest
         [ prop_eval_matches_compiled; prop_solver_sound ]);
      ("solver",
       [ Alcotest.test_case "eq inversion" `Quick test_solver_finds_eq;
         Alcotest.test_case "unsat" `Quick test_solver_unsat ]);
      ("stepper",
       List.map QCheck_alcotest.to_alcotest
         [ prop_sym_concrete_native; prop_sym_concrete_rop ]);
      ("adversarial",
       [ Alcotest.test_case "contradictory constraints" `Quick
           test_contradictory_constraints;
         Alcotest.test_case "div fault paths" `Quick
           test_div_overflow_fault_paths;
         Alcotest.test_case "budget exhaustion -> unknown" `Quick
           test_budget_exhaustion_returns_unknown;
         Alcotest.test_case "oversized query refused" `Quick
           test_oversized_query_refused ]);
      ("attacks",
       [ Alcotest.test_case "dse cracks native" `Slow test_dse_cracks_native;
         Alcotest.test_case "se cracks native" `Slow test_se_cracks_native;
         Alcotest.test_case "dse coverage native" `Slow test_dse_coverage_native;
         Alcotest.test_case "rop slows dse" `Slow test_dse_slowed_by_rop ]) ]
