(* Adversarial fixtures for the ROP-aware attacker toolbox (§III-B2, §V).

   The hand-built images pin the analyzers' classification counts down
   exactly: a chain with a recognized cmov branch, an unresolved RSP update
   and an unaligned overlapping gadget for ROPDissector; an executable chain
   with a mid-chain stack pivot for ROPMEMU; and a P2-style trampoline whose
   alternate path faults when the flags are blindly flipped.  False-positive
   bait (ret-terminated bytes in .data, garbage slot values) checks what the
   analyzers must NOT count.  A second tier runs the real rewriter with P2
   on and asserts the paper's qualitative claims (unresolved displacements,
   faulting flipped traces). *)

open X86.Isa

let enc is = X86.Encode.encode_list is

(* Lay gadgets out back to back in .text; returns (bytes, name -> addr). *)
let build_text gadgets =
  let buf = Buffer.create 128 in
  let addrs =
    List.map
      (fun (name, is) ->
         let a = Int64.add Image.text_base (Int64.of_int (Buffer.length buf)) in
         Buffer.add_bytes buf (enc is);
         (name, a))
      gadgets
  in
  (Buffer.to_bytes buf, fun name -> List.assoc name addrs)

let chain_of_slots slots =
  let b = Bytes.create (8 * List.length slots) in
  List.iteri (fun i v -> Bytes.set_int64_le b (8 * i) v) slots;
  b

(* --- fixture A: static chain for ROPDissector ------------------------------- *)

(* Chain layout (8-byte slots):
     0: pop-rax gadget      8: 42 (popped immediate)
    16: branch gadget      24: 24 (displacement, popped)
    32: nop gadget         40: 0 (terminator: not a code address)
    48: BAIT -> .data      56: add-rsp-rbx gadget (unresolved)
    64: nop gadget (never walked; aligned guess candidate)
   then 4 pad bytes and, at unaligned offset 76, a pointer to the ret-suffix
   of the pop gadget (an overlapping gadget only a stride-1 scan can see). *)
let fixture_a () =
  let text, addr =
    build_text
      [ ("pop_rax", [ Pop (Reg RAX); Ret ]);
        ("branch",
         [ Pop (Reg RCX); Mov (W64, Reg RDX, Imm 0L);
           Cmov (E, RCX, Reg RDX); Alu (Add, W64, Reg RSP, Reg RCX); Ret ]);
        ("nop", [ Nop; Ret ]);
        ("unres", [ Alu (Add, W64, Reg RSP, Reg RBX); Ret ]) ]
  in
  let img = Image.create () in
  ignore
    (Image.add_section img ~name:".text" ~addr:Image.text_base ~data:text
       ~writable:false ~executable:true);
  (* ret-terminated bait bytes in .data: valid gadget encodings that must
     not be counted because they are not in an executable section *)
  let ret_bait = Bytes.concat Bytes.empty (List.init 8 (fun _ -> enc [ Ret ])) in
  ignore
    (Image.add_section img ~name:".data" ~addr:Image.data_base ~data:ret_bait
       ~writable:true ~executable:false);
  let slots =
    [ addr "pop_rax"; 42L;
      addr "branch"; 24L;
      addr "nop"; 0L;
      Image.data_base;                            (* bait: .data pointer *)
      addr "unres";
      addr "nop" ]
  in
  (* overlapping gadget: the ret byte inside pop_rax's encoding *)
  let pop_len = Bytes.length (enc [ Pop (Reg RAX) ]) in
  let suffix = Int64.add (addr "pop_rax") (Int64.of_int pop_len) in
  let tail = Bytes.create 12 in
  Bytes.fill tail 0 12 '\000';
  Bytes.set_int64_le tail 4 suffix;
  let chain = Bytes.cat (chain_of_slots slots) tail in
  ignore
    (Image.add_section img ~name:".rop" ~addr:Image.rop_base ~data:chain
       ~writable:true ~executable:false);
  (img, Bytes.length chain)

let test_dissector_classification () =
  let img, chain_len = fixture_a () in
  let r =
    Ropaware.Ropdissector.analyze img ~chain_addr:Image.rop_base ~chain_len
  in
  (* entry block, the branch fall-through at 32 and the flipped path at 56 *)
  Alcotest.(check int) "blocks" 3
    (Hashtbl.length r.Ropaware.Ropdissector.blocks);
  List.iter
    (fun off ->
       Alcotest.(check bool) (Printf.sprintf "block at %Ld" off) true
         (Hashtbl.mem r.Ropaware.Ropdissector.blocks off))
    [ 0L; 32L; 56L ];
  Alcotest.(check int) "recognized+flipped branches" 1
    r.Ropaware.Ropdissector.branches;
  Alcotest.(check int) "unresolved rsp updates" 1
    r.Ropaware.Ropdissector.unresolved;
  Alcotest.(check int) "distinct gadgets" 4
    (Hashtbl.length r.Ropaware.Ropdissector.gadgets_seen)

let test_gadget_guess_bait () =
  let img, chain_len = fixture_a () in
  let aligned =
    Ropaware.Ropdissector.gadget_guess ~stride:8 img
      ~chain_addr:Image.rop_base ~chain_len
  in
  (* slots 0, 16, 32, 56, 64 hold decodable code pointers *)
  Alcotest.(check int) "aligned candidates" 5
    aligned.Ropaware.Ropdissector.candidates;
  Alcotest.(check bool) ".data bait not counted" false
    (List.mem 48 aligned.Ropaware.Ropdissector.candidate_offsets);
  let byte =
    Ropaware.Ropdissector.gadget_guess ~stride:1 img
      ~chain_addr:Image.rop_base ~chain_len
  in
  Alcotest.(check bool) "stride-1 finds the unaligned overlapping gadget" true
    (List.mem 76 byte.Ropaware.Ropdissector.candidate_offsets);
  Alcotest.(check bool) "stride-1 sees strictly more than stride-8" true
    (byte.Ropaware.Ropdissector.candidates
     > aligned.Ropaware.Ropdissector.candidates);
  Alcotest.(check bool) ".data bait not counted at stride 1" false
    (List.mem 48 byte.Ropaware.Ropdissector.candidate_offsets)

(* The instrumentation satellite: classification tallies land in the
   metrics registry with exactly the analyzer's result counts. *)
let test_dissector_metrics_tallies () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  let img, chain_len = fixture_a () in
  let r =
    Ropaware.Ropdissector.analyze img ~chain_addr:Image.rop_base ~chain_len
  in
  let g =
    Ropaware.Ropdissector.gadget_guess ~stride:8 img
      ~chain_addr:Image.rop_base ~chain_len
  in
  let snap = Obs.Metrics.snapshot () in
  let counter k =
    match List.assoc_opt k snap with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> Alcotest.fail ("missing counter " ^ k)
  in
  Alcotest.(check int) "analyses" 1 (counter "ropdissector.analyses");
  Alcotest.(check int) "blocks tally"
    (Hashtbl.length r.Ropaware.Ropdissector.blocks)
    (counter "ropdissector.blocks");
  Alcotest.(check int) "branches tally" r.Ropaware.Ropdissector.branches
    (counter "ropdissector.branches");
  Alcotest.(check int) "unresolved tally" r.Ropaware.Ropdissector.unresolved
    (counter "ropdissector.unresolved");
  Alcotest.(check int) "guess tally" g.Ropaware.Ropdissector.candidates
    (counter "ropdissector.guess_candidates");
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ()

(* --- fixtures B/C: executable chains for ROPMEMU ----------------------------- *)

(* An executable image whose "target" pivots into a chain that compares RDI
   against 5, branches on the result, and mid-chain pivots to a second chain
   region before returning.  [alt_garbage] replaces the alternate path with
   a non-code slot value: the P2-trampoline effect, where a blindly flipped
   branch sends RSP into garbage and the trace faults. *)
let executable_fixture ~alt_garbage =
  let chain2_addr = Int64.add Image.rop_base 128L in
  let text, addr =
    build_text
      [ ("cmp", [ Alu (Cmp, W64, Reg RDI, Imm 5L); Ret ]);
        ("branch",
         [ Pop (Reg RCX); Mov (W64, Reg RDX, Imm 0L);
           Cmov (E, RCX, Reg RDX); Alu (Add, W64, Reg RSP, Reg RCX); Ret ]);
        ("pop_rax", [ Pop (Reg RAX); Ret ]);
        ("pivot2", [ Mov (W64, Reg RSP, Imm chain2_addr); Ret ]);
        ("nop", [ Nop; Ret ]);
        ("target", [ Mov (W64, Reg RSP, Imm Image.rop_base); Ret ]) ]
  in
  let img = Image.create () in
  ignore
    (Image.add_section img ~name:".text" ~addr:Image.text_base ~data:text
       ~writable:false ~executable:true);
  Image.add_symbol img ~is_function:true ~name:"target" ~addr:(addr "target")
    ~size:(Bytes.length (enc [ Mov (W64, Reg RSP, Imm Image.rop_base); Ret ]))
    ();
  let slots =
    [ addr "cmp";                           (*   0 *)
      addr "branch"; 24L;                   (*   8, 16: displacement 24 *)
      addr "pop_rax"; 111L; addr "pivot2";  (*  24: RDI = 5 path *)
      (if alt_garbage then 0x1234L else addr "pop_rax");  (* 48: RDI <> 5 *)
      222L;
      addr "pivot2" ]                       (*  64 *)
  in
  let chain1 = chain_of_slots slots in
  let chain2 = chain_of_slots [ addr "nop"; Image.exit_stub_addr ] in
  let pad = Bytes.make (128 - Bytes.length chain1) '\000' in
  let chain = Bytes.concat Bytes.empty [ chain1; pad; chain2 ] in
  ignore
    (Image.add_section img ~name:".rop" ~addr:Image.rop_base ~data:chain
       ~writable:true ~executable:false);
  img

let test_pivot_chain_executes () =
  let img = executable_fixture ~alt_garbage:false in
  let r5 = Runner.call_exn img ~func:"target" ~args:[ 5L ] in
  Alcotest.(check int64) "equal path" 111L r5.Runner.rax;
  let r7 = Runner.call_exn img ~func:"target" ~args:[ 7L ] in
  Alcotest.(check int64) "alternate path" 222L r7.Runner.rax

let memu_config =
  { Ropaware.Ropmemu.fuel = 200_000; max_traces = 40; max_flip_depth = 1 }

let test_memu_flip_reveals_pivoted_path () =
  let img = executable_fixture ~alt_garbage:false in
  let baseline_only =
    Ropaware.Ropmemu.explore
      ~config:{ memu_config with Ropaware.Ropmemu.max_traces = 1 } img
      ~func:"target" ~args:[ 5L ]
  in
  let full =
    Ropaware.Ropmemu.explore ~config:memu_config img ~func:"target"
      ~args:[ 5L ]
  in
  Alcotest.(check int) "one flag site (the cmov)" 1
    full.Ropaware.Ropmemu.flag_sites;
  Alcotest.(check int) "baseline + one flipped trace" 2
    full.Ropaware.Ropmemu.traces;
  Alcotest.(check int) "both paths are valid chain code" 0
    full.Ropaware.Ropmemu.faulted_traces;
  Alcotest.(check bool) "flipping uncovers slots beyond the baseline" true
    (Hashtbl.length full.Ropaware.Ropmemu.discovered_slots
     > Hashtbl.length baseline_only.Ropaware.Ropmemu.discovered_slots)

let test_memu_p2_trampoline_faults () =
  let img = executable_fixture ~alt_garbage:true in
  (* the untampered run still works: only the flipped path is a trap *)
  let r5 = Runner.call_exn img ~func:"target" ~args:[ 5L ] in
  Alcotest.(check int64) "honest run intact" 111L r5.Runner.rax;
  let r =
    Ropaware.Ropmemu.explore ~config:memu_config img ~func:"target"
      ~args:[ 5L ]
  in
  Alcotest.(check int) "traces" 2 r.Ropaware.Ropmemu.traces;
  Alcotest.(check int) "blind flip faults" 1
    r.Ropaware.Ropmemu.faulted_traces

(* --- the real rewriter under P2 ---------------------------------------------- *)

let rewritten ~p2 =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:4 ~seed:2 ~input_size:1
         ~control_index:5 ())
  in
  let img = Minic.Codegen.compile t.prog in
  let config =
    if p2 then { (Ropc.Config.plain ()) with Ropc.Config.p2 = true }
    else Ropc.Config.plain ()
  in
  let r = Ropc.Rewriter.rewrite img ~functions:[ "target" ] ~config in
  match List.assoc "target" r.Ropc.Rewriter.funcs with
  | Ok st ->
    (r.Ropc.Rewriter.image, st.Ropc.Rewriter.fs_chain_addr,
     st.Ropc.Rewriter.fs_chain_bytes)
  | Error e -> failwith (Ropc.Rewriter.failure_to_string e)

let test_p2_unresolved_for_dissector () =
  let img, chain_addr, chain_len = rewritten ~p2:false in
  let plain = Ropaware.Ropdissector.analyze img ~chain_addr ~chain_len in
  Alcotest.(check bool) "plain chain: multiple blocks discovered" true
    (Hashtbl.length plain.Ropaware.Ropdissector.blocks > 1);
  Alcotest.(check bool) "plain chain: branches recognized" true
    (plain.Ropaware.Ropdissector.branches > 0);
  let img, chain_addr, chain_len = rewritten ~p2:true in
  let p2 = Ropaware.Ropdissector.analyze img ~chain_addr ~chain_len in
  Alcotest.(check bool) "P2: displacements statically unresolved" true
    (p2.Ropaware.Ropdissector.unresolved > 0)

let test_p2_faults_ropmemu () =
  let img, _, _ = rewritten ~p2:true in
  let r =
    Ropaware.Ropmemu.explore
      ~config:{ memu_config with Ropaware.Ropmemu.fuel = 500_000 } img
      ~func:"target" ~args:[ 5L ]
  in
  Alcotest.(check bool) "flips attempted" true (r.Ropaware.Ropmemu.traces > 1);
  Alcotest.(check bool) "P2 turns blind flips into faults" true
    (r.Ropaware.Ropmemu.faulted_traces > 0)

let () =
  Alcotest.run "ropaware"
    [ ("ropdissector",
       [ Alcotest.test_case "classification counts" `Quick
           test_dissector_classification;
         Alcotest.test_case "gadget guessing vs bait" `Quick
           test_gadget_guess_bait;
         Alcotest.test_case "metric tallies" `Quick
           test_dissector_metrics_tallies ]);
      ("ropmemu",
       [ Alcotest.test_case "pivot chain executes" `Quick
           test_pivot_chain_executes;
         Alcotest.test_case "flip reveals pivoted path" `Quick
           test_memu_flip_reveals_pivoted_path;
         Alcotest.test_case "p2 trampoline faults" `Quick
           test_memu_p2_trampoline_faults ]);
      ("rewriter-p2",
       [ Alcotest.test_case "dissector unresolved under p2" `Slow
           test_p2_unresolved_for_dissector;
         Alcotest.test_case "ropmemu faults under p2" `Slow
           test_p2_faults_ropmemu ]) ]
