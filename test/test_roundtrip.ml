(* Property tests over the ISA/emulator substrate, driven by the repo's
   deterministic Util.Rng so every failure replays from the printed seed:

   - encode -> decode round-trips on randomly generated instructions, in
     both compact and wide-immediate forms, including decode at shifted
     offsets into a junk-padded byte stream;
   - decode totality and encodability of everything the decoder accepts
     at arbitrary (unaligned) offsets into random bytes;
   - neg/adc/cmov flag semantics checked against a bit-level reference
     model (a ripple-carry full adder), since the paper's branch encoding
     (neg; adc; cmov) depends on these exact flags. *)

open X86.Isa
module R = Util.Rng

let seed = 0x7e57_5eed

(* --- Rng-driven instruction generator ----------------------------------- *)

let gen_reg rng = reg_of_index (R.int rng 16)
let gen_width rng = width_of_index (R.int rng 4)
let gen_cc rng = cc_of_index (R.int rng 16)

let gen_disp rng =
  if R.bool rng then Int64.of_int (R.range rng (-128) 127)
  else Int64.of_int (R.range rng (-2_000_000) 2_000_000)

let gen_mem rng =
  { base = (if R.bool rng then Some (gen_reg rng) else None);
    index =
      (if R.int rng 3 = 0 then Some (gen_reg rng, R.choose rng [ 1; 2; 4; 8 ])
       else None);
    disp = gen_disp rng }

let gen_imm rng =
  match R.int rng 3 with
  | 0 -> Int64.of_int (R.range rng (-128) 127)
  | 1 -> Int64.of_int (R.range rng (-2_000_000_000) 2_000_000_000)
  | _ -> R.next64 rng

let gen_operand rng =
  match R.int rng 3 with
  | 0 -> Reg (gen_reg rng)
  | 1 -> Imm (gen_imm rng)
  | _ -> Mem (gen_mem rng)

let gen_dst rng =
  if R.bool rng then Reg (gen_reg rng) else Mem (gen_mem rng)

(* dst/src pair avoiding mem-to-mem, which the encoder rejects *)
let gen_dst_src rng =
  let d = gen_dst rng in
  let s = gen_operand rng in
  match (d, s) with Mem _, Mem _ -> (d, Reg RAX) | _ -> (d, s)

let gen_rel rng = R.range rng (-1_000_000) 1_000_000

let gen_instr rng =
  match R.int rng 20 with
  | 0 -> R.choose rng [ Nop; Ret; Leave; Hlt ]
  | 1 ->
    let w = gen_width rng in
    let d, s = gen_dst_src rng in
    Mov (w, d, s)
  | 2 ->
    let w = gen_width rng in
    let d = gen_dst rng in
    let s = gen_dst rng in
    (match (d, s) with
     | Mem _, Mem _ -> Xchg (w, d, Reg RCX)
     | _ -> Xchg (w, d, s))
  | 3 | 4 ->
    let o = R.choose rng [ Add; Sub; And; Or; Xor; Adc; Sbb; Cmp; Test ] in
    let w = gen_width rng in
    let d, s = gen_dst_src rng in
    Alu (o, w, d, s)
  | 5 ->
    let o = R.choose rng [ Neg; Not; Inc; Dec ] in
    Unary (o, gen_width rng, gen_dst rng)
  | 6 -> Imul2 (gen_width rng, gen_reg rng, gen_operand rng)
  | 7 -> MulDiv (R.choose rng [ Mul; Imul1; Div; Idiv ], gen_dst rng)
  | 8 ->
    let o = R.choose rng [ Shl; Shr; Sar; Rol; Ror ] in
    let c = if R.bool rng then S_cl else S_imm (R.range rng 0 255) in
    Shift (o, gen_width rng, gen_dst rng, c)
  | 9 -> Cmov (gen_cc rng, gen_reg rng, gen_operand rng)
  | 10 -> Setcc (gen_cc rng, gen_dst rng)
  | 11 -> Lea (gen_reg rng, gen_mem rng)
  | 12 -> Push (gen_operand rng)
  | 13 -> Pop (gen_dst rng)
  | 14 -> if R.bool rng then Jmp (J_rel (gen_rel rng)) else Jmp (J_op (gen_dst rng))
  | 15 -> if R.bool rng then Call (J_rel (gen_rel rng)) else Call (J_op (gen_dst rng))
  | 16 -> Jcc (gen_cc rng, gen_rel rng)
  | 17 | 18 ->
    let dw, sw = ext_combo_of_index (R.int rng 6) in
    Movzx (dw, sw, gen_reg rng, gen_operand rng)
  | _ ->
    let dw, sw = ext_combo_of_index (R.int rng 6) in
    Movsx (dw, sw, gen_reg rng, gen_operand rng)

let fail_instr name i extra =
  Alcotest.failf "%s: %s%s" name (X86.Pp.instr_str i) extra

(* --- encode/decode round-trips ------------------------------------------ *)

let test_roundtrip () =
  let rng = R.create seed in
  for _ = 1 to 3000 do
    let i = gen_instr rng in
    let b = X86.Encode.encode i in
    match X86.Decode.decode b 0 with
    | Some (i', len) ->
      if i' <> i then fail_instr "round-trip changed instruction" i
          (" -> " ^ X86.Pp.instr_str i');
      if len <> Bytes.length b then fail_instr "round-trip length" i ""
    | None -> fail_instr "encoded bytes do not decode" i ""
  done

let test_roundtrip_wide () =
  let rng = R.create (seed + 1) in
  for _ = 1 to 1500 do
    let i = gen_instr rng in
    let b = X86.Encode.encode ~wide_imm:true i in
    match X86.Decode.decode b 0 with
    | Some (i', len) ->
      if i' <> i || len <> Bytes.length b then
        fail_instr "wide round-trip" i ""
    | None -> fail_instr "wide encoding does not decode" i ""
  done

(* A stream of instructions embedded at a non-zero offset into junk bytes:
   decoding at each shifted boundary must recover the same instruction the
   in-place linear sweep saw.  This is exactly what the gadget scanner does
   when it decodes from the middle of .text. *)
let test_stream_at_offset () =
  let rng = R.create (seed + 2) in
  for _ = 1 to 200 do
    let n = R.range rng 1 15 in
    let instrs = List.init n (fun _ -> gen_instr rng) in
    let stream = X86.Encode.encode_list instrs in
    let pre = R.range rng 1 7 in
    let post = R.range rng 0 7 in
    let buf = Bytes.create (pre + Bytes.length stream + post) in
    for i = 0 to Bytes.length buf - 1 do
      Bytes.set buf i (Char.chr (R.int rng 256))
    done;
    Bytes.blit stream 0 buf pre (Bytes.length stream);
    let decoded = X86.Decode.decode_all stream in
    if List.length decoded <> n then
      Alcotest.failf "linear sweep lost instructions (%d of %d)"
        (List.length decoded) n;
    List.iter
      (fun (off, i, len) ->
         match X86.Decode.decode buf (pre + off) with
         | Some (i', len') when i' = i && len' = len -> ()
         | Some (i', _) ->
           fail_instr "decode at shifted offset" i
             (" -> " ^ X86.Pp.instr_str i')
         | None -> fail_instr "decode at shifted offset: None" i "")
      decoded
  done

(* Decode never raises at any offset into arbitrary bytes, and anything it
   does accept lies in the encoder's domain (re-encodes to an instruction
   that decodes back to itself). *)
let test_unaligned_total_and_encodable () =
  let rng = R.create (seed + 3) in
  for _ = 1 to 2000 do
    let len = R.range rng 0 32 in
    let buf = Bytes.init len (fun _ -> Char.chr (R.int rng 256)) in
    let off = R.int rng (len + 4) in
    match X86.Decode.decode buf off with
    | None -> ()
    | Some (i, dlen) ->
      if dlen <= 0 || off + dlen > len then
        fail_instr "decoded length out of bounds" i "";
      let b = X86.Encode.encode i in
      (match X86.Decode.decode b 0 with
       | Some (i', _) when i' = i -> ()
       | _ -> fail_instr "decoder output not canonically encodable" i "")
  done

(* --- neg/adc/cmov flags vs a bit-level reference model ------------------- *)

(* Independent model: a ripple-carry full adder over [bits w] bits.  Returns
   (result, carry-out, signed overflow), with overflow computed as
   carry-into-msb xor carry-out-of-msb.  Subtraction and negation are
   modelled as addition of the complement with carry-in, as in hardware. *)
let bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

let ripple_add w a b cin =
  let n = bits w in
  let r = ref 0L in
  let c = ref (if cin then 1 else 0) in
  let c_into_msb = ref 0 in
  for i = 0 to n - 1 do
    if i = n - 1 then c_into_msb := !c;
    let ai = Int64.to_int (Int64.logand (Int64.shift_right_logical a i) 1L) in
    let bi = Int64.to_int (Int64.logand (Int64.shift_right_logical b i) 1L) in
    let s = ai + bi + !c in
    if s land 1 = 1 then r := Int64.logor !r (Int64.shift_left 1L i);
    c := s lsr 1
  done;
  (!r, !c = 1, !c <> !c_into_msb)

let ref_msb w r = Int64.logand (Int64.shift_right_logical r (bits w - 1)) 1L = 1L

let ref_parity r =
  let rec pop acc b = if b = 0 then acc else pop (acc + (b land 1)) (b lsr 1) in
  pop 0 (Int64.to_int (Int64.logand r 0xFFL)) land 1 = 0

let ref_lognot w a =
  Int64.logand (Int64.lognot a)
    (if bits w = 64 then -1L else Int64.sub (Int64.shift_left 1L (bits w)) 1L)

type rflags = { rcf : bool; rzf : bool; rsf : bool; rof : bool; rpf : bool }

let zsp_of w r =
  (r = 0L, ref_msb w r, ref_parity r)

(* neg a  =  0 - a  =  0 + ~a + 1; CF is the borrow, i.e. not carry-out. *)
let ref_neg w a =
  let r, cout, ovf = ripple_add w 0L (ref_lognot w a) true in
  let rzf, rsf, rpf = zsp_of w r in
  (r, { rcf = not cout; rzf; rsf; rof = ovf; rpf })

let ref_adc w a b cin =
  let r, cout, ovf = ripple_add w a b cin in
  let rzf, rsf, rpf = zsp_of w r in
  (r, { rcf = cout; rzf; rsf; rof = ovf; rpf })

(* cmp a, b  =  a + ~b + 1; CF is the borrow. *)
let ref_cmp w a b =
  let r, cout, ovf = ripple_add w a (ref_lognot w b) true in
  let rzf, rsf, rpf = zsp_of w r in
  { rcf = not cout; rzf; rsf; rof = ovf; rpf }

let ref_cc_holds f = function
  | O -> f.rof | NO -> not f.rof
  | B -> f.rcf | AE -> not f.rcf
  | E -> f.rzf | NE -> not f.rzf
  | BE -> f.rcf || f.rzf | A -> not (f.rcf || f.rzf)
  | S -> f.rsf | NS -> not f.rsf
  | P -> f.rpf | NP -> not f.rpf
  | L -> f.rsf <> f.rof | GE -> f.rsf = f.rof
  | LE -> f.rzf || f.rsf <> f.rof | G -> not f.rzf && f.rsf = f.rof

(* Run a short program on the emulator and return (rax, flags at halt). *)
let code_base = 0x400000L
let stack_top = 0x7000_0000L

let run_flags instrs =
  let mem = Machine.Memory.create () in
  Machine.Memory.store_bytes mem code_base (X86.Encode.encode_list instrs);
  Machine.Memory.map mem (Int64.sub stack_top 65536L) 65536;
  let cpu = Machine.Cpu.create mem in
  Machine.Cpu.set_rip cpu code_base;
  Machine.Cpu.set cpu RSP stack_top;
  let t = Machine.Exec.make cpu in
  match Machine.Exec.run ~fuel:1000 t with
  | Machine.Exec.Halted ->
    (Machine.Cpu.get t.Machine.Exec.cpu RAX, Machine.Cpu.flags t.Machine.Exec.cpu)
  | st -> Alcotest.failf "unexpected exit: %a" Machine.Exec.pp_exit st

let check_flags name w a (f : Machine.Semantics.flags) (r : rflags) =
  let open Machine.Semantics in
  if (f.cf, f.zf, f.sf, f.o_f, f.pf) <> (r.rcf, r.rzf, r.rsf, r.rof, r.rpf)
  then
    Alcotest.failf
      "%s w%d a=%Ld: emulator cf=%b zf=%b sf=%b of=%b pf=%b, reference \
       cf=%b zf=%b sf=%b of=%b pf=%b"
      name (bits w) a f.cf f.zf f.sf f.o_f f.pf r.rcf r.rzf r.rsf r.rof r.rpf

(* Operand pool: boundary values for every width plus random 64-bit ones. *)
let interesting w =
  let top = Int64.shift_left 1L (bits w - 1) in
  [ 0L; 1L; 2L; Int64.minus_one; top; Int64.sub top 1L; Int64.add top 1L;
    Int64.sub (Int64.shift_left top 1) 1L ]

let operands rng w =
  interesting w @ List.init 40 (fun _ -> R.next64 rng)

let test_neg_flags () =
  let rng = R.create (seed + 4) in
  List.iter
    (fun w ->
       List.iter
         (fun a ->
            let r_ref, f_ref = ref_neg w (Machine.Semantics.truncate w a) in
            let rax, f =
              run_flags
                [ Mov (W64, Reg RAX, Imm a); Unary (Neg, w, Reg RAX); Hlt ]
            in
            check_flags "neg" w a f f_ref;
            if Machine.Semantics.truncate w rax <> r_ref then
              Alcotest.failf "neg w%d %Ld: result %Ld, reference %Ld"
                (bits w) a (Machine.Semantics.truncate w rax) r_ref)
         (operands rng w))
    [ W8; W16; W32; W64 ]

let test_adc_flags () =
  let rng = R.create (seed + 5) in
  List.iter
    (fun w ->
       for _ = 1 to 120 do
         let a = R.choose rng (operands rng w) in
         let b = R.choose rng (operands rng w) in
         let cin = R.bool rng in
         let am = Machine.Semantics.truncate w a in
         let bm = Machine.Semantics.truncate w b in
         let r_ref, f_ref = ref_adc w am bm cin in
         (* set CF with a full-width add (-1 + 1 carries, 0 + 0 does not),
            then adc: mov does not touch flags *)
         let setup =
           if cin then
             [ Mov (W64, Reg RDX, Imm (-1L)); Alu (Add, W64, Reg RDX, Imm 1L) ]
           else [ Mov (W64, Reg RDX, Imm 0L); Alu (Add, W64, Reg RDX, Imm 0L) ]
         in
         let rax, f =
           run_flags
             (setup
              @ [ Mov (W64, Reg RAX, Imm a); Mov (W64, Reg RCX, Imm b);
                  Alu (Adc, w, Reg RAX, Reg RCX); Hlt ])
         in
         check_flags "adc" w a f f_ref;
         if Machine.Semantics.truncate w rax <> r_ref then
           Alcotest.failf "adc w%d %Ld+%Ld+%b: result %Ld, reference %Ld"
             (bits w) am bm cin (Machine.Semantics.truncate w rax) r_ref
       done)
    [ W8; W16; W32; W64 ]

(* cmp sets the flags, cmov consumes them: the emulator's cmov outcome must
   match the reference model's condition evaluated on reference cmp flags. *)
let test_cmov_after_cmp () =
  let rng = R.create (seed + 6) in
  List.iter
    (fun w ->
       for _ = 1 to 100 do
         let a = R.choose rng (operands rng w) in
         let b = R.choose rng (operands rng w) in
         let cc = gen_cc rng in
         let am = Machine.Semantics.truncate w a in
         let bm = Machine.Semantics.truncate w b in
         let f_ref = ref_cmp w am bm in
         let expect = if ref_cc_holds f_ref cc then 111L else 222L in
         let rax, _ =
           run_flags
             [ Mov (W64, Reg RCX, Imm a); Mov (W64, Reg RDX, Imm b);
               Mov (W64, Reg RAX, Imm 222L); Mov (W64, Reg RBX, Imm 111L);
               Alu (Cmp, w, Reg RCX, Reg RDX);
               Cmov (cc, RAX, Reg RBX); Hlt ]
         in
         if rax <> expect then
           Alcotest.failf "cmov%s after cmp w%d %Ld,%Ld: got %Ld, expected %Ld"
             (X86.Pp.cc_name cc) (bits w) am bm rax expect
       done)
    [ W8; W16; W32; W64 ]

let () =
  Alcotest.run "roundtrip"
    [ ("encode-decode",
       [ Alcotest.test_case "round-trip" `Quick test_roundtrip;
         Alcotest.test_case "round-trip wide imm" `Quick test_roundtrip_wide;
         Alcotest.test_case "stream at shifted offsets" `Quick
           test_stream_at_offset;
         Alcotest.test_case "unaligned decode total + encodable" `Quick
           test_unaligned_total_and_encodable ]);
      ("flag-model",
       [ Alcotest.test_case "neg flags vs ripple adder" `Quick test_neg_flags;
         Alcotest.test_case "adc flags vs ripple adder" `Quick test_adc_flags;
         Alcotest.test_case "cmov after cmp vs reference" `Quick
           test_cmov_after_cmp ]) ]
