(* Static chain verifier (lib/verify) tests.

   Positive: across the Table I/II configuration matrix, rewriting a program
   and running the four passes yields zero diagnostics — the verifier accepts
   everything the rewriter actually produces (the full-corpus version of this
   check runs as `dune build @check`).

   Negative: each fault-injection test corrupts one claim or one stretch of
   image bytes and asserts the verifier reports the matching diagnostic kind.
   This is what makes the positive result meaningful: a checker that cannot
   reject anything proves nothing. *)

open Minic.Ast
module A = Ropc.Audit
module R = Analysis.Regset

let fact_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "fact"
        [ set "r" (c 1);
          For (set "i" (c 1), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "r" (Bin (Mul, v "r", v "i")) ]);
          Return (v "r") ] ]

let switch_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "a" ] "classify"
        [ Switch (v "n",
                  [ (0, [ Return (c 100) ]); (1, [ Return (c 101) ]);
                    (2, [ Return (c 102) ]); (4, [ Return (c 104) ]) ],
                  [ Return (Bin (Add, v "n", c 1)) ]) ] ]

let call_prog =
  program
    [ func ~params:[ "x" ] "double" [ Return (Bin (Add, v "x", v "x")) ];
      func ~params:[ "n" ] ~locals:[ "s"; "i" ] "main"
        [ set "s" (c 0);
          For (set "i" (c 0), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "s" (Bin (Add, v "s", call "double" [ v "i" ])) ]);
          Return (v "s") ] ]

let configs =
  [ ("plain", Ropc.Config.plain ());
    ("rop0.25", Ropc.Config.rop_k ~seed:1 0.25);
    ("rop1.0", Ropc.Config.rop_k ~seed:1 1.0);
    ("rop1.0+p2", Ropc.Config.rop_k ~seed:1 ~p2:true 1.0);
    ("rop1.0+gc", Ropc.Config.rop_k ~seed:1 ~confusion:true 1.0);
    ("rop1.0+p2+gc", Ropc.Config.rop_k ~seed:1 ~p2:true ~confusion:true 1.0);
    ("rop1.0+oc", Ropc.Config.rop_k ~seed:1 ~opaque:true 1.0);
    ("rop1.0+ih", Ropc.Config.rop_k ~seed:1 ~hiding:true 1.0);
    ("rop1.0+oc+ih", Ropc.Config.rop_k ~seed:1 ~opaque:true ~hiding:true 1.0);
    ("rop1.0+oc+ih+pf",
     Ropc.Config.rop_k ~seed:1 ~opaque:true ~hiding:true ~pf:true 1.0);
    ("rop1.0+p2+gc+oc+ih",
     Ropc.Config.rop_k ~seed:1 ~p2:true ~confusion:true ~opaque:true
       ~hiding:true 1.0) ]

let rewrite ?(config = Ropc.Config.rop_k ~seed:1 0.25) prog fns =
  let img = Minic.Codegen.compile prog in
  let r = Ropc.Rewriter.rewrite img ~functions:fns ~config in
  List.iter
    (fun (f, res) ->
       match res with
       | Ok _ -> ()
       | Error e ->
         Alcotest.failf "rewrite of %s failed: %s" f
           (Ropc.Rewriter.failure_to_string e))
    r.Ropc.Rewriter.funcs;
  r

(* --- positive: the matrix verifies clean ---------------------------------- *)

let check_clean name r =
  match Verify.Check.check r with
  | [] -> ()
  | ds -> Alcotest.failf "%s: %s" name (Verify.Diag.render_all ds)

let test_matrix_clean () =
  List.iter
    (fun (cname, config) ->
       check_clean ("fact/" ^ cname) (rewrite ~config fact_prog [ "fact" ]);
       check_clean ("classify/" ^ cname)
         (rewrite ~config switch_prog [ "classify" ]);
       check_clean ("call/" ^ cname)
         (rewrite ~config call_prog [ "main"; "double" ]))
    configs

(* seeds diversify gadget pools and chain layouts; the verifier must track *)
let test_seeds_clean () =
  List.iter
    (fun seed ->
       let config = Ropc.Config.rop_k ~seed ~p2:true ~confusion:true 1.0 in
       check_clean
         (Printf.sprintf "fact/seed%d" seed)
         (rewrite ~config fact_prog [ "fact" ]))
    [ 2; 3; 17; 99 ]

(* --- negative: fault injection -------------------------------------------- *)

let has_kind kind ds =
  List.exists (fun d -> d.Verify.Diag.kind = kind) (Verify.Diag.errors ds)

let kind_name = Verify.Diag.kind_str

let expect_kind name kind ds =
  if not (has_kind kind ds) then
    Alcotest.failf "%s: expected %s, got:\n%s" name (kind_name kind)
      (if ds = [] then "  (no diagnostics)" else Verify.Diag.render_all ds)

(* corrupting a synthesized gadget's first byte must break the decode check *)
let test_inject_gadget_byte_flip () =
  let r = rewrite fact_prog [ "fact" ] in
  let audit = r.Ropc.Rewriter.audit in
  let img = r.Ropc.Rewriter.image in
  let g =
    match List.find_opt (fun g -> not g.A.g_found) audit.A.a_gadgets with
    | Some g -> g
    | None -> Alcotest.fail "no synthesized gadget in pool"
  in
  (match Image.read_byte img g.A.g_addr with
   | Some b -> Image.patch img g.A.g_addr 1 (Int64.of_int (b lxor 0xff))
   | None -> Alcotest.fail "gadget address unreadable");
  expect_kind "byte flip" Verify.Diag.Gadget_decode_mismatch
    (Verify.Check.run img audit)

(* relabeling a gadget (claiming a different body) is the same failure seen
   from the audit side *)
let test_inject_gadget_mislabel () =
  let r = rewrite fact_prog [ "fact" ] in
  let audit = r.Ropc.Rewriter.audit in
  let open X86.Isa in
  let mislabeled =
    { audit with
      A.a_gadgets =
        List.map
          (fun g ->
             if g.A.g_found then g
             else
               { g with
                 A.g_gadget =
                   { g.A.g_gadget with
                     Gadget.body = [ Mov (W64, Reg RBX, Imm 0x42L) ] } })
          audit.A.a_gadgets }
  in
  expect_kind "mislabel" Verify.Diag.Gadget_decode_mismatch
    (Verify.Check.run r.Ropc.Rewriter.image mislabeled)

(* widening a roplet's recorded live set onto a register its gadgets write
   must trip the clobber pass *)
let test_inject_live_clobber () =
  let r = rewrite fact_prog [ "fact" ] in
  let audit = r.Ropc.Rewriter.audit in
  let _, summaries = Verify.Check.gadget_pass r.Ropc.Rewriter.image audit in
  (* find a point and a register that its slots write but nothing excuses *)
  let pick (f : A.func) =
    List.find_map
      (fun (p : A.point) ->
         let written =
           Array.fold_left
             (fun acc (_, s) ->
                match s with
                | Ropc.Chain.S_gadget a ->
                  (match Hashtbl.find_opt summaries a with
                   | Some su -> R.union acc su.Verify.Summary.writes
                   | None -> acc)
                | _ -> acc)
             R.empty p.A.p_slots
         in
         let excused =
           R.add (R.union p.A.p_defs (R.union p.A.p_borrowed p.A.p_live))
             X86.Isa.RSP
         in
         match R.to_list (R.diff written excused) with
         | reg :: _ -> Some (p, reg)
         | [] -> None)
      f.A.f_points
  in
  let injected = ref false in
  let funcs =
    List.map
      (fun (f : A.func) ->
         match (if !injected then None else pick f) with
         | None -> f
         | Some (victim, reg) ->
           injected := true;
           { f with
             A.f_points =
               List.map
                 (fun p ->
                    if p == victim then
                      { p with A.p_live = R.add p.A.p_live reg }
                    else p)
                 f.A.f_points })
      audit.A.a_funcs
  in
  if not !injected then Alcotest.fail "no injectable point found";
  expect_kind "live clobber" Verify.Diag.Clobber_live_reg
    (Verify.Check.run r.Ropc.Rewriter.image { audit with A.a_funcs = funcs })

(* shrinking the recorded symbol size below the pivot stub must be caught *)
let test_inject_undersized_stub () =
  let r = rewrite fact_prog [ "fact" ] in
  let audit = r.Ropc.Rewriter.audit in
  let funcs =
    List.map
      (fun (f : A.func) -> { f with A.f_sym_size = f.A.f_stub_len - 1 })
      audit.A.a_funcs
  in
  expect_kind "undersized stub" Verify.Diag.Layout_stub_overflow
    (Verify.Check.run r.Ropc.Rewriter.image { audit with A.a_funcs = funcs })

(* smashing materialized chain bytes must break the slot byte check *)
let test_inject_chain_patch () =
  let r = rewrite fact_prog [ "fact" ] in
  let audit = r.Ropc.Rewriter.audit in
  let img = r.Ropc.Rewriter.image in
  let f = List.hd audit.A.a_funcs in
  let off =
    match
      Array.to_list f.A.f_layout
      |> List.find_opt (fun (_, s) ->
             match s with Ropc.Chain.S_gadget _ -> true | _ -> false)
    with
    | Some (off, _) -> off
    | None -> Alcotest.fail "chain has no gadget slot"
  in
  Image.patch img
    (Int64.add f.A.f_chain_base (Int64.of_int off)) 8 0x4141414141414141L;
  expect_kind "chain patch" Verify.Diag.Chain_byte_mismatch
    (Verify.Check.run img audit)

(* P1: bumping an opaque-array class cell by a non-multiple of m breaks the
   residue invariant every encoded branch depends on *)
let test_inject_p1_residue () =
  let config = Ropc.Config.rop_k ~seed:1 0.0 in
  let r = rewrite ~config fact_prog [ "fact" ] in
  let audit = r.Ropc.Rewriter.audit in
  let img = r.Ropc.Rewriter.image in
  let f = List.hd audit.A.a_funcs in
  (match f.A.f_p1 with
   | None -> Alcotest.fail "config has P1 but no array was recorded"
   | Some (base, _, _) ->
     (match Verify.Check.read64 img base with
      | Some v -> Image.patch img base 8 (Int64.add v 1L)
      | None -> Alcotest.fail "P1 array unreadable"));
  expect_kind "P1 residue" Verify.Diag.Chain_p1_invariant
    (Verify.Check.run img audit)

(* the seeded wrong-residue fault: one opaque slot is materialized against
   the wrong residue class, so it recovers the wrong value at runtime.  The
   byte check recomputes stored bytes from the P1 array's ground truth and
   must flag the slot — this is the fault leg that keeps the opaque-constant
   audit honest. *)
let test_inject_opaque_residue () =
  let config =
    { (Ropc.Config.rop_k ~seed:1 ~opaque:true 1.0) with
      Ropc.Config.debug_opaque_residue = true }
  in
  let r = rewrite ~config fact_prog [ "fact" ] in
  expect_kind "opaque residue" Verify.Diag.Chain_byte_mismatch
    (Verify.Check.run r.Ropc.Rewriter.image r.Ropc.Rewriter.audit)

let () =
  Alcotest.run "verify"
    [ ("positive",
       [ Alcotest.test_case "config matrix verifies clean" `Quick
           test_matrix_clean;
         Alcotest.test_case "seed sweep verifies clean" `Quick
           test_seeds_clean ]);
      ("fault injection",
       [ Alcotest.test_case "gadget byte flip" `Quick
           test_inject_gadget_byte_flip;
         Alcotest.test_case "gadget mislabel" `Quick
           test_inject_gadget_mislabel;
         Alcotest.test_case "live-register clobber" `Quick
           test_inject_live_clobber;
         Alcotest.test_case "undersized pivot stub" `Quick
           test_inject_undersized_stub;
         Alcotest.test_case "chain byte patch" `Quick test_inject_chain_patch;
         Alcotest.test_case "P1 residue break" `Quick test_inject_p1_residue;
         Alcotest.test_case "opaque wrong-residue slot" `Quick
           test_inject_opaque_residue ]) ]
