(* Tests for the concrete machine: memory, flag semantics, stack ops, and a
   hand-written ROP chain in the style of the paper's Figure 1. *)

open X86.Isa
module S = Machine.Semantics

let code_base = 0x400000L
let stack_top = 0x7000_0000L

(* Assemble [instrs] at [code_base], set up a stack, return a runner. *)
let machine_of instrs =
  let mem = Machine.Memory.create () in
  Machine.Memory.store_bytes mem code_base (X86.Encode.encode_list instrs);
  Machine.Memory.map mem (Int64.sub stack_top 65536L) 65536;
  let cpu = Machine.Cpu.create mem in
  Machine.Cpu.set_rip cpu code_base;
  Machine.Cpu.set cpu RSP stack_top;
  Machine.Exec.make cpu

let run_and_get instrs reg =
  let t = machine_of instrs in
  match Machine.Exec.run ~fuel:100000 t with
  | Machine.Exec.Halted -> Machine.Cpu.get t.Machine.Exec.cpu reg
  | st -> Alcotest.failf "unexpected exit: %a" Machine.Exec.pp_exit st

let check64 name expected actual =
  Alcotest.(check int64) name expected actual

(* --- basic arithmetic --------------------------------------------------- *)

let test_mov_add () =
  check64 "5+7" 12L
    (run_and_get [ Mov (W64, Reg RAX, Imm 5L); Alu (Add, W64, Reg RAX, Imm 7L); Hlt ] RAX)

let test_w32_zero_extends () =
  check64 "32-bit write zero-extends" 0x12345678L
    (run_and_get
       [ Mov (W64, Reg RAX, Imm (-1L));
         Mov (W32, Reg RAX, Imm 0x12345678L);
         Hlt ] RAX)

let test_w8_merges () =
  check64 "8-bit write merges" 0xFFFFFFFFFFFFFF42L
    (run_and_get
       [ Mov (W64, Reg RAX, Imm (-1L)); Mov (W8, Reg RAX, Imm 0x42L); Hlt ] RAX)

let test_neg_carry () =
  (* the paper's branch encoding: neg rax sets CF = (rax != 0) *)
  let prog v =
    [ Mov (W64, Reg RAX, Imm v);
      Mov (W64, Reg RCX, Imm 0L);
      Unary (Neg, W64, Reg RAX);
      Alu (Adc, W64, Reg RCX, Imm 0L);  (* rcx := CF *)
      Hlt ]
  in
  check64 "neg 0 -> CF=0" 0L (run_and_get (prog 0L) RCX);
  check64 "neg 5 -> CF=1" 1L (run_and_get (prog 5L) RCX)

let test_stack () =
  check64 "push/pop" 77L
    (run_and_get [ Mov (W64, Reg RDX, Imm 77L); Push (Reg RDX); Pop (Reg RAX); Hlt ] RAX)

let test_call_ret () =
  (* call +N; hlt; target: mov rax, 9; ret *)
  let call = Call (J_rel 1) in   (* skip over Hlt (1 byte) *)
  let prog = [ call; Hlt; Mov (W64, Reg RAX, Imm 9L); Ret ] in
  check64 "call/ret" 9L (run_and_get prog RAX)

let test_cmov () =
  let prog taken =
    [ Mov (W64, Reg RAX, Imm (if taken then 0L else 1L));
      Mov (W64, Reg RBX, Imm 10L);
      Mov (W64, Reg RCX, Imm 20L);
      Alu (Test, W64, Reg RAX, Reg RAX);
      Cmov (E, RBX, Reg RCX);   (* if rax==0 then rbx := 20 *)
      Hlt ]
  in
  check64 "cmove taken" 20L (run_and_get (prog true) RBX);
  check64 "cmove not taken" 10L (run_and_get (prog false) RBX)

let test_div () =
  let prog =
    [ Mov (W64, Reg RAX, Imm 100L);
      Mov (W64, Reg RDX, Imm 0L);
      Mov (W64, Reg RCX, Imm 7L);
      MulDiv (Div, Reg RCX);
      Hlt ]
  in
  check64 "100/7 quotient" 14L (run_and_get prog RAX);
  let t = machine_of prog in
  ignore (Machine.Exec.run ~fuel:1000 t);
  check64 "100/7 remainder" 2L (Machine.Cpu.get t.Machine.Exec.cpu RDX)

let test_div_by_zero_faults () =
  let t =
    machine_of
      [ Mov (W64, Reg RAX, Imm 1L);
        Mov (W64, Reg RDX, Imm 0L);
        Mov (W64, Reg RCX, Imm 0L);
        MulDiv (Div, Reg RCX);
        Hlt ]
  in
  match Machine.Exec.run ~fuel:1000 t with
  | Machine.Exec.Fault _ -> ()
  | st -> Alcotest.failf "expected fault, got %a" Machine.Exec.pp_exit st

(* A quotient wider than 64 bits raises #DE on real hardware; the emulator
   must turn the typed Div_overflow into a CPU fault, not an OCaml crash. *)
let test_div_overflow_faults () =
  let t =
    machine_of
      [ Mov (W64, Reg RAX, Imm 0L);
        Mov (W64, Reg RDX, Imm 1L);      (* rdx:rax = 2^64 *)
        Mov (W64, Reg RCX, Imm 1L);
        MulDiv (Div, Reg RCX);           (* quotient 2^64 does not fit *)
        Hlt ]
  in
  match Machine.Exec.run ~fuel:1000 t with
  | Machine.Exec.Fault m ->
    Alcotest.(check string) "fault class" "divide overflow" m
  | st -> Alcotest.failf "expected fault, got %a" Machine.Exec.pp_exit st

let test_divmod_overflow_exception () =
  Alcotest.check_raises "unsigned overflow" S.Div_overflow (fun () ->
      ignore (S.divmod_u128 1L 0L 1L));
  (* INT64_MIN / -1: the only signed overflow with a nonzero divisor *)
  Alcotest.check_raises "signed overflow" S.Div_overflow (fun () ->
      ignore (S.divmod_s128 (-1L) Int64.min_int (-1L)))

let test_jcc_loop () =
  (* sum 1..10 with a dec/jnz loop *)
  let body =
    [ Mov (W64, Reg RCX, Imm 10L);
      Mov (W64, Reg RAX, Imm 0L);
      (* loop: add rax, rcx; dec rcx; jnz loop *)
      Alu (Add, W64, Reg RAX, Reg RCX);
      Unary (Dec, W64, Reg RCX) ]
  in
  let loop_len =
    X86.Encode.length (Alu (Add, W64, Reg RAX, Reg RCX))
    + X86.Encode.length (Unary (Dec, W64, Reg RCX))
    + X86.Encode.length (Jcc (NE, 0))
  in
  let prog = body @ [ Jcc (NE, -loop_len); Hlt ] in
  check64 "sum 1..10" 55L (run_and_get prog RAX)

let test_unmapped_faults () =
  let t = machine_of [ Mov (W64, Reg RAX, Mem (mem_abs 0x123L)); Hlt ] in
  match Machine.Exec.run ~fuel:10 t with
  | Machine.Exec.Fault _ -> ()
  | st -> Alcotest.failf "expected fault, got %a" Machine.Exec.pp_exit st

(* --- a real ROP chain (paper Figure 1 analog) ---------------------------- *)

(* Build: if RAX==0 then RDI:=1 else RDI:=2, encoded as a ROP chain with the
   neg/adc flag leak and a variable RSP addend, exactly like Figure 1. *)
let test_figure1_chain () =
  let mem = Machine.Memory.create () in
  (* gadget pool in .text *)
  let gadgets =
    [ "pop_rcx", [ Pop (Reg RCX); Ret ];
      "neg_rax", [ Unary (Neg, W64, Reg RAX); Ret ];
      "adc_rcx_0", [ Alu (Adc, W64, Reg RCX, Imm 0L); Ret ];
      "pop_rsi", [ Pop (Reg RSI); Ret ];
      "neg_rcx", [ Unary (Neg, W64, Reg RCX); Ret ];
      "and_rsi_rcx", [ Alu (And, W64, Reg RSI, Reg RCX); Ret ];
      "add_rsp_rsi", [ Alu (Add, W64, Reg RSP, Reg RSI); Ret ];
      "pop_rdi", [ Pop (Reg RDI); Ret ];
      "pop_rsi_rbp", [ Pop (Reg RSI); Pop (Reg RBP); Ret ];
      "hlt", [ Hlt ] ]
  in
  let addr = ref code_base in
  let gaddr = Hashtbl.create 16 in
  List.iter
    (fun (name, instrs) ->
       let b = X86.Encode.encode_list instrs in
       Machine.Memory.store_bytes mem !addr b;
       Hashtbl.replace gaddr name !addr;
       addr := Int64.add !addr (Int64.of_int (Bytes.length b)))
    gadgets;
  let g name = Hashtbl.find gaddr name in
  (* chain, one 8-byte slot per item *)
  let chain =
    [ g "pop_rcx"; 0L;                        (* rcx := 0 *)
      g "neg_rax";                            (* CF := rax != 0 *)
      g "adc_rcx_0";                          (* rcx := CF *)
      g "neg_rcx";                            (* rcx := rax!=0 ? -1 : 0 *)
      g "pop_rsi"; 0x18L;
      g "and_rsi_rcx";                        (* rsi := rax!=0 ? 0x18 : 0 *)
      g "add_rsp_rsi";                        (* branch: skip fall-through *)
      (* fall-through (rax == 0): rdi := 1, dispose of the 0x10-byte
         alternative segment by popping two junk immediates *)
      g "pop_rdi"; 1L;
      g "pop_rsi_rbp";
      (* taken (rax != 0): rdi := 2; its two slots double as the junk pops *)
      g "pop_rdi"; 2L;
      g "hlt" ]
  in
  let chain_base = 0x600000L in
  List.iteri
    (fun i v -> Machine.Memory.write_u64 mem (Int64.add chain_base (Int64.of_int (8 * i))) v)
    chain;
  Machine.Memory.map mem (Int64.sub stack_top 4096L) 4096;
  let run rax_val =
    let cpu = Machine.Cpu.create (Machine.Memory.copy mem) in
    Machine.Cpu.set cpu RAX rax_val;
    Machine.Cpu.set cpu RSP chain_base;  (* already pivoted *)
    (* kick off: ret into first gadget *)
    Machine.Cpu.set_rip cpu (g "hlt");      (* place a ret... simpler: set rip to a ret *)
    let t = Machine.Exec.make cpu in
    (* start by simulating the ret: pop first gadget into rip *)
    Machine.Cpu.set_rip cpu (Machine.Memory.read_u64 cpu.Machine.Cpu.mem chain_base);
    Machine.Cpu.set cpu RSP (Int64.add chain_base 8L);
    match Machine.Exec.run ~fuel:1000 t with
    | Machine.Exec.Halted -> Machine.Cpu.get cpu RDI
    | st -> Alcotest.failf "chain exit: %a" Machine.Exec.pp_exit st
  in
  (* rax==0: CF=0, rcx=-1, rsi=0x18&-1=0x18: skip fall-through, rdi:=1 *)
  check64 "chain rax=0 -> rdi=1" 1L (run 0L);
  (* rax!=0: CF=1, rcx=0, rsi=0: fall through, rdi:=2, skip taken path *)
  check64 "chain rax!=0 -> rdi=2" 2L (run 5L)

(* --- property tests: flag semantics vs. spec ----------------------------- *)

let gen_pair64 = QCheck.(pair (map Int64.of_int int) (map Int64.of_int int))

let prop_add_flags =
  QCheck.Test.make ~name:"add flags match reference" ~count:1000 gen_pair64
    (fun (a, b) ->
       let t = machine_of
           [ Mov (W64, Reg RAX, Imm a);
             Alu (Add, W64, Reg RAX, Imm b);
             Hlt ]
       in
       ignore (Machine.Exec.run ~fuel:10 t);
       let cpu = t.Machine.Exec.cpu in
       let r = Int64.add a b in
       let cf_ref = Int64.unsigned_compare r a < 0 in
       let zf_ref = r = 0L in
       cpu.Machine.Cpu.cf = cf_ref && cpu.Machine.Cpu.zf = zf_ref)

let prop_sub_flags =
  QCheck.Test.make ~name:"cmp flags match signed/unsigned compare" ~count:1000
    gen_pair64
    (fun (a, b) ->
       let t = machine_of
           [ Mov (W64, Reg RAX, Imm a);
             Alu (Cmp, W64, Reg RAX, Imm b);
             Hlt ]
       in
       ignore (Machine.Exec.run ~fuel:10 t);
       let cpu = t.Machine.Exec.cpu in
       let f = Machine.Cpu.flags cpu in
       S.cc_holds f B = (Int64.unsigned_compare a b < 0)
       && S.cc_holds f L = (Int64.compare a b < 0)
       && S.cc_holds f E = (a = b)
       && S.cc_holds f A = (Int64.unsigned_compare a b > 0)
       && S.cc_holds f G = (Int64.compare a b > 0))

let prop_mulhi =
  QCheck.Test.make ~name:"mulhi_u/s consistency" ~count:1000 gen_pair64
    (fun (a, b) ->
       (* signed identity: hi_s = hi_u - (a<0)*b - (b<0)*a *)
       let hu = S.mulhi_u a b in
       let hs = S.mulhi_s a b in
       let expect =
         let h = hu in
         let h = if Int64.compare a 0L < 0 then Int64.sub h b else h in
         if Int64.compare b 0L < 0 then Int64.sub h a else h
       in
       hs = expect
       (* and small-number sanity *)
       && S.mulhi_u 0xFFFFFFFFL 0xFFFFFFFFL = 0L
       && S.mulhi_s (-1L) (-1L) = 0L)

let prop_divmod =
  QCheck.Test.make ~name:"div/idiv vs OCaml semantics" ~count:1000
    QCheck.(pair (map Int64.of_int int) (map Int64.of_int small_signed_int))
    (fun (a, b) ->
       QCheck.assume (b <> 0L);
       let q, r = S.divmod_u128 0L a b in
       let qs, rs = S.divmod_s128 (Int64.shift_right a 63) a b in
       q = Int64.unsigned_div a b && r = Int64.unsigned_rem a b
       && qs = Int64.div a b && rs = Int64.rem a b)

let () =
  let qt =
    List.map QCheck_alcotest.to_alcotest
      [ prop_add_flags; prop_sub_flags; prop_mulhi; prop_divmod ]
  in
  Alcotest.run "machine"
    [ ("exec",
       [ Alcotest.test_case "mov/add" `Quick test_mov_add;
         Alcotest.test_case "32-bit zero-extend" `Quick test_w32_zero_extends;
         Alcotest.test_case "8-bit merge" `Quick test_w8_merges;
         Alcotest.test_case "neg carry leak" `Quick test_neg_carry;
         Alcotest.test_case "push/pop" `Quick test_stack;
         Alcotest.test_case "call/ret" `Quick test_call_ret;
         Alcotest.test_case "cmov" `Quick test_cmov;
         Alcotest.test_case "div" `Quick test_div;
         Alcotest.test_case "div by zero" `Quick test_div_by_zero_faults;
         Alcotest.test_case "div overflow" `Quick test_div_overflow_faults;
         Alcotest.test_case "divmod overflow exception" `Quick
           test_divmod_overflow_exception;
         Alcotest.test_case "jcc loop" `Quick test_jcc_loop;
         Alcotest.test_case "unmapped fault" `Quick test_unmapped_faults;
         Alcotest.test_case "figure-1 ROP chain" `Quick test_figure1_chain ]);
      ("flags", qt) ]
