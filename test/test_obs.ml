(* Tests for lib/obs: the metrics registry (determinism, snapshot algebra,
   the disabled-mode no-allocation contract), the ring-buffer tracer
   (wraparound, chrome://tracing JSON round-trip through the schema
   validator), and the minimal JSON parser the validator is built on. *)

module M = Obs.Metrics
module T = Obs.Trace
module J = Obs.Json

(* Leave the global registry the way we found it: disabled and zeroed. *)
let scrub () =
  M.set_enabled false;
  T.set_enabled false;
  M.reset ()

(* --- metrics registry ------------------------------------------------------- *)

(* A seeded workload over one counter, one gauge and one histogram. *)
let workload seed =
  let rng = Util.Rng.create seed in
  let c = M.counter "t.counter"
  and g = M.gauge "t.gauge"
  and h = M.histogram "t.hist" in
  for _ = 1 to 1_000 do
    M.add c (Util.Rng.int rng 10);
    M.set_max g (Util.Rng.int rng 1_000);
    M.observe h (Util.Rng.int rng 100_000)
  done

let test_determinism () =
  M.set_enabled true;
  M.reset ();
  workload 5;
  let s1 = M.snapshot () in
  M.reset ();
  workload 5;
  let s2 = M.snapshot () in
  Alcotest.(check bool) "same seed, identical snapshot" true (s1 = s2);
  Alcotest.(check bool) "snapshot non-empty" true (s1 <> []);
  (* counters and histograms subtract away; gauges report current by design *)
  let d = M.diff s1 s2 in
  Alcotest.(check bool) "identical snapshots diff to gauges only" true
    (List.for_all (fun (_, v) -> match v with M.Gauge _ -> true | _ -> false) d);
  Alcotest.(check bool) "gauge reports current value in diff" true
    (List.assoc_opt "t.gauge" d = List.assoc_opt "t.gauge" s2);
  (* names come back sorted, so render order is stable too *)
  Alcotest.(check bool) "sorted by name" true
    (List.map fst s1 = List.sort compare (List.map fst s1));
  scrub ()

let test_recording_semantics () =
  M.set_enabled true;
  M.reset ();
  let c = M.counter "sem.c" in
  M.add c 3; M.incr c;
  let g = M.gauge "sem.g" in
  M.set g 7; M.set_max g 5;            (* 5 < 7: keeps 7 *)
  let h = M.histogram "sem.h" in
  M.observe h 1; M.observe h 100;
  let snap = M.snapshot () in
  Alcotest.(check bool) "counter" true (List.assoc "sem.c" snap = M.Counter 4);
  Alcotest.(check bool) "gauge set_max" true
    (List.assoc "sem.g" snap = M.Gauge 7);
  (match List.assoc "sem.h" snap with
   | M.Hist h ->
     Alcotest.(check int) "hist count" 2 h.count;
     Alcotest.(check int) "hist sum" 101 h.sum;
     Alcotest.(check int) "hist min" 1 h.min_v;
     Alcotest.(check int) "hist max" 100 h.max_v
   | _ -> Alcotest.fail "sem.h is not a histogram");
  (* disabled: recording is inert, snapshot drops the zeroed entries *)
  M.reset ();
  M.set_enabled false;
  M.add c 10; M.observe h 5; M.set g 3;
  Alcotest.(check bool) "disabled records nothing" true
    (List.mem_assoc "sem.c" (M.snapshot ()) = false);
  scrub ()

let test_kind_clash () =
  M.set_enabled true;
  ignore (M.counter "clash.k");
  Alcotest.check_raises "re-registration with a different kind"
    (Invalid_argument
       "Obs.Metrics: clash.k re-registered with a different kind")
    (fun () -> ignore (M.gauge "clash.k"));
  (* same-kind re-registration hands back the same cell *)
  let c1 = M.counter "clash.same" in
  let c2 = M.counter "clash.same" in
  M.add c1 2;
  Alcotest.(check int) "handles aliased" 2 !c2;
  scrub ()

(* Simulate the lib/jobs merge protocol: a worker inherits the registry,
   reports the per-job [diff], and the parent [absorb]s the deltas.  The
   merged totals must equal a serial run of the same jobs. *)
let test_parallel_merge_equals_serial () =
  M.set_enabled true;
  (* serial reference *)
  M.reset ();
  workload 11;
  workload 12;
  let serial = M.snapshot () in
  (* "worker": run both jobs in sequence, diffing around each as pool.ml
     does; the second diff has a non-empty base *)
  M.reset ();
  let base0 = M.snapshot () in
  workload 11;
  let mid = M.snapshot () in
  let d1 = M.diff base0 mid in
  workload 12;
  let d2 = M.diff mid (M.snapshot ()) in
  (* "parent": absorb the deltas in the other order — merges commute *)
  M.reset ();
  M.absorb d2;
  M.absorb d1;
  Alcotest.(check bool) "absorbed deltas = serial totals" true
    (M.snapshot () = serial);
  scrub ()

let nothing () = ()

let test_disabled_no_allocation () =
  scrub ();
  let c = M.counter "noalloc.c" in
  let g = M.gauge "noalloc.g" in
  let h = M.histogram "noalloc.h" in
  let w0 = Gc.minor_words () in
  for i = 1 to 100_000 do
    M.add c i;
    M.incr c;
    M.set g i;
    M.set_max g i;
    M.observe h i;
    T.instant "x";
    T.with_span "y" nothing
  done;
  let dw = Gc.minor_words () -. w0 in
  (* 700k disabled record operations; the only tolerated words are the boxed
     floats of the measurement itself *)
  Alcotest.(check bool)
    (Printf.sprintf "allocated %.0f minor words" dw)
    true (dw < 256.0);
  scrub ()

(* --- trace ring buffer ------------------------------------------------------ *)

let test_ring_wraparound () =
  T.set_enabled ~capacity:8 true;
  for i = 1 to 20 do
    T.instant (Printf.sprintf "ev%d" i)
  done;
  let names = List.map (fun s -> s.T.s_name) (T.spans ()) in
  Alcotest.(check int) "ring keeps capacity spans" 8 (List.length names);
  Alcotest.(check (list string)) "oldest-first, most recent kept"
    (List.init 8 (fun i -> Printf.sprintf "ev%d" (13 + i)))
    names;
  Alcotest.(check int) "dropped count" 12 (T.dropped ());
  (* disabling keeps the collected spans for export *)
  T.set_enabled false;
  Alcotest.(check int) "spans survive disable" 8 (List.length (T.spans ()));
  scrub ()

let test_trace_json_roundtrip () =
  M.set_enabled true;
  M.reset ();
  T.set_enabled ~capacity:64 true;
  T.with_span ~args:[ ("k", "v\"quote\nnewline") ] "outer" (fun () ->
      T.with_span "inner" nothing;
      T.instant ~args:[ ("i", "1") ] "mark");
  M.count "rt.counter" 7;
  M.observe_named "rt.hist" 12;
  let doc = T.to_json ~metrics:(M.snapshot ()) () in
  (match T.validate_json doc with
   (* 1 metadata + outer/inner/mark + rt.counter + rt.hist.{count,sum} *)
   | Ok n -> Alcotest.(check int) "event count" 7 n
   | Error e -> Alcotest.fail ("schema: " ^ e));
  (match J.parse doc with
   | Error e -> Alcotest.fail ("parse: " ^ e)
   | Ok root ->
     let evs =
       match Option.bind (J.member "traceEvents" root) J.to_list with
       | Some l -> l
       | None -> Alcotest.fail "no traceEvents array"
     in
     let names =
       List.filter_map
         (fun ev -> Option.bind (J.member "name" ev) J.to_string)
         evs
     in
     List.iter
       (fun want ->
          Alcotest.(check bool) ("event " ^ want) true (List.mem want names))
       [ "outer"; "inner"; "mark"; "rt.counter"; "rt.hist.count";
         "rt.hist.sum" ];
     (* the escaped span arg survives the round trip *)
     let outer =
       List.find
         (fun ev -> J.member "name" ev |> Option.map J.to_string
                    = Some (Some "outer"))
         evs
     in
     Alcotest.(check bool) "span args round-trip" true
       (J.path [ "args"; "k" ] outer = Some (J.Str "v\"quote\nnewline")));
  scrub ()

let test_schema_rejects () =
  let bad msg doc =
    match T.validate_json doc with
    | Ok _ -> Alcotest.fail ("accepted: " ^ msg)
    | Error _ -> ()
  in
  bad "no traceEvents" "{}";
  bad "traceEvents not an array" "{\"traceEvents\":1}";
  bad "missing name" "{\"traceEvents\":[{\"ph\":\"X\"}]}";
  bad "missing ph" "{\"traceEvents\":[{\"name\":\"a\"}]}";
  bad "X without ts/dur"
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\"}]}";
  bad "negative ts"
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":-1,\"dur\":0,\"pid\":1,\"tid\":1}]}";
  bad "unknown phase"
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"Q\"}]}";
  bad "C without numeric value"
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"C\",\"ts\":0,\"args\":{\"value\":\"x\"}}]}";
  bad "not json at all" "hello";
  Alcotest.(check bool) "minimal valid doc" true
    (T.validate_json
       "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"i\",\"ts\":0}]}"
     = Ok 1)

(* --- the JSON parser itself -------------------------------------------------- *)

let test_json_parser () =
  let ok s = match J.parse s with Ok v -> v | Error e -> Alcotest.fail e in
  Alcotest.(check bool) "null" true (ok "null" = J.Null);
  Alcotest.(check bool) "bools" true
    (ok "true" = J.Bool true && ok "false" = J.Bool false);
  Alcotest.(check bool) "numbers" true
    (ok "-12.5e1" = J.Num (-125.0) && ok "0" = J.Num 0.0);
  Alcotest.(check bool) "string escapes" true
    (ok "\"a\\n\\\"b\\u0041\"" = J.Str "a\n\"bA");
  Alcotest.(check bool) "nesting" true
    (ok "{\"a\":[1,{\"b\":true}]}"
     = J.Obj [ ("a", J.Arr [ J.Num 1.0; J.Obj [ ("b", J.Bool true) ] ]) ]);
  Alcotest.(check bool) "path accessor" true
    (J.path [ "a"; "b" ] (ok "{\"a\":{\"b\":3}}") = Some (J.Num 3.0));
  let err s =
    match J.parse s with
    | Ok _ -> Alcotest.fail ("parsed: " ^ s)
    | Error _ -> ()
  in
  err "tru";
  err "{\"a\":}";
  err "[1,]";
  err "{} trailing";
  err "\"unterminated";
  err ""

let () =
  Alcotest.run "obs"
    [ ("metrics",
       [ Alcotest.test_case "seeded determinism" `Quick test_determinism;
         Alcotest.test_case "recording semantics" `Quick
           test_recording_semantics;
         Alcotest.test_case "kind clash" `Quick test_kind_clash;
         Alcotest.test_case "parallel merge = serial" `Quick
           test_parallel_merge_equals_serial;
         Alcotest.test_case "disabled mode allocates nothing" `Quick
           test_disabled_no_allocation ]);
      ("trace",
       [ Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
         Alcotest.test_case "json round-trip" `Quick
           test_trace_json_roundtrip;
         Alcotest.test_case "schema rejections" `Quick test_schema_rejects ]);
      ("json",
       [ Alcotest.test_case "parser" `Quick test_json_parser ]) ]
