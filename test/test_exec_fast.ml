(* Cross-engine differential tests: the block-translating fast engine must
   be observationally identical to the per-instruction reference stepper —
   same exit status, same retired-step count, same registers, flags and
   memory — on every program the repo can produce:

   - the mini-C corpus (native) and its ROP_1.0 rewrite,
   - the base64 case study,
   - Rng-driven random instruction programs, including page-straddling
     loads/stores and stores into the code page (self-modifying code),
   - raw random byte soup (fault parity),
   - fuel-exhaustion parity at every fuel value through a gadget chain
     (exercises the fast engine's partial-block fallback),
   - the decode-cache staleness regressions: an in-block store overwriting
     a later instruction of the same block, and an external patch between
     two runs of the same executor. *)

open X86.Isa
module R = Util.Rng

let code_base = 0x400000L
let stack_top = 0x7000_0000L

(* --- full observable state ----------------------------------------------- *)

let all_regs = List.init 16 reg_of_index

let mem_digest (m : Machine.Memory.t) =
  let acc = ref [] in
  Util.Itbl.iter
    (fun idx p -> acc := (idx, Digest.bytes p.Machine.Memory.data) :: !acc)
    m.Machine.Memory.pages;
  List.sort compare !acc

(* Run the same machine construction under both engines and insist on
   identical observable state.  [mk] must build a fresh, identical machine
   on every call.  Returns the fast-engine run for extra assertions. *)
let compare_engines ?(fuel = 200_000) name (mk : unit -> Machine.Cpu.t) =
  let exec eng =
    let t = Machine.Exec.make ~engine:eng (mk ()) in
    let status = Machine.Exec.run ~fuel t in
    (t, status)
  in
  let tf, sf = exec Machine.Exec.Fast in
  let tr, sr = exec Machine.Exec.Ref in
  let cf = tf.Machine.Exec.cpu and cr = tr.Machine.Exec.cpu in
  Alcotest.(check string) (name ^ ": exit status")
    (Format.asprintf "%a" Machine.Exec.pp_exit sr)
    (Format.asprintf "%a" Machine.Exec.pp_exit sf);
  Alcotest.(check int) (name ^ ": steps") cr.Machine.Cpu.steps
    cf.Machine.Cpu.steps;
  List.iteri
    (fun i r ->
       Alcotest.(check int64)
         (Printf.sprintf "%s: reg %d" name i)
         (Machine.Cpu.get cr r) (Machine.Cpu.get cf r))
    all_regs;
  Alcotest.(check int64) (name ^ ": rip") (Machine.Cpu.rip cr)
    (Machine.Cpu.rip cf);
  Alcotest.(check bool) (name ^ ": flags") true
    (Machine.Cpu.flags cr = Machine.Cpu.flags cf);
  Alcotest.(check bool) (name ^ ": halted") cr.Machine.Cpu.halted
    cf.Machine.Cpu.halted;
  Alcotest.(check bool) (name ^ ": memory") true
    (mem_digest cr.Machine.Cpu.mem = mem_digest cf.Machine.Cpu.mem);
  (cf, sf)

(* Machine set up as [Runner.setup] does, over a fresh copy of [mem0]. *)
let call_setup img mem0 func args () =
  let t =
    Runner.setup ~mem:(Machine.Memory.copy mem0) img ~func ~args
  in
  t.Machine.Exec.cpu

(* --- corpus and ROP_1.0 rewrites ----------------------------------------- *)

let corpus_calls =
  [ ("gcd_", [ 54L; 24L ]); ("popcount_", [ 0b10101L ]);
    ("isqrt_", [ 121L ]); ("fib_iter_", [ 10L ]); ("hexval_", [ 97L ]);
    ("leap_", [ 2000L ]); ("digits_", [ 1234L ]);
    ("powmod_", [ 4L; 13L; 497L ]); ("asm_tiny", [ 7L ]) ]

let test_corpus_native () =
  let img = Minic.Corpus.compile () in
  let mem0 = Image.load img in
  List.iter
    (fun (f, args) ->
       ignore (compare_engines ("native " ^ f) (call_setup img mem0 f args)))
    corpus_calls

let test_corpus_rop () =
  let img = Minic.Corpus.compile () in
  let r =
    Ropc.Rewriter.rewrite img ~functions:Minic.Corpus.all_names
      ~config:(Ropc.Config.rop_k ~seed:1 1.0)
  in
  let img = r.Ropc.Rewriter.image in
  let mem0 = Image.load img in
  List.iter
    (fun (f, args) ->
       ignore (compare_engines ("rop1.0 " ^ f) (call_setup img mem0 f args)))
    corpus_calls

let test_base64_rop () =
  let img = Minic.Codegen.compile (Minic.Programs.base64_program ()) in
  let r =
    Ropc.Rewriter.rewrite img ~functions:[ "b64_check"; "b64_encode" ]
      ~config:(Ropc.Config.rop_k 1.0)
  in
  let img = r.Ropc.Rewriter.image in
  let mem0 = Image.load img in
  let cf, _ =
    compare_engines "rop1.0 b64_check secret"
      (call_setup img mem0 "b64_check" [ Minic.Programs.secret_arg ])
  in
  Alcotest.(check int64) "secret accepted" 1L (Machine.Cpu.get cf RAX);
  ignore
    (compare_engines "rop1.0 b64_check wrong"
       (call_setup img mem0 "b64_check" [ 99L ]))

(* --- hand-built machines -------------------------------------------------- *)

let machine_of ?(regs = []) instrs () =
  let mem = Machine.Memory.create () in
  Machine.Memory.store_bytes mem code_base (X86.Encode.encode_list instrs);
  Machine.Memory.map mem (Int64.sub stack_top 65536L) 65536;
  let cpu = Machine.Cpu.create mem in
  Machine.Cpu.set_rip cpu code_base;
  Machine.Cpu.set cpu RSP stack_top;
  List.iter (fun (r, v) -> Machine.Cpu.set cpu r v) regs;
  cpu

(* Loads and stores that straddle a page boundary, plus an unmapped-page
   fault through a straddling access. *)
let test_page_straddle () =
  let data_base = 0x500000L in       (* page-aligned, two pages mapped *)
  let near_end = Int64.add data_base (Int64.of_int (4096 - 4)) in
  let mk extra () =
    let cpu =
      machine_of
        ~regs:[ (RBX, near_end); (RCX, 0x1122334455667788L) ]
        extra ()
    in
    Machine.Memory.map cpu.Machine.Cpu.mem data_base 8192;
    Machine.Memory.write_u64 cpu.Machine.Cpu.mem near_end 0xAABBCCDDEEFF0011L;
    cpu
  in
  ignore
    (compare_engines "straddling load"
       (mk [ Mov (W64, Reg RAX, Mem { base = Some RBX; index = None; disp = 0L }); Hlt ]));
  ignore
    (compare_engines "straddling store"
       (mk [ Mov (W64, Mem { base = Some RBX; index = None; disp = 0L }, Reg RCX); Hlt ]));
  (* same straddle, but the second page is unmapped: both engines fault *)
  let mk_fault instrs () =
    let cpu =
      machine_of ~regs:[ (RBX, near_end); (RCX, 1L) ] instrs ()
    in
    Machine.Memory.map cpu.Machine.Cpu.mem data_base 4096;
    cpu
  in
  ignore
    (compare_engines "straddling load fault"
       (mk_fault [ Mov (W64, Reg RAX, Mem { base = Some RBX; index = None; disp = 0L }); Hlt ]));
  ignore
    (compare_engines "straddling store fault"
       (mk_fault [ Mov (W64, Mem { base = Some RBX; index = None; disp = 0L }, Reg RCX); Hlt ]))

(* In-block self-modification: the first instruction of a block overwrites
   the immediate of a later instruction of the same block.  The deterministic
   variant locates the immediate byte by diffing two encodings. *)
let test_selfmod_in_block () =
  let i_of v = Mov (W64, Reg RAX, Imm v) in
  let e1 = X86.Encode.encode_list [ i_of 0x11L ] in
  let e2 = X86.Encode.encode_list [ i_of 0x22L ] in
  let imm_off = ref (-1) in
  Bytes.iteri
    (fun i c -> if c <> Bytes.get e2 i && !imm_off < 0 then imm_off := i)
    e1;
  Alcotest.(check bool) "found imm byte" true (!imm_off >= 0);
  let store = Mov (W8, Mem { base = Some RBX; index = None; disp = 0L }, Imm 0x22L) in
  let store_len = Bytes.length (X86.Encode.encode_list [ store ]) in
  let patch_addr =
    Int64.add code_base (Int64.of_int (store_len + !imm_off))
  in
  let cf, _ =
    compare_engines "in-block code patch"
      (machine_of ~regs:[ (RBX, patch_addr) ] [ store; i_of 0x11L; Hlt ])
  in
  Alcotest.(check int64) "patched immediate read" 0x22L
    (Machine.Cpu.get cf RAX)

(* Run-patch-rerun on the SAME executor: the legacy decode cache kept stale
   (instr, len) pairs across an external [Memory.write_u8]; the versioned
   block cache must not. *)
let test_patch_between_runs () =
  let run_twice eng =
    let cpu = machine_of [ Mov (W64, Reg RAX, Imm 0x11L); Hlt ] () in
    let t = Machine.Exec.make ~engine:eng cpu in
    (match Machine.Exec.run ~fuel:100 t with
     | Machine.Exec.Halted -> ()
     | st -> Alcotest.failf "first run: %a" Machine.Exec.pp_exit st);
    let first = Machine.Cpu.get cpu RAX in
    (* locate and patch the immediate byte, as an external debugger would *)
    let e1 = X86.Encode.encode_list [ Mov (W64, Reg RAX, Imm 0x11L) ] in
    let e2 = X86.Encode.encode_list [ Mov (W64, Reg RAX, Imm 0x22L) ] in
    Bytes.iteri
      (fun i c ->
         if c <> Bytes.get e2 i then
           Machine.Memory.write_u8 cpu.Machine.Cpu.mem
             (Int64.add code_base (Int64.of_int i))
             (Char.code (Bytes.get e2 i)))
      e1;
    cpu.Machine.Cpu.halted <- false;
    Machine.Cpu.set_rip cpu code_base;
    (match Machine.Exec.run ~fuel:100 t with
     | Machine.Exec.Halted -> ()
     | st -> Alcotest.failf "second run: %a" Machine.Exec.pp_exit st);
    (first, Machine.Cpu.get cpu RAX)
  in
  let f1, f2 = run_twice Machine.Exec.Fast in
  let r1, r2 = run_twice Machine.Exec.Ref in
  Alcotest.(check int64) "fast first run" 0x11L f1;
  Alcotest.(check int64) "fast sees the patch" 0x22L f2;
  Alcotest.(check int64) "ref first run" 0x11L r1;
  Alcotest.(check int64) "ref sees the patch" 0x22L r2

(* Fuel-exhaustion parity at every fuel value through a ROP gadget chain:
   steps must equal fuel exactly even when a fuel boundary falls inside a
   fused or multi-instruction block. *)
let test_fuel_parity () =
  let img = Minic.Corpus.compile () in
  let r =
    Ropc.Rewriter.rewrite img ~functions:[ "gcd_" ]
      ~config:(Ropc.Config.rop_k ~seed:1 1.0)
  in
  let img = r.Ropc.Rewriter.image in
  let mem0 = Image.load img in
  for fuel = 1 to 60 do
    let cf, sf =
      compare_engines ~fuel
        (Printf.sprintf "fuel %d" fuel)
        (call_setup img mem0 "gcd_" [ 54L; 24L ])
    in
    match sf with
    | Machine.Exec.Out_of_fuel ->
      Alcotest.(check int)
        (Printf.sprintf "fuel %d: steps == fuel" fuel)
        fuel cf.Machine.Cpu.steps
    | _ -> ()
  done

(* --- Rng-driven random programs ------------------------------------------ *)

(* Structured random programs: registers are pointed at the code page, at a
   page boundary in a data area, and at the stack, so random loads/stores
   exercise straddles, code-page writes (self-modification) and faults. *)
let gen_reg rng = reg_of_index (R.int rng 16)
let gen_width rng = width_of_index (R.int rng 4)

let gen_mem rng =
  (* small displacements keep a useful fraction of accesses mapped *)
  { base = Some (gen_reg rng); index = None;
    disp = Int64.of_int (R.range rng (-16) 16) }

let gen_instr rng =
  match R.int rng 12 with
  | 0 -> Mov (gen_width rng, Reg (gen_reg rng), Imm (R.next64 rng))
  | 1 -> Mov (gen_width rng, Reg (gen_reg rng), Mem (gen_mem rng))
  | 2 -> Mov (gen_width rng, Mem (gen_mem rng), Reg (gen_reg rng))
  | 3 ->
    let o = R.choose rng [ Add; Sub; And; Or; Xor; Adc; Sbb; Cmp; Test ] in
    Alu (o, gen_width rng, Reg (gen_reg rng), Reg (gen_reg rng))
  | 4 ->
    let o = R.choose rng [ Add; Sub; Xor ] in
    Alu (o, gen_width rng, Reg (gen_reg rng), Mem (gen_mem rng))
  | 5 -> Unary (R.choose rng [ Neg; Not; Inc; Dec ], gen_width rng, Reg (gen_reg rng))
  | 6 -> Push (Reg (gen_reg rng))
  | 7 -> Pop (Reg (gen_reg rng))
  | 8 -> Lea (gen_reg rng, gen_mem rng)
  | 9 -> Xchg (gen_width rng, Reg (gen_reg rng), Reg (gen_reg rng))
  | 10 -> Cmov (cc_of_index (R.int rng 16), gen_reg rng, Reg (gen_reg rng))
  | 11 -> Shift (R.choose rng [ Shl; Shr; Sar ], gen_width rng,
                 Reg (gen_reg rng), S_imm (R.int rng 64))
  | _ -> Nop

let data_base = 0x500000L

let random_machine rng () =
  let n = 4 + R.int rng 24 in
  let instrs = List.init n (fun _ -> gen_instr rng) @ [ Hlt ] in
  let cpu = machine_of instrs () in
  let mem = cpu.Machine.Cpu.mem in
  Machine.Memory.map mem data_base 8192;
  (* aim registers at interesting places; RSP keeps its stack *)
  List.iter
    (fun (r, v) -> Machine.Cpu.set cpu r v)
    [ (RAX, R.next64 rng);
      (RBX, code_base);                                 (* code page: SMC *)
      (RCX, Int64.add data_base 4090L);                 (* page straddle *)
      (RDX, Int64.add data_base (Int64.of_int (R.int rng 8000)));
      (RSI, Int64.add code_base (Int64.of_int (R.int rng 64)));
      (RDI, 0xdead0000L) ];                             (* unmapped: faults *)
  cpu

let test_random_programs () =
  for i = 1 to 300 do
    (* one machine per case, copied per engine so both runs see identical
       programs and register seeds; case i replays from seed 0xfa57+i *)
    let cpu0 = random_machine (R.create (0xfa57 + i)) () in
    ignore
      (compare_engines ~fuel:2_000
         (Printf.sprintf "random program %d" i)
         (fun () -> Machine.Cpu.copy cpu0))
  done

(* Raw byte soup spanning a page boundary: decode behavior, invalid
   instructions and faults must classify identically. *)
let test_random_bytes () =
  for i = 1 to 100 do
    let rng = R.create (0xb17e5 + i) in
    let mk () =
      let bytes = Bytes.init 8192 (fun _ -> Char.chr (R.int rng 256)) in
      let mem = Machine.Memory.create () in
      Machine.Memory.store_bytes mem code_base bytes;
      Machine.Memory.map mem (Int64.sub stack_top 65536L) 65536;
      let cpu = Machine.Cpu.create mem in
      (* start near the end of the first page so decode windows straddle *)
      Machine.Cpu.set_rip cpu (Int64.add code_base 4090L);
      Machine.Cpu.set cpu RSP stack_top;
      cpu
    in
    (* both runs must see identical bytes: build once, copy per engine *)
    let cpu0 = mk () in
    ignore
      (compare_engines ~fuel:500
         (Printf.sprintf "byte soup %d" i)
         (fun () -> Machine.Cpu.copy cpu0))
  done

let () =
  Alcotest.run "exec_fast"
    [ ("corpus",
       [ Alcotest.test_case "native" `Quick test_corpus_native;
         Alcotest.test_case "rop 1.0" `Slow test_corpus_rop;
         Alcotest.test_case "base64 rop" `Quick test_base64_rop ]);
      ("memory",
       [ Alcotest.test_case "page straddles" `Quick test_page_straddle ]);
      ("selfmod",
       [ Alcotest.test_case "in-block patch" `Quick test_selfmod_in_block;
         Alcotest.test_case "patch between runs" `Quick test_patch_between_runs ]);
      ("fuel", [ Alcotest.test_case "parity" `Quick test_fuel_parity ]);
      ("random",
       [ Alcotest.test_case "instruction programs" `Quick test_random_programs;
         Alcotest.test_case "byte soup" `Quick test_random_bytes ]) ]
