(* Fast smoke tier for the differential fuzzer, wired into [dune runtest].

   The deep tier (500+ cases across presets) lives behind the @fuzz alias and
   check.sh; here we only pin down the properties the replay artifact relies
   on — deterministic generation, a clean small run of the four-way oracle,
   and the shrinker converging on a synthetic predicate. *)

open Diffuzz

(* Two runs over the same (seed, cases) must digest identically; a different
   seed must not.  This is what makes "--seed S --replay I" a repro. *)
let test_fingerprint_deterministic () =
  let a = Driver.fingerprint ~seed:42 ~cases:60 in
  let b = Driver.fingerprint ~seed:42 ~cases:60 in
  Alcotest.(check string) "same seed, same digest" a b;
  let c = Driver.fingerprint ~seed:43 ~cases:60 in
  Alcotest.(check bool) "different seed, different digest" true (a <> c)

(* Case generation is a pure function of (seed, index): regenerating a single
   case must reproduce it exactly, inputs included. *)
let test_case_replay () =
  for i = 0 to 19 do
    let a = Gen.case ~seed:7 i in
    let b = Gen.case ~seed:7 i in
    Alcotest.(check string)
      (Printf.sprintf "case %d regenerates" i)
      (Gen.to_string a) (Gen.to_string b)
  done

(* A small fixed-seed run through all four backends: interpreter, native,
   ROP-rewritten and VM-virtualized must agree on every case. *)
let test_oracle_smoke () =
  let s =
    Driver.run ~shrink:false Oracle.default_config ~seed:42 ~cases:20 ()
  in
  (match s.Driver.s_failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "discrepancy in case %d:\n%s" f.Driver.f_index
       (Driver.discrepancy_str f.Driver.f_first));
  (* the generator must actually exercise the rewriter, not just decline *)
  Alcotest.(check bool) "most cases ROP-rewritten" true
    (s.Driver.s_coverage.Coverage.rop_rewritten >= 15)

(* Shrinker end-to-end on a synthetic structural predicate: minimize to a
   case that still has >= 3 statements.  The result must satisfy the
   predicate, never grow, and land close to the bound. *)
let test_shrink_synthetic () =
  let case0 = Gen.case ~seed:42 0 in
  let size0 = Shrink.case_size case0 in
  Alcotest.(check bool) "initial case is non-trivial" true (size0 >= 3);
  let pred c = Shrink.case_size c >= 3 in
  let small = Shrink.minimize ~max_tests:800 ~pred case0 in
  let size = Shrink.case_size small in
  Alcotest.(check bool) "predicate still holds" true (pred small);
  Alcotest.(check bool) "did not grow" true (size <= size0);
  Alcotest.(check bool) "converged near the bound" true (size <= 6)

(* The CLI's preset table must contain the default and resolve by name. *)
let test_configs () =
  Alcotest.(check bool) "default preset exists" true
    (Oracle.find_config "default" = Some Oracle.default_config);
  Alcotest.(check bool) "unknown preset rejected" true
    (Oracle.find_config "nope" = None);
  Alcotest.(check bool) "native-only skips obfuscated legs" true
    (match Oracle.find_config "native-only" with
     | Some c -> c.Oracle.rop = None && c.Oracle.vm = None
     | None -> false);
  (* the ROPfuscator layer presets resolve and carry the layers they name *)
  let layer_of name =
    match Oracle.find_config name with
    | Some { Oracle.rop = Some cfg; _ } ->
      (cfg.Ropc.Config.opaque_constants, cfg.Ropc.Config.instr_hiding,
       cfg.Ropc.Config.per_function <> None)
    | _ -> Alcotest.failf "layer preset %s missing or has no ROP leg" name
  in
  Alcotest.(check (triple bool bool bool)) "rop-opaque" (true, false, false)
    (layer_of "rop-opaque");
  Alcotest.(check (triple bool bool bool)) "rop-hiding" (false, true, false)
    (layer_of "rop-hiding");
  Alcotest.(check (triple bool bool bool)) "rop-layered" (true, true, false)
    (layer_of "rop-layered");
  Alcotest.(check (triple bool bool bool)) "rop-perfunction" (true, true, true)
    (layer_of "rop-perfunction");
  Alcotest.(check bool) "rop-layered-verified runs the verifier" true
    (match Oracle.find_config "rop-layered-verified" with
     | Some c -> c.Oracle.verify
     | None -> false)

(* A small fixed-seed run of the strongest layer preset with the chain
   verifier on: the four-way oracle plus lib/verify must accept every case
   the layered rewriter emits. *)
let test_oracle_layered_smoke () =
  let config =
    match Oracle.find_config "rop-layered-verified" with
    | Some c -> c
    | None -> Alcotest.fail "rop-layered-verified preset missing"
  in
  let s = Driver.run ~shrink:false config ~seed:42 ~cases:12 () in
  (match s.Driver.s_failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "discrepancy in case %d:\n%s" f.Driver.f_index
       (Driver.discrepancy_str f.Driver.f_first));
  Alcotest.(check bool) "most cases ROP-rewritten" true
    (s.Driver.s_coverage.Coverage.rop_rewritten >= 9)

let () =
  Alcotest.run "difftest"
    [ ("determinism",
       [ Alcotest.test_case "fingerprint" `Quick test_fingerprint_deterministic;
         Alcotest.test_case "case replay" `Quick test_case_replay ]);
      ("oracle",
       [ Alcotest.test_case "20-case smoke, default config" `Quick
           test_oracle_smoke;
         Alcotest.test_case "12-case smoke, layered+verified" `Quick
           test_oracle_layered_smoke;
         Alcotest.test_case "preset table" `Quick test_configs ]);
      ("shrink",
       [ Alcotest.test_case "synthetic predicate" `Quick test_shrink_synthetic ])
    ]
