(* Campaign runner: grid algebra, serial-equals-parallel artifacts and
   metrics, and the resumability contract — a run killed partway and
   resumed from its cell cache produces artifacts byte-identical to an
   uninterrupted run's.

   The interruption test forks a child campaign, SIGINTs it mid-run (cells
   are sized so the signal lands while later cells are still computing),
   and resumes in-process over the same cache directory. *)

let tmpdir () =
  let d = Filename.temp_file "campaign_test" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let artifact_names = [ "cells.csv"; "crossover.csv"; "crossover.json" ]

let artifacts dir =
  List.map (fun n -> (n, read_file (Filename.concat dir n))) artifact_names

let check_same_artifacts msg a b =
  List.iter2
    (fun (n, ca) (_, cb) ->
       Alcotest.(check bool) (msg ^ ": " ^ n ^ " byte-identical") true
         (ca = cb))
    a b

(* --- grid algebra ------------------------------------------------------------ *)

let test_grid_sizes () =
  Alcotest.(check int) "default grid is the 200-cell acceptance grid" 200
    (Campaign.Grid.size Campaign.Grid.default);
  Alcotest.(check int) "tiny grid" 8 (Campaign.Grid.size Campaign.Grid.tiny);
  Alcotest.(check int) "cells matches size"
    (Campaign.Grid.size Campaign.Grid.default)
    (List.length (Campaign.Grid.cells Campaign.Grid.default))

let test_grid_keys_unique () =
  let g = Campaign.Grid.default in
  let keys = List.map (Campaign.Grid.cell_key g) (Campaign.Grid.cells g) in
  let sorted = List.sort_uniq compare keys in
  Alcotest.(check int) "cell keys are pairwise distinct"
    (List.length keys) (List.length sorted)

let test_grid_parse () =
  let g =
    Campaign.Grid.parse
      "x:attackers=dse,se-portfolio;configs=NATIVE,ROP_1.00;budgets=1k,3k;targets=s1-i1-c1,s2-i2-c5"
  in
  Alcotest.(check string) "name" "x" g.Campaign.Grid.g_name;
  Alcotest.(check int) "size" (2 * 2 * 2 * 2) (Campaign.Grid.size g);
  let b3 =
    List.find (fun b -> b.Campaign.Grid.bp_name = "3k") g.Campaign.Grid.budgets
  in
  Alcotest.(check int) "off-ladder budget parsed" 3000
    b3.Campaign.Grid.bp_solver_evals;
  Alcotest.(check bool) "bad axis rejected" true
    (try ignore (Campaign.Grid.parse "x:bogus=1"); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad target rejected" true
    (try ignore (Campaign.Grid.parse "x:targets=nope"); false
     with Invalid_argument _ -> true)

(* --- serial = parallel -------------------------------------------------------- *)

(* fast grid: NATIVE-only cells solve well inside their budgets *)
let fast_grid =
  "eq:attackers=dse;configs=NATIVE;budgets=1k,2k;targets=s1-i1-c1,s2-i1-c2"

let run_campaign ?(resume = false) ?(jobs = 1) ~cache_dir ~out_dir spec =
  let g = Campaign.Grid.parse spec in
  let opts =
    { Campaign.Runner.default_opts with
      Campaign.Runner.jobs; cache_dir; out_dir; resume }
  in
  (g, Campaign.Runner.run ~opts g)

let counters =
  [ ("campaign.found", Campaign.Runner.m_found);
    ("solver.evals", Symex.Solver.m_evals);
    ("solver.queries", Symex.Solver.m_queries) ]

let snapshot () = List.map (fun (n, c) -> (n, !c)) counters

let test_serial_equals_parallel () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) @@ fun () ->
  let dir_s = tmpdir () and dir_p = tmpdir () in
  let s0 = snapshot () in
  let _, sum_s =
    run_campaign ~jobs:1 ~cache_dir:(Filename.concat dir_s "cache")
      ~out_dir:(Filename.concat dir_s "out") fast_grid
  in
  let s1 = snapshot () in
  let _, sum_p =
    run_campaign ~jobs:2 ~cache_dir:(Filename.concat dir_p "cache")
      ~out_dir:(Filename.concat dir_p "out") fast_grid
  in
  let s2 = snapshot () in
  check_same_artifacts "serial vs parallel"
    (artifacts (Filename.concat dir_s "out"))
    (artifacts (Filename.concat dir_p "out"));
  Alcotest.(check int) "summary agrees on found"
    sum_s.Campaign.Runner.s_found sum_p.Campaign.Runner.s_found;
  (* the merge algebra: forked workers ship metric deltas back to the
     parent, so parallel totals equal serial totals exactly *)
  List.iter2
    (fun ((n, a), (_, b)) (_, c) ->
       Alcotest.(check int) ("parallel total equals serial: " ^ n)
         (b - a) (c - b))
    (List.combine s0 s1) s2

(* --- resumability ------------------------------------------------------------- *)

(* NATIVE cells finish in well under a second; ROP_1.00 cells take seconds,
   so a signal ~2.5s in lands after the NATIVE cells are cached but before
   the campaign completes *)
let slow_grid =
  "rz:attackers=dse;configs=NATIVE,ROP_1.00;budgets=1k;targets=s1-i1-c1,s2-i1-c2"

let test_resume_after_sigint () =
  let base = tmpdir () in
  let cache = Filename.concat base "cache" in
  let out = Filename.concat base "out" in
  let ref_dir = tmpdir () in
  (* reference: the same grid, uninterrupted, in its own directories *)
  let _, _ =
    run_campaign ~cache_dir:(Filename.concat ref_dir "cache")
      ~out_dir:(Filename.concat ref_dir "out") slow_grid
  in
  (* child: fresh serial run over [cache]; parent kills it mid-run *)
  let pid = Unix.fork () in
  if pid = 0 then begin
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.dup2 devnull Unix.stderr;
    exit
      (Jobs.Pool.with_manifest None (fun m ->
           let g = Campaign.Grid.parse slow_grid in
           let opts =
             { Campaign.Runner.default_opts with
               Campaign.Runner.cache_dir = cache; out_dir = out;
               manifest = Some m }
           in
           ignore (Campaign.Runner.run ~opts g);
           0))
  end;
  Unix.sleepf 2.5;
  (try Unix.kill pid Sys.sigint with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  let interrupted = status <> Unix.WEXITED 0 in
  (* resume over the same cache: completed cells come back as hits *)
  let _, sum =
    run_campaign ~resume:true ~cache_dir:cache ~out_dir:out slow_grid
  in
  check_same_artifacts "resumed vs uninterrupted"
    (artifacts (Filename.concat ref_dir "out"))
    (artifacts out);
  if interrupted then
    Alcotest.(check bool) "interrupted run left cached cells behind" true
      (sum.Campaign.Runner.s_cache_hits >= 1)
  else
    (* child won the race and finished: every cell must be a hit *)
    Alcotest.(check int) "finished child cached everything" 4
      sum.Campaign.Runner.s_cache_hits;
  (* a second resume recomputes nothing at all *)
  let _, sum2 =
    run_campaign ~resume:true ~cache_dir:cache ~out_dir:out slow_grid
  in
  Alcotest.(check int) "second resume is 100% cache hits" 4
    sum2.Campaign.Runner.s_cache_hits;
  check_same_artifacts "second resume"
    (artifacts (Filename.concat ref_dir "out"))
    (artifacts out)

let () =
  Alcotest.run "campaign"
    [ ("grid",
       [ Alcotest.test_case "sizes" `Quick test_grid_sizes;
         Alcotest.test_case "unique keys" `Quick test_grid_keys_unique;
         Alcotest.test_case "parse" `Quick test_grid_parse ]);
      ("determinism",
       [ Alcotest.test_case "serial = parallel" `Quick
           test_serial_equals_parallel ]);
      ("resume",
       [ Alcotest.test_case "SIGINT + resume is byte-identical" `Quick
           test_resume_after_sigint ]) ]
