(* lib/jobs: forked worker pool, result cache, determinism.

   The pool's contract is behavioral, so every test drives the real thing:
   real forks, real SIGKILLs, a real on-disk cache in a temp directory. *)

let tmpdir () =
  let d = Filename.temp_file "jobs_test" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let get (r : _ Jobs.Pool.result) =
  match r.Jobs.Pool.outcome with
  | Jobs.Pool.Done v -> v
  | Jobs.Pool.Failed m -> Alcotest.failf "unexpected Failed: %s" m
  | Jobs.Pool.Timed_out t -> Alcotest.failf "unexpected Timed_out %.2f" t

(* --- cache ----------------------------------------------------------------- *)

let test_cache_key_stability () =
  let d1 = tmpdir () and d2 = tmpdir () in
  let c1 = Jobs.Cache.create ~salt:"s1" ~dir:d1 () in
  let c2 = Jobs.Cache.create ~salt:"s1" ~dir:d2 () in
  let c3 = Jobs.Cache.create ~salt:"s2" ~dir:d1 () in
  (* the content address depends only on (salt, key) — never on the
     directory, the process, or anything drawn from the environment *)
  Alcotest.(check string) "same salt+key -> same address"
    (Jobs.Cache.key c1 "table2/x") (Jobs.Cache.key c2 "table2/x");
  Alcotest.(check bool) "different salt -> different address" false
    (Jobs.Cache.key c1 "table2/x" = Jobs.Cache.key c3 "table2/x");
  Alcotest.(check bool) "different key -> different address" false
    (Jobs.Cache.key c1 "table2/x" = Jobs.Cache.key c1 "table2/y")

let test_cache_roundtrip () =
  let dir = tmpdir () in
  let c = Jobs.Cache.create ~salt:"t" ~dir () in
  Alcotest.(check (option (list int))) "miss on empty" None
    (Jobs.Cache.find c "k");
  Jobs.Cache.store c "k" [ 1; 2; 3 ];
  Alcotest.(check (option (list int))) "roundtrip" (Some [ 1; 2; 3 ])
    (Jobs.Cache.find c "k");
  Alcotest.(check int) "one hit" 1 c.Jobs.Cache.hits;
  Alcotest.(check int) "one miss" 1 c.Jobs.Cache.misses;
  (* a second cache over the same directory and salt sees the entry: this
     is the across-runs stability the experiment matrix relies on *)
  let c' = Jobs.Cache.create ~salt:"t" ~dir () in
  Alcotest.(check (option (list int))) "second run hits" (Some [ 1; 2; 3 ])
    (Jobs.Cache.find c' "k");
  Jobs.Cache.clear ~dir ();
  Alcotest.(check (option (list int))) "cleared" None (Jobs.Cache.find c' "k")

let test_cache_corrupt_recovery () =
  let dir = tmpdir () in
  let c = Jobs.Cache.create ~salt:"t" ~dir () in
  Jobs.Cache.store c "k" [ 1; 2; 3 ];
  (* tear the entry: a crashed writer or disk corruption leaves bytes that
     exist but do not unmarshal *)
  let p = Jobs.Cache.path c "k" in
  let oc = open_out_bin p in
  output_string oc "not a marshalled value";
  close_out oc;
  Alcotest.(check (option (list int))) "corrupt entry reads as a miss" None
    (Jobs.Cache.find c "k");
  Alcotest.(check int) "corruption counted" 1 c.Jobs.Cache.corrupt;
  Alcotest.(check bool) "poisoned file deleted on the spot" false
    (Sys.file_exists p);
  (* the slot heals: recompute + store, and the next find hits again *)
  Jobs.Cache.store c "k" [ 4; 5 ];
  Alcotest.(check (option (list int))) "next store heals the slot"
    (Some [ 4; 5 ]) (Jobs.Cache.find c "k");
  Alcotest.(check int) "no further corruption" 1 c.Jobs.Cache.corrupt

let test_cache_prune_lru () =
  let dir = tmpdir () in
  let c = Jobs.Cache.create ~salt:"t" ~dir () in
  let payload i = String.make 64 (Char.chr (Char.code 'a' + i)) in
  List.iter (fun i -> Jobs.Cache.store c (string_of_int i) (payload i))
    [ 0; 1; 2; 3 ];
  let per_entry = Jobs.Cache.size_bytes c / 4 in
  Alcotest.(check bool) "entries have a size" true (per_entry > 0);
  (* age entries 0 and 1: mtime is the recency signal prune sorts by *)
  let old = Unix.gettimeofday () -. 3600.0 in
  List.iter
    (fun i -> Unix.utimes (Jobs.Cache.path c (string_of_int i)) old old)
    [ 0; 1 ];
  let removed, removed_bytes =
    Jobs.Cache.prune ~max_bytes:(2 * per_entry) c
  in
  Alcotest.(check int) "two oldest evicted" 2 removed;
  Alcotest.(check int) "their bytes accounted" (2 * per_entry) removed_bytes;
  Alcotest.(check int) "directory trimmed to budget" (2 * per_entry)
    (Jobs.Cache.size_bytes c);
  Alcotest.(check bool) "aged entries gone" true
    (Jobs.Cache.find c "0" = None && Jobs.Cache.find c "1" = None);
  Alcotest.(check bool) "recent entries kept" true
    (Jobs.Cache.find c "2" = Some (payload 2)
     && Jobs.Cache.find c "3" = Some (payload 3));
  (* already under budget: prune removes nothing *)
  Alcotest.(check (pair int int)) "under budget is a no-op" (0, 0)
    (Jobs.Cache.prune ~max_bytes:(2 * per_entry) c)

(* --- determinism ----------------------------------------------------------- *)

let test_rng_of_key () =
  let a = Util.Rng.of_key ~seed:7 "cell" in
  let b = Util.Rng.of_key ~seed:7 "cell" in
  Alcotest.(check (list int)) "same seed+key -> same stream"
    (List.init 8 (fun _ -> Util.Rng.int a 1000))
    (List.init 8 (fun _ -> Util.Rng.int b 1000));
  let c = Util.Rng.of_key ~seed:7 "other-cell" in
  let d = Util.Rng.of_key ~seed:8 "cell" in
  Alcotest.(check bool) "different key -> different stream" false
    (List.init 8 (fun _ -> Util.Rng.int c 1000)
     = List.init 8 (fun _ -> Util.Rng.int d 1000))

let test_serial_parallel_identical () =
  (* per-job randomness comes from the job key, so scheduling order cannot
     leak into results: a 4-worker run must equal the in-process run *)
  let f i =
    let rng = Util.Rng.of_key ~seed:42 (string_of_int i) in
    List.init 5 (fun _ -> Util.Rng.range rng 0 100_000)
  in
  let run jobs =
    Jobs.Pool.map
      { Jobs.Pool.default with Jobs.Pool.jobs }
      ~key:string_of_int ~f (List.init 12 Fun.id)
  in
  Alcotest.(check (list (list int))) "serial = parallel"
    (List.map get (run 1)) (List.map get (run 4))

(* --- fault tolerance ------------------------------------------------------- *)

let test_exception_isolation () =
  let f i = if i = 1 then failwith "boom" else i * 10 in
  let rs =
    Jobs.Pool.map
      { Jobs.Pool.default with Jobs.Pool.jobs = 3 }
      ~key:string_of_int ~f (List.init 5 Fun.id)
  in
  List.iteri
    (fun i (r : _ Jobs.Pool.result) ->
       match (i, r.Jobs.Pool.outcome) with
       | (1, Jobs.Pool.Failed m) ->
         Alcotest.(check bool) "exception text surfaces" true
           (String.length m > 0);
         (* a deterministic exception is never retried *)
         Alcotest.(check int) "single attempt" 1 r.Jobs.Pool.attempts
       | (1, _) -> Alcotest.fail "job 1 should have failed"
       | (_, _) -> Alcotest.(check int) "others unaffected" (i * 10) (get r))
    rs

let test_worker_death_isolation () =
  (* [Unix._exit] skips the result protocol entirely: the parent sees EOF,
     must report a structured failure, and the pool must keep going *)
  let f i = if i = 2 then Unix._exit 9 else i + 100 in
  let rs =
    Jobs.Pool.map
      { Jobs.Pool.default with Jobs.Pool.jobs = 3; retries = 0 }
      ~key:string_of_int ~f (List.init 6 Fun.id)
  in
  List.iteri
    (fun i (r : _ Jobs.Pool.result) ->
       match (i, r.Jobs.Pool.outcome) with
       | (2, Jobs.Pool.Failed m) ->
         Alcotest.(check bool) "death is reported as such" true
           (String.length m > 0)
       | (2, _) -> Alcotest.fail "job 2 should have failed"
       | (i, _) -> Alcotest.(check int) "pool survived" (i + 100) (get r))
    rs

let test_retry_after_death () =
  let dir = tmpdir () in
  let marker = Filename.concat dir "first-attempt-done" in
  (* dies on the first attempt, succeeds on the redispatch: exactly the
     flaky-worker scenario bounded retries exist for *)
  let f i =
    if i = 0 && not (Sys.file_exists marker) then begin
      let oc = open_out marker in
      close_out oc;
      Unix._exit 3
    end
    else i + 7
  in
  let rs =
    Jobs.Pool.map
      { Jobs.Pool.default with Jobs.Pool.jobs = 2; retries = 1 }
      ~key:string_of_int ~f (List.init 3 Fun.id)
  in
  let r0 = List.nth rs 0 in
  Alcotest.(check int) "retried job succeeds" 7 (get r0);
  Alcotest.(check int) "second dispatch consumed" 2 r0.Jobs.Pool.attempts

let test_timeout_kill () =
  let f i = if i = 0 then (Unix.sleepf 30.0; 0) else i in
  let t0 = Unix.gettimeofday () in
  let rs =
    Jobs.Pool.map
      { Jobs.Pool.default with
        Jobs.Pool.jobs = 2; timeout_s = Some 0.3; retries = 0 }
      ~key:string_of_int ~f (List.init 4 Fun.id)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match (List.nth rs 0).Jobs.Pool.outcome with
   | Jobs.Pool.Timed_out t ->
     Alcotest.(check bool) "ran at least the budget" true (t >= 0.29)
   | _ -> Alcotest.fail "job 0 should have timed out");
  List.iteri
    (fun i (r : _ Jobs.Pool.result) ->
       if i > 0 then Alcotest.(check int) "others completed" i (get r))
    rs;
  (* the sleeper was SIGKILLed, not waited out *)
  Alcotest.(check bool) "pool did not wait for the sleeper" true
    (elapsed < 10.0)

(* --- cache + pool + manifest ----------------------------------------------- *)

let test_cache_skips_recompute () =
  let dir = tmpdir () in
  let m = Jobs.Manifest.create () in
  let f i = i * i in
  let run () =
    (* a fresh Cache.t per invocation models a fresh process over the same
       cache directory *)
    Jobs.Pool.map ~label:"squares"
      { Jobs.Pool.default with
        Jobs.Pool.jobs = 2;
        cache = Some (Jobs.Cache.create ~salt:"v" ~dir ());
        manifest = Some m }
      ~key:string_of_int ~f (List.init 8 Fun.id)
  in
  let first = run () in
  List.iter
    (fun (r : _ Jobs.Pool.result) ->
       Alcotest.(check bool) "first run computes" false r.Jobs.Pool.cached)
    first;
  let second = run () in
  List.iteri
    (fun i (r : _ Jobs.Pool.result) ->
       Alcotest.(check bool) "second run is served from cache" true
         r.Jobs.Pool.cached;
       Alcotest.(check int) "cached value is the computed one" (i * i) (get r))
    second;
  (* the manifest records both runs, with the hit counts an operator would
     check to confirm the matrix was not recomputed *)
  (match m.Jobs.Manifest.runs with
   | [ r1; r2 ] ->
     Alcotest.(check int) "no hits on first run" 0 r1.Jobs.Manifest.r_cache_hits;
     Alcotest.(check int) "all hits on second run" 8 r2.Jobs.Manifest.r_cache_hits;
     Alcotest.(check int) "ok counts cover the matrix" 8 r2.Jobs.Manifest.r_ok
   | rs -> Alcotest.failf "expected 2 manifest runs, got %d" (List.length rs));
  let path = Filename.concat dir "manifest.json" in
  Jobs.Manifest.write m path;
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "manifest JSON names the run" true
    (contains ~sub:"\"label\":\"squares\"" s);
  Alcotest.(check bool) "manifest JSON reports cache hits" true
    (contains ~sub:"\"cache_hits\":8" s)

let () =
  Alcotest.run "jobs"
    [ ("cache",
       [ Alcotest.test_case "key stability" `Quick test_cache_key_stability;
         Alcotest.test_case "roundtrip + second run" `Quick
           test_cache_roundtrip;
         Alcotest.test_case "corrupt entry recovery" `Quick
           test_cache_corrupt_recovery;
         Alcotest.test_case "prune LRU by mtime" `Quick
           test_cache_prune_lru ]);
      ("determinism",
       [ Alcotest.test_case "rng of_key" `Quick test_rng_of_key;
         Alcotest.test_case "serial = parallel" `Quick
           test_serial_parallel_identical ]);
      ("fault-tolerance",
       [ Alcotest.test_case "exception isolation" `Quick
           test_exception_isolation;
         Alcotest.test_case "worker death isolation" `Quick
           test_worker_death_isolation;
         Alcotest.test_case "retry after death" `Quick test_retry_after_death;
         Alcotest.test_case "timeout SIGKILL" `Quick test_timeout_kill ]);
      ("cache+pool",
       [ Alcotest.test_case "cache skips recompute" `Quick
           test_cache_skips_recompute ]) ]
