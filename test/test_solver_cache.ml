(* Solver memo cache: canonicalization (alpha-renaming, commutative
   operand order, constant folding), re-validation of cached models, disk
   persistence, and unsat-core prefix reuse.

   The equivalence tests are Rng-driven from fixed seeds: every run checks
   the same query population, so a failure here is reproducible, never a
   flake. *)

module E = Symex.Expr
module S = Symex.Solver

let rng = Util.Rng.create 20260809

let digest_of ~n_inputs cs =
  match S.canonicalize ~n_inputs cs with
  | Some c -> c.S.cq_digest
  | None -> Alcotest.fail "query unexpectedly uncacheable"

(* random expression over [k] input bytes, commutative-heavy *)
let rec gen_expr r k depth =
  if depth = 0 then
    if Util.Rng.bool r then E.Const (Int64.of_int (Util.Rng.int r 64))
    else E.Input (Util.Rng.int r k)
  else
    match Util.Rng.int r 8 with
    | 0 | 1 | 2 ->
      let op =
        Util.Rng.choose r
          [ E.Add; E.Mul; E.And; E.Or; E.Xor; E.Eq ]   (* commutative *)
      in
      E.Bin (op, gen_expr r k (depth - 1), gen_expr r k (depth - 1))
    | 3 | 4 ->
      let op = Util.Rng.choose r [ E.Sub; E.Shl; E.Ult; E.Slt ] in
      E.Bin (op, gen_expr r k (depth - 1), gen_expr r k (depth - 1))
    | 5 ->
      E.Un (Util.Rng.choose r [ E.Not; E.Neg; E.Bool_not ],
            gen_expr r k (depth - 1))
    | _ -> gen_expr r k (depth - 1)

let gen_query r k =
  List.init (1 + Util.Rng.int r 3)
    (fun _ ->
       { S.cond = gen_expr r k (1 + Util.Rng.int r 3);
         want = Util.Rng.bool r })

(* Input-blind canonical shape, mirroring the solver's tie condition: a
   commutative swap is only claimed to be erased when the operand shapes
   differ (tied shapes keep source order, so swapping them is outside the
   invariance contract). *)
let rec shape e =
  match e with
  | E.Const v -> "C" ^ Int64.to_string v
  | E.Input _ -> "I"
  | E.Bin (op, a, b) ->
    let sa = shape a and sb = shape b in
    let sa, sb =
      if S.commutative op && String.compare sb sa < 0 then (sb, sa)
      else (sa, sb)
    in
    "(" ^ S.bin_tag op ^ sa ^ sb ^ ")"
  | E.Un (op, a) -> "(" ^ S.un_tag op ^ shape a ^ ")"
  | E.Ite (c, t, f) -> "(?" ^ shape c ^ shape t ^ shape f ^ ")"
  | E.Load _ -> "L"

(* rewrite: rename inputs through [perm] and randomly swap the operands of
   commutative operators with distinct shapes — the rewrites
   canonicalization must erase.  Rebuilt through the smart constructors so
   the swap decision sees the folded operands the solver will see. *)
let rec permute_swap r perm e =
  match e with
  | E.Const _ -> e
  | E.Input i -> E.Input perm.(i)
  | E.Bin (op, a, b) ->
    let a = permute_swap r perm a and b = permute_swap r perm b in
    if S.commutative op && shape a <> shape b && Util.Rng.bool r then
      E.bin op b a
    else E.bin op a b
  | E.Un (op, a) -> E.un op (permute_swap r perm a)
  | E.Ite (c, t, f) ->
    E.ite (permute_swap r perm c) (permute_swap r perm t)
      (permute_swap r perm f)
  | E.Load _ -> e

let random_perm r k =
  Array.of_list (Util.Rng.shuffle r (List.init k Fun.id))

let test_digest_invariance () =
  let k = 3 in
  for _ = 1 to 300 do
    let cs = gen_query rng k in
    let perm = random_perm rng k in
    let cs' =
      List.map (fun c -> { c with S.cond = permute_swap rng perm c.S.cond }) cs
    in
    Alcotest.(check string) "alpha-renamed + swapped query -> same digest"
      (digest_of ~n_inputs:k cs) (digest_of ~n_inputs:k cs')
  done

let test_digest_folds_constants () =
  for _ = 1 to 200 do
    let cs = gen_query rng 2 in
    (* replace every constant by an equivalent two-term sum: constant
       folding in canonicalization must erase the difference *)
    let rec unfold e =
      match e with
      | E.Const v ->
        let a = Int64.of_int (Util.Rng.int rng 1000) in
        E.Bin (E.Add, E.Const a, E.Const (Int64.sub v a))
      | E.Input _ -> e
      | E.Bin (op, x, y) -> E.Bin (op, unfold x, unfold y)
      | E.Un (op, x) -> E.Un (op, unfold x)
      | E.Ite (c, t, f) -> E.Ite (unfold c, unfold t, unfold f)
      | E.Load _ -> e
    in
    let cs' = List.map (fun c -> { c with S.cond = unfold c.S.cond }) cs in
    Alcotest.(check string) "unfolded constants -> same digest"
      (digest_of ~n_inputs:2 cs) (digest_of ~n_inputs:2 cs')
  done

let test_digest_want_normalization () =
  (* Eq(e, 0) wanted true is the same query as e wanted false *)
  let e = E.bin E.Add (E.Input 0) (E.Const 3L) in
  Alcotest.(check string) "polarity-normalized forms share a digest"
    (digest_of ~n_inputs:1 [ { S.cond = E.Bin (E.Eq, e, E.Const 0L); want = true } ])
    (digest_of ~n_inputs:1 [ { S.cond = e; want = false } ])

(* truth vector of a 1-input query: the query's semantics, exactly *)
let truth_vector cs =
  List.init 256 (fun v ->
      let ev = E.evaluator ~input:(fun i -> if i = 0 then v else 0) in
      List.for_all (fun c -> (ev c.S.cond <> 0L) = c.S.want) cs)

let test_distinct_semantics_distinct_digests () =
  (* canonicalization must never merge semantically different queries:
     compare full 1-byte truth tables against digest equality *)
  let queries = List.init 120 (fun _ -> gen_query rng 1) in
  let tagged =
    List.map (fun cs -> (digest_of ~n_inputs:1 cs, truth_vector cs)) queries
  in
  List.iteri
    (fun i (d1, t1) ->
       List.iteri
         (fun j (d2, t2) ->
            if i < j && t1 <> t2 then
              Alcotest.(check bool)
                (Printf.sprintf "queries %d/%d differ semantically" i j)
                false (d1 = d2))
         tagged)
    tagged

let test_load_uncacheable () =
  let mem = { E.base = Machine.Memory.create (); writes = [] } in
  let e = E.Load (mem, E.Input 0, 1) in
  Alcotest.(check bool) "memory-dependent query has no content address" true
    (S.canonicalize ~n_inputs:1 [ { S.cond = e; want = true } ] = None)

(* --- memo behavior ----------------------------------------------------------- *)

let q_eq v = [ { S.cond = E.bin E.Eq (E.Input 0) (E.Const v); want = true } ]

let test_memo_hit_and_model_transfer () =
  let memo = S.Memo.create () in
  let solve cs =
    S.solve_verdict ~memo ~n_inputs:2 ~max_evals:20_000 cs
  in
  (match solve (q_eq 17L) with
   | S.V_sat m -> Alcotest.(check int) "first solve finds 17" 17 m.(0)
   | _ -> Alcotest.fail "expected sat");
  Alcotest.(check int) "first solve was a miss" 1 memo.S.Memo.misses;
  (* alpha-equivalent query over the *other* input byte: the cached model
     must transfer through the renaming and re-validate *)
  let cs' = [ { S.cond = E.bin E.Eq (E.Input 1) (E.Const 17L); want = true } ] in
  let stats = S.make_stats () in
  (match S.solve_verdict ~memo ~stats ~n_inputs:2
           ~max_evals:20_000 cs' with
   | S.V_sat m ->
     Alcotest.(check int) "transferred model satisfies" 17 m.(1);
     Alcotest.(check bool) "model re-validates" true (S.check m cs')
   | _ -> Alcotest.fail "expected sat from memo");
  Alcotest.(check int) "served from memo" 1 memo.S.Memo.hits;
  Alcotest.(check int) "no search on a hit" 0 stats.S.evals

let test_poisoned_model_never_returned () =
  let memo = S.Memo.create () in
  let cs = q_eq 42L in
  let canon = Option.get (S.canonicalize ~n_inputs:1 cs) in
  (* poison the cache with a wrong model under the query's own digest *)
  S.Memo.store memo canon.S.cq_digest (S.ME_sat [| 13 |]);
  (match S.solve_verdict ~memo ~n_inputs:1 ~max_evals:20_000 cs with
   | S.V_sat m ->
     Alcotest.(check bool) "returned model satisfies the original query"
       true (S.check m cs);
     Alcotest.(check int) "the poisoned model was rejected" 42 m.(0)
   | _ -> Alcotest.fail "expected sat");
  Alcotest.(check int) "re-validation failure recorded" 1 memo.S.Memo.invalid;
  (* the poisoned entry was overwritten by the recomputed one *)
  match S.Memo.find memo canon.S.cq_digest with
  | Some (S.ME_sat m) -> Alcotest.(check int) "entry repaired" 42 m.(0)
  | _ -> Alcotest.fail "expected repaired ME_sat entry"

let tmpdir () =
  let d = Filename.temp_file "solver_cache_test" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let test_disk_roundtrip () =
  let dir = tmpdir () in
  let cs = q_eq 99L in
  let m1 = S.Memo.create ~dir () in
  (match S.solve_verdict ~memo:m1 ~n_inputs:1 ~max_evals:20_000 cs with
   | S.V_sat _ -> ()
   | _ -> Alcotest.fail "expected sat");
  (* a fresh memo over the same directory models a new process *)
  let m2 = S.Memo.create ~dir () in
  let stats = S.make_stats () in
  (match S.solve_verdict ~memo:m2 ~stats ~n_inputs:1
           ~max_evals:20_000 cs with
   | S.V_sat m -> Alcotest.(check int) "model from disk" 99 m.(0)
   | _ -> Alcotest.fail "expected sat from disk");
  Alcotest.(check int) "no search after reload" 0 stats.S.evals;
  Alcotest.(check int) "disk hit counted" 1 m2.S.Memo.hits

let test_unknown_budget_semantics () =
  (* an Unknown cached at N evals must not be reused for a bigger budget *)
  let memo = S.Memo.create () in
  (* hash-like equation over 3 bytes: the penalty landscape gives local
     search no gradient, so a tiny budget cannot solve it (and the zero
     probe fails, since the target hash is that of a nonzero input) *)
  let h in0 in1 in2 =
    E.bin E.Xor
      (E.bin E.Mul (E.bin E.Xor (E.bin E.Mul in0 (E.Const 131L)) in1)
         (E.Const 131L))
      in2
  in
  let target = h (E.Const 0x5AL) (E.Const 0xC3L) (E.Const 0x77L) in
  let hard =
    [ { S.cond = E.bin E.Eq (h (E.Input 0) (E.Input 1) (E.Input 2)) target;
        want = true } ]
  in
  let v1 =
    S.solve_verdict ~rng:(Util.Rng.create 1) ~memo ~n_inputs:3
      ~max_evals:200 hard
  in
  (match v1 with
   | S.V_unknown -> ()
   | S.V_sat _ -> Alcotest.fail "tiny budget should not solve this"
   | S.V_unsat -> Alcotest.fail "query is not provably unsat here");
  (* same query, larger budget: must search again, not echo the Unknown *)
  let stats = S.make_stats () in
  ignore
    (S.solve_verdict ~rng:(Util.Rng.create 1) ~memo ~stats
       ~n_inputs:3 ~max_evals:2_000 hard);
  Alcotest.(check bool) "bigger budget searches again" true (stats.S.evals > 0);
  (* equal budget: the cached Unknown applies *)
  let stats2 = S.make_stats () in
  (match
     S.solve_verdict ~rng:(Util.Rng.create 1) ~memo ~stats:stats2
       ~n_inputs:3 ~max_evals:200 hard
   with
   | S.V_unknown -> ()
   | _ -> Alcotest.fail "expected cached unknown");
  Alcotest.(check int) "equal budget served from memo" 0 stats2.S.evals

let test_unsat_core_prefix_reuse () =
  let memo = S.Memo.create () in
  let contradiction =
    { S.cond =
        E.bin E.Eq (E.bin E.And (E.Input 0) (E.Const 1L)) (E.Const 7L);
      want = true }
  in
  (match S.solve_verdict ~memo ~n_inputs:1 ~max_evals:20_000
           [ contradiction ] with
   | S.V_unsat -> ()
   | _ -> Alcotest.fail "exhaustive enumeration should prove unsat");
  (* a *grown* constraint set (the DSE path-prefix pattern) shares no
     digest with the original query, but contains its unsat core *)
  let grown =
    [ { S.cond = E.bin E.Ult (E.Input 0) (E.Const 10L); want = true };
      contradiction ]
  in
  let stats = S.make_stats () in
  (match S.solve_verdict ~memo ~stats ~n_inputs:1
           ~max_evals:20_000 grown with
   | S.V_unsat -> ()
   | _ -> Alcotest.fail "superset of an unsat core must be unsat");
  Alcotest.(check int) "prefix verdict reused without search" 0 stats.S.evals;
  Alcotest.(check int) "core hit recorded" 1 memo.S.Memo.prefix_hits

let prop_memoized_solve_agrees =
  (* memoized solving is an optimization, never a semantics change: on a
     seeded query population, verdict-with-memo = verdict-without *)
  QCheck.Test.make ~name:"memo does not change verdicts" ~count:150
    QCheck.(map (fun seed -> seed) small_int)
    (fun seed ->
       let r = Util.Rng.create (seed + 7777) in
       let cs = gen_query r 2 in
       let memo = S.Memo.create () in
       let v_plain =
         S.solve_verdict ~rng:(Util.Rng.create 5) ~n_inputs:2
           ~max_evals:5_000 cs
       in
       let v_memo =
         S.solve_verdict ~rng:(Util.Rng.create 5) ~memo
           ~n_inputs:2 ~max_evals:5_000 cs
       in
       match v_plain, v_memo with
       | S.V_sat _, S.V_sat m -> S.check m cs
       | S.V_unsat, S.V_unsat | S.V_unknown, S.V_unknown -> true
       | _, _ -> false)

let () =
  Alcotest.run "solver_cache"
    [ ("canonicalization",
       [ Alcotest.test_case "alpha + commutative invariance" `Quick
           test_digest_invariance;
         Alcotest.test_case "constant folding" `Quick
           test_digest_folds_constants;
         Alcotest.test_case "want-polarity normalization" `Quick
           test_digest_want_normalization;
         Alcotest.test_case "distinct semantics, distinct digests" `Quick
           test_distinct_semantics_distinct_digests;
         Alcotest.test_case "Load is uncacheable" `Quick
           test_load_uncacheable ]);
      ("memo",
       [ Alcotest.test_case "hit + alpha model transfer" `Quick
           test_memo_hit_and_model_transfer;
         Alcotest.test_case "poisoned model never returned" `Quick
           test_poisoned_model_never_returned;
         Alcotest.test_case "disk roundtrip" `Quick test_disk_roundtrip;
         Alcotest.test_case "unknown is budget-scoped" `Quick
           test_unknown_budget_semantics;
         Alcotest.test_case "unsat-core prefix reuse" `Quick
           test_unsat_core_prefix_reuse;
         QCheck_alcotest.to_alcotest prop_memoized_solve_agrees ]) ]
