(* Static chain verifier driver.

   Rewrites every built-in program at every Table I / Table II configuration
   and runs the four verification passes (lib/verify) over each result,
   without executing any rewritten code.  Exits nonzero if any error-severity
   diagnostic is reported; CI runs this over the full matrix (dune @check).

   The program × configuration matrix is embarrassingly parallel: --jobs N
   runs it on N forked workers (lib/jobs), each returning its rendered
   findings as a string that the parent prints in matrix order, so the
   output is identical to a serial run.  SIGINT reaps all workers and exits
   nonzero.

     ropcheck                       # whole corpus, whole config matrix
     ropcheck --jobs 4              # same, on 4 workers
     ropcheck --program fasta       # one program
     ropcheck --config rop1.0+p2   # one configuration
     ropcheck --verbose             # also print warnings and per-run stats *)

open Cmdliner

(* Table I feature matrix plus the Table II k sweep — shared with the CLI
   and the daemon via Serve.Oneshot so names resolve identically everywhere. *)
let config_matrix = Serve.Oneshot.config_matrix

(* name, image builder, functions to rewrite: every registry program except
   the toy fact demo. *)
let targets () =
  List.filter_map
    (fun (e : Serve.Oneshot.entry) ->
       if e.Serve.Oneshot.e_name = "fact" then None
       else
         Some (e.Serve.Oneshot.e_name, e.Serve.Oneshot.e_build,
               e.Serve.Oneshot.e_funcs))
    (Serve.Oneshot.registry ())

(* One matrix cell, executed in a worker: returns (errors, warnings,
   rendered output) as plain data so the parent can print deterministically. *)
let check_one ~verbose name cfg_name config build fns =
  let img = build () in
  let r = Ropc.Rewriter.rewrite img ~functions:fns ~config in
  let skipped =
    List.filter_map
      (fun (f, res) ->
         match res with
         | Ok _ -> None
         | Error e -> Some (f, Ropc.Rewriter.failure_to_string e))
      r.Ropc.Rewriter.funcs
  in
  let diags = Verify.Check.check r in
  let errs, warns, _ = Verify.Diag.counts diags in
  let buf = Buffer.create 256 in
  if errs > 0 || (verbose && (warns > 0 || skipped <> [])) then begin
    Printf.bprintf buf "== %s / %s ==\n" name cfg_name;
    List.iter
      (fun (f, why) -> Printf.bprintf buf "  (skipped %s: %s)\n" f why)
      skipped;
    Buffer.add_string buf (Verify.Diag.render_report ~verbose diags)
  end;
  (errs, warns, Buffer.contents buf)

let main seed program config verbose jobs manifest trace metrics inject_opaque =
  Obs.Run.with_reporting ?trace ~metrics @@ fun () ->
  let adjust cfg =
    if inject_opaque then { cfg with Ropc.Config.debug_opaque_residue = true }
    else cfg
  in
  let matrix =
    match config with
    | None -> config_matrix seed
    | Some c ->
      (match List.assoc_opt c (config_matrix seed) with
       | Some cfg -> [ (c, cfg) ]
       | None ->
         Printf.eprintf "unknown config %s; available: %s\n" c
           (String.concat ", " (List.map fst (config_matrix seed)));
         exit 2)
  in
  let targets_l =
    match program with
    | None -> targets ()
    | Some p ->
      (match
         List.filter (fun (name, _, _) -> name = p) (targets ())
       with
       | [] ->
         Printf.eprintf "unknown program %s; available: %s\n" p
           (String.concat ", "
              (List.map (fun (n, _, _) -> n) (targets ())));
         exit 2
       | ts -> ts)
  in
  let cells =
    List.concat_map
      (fun (name, _, _) -> List.map (fun (cn, _) -> (name, cn)) matrix)
      targets_l
  in
  let f (tname, cfg_name) =
    (* rebuild target and config from their names: both lookups are
       deterministic, so a worker computes exactly the serial cell *)
    let (_, build, fns) =
      List.find (fun (n, _, _) -> n = tname) (targets ())
    in
    let cfg = adjust (List.assoc cfg_name (config_matrix seed)) in
    check_one ~verbose tname cfg_name cfg build fns
  in
  Jobs.Pool.with_manifest manifest (fun m ->
      let pool =
        { Jobs.Pool.default with
          Jobs.Pool.jobs; manifest = Some m;
          progress = Unix.isatty Unix.stderr }
      in
      let results =
        Jobs.Pool.map ~label:"ropcheck" pool
          ~key:(fun (t, c) ->
              Printf.sprintf "ropcheck/seed=%d/injo=%b/%s/%s" seed
                inject_opaque t c)
          ~f cells
      in
      let runs = ref 0 and errs = ref 0 and warns = ref 0 in
      List.iter2
        (fun (tname, cfg_name) (r : _ Jobs.Pool.result) ->
           incr runs;
           match r.Jobs.Pool.outcome with
           | Jobs.Pool.Done (e, w, out) ->
             print_string out;
             errs := !errs + e;
             warns := !warns + w
           | Jobs.Pool.Failed msg ->
             Printf.printf "== %s / %s ==\n  harness failure: %s\n" tname
               cfg_name msg;
             incr errs
           | Jobs.Pool.Timed_out t ->
             Printf.printf "== %s / %s ==\n  timed out after %.0fs\n" tname
               cfg_name t;
             incr errs)
        cells results;
      Printf.printf "ropcheck: %d runs, %d errors, %d warnings\n" !runs !errs
        !warns;
      if !errs > 0 then 1 else 0)

let cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Obfuscation seed.")
  in
  let program =
    Arg.(value & opt (some string) None
         & info [ "program" ] ~doc:"Check only this built-in program.")
  in
  let config =
    Arg.(value & opt (some string) None
         & info [ "config" ] ~doc:"Check only this configuration.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose"; "v" ]
             ~doc:"Print warnings and skipped functions too.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Forked worker processes for the program x config matrix.")
  in
  let manifest =
    Arg.(value & opt (some string) None
         & info [ "manifest" ] ~docv:"FILE"
             ~doc:"Write a JSON run manifest to $(docv).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a chrome://tracing JSON profile of the run to \
                   $(docv). Spans from forked workers are not captured; use \
                   --jobs 1 for a complete flame view.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ] ~doc:"Dump the metrics registry to stderr on exit.")
  in
  let inject_opaque =
    Arg.(value & flag
         & info [ "inject-opaque" ]
             ~doc:"Fault injection: record the first opaque-encoded slot \
                   with the wrong residue (the chain byte check must flag \
                   it). Only meaningful with +oc configurations.")
  in
  Cmd.v
    (Cmd.info "ropcheck"
       ~doc:"Statically verify rewritten images without executing them")
    Term.(const main $ seed $ program $ config $ verbose $ jobs $ manifest
          $ trace $ metrics $ inject_opaque)

let () = exit (Cmd.eval' cmd)
