(* Attack-campaign runner CLI.

     campaign --grid default --jobs 8            run a 200-cell grid
     campaign --grid tiny --resume               resume after a SIGINT
     campaign --grid "mine:configs=NATIVE,ROP_1.00;budgets=1k,4k"

   Sweeps an attacker x configuration x budget x target grid over the
   lib/jobs worker pool and writes crossover-curve artifacts (cells.csv,
   crossover.csv, crossover.json) to --out.  Cells are cached by content
   address in --cache-dir; a fresh run clears the cache, --resume keeps it
   and recomputes only missing cells, so a run interrupted by Ctrl-C picks
   up where it stopped with byte-identical artifacts (budgets are
   eval/state-based, artifacts carry no wall-clock fields).  SIGINT kills
   and reaps all workers, flushes the partial manifest, exits 130. *)

open Cmdliner

let main grid_spec jobs resume cache_dir out_dir manifest solver_cache
    wall_safety cache_max_bytes min_hit_rate trace metrics =
  Obs.Run.with_reporting ?trace ~metrics @@ fun () ->
  let grid =
    try Campaign.Grid.parse grid_spec
    with Invalid_argument m -> Printf.eprintf "bad --grid: %s\n" m; exit 2
  in
  Jobs.Pool.with_manifest manifest (fun m ->
      let opts =
        { Campaign.Runner.jobs;
          cache_dir;
          resume;
          out_dir;
          manifest = Some m;
          progress = Unix.isatty Unix.stderr;
          solver_cache;
          wall_safety_s = wall_safety;
          cache_max_bytes }
      in
      let s = Campaign.Runner.run ~opts grid in
      Campaign.Runner.print_summary grid s;
      let hit_rate =
        100.0 *. float_of_int s.Campaign.Runner.s_cache_hits
        /. float_of_int (max 1 s.Campaign.Runner.s_cells)
      in
      Printf.printf
        "\ncampaign %s: %d cells, %d found, %d failed, %d cache hits (%.0f%%)\n\
         artifacts in %s; cell cache in %s\n"
        grid.Campaign.Grid.g_name s.Campaign.Runner.s_cells
        s.Campaign.Runner.s_found s.Campaign.Runner.s_failed
        s.Campaign.Runner.s_cache_hits hit_rate out_dir cache_dir;
      match min_hit_rate with
      | Some want when hit_rate < want ->
        Printf.eprintf "cache hit rate %.0f%% below required %.0f%%\n"
          hit_rate want;
        1
      | _ -> 0)

let grid_arg =
  let doc =
    "Grid to sweep: $(b,tiny) (8 cells), $(b,default) (200 cells), or a \
     custom spec $(b,name:attackers=..;configs=..;budgets=..;targets=..) \
     (comma-separated values per axis; targets as sS-iN-cC)."
  in
  Arg.(value & opt string "tiny" & info [ "grid" ] ~docv:"GRID" ~doc)

let jobs_arg =
  let doc = "Worker processes (1 = in-process serial)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let resume_arg =
  let doc =
    "Keep the cell cache from a previous (possibly interrupted) run and \
     recompute only missing cells.  Without this flag the cache directory \
     is cleared first."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let cache_dir_arg =
  let doc = "Cell result-cache directory." in
  Arg.(value & opt string "_campaign_cache"
       & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let out_arg =
  let doc = "Artifact output directory (cells.csv, crossover.csv/.json)." in
  Arg.(value & opt string "_campaign" & info [ "out" ] ~docv:"DIR" ~doc)

let manifest_arg =
  let doc = "Write a JSON run manifest to $(docv)." in
  Arg.(value
       & opt (some string) (Some "_campaign/manifest.json")
       & info [ "manifest" ] ~docv:"FILE" ~doc)

let solver_cache_arg =
  let doc =
    "Directory for a cross-cell on-disk solver memo cache.  Off by \
     default: sharing solver models across cells can perturb DSE witness \
     choice, which trades the byte-identical-resume guarantee for \
     throughput."
  in
  Arg.(value & opt (some string) None
       & info [ "solver-cache" ] ~docv:"DIR" ~doc)

let wall_safety_arg =
  let doc =
    "Per-cell wall-clock safety net in seconds.  Budgets are \
     eval/state-based; this only bounds pathological cells."
  in
  Arg.(value & opt float 120.0 & info [ "wall-safety" ] ~docv:"S" ~doc)

let cache_max_bytes_arg =
  let doc =
    "Prune the cell cache to at most $(docv) bytes after the run \
     (LRU by mtime; oldest cells evicted first).  0 or absent: unbounded."
  in
  Arg.(value & opt (some int) None
       & info [ "cache-max-bytes" ] ~docv:"BYTES" ~doc)

let min_hit_rate_arg =
  let doc =
    "Fail (exit 1) if the cell-cache hit rate is below $(docv) percent — \
     CI uses this to assert that a --resume run actually resumed."
  in
  Arg.(value & opt (some float) None
       & info [ "min-hit-rate" ] ~docv:"PCT" ~doc)

let trace_arg =
  let doc = "Write a chrome://tracing JSON profile of the run to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Dump the metrics registry to stderr on exit." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let cmd =
  let doc = "Run attacker x configuration x budget crossover campaigns" in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(const main $ grid_arg $ jobs_arg $ resume_arg $ cache_dir_arg
          $ out_arg $ manifest_arg $ solver_cache_arg $ wall_safety_arg
          $ cache_max_bytes_arg $ min_hit_rate_arg $ trace_arg $ metrics_arg)

let () = exit (Cmd.eval' cmd)
