(* Load generator and acceptance harness for the obfuscation service.

   Two ways to use it:

   - against a running daemon:
       ropserved --socket /tmp/rop.sock --jobs 4 &
       ropbench_client --socket /tmp/rop.sock --mode rate --rate 50

   - self-contained (--selftest): forks its own server on a temp socket,
     replays the program x config x seed grid cold (populating the cache)
     and warm (hitting it), measures the serial one-shot baseline in
     process, checks byte-identity of served vs. one-shot artifacts and the
     warm hit rate, writes BENCH_serve.json, and — when --baseline points
     at a committed run — gates the warm speedup at 95% of the committed
     value (capped, so a slow CI box fails but a fast box cannot ratchet
     the floor), re-measuring once before failing.  CI runs this as the
     @serve alias. *)

open Cmdliner

let regression_floor = 0.95

(* Warm serving is cache hits vs. full rewrites, so raw speedups are large
   and noisy; the cap keeps the gate near the acceptance threshold (3x)
   instead of chasing the measurement tail. *)
let speedup_cap = 5.0

let parse_csv s =
  String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let fail_setup fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

(* --- in-process server lifecycle -------------------------------------------- *)

let spawn_server opts path =
  match Unix.fork () with
  | 0 ->
    let rc =
      try Serve.Server.run ~opts (Serve.Server.L_socket path)
      with e ->
        Printf.eprintf "[serve] died: %s\n%!" (Printexc.to_string e);
        1
    in
    Unix._exit rc
  | pid ->
    let rec wait n =
      if n <= 0 then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        fail_setup "server did not come up on %s" path
      end;
      match Serve.Client.connect path with
      | Ok c ->
        let up = Serve.Client.ping c = Ok () in
        Serve.Client.close c;
        if not up then (Unix.sleepf 0.05; wait (n - 1))
      | Error _ -> Unix.sleepf 0.05; wait (n - 1)
    in
    wait 200;
    pid

let stop_server pid path =
  (match Serve.Client.connect path with
   | Ok c ->
     ignore (Serve.Client.shutdown c);
     Serve.Client.close c
   | Error _ ->
     (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
  let rec reap n =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if n <= 0 then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        None
      end
      else begin Unix.sleepf 0.05; reap (n - 1) end
    | _, Unix.WEXITED rc -> Some rc
    | _, _ -> None
  in
  reap 200

(* --- passes ----------------------------------------------------------------- *)

let print_pass name (r : Serve.Loadgen.result) =
  Printf.printf
    "%-6s %6.2fs  %5d done  %4.0f rps  p50 %6.2fms  p90 %6.2fms  p99 %6.2fms  \
     hits %3.0f%%  shed %d  expired %d  errors %d\n%!"
    name r.Serve.Loadgen.r_wall_s r.Serve.Loadgen.r_completed
    r.Serve.Loadgen.r_rps r.Serve.Loadgen.r_p50_ms r.Serve.Loadgen.r_p90_ms
    r.Serve.Loadgen.r_p99_ms r.Serve.Loadgen.r_hit_rate
    r.Serve.Loadgen.r_shed r.Serve.Loadgen.r_expired r.Serve.Loadgen.r_errors

let load_pass ~socket ~conns ~mode ~duration ~specs ~rounds name =
  match
    Serve.Loadgen.run ~socket ~conns ~mode ~duration_s:duration ~specs ~rounds ()
  with
  | Error m -> fail_setup "%s pass failed: %s" name m
  | Ok r -> print_pass name r; r

(* Serial baseline: the cold CLI path (compile + scan + rewrite per call),
   which is exactly [Oneshot.one_shot].  Returns the local artifacts so the
   identity check can compare served bytes against them. *)
let serial_pass specs =
  let t0 = Unix.gettimeofday () in
  let arts =
    List.map
      (fun (s : Serve.Loadgen.spec) ->
         match
           Serve.Oneshot.one_shot
             { Serve.Oneshot.sp_prog = s.Serve.Loadgen.g_prog;
               sp_config = s.Serve.Loadgen.g_config;
               sp_seed = s.Serve.Loadgen.g_seed }
         with
         | Ok a -> (s, a)
         | Error m ->
           fail_setup "serial rewrite of %s/%s/seed=%d failed: %s"
             s.Serve.Loadgen.g_prog s.Serve.Loadgen.g_config
             s.Serve.Loadgen.g_seed m)
      specs
  in
  let wall = Unix.gettimeofday () -. t0 in
  let rps = float_of_int (List.length specs) /. Float.max 1e-9 wall in
  Printf.printf "serial %6.2fs  %5d done  %4.1f rewrites/sec\n%!" wall
    (List.length specs) rps;
  (arts, wall, rps)

(* Byte-identity: every spec's served artifact digest must equal the local
   one-shot digest; a slice additionally compares the full image bytes. *)
let identity_pass ~socket arts =
  match Serve.Client.connect socket with
  | Error m -> fail_setup "identity pass: %s" m
  | Ok c ->
    let mismatches = ref 0 and checked = ref 0 in
    List.iteri
      (fun i ((s : Serve.Loadgen.spec), (a : Serve.Oneshot.artifact)) ->
         let want_bytes = i mod 10 = 0 in
         match
           Serve.Client.rewrite c ~want_image:want_bytes
             ~prog:s.Serve.Loadgen.g_prog ~config:s.Serve.Loadgen.g_config
             ~seed:s.Serve.Loadgen.g_seed ()
         with
         | Error m ->
           incr mismatches;
           Printf.eprintf "identity: %s/%s/seed=%d errored: %s\n"
             s.Serve.Loadgen.g_prog s.Serve.Loadgen.g_config
             s.Serve.Loadgen.g_seed m
         | Ok rr ->
           incr checked;
           if rr.Serve.Protocol.rr_image_digest <> a.Serve.Oneshot.a_image_digest
           then begin
             incr mismatches;
             Printf.eprintf "identity: %s/%s/seed=%d digest mismatch\n"
               s.Serve.Loadgen.g_prog s.Serve.Loadgen.g_config
               s.Serve.Loadgen.g_seed
           end;
           (match rr.Serve.Protocol.rr_image with
            | Some b when b <> a.Serve.Oneshot.a_image ->
              incr mismatches;
              Printf.eprintf "identity: %s/%s/seed=%d byte mismatch\n"
                s.Serve.Loadgen.g_prog s.Serve.Loadgen.g_config
                s.Serve.Loadgen.g_seed
            | _ -> ()))
      arts;
    Serve.Client.close c;
    Printf.printf "identity: %d specs checked, %d mismatches\n%!" !checked
      !mismatches;
    (!checked, !mismatches)

(* --- BENCH_serve.json ------------------------------------------------------- *)

let bench_json ~quick ~specs_n ~programs_n ~configs_n ~seeds_n ~jobs ~shards
    ~conns ~serial_rps ~serial_wall
    ~(cold : Serve.Loadgen.result) ~(warm : Serve.Loadgen.result)
    ~identity_checked ~identity_mismatches ~pass =
  let open Serve.Loadgen in
  let b = Buffer.create 1024 in
  let load name (r : Serve.Loadgen.result) =
    Printf.bprintf b
      "  \"%s\": {\"rps\": %.2f, \"wall_s\": %.3f, \"completed\": %d, \
       \"p50_ms\": %.3f, \"p90_ms\": %.3f, \"p99_ms\": %.3f, \
       \"hit_rate\": %.1f, \"shed\": %d, \"expired\": %d, \"errors\": %d},\n"
      name r.r_rps r.r_wall_s r.r_completed r.r_p50_ms r.r_p90_ms r.r_p99_ms
      r.r_hit_rate r.r_shed r.r_expired r.r_errors
  in
  Buffer.add_string b "{\n  \"schema\": \"bench_serve/v1\",\n";
  Printf.bprintf b "  \"quick\": %b,\n" quick;
  Printf.bprintf b
    "  \"grid\": {\"programs\": %d, \"configs\": %d, \"seeds\": %d, \
     \"specs\": %d},\n"
    programs_n configs_n seeds_n specs_n;
  Printf.bprintf b
    "  \"server\": {\"jobs\": %d, \"shards\": %d, \"conns\": %d},\n" jobs
    shards conns;
  Printf.bprintf b
    "  \"serial\": {\"rewrites_per_sec\": %.2f, \"wall_s\": %.3f},\n"
    serial_rps serial_wall;
  load "served_cold" cold;
  load "served_warm" warm;
  Printf.bprintf b "  \"speedup_cold_vs_serial\": %.3f,\n"
    (cold.r_rps /. Float.max 1e-9 serial_rps);
  Printf.bprintf b "  \"speedup_warm_vs_serial\": %.3f,\n"
    (warm.r_rps /. Float.max 1e-9 serial_rps);
  Printf.bprintf b
    "  \"identity\": {\"checked\": %d, \"mismatches\": %d},\n" identity_checked
    identity_mismatches;
  Printf.bprintf b
    "  \"acceptance\": {\"criterion\": \"byte-identical artifacts and warm \
     served throughput >= 3x serial one-shot at concurrency = pool size\", \
     \"pass\": %b}\n}\n"
    pass;
  Buffer.contents b

let read_committed_speedup file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Obs.Json.parse s with
  | Error m -> fail_setup "bad baseline %s: %s" file m
  | Ok j ->
    (match
       Option.bind (Obs.Json.member "speedup_warm_vs_serial" j)
         Obs.Json.to_float
     with
     | Some v -> v
     | None -> fail_setup "baseline %s lacks speedup_warm_vs_serial" file)

(* --- main ------------------------------------------------------------------- *)

let main socket jobs conns shards cache_dir max_queue deadline_ms mode_s rate
    duration rounds programs_s configs_s seeds_s json baseline selftest
    min_hit_rate quick verbose =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let programs =
    match programs_s with
    | Some s -> parse_csv s
    | None -> if quick then [ "fact"; "base64" ] else Serve.Oneshot.names ()
  in
  let configs =
    match configs_s with
    | Some s -> parse_csv s
    | None ->
      if quick then [ "plain"; "rop0.25"; "rop1.0+p2+gc" ]
      else Serve.Oneshot.matrix_names ()
  in
  let seeds =
    match seeds_s with
    | Some s ->
      List.map
        (fun x ->
           match int_of_string_opt x with
           | Some v -> v
           | None -> fail_setup "bad seed %S" x)
        (parse_csv s)
    | None -> [ 1 ]
  in
  List.iter
    (fun p ->
       if Serve.Oneshot.find p = None then fail_setup "unknown program %S" p)
    programs;
  List.iter
    (fun c ->
       match Serve.Oneshot.config_of_name ~seed:1 c with
       | Ok _ -> ()
       | Error m -> fail_setup "bad config %S: %s" c m)
    configs;
  let specs =
    List.concat_map
      (fun p ->
         List.concat_map
           (fun c ->
              List.map
                (fun s ->
                   { Serve.Loadgen.g_prog = p; g_config = c; g_seed = s })
                seeds)
           configs)
      programs
  in
  let conns = if conns > 0 then conns else max 1 jobs in
  let mode =
    match mode_s with
    | "closed" -> Serve.Loadgen.Closed
    | "rate" -> Serve.Loadgen.Rate rate
    | m -> fail_setup "unknown --mode %S (closed|rate)" m
  in
  (* server: connect if given, else fork our own on a temp socket *)
  let sock_path, child =
    match socket with
    | Some p -> (p, None)
    | None ->
      let path = Filename.temp_file "ropserved" ".sock" in
      Sys.remove path;
      let cache_dir =
        if cache_dir = "" then path ^ ".cache" else cache_dir
      in
      let opts =
        { Serve.Server.default_opts with
          Serve.Server.jobs = max 0 jobs;
          shards;
          cache_dir;
          max_queue;
          deadline_ms = (if deadline_ms > 0.0 then Some deadline_ms else None);
          verbose }
      in
      let pid = spawn_server opts path in
      (path, Some pid)
  in
  let cleanup () =
    match child with
    | Some pid -> ignore (stop_server pid sock_path)
    | None -> ()
  in
  let finish rc = cleanup (); rc in
  if not selftest then begin
    let r =
      load_pass ~socket:sock_path ~conns ~mode ~duration ~specs ~rounds "load"
    in
    ignore r;
    finish 0
  end
  else begin
    (* cold: populates the cache; warm: must be served from it *)
    let cold =
      load_pass ~socket:sock_path ~conns ~mode:Serve.Loadgen.Closed ~duration
        ~specs ~rounds "cold"
    in
    let warm =
      load_pass ~socket:sock_path ~conns ~mode:Serve.Loadgen.Closed ~duration
        ~specs ~rounds "warm"
    in
    let arts, serial_wall, serial_rps = serial_pass specs in
    let identity_checked, identity_mismatches =
      identity_pass ~socket:sock_path arts
    in
    let hit_ok = warm.Serve.Loadgen.r_hit_rate >= min_hit_rate in
    if not hit_ok then
      Printf.eprintf "FAIL: warm hit rate %.1f%% below required %.1f%%\n"
        warm.Serve.Loadgen.r_hit_rate min_hit_rate;
    let speedup_warm r = r.Serve.Loadgen.r_rps /. Float.max 1e-9 serial_rps in
    let acceptance_pass =
      identity_mismatches = 0 && hit_ok && speedup_warm warm >= 3.0
    in
    (* regression gate vs. the committed baseline, one re-measure on miss *)
    let gate_ok, warm_final, serial_rps_final, serial_wall_final =
      match baseline with
      | None -> (true, warm, serial_rps, serial_wall)
      | Some file ->
        let committed = read_committed_speedup file in
        let floor = regression_floor *. Float.min committed speedup_cap in
        if speedup_warm warm >= floor then (true, warm, serial_rps, serial_wall)
        else begin
          Printf.printf
            "warm speedup %.2fx below floor %.2fx (committed %.2fx); \
             re-measuring once\n%!"
            (speedup_warm warm) floor committed;
          let warm2 =
            load_pass ~socket:sock_path ~conns ~mode:Serve.Loadgen.Closed
              ~duration ~specs ~rounds "warm2"
          in
          let _, serial_wall2, serial_rps2 = serial_pass specs in
          let sp = warm2.Serve.Loadgen.r_rps /. Float.max 1e-9 serial_rps2 in
          if sp >= floor then (true, warm2, serial_rps2, serial_wall2)
          else begin
            Printf.eprintf
              "FAIL: warm speedup %.2fx still below floor %.2fx\n" sp floor;
            (false, warm2, serial_rps2, serial_wall2)
          end
        end
    in
    let doc =
      bench_json ~quick ~specs_n:(List.length specs)
        ~programs_n:(List.length programs) ~configs_n:(List.length configs)
        ~seeds_n:(List.length seeds) ~jobs ~shards ~conns
        ~serial_rps:serial_rps_final ~serial_wall:serial_wall_final ~cold
        ~warm:warm_final ~identity_checked ~identity_mismatches
        ~pass:(acceptance_pass && gate_ok)
    in
    let oc = open_out json in
    output_string oc doc;
    close_out oc;
    Printf.printf
      "wrote %s (serial %.1f/s, cold %.1f/s, warm %.1f/s = %.1fx serial)\n%!"
      json serial_rps_final cold.Serve.Loadgen.r_rps
      warm_final.Serve.Loadgen.r_rps (speedup_warm warm_final);
    finish (if acceptance_pass && gate_ok then 0 else 1)
  end

let cmd =
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Daemon socket to drive.  Absent: fork a private server \
                   on a temp socket and tear it down afterwards.")
  in
  let jobs =
    Arg.(value & opt int 4
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker count for a self-spawned server.")
  in
  let conns =
    Arg.(value & opt int 0
         & info [ "conns" ] ~docv:"N"
             ~doc:"Client connections (concurrency).  0: same as --jobs.")
  in
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"N"
             ~doc:"Cache shards for a self-spawned server.")
  in
  let cache_dir =
    Arg.(value & opt string ""
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Cache dir for a self-spawned server (default: temp).")
  in
  let max_queue =
    Arg.(value & opt int 64
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Queue bound for a self-spawned server.")
  in
  let deadline_ms =
    Arg.(value & opt float 0.0
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Queue deadline for a self-spawned server (0: none).")
  in
  let mode =
    Arg.(value & opt string "closed"
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Drive mode: $(b,closed) (one outstanding request per \
                   connection) or $(b,rate) (fixed offered rate, pipelined).")
  in
  let rate =
    Arg.(value & opt float 50.0
         & info [ "rate" ] ~docv:"RPS" ~doc:"Offered request rate for --mode rate.")
  in
  let duration =
    Arg.(value & opt float 5.0
         & info [ "duration-s" ] ~docv:"S" ~doc:"Duration of a --mode rate pass.")
  in
  let rounds =
    Arg.(value & opt int 1
         & info [ "rounds" ] ~docv:"N"
             ~doc:"Times the whole spec grid is replayed per pass.")
  in
  let programs =
    Arg.(value & opt (some string) None
         & info [ "programs" ] ~docv:"P,P,.."
             ~doc:"Programs to request (default: whole registry; with \
                   --quick: fact,base64).")
  in
  let configs =
    Arg.(value & opt (some string) None
         & info [ "configs" ] ~docv:"C,C,.."
             ~doc:"Configurations (default: full Table I/II matrix; with \
                   --quick: a 3-config slice).")
  in
  let seeds =
    Arg.(value & opt (some string) None
         & info [ "seeds" ] ~docv:"S,S,.." ~doc:"Obfuscation seeds (default 1).")
  in
  let json =
    Arg.(value & opt string "BENCH_serve.json"
         & info [ "json" ] ~docv:"FILE" ~doc:"Where --selftest writes its report.")
  in
  let baseline =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Committed BENCH_serve.json to gate the warm speedup \
                   against (95% floor, capped).")
  in
  let selftest =
    Arg.(value & flag
         & info [ "selftest" ]
             ~doc:"Full acceptance flow: cold + warm passes, serial \
                   baseline, byte-identity check, hit-rate check, JSON \
                   report, optional baseline gate.")
  in
  let min_hit_rate =
    Arg.(value & opt float 90.0
         & info [ "min-hit-rate" ] ~docv:"PCT"
             ~doc:"Required warm-pass cache hit rate for --selftest.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Small grid for CI smoke runs.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Verbose server logs.")
  in
  Cmd.v
    (Cmd.info "ropbench_client"
       ~doc:"Replay the rewrite corpus against ropserved and measure it")
    Term.(const main $ socket $ jobs $ conns $ shards $ cache_dir $ max_queue
          $ deadline_ms $ mode $ rate $ duration $ rounds $ programs $ configs
          $ seeds $ json $ baseline $ selftest $ min_hit_rate $ quick
          $ verbose)

let () = exit (Cmd.eval' cmd)
