(* roplint: fixpoint static analysis + translation validation driver.

   Rewrites every built-in program at every Table I / Table II configuration
   and runs the lib/staticanalysis passes over each result: stack
   discipline (native + virtual), translation validation, stealth lint and
   pool-bloat.  Like ropcheck, the matrix is embarrassingly parallel and a
   --jobs run prints byte-identical output to a serial one: workers return
   plain data, the parent renders in matrix order.

     roplint                          # whole corpus x matrix
     roplint --jobs 4                 # same, 4 forked workers
     roplint --program corpus --config rop1.0+gc
     roplint --json report.json       # machine-readable findings report
     roplint --no-transval            # skip the (slower) equivalence pass
     roplint --ropaware               # add attacker-success columns (slow)
     roplint --min-proven 90          # CI gate on the proven-equivalent rate

   Exit status: 1 if any error-severity finding is reported or the
   translation-validation proven rate falls below --min-proven. *)

open Cmdliner
module F = Verify.Finding
module SA = Staticanalysis

(* Table I/II matrix plus the ROPfuscator layer rows — shared with ropcheck,
   the CLI and the daemon via Serve.Oneshot so names resolve identically. *)
let config_matrix = Serve.Oneshot.config_matrix

let targets () =
  [ ("corpus", Minic.Corpus.compile, Minic.Corpus.all_names);
    ("base64",
     (fun () -> Minic.Codegen.compile (Minic.Programs.base64_program ())),
     [ "b64_check"; "b64_encode" ]) ]
  @ List.map
      (fun (name, prog, fns, _) ->
         (name, (fun () -> Minic.Codegen.compile prog), fns))
      Minic.Clbg.all

(* --- per-cell analysis (runs in a worker) ---------------------------------- *)

(* Attacker ground truth: how much of each chain the ROP-aware static
   attacker recovers, to correlate against the stealth score. *)
type attacker = {
  at_func : string;
  at_true_slots : int;            (* gadget slots actually in the layout *)
  at_blocks : int;                (* dissector-recovered block entries *)
  at_unresolved : int;
  at_guesses : int;               (* byte-scan candidate slots *)
}

type cell = {
  c_errs : int;
  c_warns : int;
  c_out : string;                 (* deterministic stdout block *)
  c_proven : int;
  c_unproven : int;
  c_skipped : int;
  c_json : string;                (* cell JSON, sans timings *)
  c_timings : (string * float * float) list;
}

let json_of_report ~tname ~cfg_name (r : SA.Driver.report)
    (attackers : attacker list) =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\"program\":\"%s\",\"config\":\"%s\"" tname cfg_name;
  Printf.bprintf b ",\"findings\":[%s]"
    (String.concat "," (List.map F.to_json r.SA.Driver.r_findings));
  (match r.SA.Driver.r_transval with
   | Some tv ->
     Printf.bprintf b
       ",\"transval\":{\"proven\":%d,\"unproven\":%d,\"skipped\":%d,\
        \"unproven_regions\":[%s]}"
       tv.SA.Transval.tv_proven tv.SA.Transval.tv_unproven
       (List.length tv.SA.Transval.tv_skipped)
       (String.concat ","
          (List.filter_map
             (fun (rg : SA.Transval.region) ->
                match rg.SA.Transval.rg_verdict with
                | SA.Transval.Proven _ -> None
                | SA.Transval.Unproven reason ->
                  Some
                    (Printf.sprintf
                       "{\"func\":\"%s\",\"addr\":\"0x%Lx\",\"reason\":\"%s\"}"
                       (F.json_escape rg.SA.Transval.rg_func)
                       rg.SA.Transval.rg_addr (F.json_escape reason)))
             tv.SA.Transval.tv_regions))
   | None -> ());
  let st = r.SA.Driver.r_stealth in
  Printf.bprintf b
    ",\"stealth\":{\"ret_density\":%.4f,\"popret_per_kib\":%.2f,\"funcs\":[%s]}"
    st.SA.Stealth.sl_ret_density st.SA.Stealth.sl_popret_per_kib
    (String.concat ","
       (List.map
          (fun (fs : SA.Stealth.func_score) ->
             Printf.sprintf
               "{\"func\":\"%s\",\"score\":%.2f,\"slot_frac\":%.4f,\
                \"reuse\":%.4f,\"clustering\":%.4f}"
               (F.json_escape fs.SA.Stealth.fs_name) fs.SA.Stealth.fs_score
               fs.SA.Stealth.fs_slot_frac fs.SA.Stealth.fs_reuse
               fs.SA.Stealth.fs_clustering)
          st.SA.Stealth.sl_funcs));
  let pb = r.SA.Driver.r_poolbloat in
  Printf.bprintf b
    ",\"poolbloat\":{\"gadgets\":%d,\"referenced\":%d,\"pool_bytes\":%d,\
     \"live_bytes\":%d,\"shrinkable_suffix\":%d}"
    pb.SA.Poolbloat.pb_total pb.SA.Poolbloat.pb_referenced
    pb.SA.Poolbloat.pb_pool_bytes pb.SA.Poolbloat.pb_live_bytes
    pb.SA.Poolbloat.pb_shrinkable_suffix;
  if attackers <> [] then
    Printf.bprintf b ",\"ropaware\":[%s]"
      (String.concat ","
         (List.map
            (fun a ->
               Printf.sprintf
                 "{\"func\":\"%s\",\"true_slots\":%d,\"blocks\":%d,\
                  \"unresolved\":%d,\"guesses\":%d}"
                 (F.json_escape a.at_func) a.at_true_slots a.at_blocks
                 a.at_unresolved a.at_guesses)
            attackers));
  Buffer.add_char b '}';
  Buffer.contents b

let lint_one ~verbose ~transval ~ropaware tname cfg_name config build fns =
  let orig = build () in
  let r = Ropc.Rewriter.rewrite orig ~functions:fns ~config in
  let audit = r.Ropc.Rewriter.audit in
  let rewritten = r.Ropc.Rewriter.image in
  let report = SA.Driver.lint ~transval ~orig ~rewritten audit in
  let attackers =
    if not ropaware then []
    else
      List.map
        (fun (f : Ropc.Audit.func) ->
           let true_slots =
             Array.fold_left
               (fun n (_, s) ->
                  match s with
                  | Ropc.Chain.S_gadget _
                  | Ropc.Chain.S_opaque_dispatch _ -> n + 1
                  | _ -> n)
               0 f.Ropc.Audit.f_layout
           in
           let d =
             Ropaware.Ropdissector.analyze rewritten
               ~chain_addr:f.Ropc.Audit.f_chain_base
               ~chain_len:f.Ropc.Audit.f_chain_len
           in
           let g =
             Ropaware.Ropdissector.gadget_guess ~stride:1 rewritten
               ~chain_addr:f.Ropc.Audit.f_chain_base
               ~chain_len:f.Ropc.Audit.f_chain_len
           in
           { at_func = f.Ropc.Audit.f_name;
             at_true_slots = true_slots;
             at_blocks = Hashtbl.length d.Ropaware.Ropdissector.blocks;
             at_unresolved = d.Ropaware.Ropdissector.unresolved;
             at_guesses = g.Ropaware.Ropdissector.candidates })
        audit.Ropc.Audit.a_funcs
  in
  let findings = report.SA.Driver.r_findings in
  let errs, warns, _ = F.counts findings in
  let proven, unproven, skipped =
    match report.SA.Driver.r_transval with
    | Some tv ->
      (tv.SA.Transval.tv_proven, tv.SA.Transval.tv_unproven,
       List.length tv.SA.Transval.tv_skipped)
    | None -> (0, 0, 0)
  in
  let buf = Buffer.create 512 in
  let header = ref false in
  let head () =
    if not !header then begin
      header := true;
      Printf.bprintf buf "== %s / %s ==\n" tname cfg_name
    end
  in
  if errs > 0 || verbose then begin
    head ();
    Buffer.add_string buf (F.render_report ~verbose findings)
  end;
  if verbose then begin
    head ();
    (match report.SA.Driver.r_transval with
     | Some tv ->
       Printf.bprintf buf "  transval: %d proven, %d unproven, %d skipped\n"
         tv.SA.Transval.tv_proven tv.SA.Transval.tv_unproven
         (List.length tv.SA.Transval.tv_skipped);
       let reasons = Hashtbl.create 8 in
       List.iter
         (fun (_, _, why) ->
            Hashtbl.replace reasons why
              (1 + Option.value ~default:0 (Hashtbl.find_opt reasons why)))
         tv.SA.Transval.tv_skipped;
       List.iter
         (fun (why, n) -> Printf.bprintf buf "    skip %4d  %s\n" n why)
         (List.sort
            (fun (a, _) (b, _) -> compare a b)
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) reasons []))
     | None -> ());
    let st = report.SA.Driver.r_stealth in
    (match st.SA.Stealth.sl_funcs with
     | [] -> ()
     | fs ->
       let scores = List.map (fun f -> f.SA.Stealth.fs_score) fs in
       let mean =
         List.fold_left ( +. ) 0.0 scores /. float_of_int (List.length scores)
       in
       Printf.bprintf buf "  stealth: mean %.1f, max %.1f\n" mean
         (List.fold_left max neg_infinity scores));
    let pb = report.SA.Driver.r_poolbloat in
    Printf.bprintf buf "  pool: %d/%d gadgets referenced, %d B shrinkable\n"
      pb.SA.Poolbloat.pb_referenced pb.SA.Poolbloat.pb_total
      pb.SA.Poolbloat.pb_shrinkable_suffix;
    List.iter
      (fun a ->
         Printf.bprintf buf
           "  ropaware %s: %d/%d blocks, %d unresolved, %d guesses\n"
           a.at_func a.at_blocks a.at_true_slots a.at_unresolved a.at_guesses)
      attackers
  end;
  { c_errs = errs;
    c_warns = warns;
    c_out = Buffer.contents buf;
    c_proven = proven;
    c_unproven = unproven;
    c_skipped = skipped;
    c_json = json_of_report ~tname ~cfg_name report attackers;
    c_timings =
      List.map
        (fun (t : SA.Driver.timing) ->
           (t.SA.Driver.t_pass, t.SA.Driver.t_wall_s, t.SA.Driver.t_cpu_s))
        report.SA.Driver.r_timings }

(* --- driver ---------------------------------------------------------------- *)

let main seed program config verbose jobs manifest trace metrics no_transval
    min_proven json_out no_timings ropaware inject inject_hidden =
  Obs.Run.with_reporting ?trace ~metrics @@ fun () ->
  let adjust cfg =
    let cfg =
      if inject then { cfg with Ropc.Config.debug_unbalanced_epilogue = true }
      else cfg
    in
    if inject_hidden then { cfg with Ropc.Config.debug_hidden_payload = true }
    else cfg
  in
  let matrix =
    match config with
    | None -> config_matrix seed
    | Some c ->
      (match List.assoc_opt c (config_matrix seed) with
       | Some cfg -> [ (c, cfg) ]
       | None ->
         Printf.eprintf "unknown config %s; available: %s\n" c
           (String.concat ", " (List.map fst (config_matrix seed)));
         exit 2)
  in
  let targets_l =
    match program with
    | None -> targets ()
    | Some p ->
      (match List.filter (fun (name, _, _) -> name = p) (targets ()) with
       | [] ->
         Printf.eprintf "unknown program %s; available: %s\n" p
           (String.concat ", " (List.map (fun (n, _, _) -> n) (targets ())));
         exit 2
       | ts -> ts)
  in
  let cells =
    List.concat_map
      (fun (name, _, _) -> List.map (fun (cn, _) -> (name, cn)) matrix)
      targets_l
  in
  let f (tname, cfg_name) =
    let _, build, fns = List.find (fun (n, _, _) -> n = tname) (targets ()) in
    let cfg = adjust (List.assoc cfg_name (config_matrix seed)) in
    lint_one ~verbose ~transval:(not no_transval) ~ropaware tname cfg_name cfg
      build fns
  in
  Jobs.Pool.with_manifest manifest (fun m ->
      let pool =
        { Jobs.Pool.default with
          Jobs.Pool.jobs; manifest = Some m;
          progress = Unix.isatty Unix.stderr }
      in
      let results =
        Jobs.Pool.map ~label:"roplint" pool
          ~key:(fun (t, c) ->
              Printf.sprintf
                "roplint/seed=%d/tv=%b/ra=%b/inj=%b/injh=%b/%s/%s" seed
                (not no_transval) ropaware inject inject_hidden t c)
          ~f cells
      in
      let runs = ref 0 and errs = ref 0 and warns = ref 0 in
      let proven = ref 0 and unproven = ref 0 and skipped = ref 0 in
      let cell_jsons = ref [] in
      List.iter2
        (fun (tname, cfg_name) (r : _ Jobs.Pool.result) ->
           incr runs;
           match r.Jobs.Pool.outcome with
           | Jobs.Pool.Done c ->
             print_string c.c_out;
             errs := !errs + c.c_errs;
             warns := !warns + c.c_warns;
             proven := !proven + c.c_proven;
             unproven := !unproven + c.c_unproven;
             skipped := !skipped + c.c_skipped;
             let json =
               if no_timings then c.c_json
               else
                 Printf.sprintf "%s,\"timings\":[%s]}"
                   (String.sub c.c_json 0 (String.length c.c_json - 1))
                   (String.concat ","
                      (List.map
                         (fun (p, w, cpu) ->
                            Printf.sprintf
                              "{\"pass\":\"%s\",\"wall_s\":%.6f,\
                               \"cpu_s\":%.6f}" p w cpu)
                         c.c_timings))
             in
             cell_jsons := json :: !cell_jsons
           | Jobs.Pool.Failed msg ->
             Printf.printf "== %s / %s ==\n  harness failure: %s\n" tname
               cfg_name msg;
             incr errs
           | Jobs.Pool.Timed_out t ->
             Printf.printf "== %s / %s ==\n  timed out after %.0fs\n" tname
               cfg_name t;
             incr errs)
        cells results;
      (match json_out with
       | None -> ()
       | Some path ->
         let oc = open_out path in
         Printf.fprintf oc
           "{\"schema\":\"roplint/v1\",\"seed\":%d,\"cells\":[%s]}\n" seed
           (String.concat "," (List.rev !cell_jsons));
         close_out oc);
      let total = !proven + !unproven in
      let rate =
        if total = 0 then 100.0
        else 100.0 *. float_of_int !proven /. float_of_int total
      in
      if no_transval then
        Printf.printf "roplint: %d runs, %d errors, %d warnings\n" !runs !errs
          !warns
      else
        Printf.printf
          "roplint: %d runs, %d errors, %d warnings, transval %d/%d proven \
           (%.1f%%), %d skipped\n"
          !runs !errs !warns !proven total rate !skipped;
      if !errs > 0 then 1
      else if (not no_transval) && rate < min_proven then begin
        Printf.printf "roplint: proven rate %.1f%% below --min-proven %.1f%%\n"
          rate min_proven;
        1
      end
      else 0)

let cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Obfuscation seed.")
  in
  let program =
    Arg.(value & opt (some string) None
         & info [ "program" ] ~doc:"Lint only this built-in program.")
  in
  let config =
    Arg.(value & opt (some string) None
         & info [ "config" ] ~doc:"Lint only this configuration.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose"; "v" ]
             ~doc:"Print warnings, infos and per-pass summaries too.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Forked worker processes for the program x config matrix.")
  in
  let manifest =
    Arg.(value & opt (some string) None
         & info [ "manifest" ] ~docv:"FILE"
             ~doc:"Write a JSON run manifest to $(docv).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a chrome://tracing JSON profile of the run to \
                   $(docv). Use --jobs 1 for a complete flame view.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Dump the metrics registry to stderr on exit.")
  in
  let no_transval =
    Arg.(value & flag
         & info [ "no-transval" ]
             ~doc:"Skip the translation-validation pass.")
  in
  let min_proven =
    Arg.(value & opt float 90.0
         & info [ "min-proven" ] ~docv:"PCT"
             ~doc:"Fail if fewer than $(docv) percent of directly-lowered \
                   regions are proven equivalent.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the machine-readable findings report to $(docv).")
  in
  let no_timings =
    Arg.(value & flag
         & info [ "no-timings" ]
             ~doc:"Omit per-pass timings from the JSON report (makes it \
                   byte-stable across runs).")
  in
  let ropaware =
    Arg.(value & flag
         & info [ "ropaware" ]
             ~doc:"Also run the ROP-aware static attacker per chain and \
                   report its recovery rate (slow).")
  in
  let inject =
    Arg.(value & flag
         & info [ "inject-unbalanced" ]
             ~doc:"Fault injection: rewrite with the deliberately unbalanced \
                   chain epilogue (the stack-discipline pass must flag it).")
  in
  let inject_hidden =
    Arg.(value & flag
         & info [ "inject-hidden" ]
             ~doc:"Fault injection: corrupt one instruction-hiding payload \
                   with a stray register write (translation validation must \
                   flag it). Only meaningful with +ih configurations.")
  in
  Cmd.v
    (Cmd.info "roplint"
       ~doc:"Fixpoint dataflow lint + translation validation for rewritten \
             images")
    Term.(const main $ seed $ program $ config $ verbose $ jobs $ manifest
          $ trace $ metrics $ no_transval $ min_proven $ json_out
          $ no_timings $ ropaware $ inject $ inject_hidden)

let () = exit (Cmd.eval' cmd)
