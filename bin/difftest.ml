(* Differential fuzzer CLI.

     difftest --cases 500 --seed 42 --config default --jobs 4

   generates [cases] deterministic mini-C programs from [seed], runs each one
   through the four-way oracle stack (reference interpreter, compiled native
   on the emulator, ROP-rewritten, VM-virtualized), diffs return values,
   global-buffer contents and termination class, and shrinks every failing
   case to a minimal reproducer.  The run ends with coverage counters and a
   one-line replay artifact per failure.

   --jobs N fans cases out across N forked workers (lib/jobs); every case is
   a pure function of (seed, index, config) and results are merged in case
   order, so the stdout report is byte-identical to a serial run — replay
   artifacts stay valid whatever the parallelism was.  Timing diagnostics
   (the N slowest cases, the live progress line) go to stderr.

     difftest --seed 42 --replay 137 --config default

   regenerates case 137 of that run bit-for-bit, prints it, and re-runs the
   oracle on it. *)

open Cmdliner
open Diffuzz

let replay_case cfg ~seed ~index ~shrink =
  let case = Gen.case ~seed index in
  print_string (Gen.to_string case);
  let coverage = Coverage.create () in
  match Driver.run_case ~shrink cfg ~seed index ~coverage with
  | None ->
    Printf.printf "case %d: all backends agree\n" index;
    0
  | Some f ->
    let s =
      { Driver.s_config = cfg; s_seed = seed; s_cases = 1;
        s_failures = [ f ]; s_coverage = coverage }
    in
    print_string (Driver.failure_report s f);
    1

let fuzz cfg ~seed ~cases ~shrink ~pool ~slowest_n =
  let summary, times, pool_errors =
    Driver.run_jobs ~pool ~shrink cfg ~seed ~cases ()
  in
  print_string (Driver.report summary);
  List.iter
    (fun (i, m) -> Printf.eprintf "case %d: pool failure: %s\n" i m)
    pool_errors;
  if slowest_n > 0 && times <> [] then begin
    Printf.eprintf "slowest cases (budget-tuning input):\n";
    List.iter
      (fun (ct : Driver.case_time) ->
         Printf.eprintf "  #%-5d %.3fs\n" ct.Driver.ct_index
           ct.Driver.ct_seconds)
      (Driver.slowest slowest_n times);
    flush stderr
  end;
  if summary.Driver.s_failures = [] && pool_errors = [] then 0 else 1

let main cases seed config_name engine replay no_shrink show_fingerprint verify
    jobs slowest_n manifest trace metrics =
  Obs.Run.with_reporting ?trace ~metrics @@ fun () ->
  match Oracle.find_config config_name with
  | None ->
    Printf.eprintf "unknown config %s; available: %s\n" config_name
      (String.concat ", " (Oracle.config_names ()));
    2
  | Some cfg ->
    let cfg = if verify then { cfg with Oracle.verify = true } else cfg in
    let cfg = { cfg with Oracle.engine } in
    let shrink = not no_shrink in
    if show_fingerprint then begin
      (* generation digest only: no oracle run, so two invocations are a
         cheap determinism check *)
      Printf.printf "fingerprint: %s\n" (Driver.fingerprint ~seed ~cases);
      0
    end
    else
      (match replay with
       | Some index -> replay_case cfg ~seed ~index ~shrink
       | None ->
         Jobs.Pool.with_manifest manifest (fun m ->
             let pool =
               { Jobs.Pool.default with
                 Jobs.Pool.jobs; manifest = Some m;
                 progress = Unix.isatty Unix.stderr }
             in
             fuzz cfg ~seed ~cases ~shrink ~pool ~slowest_n))

let cases =
  Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N"
         ~doc:"Number of cases to generate and diff.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S"
         ~doc:"Master seed; every case is a pure function of (seed, index).")

let config =
  Arg.(value & opt string "default" & info [ "config" ] ~docv:"NAME"
         ~doc:"Oracle configuration (which ROP / VM legs to run).")

let engine =
  let engine_conv =
    Arg.conv
      ( (fun s ->
          match Oracle.engine_mode_of_string s with
          | Some m -> Ok m
          | None -> Error (`Msg (Printf.sprintf "unknown engine %S" s))),
        fun ppf m -> Format.pp_print_string ppf (Oracle.engine_mode_name m) )
  in
  Arg.(value & opt engine_conv Oracle.E_fast & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Execution engine for the machine legs: $(b,fast) (block \
               translation), $(b,ref) (per-instruction stepper), or \
               $(b,both) (cross-engine oracle: run every leg under both \
               engines and report any divergence).")

let replay =
  Arg.(value & opt (some int) None & info [ "replay" ] ~docv:"INDEX"
         ~doc:"Regenerate and re-check a single case instead of fuzzing.")

let no_shrink =
  Arg.(value & flag & info [ "no-shrink" ]
         ~doc:"Report failing cases without minimizing them.")

let fingerprint =
  Arg.(value & flag & info [ "fingerprint" ]
         ~doc:"Only print a digest of all generated cases (determinism \
               check); skips the oracle run.")

let verify =
  Arg.(value & flag & info [ "verify" ]
         ~doc:"Also run the static chain verifier on every ROP leg; an \
               error-severity diagnostic counts as a build failure.")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Forked worker processes; the report stays byte-identical \
               to a serial run.")

let slowest =
  Arg.(value & opt int 5 & info [ "slowest" ] ~docv:"K"
         ~doc:"Report the K slowest cases with wall times on stderr \
               (0 disables).")

let manifest =
  Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE"
         ~doc:"Write a JSON run manifest (per-case timing, worker \
               utilization) to $(docv).")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a chrome://tracing JSON profile of the run to $(docv). \
               Spans from forked workers are not captured; use --jobs 1 for \
               a complete flame view.")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Dump the metrics registry to stderr on exit.")

let cmd =
  let doc = "differential fuzzing of the obfuscation pipeline" in
  Cmd.v
    (Cmd.info "difftest" ~doc)
    Term.(const main $ cases $ seed $ config $ engine $ replay $ no_shrink
          $ fingerprint $ verify $ jobs $ slowest $ manifest $ trace_arg
          $ metrics_arg)

let () = exit (Cmd.eval' cmd)
