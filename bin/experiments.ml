(* Regenerate any table or figure of the paper by id.

     experiments table2 [--full]     Table II (DSE secret finding / coverage)
     experiments fig5                Figure 5 (clbg overhead)
     experiments table3              Table III (rewriter statistics)
     experiments table4              Table IV (RandomFuns structures)
     experiments efficacy            §VII-A.1 (SE and TDS vs P1/P3)
     experiments ropaware            §VII-A.2 (ROPMEMU / ROPDissector)
     experiments coverage            §VII-C1 (corpus rewrite coverage)
     experiments casestudy           §VII-C3 (base64 memory models)
     experiments layers              ROPfuscator layer matrix (robustness x overhead)
     experiments all [--full]        everything

   Matrix experiments (table2, fig5, table3, casestudy) fan their cells out
   across a lib/jobs worker pool (--jobs N) with an on-disk result cache
   keyed by cell identity and executable digest: re-running a matrix skips
   every cell already computed by this build.  --no-cache recomputes,
   `rm -rf _jobs_cache` invalidates, --manifest records the run as JSON.
   SIGINT kills and reaps all workers, flushes the partial manifest, and
   exits 130. *)

open Cmdliner

let run_one pool full name =
  match name with
  | "table2" ->
    ignore
      (Harness.Experiments.table2 ~pool
         ~scale:(if full then Harness.Experiments.full_scale
                 else Harness.Experiments.quick_scale)
         ())
  | "fig5" -> ignore (Harness.Experiments.fig5 ~pool ())
  | "table3" -> ignore (Harness.Experiments.table3 ~pool ())
  | "table4" -> Harness.Experiments.table4 ()
  | "efficacy" -> Harness.Experiments.efficacy ()
  | "ropaware" -> Harness.Experiments.ropaware ()
  | "coverage" -> ignore (Harness.Experiments.coverage ())
  | "casestudy" -> Harness.Experiments.casestudy ~pool ()
  | "layers" -> ignore (Harness.Experiments.layers ~pool ())
  | other -> Printf.eprintf "unknown experiment: %s\n" other; exit 2

let all_names =
  [ "table4"; "table3"; "fig5"; "coverage"; "ropaware"; "efficacy";
    "casestudy"; "layers"; "table2" ]

let main name full jobs no_cache cache_dir manifest timeout only trace metrics =
  Obs.Run.with_reporting ?trace ~metrics @@ fun () ->
  let names = if name = "all" then all_names else [ name ] in
  let names =
    match only with
    | None -> names
    | Some sel ->
      let sel = String.split_on_char ',' sel in
      (match List.filter (fun s -> not (List.mem s all_names)) sel with
       | [] -> ()
       | bad ->
         Printf.eprintf "unknown experiment(s) in --only: %s\n"
           (String.concat ", " bad);
         exit 2);
      List.filter (fun n -> List.mem n sel) names
  in
  if names = [] then begin
    Printf.eprintf "--only selected nothing to run\n";
    exit 2
  end;
  Jobs.Pool.with_manifest manifest (fun m ->
      let cache =
        if no_cache then None
        else Some (Jobs.Cache.create ~dir:cache_dir ())
      in
      let pool =
        { Jobs.Pool.jobs; timeout_s = timeout; retries = 1; cache;
          manifest = Some m; progress = Unix.isatty Unix.stderr }
      in
      List.iter (run_one pool full) names;
      (match cache with
       | Some c ->
         Printf.printf "\ncache: %d hits, %d misses (%s)\n"
           c.Jobs.Cache.hits c.Jobs.Cache.misses cache_dir
       | None -> ());
      0)

let name_arg =
  let doc = "Experiment id: table2, fig5, table3, table4, efficacy, ropaware, coverage, casestudy, layers, all." in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let full_arg =
  let doc = "Run the full-scale (slow) version of the experiment." in
  Arg.(value & flag & info [ "full" ] ~doc)

let jobs_arg =
  let doc = "Worker processes for matrix experiments (1 = in-process)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc = "Recompute every cell, ignoring the on-disk result cache." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_dir_arg =
  let doc = "Result-cache directory." in
  Arg.(value & opt string Jobs.Cache.default_dir
       & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let manifest_arg =
  let doc = "Write a JSON run manifest (per-cell timing, cache hits, worker \
             utilization) to $(docv)." in
  Arg.(value
       & opt (some string) (Some "_jobs_cache/experiments-manifest.json")
       & info [ "manifest" ] ~docv:"FILE" ~doc)

let timeout_arg =
  let doc = "Per-cell wall-clock timeout in seconds (forked mode only)." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"S" ~doc)

let only_arg =
  let doc = "Comma-separated experiment ids to keep; everything else is \
             skipped (e.g. --only table2,table3)." in
  Arg.(value & opt (some string) None & info [ "only" ] ~docv:"IDS" ~doc)

let trace_arg =
  let doc = "Write a chrome://tracing JSON profile of the run to $(docv). \
             Spans from forked workers are not captured; run with --jobs 1 \
             for a complete flame view (metrics merge either way)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Dump the metrics registry to stderr on exit." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let cmd =
  let doc = "Regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(const main $ name_arg $ full_arg $ jobs_arg $ no_cache_arg
          $ cache_dir_arg $ manifest_arg $ timeout_arg $ only_arg $ trace_arg
          $ metrics_arg)

let () = exit (Cmd.eval' cmd)
