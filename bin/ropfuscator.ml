(* Command-line rewriter demo: obfuscates a built-in program and runs the
   original and the rewritten binaries side by side, reporting chain
   statistics.

     ropfuscator --program fact --k 0.25 --p2 --confusion --arg 10

   The CLI is a thin client of [Serve.Oneshot]: the program registry, the
   config naming, and the rewrite entry are the same code path the daemon
   (bin/ropserved) and the tests use, so "what the CLI would have produced"
   is by construction what the server produces. *)

open Cmdliner

let main prog_name k p2 confusion opaque hiding pf seed arg verify trace
    metrics =
  Obs.Run.with_reporting ?trace ~metrics @@ fun () ->
  match Serve.Oneshot.find prog_name with
  | None ->
    Printf.eprintf "unknown program %s; available: %s\n" prog_name
      (String.concat ", " (Serve.Oneshot.names ()));
    2
  | Some e ->
    (match e.Serve.Oneshot.e_run with
     | None ->
       Printf.eprintf
         "program %s has no entry function to execute (try ropcheck for \
          static verification)\n"
         prog_name;
       2
     | Some (entry, _) ->
       let img = e.Serve.Oneshot.e_build () in
       let native =
         Runner.call_exn ~fuel:2_000_000_000 img ~func:entry ~args:[ arg ]
       in
       Printf.printf "native:     result=%Ld  (%d instructions)\n"
         native.Runner.rax native.Runner.steps;
       let cfg_name =
         if k < 0.0 then "plain"
         else
           Serve.Oneshot.config_name ~p2 ~confusion ~opaque ~hiding ~pf
             ~plain:false k
       in
       (match Serve.Oneshot.config_of_name ~seed cfg_name with
        | Error m -> Printf.eprintf "bad configuration: %s\n" m; 2
        | Ok config ->
          Printf.printf "config:     %s\n" (Ropc.Config.describe config);
          let spec =
            { Serve.Oneshot.sp_prog = prog_name; sp_config = cfg_name;
              sp_seed = seed }
          in
          (match Serve.Oneshot.rewrite_full (Serve.Oneshot.warm ()) spec with
           | Error m -> Printf.eprintf "rewrite failed: %s\n" m; 2
           | Ok r ->
             List.iter
               (fun (f, res) ->
                  match res with
                  | Ok st ->
                    Printf.printf
                      "  %-12s -> chain at 0x%Lx, %d bytes, %d blocks, %d points\n"
                      f st.Ropc.Rewriter.fs_chain_addr
                      st.Ropc.Rewriter.fs_chain_bytes st.Ropc.Rewriter.fs_blocks
                      st.Ropc.Rewriter.fs_points
                  | Error e ->
                    Printf.printf "  %-12s -> FAILED: %s\n" f
                      (Ropc.Rewriter.failure_to_string e))
               r.Ropc.Rewriter.funcs;
             Printf.printf "gadgets:    %d uses of %d unique gadgets\n"
               r.Ropc.Rewriter.total_gadget_uses r.Ropc.Rewriter.unique_gadgets;
             let verify_errs =
               if not verify then 0
               else begin
                 let diags = Verify.Check.check r in
                 let errs, warns, _ = Verify.Diag.counts diags in
                 List.iter
                   (fun d -> Printf.printf "  %s\n" (Verify.Diag.render d))
                   diags;
                 Printf.printf "verify:     %d errors, %d warnings\n" errs warns;
                 errs
               end
             in
             if verify_errs > 0 then 1
             else begin
               let rop =
                 Runner.call_exn ~fuel:2_000_000_000 r.Ropc.Rewriter.image
                   ~func:entry ~args:[ arg ]
               in
               Printf.printf
                 "obfuscated: result=%Ld  (%d instructions, %.1fx)\n"
                 rop.Runner.rax rop.Runner.steps
                 (float_of_int rop.Runner.steps
                  /. float_of_int (max native.Runner.steps 1));
               if native.Runner.rax <> rop.Runner.rax then begin
                 Printf.eprintf "MISMATCH!\n";
                 1
               end
               else 0
             end)))

let cmd =
  let prog =
    Arg.(value & opt string "fact" & info [ "program" ] ~doc:"Built-in program to obfuscate.")
  in
  let k = Arg.(value & opt float 0.25 & info [ "k" ] ~doc:"P3 fraction (Table I).") in
  let p2 = Arg.(value & flag & info [ "p2" ] ~doc:"Enable predicate P2.") in
  let confusion = Arg.(value & flag & info [ "confusion" ] ~doc:"Enable gadget confusion.") in
  let opaque =
    Arg.(value & flag
         & info [ "opaque" ]
             ~doc:"Opaque-constant layer: store chain slots as residuals \
                   recovered at runtime from the P1 array.")
  in
  let hiding =
    Arg.(value & flag
         & info [ "hiding" ]
             ~doc:"Instruction-hiding layer: smuggle real roplets into P3 \
                   predicate bodies.")
  in
  let pf =
    Arg.(value & flag
         & info [ "per-function" ]
             ~doc:"Per-function layer: full config on sensitive functions, \
                   bare P1 elsewhere.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Obfuscation seed.") in
  let arg = Arg.(value & opt int64 8L & info [ "arg" ] ~doc:"Argument for the entry function.") in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Run the static chain verifier on the rewritten image.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a chrome://tracing JSON profile of the run to $(docv).")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ] ~doc:"Dump the metrics registry to stderr on exit.")
  in
  Cmd.v
    (Cmd.info "ropfuscator" ~doc:"Rewrite a program's functions into ROP chains")
    Term.(const main $ prog $ k $ p2 $ confusion $ opaque $ hiding $ pf $ seed
          $ arg $ verify $ trace $ metrics)

let () = exit (Cmd.eval' cmd)
