(* Command-line rewriter demo: obfuscates a chosen built-in program and runs
   the original and the rewritten binaries side by side, reporting chain
   statistics.

     ropfuscator --program fact --k 0.25 --p2 --confusion --arg 10 *)

open Cmdliner

let builtin_programs () =
  let open Minic.Ast in
  let fact =
    program
      [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "main"
          [ set "r" (c 1);
            For (set "i" (c 1), Bin (Les, v "i", v "n"),
                 set "i" (Bin (Add, v "i", c 1)),
                 [ set "r" (Bin (Mul, v "r", v "i")) ]);
            Return (v "r") ] ]
  in
  [ ("fact", (fact, [ "main" ], "main"));
    ("base64",
     (Minic.Programs.base64_program (), [ "b64_check"; "b64_encode" ], "b64_check")) ]
  @ List.map
      (fun (name, prog, fns, _) -> (name, (prog, fns, "bench")))
      Minic.Clbg.all

let main prog_name k p2 confusion seed arg verify trace metrics =
  Obs.Run.with_reporting ?trace ~metrics @@ fun () ->
  match List.assoc_opt prog_name (builtin_programs ()) with
  | None ->
    Printf.eprintf "unknown program %s; available: %s\n" prog_name
      (String.concat ", " (List.map fst (builtin_programs ())));
    2
  | Some (prog, funcs, entry) ->
    let img = Minic.Codegen.compile prog in
    let native = Runner.call_exn ~fuel:2_000_000_000 img ~func:entry ~args:[ arg ] in
    Printf.printf "native:     result=%Ld  (%d instructions)\n" native.Runner.rax
      native.Runner.steps;
    let config =
      { (Ropc.Config.rop_k ~seed ~p2 ~confusion k) with
        Ropc.Config.p1 = (if k >= 0.0 then Some Ropc.Config.default_p1 else None) }
    in
    Printf.printf "config:     %s\n" (Ropc.Config.describe config);
    let r = Ropc.Rewriter.rewrite img ~functions:funcs ~config in
    List.iter
      (fun (f, res) ->
         match res with
         | Ok st ->
           Printf.printf "  %-12s -> chain at 0x%Lx, %d bytes, %d blocks, %d points\n"
             f st.Ropc.Rewriter.fs_chain_addr st.Ropc.Rewriter.fs_chain_bytes
             st.Ropc.Rewriter.fs_blocks st.Ropc.Rewriter.fs_points
         | Error e ->
           Printf.printf "  %-12s -> FAILED: %s\n" f
             (Ropc.Rewriter.failure_to_string e))
      r.Ropc.Rewriter.funcs;
    Printf.printf "gadgets:    %d uses of %d unique gadgets\n"
      r.Ropc.Rewriter.total_gadget_uses r.Ropc.Rewriter.unique_gadgets;
    let verify_errs =
      if not verify then 0
      else begin
        let diags = Verify.Check.check r in
        let errs, warns, _ = Verify.Diag.counts diags in
        List.iter (fun d -> Printf.printf "  %s\n" (Verify.Diag.render d)) diags;
        Printf.printf "verify:     %d errors, %d warnings\n" errs warns;
        errs
      end
    in
    if verify_errs > 0 then 1
    else begin
      let rop = Runner.call_exn ~fuel:2_000_000_000 r.Ropc.Rewriter.image ~func:entry ~args:[ arg ] in
      Printf.printf "obfuscated: result=%Ld  (%d instructions, %.1fx)\n" rop.Runner.rax
        rop.Runner.steps
        (float_of_int rop.Runner.steps /. float_of_int (max native.Runner.steps 1));
      if native.Runner.rax <> rop.Runner.rax then begin
        Printf.eprintf "MISMATCH!\n";
        1
      end
      else 0
    end

let cmd =
  let prog =
    Arg.(value & opt string "fact" & info [ "program" ] ~doc:"Built-in program to obfuscate.")
  in
  let k = Arg.(value & opt float 0.25 & info [ "k" ] ~doc:"P3 fraction (Table I).") in
  let p2 = Arg.(value & flag & info [ "p2" ] ~doc:"Enable predicate P2.") in
  let confusion = Arg.(value & flag & info [ "confusion" ] ~doc:"Enable gadget confusion.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Obfuscation seed.") in
  let arg = Arg.(value & opt int64 8L & info [ "arg" ] ~doc:"Argument for the entry function.") in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Run the static chain verifier on the rewritten image.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a chrome://tracing JSON profile of the run to $(docv).")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ] ~doc:"Dump the metrics registry to stderr on exit.")
  in
  Cmd.v
    (Cmd.info "ropfuscator" ~doc:"Rewrite a program's functions into ROP chains")
    Term.(const main $ prog $ k $ p2 $ confusion $ seed $ arg $ verify $ trace
          $ metrics)

let () = exit (Cmd.eval' cmd)
