(* Obfuscation-as-a-service daemon.

     ropserved --socket /tmp/rop.sock --jobs 4 --shards 8 &
     ropbench_client --socket /tmp/rop.sock --programs fact --configs rop0.25

   Serves rewrite requests over a Unix-domain socket (or stdin/stdout with
   --stdio, for tests and inetd-style supervision) with a resident worker
   pool, a sharded content-addressed result cache, bounded-queue admission
   control and per-request deadlines.  SIGINT/SIGTERM drain: accepted work
   finishes and flushes before exit.  The [stats] protocol verb reports
   throughput, hit rate, queue depth and p50/p99 latency. *)

open Cmdliner

let main socket stdio jobs shards cache_dir cache_max_bytes max_queue
    deadline_ms timeout_s verbose trace metrics =
  Obs.Run.with_reporting ?trace ~metrics @@ fun () ->
  let opts =
    { Serve.Server.jobs;
      shards;
      cache_dir;
      cache_max_bytes =
        (match cache_max_bytes with Some b when b > 0 -> Some b | _ -> None);
      max_queue;
      deadline_ms = (if deadline_ms > 0.0 then Some deadline_ms else None);
      timeout_s = (if timeout_s > 0.0 then Some timeout_s else None);
      verbose }
  in
  if stdio then
    Serve.Server.run ~opts (Serve.Server.L_pair (Unix.stdin, Unix.stdout))
  else Serve.Server.run ~opts (Serve.Server.L_socket socket)

let cmd =
  let socket =
    Arg.(value & opt string "ropserved.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket path to listen on.")
  in
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Serve a single connection on stdin/stdout instead of a \
                   socket (tests, inetd-style supervision).")
  in
  let jobs =
    Arg.(value & opt int 0
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Resident rewrite workers.  0 computes inline on the \
                   event loop (serial, deterministic).")
  in
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"N" ~doc:"Rewrite-cache shard count.")
  in
  let cache_dir =
    Arg.(value & opt string "_serve_cache"
         & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Rewrite-cache directory.")
  in
  let cache_max_bytes =
    Arg.(value & opt (some int) None
         & info [ "cache-max-bytes" ] ~docv:"BYTES"
             ~doc:"Prune the cache to at most $(docv) bytes (LRU by mtime), \
                   checked periodically and at exit.  Absent or 0: unbounded.")
  in
  let max_queue =
    Arg.(value & opt int 64
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Admission-control queue bound: requests beyond $(docv) \
                   pending rewrites are shed with a 429-style response.")
  in
  let deadline_ms =
    Arg.(value & opt float 0.0
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-request queue-wait deadline: a request not dispatched \
                   within $(docv) ms is answered 504.  0: no deadline.")
  in
  let timeout_s =
    Arg.(value & opt float 300.0
         & info [ "timeout-s" ] ~docv:"S"
             ~doc:"Per-rewrite wall-clock budget in a worker.  0: unbounded.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log to stderr.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a chrome://tracing JSON profile of the run to $(docv).")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ] ~doc:"Dump the metrics registry to stderr on exit.")
  in
  Cmd.v
    (Cmd.info "ropserved" ~doc:"Serve ROP-rewrite requests from a resident daemon")
    Term.(const main $ socket $ stdio $ jobs $ shards $ cache_dir
          $ cache_max_bytes $ max_queue $ deadline_ms $ timeout_s $ verbose
          $ trace $ metrics)

let () = exit (Cmd.eval' cmd)
