(* Benchmark harness: one Bechamel micro-benchmark per table/figure of the
   paper (measuring the core operation each experiment exercises), followed
   by the quick-scale regeneration of every table and figure.

     dune exec bench/main.exe *)

open Bechamel
open Toolkit

(* --- one Test.make per table/figure -------------------------------------- *)

(* Table II: one DSE attack on a small protected target *)
let bench_table2 =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:3 ~seed:1 ~input_size:1
         ~control_index:0 ())
  in
  let img = Minic.Codegen.compile t.Minic.Randomfuns.prog in
  let rop =
    (Ropc.Rewriter.rewrite img ~functions:[ "target" ]
       ~config:(Ropc.Config.rop_k 0.25)).Ropc.Rewriter.image
  in
  let budget =
    { Symex.Engine.default_budget with wall_seconds = 0.4; solver_evals = 4000 }
  in
  Test.make ~name:"table2: DSE attack on ROP_0.25 target"
    (Staged.stage (fun () ->
         let tgt = { Symex.Engine.img = rop; func = "target"; n_inputs = 1 } in
         ignore (Symex.Engine.dse ~goal:Symex.Engine.G_secret ~budget tgt)))

(* Figure 5: chain execution overhead: run one ROP-encoded clbg benchmark *)
let bench_fig5 =
  let _, prog, fns, _ = List.nth Minic.Clbg.all 1 (* fannkuch *) in
  let img = Minic.Codegen.compile prog in
  let rop =
    (Ropc.Rewriter.rewrite img ~functions:fns
       ~config:(Ropc.Config.rop_k 0.05)).Ropc.Rewriter.image
  in
  Test.make ~name:"fig5: ROP_0.05 fannkuch execution"
    (Staged.stage (fun () ->
         ignore (Runner.call_exn ~fuel:100_000_000 rop ~func:"bench" ~args:[ 6L ])))

(* Table III: a full rewrite of a clbg benchmark (chain crafting throughput) *)
let bench_table3 =
  let _, prog, fns, _ = List.nth Minic.Clbg.all 2 (* fasta *) in
  Test.make ~name:"table3: rewrite fasta at k=1.0"
    (Staged.stage (fun () ->
         let img = Minic.Codegen.compile prog in
         ignore
           (Ropc.Rewriter.rewrite img ~functions:fns
              ~config:(Ropc.Config.rop_k 1.0))))

(* Table IV: RandomFuns generation *)
let bench_table4 =
  Test.make ~name:"table4: RandomFuns generation"
    (Staged.stage (fun () ->
         ignore
           (Minic.Randomfuns.generate
              (Minic.Randomfuns.default_params ~seed:3 ~input_size:4
                 ~control_index:4 ()))))

(* §VII-A.1: a TDS trace simplification *)
let bench_efficacy =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:3 ~seed:1 ~input_size:1
         ~control_index:0 ())
  in
  let img = Minic.Codegen.compile t.Minic.Randomfuns.prog in
  let rop =
    (Ropc.Rewriter.rewrite img ~functions:[ "target" ]
       ~config:(Ropc.Config.rop_k 0.5)).Ropc.Rewriter.image
  in
  Test.make ~name:"efficacy: TDS on a P3 chain"
    (Staged.stage (fun () ->
         ignore (Taint.Tds.run ~fuel:200_000 rop ~func:"target" ~n_inputs:1 ~input:[| 9 |])))

(* §VII-A.2: a ROPDissector chain analysis *)
let bench_ropaware =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:3 ~seed:1 ~input_size:1
         ~control_index:5 ())
  in
  let img = Minic.Codegen.compile t.Minic.Randomfuns.prog in
  let r =
    Ropc.Rewriter.rewrite img ~functions:[ "target" ]
      ~config:(Ropc.Config.plain ())
  in
  let addr, len =
    match List.assoc "target" r.Ropc.Rewriter.funcs with
    | Ok st -> (st.Ropc.Rewriter.fs_chain_addr, st.Ropc.Rewriter.fs_chain_bytes)
    | Error _ -> assert false
  in
  let img = r.Ropc.Rewriter.image in
  Test.make ~name:"ropaware: ROPDissector chain walk"
    (Staged.stage (fun () ->
         ignore (Ropaware.Ropdissector.analyze img ~chain_addr:addr ~chain_len:len)))

(* §VII-C1: corpus rewrite coverage *)
let bench_coverage =
  Test.make ~name:"coverage: rewrite the corpus"
    (Staged.stage (fun () ->
         let img = Minic.Corpus.compile () in
         ignore
           (Ropc.Rewriter.rewrite img ~functions:Minic.Corpus.all_names
              ~config:(Ropc.Config.plain ()))))

(* §VII-C3: the base64 chain *)
let bench_casestudy =
  let prog = Minic.Programs.base64_program () in
  let img = Minic.Codegen.compile prog in
  let rop =
    (Ropc.Rewriter.rewrite img ~functions:[ "b64_check"; "b64_encode" ]
       ~config:(Ropc.Config.rop_k 0.25)).Ropc.Rewriter.image
  in
  Test.make ~name:"casestudy: ROP_0.25 base64 check"
    (Staged.stage (fun () ->
         ignore
           (Runner.call_exn ~fuel:100_000_000 rop ~func:"b64_check"
              ~args:[ Minic.Programs.secret_arg ])))

(* lib/jobs: fixed cost of the pool itself — fork, dispatch, marshal both
   ways, reap — measured on trivial tasks so the scheduler overhead is the
   whole signal.  Worth watching: every experiment cell pays this once. *)
let bench_jobs =
  Test.make ~name:"jobs: 8-task round-trip on a 2-worker pool"
    (Staged.stage (fun () ->
         ignore
           (Jobs.Pool.map
              { Jobs.Pool.default with Jobs.Pool.jobs = 2 }
              ~key:string_of_int
              ~f:(fun i -> i * i)
              (List.init 8 Fun.id))))

let tests =
  [ bench_table2; bench_fig5; bench_table3; bench_table4; bench_efficacy;
    bench_ropaware; bench_coverage; bench_casestudy; bench_jobs ]

let run_benchmarks () =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "== Bechamel micro-benchmarks (one per table/figure) ==\n%!";
  List.iter
    (fun test ->
       let results = Benchmark.all cfg instances test in
       let results = Analyze.all ols Instance.monotonic_clock results in
       Hashtbl.iter
         (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] ->
              Printf.printf "%-45s %12.0f ns/run\n%!" name est
            | Some _ | None -> Printf.printf "%-45s (no estimate)\n%!" name)
         results)
    tests

let () =
  run_benchmarks ();
  Printf.printf "\n== Quick-scale regeneration of every table and figure ==\n%!";
  Harness.Experiments.table4 ();
  ignore (Harness.Experiments.table3 ());
  ignore (Harness.Experiments.fig5 ());
  ignore (Harness.Experiments.coverage ());
  Harness.Experiments.ropaware ();
  Harness.Experiments.efficacy ~budget_s:4.0 ();
  Harness.Experiments.casestudy ~budget_s:6.0 ();
  (* the big matrix goes through the worker pool, as bin/experiments does *)
  ignore
    (Harness.Experiments.table2
       ~pool:{ Jobs.Pool.default with Jobs.Pool.jobs = 2 }
       ~scale:Harness.Experiments.quick_scale ())
