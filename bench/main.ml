(* Benchmark harness: one Bechamel micro-benchmark per table/figure of the
   paper (measuring the core operation each experiment exercises), followed
   by the quick-scale regeneration of every table and figure.

     dune exec bench/main.exe *)

open Bechamel
open Toolkit

(* --- one Test.make per table/figure -------------------------------------- *)

(* Table II: one DSE attack on a small protected target *)
let bench_table2 =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:3 ~seed:1 ~input_size:1
         ~control_index:0 ())
  in
  let img = Minic.Codegen.compile t.Minic.Randomfuns.prog in
  let rop =
    (Ropc.Rewriter.rewrite img ~functions:[ "target" ]
       ~config:(Ropc.Config.rop_k 0.25)).Ropc.Rewriter.image
  in
  let budget =
    { Symex.Engine.default_budget with wall_seconds = 0.4; solver_evals = 4000 }
  in
  Test.make ~name:"table2: DSE attack on ROP_0.25 target"
    (Staged.stage (fun () ->
         let tgt = { Symex.Engine.img = rop; func = "target"; n_inputs = 1 } in
         ignore (Symex.Engine.dse ~goal:Symex.Engine.G_secret ~budget tgt)))

(* Figure 5: chain execution overhead: run one ROP-encoded clbg benchmark *)
let bench_fig5 =
  let _, prog, fns, _ = List.nth Minic.Clbg.all 1 (* fannkuch *) in
  let img = Minic.Codegen.compile prog in
  let rop =
    (Ropc.Rewriter.rewrite img ~functions:fns
       ~config:(Ropc.Config.rop_k 0.05)).Ropc.Rewriter.image
  in
  Test.make ~name:"fig5: ROP_0.05 fannkuch execution"
    (Staged.stage (fun () ->
         ignore (Runner.call_exn ~fuel:100_000_000 rop ~func:"bench" ~args:[ 6L ])))

(* Table III: a full rewrite of a clbg benchmark (chain crafting throughput) *)
let bench_table3 =
  let _, prog, fns, _ = List.nth Minic.Clbg.all 2 (* fasta *) in
  Test.make ~name:"table3: rewrite fasta at k=1.0"
    (Staged.stage (fun () ->
         let img = Minic.Codegen.compile prog in
         ignore
           (Ropc.Rewriter.rewrite img ~functions:fns
              ~config:(Ropc.Config.rop_k 1.0))))

(* Table IV: RandomFuns generation *)
let bench_table4 =
  Test.make ~name:"table4: RandomFuns generation"
    (Staged.stage (fun () ->
         ignore
           (Minic.Randomfuns.generate
              (Minic.Randomfuns.default_params ~seed:3 ~input_size:4
                 ~control_index:4 ()))))

(* §VII-A.1: a TDS trace simplification *)
let bench_efficacy =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:3 ~seed:1 ~input_size:1
         ~control_index:0 ())
  in
  let img = Minic.Codegen.compile t.Minic.Randomfuns.prog in
  let rop =
    (Ropc.Rewriter.rewrite img ~functions:[ "target" ]
       ~config:(Ropc.Config.rop_k 0.5)).Ropc.Rewriter.image
  in
  Test.make ~name:"efficacy: TDS on a P3 chain"
    (Staged.stage (fun () ->
         ignore (Taint.Tds.run ~fuel:200_000 rop ~func:"target" ~n_inputs:1 ~input:[| 9 |])))

(* §VII-A.2: a ROPDissector chain analysis *)
let bench_ropaware =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:3 ~seed:1 ~input_size:1
         ~control_index:5 ())
  in
  let img = Minic.Codegen.compile t.Minic.Randomfuns.prog in
  let r =
    Ropc.Rewriter.rewrite img ~functions:[ "target" ]
      ~config:(Ropc.Config.plain ())
  in
  let addr, len =
    match List.assoc "target" r.Ropc.Rewriter.funcs with
    | Ok st -> (st.Ropc.Rewriter.fs_chain_addr, st.Ropc.Rewriter.fs_chain_bytes)
    | Error _ -> assert false
  in
  let img = r.Ropc.Rewriter.image in
  Test.make ~name:"ropaware: ROPDissector chain walk"
    (Staged.stage (fun () ->
         ignore (Ropaware.Ropdissector.analyze img ~chain_addr:addr ~chain_len:len)))

(* §VII-C1: corpus rewrite coverage *)
let bench_coverage =
  Test.make ~name:"coverage: rewrite the corpus"
    (Staged.stage (fun () ->
         let img = Minic.Corpus.compile () in
         ignore
           (Ropc.Rewriter.rewrite img ~functions:Minic.Corpus.all_names
              ~config:(Ropc.Config.plain ()))))

(* §VII-C3: the base64 chain *)
let bench_casestudy =
  let prog = Minic.Programs.base64_program () in
  let img = Minic.Codegen.compile prog in
  let rop =
    (Ropc.Rewriter.rewrite img ~functions:[ "b64_check"; "b64_encode" ]
       ~config:(Ropc.Config.rop_k 0.25)).Ropc.Rewriter.image
  in
  Test.make ~name:"casestudy: ROP_0.25 base64 check"
    (Staged.stage (fun () ->
         ignore
           (Runner.call_exn ~fuel:100_000_000 rop ~func:"b64_check"
              ~args:[ Minic.Programs.secret_arg ])))

(* lib/jobs: fixed cost of the pool itself — fork, dispatch, marshal both
   ways, reap — measured on trivial tasks so the scheduler overhead is the
   whole signal.  Worth watching: every experiment cell pays this once. *)
let bench_jobs =
  Test.make ~name:"jobs: 8-task round-trip on a 2-worker pool"
    (Staged.stage (fun () ->
         ignore
           (Jobs.Pool.map
              { Jobs.Pool.default with Jobs.Pool.jobs = 2 }
              ~key:string_of_int
              ~f:(fun i -> i * i)
              (List.init 8 Fun.id))))

let tests =
  [ bench_table2; bench_fig5; bench_table3; bench_table4; bench_efficacy;
    bench_ropaware; bench_coverage; bench_casestudy; bench_jobs ]

(* Returns [(name, ns_per_run option)] so --json can embed the estimates. *)
let run_benchmarks ?(quota = 1.5) ?(limit = 200) () =
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "== Bechamel micro-benchmarks (one per table/figure) ==\n%!";
  let out = ref [] in
  List.iter
    (fun test ->
       let results = Benchmark.all cfg instances test in
       let results = Analyze.all ols Instance.monotonic_clock results in
       Hashtbl.iter
         (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] ->
              Printf.printf "%-45s %12.0f ns/run\n%!" name est;
              out := (name, Some est) :: !out
            | Some _ | None ->
              Printf.printf "%-45s (no estimate)\n%!" name;
              out := (name, None) :: !out)
         results)
    tests;
  List.rev !out

(* --- emulator perf-trajectory benchmark (--json) -------------------------- *)

(* Measures the three generations of the execution engine on the Fig. 5
   workloads: the seed per-instruction stepper as it existed before the
   fast-engine work (reproduced bench-only in [Seed_ref]: polymorphic-hash
   int64 Hashtbl pages, per-byte memory loops), the current in-tree
   reference stepper, and the block-translating fast engine.  Engines are
   interleaved round-robin in one process and the best round per engine is
   reported, so machine noise cannot manufacture a speedup. *)

type workload = {
  w_name : string;
  w_img : Image.t;
  w_func : string;
  w_args : int64 list;
  w_fuel : int;
}

let make_workloads () =
  let fannkuch =
    let _, prog, fns, _ = List.nth Minic.Clbg.all 1 in
    let img = Minic.Codegen.compile prog in
    let rop =
      (Ropc.Rewriter.rewrite img ~functions:fns
         ~config:(Ropc.Config.rop_k 0.05)).Ropc.Rewriter.image
    in
    { w_name = "fannkuch_rop_0.05"; w_img = rop; w_func = "bench";
      w_args = [ 6L ]; w_fuel = 100_000_000 }
  in
  let base64 =
    let img = Minic.Codegen.compile (Minic.Programs.base64_program ()) in
    let rop =
      (Ropc.Rewriter.rewrite img ~functions:[ "b64_check"; "b64_encode" ]
         ~config:(Ropc.Config.rop_k 0.25)).Ropc.Rewriter.image
    in
    { w_name = "base64_rop_0.25"; w_img = rop; w_func = "b64_check";
      w_args = [ Minic.Programs.secret_arg ]; w_fuel = 100_000_000 }
  in
  [ fannkuch; base64 ]

(* One observation: termination class + rax + retired steps + wall seconds
   of the run itself (setup and memory cloning stay untimed). *)
type obs = { o_status : string; o_rax : int64; o_steps : int; o_dt : float }

let run_machine_engine eng w mem0 =
  let t =
    Runner.setup ~engine:eng ~mem:(Machine.Memory.copy mem0) w.w_img
      ~func:w.w_func ~args:w.w_args
  in
  let t0 = Unix.gettimeofday () in
  let status = Machine.Exec.run ~fuel:w.w_fuel t in
  let dt = Unix.gettimeofday () -. t0 in
  let cpu = t.Machine.Exec.cpu in
  { o_status =
      (match status with
       | Machine.Exec.Halted -> "halted"
       | Machine.Exec.Fault _ -> "fault"
       | Machine.Exec.Out_of_fuel -> "out-of-fuel");
    o_rax = Machine.Cpu.get cpu X86.Isa.RAX;
    o_steps = cpu.Machine.Cpu.steps;
    o_dt = dt }

let run_seed_engine w mem0 =
  let t = Seed_ref.setup w.w_img ~mem:mem0 ~func:w.w_func ~args:w.w_args in
  let t0 = Unix.gettimeofday () in
  let status = Seed_ref.run ~fuel:w.w_fuel t in
  let dt = Unix.gettimeofday () -. t0 in
  let c = t.Seed_ref.cpu in
  { o_status =
      (match status with
       | Seed_ref.Halted -> "halted"
       | Seed_ref.Fault _ -> "fault"
       | Seed_ref.Out_of_fuel -> "out-of-fuel");
    o_rax = Seed_ref.rget c X86.Isa.RAX;
    o_steps = c.Seed_ref.steps;
    o_dt = dt }

type engine_result = { name : string; ns_per_step : float; steps : int }

type workload_result = {
  wr_name : string;
  wr_steps : int;
  wr_engines : engine_result list;   (* seed, ref, fast *)
  wr_equal : (unit, string) result;  (* cross-engine observable equality *)
}

let ns_per_step (o : obs) = o.o_dt /. float_of_int (max 1 o.o_steps) *. 1e9

let bench_workload ~rounds w : workload_result =
  let mem0 = Image.load w.w_img in
  let engines =
    [ ("seed", fun () -> run_seed_engine w mem0);
      ("ref", fun () -> run_machine_engine Machine.Exec.Ref w mem0);
      ("fast", fun () -> run_machine_engine Machine.Exec.Fast w mem0) ]
  in
  (* warm-up + equality check in one pass *)
  let first = List.map (fun (n, f) -> (n, f ())) engines in
  let _, fast0 = List.nth first 2 in
  let wr_equal =
    List.fold_left
      (fun acc (n, o) ->
         match acc with
         | Error _ -> acc
         | Ok () ->
           if o.o_status <> fast0.o_status then
             Error (Printf.sprintf "%s status %s vs fast %s" n o.o_status
                      fast0.o_status)
           else if o.o_rax <> fast0.o_rax then
             Error (Printf.sprintf "%s rax %Ld vs fast %Ld" n o.o_rax
                      fast0.o_rax)
           else if o.o_steps <> fast0.o_steps then
             Error (Printf.sprintf "%s steps %d vs fast %d" n o.o_steps
                      fast0.o_steps)
           else acc)
      (Ok ()) first
  in
  let best = Array.make (List.length engines) infinity in
  for _ = 1 to rounds do
    List.iteri
      (fun i (_, f) ->
         let ns = ns_per_step (f ()) in
         if ns < best.(i) then best.(i) <- ns)
      engines
  done;
  { wr_name = w.w_name;
    wr_steps = fast0.o_steps;
    wr_engines =
      List.mapi
        (fun i (n, _) ->
           { name = n; ns_per_step = best.(i); steps = fast0.o_steps })
        engines;
    wr_equal }

(* Hand-rolled JSON, same idiom as lib/jobs/manifest.ml. *)
let json_of_results ~quick (wrs : workload_result list)
    (micro : (string * float option) list) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let jstr s =
    let e = Buffer.create (String.length s + 2) in
    String.iter
      (function
        | '"' -> Buffer.add_string e "\\\""
        | '\\' -> Buffer.add_string e "\\\\"
        | '\n' -> Buffer.add_string e "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string e (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char e c)
      s;
    Buffer.contents e
  in
  let speedup wr a bname =
    let find n = List.find (fun (e : engine_result) -> e.name = n) wr.wr_engines in
    (find a).ns_per_step /. (find bname).ns_per_step
  in
  pf "{\n";
  pf "  \"schema\": \"bench_emulator/v1\",\n";
  pf "  \"quick\": %b,\n" quick;
  pf "  \"workloads\": [\n";
  List.iteri
    (fun i wr ->
       pf "    {\n";
       pf "      \"name\": \"%s\",\n" (jstr wr.wr_name);
       pf "      \"steps\": %d,\n" wr.wr_steps;
       pf "      \"engines\": {\n";
       List.iteri
         (fun j (e : engine_result) ->
            pf "        \"%s\": { \"ns_per_step\": %.2f, \"steps_per_sec\": %.0f }%s\n"
              (jstr e.name) e.ns_per_step
              (1e9 /. e.ns_per_step)
              (if j = List.length wr.wr_engines - 1 then "" else ","))
         wr.wr_engines;
       pf "      },\n";
       pf "      \"speedup_fast_vs_seed\": %.2f,\n" (speedup wr "seed" "fast");
       pf "      \"speedup_fast_vs_ref\": %.2f,\n" (speedup wr "ref" "fast");
       pf "      \"equality\": \"%s\"\n"
         (match wr.wr_equal with
          | Ok () -> "ok"
          | Error m -> jstr ("mismatch: " ^ m));
       pf "    }%s\n" (if i = List.length wrs - 1 then "" else ",")
    )
    wrs;
  pf "  ],\n";
  let fk = List.find (fun wr -> wr.wr_name = "fannkuch_rop_0.05") wrs in
  pf "  \"acceptance\": {\n";
  pf "    \"criterion\": \"fast >= 3x steps/sec vs the seed stepper on fannkuch_rop_0.05\",\n";
  pf "    \"speedup_fast_vs_seed\": %.2f,\n" (speedup fk "seed" "fast");
  pf "    \"pass\": %b\n" (speedup fk "seed" "fast" >= 3.0);
  pf "  },\n";
  pf "  \"microbench_ns_per_run\": [\n";
  List.iteri
    (fun i (n, est) ->
       pf "    { \"name\": \"%s\", \"ns\": %s }%s\n" (jstr n)
         (match est with Some e -> Printf.sprintf "%.0f" e | None -> "null")
         (if i = List.length micro - 1 then "" else ","))
    micro;
  pf "  ]\n";
  pf "}\n";
  Buffer.contents b

(* --- baseline gate (--baseline FILE) --------------------------------------

   Compares this run's fast-engine steps/sec per workload against a committed
   BENCH_emulator.json and fails on a regression beyond 5%.  This is the
   observability cost contract made executable: the metric/trace hooks are
   compiled into the engines unconditionally, and the gate holds while they
   stay disabled. *)

let regression_floor = 0.95

let check_baseline ~path (wrs : workload_result list) =
  let module J = Obs.Json in
  let doc =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  match J.parse doc with
  | Error e ->
    Printf.printf "baseline %s: parse error: %s\n%!" path e;
    false
  | Ok root ->
    let base_fast name =
      match Option.bind (J.member "workloads" root) J.to_list with
      | None -> None
      | Some ws ->
        List.find_map
          (fun w ->
             match J.member "name" w with
             | Some (J.Str n) when n = name ->
               (match J.path [ "engines"; "fast"; "steps_per_sec" ] w with
                | Some (J.Num sps) -> Some sps
                | _ -> None)
             | _ -> None)
          ws
    in
    Printf.printf "== Baseline gate (%s, fast engine within %.0f%%) ==\n" path
      ((1.0 -. regression_floor) *. 100.0);
    let ok =
      List.for_all
        (fun wr ->
           let fast =
             List.find (fun (e : engine_result) -> e.name = "fast")
               wr.wr_engines
           in
           let cur = 1e9 /. fast.ns_per_step in
           match base_fast wr.wr_name with
           | None ->
             Printf.printf "  %-20s no baseline entry; skipped\n" wr.wr_name;
             true
           | Some base ->
             let ratio = cur /. base in
             Printf.printf
               "  %-20s %12.0f steps/sec vs baseline %12.0f  (%.2fx) %s\n"
               wr.wr_name cur base ratio
               (if ratio >= regression_floor then "ok" else "REGRESSION");
             ratio >= regression_floor)
        wrs
    in
    ok

let run_json ~quick ~baseline ~path =
  (* each round is a few ms per engine; 20 rounds keeps the best-of estimate
     stable enough for the 5% baseline gate even in quick mode *)
  let rounds = 20 in
  let quota = if quick then 0.4 else 1.5 in
  let limit = if quick then 50 else 200 in
  let wrs = List.map (bench_workload ~rounds) (make_workloads ()) in
  Printf.printf "== Emulator perf trajectory (best of %d rounds) ==\n" rounds;
  List.iter
    (fun wr ->
       Printf.printf "%s (%d steps):\n" wr.wr_name wr.wr_steps;
       List.iter
         (fun (e : engine_result) ->
            Printf.printf "  %-5s %8.1f ns/step  %12.0f steps/sec\n" e.name
              e.ns_per_step (1e9 /. e.ns_per_step))
         wr.wr_engines;
       (match wr.wr_equal with
        | Ok () -> Printf.printf "  engines agree (status, rax, steps)\n%!"
        | Error m -> Printf.printf "  ENGINE MISMATCH: %s\n%!" m))
    wrs;
  let micro = run_benchmarks ~quota ~limit () in
  let json = json_of_results ~quick wrs micro in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  if List.exists (fun wr -> wr.wr_equal <> Ok ()) wrs then exit 1;
  match baseline with
  | None -> ()
  | Some p ->
    if not (check_baseline ~path:p wrs) then begin
      (* transient container load can shave a few percent off one sample;
         re-measure once with more rounds before calling it a regression *)
      Printf.printf "baseline gate missed; re-measuring (%d rounds)\n%!"
        (rounds * 2);
      let wrs = List.map (bench_workload ~rounds:(rounds * 2)) (make_workloads ()) in
      if not (check_baseline ~path:p wrs) then begin
        Printf.printf
          "baseline gate FAILED: fast engine regressed more than %.0f%%\n%!"
          ((1.0 -. regression_floor) *. 100.0);
        exit 1
      end
    end

(* --- solver portfolio/memo benchmark (--json-solver) ----------------------

   Repeated-query throughput: a seeded corpus of symbolic-path queries is
   solved [rounds] times over, the way a DSE sweep re-queries the same
   normalized constraints along neighboring paths.  Three modes:

     serial     — the pipeline solver, no memo (every round pays full price)
     memoized   — pipeline + content-addressed memo (round 2+ are hits)
     portfolio  — strategy race + memo

   The acceptance criterion from the campaign work: memoized and portfolio
   throughput each at least 2x serial on this workload. *)

module Sv = Symex.Solver
module Ex = Symex.Expr

let solver_corpus n =
  let r = Util.Rng.create 4242 in
  let byte () = Int64.of_int (Util.Rng.int r 256) in
  List.init n (fun i ->
      let h a b c1 c2 =
        Ex.bin Ex.Xor (Ex.bin Ex.Mul a (Ex.Const c1))
          (Ex.bin Ex.Mul b (Ex.Const c2))
      in
      if i mod 3 = 0 then
        (* shallow query: a concrete branch flip, cheap in every mode *)
        [ { Sv.cond = Ex.bin Ex.Eq (Ex.Input 0) (Ex.Const (byte ()));
            want = true } ]
      else begin
        (* mixing query: the solver earns its keep (or burns its budget) *)
        let c1 = Int64.of_int (131 + Util.Rng.int r 1000) in
        let c2 = Int64.of_int (77 + Util.Rng.int r 1000) in
        let target = h (Ex.Const (byte ())) (Ex.Const (byte ())) c1 c2 in
        [ { Sv.cond =
              Ex.bin Ex.Eq (h (Ex.Input 0) (Ex.Input 1) c1 c2) target;
            want = true };
          { Sv.cond = Ex.bin Ex.Ult (Ex.Input 0) (Ex.Const 251L);
            want = true } ]
      end)

type solver_mode_result = {
  sm_name : string;
  sm_qps : float;               (* queries per second, best of reps *)
  sm_evals : int;               (* expression evaluations, one rep *)
  sm_memo_hits : int;
}

let bench_solver_mode ~reps ~rounds ~corpus sm_name mode ~with_memo =
  let n = List.length corpus in
  let best = ref infinity in
  let last_evals = ref 0 and last_hits = ref 0 in
  for _ = 1 to reps do
    (* fresh memo per rep: round 1 misses, rounds 2+ hit, like a real run *)
    let memo = if with_memo then Some (Sv.Memo.create ()) else None in
    let stats = Sv.make_stats () in
    let t0 = Unix.gettimeofday () in
    for round = 1 to rounds do
      List.iteri
        (fun i cs ->
           ignore
             (Sv.solve_verdict ~rng:(Util.Rng.create ((round * 7919) + i))
                ~stats ?memo ~mode ~n_inputs:2 ~max_evals:4_000 cs))
        corpus
    done;
    let dt = Float.max 1e-6 (Unix.gettimeofday () -. t0) in
    best := Float.min !best (dt /. float_of_int (rounds * n));
    last_evals := stats.Sv.evals;
    last_hits := (match memo with Some m -> m.Sv.Memo.hits | None -> 0)
  done;
  { sm_name; sm_qps = 1.0 /. !best; sm_evals = !last_evals;
    sm_memo_hits = !last_hits }

let solver_speedup (rs : solver_mode_result list) name =
  let find n = List.find (fun r -> r.sm_name = n) rs in
  (find name).sm_qps /. (find "serial").sm_qps

let run_solver_bench ~reps ~rounds =
  let corpus = solver_corpus 42 in
  let rs =
    [ bench_solver_mode ~reps ~rounds ~corpus "serial" Sv.Pipeline
        ~with_memo:false;
      bench_solver_mode ~reps ~rounds ~corpus "memoized" Sv.Pipeline
        ~with_memo:true;
      bench_solver_mode ~reps ~rounds ~corpus "portfolio" Sv.Portfolio
        ~with_memo:true ]
  in
  Printf.printf
    "== Solver throughput (%d queries x %d rounds, best of %d reps) ==\n"
    (List.length corpus) rounds reps;
  List.iter
    (fun r ->
       Printf.printf "  %-10s %10.0f queries/sec  %9d evals  %5d memo hits\n"
         r.sm_name r.sm_qps r.sm_evals r.sm_memo_hits)
    rs;
  rs

let json_of_solver_results ~quick ~rounds (rs : solver_mode_result list) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let memo_x = solver_speedup rs "memoized" in
  let port_x = solver_speedup rs "portfolio" in
  pf "{\n";
  pf "  \"schema\": \"bench_solver/v1\",\n";
  pf "  \"quick\": %b,\n" quick;
  pf "  \"corpus\": { \"queries\": 42, \"rounds\": %d },\n" rounds;
  pf "  \"modes\": {\n";
  List.iteri
    (fun i r ->
       pf "    \"%s\": { \"queries_per_sec\": %.0f, \"evals\": %d, \"memo_hits\": %d }%s\n"
         r.sm_name r.sm_qps r.sm_evals r.sm_memo_hits
         (if i = List.length rs - 1 then "" else ","))
    rs;
  pf "  },\n";
  pf "  \"speedup_memoized_vs_serial\": %.2f,\n" memo_x;
  pf "  \"speedup_portfolio_vs_serial\": %.2f,\n" port_x;
  pf "  \"acceptance\": {\n";
  pf "    \"criterion\": \"memoized and portfolio each >= 2x serial queries/sec on the repeated-query corpus\",\n";
  pf "    \"pass\": %b\n" (memo_x >= 2.0 && port_x >= 2.0);
  pf "  }\n";
  pf "}\n";
  Buffer.contents b

(* Baseline gate on *speedups* (machine-independent, unlike raw qps): this
   run's memoized and portfolio speedups must reach 95%% of the committed
   ones, capped at 2.5x so an unusually fast baseline box cannot ratchet
   the gate out of reach. *)
let solver_speedup_cap = 2.5

let check_solver_baseline ~path (rs : solver_mode_result list) =
  let module J = Obs.Json in
  let doc =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  match J.parse doc with
  | Error e ->
    Printf.printf "baseline %s: parse error: %s\n%!" path e;
    false
  | Ok root ->
    let base name =
      match J.member name root with Some (J.Num x) -> Some x | _ -> None
    in
    Printf.printf "== Solver baseline gate (%s) ==\n" path;
    List.for_all
      (fun (key, mode) ->
         match base key with
         | None ->
           Printf.printf "  %-30s no baseline entry; skipped\n" key;
           true
         | Some b ->
           let cur = solver_speedup rs mode in
           let floor =
             regression_floor *. Float.min b solver_speedup_cap
           in
           Printf.printf "  %-30s %.2fx vs baseline %.2fx (floor %.2fx) %s\n"
             key cur b floor
             (if cur >= floor then "ok" else "REGRESSION");
           cur >= floor)
      [ ("speedup_memoized_vs_serial", "memoized");
        ("speedup_portfolio_vs_serial", "portfolio") ]

let run_solver_json ~quick ~baseline ~path =
  let reps = if quick then 2 else 3 in
  let rounds = if quick then 6 else 10 in
  let rs = run_solver_bench ~reps ~rounds in
  let oc = open_out path in
  output_string oc (json_of_solver_results ~quick ~rounds rs);
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  match baseline with
  | None -> ()
  | Some p ->
    if not (check_solver_baseline ~path:p rs) then begin
      Printf.printf "solver gate missed; re-measuring\n%!";
      let rs = run_solver_bench ~reps:(reps * 2) ~rounds in
      if not (check_solver_baseline ~path:p rs) then begin
        Printf.printf "solver baseline gate FAILED\n%!";
        exit 1
      end
    end

let run_full () =
  ignore (run_benchmarks ());
  Printf.printf "\n== Quick-scale regeneration of every table and figure ==\n%!";
  Harness.Experiments.table4 ();
  ignore (Harness.Experiments.table3 ());
  ignore (Harness.Experiments.fig5 ());
  ignore (Harness.Experiments.coverage ());
  Harness.Experiments.ropaware ();
  Harness.Experiments.efficacy ~budget_s:4.0 ();
  Harness.Experiments.casestudy ~budget_s:6.0 ();
  (* the big matrix goes through the worker pool, as bin/experiments does *)
  ignore
    (Harness.Experiments.table2
       ~pool:{ Jobs.Pool.default with Jobs.Pool.jobs = 2 }
       ~scale:Harness.Experiments.quick_scale ())

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let rec json_path = function
    | [] -> None
    | "--json" :: p :: _ when String.length p > 0 && p.[0] <> '-' -> Some p
    | "--json" :: _ -> Some "BENCH_emulator.json"
    | _ :: rest -> json_path rest
  in
  let rec baseline_path = function
    | [] -> None
    | "--baseline" :: p :: _ -> Some p
    | _ :: rest -> baseline_path rest
  in
  let rec solver_json_path = function
    | [] -> None
    | "--json-solver" :: p :: _ when String.length p > 0 && p.[0] <> '-' ->
      Some p
    | "--json-solver" :: _ -> Some "BENCH_solver.json"
    | _ :: rest -> solver_json_path rest
  in
  let rec solver_baseline_path = function
    | [] -> None
    | "--baseline-solver" :: p :: _ -> Some p
    | _ :: rest -> solver_baseline_path rest
  in
  match json_path argv, solver_json_path argv with
  | Some path, solver ->
    run_json ~quick ~baseline:(baseline_path argv) ~path;
    (match solver with
     | Some sp ->
       run_solver_json ~quick ~baseline:(solver_baseline_path argv) ~path:sp
     | None -> ())
  | None, Some sp ->
    run_solver_json ~quick ~baseline:(solver_baseline_path argv) ~path:sp
  | None, None -> run_full ()
