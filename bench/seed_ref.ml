(* Baseline rung of the emulator perf-trajectory benchmark: a faithful
   snapshot of the per-instruction stepper as it stood before the fast
   execution engine landed (polymorphic-Hashtbl page table keyed by boxed
   int64, byte-at-a-time memory accesses, Buffer-built fetch windows, decode
   cache keyed by boxed rip, registers in an int64 array).

   Kept under bench/ only: nothing in the product links against it.  It
   exists so that BENCH_emulator.json can report speedups against the engine
   this work replaced, measured in the same process on the same images,
   rather than against numbers archived from old builds.  The flag/width
   formulas are shared with the live engines through [Machine.Semantics],
   which keeps the baseline semantically honest (and, if anything, slightly
   flatters it: it inherits the table-driven parity helper). *)

open X86.Isa
module S = Machine.Semantics

exception Exec_fault of string

type exit_status = Halted | Fault of string | Out_of_fuel

(* --- seed memory: (int64, bytes) pages, byte-loop accesses --------------- *)

module Mem = struct
  exception Fault of int64 * string

  let page_bits = 12
  let page_size = 1 lsl page_bits

  type t = { pages : (int64, bytes) Hashtbl.t }

  let page_of addr = Int64.shift_right_logical addr page_bits
  let offset_of addr = Int64.to_int (Int64.logand addr (Int64.of_int (page_size - 1)))

  (* Snapshot a live machine memory into seed-layout pages.  The live page
     index is the address's top 52 bits as an OCaml int, so the seed's boxed
     key is just its re-widening. *)
  let of_machine (m : Machine.Memory.t) =
    let pages = Hashtbl.create 64 in
    Util.Itbl.iter
      (fun idx (p : Machine.Memory.page) ->
         Hashtbl.replace pages (Int64.of_int idx) (Bytes.copy p.Machine.Memory.data))
      m.Machine.Memory.pages;
    { pages }

  let get_page_opt t addr = Hashtbl.find_opt t.pages (page_of addr)

  let get_page_for_write t addr =
    let p = page_of addr in
    match Hashtbl.find_opt t.pages p with
    | Some b -> b
    | None ->
      let b = Bytes.make page_size '\000' in
      Hashtbl.replace t.pages p b;
      b

  let read_u8 t addr =
    match get_page_opt t addr with
    | Some b -> Char.code (Bytes.get b (offset_of addr))
    | None -> raise (Fault (addr, "read of unmapped address"))

  let read_u8_opt t addr =
    match get_page_opt t addr with
    | Some b -> Some (Char.code (Bytes.get b (offset_of addr)))
    | None -> None

  let write_u8 t addr v =
    let b = get_page_for_write t addr in
    Bytes.set b (offset_of addr) (Char.chr (v land 0xff))

  let read t addr n =
    let r = ref 0L in
    for i = n - 1 downto 0 do
      let byte = read_u8 t (Int64.add addr (Int64.of_int i)) in
      r := Int64.logor (Int64.shift_left !r 8) (Int64.of_int byte)
    done;
    !r

  let write t addr n v =
    for i = 0 to n - 1 do
      let byte = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
      write_u8 t (Int64.add addr (Int64.of_int i)) byte
    done

  let read_u64 t addr = read t addr 8
  let write_u64 t addr v = write t addr 8 v

  let read_bytes_avail t addr n =
    let buf = Buffer.create n in
    let rec go i =
      if i >= n then ()
      else
        match read_u8_opt t (Int64.add addr (Int64.of_int i)) with
        | Some v -> Buffer.add_char buf (Char.chr v); go (i + 1)
        | None -> ()
    in
    go 0;
    Buffer.to_bytes buf
end

(* --- seed cpu: int64 array registers, mutable boxed rip ------------------ *)

type cpu = {
  regs : int64 array;
  mutable rip : int64;
  mutable cf : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable o_f : bool;
  mutable pf : bool;
  mem : Mem.t;
  mutable halted : bool;
  mutable steps : int;
}

let cpu_create mem = {
  regs = Array.make 16 0L;
  rip = 0L;
  cf = false; zf = false; sf = false; o_f = false; pf = false;
  mem;
  halted = false;
  steps = 0;
}

let rget c r = c.regs.(reg_index r)
let rset c r v = c.regs.(reg_index r) <- v

let cc_holds c = function
  | O -> c.o_f | NO -> not c.o_f
  | B -> c.cf | AE -> not c.cf
  | E -> c.zf | NE -> not c.zf
  | BE -> c.cf || c.zf | A -> not (c.cf || c.zf)
  | S -> c.sf | NS -> not c.sf
  | P -> c.pf | NP -> not c.pf
  | L -> c.sf <> c.o_f | GE -> c.sf = c.o_f
  | LE -> c.zf || c.sf <> c.o_f | G -> not c.zf && c.sf = c.o_f

(* --- operand access, flags, per-instruction execution -------------------- *)

let ea c (m : mem) =
  let b = match m.base with Some r -> rget c r | None -> 0L in
  let i =
    match m.index with
    | Some (r, sc) -> Int64.mul (rget c r) (Int64.of_int sc)
    | None -> 0L
  in
  Int64.add (Int64.add b i) m.disp

let read_operand c w = function
  | Reg r -> S.truncate w (rget c r)
  | Imm v -> S.truncate w v
  | Mem m -> Mem.read c.mem (ea c m) (width_bytes w)

let write_reg c w r v =
  match w with
  | W64 -> rset c r v
  | W32 -> rset c r (Int64.logand v 0xFFFFFFFFL)
  | W16 ->
    let old = rget c r in
    rset c r (Int64.logor (Int64.logand old (-65536L)) (Int64.logand v 0xFFFFL))
  | W8 ->
    let old = rget c r in
    rset c r (Int64.logor (Int64.logand old (-256L)) (Int64.logand v 0xFFL))

let write_operand c w op v =
  match op with
  | Reg r -> write_reg c w r v
  | Mem m -> Mem.write c.mem (ea c m) (width_bytes w) v
  | Imm _ -> raise (Exec_fault "write to immediate")

let set_zsp c w r =
  let zf, sf, pf = S.flags_zsp w r in
  c.zf <- zf; c.sf <- sf; c.pf <- pf

let flags_add c w a b r =
  c.cf <- S.carry_out w a b r;
  c.o_f <- S.overflow_add w a b r;
  set_zsp c w r

let flags_sub c w a b r =
  c.cf <- S.borrow_out w a b r;
  c.o_f <- S.overflow_sub w a b r;
  set_zsp c w r

let flags_logic c w r =
  c.cf <- false;
  c.o_f <- false;
  set_zsp c w r

let push64 c v =
  let sp = Int64.sub (rget c RSP) 8L in
  rset c RSP sp;
  Mem.write_u64 c.mem sp v

let pop64 c =
  let sp = rget c RSP in
  let v = Mem.read_u64 c.mem sp in
  rset c RSP (Int64.add sp 8L);
  v

let exec_alu c o w d s =
  let a = read_operand c w d in
  let b = read_operand c w s in
  match o with
  | Add ->
    let r = S.truncate w (Int64.add a b) in
    flags_add c w a b r;
    write_operand c w d r
  | Adc ->
    let cin = if c.cf then 1L else 0L in
    let r = S.truncate w (Int64.add (Int64.add a b) cin) in
    flags_add c w a b r;
    write_operand c w d r
  | Sub ->
    let r = S.truncate w (Int64.sub a b) in
    flags_sub c w a b r;
    write_operand c w d r
  | Sbb ->
    let cin = if c.cf then 1L else 0L in
    let r = S.truncate w (Int64.sub (Int64.sub a b) cin) in
    flags_sub c w a b r;
    write_operand c w d r
  | Cmp ->
    let r = S.truncate w (Int64.sub a b) in
    flags_sub c w a b r
  | And ->
    let r = Int64.logand a b in
    flags_logic c w r;
    write_operand c w d r
  | Or ->
    let r = Int64.logor a b in
    flags_logic c w r;
    write_operand c w d r
  | Xor ->
    let r = Int64.logxor a b in
    flags_logic c w r;
    write_operand c w d r
  | Test ->
    let r = Int64.logand a b in
    flags_logic c w r

let exec_unary c o w d =
  let a = read_operand c w d in
  match o with
  | Neg ->
    let r = S.truncate w (Int64.neg a) in
    flags_sub c w 0L a r;
    write_operand c w d r
  | Not -> write_operand c w d (S.truncate w (Int64.lognot a))
  | Inc ->
    let r = S.truncate w (Int64.add a 1L) in
    c.o_f <- S.overflow_add w a 1L r;
    set_zsp c w r;
    write_operand c w d r
  | Dec ->
    let r = S.truncate w (Int64.sub a 1L) in
    c.o_f <- S.overflow_sub w a 1L r;
    set_zsp c w r;
    write_operand c w d r

let exec_shift c o w d count =
  let a = read_operand c w d in
  let n =
    match count with
    | S_imm n -> n
    | S_cl -> Int64.to_int (Int64.logand (rget c RCX) 0xFFL)
  in
  let n = n land (if w = W64 then 63 else 31) in
  if n = 0 then ()
  else begin
    let bits = width_bits w in
    match o with
    | Shl ->
      let r = S.truncate w (Int64.shift_left a n) in
      c.cf <-
        (n <= bits && Int64.logand (Int64.shift_right_logical a (bits - n)) 1L = 1L);
      c.o_f <- S.sign_bit w r <> c.cf;
      set_zsp c w r;
      write_operand c w d r
    | Shr ->
      let r = Int64.shift_right_logical a n in
      c.cf <- Int64.logand (Int64.shift_right_logical a (n - 1)) 1L = 1L;
      c.o_f <- S.sign_bit w a;
      set_zsp c w r;
      write_operand c w d r
    | Sar ->
      let r = S.truncate w (Int64.shift_right (S.sign_extend w a) n) in
      c.cf <-
        Int64.logand (Int64.shift_right (S.sign_extend w a) (min 63 (n - 1))) 1L = 1L;
      c.o_f <- false;
      set_zsp c w r;
      write_operand c w d r
    | Rol ->
      let n = n mod bits in
      let r =
        if n = 0 then a
        else
          S.truncate w
            (Int64.logor (Int64.shift_left a n)
               (Int64.shift_right_logical (S.truncate w a) (bits - n)))
      in
      c.cf <- Int64.logand r 1L = 1L;
      write_operand c w d r
    | Ror ->
      let n = n mod bits in
      let r =
        if n = 0 then a
        else
          S.truncate w
            (Int64.logor (Int64.shift_right_logical (S.truncate w a) n)
               (Int64.shift_left a (bits - n)))
      in
      c.cf <- S.sign_bit w r;
      write_operand c w d r
  end

let exec_muldiv c o src =
  let v = read_operand c W64 src in
  let rax = rget c RAX in
  let rdx = rget c RDX in
  match o with
  | Mul ->
    let lo = Int64.mul rax v in
    let hi = S.mulhi_u rax v in
    rset c RAX lo;
    rset c RDX hi;
    let cf = hi <> 0L in
    c.cf <- cf; c.o_f <- cf
  | Imul1 ->
    let lo = Int64.mul rax v in
    let hi = S.mulhi_s rax v in
    rset c RAX lo;
    rset c RDX hi;
    let cf = hi <> Int64.shift_right lo 63 in
    c.cf <- cf; c.o_f <- cf
  | Div ->
    (match S.divmod_u128 rdx rax v with
     | q, r -> rset c RAX q; rset c RDX r
     | exception Division_by_zero -> raise (Exec_fault "divide by zero")
     | exception S.Div_overflow -> raise (Exec_fault "divide overflow"))
  | Idiv ->
    (match S.divmod_s128 rdx rax v with
     | q, r -> rset c RAX q; rset c RDX r
     | exception Division_by_zero -> raise (Exec_fault "divide by zero")
     | exception S.Div_overflow -> raise (Exec_fault "divide overflow"))

let exec_instr c i =
  match i with
  | Nop -> ()
  | Hlt -> c.halted <- true
  | Lahf ->
    let b =
      (if c.sf then 0x80 else 0)
      lor (if c.zf then 0x40 else 0)
      lor (if c.pf then 0x04 else 0)
      lor 0x02
      lor (if c.cf then 0x01 else 0)
    in
    let old = rget c RAX in
    rset c RAX
      (Int64.logor (Int64.logand old (Int64.lognot 0xFF00L)) (Int64.of_int (b lsl 8)))
  | Sahf ->
    let b = Int64.to_int (Int64.shift_right_logical (rget c RAX) 8) land 0xFF in
    c.sf <- b land 0x80 <> 0;
    c.zf <- b land 0x40 <> 0;
    c.pf <- b land 0x04 <> 0;
    c.cf <- b land 0x01 <> 0
  | Mov (w, d, s) ->
    let v = read_operand c w s in
    write_operand c w d v
  | Movzx (dw, sw, r, s) ->
    let v = read_operand c sw s in
    write_reg c dw r v
  | Movsx (dw, sw, r, s) ->
    let v = S.sign_extend sw (read_operand c sw s) in
    write_reg c dw r (S.truncate dw v)
  | Lea (r, m) -> rset c r (ea c m)
  | Push a ->
    let v = read_operand c W64 a in
    push64 c v
  | Pop d ->
    let v = pop64 c in
    write_operand c W64 d v
  | Alu (o, w, d, s) -> exec_alu c o w d s
  | Unary (o, w, d) -> exec_unary c o w d
  | Imul2 (w, r, s) ->
    let a = S.truncate w (rget c r) in
    let b = read_operand c w s in
    let full = Int64.mul (S.sign_extend w a) (S.sign_extend w b) in
    let r64 = S.truncate w full in
    let cf = S.sign_extend w r64 <> full in
    c.cf <- cf; c.o_f <- cf;
    set_zsp c w r64;
    write_reg c w r r64
  | MulDiv (o, s) -> exec_muldiv c o s
  | Shift (o, w, d, cnt) -> exec_shift c o w d cnt
  | Cmov (cc, r, s) ->
    let v = read_operand c W64 s in
    if cc_holds c cc then rset c r v
  | Setcc (cc, d) ->
    let v = if cc_holds c cc then 1L else 0L in
    write_operand c W8 d v
  | Jmp (J_rel d) -> c.rip <- Int64.add c.rip (Int64.of_int d)
  | Jmp (J_op a) -> c.rip <- read_operand c W64 a
  | Jcc (cc, d) ->
    if cc_holds c cc then c.rip <- Int64.add c.rip (Int64.of_int d)
  | Call (J_rel d) ->
    push64 c c.rip;
    c.rip <- Int64.add c.rip (Int64.of_int d)
  | Call (J_op a) ->
    let target = read_operand c W64 a in
    push64 c c.rip;
    c.rip <- target
  | Ret -> c.rip <- pop64 c
  | Leave ->
    rset c RSP (rget c RBP);
    rset c RBP (pop64 c)
  | Xchg (w, a, b) ->
    let va = read_operand c w a in
    let vb = read_operand c w b in
    write_operand c w a vb;
    write_operand c w b va

(* --- fetch/decode with the seed's boxed-key cache, and the run loop ------ *)

type t = { cpu : cpu; decode_cache : (int64, instr * int) Hashtbl.t }

let make cpu = { cpu; decode_cache = Hashtbl.create 1024 }

let fetch t rip =
  match Hashtbl.find_opt t.decode_cache rip with
  | Some r -> Some r
  | None ->
    let window = Mem.read_bytes_avail t.cpu.mem rip X86.Encode.max_instr_len in
    (match X86.Decode.decode window 0 with
     | Some (i, len) ->
       Hashtbl.replace t.decode_cache rip (i, len);
       Some (i, len)
     | None -> None)

let step t =
  let c = t.cpu in
  let rip = c.rip in
  match fetch t rip with
  | None -> raise (Exec_fault (Printf.sprintf "invalid instruction at 0x%Lx" rip))
  | Some (i, len) ->
    c.rip <- Int64.add rip (Int64.of_int len);
    exec_instr c i;
    c.steps <- c.steps + 1

let run ?(fuel = max_int) t =
  let rec go fuel =
    if t.cpu.halted then Halted
    else if fuel <= 0 then Out_of_fuel
    else
      match step t with
      | () -> go (fuel - 1)
      | exception Exec_fault m -> Fault m
      | exception Mem.Fault (addr, m) -> Fault (Printf.sprintf "%s (0x%Lx)" m addr)
  in
  go fuel

(* --- Runner.call equivalent over a pre-loaded machine memory ------------- *)

type result = { status : exit_status; rax : int64; steps : int }

let arg_regs = [ RDI; RSI; RDX; RCX; R8; R9 ]

(* Mirror of [Runner.setup] over a pre-loaded machine memory; the page
   conversion happens here so benchmark loops can keep it out of the timed
   region. *)
let setup img ~mem ~func ~args =
  let c = cpu_create (Mem.of_machine mem) in
  let entry = Image.symbol_addr img func in
  List.iteri
    (fun i a ->
       match List.nth_opt arg_regs i with
       | Some r -> rset c r a
       | None -> invalid_arg "Seed_ref: more than 6 arguments")
    args;
  let sp = Int64.sub Image.stack_top 64L in
  rset c RSP sp;
  let sp = Int64.sub sp 8L in
  Mem.write_u64 c.mem sp Image.exit_stub_addr;
  rset c RSP sp;
  c.rip <- entry;
  make c

let call ?(fuel = 50_000_000) img ~mem ~func ~args =
  let t = setup img ~mem ~func ~args in
  let status = run ~fuel t in
  { status; rax = rget t.cpu RAX; steps = t.cpu.steps }
