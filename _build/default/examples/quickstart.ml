(* Quickstart: write a program, compile it, turn a function into a ROP chain,
   and watch both versions compute the same thing.

     dune exec examples/quickstart.exe *)

open Minic.Ast

let () =
  (* 1. a program in the mini-C EDSL *)
  let prog =
    program
      [ func ~params:[ "n" ] ~locals:[ "sum"; "i" ] "triangle"
          [ set "sum" (c 0);
            For (set "i" (c 1), Bin (Les, v "i", v "n"),
                 set "i" (Bin (Add, v "i", c 1)),
                 [ set "sum" (Bin (Add, v "sum", v "i")) ]);
            Return (v "sum") ] ]
  in
  (* 2. compile to an x64-lite binary image *)
  let img = Minic.Codegen.compile prog in
  let native = Runner.call_exn img ~func:"triangle" ~args:[ 100L ] in
  Printf.printf "native result:     %Ld (in %d instructions)\n"
    native.Runner.rax native.Runner.steps;
  (* 3. rewrite the function into a self-contained ROP chain with the paper's
     P1 (opaque-array branch encoding) and P3 (state-space widening) *)
  let r =
    Ropc.Rewriter.rewrite img ~functions:[ "triangle" ]
      ~config:(Ropc.Config.rop_k 0.25)
  in
  (match List.assoc "triangle" r.Ropc.Rewriter.funcs with
   | Ok st ->
     Printf.printf "chain:             %d bytes at 0x%Lx (%d blocks)\n"
       st.Ropc.Rewriter.fs_chain_bytes st.Ropc.Rewriter.fs_chain_addr
       st.Ropc.Rewriter.fs_blocks
   | Error e -> failwith (Ropc.Rewriter.failure_to_string e));
  (* 4. the obfuscated binary behaves identically *)
  let rop = Runner.call_exn r.Ropc.Rewriter.image ~func:"triangle" ~args:[ 100L ] in
  Printf.printf "obfuscated result: %Ld (in %d instructions, %.1fx slowdown)\n"
    rop.Runner.rax rop.Runner.steps
    (float_of_int rop.Runner.steps /. float_of_int native.Runner.steps);
  assert (native.Runner.rax = rop.Runner.rax);
  (* 5. peek at the first chain slots: addresses and operands, the only thing
     an attacker sees without dereferencing (§I "gadget confusion") *)
  let mem = Image.load r.Ropc.Rewriter.image in
  (match List.assoc "triangle" r.Ropc.Rewriter.funcs with
   | Ok st ->
     Printf.printf "first chain slots:\n";
     for i = 0 to 5 do
       let slot =
         Machine.Memory.read_u64 mem
           (Int64.add st.Ropc.Rewriter.fs_chain_addr (Int64.of_int (8 * i)))
       in
       Printf.printf "  +0x%02x: 0x%Lx\n" (8 * i) slot
     done
   | Error _ -> ())
