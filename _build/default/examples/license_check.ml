(* License-key validation, the paper's motivating G1 scenario (§III): protect
   a key check with the full predicate stack and measure how a DSE attacker
   fares against the native and the obfuscated binary.

     dune exec examples/license_check.exe *)


(* a key check: mix the 2-byte key and compare against a magic constant *)
let make_check () =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:4 ~seed:7 ~input_size:2
         ~control_index:1 ())
  in
  (t.Minic.Randomfuns.prog, Option.get t.Minic.Randomfuns.secret)

let attack name img =
  let budget = { Symex.Engine.default_budget with wall_seconds = 8.0 } in
  let tgt = { Symex.Engine.img; func = "target"; n_inputs = 2 } in
  let r = Symex.Engine.dse ~goal:Symex.Engine.G_secret ~budget tgt in
  (match r.Symex.Engine.secret_input with
   | Some m ->
     Printf.printf "%-22s cracked in %5.1fs -> key bytes %d,%d (%d paths)\n" name
       r.Symex.Engine.time m.(0) m.(1) r.Symex.Engine.stats.Symex.Engine.states
   | None ->
     Printf.printf "%-22s withstood the %4.1fs budget (%d paths explored)\n" name
       r.Symex.Engine.time r.Symex.Engine.stats.Symex.Engine.states);
  r.Symex.Engine.secret_input <> None

let () =
  let prog, secret = make_check () in
  Printf.printf "license key (secret): %Ld\n\n" secret;
  let native = Minic.Codegen.compile prog in
  let cracked_native = attack "native" native in
  let cfg = Ropc.Config.rop_k ~p2:true ~confusion:true 0.5 in
  Printf.printf "\nobfuscating with %s...\n" (Ropc.Config.describe cfg);
  let r = Ropc.Rewriter.rewrite native ~functions:[ "target" ] ~config:cfg in
  (* still a working program *)
  let check = Runner.call_exn r.Ropc.Rewriter.image ~func:"target" ~args:[ secret ] in
  Printf.printf "obfuscated binary still accepts the real key: %Ld\n\n" check.Runner.rax;
  let cracked_rop = attack "ROP+P1+P2+P3+confusion" r.Ropc.Rewriter.image in
  Printf.printf "\nsummary: native %s, obfuscated %s\n"
    (if cracked_native then "CRACKED" else "held")
    (if cracked_rop then "CRACKED" else "held")
