examples/base64_pipeline.ml: Minic Printf Ropc Runner Symex
