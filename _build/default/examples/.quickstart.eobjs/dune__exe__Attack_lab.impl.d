examples/attack_lab.ml: Hashtbl List Minic Printf Ropaware Ropc Taint
