examples/base64_pipeline.mli:
