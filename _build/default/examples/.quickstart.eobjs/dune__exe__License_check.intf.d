examples/license_check.mli:
