examples/quickstart.ml: Image Int64 List Machine Minic Printf Ropc Runner
