examples/license_check.ml: Array Minic Option Printf Ropc Runner Symex
