examples/quickstart.mli:
