(* The §VII-C3 case study end to end: the base64 secret check, obfuscated at
   several settings, attacked by DSE under both memory models.

     dune exec examples/base64_pipeline.exe *)

let () =
  let prog = Minic.Programs.base64_program () in
  let funcs = [ "b64_check"; "b64_encode" ] in
  Printf.printf "6-byte secret: 0x%Lx\n" Minic.Programs.secret_arg;
  let native = Minic.Codegen.compile prog in
  let ok = Runner.call_exn native ~func:"b64_check" ~args:[ Minic.Programs.secret_arg ] in
  Printf.printf "native check(secret) = %Ld (%d instructions)\n\n"
    ok.Runner.rax ok.Runner.steps;
  let attack name ~toa img =
    let budget = { Symex.Engine.default_budget with wall_seconds = 10.0 } in
    let tgt = { Symex.Engine.img; func = "b64_check"; n_inputs = 6 } in
    let r = Symex.Engine.dse ~toa ~goal:Symex.Engine.G_secret ~budget tgt in
    Printf.printf "  %-28s %s\n" name
      (match r.Symex.Engine.secret_input with
       | Some _ -> Printf.sprintf "secret recovered in %.1fs" r.Symex.Engine.time
       | None -> Printf.sprintf "timeout after %.1fs" r.Symex.Engine.time)
  in
  Printf.printf "attacking the native binary:\n";
  attack "DSE, concretizing memory" ~toa:false native;
  attack "DSE, per-page ToA memory" ~toa:true native;
  let r = Ropc.Rewriter.rewrite native ~functions:funcs ~config:(Ropc.Config.rop_k 0.0) in
  let rop = r.Ropc.Rewriter.image in
  let ok = Runner.call_exn rop ~func:"b64_check" ~args:[ Minic.Programs.secret_arg ] in
  Printf.printf "\nROP_0 (P1 only) check(secret) = %Ld (%d instructions)\n"
    ok.Runner.rax ok.Runner.steps;
  Printf.printf "attacking the obfuscated binary:\n";
  attack "DSE, concretizing memory" ~toa:false rop;
  attack "DSE, per-page ToA memory" ~toa:true rop
