(* Attack lab: every analysis in the toolbox pointed at one protected
   function — ROPMEMU flips, ROPDissector CFG recovery, gadget guessing,
   TDS trace simplification — with and without the strengthening predicates.

     dune exec examples/attack_lab.exe *)

open Minic.Ast

let target_prog =
  program
    [ func ~params:[ "x" ] ~locals:[ "h"; "i" ] "target"
        [ set "h" (v "x");
          For (set "i" (c 0), Bin (Lts, v "i", c 6), set "i" (Bin (Add, v "i", c 1)),
               [ set "h" (bxor (Bin (Mul, v "h", c 31)) (shr (v "h") (c 3))) ]);
          If (Bin (Eq, band (v "h") (c 0xFF), c 0x5A),
              [ Return (c 1) ],
              [ Return (c 0) ]) ] ]

let show name config =
  Printf.printf "\n--- %s (%s) ---\n" name (Ropc.Config.describe config);
  let img = Minic.Codegen.compile target_prog in
  let r = Ropc.Rewriter.rewrite img ~functions:[ "target" ] ~config in
  let chain_addr, chain_len, blocks =
    match List.assoc "target" r.Ropc.Rewriter.funcs with
    | Ok st ->
      (st.Ropc.Rewriter.fs_chain_addr, st.Ropc.Rewriter.fs_chain_bytes,
       List.length st.Ropc.Rewriter.fs_block_offsets)
    | Error e -> failwith (Ropc.Rewriter.failure_to_string e)
  in
  let obf = r.Ropc.Rewriter.image in
  Printf.printf "chain: %d bytes, %d true blocks\n" chain_len blocks;
  (* ROPDissector *)
  let dis = Ropaware.Ropdissector.analyze obf ~chain_addr ~chain_len in
  Printf.printf "ROPDissector: %d blocks revealed, %d branches flipped, %d unresolved\n"
    (Hashtbl.length dis.Ropaware.Ropdissector.blocks)
    dis.Ropaware.Ropdissector.branches dis.Ropaware.Ropdissector.unresolved;
  (* gadget guessing *)
  let guess = Ropaware.Ropdissector.gadget_guess ~stride:1 obf ~chain_addr ~chain_len in
  Printf.printf "gadget guessing: %d candidate blocks (%.0f per KB)\n"
    guess.Ropaware.Ropdissector.candidates
    (1024.0 *. float_of_int guess.Ropaware.Ropdissector.candidates
     /. float_of_int chain_len);
  (* ROPMEMU *)
  let memu = Ropaware.Ropmemu.explore obf ~func:"target" ~args:[ 3L ] in
  Printf.printf "ROPMEMU: %d traces (%d faulted), %d chain slots discovered\n"
    memu.Ropaware.Ropmemu.traces memu.Ropaware.Ropmemu.faulted_traces
    (Hashtbl.length memu.Ropaware.Ropmemu.discovered_slots);
  (* TDS *)
  let tds = Taint.Tds.run ~fuel:500_000 obf ~func:"target" ~n_inputs:1 ~input:[| 3 |] in
  Printf.printf "TDS: trace %d -> kept %d (%d input-tainted control deps)\n"
    tds.Taint.Tds.total tds.Taint.Tds.n_kept tds.Taint.Tds.tainted_branches

let () =
  show "plain ROP encoding" (Ropc.Config.plain ());
  show "P1 only" (Ropc.Config.rop_k 0.0);
  show "P1+P2" (Ropc.Config.rop_k ~p2:true 0.0);
  show "the full stack" (Ropc.Config.rop_k ~p2:true ~confusion:true 0.5)
