(* Tests for the TDS simplifier and the ROP-aware analyses, checking the
   qualitative claims of §VII-A on small targets. *)

open Minic.Ast

(* a simple secret check with two branches *)
let branchy_prog =
  program
    [ func ~params:[ "x" ] ~locals:[ "h" ] "target"
        [ set "h" (Bin (Mul, band (v "x") (c 0xFF), c 37));
          If (Bin (Eq, band (v "h") (c 0xFF), c 0x42),
              [ Return (c 1) ],
              [ If (Bin (Gts, v "h", c 4000),
                    [ Return (c 2) ],
                    [ Return (c 0) ]) ]) ] ]

let compile_rop ?(config = Ropc.Config.plain ()) prog fnames =
  let img = Minic.Codegen.compile prog in
  let r = Ropc.Rewriter.rewrite img ~functions:fnames ~config in
  List.iter
    (fun (f, res) ->
       match res with
       | Ok _ -> ()
       | Error e ->
         Alcotest.failf "rewrite %s: %s" f (Ropc.Rewriter.failure_to_string e))
    r.Ropc.Rewriter.funcs;
  r

(* --- TDS -------------------------------------------------------------------- *)

let test_tds_native () =
  let img = Minic.Codegen.compile branchy_prog in
  let r = Taint.Tds.run img ~func:"target" ~n_inputs:1 ~input:[| 7 |] in
  Alcotest.(check bool) "some kept" true (r.Taint.Tds.n_kept > 0);
  Alcotest.(check bool) "trace simplified" true (r.Taint.Tds.n_removed > 0);
  Alcotest.(check bool) "tainted branches present" true
    (r.Taint.Tds.tainted_branches >= 1)

let test_tds_rop_dispatch_removed () =
  (* plain ROP encoding: the ret dispatching is untainted and gets
     simplified away; the kept fraction shrinks relative to the full trace *)
  let r = compile_rop branchy_prog [ "target" ] in
  let tr =
    Taint.Tracer.record r.Ropc.Rewriter.image ~func:"target" ~n_inputs:1
      ~input:[| 7 |]
  in
  Alcotest.(check bool) "trace recorded" true (List.length tr.Taint.Tracer.entries > 50);
  let s = Taint.Tds.simplify tr in
  let kept_frac = float_of_int s.Taint.Tds.n_kept /. float_of_int s.Taint.Tds.total in
  Alcotest.(check bool)
    (Printf.sprintf "dispatch simplified (kept %.0f%%)" (kept_frac *. 100.))
    true (kept_frac < 0.9)

let test_tds_p3_survives () =
  (* P3 must leave more input-tainted control decisions in the trace than
     the plain encoding (§V-C: TDS cannot remove them) *)
  let plain = compile_rop branchy_prog [ "target" ] in
  let p3 = compile_rop ~config:(Ropc.Config.rop_k 1.0) branchy_prog [ "target" ] in
  let s_plain =
    Taint.Tds.run plain.Ropc.Rewriter.image ~func:"target" ~n_inputs:1 ~input:[| 7 |]
  in
  let s_p3 =
    Taint.Tds.run p3.Ropc.Rewriter.image ~func:"target" ~n_inputs:1 ~input:[| 7 |]
  in
  (* P3 multiplies the input-tainted control decisions (implicit control
     dependencies) that the simplifier must keep (§V-C) *)
  Alcotest.(check bool)
    (Printf.sprintf "p3 tainted control %d > 2x plain %d"
       s_p3.Taint.Tds.tainted_branches s_plain.Taint.Tds.tainted_branches)
    true
    (s_p3.Taint.Tds.tainted_branches > 2 * s_plain.Taint.Tds.tainted_branches)

(* --- ROPMEMU ---------------------------------------------------------------- *)

let test_ropmemu_explores_plain () =
  let r = compile_rop branchy_prog [ "target" ] in
  (* baseline input 7 returns 0; flipping should reveal other paths *)
  let res = Ropaware.Ropmemu.explore r.Ropc.Rewriter.image ~func:"target" ~args:[ 7L ] in
  Alcotest.(check bool) "multiple traces" true (res.Ropaware.Ropmemu.traces > 1);
  Alcotest.(check bool) "flag sites found" true (res.Ropaware.Ropmemu.flag_sites > 0);
  (* compare against single-trace discovery *)
  let single =
    Ropaware.Ropmemu.explore
      ~config:{ Ropaware.Ropmemu.default_config with max_traces = 1 }
      r.Ropc.Rewriter.image ~func:"target" ~args:[ 7L ]
  in
  Alcotest.(check bool) "flips discover more chain code" true
    (Hashtbl.length res.Ropaware.Ropmemu.discovered_slots
     > Hashtbl.length single.Ropaware.Ropmemu.discovered_slots)

let test_ropmemu_blocked_by_p2 () =
  let plain = compile_rop branchy_prog [ "target" ] in
  let p2 = compile_rop ~config:(Ropc.Config.rop_k ~p2:true 0.0) branchy_prog [ "target" ] in
  let explore img =
    Ropaware.Ropmemu.explore img ~func:"target" ~args:[ 7L ]
  in
  let r_plain = explore plain.Ropc.Rewriter.image in
  let r_p2 = explore p2.Ropc.Rewriter.image in
  (* under P2, blind flips corrupt RSP: flipped traces fault *)
  Alcotest.(check bool)
    (Printf.sprintf "p2 faults (%d) > plain faults (%d)"
       r_p2.Ropaware.Ropmemu.faulted_traces r_plain.Ropaware.Ropmemu.faulted_traces)
    true
    (r_p2.Ropaware.Ropmemu.faulted_traces > r_plain.Ropaware.Ropmemu.faulted_traces)

(* --- ROPDissector ------------------------------------------------------------ *)

let chain_info (r : Ropc.Rewriter.result) =
  match List.assoc "target" r.Ropc.Rewriter.funcs with
  | Ok st -> (st.Ropc.Rewriter.fs_chain_addr, st.Ropc.Rewriter.fs_chain_bytes,
              List.length st.Ropc.Rewriter.fs_block_offsets)
  | Error _ -> Alcotest.fail "rewrite failed"

let test_ropdissector_plain () =
  let r = compile_rop branchy_prog [ "target" ] in
  let addr, len, n_blocks = chain_info r in
  let res =
    Ropaware.Ropdissector.analyze r.Ropc.Rewriter.image ~chain_addr:addr
      ~chain_len:len
  in
  Alcotest.(check bool)
    (Printf.sprintf "blocks %d >= cfg blocks %d"
       (Hashtbl.length res.Ropaware.Ropdissector.blocks) n_blocks)
    true
    (Hashtbl.length res.Ropaware.Ropdissector.blocks >= n_blocks);
  Alcotest.(check bool) "branches recognized" true
    (res.Ropaware.Ropdissector.branches >= 1)

let test_ropdissector_blocked_by_p2 () =
  let plain = compile_rop branchy_prog [ "target" ] in
  let p2 = compile_rop ~config:{ (Ropc.Config.plain ()) with Ropc.Config.p2 = true }
      branchy_prog [ "target" ] in
  let run r =
    let addr, len, _ = chain_info r in
    Ropaware.Ropdissector.analyze r.Ropc.Rewriter.image ~chain_addr:addr ~chain_len:len
  in
  let r_plain = run plain in
  let r_p2 = run p2 in
  Alcotest.(check bool)
    (Printf.sprintf "p2 blocks (%d) < plain blocks (%d)"
       (Hashtbl.length r_p2.Ropaware.Ropdissector.blocks)
       (Hashtbl.length r_plain.Ropaware.Ropdissector.blocks))
    true
    (Hashtbl.length r_p2.Ropaware.Ropdissector.blocks
     < Hashtbl.length r_plain.Ropaware.Ropdissector.blocks);
  Alcotest.(check bool) "p2 leaves unresolved updates" true
    (r_p2.Ropaware.Ropdissector.unresolved > 0)

let test_gadget_guess_confusion_explodes () =
  let plain = compile_rop branchy_prog [ "target" ] in
  let conf =
    compile_rop
      ~config:{ (Ropc.Config.plain ()) with
                Ropc.Config.gadget_confusion = true;
                skew_prob = 40; imm_confusion_prob = 60 }
      branchy_prog [ "target" ]
  in
  let guess r =
    let addr, len, _ = chain_info r in
    (Ropaware.Ropdissector.gadget_guess ~stride:1 r.Ropc.Rewriter.image
       ~chain_addr:addr ~chain_len:len).Ropaware.Ropdissector.candidates
    * 1000 / len
  in
  let density_plain = guess plain in
  let density_conf = guess conf in
  Alcotest.(check bool)
    (Printf.sprintf "candidate density: confusion %d/1k > plain %d/1k"
       density_conf density_plain)
    true (density_conf > density_plain)

let () =
  Alcotest.run "attacks"
    [ ("tds",
       [ Alcotest.test_case "native trace" `Quick test_tds_native;
         Alcotest.test_case "rop dispatch removed" `Quick test_tds_rop_dispatch_removed;
         Alcotest.test_case "p3 survives tds" `Quick test_tds_p3_survives ]);
      ("ropmemu",
       [ Alcotest.test_case "explores plain rop" `Quick test_ropmemu_explores_plain;
         Alcotest.test_case "blocked by p2" `Quick test_ropmemu_blocked_by_p2 ]);
      ("ropdissector",
       [ Alcotest.test_case "recovers plain cfg" `Quick test_ropdissector_plain;
         Alcotest.test_case "blocked by p2" `Quick test_ropdissector_blocked_by_p2;
         Alcotest.test_case "confusion explodes guessing" `Quick
           test_gadget_guess_confusion_explodes ]) ]
