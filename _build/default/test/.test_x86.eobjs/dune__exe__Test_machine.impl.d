test/test_machine.ml: Alcotest Bytes Hashtbl Int64 List Machine QCheck QCheck_alcotest X86
