test/test_workloads.ml: Alcotest List Minic Printf Result Ropc Runner
