test/test_x86.ml: Alcotest Bytes Int64 List QCheck QCheck_alcotest X86
