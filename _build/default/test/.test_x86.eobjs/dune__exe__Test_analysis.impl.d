test/test_analysis.ml: Alcotest Analysis List Minic X86
