test/test_vmobf.ml: Alcotest Int64 List Minic Option Printf Ropc Runner Vmobf
