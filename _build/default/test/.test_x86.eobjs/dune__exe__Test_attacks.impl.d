test/test_attacks.ml: Alcotest Hashtbl List Minic Printf Ropaware Ropc Taint
