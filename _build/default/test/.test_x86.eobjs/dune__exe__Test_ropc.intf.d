test/test_ropc.mli:
