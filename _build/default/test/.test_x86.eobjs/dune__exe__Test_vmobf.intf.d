test/test_vmobf.mli:
