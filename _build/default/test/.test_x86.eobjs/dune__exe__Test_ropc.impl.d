test/test_ropc.ml: Alcotest Int64 Lazy List Minic Option Printf QCheck QCheck_alcotest Ropc Runner String
