test/test_infra.mli:
