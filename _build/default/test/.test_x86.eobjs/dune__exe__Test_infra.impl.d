test/test_infra.ml: Alcotest Asm Bytes Char Finder Gadget Image Int64 List Machine Pool QCheck QCheck_alcotest Ropc Runner Util X86
