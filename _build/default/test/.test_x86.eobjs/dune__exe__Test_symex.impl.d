test/test_symex.ml: Alcotest Array Hashtbl Int64 Lazy List Minic Printf QCheck QCheck_alcotest Ropc Runner Symex X86
