test/test_minic.ml: Alcotest Image Int64 Lazy List Machine Minic Printf QCheck QCheck_alcotest Runner X86
