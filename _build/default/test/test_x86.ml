(* Tests for the x64-lite ISA: encoder/decoder round-trip, operand edge
   cases, and decode totality at arbitrary offsets. *)

open X86.Isa

(* --- generators -------------------------------------------------------- *)

let gen_reg = QCheck.Gen.map reg_of_index (QCheck.Gen.int_range 0 15)
let gen_width = QCheck.Gen.map width_of_index (QCheck.Gen.int_range 0 3)
let gen_cc = QCheck.Gen.map cc_of_index (QCheck.Gen.int_range 0 15)

let gen_disp =
  QCheck.Gen.oneof
    [ QCheck.Gen.map Int64.of_int (QCheck.Gen.int_range (-128) 127);
      QCheck.Gen.map Int64.of_int (QCheck.Gen.int_range (-2000000) 2000000) ]

let gen_mem =
  let open QCheck.Gen in
  let* base = opt gen_reg in
  let* index = opt (pair gen_reg (oneofl [ 1; 2; 4; 8 ])) in
  let* disp = gen_disp in
  return { base; index; disp }

let gen_imm =
  QCheck.Gen.oneof
    [ QCheck.Gen.map Int64.of_int (QCheck.Gen.int_range (-128) 127);
      QCheck.Gen.map Int64.of_int (QCheck.Gen.int_range (-2000000000) 2000000000);
      QCheck.Gen.ui64 ]

let gen_operand =
  QCheck.Gen.oneof
    [ QCheck.Gen.map (fun r -> Reg r) gen_reg;
      QCheck.Gen.map (fun v -> Imm v) gen_imm;
      QCheck.Gen.map (fun m -> Mem m) gen_mem ]

let gen_dst =
  QCheck.Gen.oneof
    [ QCheck.Gen.map (fun r -> Reg r) gen_reg;
      QCheck.Gen.map (fun m -> Mem m) gen_mem ]

(* dst/src pair avoiding mem-to-mem *)
let gen_dst_src =
  let open QCheck.Gen in
  let* d = gen_dst in
  let* s = gen_operand in
  match d, s with
  | Mem _, Mem _ -> return (d, Reg RAX)
  | _ -> return (d, s)

let gen_instr =
  let open QCheck.Gen in
  oneof
    [ return Nop; return Ret; return Leave; return Hlt;
      (let* w = gen_width in
       let* d, s = gen_dst_src in
       return (Mov (w, d, s)));
      (let* w = gen_width in
       let* d = gen_dst in
       let* s = gen_dst in
       match d, s with
       | Mem _, Mem _ -> return (Xchg (w, d, Reg RCX))
       | _ -> return (Xchg (w, d, s)));
      (let* o =
         oneofl [ Add; Sub; And; Or; Xor; Adc; Sbb; Cmp; Test ]
       in
       let* w = gen_width in
       let* d, s = gen_dst_src in
       return (Alu (o, w, d, s)));
      (let* o = oneofl [ Neg; Not; Inc; Dec ] in
       let* w = gen_width in
       let* d = gen_dst in
       return (Unary (o, w, d)));
      (let* w = gen_width in
       let* r = gen_reg in
       let* s = gen_operand in
       return (Imul2 (w, r, s)));
      (let* o = oneofl [ Mul; Imul1; Div; Idiv ] in
       let* s = gen_dst in
       return (MulDiv (o, s)));
      (let* o = oneofl [ Shl; Shr; Sar; Rol; Ror ] in
       let* w = gen_width in
       let* d = gen_dst in
       let* c = oneof [ return S_cl; map (fun n -> S_imm n) (int_range 0 255) ] in
       return (Shift (o, w, d, c)));
      (let* c = gen_cc in
       let* r = gen_reg in
       let* s = gen_operand in
       return (Cmov (c, r, s)));
      (let* c = gen_cc in
       let* d = gen_dst in
       return (Setcc (c, d)));
      (let* r = gen_reg in
       let* m = gen_mem in
       return (Lea (r, m)));
      (let* o = gen_operand in
       return (Push o));
      (let* d = gen_dst in
       return (Pop d));
      (let* d = int_range (-1000000) 1000000 in
       return (Jmp (J_rel d)));
      (let* o = gen_dst in
       return (Jmp (J_op o)));
      (let* d = int_range (-1000000) 1000000 in
       return (Call (J_rel d)));
      (let* o = gen_dst in
       return (Call (J_op o)));
      (let* c = gen_cc in
       let* d = int_range (-1000000) 1000000 in
       return (Jcc (c, d)));
      (let* combo = int_range 0 5 in
       let dw, sw = ext_combo_of_index combo in
       let* r = gen_reg in
       let* s = gen_operand in
       return (Movzx (dw, sw, r, s)));
      (let* combo = int_range 0 5 in
       let dw, sw = ext_combo_of_index combo in
       let* r = gen_reg in
       let* s = gen_operand in
       return (Movsx (dw, sw, r, s))) ]

let arb_instr = QCheck.make ~print:X86.Pp.instr_str gen_instr

(* --- properties --------------------------------------------------------- *)

(* Imm8/Imm32 decode back sign-extended, so round-trip equality holds on the
   decoded semantic value. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trip" ~count:2000 arb_instr
    (fun i ->
       let b = X86.Encode.encode i in
       match X86.Decode.decode b 0 with
       | Some (i', len) -> i' = i && len = Bytes.length b
       | None -> false)

let prop_roundtrip_wide =
  QCheck.Test.make ~name:"round-trip with wide immediates" ~count:1000 arb_instr
    (fun i ->
       let b = X86.Encode.encode ~wide_imm:true i in
       match X86.Decode.decode b 0 with
       | Some (i', len) -> i' = i && len = Bytes.length b
       | None -> false)

(* Decoding never raises, whatever the bytes and offset. *)
let prop_decode_total =
  QCheck.Test.make ~name:"decode total on random bytes" ~count:2000
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 32)) small_nat)
    (fun (s, off) ->
       let b = Bytes.of_string s in
       match X86.Decode.decode b off with
       | Some (_, len) -> len > 0 && len <= Bytes.length b
       | None -> true)

(* A concatenated stream decodes back to the same instruction list. *)
let prop_stream =
  QCheck.Test.make ~name:"linear sweep of concatenated stream" ~count:300
    QCheck.(make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 20) gen_instr))
    (fun instrs ->
       let b = X86.Encode.encode_list instrs in
       let decoded = X86.Decode.decode_all b in
       List.length decoded = List.length instrs
       && List.for_all2 (fun (_, i, _) i' -> i = i') decoded instrs)

(* --- unit tests ---------------------------------------------------------- *)

let test_lengths () =
  Alcotest.(check int) "ret is 1 byte" 1 (X86.Encode.length Ret);
  Alcotest.(check int) "nop is 1 byte" 1 (X86.Encode.length Nop);
  Alcotest.(check int) "pop reg is 2 bytes" 2 (X86.Encode.length (Pop (Reg RAX)));
  Alcotest.(check int) "jmp rel is 5 bytes" 5 (X86.Encode.length (Jmp (J_rel 4)));
  (* wide imm: opcode + dst reg byte + imm mode byte + 8 bytes *)
  Alcotest.(check int) "mov reg, imm64 wide" 11
    (X86.Encode.length ~wide_imm:true (Mov (W64, Reg RAX, Imm 5L)))

let test_invalid_opcode () =
  let b = Bytes.of_string "\xFF\xFF\xFF" in
  Alcotest.(check bool) "0xFF invalid" true (X86.Decode.decode b 0 = None);
  let b0 = Bytes.of_string "\x00" in
  Alcotest.(check bool) "0x00 invalid" true (X86.Decode.decode b0 0 = None)

let test_truncated () =
  (* jmp rel32 needs 4 displacement bytes *)
  let b = Bytes.of_string "\x63\x01\x02" in
  Alcotest.(check bool) "truncated jmp" true (X86.Decode.decode b 0 = None)

let test_mem_to_mem_rejected () =
  (* craft: mov w64 [rax+0], [rcx+0]: opcode 0x0B, mode 0x10|0 disp8 0, mode 0x10|1 disp8 0 *)
  let b = Bytes.of_string "\x0B\x10\x00\x11\x00" in
  Alcotest.(check bool) "mem-to-mem mov rejected" true (X86.Decode.decode b 0 = None)

let test_pp_smoke () =
  let s = X86.Pp.instr_str (Alu (Add, W64, Reg RAX, Imm 16L)) in
  Alcotest.(check string) "pp add" "add rax, 0x10" s;
  let s2 = X86.Pp.instr_str (Mov (W64, Reg RCX, Mem (mem_b RSP 8))) in
  Alcotest.(check string) "pp mov mem" "mov rcx, qword ptr [rsp + 0x8]" s2

let () =
  let qt = List.map QCheck_alcotest.to_alcotest
      [ prop_roundtrip; prop_roundtrip_wide; prop_decode_total; prop_stream ]
  in
  Alcotest.run "x86"
    [ ("roundtrip", qt);
      ("unit",
       [ Alcotest.test_case "encoding lengths" `Quick test_lengths;
         Alcotest.test_case "invalid opcodes" `Quick test_invalid_opcode;
         Alcotest.test_case "truncated stream" `Quick test_truncated;
         Alcotest.test_case "mem-to-mem rejected" `Quick test_mem_to_mem_rejected;
         Alcotest.test_case "printer" `Quick test_pp_smoke ]) ]
