(* Tests for CFG reconstruction and liveness on compiler output. *)

open Minic.Ast

let fact_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "fact"
        [ set "r" (c 1);
          For (set "i" (c 1), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "r" (Bin (Mul, v "r", v "i")) ]);
          Return (v "r") ] ]

let switch_prog =
  program
    [ func ~params:[ "n" ] "classify"
        [ Switch (v "n",
                  [ (0, [ Return (c 100) ]); (1, [ Return (c 101) ]);
                    (2, [ Return (c 102) ]); (3, [ Return (c 103) ]);
                    (4, [ Return (c 104) ]); (6, [ Return (c 106) ]) ],
                  [ Return (c (-1)) ]) ] ]

let test_cfg_fact () =
  let img = Minic.Codegen.compile fact_prog in
  let cfg = Analysis.Cfg.of_image img "fact" in
  Alcotest.(check bool) "not failed" false cfg.Analysis.Cfg.failed;
  Alcotest.(check bool) "several blocks" true (List.length cfg.Analysis.Cfg.order >= 3);
  (* entry block exists and every successor is a known block *)
  List.iter
    (fun a ->
       let b = Analysis.Cfg.block_exn cfg a in
       List.iter
         (fun s -> ignore (Analysis.Cfg.block_exn cfg s))
         (Analysis.Cfg.successors b))
    cfg.Analysis.Cfg.order;
  (* exactly one ret block for this function *)
  let rets =
    List.filter
      (fun a ->
         match (Analysis.Cfg.block_exn cfg a).Analysis.Cfg.b_term with
         | Analysis.Cfg.T_ret -> true
         | _ -> false)
      cfg.Analysis.Cfg.order
  in
  Alcotest.(check bool) "has ret block" true (List.length rets >= 1)

let test_cfg_switch_table () =
  let img = Minic.Codegen.compile switch_prog in
  let cfg = Analysis.Cfg.of_image img "classify" in
  Alcotest.(check bool) "not failed" false cfg.Analysis.Cfg.failed;
  let tables =
    List.filter_map
      (fun a ->
         match (Analysis.Cfg.block_exn cfg a).Analysis.Cfg.b_term with
         | Analysis.Cfg.T_jmp_table { entries; _ } -> Some (List.length entries)
         | _ -> None)
      cfg.Analysis.Cfg.order
  in
  match tables with
  | [ n ] ->
    (* cases 0..6 -> 7 table entries *)
    Alcotest.(check int) "table entries" 7 n
  | _ -> Alcotest.failf "expected exactly one jump table, found %d" (List.length tables)

let test_liveness_flags () =
  let img = Minic.Codegen.compile fact_prog in
  let cfg = Analysis.Cfg.of_image img "fact" in
  let live = Analysis.Liveness.compute cfg in
  (* find a cmp/test instruction whose block ends with jcc: flags must be
     live after it *)
  let found = ref false in
  List.iter
    (fun a ->
       let b = Analysis.Cfg.block_exn cfg a in
       match b.Analysis.Cfg.b_term with
       | Analysis.Cfg.T_jcc _ ->
         (match List.rev b.Analysis.Cfg.b_instrs with
          | last :: _ ->
            if Analysis.Reguse.clobbers_flags last.Analysis.Cfg.instr then begin
              found := true;
              Alcotest.(check bool) "flags live after test"
                true (Analysis.Liveness.flags_live_after live last.Analysis.Cfg.addr)
            end
          | [] -> ())
       | _ -> ())
    cfg.Analysis.Cfg.order;
  Alcotest.(check bool) "found a flag-setting instr before jcc" true !found

let test_liveness_param () =
  (* at entry, the parameter register RDI must be live *)
  let img = Minic.Codegen.compile fact_prog in
  let cfg = Analysis.Cfg.of_image img "fact" in
  let live = Analysis.Liveness.compute cfg in
  let entry_block = Analysis.Cfg.block_exn cfg cfg.Analysis.Cfg.entry in
  match entry_block.Analysis.Cfg.b_instrs with
  | first :: _ ->
    let out = Analysis.Liveness.live_out_at live first.Analysis.Cfg.addr in
    (* after 'push rbp', rdi (param n) still live *)
    Alcotest.(check bool) "rdi live at entry" true
      (Analysis.Regset.mem_reg out X86.Isa.RDI)
  | [] -> Alcotest.fail "empty entry block"

let test_cfg_randomfuns () =
  (* CFG reconstruction succeeds on the whole corpus *)
  let corpus = Minic.Randomfuns.corpus () in
  List.iter
    (fun (t : Minic.Randomfuns.t) ->
       let img = Minic.Codegen.compile t.prog in
       let cfg = Analysis.Cfg.of_image img "target" in
       Alcotest.(check bool) "cfg ok" false cfg.Analysis.Cfg.failed)
    corpus

let () =
  Alcotest.run "analysis"
    [ ("cfg",
       [ Alcotest.test_case "factorial blocks" `Quick test_cfg_fact;
         Alcotest.test_case "switch jump table" `Quick test_cfg_switch_table;
         Alcotest.test_case "randomfuns corpus" `Slow test_cfg_randomfuns ]);
      ("liveness",
       [ Alcotest.test_case "flags live before jcc" `Quick test_liveness_flags;
         Alcotest.test_case "param live at entry" `Quick test_liveness_param ]) ]
