(* Tests for the mini-C compiler: compiled code on the emulator must agree
   with the reference interpreter, on hand-written programs and on the full
   RandomFuns corpus. *)

open Minic.Ast

let run_compiled prog fname args =
  let img = Minic.Codegen.compile prog in
  let r = Runner.call_exn img ~func:fname ~args in
  r.Runner.rax

let check_both name prog fname args expected =
  let interp = Minic.Interp.run prog fname args in
  let compiled = run_compiled prog fname args in
  Alcotest.(check int64) (name ^ " (interp)") expected interp;
  Alcotest.(check int64) (name ^ " (compiled)") expected compiled

(* --- hand-written programs ---------------------------------------------- *)

let fact_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "fact"
        [ set "r" (c 1);
          For (set "i" (c 1), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "r" (Bin (Mul, v "r", v "i")) ]);
          Return (v "r") ] ]

let fib_prog =
  program
    [ func ~params:[ "n" ] "fib"
        [ If (Bin (Lts, v "n", c 2),
              [ Return (v "n") ],
              [ Return
                  (Bin (Add,
                        call "fib" [ Bin (Sub, v "n", c 1) ],
                        call "fib" [ Bin (Sub, v "n", c 2) ])) ]) ] ]

let switch_prog =
  program
    [ func ~params:[ "n" ] "classify"
        [ Switch (v "n",
                  [ (0, [ Return (c 100) ]);
                    (1, [ Return (c 101) ]);
                    (2, [ Return (c 102) ]);
                    (3, [ Return (c 103) ]);
                    (4, [ Return (c 104) ]);
                    (6, [ Return (c 106) ]) ],
                  [ Return (c (-1)) ]) ] ]

let array_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "i"; "sum" ] ~arrays:[ ("buf", 64) ] "arrsum"
        [ For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ store8 (Bin (Add, Addr_local "buf", v "i"))
                   (Bin (Mul, v "i", v "i")) ]);
          set "sum" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "sum"
                   (Bin (Add, v "sum",
                         load8 (Bin (Add, Addr_local "buf", v "i")))) ]);
          Return (v "sum") ] ]

let global_prog =
  program
    ~globals:[ G_bytes ("tbl", "\x05\x0A\x0F\x14") ]
    [ func ~params:[ "i" ] "lookup"
        [ Return (load8 (Bin (Add, Addr_global "tbl", v "i"))) ] ]

let test_fact () = check_both "fact 10" fact_prog "fact" [ 10L ] 3628800L
let test_fib () = check_both "fib 12" fib_prog "fib" [ 12L ] 144L

let test_switch () =
  List.iter
    (fun (n, e) -> check_both "switch" switch_prog "classify" [ n ] e)
    [ (0L, 100L); (1L, 101L); (2L, 102L); (3L, 103L); (4L, 104L); (6L, 106L);
      (5L, -1L); (7L, -1L); (100L, -1L); (-3L, -1L) ]

let test_array () =
  (* sum of i^2 for i<8 mod 256 per-byte truncation: values < 256 anyway *)
  check_both "array sum" array_prog "arrsum" [ 8L ] 140L

let test_global () =
  check_both "global load" global_prog "lookup" [ 2L ] 15L

let test_unsigned_ops () =
  let prog =
    program
      [ func ~params:[ "a"; "b" ] "f"
          [ Return
              (Bin (Add,
                    Bin (Divu, v "a", v "b"),
                    Bin (Mul, Bin (Ltu, v "a", v "b"), c 1000))) ] ]
  in
  check_both "unsigned div" prog "f" [ -1L; 16L ] 0x0FFFFFFFFFFFFFFFL;
  check_both "unsigned lt" prog "f" [ 1L; -1L ] 1000L

let test_short_circuit () =
  (* b != 0 is guarded by the && so no division by zero *)
  let prog =
    program
      [ func ~params:[ "a"; "b" ] "f"
          [ If (Bin (Land, Bin (Ne, v "b", c 0),
                    Bin (Gts, Bin (Divs, v "a", v "b"), c 3)),
                [ Return (c 1) ], [ Return (c 0) ]) ] ]
  in
  check_both "short-circuit false" prog "f" [ 10L; 0L ] 0L;
  check_both "short-circuit true" prog "f" [ 10L; 2L ] 1L

let test_narrow_memory () =
  let prog =
    program
      [ func ~params:[ "x" ] ~arrays:[ ("b", 16) ] "f"
          [ Store (X86.Isa.W32, Addr_local "b", v "x");
            Store (X86.Isa.W16, Bin (Add, Addr_local "b", c 8), v "x");
            Return
              (Bin (Add,
                    Load (X86.Isa.W32, true, Addr_local "b"),
                    Load (X86.Isa.W16, false, Bin (Add, Addr_local "b", c 8)))) ] ]
  in
  check_both "narrow store/load" prog "f" [ 0xFFFFFFFFL ] (Int64.add (-1L) 0xFFFFL);
  check_both "narrow positive" prog "f" [ 0x12345L ] (Int64.add 0x12345L 0x2345L)

(* --- RandomFuns corpus --------------------------------------------------- *)

let test_randomfuns_secret () =
  (* every generated function accepts its secret and the compiled version
     agrees with the interpreter *)
  let corpus = Minic.Randomfuns.corpus ~point_test:true () in
  Alcotest.(check int) "72 functions" 72 (List.length corpus);
  List.iteri
    (fun i (t : Minic.Randomfuns.t) ->
       match t.secret with
       | None -> Alcotest.fail "missing secret"
       | Some s ->
         let r_interp = Minic.Interp.run t.prog "target" [ s ] in
         Alcotest.(check int64) (Printf.sprintf "f%d accepts secret" i) 1L r_interp;
         let r_comp = run_compiled t.prog "target" [ s ] in
         Alcotest.(check int64) (Printf.sprintf "f%d compiled accepts" i) 1L r_comp)
    corpus

let corpus_lazy = lazy (Minic.Randomfuns.corpus ~point_test:true ())

let prop_randomfuns_differential =
  QCheck.Test.make ~name:"compiled = interpreted on random inputs" ~count:60
    QCheck.(pair (int_range 0 71) (map Int64.of_int int))
    (fun (idx, input) ->
       let t = List.nth (Lazy.force corpus_lazy) idx in
       let input = Int64.logand input t.Minic.Randomfuns.input_mask in
       let a = Minic.Interp.run t.Minic.Randomfuns.prog "target" [ input ] in
       let b = run_compiled t.Minic.Randomfuns.prog "target" [ input ] in
       a = b)

let test_coverage_probes () =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~control_index:4 ~point_test:false
         ~coverage_probes:true ())
  in
  Alcotest.(check bool) "has probes" true (t.n_probes > 0);
  (* run and check that some probes fired in compiled execution *)
  let img = Minic.Codegen.compile t.prog in
  let mem = Image.load img in
  let r = Runner.call_exn ~mem img ~func:"target" ~args:[ 42L ] in
  let cov_addr = Image.symbol_addr img "__cov" in
  let fired = ref 0 in
  for i = 0 to t.n_probes - 1 do
    if Machine.Memory.read r.Runner.cpu.Machine.Cpu.mem
        (Int64.add cov_addr (Int64.of_int i)) 1 = 1L
    then incr fired
  done;
  Alcotest.(check bool) "some probes fired" true (!fired > 0)

let () =
  Alcotest.run "minic"
    [ ("programs",
       [ Alcotest.test_case "factorial" `Quick test_fact;
         Alcotest.test_case "fibonacci (recursion)" `Quick test_fib;
         Alcotest.test_case "switch jump table" `Quick test_switch;
         Alcotest.test_case "local arrays" `Quick test_array;
         Alcotest.test_case "globals" `Quick test_global;
         Alcotest.test_case "unsigned ops" `Quick test_unsigned_ops;
         Alcotest.test_case "short circuit" `Quick test_short_circuit;
         Alcotest.test_case "narrow memory" `Quick test_narrow_memory ]);
      ("randomfuns",
       [ Alcotest.test_case "corpus secrets" `Slow test_randomfuns_secret;
         Alcotest.test_case "coverage probes" `Quick test_coverage_probes;
         QCheck_alcotest.to_alcotest prop_randomfuns_differential ]) ]
