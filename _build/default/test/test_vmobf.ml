(* VM obfuscation preserves semantics, at every nesting depth and with
   implicit VPC loads, both under the interpreter and compiled+emulated;
   ROP rewriting composes on top (§IV-C). *)

open Minic.Ast

let fact_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "fact"
        [ set "r" (c 1);
          For (set "i" (c 1), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "r" (Bin (Mul, v "r", v "i")) ]);
          Return (v "r") ] ]

let run_compiled prog fname args =
  let img = Minic.Codegen.compile prog in
  (Runner.call_exn ~fuel:200_000_000 img ~func:fname ~args).Runner.rax

let test_one_layer () =
  let t = Vmobf.virtualize ~seed:3 fact_prog "fact" in
  Alcotest.(check bool) "several opcodes" true (t.Vmobf.n_opcodes >= 5);
  List.iter
    (fun n ->
       Alcotest.(check int64) "vm fact"
         (Minic.Interp.run fact_prog "fact" [ n ])
         (Minic.Interp.run t.Vmobf.prog "fact" [ n ]);
       Alcotest.(check int64) "vm fact compiled"
         (Minic.Interp.run fact_prog "fact" [ n ])
         (run_compiled t.Vmobf.prog "fact" [ n ]))
    [ 0L; 1L; 5L; 10L ]

let test_layers_and_implicit () =
  List.iter
    (fun (layers, implicit) ->
       let prog = Vmobf.layered ~implicit ~layers ~seed:7 fact_prog "fact" in
       Alcotest.(check int64)
         (Printf.sprintf "%dVM fact(6)" layers)
         720L
         (run_compiled prog "fact" [ 6L ]))
    [ (1, Vmobf.Imp_none); (1, Vmobf.Imp_all); (2, Vmobf.Imp_none);
      (2, Vmobf.Imp_last); (2, Vmobf.Imp_all); (3, Vmobf.Imp_none) ]

let test_vm_different_seeds_differ () =
  let t1 = Vmobf.virtualize ~seed:1 fact_prog "fact" in
  let t2 = Vmobf.virtualize ~seed:2 fact_prog "fact" in
  (* the bytecode streams should differ (random opcode assignment) *)
  let g prog =
    List.filter_map
      (function G_quads (_, qs) -> Some qs | G_bytes _ | G_zero _ -> None)
      prog.globals
  in
  Alcotest.(check bool) "different encodings" true
    (g t1.Vmobf.prog <> g t2.Vmobf.prog)

let test_rop_on_vm () =
  (* the paper's composition: ROP-rewrite a VM-obfuscated function *)
  let vm = Vmobf.layered ~layers:1 ~seed:5 fact_prog "fact" in
  let img = Minic.Codegen.compile vm in
  let r =
    Ropc.Rewriter.rewrite img ~functions:[ "fact" ]
      ~config:(Ropc.Config.rop_k 0.05)
  in
  (match List.assoc "fact" r.Ropc.Rewriter.funcs with
   | Ok _ -> ()
   | Error e ->
     Alcotest.failf "rop-on-vm failed: %s" (Ropc.Rewriter.failure_to_string e));
  List.iter
    (fun n ->
       Alcotest.(check int64) "rop(vm(fact))"
         (Minic.Interp.run fact_prog "fact" [ n ])
         (Runner.call_exn ~fuel:200_000_000 r.Ropc.Rewriter.image
            ~func:"fact" ~args:[ n ]).Runner.rax)
    [ 0L; 4L; 7L ]

let test_vm_randomfuns () =
  let corpus = Minic.Randomfuns.corpus () in
  List.iteri
    (fun i (t : Minic.Randomfuns.t) ->
       if i mod 9 = 0 then begin
         let vm = Vmobf.layered ~layers:1 ~seed:i ~implicit:Vmobf.Imp_all t.prog "target" in
         List.iter
           (fun x ->
              let x = Int64.logand x t.input_mask in
              Alcotest.(check int64) (Printf.sprintf "vm f%d" i)
                (Minic.Interp.run t.prog "target" [ x ])
                (run_compiled vm "target" [ x ]))
           [ Option.get t.secret; 0L; 0x33L ]
       end)
    corpus

let () =
  Alcotest.run "vmobf"
    [ ("vm",
       [ Alcotest.test_case "one layer" `Quick test_one_layer;
         Alcotest.test_case "nesting and implicit vpc" `Quick test_layers_and_implicit;
         Alcotest.test_case "seed diversity" `Quick test_vm_different_seeds_differ;
         Alcotest.test_case "rop on top of vm" `Quick test_rop_on_vm;
         Alcotest.test_case "randomfuns sample" `Slow test_vm_randomfuns ]) ]
