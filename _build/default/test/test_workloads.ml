(* Workload programs: clbg analogs, base64 case study and the corpus compile,
   run, and survive ROP rewriting with unchanged results. *)

let run img fname args = (Runner.call_exn ~fuel:500_000_000 img ~func:fname ~args).Runner.rax

let test_clbg_native () =
  List.iter
    (fun (name, prog, _fns, n) ->
       let interp = Minic.Interp.run ~fuel:100_000_000 prog "bench" [ n ] in
       let compiled = run (Minic.Codegen.compile prog) "bench" [ n ] in
       Alcotest.(check int64) (name ^ " interp=compiled") interp compiled)
    Minic.Clbg.all

let test_clbg_rop () =
  List.iter
    (fun (name, prog, fns, n) ->
       let img = Minic.Codegen.compile prog in
       let native = run img "bench" [ n ] in
       let r =
         Ropc.Rewriter.rewrite img ~functions:fns
           ~config:(Ropc.Config.rop_k 0.05)
       in
       List.iter
         (fun (f, res) ->
            match res with
            | Ok _ -> ()
            | Error e ->
              Alcotest.failf "%s/%s: %s" name f (Ropc.Rewriter.failure_to_string e))
         r.Ropc.Rewriter.funcs;
       Alcotest.(check int64) (name ^ " rop=native") native
         (run r.Ropc.Rewriter.image "bench" [ n ]))
    Minic.Clbg.all

let test_base64 () =
  let prog = Minic.Programs.base64_program () in
  let img = Minic.Codegen.compile prog in
  Alcotest.(check int64) "secret accepted" 1L
    (run img "b64_check" [ Minic.Programs.secret_arg ]);
  Alcotest.(check int64) "wrong input rejected" 0L
    (run img "b64_check" [ 0x123456L ]);
  (* rewritten *)
  let r =
    Ropc.Rewriter.rewrite img ~functions:[ "b64_check"; "b64_encode" ]
      ~config:(Ropc.Config.rop_k 0.25)
  in
  Alcotest.(check int64) "rop secret accepted" 1L
    (run r.Ropc.Rewriter.image "b64_check" [ Minic.Programs.secret_arg ]);
  Alcotest.(check int64) "rop wrong rejected" 0L
    (run r.Ropc.Rewriter.image "b64_check" [ 99L ])

let test_corpus_runs () =
  let img = Minic.Corpus.compile () in
  Alcotest.(check int64) "gcd" 6L (run img "gcd_" [ 54L; 24L ]);
  Alcotest.(check int64) "popcount" 3L (run img "popcount_" [ 0b10101L ]);
  Alcotest.(check int64) "isqrt" 11L (run img "isqrt_" [ 121L ]);
  Alcotest.(check int64) "fib_iter" 55L (run img "fib_iter_" [ 10L ]);
  Alcotest.(check int64) "hexval a" 10L (run img "hexval_" [ 97L ]);
  Alcotest.(check int64) "hexval 7" 7L (run img "hexval_" [ 55L ]);
  Alcotest.(check int64) "leap 2000" 1L (run img "leap_" [ 2000L ]);
  Alcotest.(check int64) "leap 1900" 0L (run img "leap_" [ 1900L ]);
  Alcotest.(check int64) "digits" 4L (run img "digits_" [ 1234L ]);
  Alcotest.(check int64) "powmod" 445L (run img "powmod_" [ 4L; 13L; 497L ]);
  Alcotest.(check int64) "asm tiny" 7L (run img "asm_tiny" [ 7L ])

let test_corpus_rewrite_coverage () =
  (* the deployability experiment in miniature: most functions rewrite, the
     pathological ones fail with the documented reasons *)
  let img = Minic.Corpus.compile () in
  let r =
    Ropc.Rewriter.rewrite img ~functions:Minic.Corpus.all_names
      ~config:(Ropc.Config.plain ())
  in
  let ok, failed =
    List.partition (fun (_, res) -> Result.is_ok res) r.Ropc.Rewriter.funcs
  in
  let frac = float_of_int (List.length ok) /. float_of_int (List.length r.Ropc.Rewriter.funcs) in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.1f%% (%d/%d)" (frac *. 100.) (List.length ok)
       (List.length r.Ropc.Rewriter.funcs))
    true (frac > 0.85);
  (* the seeded failures are among the failing ones *)
  List.iter
    (fun name ->
       Alcotest.(check bool) (name ^ " fails") true
         (List.mem_assoc name failed))
    [ "asm_push_rsp"; "asm_pop_mem"; "asm_tiny" ];
  (* rewritten functions still behave *)
  Alcotest.(check int64) "gcd after rewrite" 6L
    (run r.Ropc.Rewriter.image "gcd_" [ 54L; 24L ]);
  Alcotest.(check int64) "powmod after rewrite" 445L
    (run r.Ropc.Rewriter.image "powmod_" [ 4L; 13L; 497L ])

let () =
  Alcotest.run "workloads"
    [ ("clbg",
       [ Alcotest.test_case "native" `Quick test_clbg_native;
         Alcotest.test_case "rop" `Slow test_clbg_rop ]);
      ("base64", [ Alcotest.test_case "case study" `Quick test_base64 ]);
      ("corpus",
       [ Alcotest.test_case "runs" `Quick test_corpus_runs;
         Alcotest.test_case "rewrite coverage" `Quick test_corpus_rewrite_coverage ]) ]
