(* The central invariant of the whole system: rewriting a function into a ROP
   chain preserves its observable behaviour.  Differential tests run the
   native and rewritten images on the same inputs and compare results, across
   all predicate configurations. *)

open Minic.Ast

let rewrite_img ?(config = Ropc.Config.plain ()) prog fnames =
  let img = Minic.Codegen.compile prog in
  let r = Ropc.Rewriter.rewrite img ~functions:fnames ~config in
  List.iter
    (fun (f, res) ->
       match res with
       | Ok _ -> ()
       | Error e ->
         Alcotest.failf "rewrite of %s failed: %s" f
           (Ropc.Rewriter.failure_to_string e))
    r.Ropc.Rewriter.funcs;
  (img, r.Ropc.Rewriter.image)

let run img fname args =
  (Runner.call_exn ~fuel:100_000_000 img ~func:fname ~args).Runner.rax

let check_same ?config name prog fname inputs =
  let native_img, rop_img = rewrite_img ?config prog [ fname ] in
  List.iter
    (fun args ->
       let n = run native_img fname args in
       let r = run rop_img fname args in
       if n <> r then
         Alcotest.failf "%s: native=%Ld rop=%Ld on args %s" name n r
           (String.concat "," (List.map Int64.to_string args)))
    inputs

(* --- programs -------------------------------------------------------------- *)

let fact_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "fact"
        [ set "r" (c 1);
          For (set "i" (c 1), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "r" (Bin (Mul, v "r", v "i")) ]);
          Return (v "r") ] ]

let fib_prog =
  program
    [ func ~params:[ "n" ] "fib"
        [ If (Bin (Lts, v "n", c 2),
              [ Return (v "n") ],
              [ Return
                  (Bin (Add,
                        call "fib" [ Bin (Sub, v "n", c 1) ],
                        call "fib" [ Bin (Sub, v "n", c 2) ])) ]) ] ]

let switch_prog =
  program
    [ func ~params:[ "n" ] "classify"
        [ Switch (v "n",
                  [ (0, [ Return (c 100) ]); (1, [ Return (c 101) ]);
                    (2, [ Return (c 102) ]); (3, [ Return (c 103) ]);
                    (4, [ Return (c 104) ]); (6, [ Return (c 106) ]) ],
                  [ Return (c (-1)) ]) ] ]

(* caller in ROP, callee native: exercises the stack-switching call *)
let mixed_prog =
  program
    [ func ~params:[ "x" ] "helper" [ Return (Bin (Mul, v "x", c 3)) ];
      func ~params:[ "n" ] ~locals:[ "acc"; "i" ] "driver"
        [ set "acc" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "acc" (Bin (Add, v "acc", call "helper" [ v "i" ])) ]);
          Return (v "acc") ] ]

let array_prog =
  program
    [ func ~params:[ "n" ] ~locals:[ "i"; "sum" ] ~arrays:[ ("buf", 64) ] "arrsum"
        [ For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ store8 (Bin (Add, Addr_local "buf", v "i"))
                   (Bin (Mul, v "i", v "i")) ]);
          set "sum" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "sum"
                   (Bin (Add, v "sum",
                         load8 (Bin (Add, Addr_local "buf", v "i")))) ]);
          Return (v "sum") ] ]

let inputs_n = [ [ 0L ]; [ 1L ]; [ 2L ]; [ 5L ]; [ 8L ] ]

(* --- plain encoding -------------------------------------------------------- *)

let test_plain_fact () = check_same "fact" fact_prog "fact" inputs_n
let test_plain_fib () = check_same "fib" fib_prog "fib" [ [ 0L ]; [ 1L ]; [ 7L ]; [ 10L ] ]

let test_plain_switch () =
  check_same "switch" switch_prog "classify"
    [ [ 0L ]; [ 1L ]; [ 2L ]; [ 3L ]; [ 4L ]; [ 5L ]; [ 6L ]; [ 7L ]; [ -1L ]; [ 100L ] ]

let test_plain_mixed () = check_same "mixed" mixed_prog "driver" inputs_n
let test_plain_array () = check_same "array" array_prog "arrsum" inputs_n

(* rewrite BOTH caller and callee: ROP -> ROP calls, re-pivoting *)
let test_rop_to_rop () =
  let native_img, rop_img = rewrite_img mixed_prog [ "helper"; "driver" ] in
  List.iter
    (fun args ->
       let n = run native_img "driver" args in
       let r = run rop_img "driver" args in
       Alcotest.(check int64) "rop->rop" n r)
    inputs_n

(* recursion through the stub: every activation re-pivots *)
let test_recursive_rop () =
  let native_img, rop_img = rewrite_img fib_prog [ "fib" ] in
  List.iter
    (fun n ->
       Alcotest.(check int64) "fib rop"
         (run native_img "fib" [ n ]) (run rop_img "fib" [ n ]))
    [ 0L; 1L; 5L; 10L ]

(* --- predicate configurations --------------------------------------------- *)

let all_configs =
  [ "plain", Ropc.Config.plain ();
    "p1", Ropc.Config.rop_k 0.0;
    "p1+p3for", Ropc.Config.rop_k 0.25;
    "p1+p3for-full", Ropc.Config.rop_k 1.0;
    "p1+p3arr",
    (let c = Ropc.Config.rop_k 0.5 in
     { c with Ropc.Config.p3 =
                Some { (Ropc.Config.default_p3 0.5) with
                       Ropc.Config.variant = Ropc.Config.P3_array } });
    "p1+p2", Ropc.Config.rop_k ~p2:true 0.0;
    "p1+p2+p3+gc", Ropc.Config.rop_k ~p2:true ~confusion:true 0.25;
    "gc-only",
    { (Ropc.Config.plain ()) with Ropc.Config.gadget_confusion = true } ]

let test_configs_fact () =
  List.iter
    (fun (name, config) ->
       check_same ~config ("fact/" ^ name) fact_prog "fact" inputs_n)
    all_configs

let test_configs_fib () =
  List.iter
    (fun (name, config) ->
       check_same ~config ("fib/" ^ name) fib_prog "fib" [ [ 6L ]; [ 9L ] ])
    all_configs

let test_configs_switch () =
  List.iter
    (fun (name, config) ->
       check_same ~config ("switch/" ^ name) switch_prog "classify"
         [ [ 0L ]; [ 3L ]; [ 5L ]; [ 6L ]; [ 9L ] ])
    all_configs

(* --- the full corpus, the paper's main targets ----------------------------- *)

let test_randomfuns_plain () =
  let corpus = Minic.Randomfuns.corpus () in
  List.iteri
    (fun i (t : Minic.Randomfuns.t) ->
       if i mod 6 = 0 then begin   (* every 6th to keep the suite fast *)
         let secret = Option.get t.secret in
         let native_img, rop_img = rewrite_img t.prog [ "target" ] in
         List.iter
           (fun x ->
              let x = Int64.logand x t.input_mask in
              Alcotest.(check int64)
                (Printf.sprintf "f%d(%Ld)" i x)
                (run native_img "target" [ x ])
                (run rop_img "target" [ x ]))
           [ secret; 0L; 1L; 0x5AL; 0x1234L ]
       end)
    corpus

let test_randomfuns_rop1 () =
  let corpus = Minic.Randomfuns.corpus () in
  let config = Ropc.Config.rop_k 0.25 in
  List.iteri
    (fun i (t : Minic.Randomfuns.t) ->
       if i mod 12 = 0 then begin
         let secret = Option.get t.secret in
         let native_img, rop_img = rewrite_img ~config t.prog [ "target" ] in
         List.iter
           (fun x ->
              let x = Int64.logand x t.input_mask in
              Alcotest.(check int64)
                (Printf.sprintf "f%d(%Ld)" i x)
                (run native_img "target" [ x ])
                (run rop_img "target" [ x ]))
           [ secret; 0L; 0xABCDL ]
       end)
    corpus

(* qcheck: random corpus function, random config, random input *)
let corpus_lazy = lazy (Minic.Randomfuns.corpus ())

let prop_differential =
  QCheck.Test.make ~name:"rop = native on random corpus inputs" ~count:40
    QCheck.(triple (int_range 0 71) (int_range 0 7) (map Int64.of_int int))
    (fun (idx, cfg_idx, input) ->
       let t = List.nth (Lazy.force corpus_lazy) idx in
       let _, config = List.nth all_configs cfg_idx in
       let input = Int64.logand input t.Minic.Randomfuns.input_mask in
       let native_img, rop_img = rewrite_img ~config t.prog [ "target" ] in
       run native_img "target" [ input ] = run rop_img "target" [ input ])

let () =
  Alcotest.run "ropc"
    [ ("plain",
       [ Alcotest.test_case "fact" `Quick test_plain_fact;
         Alcotest.test_case "fib" `Quick test_plain_fib;
         Alcotest.test_case "switch" `Quick test_plain_switch;
         Alcotest.test_case "mixed calls" `Quick test_plain_mixed;
         Alcotest.test_case "arrays" `Quick test_plain_array;
         Alcotest.test_case "rop-to-rop calls" `Quick test_rop_to_rop;
         Alcotest.test_case "recursion" `Quick test_recursive_rop ]);
      ("configs",
       [ Alcotest.test_case "fact all configs" `Quick test_configs_fact;
         Alcotest.test_case "fib all configs" `Quick test_configs_fib;
         Alcotest.test_case "switch all configs" `Quick test_configs_switch ]);
      ("corpus",
       [ Alcotest.test_case "randomfuns plain" `Slow test_randomfuns_plain;
         Alcotest.test_case "randomfuns rop_k" `Slow test_randomfuns_rop1;
         QCheck_alcotest.to_alcotest prop_differential ]) ]
