(* Infrastructure tests: deterministic RNG, gadget finder/pool, chain
   materializer, and the symbolic assembler/linker. *)

open X86.Isa

(* --- rng ------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Util.Rng.create 7 in
  let b = Util.Rng.create 7 in
  for _ = 0 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.next64 a) (Util.Rng.next64 b)
  done

let prop_rng_range =
  QCheck.Test.make ~name:"rng range stays in bounds" ~count:500
    QCheck.(pair small_nat (pair small_nat small_nat))
    (fun (seed, (lo0, span)) ->
       let rng = Util.Rng.create seed in
       let lo = lo0 and hi = lo0 + span in
       let v = Util.Rng.range rng lo hi in
       lo <= v && v <= hi)

let prop_rng_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_nat (small_list small_int))
    (fun (seed, xs) ->
       let rng = Util.Rng.create seed in
       List.sort compare (Util.Rng.shuffle rng xs) = List.sort compare xs)

(* --- gadget finder ------------------------------------------------------------ *)

let test_finder_finds_planted () =
  (* plant pop rdi; ret in a byte soup and find it *)
  let planted = X86.Encode.encode_list [ Pop (Reg RDI); Ret ] in
  let soup = Bytes.concat Bytes.empty
      [ Bytes.of_string "\xff\xff\x01\x01"; planted; Bytes.of_string "\xff" ]
  in
  let gs = Finder.scan ~base:0x1000L soup in
  Alcotest.(check bool) "found pop rdi; ret" true
    (List.exists
       (fun g -> g.Gadget.body = [ Pop (Reg RDI) ])
       gs)

let test_finder_unaligned () =
  (* gadget bytes visible only at an unaligned offset still found *)
  let instrs = [ Mov (W64, Reg RAX, Imm 0x1122334455667788L); Ret ] in
  let buf = X86.Encode.encode_list instrs in
  let gs = Finder.scan ~base:0L buf in
  (* at minimum the suffix `ret` at the last byte *)
  Alcotest.(check bool) "suffixes found" true (List.length gs >= 1)

let test_pool_diversifies () =
  let rng = Util.Rng.create 3 in
  let pool = Pool.create ~variants:4 ~rng ~next_addr:0x5000L [] in
  let addrs =
    List.init 40 (fun _ ->
        Pool.request ~clobberable:[ R12 ] pool [ Pop (Reg RCX) ])
  in
  let uniq = List.sort_uniq compare addrs in
  Alcotest.(check bool) "several variants served" true (List.length uniq >= 2);
  let uses, unique = Pool.stats pool in
  Alcotest.(check int) "uses counted" 40 uses;
  Alcotest.(check int) "unique tracked" (List.length uniq) unique;
  (* emitted bytes decode back to gadgets ending in ret *)
  let b = Pool.emitted_bytes pool in
  Alcotest.(check bool) "emitted nonempty" true (Bytes.length b > 0)

let test_pool_prefers_found () =
  let rng = Util.Rng.create 3 in
  let found =
    [ { Gadget.addr = 0x400100L; body = [ Pop (Reg RAX) ];
        ending = Gadget.E_ret } ]
  in
  let pool = Pool.create ~variants:1 ~rng ~next_addr:0x5000L found in
  (* with variants=1 the found gadget is always reused *)
  let ok = ref true in
  for _ = 0 to 20 do
    let a = Pool.request pool [ Pop (Reg RAX) ] in
    if a <> 0x400100L && a < 0x5000L then ok := false
  done;
  Alcotest.(check bool) "found gadget reachable" !ok true

(* --- chain materializer -------------------------------------------------------- *)

let test_chain_displacements () =
  let ch = Ropc.Chain.create () in
  Ropc.Chain.gadget ch 0x400000L;
  Ropc.Chain.disp ch ~target:"blk" ~anchor:"a0" ~bias:0L;
  Ropc.Chain.gadget ch 0x400008L;
  Ropc.Chain.anchor ch "a0";
  Ropc.Chain.gadget ch 0x400010L;
  Ropc.Chain.label ch "blk";
  Ropc.Chain.gadget ch 0x400018L;
  let m = Ropc.Chain.materialize ~base:0xA00000L ch in
  (* slots: [g][disp][g] a0 [g] blk [g]: disp value = off(blk)-off(a0) = 8 *)
  let disp_bytes = Bytes.sub m.Ropc.Chain.bytes 8 8 in
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get disp_bytes i)))
  done;
  Alcotest.(check int64) "displacement" 8L !v;
  Alcotest.(check int64) "label addr" 0xA00020L (Ropc.Chain.label_addr m "blk")

let test_chain_bias () =
  let ch = Ropc.Chain.create () in
  Ropc.Chain.disp ch ~target:"t" ~anchor:"a" ~bias:5L;
  Ropc.Chain.anchor ch "a";
  Ropc.Chain.label ch "t";
  let m = Ropc.Chain.materialize ~base:0L ch in
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get m.Ropc.Chain.bytes i)))
  done;
  (* target at off 8, anchor at off 8 -> delta 0; minus bias = -5 *)
  Alcotest.(check int64) "biased displacement" (-5L) !v

let test_chain_skew () =
  let ch = Ropc.Chain.create () in
  Ropc.Chain.gadget ch 0x11L;
  Ropc.Chain.skew ch 3;
  Ropc.Chain.gadget ch 0x22L;
  let m = Ropc.Chain.materialize ~base:0L ch in
  Alcotest.(check int) "unaligned total" (8 + 3 + 8) (Bytes.length m.Ropc.Chain.bytes);
  Alcotest.(check char) "second gadget at unaligned offset" '\x22'
    (Bytes.get m.Ropc.Chain.bytes 11)

let test_chain_undefined_label () =
  let ch = Ropc.Chain.create () in
  Ropc.Chain.disp ch ~target:"nope" ~anchor:"a" ~bias:0L;
  Ropc.Chain.anchor ch "a";
  Alcotest.check_raises "undefined label"
    (Ropc.Chain.Materialize_error "undefined chain label nope")
    (fun () -> ignore (Ropc.Chain.materialize ~base:0L ch))

(* --- assembler/linker ------------------------------------------------------------ *)

let test_asm_label_resolution () =
  (* forward and backward local jumps *)
  let items =
    [ Asm.Ins (Mov (W64, Reg RAX, Imm 0L));
      Asm.Label "loop";
      Asm.Ins (Alu (Add, W64, Reg RAX, Imm 3L));
      Asm.Ins (Alu (Cmp, W64, Reg RAX, Imm 9L));
      Asm.Jcc_l (B, "loop");
      Asm.Ins Ret ]
  in
  let u = { Asm.u_functions = [ ("f", items) ]; u_data = [] } in
  let img = Asm.link u in
  let r = Runner.call_exn img ~func:"f" ~args:[] in
  Alcotest.(check int64) "loop ran 3 times" 9L r.Runner.rax

let test_asm_call_and_data () =
  let callee = [ Asm.Ins (Mov (W64, Reg RAX, Imm 5L)); Asm.Ins Ret ] in
  let caller =
    [ Asm.Call_s "callee";
      Asm.Lea_s (RCX, "blob");
      Asm.Ins (Alu (Add, W64, Reg RAX, Mem (mem_b RCX 0)));
      Asm.Ins Ret ]
  in
  let u =
    { Asm.u_functions = [ ("callee", callee); ("main", caller) ];
      u_data = [ ("blob", [ Asm.D_quad 37L ]) ] }
  in
  let img = Asm.link u in
  Alcotest.(check int64) "call + data" 42L
    (Runner.call_exn img ~func:"main" ~args:[]).Runner.rax

let test_image_patch_and_append () =
  let u =
    { Asm.u_functions = [ ("f", [ Asm.Ins Ret ]) ];
      u_data = [ ("d", [ Asm.D_quad 1L ]) ] }
  in
  let img = Asm.link u in
  let d = Image.symbol_addr img "d" in
  Image.patch img d 8 0xDEADL;
  let mem = Image.load img in
  Alcotest.(check int64) "patched" 0xDEADL (Machine.Memory.read_u64 mem d);
  let a = Image.append img ".text" (Bytes.of_string "\x02") in
  Alcotest.(check bool) "appended past old end" true (Int64.compare a Image.text_base > 0)

let () =
  Alcotest.run "infra"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         QCheck_alcotest.to_alcotest prop_rng_range;
         QCheck_alcotest.to_alcotest prop_rng_shuffle_permutes ]);
      ("gadget",
       [ Alcotest.test_case "finder finds planted" `Quick test_finder_finds_planted;
         Alcotest.test_case "finder unaligned" `Quick test_finder_unaligned;
         Alcotest.test_case "pool diversifies" `Quick test_pool_diversifies;
         Alcotest.test_case "pool uses found" `Quick test_pool_prefers_found ]);
      ("chain",
       [ Alcotest.test_case "displacements" `Quick test_chain_displacements;
         Alcotest.test_case "bias" `Quick test_chain_bias;
         Alcotest.test_case "skew" `Quick test_chain_skew;
         Alcotest.test_case "undefined label" `Quick test_chain_undefined_label ]);
      ("asm",
       [ Alcotest.test_case "labels" `Quick test_asm_label_resolution;
         Alcotest.test_case "calls and data" `Quick test_asm_call_and_data;
         Alcotest.test_case "patch/append" `Quick test_image_patch_and_append ]) ]
