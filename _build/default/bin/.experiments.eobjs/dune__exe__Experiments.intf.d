bin/experiments.mli:
