bin/experiments.ml: Arg Cmd Cmdliner Harness List Printf Term
