bin/ropfuscator.mli:
