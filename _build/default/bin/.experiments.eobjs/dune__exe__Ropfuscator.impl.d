bin/ropfuscator.ml: Arg Cmd Cmdliner List Minic Printf Ropc Runner String Term
