(* Regenerate any table or figure of the paper by id.

     experiments table2 [--full]     Table II (DSE secret finding / coverage)
     experiments fig5                Figure 5 (clbg overhead)
     experiments table3              Table III (rewriter statistics)
     experiments table4              Table IV (RandomFuns structures)
     experiments efficacy            §VII-A.1 (SE and TDS vs P1/P3)
     experiments ropaware            §VII-A.2 (ROPMEMU / ROPDissector)
     experiments coverage            §VII-C1 (corpus rewrite coverage)
     experiments casestudy           §VII-C3 (base64 memory models)
     experiments all [--full]        everything *)

open Cmdliner

let run_one full name =
  match name with
  | "table2" ->
    ignore
      (Harness.Experiments.table2
         ~scale:(if full then Harness.Experiments.full_scale
                 else Harness.Experiments.quick_scale)
         ())
  | "fig5" -> ignore (Harness.Experiments.fig5 ())
  | "table3" -> ignore (Harness.Experiments.table3 ())
  | "table4" -> Harness.Experiments.table4 ()
  | "efficacy" -> Harness.Experiments.efficacy ()
  | "ropaware" -> Harness.Experiments.ropaware ()
  | "coverage" -> ignore (Harness.Experiments.coverage ())
  | "casestudy" -> Harness.Experiments.casestudy ()
  | other -> Printf.eprintf "unknown experiment: %s\n" other; exit 2

let all_names =
  [ "table4"; "table3"; "fig5"; "coverage"; "ropaware"; "efficacy";
    "casestudy"; "table2" ]

let main name full =
  if name = "all" then List.iter (run_one full) all_names
  else run_one full name

let name_arg =
  let doc = "Experiment id: table2, fig5, table3, table4, efficacy, ropaware, coverage, casestudy, all." in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let full_arg =
  let doc = "Run the full-scale (slow) version of the experiment." in
  Arg.(value & flag & info [ "full" ] ~doc)

let cmd =
  let doc = "Regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const main $ name_arg $ full_arg)

let () = exit (Cmd.eval cmd)
