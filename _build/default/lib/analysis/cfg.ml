(* CFG reconstruction from machine code (the Ghidra/angr/radare2 stand-in,
   §IV-B1).  Recursive traversal from the function entry, with a jump-table
   idiom recognizer for indirect branches compiled from dense switches.

   The recognized dispatch pattern (emitted by minic's codegen and typical of
   gcc output) is:

       [sub r, kmin]
       cmp r, n
       ja  default
       lea t, [table]
       mov r, [t + r*8]
       jmp r

   Table entries are absolute code addresses read from the image. *)

open X86.Isa

type binstr = { addr : int64; instr : instr; len : int }

let next_addr bi = Int64.add bi.addr (Int64.of_int bi.len)

type terminator =
  | T_ret
  | T_hlt
  | T_jmp of int64                      (* direct jump inside the function *)
  | T_tail of int64                     (* direct jump outside the function *)
  | T_jcc of cc * int64 * int64         (* taken target, fall-through *)
  | T_fall of int64                     (* block split; no branch *)
  | T_jmp_table of {
      jump_reg : reg;
      table_addr : int64;
      entries : int64 list;             (* target per table slot *)
      site : int64;                     (* address of the jmp itself *)
    }
  | T_jmp_unresolved of operand         (* CFG reconstruction failure *)

type block = {
  b_addr : int64;
  b_instrs : binstr list;               (* excludes the terminator instr *)
  b_term : terminator;
  b_term_instr : binstr option;         (* the branch/ret instruction *)
}

type t = {
  entry : int64;
  bounds : int64 * int64;               (* [lo, hi) of the function body *)
  blocks : (int64, block) Hashtbl.t;
  order : int64 list;                   (* blocks in address order *)
  failed : bool;                        (* an indirect jump was unresolved *)
}

exception Analysis_error of string

let in_bounds (lo, hi) a = Int64.compare lo a <= 0 && Int64.compare a hi < 0

(* --- instruction-level traversal --------------------------------------- *)

(* [fetch addr] decodes one instruction at [addr]; [read64] reads image data
   (for jump tables). *)
let decode_function ~fetch ~read64 ~entry ~bounds =
  let instrs : (int64, binstr) Hashtbl.t = Hashtbl.create 64 in
  let leaders : (int64, unit) Hashtbl.t = Hashtbl.create 16 in
  let tables : (int64, reg * int64 * int64 list) Hashtbl.t = Hashtbl.create 4 in
  let unresolved = ref false in
  let mark_leader a = Hashtbl.replace leaders a () in
  mark_leader entry;
  (* linear history per traversal run, for the table pattern *)
  let try_resolve_table history jump_reg =
    (* find: mov jr, [t + ir*8]; lea t, [T]; cmp ir, n going backwards *)
    let rec find_mov = function
      | [] -> None
      | bi :: rest ->
        (match bi.instr with
         | Mov (W64, Reg jr, Mem { base = Some tb; index = Some (ir, 8); disp = 0L })
           when jr = jump_reg -> Some (tb, ir, rest)
         | _ -> find_mov rest)
    in
    let rec find_lea tb = function
      | [] -> None
      | bi :: rest ->
        (match bi.instr with
         | Lea (r, { base = None; index = None; disp }) when r = tb ->
           Some (disp, rest)
         | _ -> find_lea tb rest)
    in
    let rec find_cmp ir = function
      | [] -> None
      | bi :: rest ->
        (match bi.instr with
         | Alu (Cmp, W64, Reg r, Imm n) when r = ir -> Some (Int64.to_int n)
         | _ -> find_cmp ir rest)
    in
    match find_mov history with
    | None -> None
    | Some (tb, ir, rest) ->
      (match find_lea tb rest with
       | None -> None
       | Some (taddr, rest') ->
         (match find_cmp ir rest' with
          | None -> None
          | Some n ->
            let entries =
              List.init (n + 1) (fun i ->
                  match read64 (Int64.add taddr (Int64.of_int (8 * i))) with
                  | Some v -> v
                  | None -> raise Exit)
            in
            (match List.for_all (in_bounds bounds) entries with
             | true -> Some (taddr, entries)
             | false -> None
             | exception Exit -> None)))
  in
  let worklist = Queue.create () in
  Queue.add entry worklist;
  while not (Queue.is_empty worklist) do
    let start = Queue.pop worklist in
    if not (Hashtbl.mem instrs start) && in_bounds bounds start then begin
      (* decode a linear run from [start] *)
      let rec go addr history =
        if Hashtbl.mem instrs addr || not (in_bounds bounds addr) then ()
        else
          match fetch addr with
          | None -> raise (Analysis_error (Printf.sprintf "undecodable at 0x%Lx" addr))
          | Some (instr, len) ->
            let bi = { addr; instr; len } in
            Hashtbl.replace instrs addr bi;
            let next = next_addr bi in
            (match instr with
             | Ret | Hlt -> ()
             | Jmp (J_rel d) ->
               let target = Int64.add next (Int64.of_int d) in
               if in_bounds bounds target then begin
                 mark_leader target;
                 Queue.add target worklist
               end
             | Jmp (J_op (Reg r)) ->
               (match try_resolve_table (bi :: history) r with
                | Some (taddr, entries) ->
                  Hashtbl.replace tables addr (r, taddr, entries);
                  List.iter
                    (fun t -> mark_leader t; Queue.add t worklist)
                    entries
                | None -> unresolved := true)
             | Jmp (J_op _) -> unresolved := true
             | Jcc (_, d) ->
               let target = Int64.add next (Int64.of_int d) in
               if in_bounds bounds target then begin
                 mark_leader target;
                 Queue.add target worklist
               end;
               mark_leader next;
               go next (bi :: history)
             | Mov _ | Movzx _ | Movsx _ | Lea _ | Push _ | Pop _ | Alu _
             | Unary _ | Imul2 _ | MulDiv _ | Shift _ | Cmov _ | Setcc _
             | Call _ | Leave | Xchg _ | Nop | Lahf | Sahf ->
               go next (bi :: history))
      in
      go start []
    end
  done;
  (instrs, leaders, tables, !unresolved)

(* --- block formation ----------------------------------------------------- *)

let build ~fetch ~read64 ~entry ~size =
  let bounds = (entry, Int64.add entry (Int64.of_int size)) in
  let instrs, leaders, tables, failed =
    decode_function ~fetch ~read64 ~entry ~bounds
  in
  let blocks = Hashtbl.create 16 in
  let is_leader a = Hashtbl.mem leaders a in
  Hashtbl.iter
    (fun addr _ -> if is_leader addr then begin
        (* collect until terminator or next leader *)
        let rec collect a acc =
          match Hashtbl.find_opt instrs a with
          | None ->
            (* ran past decoded region: treat as fall into nothing *)
            (List.rev acc, T_fall a, None)
          | Some bi ->
            let next = next_addr bi in
            (match bi.instr with
             | Ret -> (List.rev acc, T_ret, Some bi)
             | Hlt -> (List.rev acc, T_hlt, Some bi)
             | Jmp (J_rel d) ->
               let t = Int64.add next (Int64.of_int d) in
               if in_bounds bounds t then (List.rev acc, T_jmp t, Some bi)
               else (List.rev acc, T_tail t, Some bi)
             | Jmp (J_op op) ->
               (match Hashtbl.find_opt tables bi.addr with
                | Some (r, taddr, entries) ->
                  (List.rev acc,
                   T_jmp_table
                     { jump_reg = r; table_addr = taddr; entries; site = bi.addr },
                   Some bi)
                | None -> (List.rev acc, T_jmp_unresolved op, Some bi))
             | Jcc (cc, d) ->
               let t = Int64.add next (Int64.of_int d) in
               (List.rev acc, T_jcc (cc, t, next), Some bi)
             | Mov _ | Movzx _ | Movsx _ | Lea _ | Push _ | Pop _ | Alu _
             | Unary _ | Imul2 _ | MulDiv _ | Shift _ | Cmov _ | Setcc _
             | Call _ | Leave | Xchg _ | Nop | Lahf | Sahf ->
               if is_leader next && next <> addr then
                 (List.rev (bi :: acc), T_fall next, None)
               else collect next (bi :: acc))
        in
        let body, term, term_instr = collect addr [] in
        Hashtbl.replace blocks addr
          { b_addr = addr; b_instrs = body; b_term = term; b_term_instr = term_instr }
      end)
    instrs;
  let order =
    Hashtbl.fold (fun a _ acc -> a :: acc) blocks []
    |> List.sort Int64.compare
  in
  { entry; bounds; blocks; order; failed }

let block_exn t a =
  match Hashtbl.find_opt t.blocks a with
  | Some b -> b
  | None -> raise (Analysis_error (Printf.sprintf "no block at 0x%Lx" a))

let successors (b : block) =
  match b.b_term with
  | T_ret | T_hlt | T_tail _ | T_jmp_unresolved _ -> []
  | T_jmp t | T_fall t -> [ t ]
  | T_jcc (_, t, f) -> [ t; f ]
  | T_jmp_table { entries; _ } -> List.sort_uniq Int64.compare entries

(* All instructions of a block including the terminator. *)
let all_instrs (b : block) =
  match b.b_term_instr with
  | Some ti -> b.b_instrs @ [ ti ]
  | None -> b.b_instrs

(* Build a CFG for [fname] in [img]. *)
let of_image (img : Image.t) fname =
  let sym =
    match Image.find_symbol img fname with
    | Some s -> s
    | None -> raise (Analysis_error ("no such function: " ^ fname))
  in
  let text = Image.section_exn img ".text" in
  let buf = text.Image.sec_data in
  let fetch addr =
    let off = Int64.to_int (Int64.sub addr text.Image.sec_addr) in
    if off < 0 || off >= Bytes.length buf then None
    else X86.Decode.decode buf off
  in
  let read64 addr =
    let off = Int64.to_int (Int64.sub addr text.Image.sec_addr) in
    if off < 0 || off + 8 > Bytes.length buf then None
    else begin
      let v = ref 0L in
      for i = 7 downto 0 do
        v := Int64.logor (Int64.shift_left !v 8)
            (Int64.of_int (Char.code (Bytes.get buf (off + i))))
      done;
      Some !v
    end
  in
  build ~fetch ~read64 ~entry:sym.Image.sym_addr ~size:sym.Image.sym_size

let pp fmt t =
  List.iter
    (fun a ->
       let b = block_exn t a in
       Format.fprintf fmt "block 0x%Lx:@\n" a;
       List.iter
         (fun bi -> Format.fprintf fmt "  %Lx: %s@\n" bi.addr (X86.Pp.instr_str bi.instr))
         (all_instrs b);
       let succs = successors b |> List.map (Printf.sprintf "0x%Lx") in
       Format.fprintf fmt "  -> [%s]@\n" (String.concat " " succs))
    t.order
