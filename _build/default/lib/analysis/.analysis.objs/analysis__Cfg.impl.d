lib/analysis/cfg.ml: Bytes Char Format Hashtbl Image Int64 List Printf Queue String X86
