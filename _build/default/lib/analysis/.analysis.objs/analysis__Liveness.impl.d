lib/analysis/liveness.ml: Cfg Hashtbl List Option Regset Reguse X86
