lib/analysis/reguse.ml: Regset X86
