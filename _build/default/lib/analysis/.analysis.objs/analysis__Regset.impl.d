lib/analysis/regset.ml: Format List String X86
