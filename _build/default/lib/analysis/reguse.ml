(* Def/use sets per instruction, including the flags pseudo-register.

   [defs] of a memory-destination instruction is empty (the store does not
   define a register), but address registers appear in [uses]. *)

open X86.Isa
module R = Regset

let use_mem (m : mem) =
  let s = match m.base with Some r -> R.of_reg r | None -> R.empty in
  match m.index with Some (r, _) -> R.add s r | None -> s

let use_operand = function
  | Reg r -> R.of_reg r
  | Imm _ -> R.empty
  | Mem m -> use_mem m

(* registers read to *evaluate* a destination (address computation only) *)
let use_dst_addr = function
  | Reg _ | Imm _ -> R.empty
  | Mem m -> use_mem m

let def_operand = function
  | Reg r -> R.of_reg r
  | Imm _ | Mem _ -> R.empty

(* (uses, defs) where both may include the flags bit *)
let def_use (i : instr) : R.t * R.t =
  match i with
  | Nop | Hlt -> (R.empty, R.empty)
  | Lahf -> (R.add_flags (R.of_reg X86.Isa.RAX), R.of_reg X86.Isa.RAX)
  | Sahf -> (R.of_reg X86.Isa.RAX, R.flags_bit)
  | Mov (_, d, s) -> (R.union (use_operand s) (use_dst_addr d), def_operand d)
  | Movzx (_, _, r, s) | Movsx (_, _, r, s) -> (use_operand s, R.of_reg r)
  | Lea (r, m) -> (use_mem m, R.of_reg r)
  | Push s -> (R.add (use_operand s) RSP, R.of_reg RSP)
  | Pop d ->
    (R.add (use_dst_addr d) RSP, R.union (def_operand d) (R.of_reg RSP))
  | Alu ((Cmp | Test), _, a, b) ->
    (R.union (use_operand a) (use_operand b), R.flags_bit)
  | Alu ((Adc | Sbb), _, d, s) ->
    (R.add_flags (R.union (use_operand d) (use_operand s)),
     R.union (def_operand d) R.flags_bit)
  | Alu (_, _, d, s) ->
    (R.union (use_operand d) (use_operand s),
     R.union (def_operand d) R.flags_bit)
  | Unary (Not, _, d) -> (use_operand d, def_operand d)
  | Unary (_, _, d) -> (use_operand d, R.union (def_operand d) R.flags_bit)
  | Imul2 (_, r, s) ->
    (R.add (use_operand s) r, R.union (R.of_reg r) R.flags_bit)
  | MulDiv (_, s) ->
    (R.add (R.add (use_operand s) RAX) RDX,
     R.union (R.of_list [ RAX; RDX ]) R.flags_bit)
  | Shift (_, _, d, c) ->
    let u = use_operand d in
    let u = match c with S_cl -> R.add u RCX | S_imm _ -> u in
    (u, R.union (def_operand d) R.flags_bit)
  | Cmov (_, r, s) -> (R.add_flags (R.add (use_operand s) r), R.of_reg r)
  | Setcc (_, d) -> (R.add_flags (use_dst_addr d), def_operand d)
  | Jmp (J_rel _) -> (R.empty, R.empty)
  | Jmp (J_op o) -> (use_operand o, R.empty)
  | Jcc _ -> (R.flags_bit, R.empty)
  | Call (J_rel _) ->
    (* conservative: all argument registers may be read; caller-saved and
       flags are clobbered *)
    (R.add R.arg_regs RSP,
     R.union (R.add R.caller_saved RSP) R.flags_bit)
  | Call (J_op o) ->
    (R.add (R.union (use_operand o) R.arg_regs) RSP,
     R.union (R.add R.caller_saved RSP) R.flags_bit)
  | Ret -> (R.of_list [ RSP; RAX ], R.of_reg RSP)
  | Leave -> (R.of_list [ RBP; RSP ], R.of_list [ RBP; RSP ])
  | Xchg (_, a, b) ->
    (R.union (use_operand a) (use_operand b),
     R.union (def_operand a) (def_operand b))

(* Does executing [i] destroy the status flags? *)
let clobbers_flags i = R.mem_flags (snd (def_use i))

(* Does [i] read the status flags? *)
let reads_flags i = R.mem_flags (fst (def_use i))
