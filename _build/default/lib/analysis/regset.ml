(* Register sets as bitmasks: bits 0..15 are the GPRs (Isa.reg_index), bit 16
   is the CPU status flags pseudo-register.  Flag liveness drives the
   rewriter's flag spilling (§IV-B2). *)

open X86.Isa

type t = int

let empty = 0
let flags_bit = 1 lsl 16

let of_reg r = 1 lsl reg_index r
let add t r = t lor of_reg r
let add_flags t = t lor flags_bit
let mem_reg t r = t land of_reg r <> 0
let mem_flags t = t land flags_bit <> 0
let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let is_empty t = t = 0
let subset a b = a land lnot b = 0

let of_list rs = List.fold_left add empty rs

let to_list t =
  List.filter (mem_reg t) all_regs

let pp fmt t =
  let names = List.map X86.Pp.reg_name (to_list t) in
  let names = if mem_flags t then names @ [ "flags" ] else names in
  Format.fprintf fmt "{%s}" (String.concat " " names)

(* Conventional sets. *)
let caller_saved = of_list [ RAX; RCX; RDX; RSI; RDI; R8; R9; R10; R11 ]
let callee_saved = of_list [ RBX; RBP; R12; R13; R14; R15 ]
let arg_regs = of_list [ RDI; RSI; RDX; RCX; R8; R9 ]
let all = of_list all_regs
