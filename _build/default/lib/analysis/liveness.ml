(* Backward liveness over a CFG, tracking the 16 GPRs plus the status flags
   (Regset bit 16).  Per-instruction live-out sets drive the rewriter's
   register allocation and flag spilling: a register is live if the function
   may later read it before writing to it, ending, or making a call that may
   clobber it (§IV-B1, footnote 1). *)

module R = Regset

type t = {
  block_live_out : (int64, R.t) Hashtbl.t;
  (* live-out set per instruction address, terminators included *)
  instr_live_out : (int64, R.t) Hashtbl.t;
}

(* Registers assumed live when the function returns: result + callee-saved +
   stack registers. *)
let exit_live = R.union (R.of_list [ X86.Isa.RAX; X86.Isa.RSP ]) R.callee_saved

(* A tail jump additionally passes arguments. *)
let tail_live = R.union exit_live R.arg_regs

let term_use (t : Cfg.terminator) =
  match t with
  | Cfg.T_ret -> exit_live
  | Cfg.T_hlt -> R.empty
  | Cfg.T_tail _ -> tail_live
  | Cfg.T_jmp _ | Cfg.T_fall _ -> R.empty
  | Cfg.T_jcc _ -> R.flags_bit
  | Cfg.T_jmp_table { jump_reg; _ } -> R.of_reg jump_reg
  | Cfg.T_jmp_unresolved op -> Reguse.use_operand op

let transfer_instr live_out (bi : Cfg.binstr) =
  let uses, defs = Reguse.def_use bi.Cfg.instr in
  R.union uses (R.diff live_out defs)

(* live-in of a block given its live-out *)
let transfer_block (b : Cfg.block) live_out =
  let live = R.union live_out (term_use b.Cfg.b_term) in
  List.fold_left transfer_instr live (List.rev b.Cfg.b_instrs)

let compute (cfg : Cfg.t) : t =
  let live_in : (int64, R.t) Hashtbl.t = Hashtbl.create 16 in
  let live_out : (int64, R.t) Hashtbl.t = Hashtbl.create 16 in
  let get tbl a = Option.value (Hashtbl.find_opt tbl a) ~default:R.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
         let b = Cfg.block_exn cfg a in
         let out =
           List.fold_left
             (fun acc s -> R.union acc (get live_in s))
             R.empty (Cfg.successors b)
         in
         (* blocks with no successors keep their terminator-implied out *)
         let out =
           match b.Cfg.b_term with
           | Cfg.T_ret -> R.union out exit_live
           | Cfg.T_tail _ -> R.union out tail_live
           | Cfg.T_hlt | Cfg.T_jmp _ | Cfg.T_fall _ | Cfg.T_jcc _
           | Cfg.T_jmp_table _ -> out
           | Cfg.T_jmp_unresolved _ -> R.all
         in
         let inn = transfer_block b out in
         if inn <> get live_in a || out <> get live_out a then begin
           Hashtbl.replace live_in a inn;
           Hashtbl.replace live_out a out;
           changed := true
         end)
      (List.rev cfg.Cfg.order)
  done;
  (* per-instruction live-out *)
  let instr_live_out = Hashtbl.create 64 in
  List.iter
    (fun a ->
       let b = Cfg.block_exn cfg a in
       let out = get live_out a in
       (match b.Cfg.b_term_instr with
        | Some ti -> Hashtbl.replace instr_live_out ti.Cfg.addr out
        | None -> ());
       let live = R.union out (term_use b.Cfg.b_term) in
       let _ =
         List.fold_left
           (fun live bi ->
              Hashtbl.replace instr_live_out bi.Cfg.addr live;
              transfer_instr live bi)
           live
           (List.rev b.Cfg.b_instrs)
       in
       ())
    cfg.Cfg.order;
  { block_live_out = live_out; instr_live_out }

let live_out_at t addr =
  Option.value (Hashtbl.find_opt t.instr_live_out addr) ~default:R.all

let block_live_out t addr =
  Option.value (Hashtbl.find_opt t.block_live_out addr) ~default:R.all

(* Flags live after this instruction? *)
let flags_live_after t addr = R.mem_flags (live_out_at t addr)
