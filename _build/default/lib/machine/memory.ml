(* Sparse paged byte-addressable memory.

   Pages are allocated on first write (or on explicit [map]).  Reading an
   unmapped byte raises {!Fault}: wild chain executions (e.g. the intentional
   RSP corruption of predicate P2 under blind branch flipping) must terminate
   the enclosing exploration rather than silently read zeros. *)

exception Fault of int64 * string

let page_bits = 12
let page_size = 1 lsl page_bits

type t = {
  pages : (int64, bytes) Hashtbl.t;
  mutable mapped_ranges : (int64 * int64) list;  (* inclusive start, exclusive end *)
}

let create () = { pages = Hashtbl.create 64; mapped_ranges = [] }

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k v -> Hashtbl.replace pages k (Bytes.copy v)) t.pages;
  { pages; mapped_ranges = t.mapped_ranges }

let page_of addr = Int64.shift_right_logical addr page_bits
let offset_of addr = Int64.to_int (Int64.logand addr (Int64.of_int (page_size - 1)))

let get_page_opt t addr = Hashtbl.find_opt t.pages (page_of addr)

let get_page_for_write t addr =
  let p = page_of addr in
  match Hashtbl.find_opt t.pages p with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\000' in
    Hashtbl.replace t.pages p b;
    b

(* Pre-map [len] bytes starting at [addr] as zero-filled readable memory. *)
let map t addr len =
  if len > 0 then begin
    let first = page_of addr in
    let last = page_of (Int64.add addr (Int64.of_int (len - 1))) in
    let p = ref first in
    while Int64.compare !p last <= 0 do
      (match Hashtbl.find_opt t.pages !p with
       | Some _ -> ()
       | None -> Hashtbl.replace t.pages !p (Bytes.make page_size '\000'));
      p := Int64.add !p 1L
    done;
    t.mapped_ranges <- (addr, Int64.add addr (Int64.of_int len)) :: t.mapped_ranges
  end

let is_mapped t addr = get_page_opt t addr <> None

let read_u8 t addr =
  match get_page_opt t addr with
  | Some b -> Char.code (Bytes.get b (offset_of addr))
  | None -> raise (Fault (addr, "read of unmapped address"))

let read_u8_opt t addr =
  match get_page_opt t addr with
  | Some b -> Some (Char.code (Bytes.get b (offset_of addr)))
  | None -> None

let write_u8 t addr v =
  let b = get_page_for_write t addr in
  Bytes.set b (offset_of addr) (Char.chr (v land 0xff))

(* Little-endian load of [n] bytes (1, 2, 4 or 8). *)
let read t addr n =
  let r = ref 0L in
  for i = n - 1 downto 0 do
    let byte = read_u8 t (Int64.add addr (Int64.of_int i)) in
    r := Int64.logor (Int64.shift_left !r 8) (Int64.of_int byte)
  done;
  !r

(* Little-endian store of the low [n] bytes of [v]. *)
let write t addr n v =
  for i = 0 to n - 1 do
    let byte = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
    write_u8 t (Int64.add addr (Int64.of_int i)) byte
  done

let read_u64 t addr = read t addr 8
let write_u64 t addr v = write t addr 8 v

(* Copy a byte string into memory at [addr], mapping pages as needed. *)
let store_bytes t addr (b : bytes) =
  for i = 0 to Bytes.length b - 1 do
    write_u8 t (Int64.add addr (Int64.of_int i)) (Char.code (Bytes.get b i))
  done

(* Read up to [n] contiguous mapped bytes starting at [addr]; stops early at
   the first unmapped byte.  Used for instruction fetch windows. *)
let read_bytes_avail t addr n =
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then ()
    else
      match read_u8_opt t (Int64.add addr (Int64.of_int i)) with
      | Some v -> Buffer.add_char buf (Char.chr v); go (i + 1)
      | None -> ()
  in
  go 0;
  Buffer.to_bytes buf

let read_string t addr len =
  Bytes.to_string (read_bytes_avail t addr len)
