lib/machine/semantics.ml: Int64 X86
