lib/machine/memory.ml: Buffer Bytes Char Hashtbl Int64
