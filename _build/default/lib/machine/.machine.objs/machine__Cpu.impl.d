lib/machine/cpu.ml: Array Format Memory Semantics X86
