lib/machine/exec.ml: Cpu Format Hashtbl Int64 Memory Printf Semantics X86
