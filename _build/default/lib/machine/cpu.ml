(* CPU state for the x64-lite machine. *)

open X86.Isa

type t = {
  regs : int64 array;           (* indexed by Isa.reg_index *)
  mutable rip : int64;
  mutable cf : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable o_f : bool;
  mutable pf : bool;
  mem : Memory.t;
  mutable halted : bool;
  mutable steps : int;          (* instructions retired *)
}

let create mem = {
  regs = Array.make 16 0L;
  rip = 0L;
  cf = false; zf = false; sf = false; o_f = false; pf = false;
  mem;
  halted = false;
  steps = 0;
}

let copy t = {
  regs = Array.copy t.regs;
  rip = t.rip;
  cf = t.cf; zf = t.zf; sf = t.sf; o_f = t.o_f; pf = t.pf;
  mem = Memory.copy t.mem;
  halted = t.halted;
  steps = t.steps;
}

let get t r = t.regs.(reg_index r)
let set t r v = t.regs.(reg_index r) <- v

let flags t : Semantics.flags =
  { cf = t.cf; zf = t.zf; sf = t.sf; o_f = t.o_f; pf = t.pf }

let set_flags t (f : Semantics.flags) =
  t.cf <- f.cf; t.zf <- f.zf; t.sf <- f.sf; t.o_f <- f.o_f; t.pf <- f.pf

let pp fmt t =
  let r n = get t n in
  Format.fprintf fmt
    "rip=%Lx rax=%Lx rbx=%Lx rcx=%Lx rdx=%Lx rsi=%Lx rdi=%Lx rbp=%Lx rsp=%Lx@\n\
     r8=%Lx r9=%Lx r10=%Lx r11=%Lx r12=%Lx r13=%Lx r14=%Lx r15=%Lx cf=%b zf=%b sf=%b of=%b"
    t.rip (r RAX) (r RBX) (r RCX) (r RDX) (r RSI) (r RDI) (r RBP) (r RSP)
    (r R8) (r R9) (r R10) (r R11) (r R12) (r R13) (r R14) (r R15)
    t.cf t.zf t.sf t.o_f
