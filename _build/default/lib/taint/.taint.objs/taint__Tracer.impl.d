lib/taint/tracer.ml: Hashtbl Image Int64 List Machine Symex X86
