lib/taint/tds.ml: Array Hashtbl List Tracer X86
