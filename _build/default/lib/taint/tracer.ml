(* Tainted trace recorder.

   Runs one concrete path (concolically, under a fixed input) and records,
   per executed instruction: the concrete read/written locations (registers,
   flags, memory bytes) and whether any source value is input-tainted.
   This is the input format of the TDS simplifier. *)

open X86.Isa
module E = Symex.Expr
module SS = Symex.Sym_state

type loc =
  | L_reg of reg
  | L_flags
  | L_mem of int64            (* byte address *)

type entry = {
  e_rip : int64;
  e_instr : instr;
  e_reads : loc list;
  e_writes : loc list;
  e_tainted : bool;           (* some source depends on the input *)
  e_branch_tainted : bool;    (* control decision depends on the input *)
}

let is_control_instr (i : instr) =
  match i with
  | Jmp _ | Jcc _ | Ret | Call _ | Hlt -> true
  | Mov _ | Movzx _ | Movsx _ | Lea _ | Push _ | Pop _ | Alu _ | Unary _
  | Imul2 _ | MulDiv _ | Shift _ | Cmov _ | Setcc _ | Leave | Xchg _ | Nop
  | Lahf | Sahf -> false

type trace = {
  entries : entry list;       (* program order *)
  result : E.t;               (* final RAX *)
  halted : bool;
}

let mem_locs st ev (m : mem) n =
  let base = match m.base with Some r -> ev (SS.get st r) | None -> 0L in
  let idx =
    match m.index with
    | Some (r, sc) -> Int64.mul (ev (SS.get st r)) (Int64.of_int sc)
    | None -> 0L
  in
  let a = Int64.add (Int64.add base idx) m.disp in
  List.init n (fun i -> L_mem (Int64.add a (Int64.of_int i)))

let operand_read_locs st ev w = function
  | Reg r -> [ L_reg r ]
  | Imm _ -> []
  | Mem m ->
    (match m.base with Some r -> [ L_reg r ] | None -> [])
    @ (match m.index with Some (r, _) -> [ L_reg r ] | None -> [])
    @ mem_locs st ev m (width_bytes w)

let operand_write_locs st ev w = function
  | Reg r -> [ L_reg r ]
  | Imm _ -> []
  | Mem m -> mem_locs st ev m (width_bytes w)

(* locations read / written by [i] in state [st] (before execution) *)
let locs_of st ev (i : instr) =
  let rd w o = operand_read_locs st ev w o in
  let wr w o = operand_write_locs st ev w o in
  let addr_regs o =
    match o with
    | Mem m ->
      (match m.base with Some r -> [ L_reg r ] | None -> [])
      @ (match m.index with Some (r, _) -> [ L_reg r ] | None -> [])
    | Reg _ | Imm _ -> []
  in
  match i with
  | Nop | Hlt -> ([], [])
  | Lahf -> ([ L_flags ], [ L_reg RAX ])
  | Sahf -> ([ L_reg RAX ], [ L_flags ])
  | Mov (w, d, s) -> (rd w s @ addr_regs d, wr w d)
  | Movzx (dw, sw, r, s) | Movsx (dw, sw, r, s) ->
    ignore dw; (rd sw s, [ L_reg r ])
  | Lea (r, m) -> (operand_read_locs st ev W64 (Mem m) |> List.filter (function L_mem _ -> false | _ -> true), [ L_reg r ])
  | Push s ->
    let sp = ev (SS.get st RSP) in
    (L_reg RSP :: rd W64 s,
     L_reg RSP :: List.init 8 (fun k -> L_mem (Int64.add (Int64.sub sp 8L) (Int64.of_int k))))
  | Pop d ->
    let sp = ev (SS.get st RSP) in
    (L_reg RSP :: List.init 8 (fun k -> L_mem (Int64.add sp (Int64.of_int k))),
     L_reg RSP :: wr W64 d)
  | Alu ((Cmp | Test), w, a, b) -> (rd w a @ rd w b, [ L_flags ])
  | Alu ((Adc | Sbb), w, d, s) -> (L_flags :: rd w d @ rd w s, L_flags :: wr w d)
  | Alu (_, w, d, s) -> (rd w d @ rd w s, L_flags :: wr w d)
  | Unary (Not, w, d) -> (rd w d, wr w d)
  | Unary (_, w, d) -> (rd w d, L_flags :: wr w d)
  | Imul2 (w, r, s) -> (L_reg r :: rd w s, [ L_reg r; L_flags ])
  | MulDiv (_, s) ->
    (L_reg RAX :: L_reg RDX :: rd W64 s, [ L_reg RAX; L_reg RDX; L_flags ])
  | Shift (_, w, d, c) ->
    let cl = match c with S_cl -> [ L_reg RCX ] | S_imm _ -> [] in
    (cl @ rd w d, L_flags :: wr w d)
  | Cmov (_, r, s) -> (L_flags :: L_reg r :: rd W64 s, [ L_reg r ])
  | Setcc (_, d) -> ([ L_flags ], wr W8 d)
  | Jmp (J_rel _) -> ([], [])
  | Jmp (J_op o) -> (rd W64 o, [])
  | Jcc _ -> ([ L_flags ], [])
  | Call (J_rel _) ->
    let sp = ev (SS.get st RSP) in
    ([ L_reg RSP ],
     L_reg RSP :: List.init 8 (fun k -> L_mem (Int64.add (Int64.sub sp 8L) (Int64.of_int k))))
  | Call (J_op o) ->
    let sp = ev (SS.get st RSP) in
    (L_reg RSP :: rd W64 o,
     L_reg RSP :: List.init 8 (fun k -> L_mem (Int64.add (Int64.sub sp 8L) (Int64.of_int k))))
  | Ret ->
    let sp = ev (SS.get st RSP) in
    (L_reg RSP :: List.init 8 (fun k -> L_mem (Int64.add sp (Int64.of_int k))),
     [ L_reg RSP ])
  | Leave ->
    let bp = ev (SS.get st RBP) in
    ([ L_reg RBP ] @ List.init 8 (fun k -> L_mem (Int64.add bp (Int64.of_int k))),
     [ L_reg RSP; L_reg RBP ])
  | Xchg (w, a, b) -> (rd w a @ rd w b, wr w a @ wr w b)

(* is a source location's current value input-tainted? *)
let loc_tainted st (l : loc) =
  match l with
  | L_reg r -> E.depends_on_input (SS.get st r)
  | L_flags ->
    E.depends_on_input st.SS.f_cf || E.depends_on_input st.SS.f_zf
    || E.depends_on_input st.SS.f_sf || E.depends_on_input st.SS.f_of
    || E.depends_on_input st.SS.f_pf
  | L_mem _ -> false   (* refined below via a symbolic read *)

(* Record the trace of [func] on concrete [input] bytes, with RDI symbolic so
   taint is tracked exactly like the concolic engine does. *)
let record ?(fuel = 2_000_000) (img : Image.t) ~func ~n_inputs ~(input : int array) =
  let tgt = { Symex.Engine.img; func; n_inputs } in
  let budget = { Symex.Engine.default_budget with path_fuel = fuel } in
  let ctx =
    Symex.Engine.make_ctx ~goal:Symex.Engine.G_coverage ~budget tgt
  in
  let st = Symex.Engine.initial_state ctx in
  let w = ref input in
  let model = Symex.Engine.model_for ctx w in
  let ev = E.evaluator ~input:(Symex.Solver.input_of_model input) in
  let entries = ref [] in
  let halted = ref false in
  let decode_cache = Hashtbl.create 512 in
  let fetch rip =
    let window = Machine.Memory.read_bytes_avail st.SS.mem.SS.base rip X86.Encode.max_instr_len in
    X86.Decode.decode window 0
  in
  let rec go n =
    if n <= 0 then ()
    else
      match fetch st.SS.rip with
      | None -> ()
      | Some (i, _len) ->
        let rip = st.SS.rip in
        let reads, writes = locs_of st ev i in
        (* taint of memory reads: consult the symbolic memory *)
        let tainted =
          List.exists
            (fun l ->
               match l with
               | L_mem a ->
                 (match SS.read_concrete st a 1 with
                  | e -> E.depends_on_input e
                  | exception SS.Sym_fault _ -> false)
               | L_reg _ | L_flags -> loc_tainted st l)
            reads
        in
        st.SS.concretizations <- [];
        (match Symex.Sym_state.step ~model ~decode_cache st with
         | SS.O_ok ->
           (* a control transfer through an input-tainted pointer is an
              implicit control dependency the simplifier must keep; tainted
              *data* addresses are per-trace constants and fold away *)
           let bt =
             is_control_instr i
             && List.exists (fun (e, _) -> E.depends_on_input e)
                  st.SS.concretizations
           in
           entries :=
             { e_rip = rip; e_instr = i; e_reads = reads; e_writes = writes;
               e_tainted = tainted || bt; e_branch_tainted = bt }
             :: !entries;
           go (n - 1)
         | SS.O_halt ->
           halted := true;
           entries :=
             { e_rip = rip; e_instr = i; e_reads = reads; e_writes = writes;
               e_tainted = tainted; e_branch_tainted = false }
             :: !entries
         | SS.O_fault _ -> ()
         | SS.O_branch (cond, taken, fall) ->
           let v = ev cond <> 0L in
           let bt = E.depends_on_input cond in
           SS.constrain st cond v;
           st.SS.rip <- (if v then taken else fall);
           entries :=
             { e_rip = rip; e_instr = i; e_reads = reads; e_writes = writes;
               e_tainted = tainted || bt; e_branch_tainted = bt }
             :: !entries;
           go (n - 1)
         | SS.O_indirect target ->
           (* an indirect target is a per-trace constant: foldable dispatch,
              except when the loaded value itself is input-derived through
              the P1 array (fake control dependencies, §V-C) *)
           let v = ev target in
           let bt =
             E.depends_on_input target
             || List.exists (fun (e, _) -> E.depends_on_input e)
                  st.SS.concretizations
           in
           SS.constrain st (E.bin E.Eq target (E.Const v)) true;
           st.SS.rip <- v;
           entries :=
             { e_rip = rip; e_instr = i; e_reads = reads; e_writes = writes;
               e_tainted = tainted || bt; e_branch_tainted = bt }
             :: !entries;
           go (n - 1))
  in
  go fuel;
  { entries = List.rev !entries;
    result = SS.get st X86.Isa.RAX;
    halted = !halted }
