lib/ropaware/ropdissector.ml: Array Bytes Hashtbl Image Int64 List Queue X86
