lib/ropaware/ropmemu.ml: Hashtbl Image Int64 List Machine Runner X86
