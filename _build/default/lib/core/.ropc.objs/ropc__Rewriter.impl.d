lib/core/rewriter.ml: Analysis Array Buffer Builder Bytes Chain Char Config Finder Hashtbl Image Int64 List Pool Predicates String Util X86
