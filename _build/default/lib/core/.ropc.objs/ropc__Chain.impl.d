lib/core/chain.ml: Bytes Char Hashtbl Int64 List Random
