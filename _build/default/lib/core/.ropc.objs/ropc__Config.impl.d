lib/core/config.ml: Buffer Printf
