lib/core/builder.ml: Analysis Array Chain Config Int64 List Pool Printf Util X86
