lib/core/predicates.ml: Analysis Builder Chain Config Int64 List Util X86
