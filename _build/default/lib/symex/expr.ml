(* Bitvector expressions over the program input.

   All expressions denote 64-bit values; narrowing is explicit via Low.
   Branch conditions are expressions valued 0/1.  Symbolic memory reads are
   first-class ([Load]), closing over a functional memory snapshot: the
   evaluation-based solver (see Solver) only ever needs to *evaluate*
   expressions under a candidate input, so even theory-of-arrays reasoning
   reduces to evaluation (§VII-C3's per-page memory model). *)

open X86.Isa

type binop =
  | Add | Sub | Mul | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor
  | Shl | Shr | Sar
  | Eq | Ult | Slt | Ule | Sle
  | Mulhi_u | Mulhi_s

type unop =
  | Not
  | Neg
  | Low of width * bool      (* truncate to width then zero/sign extend *)
  | Bool_not                 (* logical: 0 -> 1, nonzero -> 0 *)

type t =
  | Const of int64
  | Input of int                    (* i-th input byte, 0..255 *)
  | Bin of binop * t * t
  | Un of unop * t
  | Ite of t * t * t                (* cond<>0 ? then : else *)
  | Load of mem * t * int           (* snapshot, address, size in bytes *)

(* Functional memory snapshot: a write log over a concrete base.  Kept
   abstract enough for evaluation; writes store (address, value, size). *)
and mem = {
  base : Machine.Memory.t;
  writes : (t * t * int) list;      (* newest first *)
}

let zero = Const 0L
let one = Const 1L

(* --- constructors with local constant folding ----------------------------- *)

module S = Machine.Semantics

let is_const = function Const _ -> true | Input _ | Bin _ | Un _ | Ite _ | Load _ -> false

let eval_bin op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Udiv -> if b = 0L then 0L else Int64.unsigned_div a b
  | Urem -> if b = 0L then a else Int64.unsigned_rem a b
  | Sdiv -> if b = 0L || (a = Int64.min_int && b = -1L) then 0L else Int64.div a b
  | Srem -> if b = 0L || (a = Int64.min_int && b = -1L) then 0L else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | Shr -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
  | Sar -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
  | Eq -> if a = b then 1L else 0L
  | Ult -> if Int64.unsigned_compare a b < 0 then 1L else 0L
  | Slt -> if Int64.compare a b < 0 then 1L else 0L
  | Ule -> if Int64.unsigned_compare a b <= 0 then 1L else 0L
  | Sle -> if Int64.compare a b <= 0 then 1L else 0L
  | Mulhi_u -> S.mulhi_u a b
  | Mulhi_s -> S.mulhi_s a b

let eval_un op a =
  match op with
  | Not -> Int64.lognot a
  | Neg -> Int64.neg a
  | Low (w, signed) ->
    let v = S.truncate w a in
    if signed then S.sign_extend w v else v
  | Bool_not -> if a = 0L then 1L else 0L

let rec bin op a b =
  match a, b, op with
  | Const x, Const y, _ -> Const (eval_bin op x y)
  | x, y, (And | Or) when x == y -> x
  | e, Const 0L, (Add | Sub | Or | Xor | Shl | Shr | Sar) -> e
  | Const 0L, e, (Add | Or | Xor) -> e
  | _, Const 0L, (Mul | And) -> Const 0L
  | Const 0L, _, (Mul | And) -> Const 0L
  | e, Const 1L, Mul -> e
  | Const 1L, e, Mul -> e
  | Bin (Add, x, Const c1), Const c2, Add ->
    bin Add x (Const (Int64.add c1 c2))
  | Bin (And, x, Const c1), Const c2, And ->
    bin And x (Const (Int64.logand c1 c2))
  | _, _, _ -> Bin (op, a, b)

(* comparison results are 0/1: narrowing is the identity on them *)
let rec is_bool = function
  | Bin ((Eq | Ult | Slt | Ule | Sle), _, _) | Un (Bool_not, _) -> true
  | Const (0L | 1L) -> true
  | Bin ((And | Or | Xor), a, b) -> is_bool a && is_bool b
  | Ite (_, a, b) -> is_bool a && is_bool b
  | Const _ | Input _ | Bin _ | Un _ | Load _ -> false

let rec un op a =
  match a, op with
  | Const x, _ -> Const (eval_un op x)
  | Un (Low (w1, false), _), Low (w2, false)
    when width_bytes w1 <= width_bytes w2 -> a
  (* byte-merge writes followed by a byte read: the old high bits vanish *)
  | Bin (Or, Bin (And, _, Const m), e), Low (W8, false)
    when Int64.logand m 0xFFL = 0L -> un (Low (W8, false)) e
  | Bin (Or, e, Bin (And, _, Const m)), Low (W8, false)
    when Int64.logand m 0xFFL = 0L -> un (Low (W8, false)) e
  | Bin (And, e, Const 0xFFL), Low (W8, false) -> un (Low (W8, false)) e
  | e, Low (_, false) when is_bool e -> e
  | _, _ -> Un (op, a)

let ite c t e =
  match c with
  | Const 0L -> e
  | Const _ -> t
  | Input _ | Bin _ | Un _ | Ite _ | Load _ -> if t == e then t else Ite (c, t, e)

(* --- evaluation ------------------------------------------------------------ *)

(* Evaluate under [input : int -> int] (byte values). *)
let rec eval ~input e =
  match e with
  | Const v -> v
  | Input i -> Int64.of_int (input i land 0xff)
  | Bin (op, a, b) -> eval_bin op (eval ~input a) (eval ~input b)
  | Un (op, a) -> eval_un op (eval ~input a)
  | Ite (c, t, f) -> if eval ~input c <> 0L then eval ~input t else eval ~input f
  | Load (m, addr, size) ->
    let a = eval ~input addr in
    load_mem ~input m a size

and load_mem ~input m addr size =
  (* byte-wise: walk the write log newest-first *)
  let byte i =
    let ba = Int64.add addr (Int64.of_int i) in
    let rec walk = function
      | [] ->
        (match Machine.Memory.read_u8_opt m.base ba with
         | Some v -> Int64.of_int v
         | None -> 0L)
      | (waddr, wval, wsize) :: rest ->
        let wa = eval ~input waddr in
        let off = Int64.sub ba wa in
        if Int64.compare off 0L >= 0 && Int64.compare off (Int64.of_int wsize) < 0
        then
          Int64.logand
            (Int64.shift_right_logical (eval ~input wval)
               (8 * Int64.to_int off))
            0xFFL
        else walk rest
    in
    walk m.writes
  in
  let r = ref 0L in
  for i = size - 1 downto 0 do
    r := Int64.logor (Int64.shift_left !r 8) (byte i)
  done;
  !r

(* Memoized evaluator: expression graphs built by loops share subterms
   heavily (DAGs); evaluation without memoization is exponential.  The cache
   is keyed on physical identity and valid for one input model. *)
module Phys = struct
  type nonrec t = t
  let equal = ( == )
  let hash = Hashtbl.hash
end

module Phys_tbl = Hashtbl.Make (Phys)

let evaluator ~input =
  let cache = Phys_tbl.create 256 in
  let rec ev e =
    match e with
    | Const v -> v
    | Input i -> Int64.of_int (input i land 0xff)
    | Bin _ | Un _ | Ite _ | Load _ ->
      (match Phys_tbl.find_opt cache e with
       | Some v -> v
       | None ->
         let v =
           match e with
           | Const _ | Input _ -> assert false
           | Bin (op, a, b) -> eval_bin op (ev a) (ev b)
           | Un (op, a) -> eval_un op (ev a)
           | Ite (c, t, f) -> if ev c <> 0L then ev t else ev f
           | Load (m, addr, size) -> load_cached ev m (ev addr) size
         in
         Phys_tbl.replace cache e v;
         v)
  and load_cached ev m addr size =
    let byte i =
      let ba = Int64.add addr (Int64.of_int i) in
      let rec walk = function
        | [] ->
          (match Machine.Memory.read_u8_opt m.base ba with
           | Some v -> Int64.of_int v
           | None -> 0L)
        | (waddr, wval, wsize) :: rest ->
          let wa = ev waddr in
          let off = Int64.sub ba wa in
          if Int64.compare off 0L >= 0
             && Int64.compare off (Int64.of_int wsize) < 0
          then
            Int64.logand
              (Int64.shift_right_logical (ev wval) (8 * Int64.to_int off))
              0xFFL
          else walk rest
      in
      walk m.writes
    in
    let r = ref 0L in
    for i = size - 1 downto 0 do
      r := Int64.logor (Int64.shift_left !r 8) (byte i)
    done;
    !r
  in
  ev

(* --- compiled form ----------------------------------------------------------- *)

(* For solver workloads the same expression DAG is evaluated under thousands
   of candidate models.  [compile] flattens the DAG once into an array
   program in topological order; [run] then evaluates a model with a single
   allocation-free sweep. *)

type cnode =
  | C_const of int64
  | C_input of int
  | C_bin of binop * int * int
  | C_un of unop * int
  | C_ite of int * int * int
  | C_load of Machine.Memory.t * int * int * (int * int * int) list
      (* base, addr idx, size, write log as (addr idx, value idx, size) *)

type compiled = {
  nodes : cnode array;
  roots : int array;              (* one per source expression *)
  values : int64 array;           (* scratch, reused across runs *)
}

let compile (exprs : t list) : compiled =
  let tbl = Phys_tbl.create 1024 in
  let nodes = ref [] in
  let count = ref 0 in
  let add n =
    nodes := n :: !nodes;
    let i = !count in
    incr count;
    i
  in
  let rec go e =
    match Phys_tbl.find_opt tbl e with
    | Some i -> i
    | None ->
      let i =
        match e with
        | Const v -> add (C_const v)
        | Input i -> add (C_input i)
        | Bin (op, a, b) ->
          let ia = go a in
          let ib = go b in
          add (C_bin (op, ia, ib))
        | Un (op, a) ->
          let ia = go a in
          add (C_un (op, ia))
        | Ite (c, t, f) ->
          let ic = go c in
          let it = go t in
          let if_ = go f in
          add (C_ite (ic, it, if_))
        | Load (m, addr, size) ->
          let ia = go addr in
          let log =
            List.map
              (fun (wa, wv, ws) ->
                 let iwa = go wa in
                 let iwv = go wv in
                 (iwa, iwv, ws))
              m.writes
          in
          add (C_load (m.base, ia, size, log))
      in
      Phys_tbl.replace tbl e i;
      i
  in
  let roots = Array.of_list (List.map go exprs) in
  let nodes = Array.of_list (List.rev !nodes) in
  { nodes; roots; values = Array.make (Array.length nodes) 0L }

(* Evaluate all roots under [input]; returns the scratch array indexed by
   node id (read roots via [c.roots]). *)
let run (c : compiled) ~input =
  let v = c.values in
  for i = 0 to Array.length c.nodes - 1 do
    v.(i) <-
      (match c.nodes.(i) with
       | C_const x -> x
       | C_input k -> Int64.of_int (input k land 0xff)
       | C_bin (op, a, b) -> eval_bin op v.(a) v.(b)
       | C_un (op, a) -> eval_un op v.(a)
       | C_ite (cc, t, f) -> if v.(cc) <> 0L then v.(t) else v.(f)
       | C_load (base, ia, size, log) ->
         let addr = v.(ia) in
         let byte bi =
           let ba = Int64.add addr (Int64.of_int bi) in
           let rec walk = function
             | [] ->
               (match Machine.Memory.read_u8_opt base ba with
                | Some x -> Int64.of_int x
                | None -> 0L)
             | (iwa, iwv, ws) :: rest ->
               let off = Int64.sub ba v.(iwa) in
               if Int64.compare off 0L >= 0
                  && Int64.compare off (Int64.of_int ws) < 0
               then
                 Int64.logand
                   (Int64.shift_right_logical v.(iwv) (8 * Int64.to_int off))
                   0xFFL
               else walk rest
           in
           walk log
         in
         let r = ref 0L in
         for k = size - 1 downto 0 do
           r := Int64.logor (Int64.shift_left !r 8) (byte k)
         done;
         !r)
  done;
  v

(* --- inspection ------------------------------------------------------------ *)

(* DAG-aware: visited set on physical identity, or traversal is
   exponential. *)
let input_bytes acc e =
  let visited = Phys_tbl.create 64 in
  let bytes = Hashtbl.create 8 in
  List.iter (fun b -> Hashtbl.replace bytes b ()) acc;
  let rec go e =
    if not (Phys_tbl.mem visited e) then begin
      Phys_tbl.replace visited e ();
      match e with
      | Const _ -> ()
      | Input i -> Hashtbl.replace bytes i ()
      | Bin (_, a, b) -> go a; go b
      | Un (_, a) -> go a
      | Ite (c, t, f) -> go c; go t; go f
      | Load (m, a, _) ->
        go a;
        List.iter (fun (wa, wv, _) -> go wa; go wv) m.writes
    end
  in
  go e;
  Hashtbl.fold (fun b () acc -> b :: acc) bytes []

exception Found_input

let depends_on_input e =
  let visited = Phys_tbl.create 64 in
  let rec go e =
    if not (Phys_tbl.mem visited e) then begin
      Phys_tbl.replace visited e ();
      match e with
      | Const _ -> ()
      | Input _ -> raise Found_input
      | Bin (_, a, b) -> go a; go b
      | Un (_, a) -> go a
      | Ite (c, t, f) -> go c; go t; go f
      | Load (m, a, _) ->
        go a;
        List.iter (fun (wa, wv, _) -> go wa; go wv) m.writes
    end
  in
  match go e with () -> false | exception Found_input -> true

let rec size e =
  match e with
  | Const _ | Input _ -> 1
  | Bin (_, a, b) -> 1 + size a + size b
  | Un (_, a) -> 1 + size a
  | Ite (c, t, f) -> 1 + size c + size t + size f
  | Load (_, a, _) -> 1 + size a

let rec pp fmt e =
  match e with
  | Const v -> Format.fprintf fmt "0x%Lx" v
  | Input i -> Format.fprintf fmt "in[%d]" i
  | Bin (op, a, b) ->
    let s = match op with
      | Add -> "+" | Sub -> "-" | Mul -> "*" | Udiv -> "/u" | Urem -> "%u"
      | Sdiv -> "/s" | Srem -> "%s" | And -> "&" | Or -> "|" | Xor -> "^"
      | Shl -> "<<" | Shr -> ">>u" | Sar -> ">>s" | Eq -> "==" | Ult -> "<u"
      | Slt -> "<s" | Ule -> "<=u" | Sle -> "<=s"
      | Mulhi_u -> "*hu" | Mulhi_s -> "*hs"
    in
    Format.fprintf fmt "(%a %s %a)" pp a s pp b
  | Un (Not, a) -> Format.fprintf fmt "~%a" pp a
  | Un (Neg, a) -> Format.fprintf fmt "-%a" pp a
  | Un (Low (w, s), a) ->
    Format.fprintf fmt "%s%d(%a)" (if s then "sext" else "zext") (width_bits w) pp a
  | Un (Bool_not, a) -> Format.fprintf fmt "!%a" pp a
  | Ite (c, t, f) -> Format.fprintf fmt "(%a ? %a : %a)" pp c pp t pp f
  | Load (_, a, n) -> Format.fprintf fmt "mem%d[%a]" n pp a
