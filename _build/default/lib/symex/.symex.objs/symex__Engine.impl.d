lib/symex/engine.ml: Array Expr Hashtbl Image Int64 List Machine Queue Runner Solver Sym_state Unix Util X86
