lib/symex/expr.ml: Array Format Hashtbl Int64 List Machine X86
