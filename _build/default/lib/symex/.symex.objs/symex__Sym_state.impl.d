lib/symex/sym_state.ml: Array Expr Hashtbl Int64 List Machine Map Printf Solver X86
