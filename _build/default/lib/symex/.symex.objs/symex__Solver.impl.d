lib/symex/solver.ml: Array Expr Int64 List Unix Util
