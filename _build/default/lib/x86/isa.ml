(* x64-lite instruction set.

   A 16-GPR, 64-bit, little-endian ISA with x86-compatible flag semantics and
   a variable-length byte encoding (see {!Encode}/{!Decode}).  It is the
   substrate on which compiled functions, gadgets and ROP chains live; the
   subset was chosen so that every construction of the paper (neg/adc flag
   leaks, cmov-based branch offsets, xchg-rsp stack pivoting, jump tables)
   is expressible with genuine x86 idioms. *)

type reg =
  | RAX | RCX | RDX | RBX | RSP | RBP | RSI | RDI
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

let reg_index = function
  | RAX -> 0 | RCX -> 1 | RDX -> 2 | RBX -> 3
  | RSP -> 4 | RBP -> 5 | RSI -> 6 | RDI -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

let reg_of_index = function
  | 0 -> RAX | 1 -> RCX | 2 -> RDX | 3 -> RBX
  | 4 -> RSP | 5 -> RBP | 6 -> RSI | 7 -> RDI
  | 8 -> R8 | 9 -> R9 | 10 -> R10 | 11 -> R11
  | 12 -> R12 | 13 -> R13 | 14 -> R14 | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "reg_of_index %d" n)

let all_regs =
  [ RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI;
    R8; R9; R10; R11; R12; R13; R14; R15 ]

type width = W8 | W16 | W32 | W64

let width_index = function W8 -> 0 | W16 -> 1 | W32 -> 2 | W64 -> 3
let width_of_index = function
  | 0 -> W8 | 1 -> W16 | 2 -> W32 | 3 -> W64
  | n -> invalid_arg (Printf.sprintf "width_of_index %d" n)

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8
let width_bits w = 8 * width_bytes w

(* Memory operand: [base + index*scale + disp].  Scale is 1, 2, 4 or 8. *)
type mem = {
  base : reg option;
  index : (reg * int) option;
  disp : int64;
}

let mem ?base ?index disp = { base; index; disp }
let mem_b base disp = { base = Some base; index = None; disp = Int64.of_int disp }
let mem_abs disp = { base = None; index = None; disp }

type operand =
  | Reg of reg
  | Imm of int64
  | Mem of mem

(* Condition codes with standard x86 numbering. *)
type cc =
  | O | NO | B | AE | E | NE | BE | A
  | S | NS | P | NP | L | GE | LE | G

let cc_index = function
  | O -> 0 | NO -> 1 | B -> 2 | AE -> 3 | E -> 4 | NE -> 5 | BE -> 6 | A -> 7
  | S -> 8 | NS -> 9 | P -> 10 | NP -> 11 | L -> 12 | GE -> 13 | LE -> 14 | G -> 15

let cc_of_index = function
  | 0 -> O | 1 -> NO | 2 -> B | 3 -> AE | 4 -> E | 5 -> NE | 6 -> BE | 7 -> A
  | 8 -> S | 9 -> NS | 10 -> P | 11 -> NP | 12 -> L | 13 -> GE | 14 -> LE | 15 -> G
  | n -> invalid_arg (Printf.sprintf "cc_of_index %d" n)

let cc_negate = function
  | O -> NO | NO -> O | B -> AE | AE -> B | E -> NE | NE -> E | BE -> A | A -> BE
  | S -> NS | NS -> S | P -> NP | NP -> P | L -> GE | GE -> L | LE -> G | G -> LE

type alu_op = Add | Sub | And | Or | Xor | Adc | Sbb | Cmp | Test

let alu_index = function
  | Add -> 0 | Sub -> 1 | And -> 2 | Or -> 3 | Xor -> 4 | Adc -> 5 | Sbb -> 6
  | Cmp -> 7 | Test -> 8

let alu_of_index = function
  | 0 -> Add | 1 -> Sub | 2 -> And | 3 -> Or | 4 -> Xor | 5 -> Adc | 6 -> Sbb
  | 7 -> Cmp | 8 -> Test
  | n -> invalid_arg (Printf.sprintf "alu_of_index %d" n)

type un_op = Neg | Not | Inc | Dec

let un_index = function Neg -> 0 | Not -> 1 | Inc -> 2 | Dec -> 3
let un_of_index = function
  | 0 -> Neg | 1 -> Not | 2 -> Inc | 3 -> Dec
  | n -> invalid_arg (Printf.sprintf "un_of_index %d" n)

type shift_op = Shl | Shr | Sar | Rol | Ror

let shift_index = function Shl -> 0 | Shr -> 1 | Sar -> 2 | Rol -> 3 | Ror -> 4
let shift_of_index = function
  | 0 -> Shl | 1 -> Shr | 2 -> Sar | 3 -> Rol | 4 -> Ror
  | n -> invalid_arg (Printf.sprintf "shift_of_index %d" n)

type shift_count = S_imm of int | S_cl

(* Full-width multiply/divide on RDX:RAX, always 64-bit. *)
type muldiv_op = Mul | Imul1 | Div | Idiv

let muldiv_index = function Mul -> 0 | Imul1 -> 1 | Div -> 2 | Idiv -> 3
let muldiv_of_index = function
  | 0 -> Mul | 1 -> Imul1 | 2 -> Div | 3 -> Idiv
  | n -> invalid_arg (Printf.sprintf "muldiv_of_index %d" n)

type jump_target =
  | J_rel of int          (* displacement from the end of the instruction *)
  | J_op of operand       (* indirect through register or memory *)

type instr =
  | Mov of width * operand * operand      (* dst, src; no mem-to-mem *)
  | Movzx of width * width * reg * operand  (* dst width, src width *)
  | Movsx of width * width * reg * operand
  | Lea of reg * mem
  | Push of operand
  | Pop of operand
  | Alu of alu_op * width * operand * operand  (* dst, src *)
  | Unary of un_op * width * operand
  | Imul2 of width * reg * operand        (* dst := dst * src, truncated *)
  | MulDiv of muldiv_op * operand         (* operates on RDX:RAX, W64 *)
  | Shift of shift_op * width * operand * shift_count
  | Cmov of cc * reg * operand            (* 64-bit conditional move *)
  | Setcc of cc * operand                 (* byte destination *)
  | Jmp of jump_target
  | Jcc of cc * int
  | Call of jump_target
  | Ret
  | Leave
  | Xchg of width * operand * operand     (* at least one side is a register *)
  | Nop
  | Hlt
  | Lahf                                  (* AH := flags (SF ZF 0 0 0 PF 1 CF) *)
  | Sahf                                  (* flags := AH *)

(* Zero/sign extension combos supported by Movzx/Movsx: (dst, src). *)
let ext_combos = [ (W16, W8); (W32, W8); (W32, W16); (W64, W8); (W64, W16); (W64, W32) ]

let ext_combo_index (dw, sw) =
  let rec find i = function
    | [] -> invalid_arg "ext_combo_index"
    | c :: rest -> if c = (dw, sw) then i else find (i + 1) rest
  in
  find 0 ext_combos

let ext_combo_of_index i =
  match List.nth_opt ext_combos i with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "ext_combo_of_index %d" i)

(* Does this instruction end a basic block? *)
let is_terminator = function
  | Jmp _ | Jcc _ | Ret | Hlt -> true
  | Mov _ | Movzx _ | Movsx _ | Lea _ | Push _ | Pop _ | Alu _ | Unary _
  | Imul2 _ | MulDiv _ | Shift _ | Cmov _ | Setcc _ | Call _ | Leave
  | Xchg _ | Nop | Lahf | Sahf -> false
