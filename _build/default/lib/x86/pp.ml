(* Intel-syntax assembly printer for x64-lite. *)

open Isa

let reg_name = function
  | RAX -> "rax" | RCX -> "rcx" | RDX -> "rdx" | RBX -> "rbx"
  | RSP -> "rsp" | RBP -> "rbp" | RSI -> "rsi" | RDI -> "rdi"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10" | R11 -> "r11"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"

let width_name = function W8 -> "byte" | W16 -> "word" | W32 -> "dword" | W64 -> "qword"

let cc_name = function
  | O -> "o" | NO -> "no" | B -> "b" | AE -> "ae" | E -> "e" | NE -> "ne"
  | BE -> "be" | A -> "a" | S -> "s" | NS -> "ns" | P -> "p" | NP -> "np"
  | L -> "l" | GE -> "ge" | LE -> "le" | G -> "g"

let mem_str (m : mem) =
  let parts = ref [] in
  (match m.base with Some b -> parts := [ reg_name b ] | None -> ());
  (match m.index with
   | Some (r, 1) -> parts := !parts @ [ reg_name r ]
   | Some (r, s) -> parts := !parts @ [ Printf.sprintf "%s*%d" (reg_name r) s ]
   | None -> ());
  let base = String.concat " + " !parts in
  if m.disp = 0L && base <> "" then Printf.sprintf "[%s]" base
  else if base = "" then Printf.sprintf "[0x%Lx]" m.disp
  else if m.disp > 0L then Printf.sprintf "[%s + 0x%Lx]" base m.disp
  else Printf.sprintf "[%s - 0x%Lx]" base (Int64.neg m.disp)

let operand_str ?(w = W64) = function
  | Reg r -> reg_name r
  | Imm v -> if v >= 0L then Printf.sprintf "0x%Lx" v else Printf.sprintf "-0x%Lx" (Int64.neg v)
  | Mem m -> Printf.sprintf "%s ptr %s" (width_name w) (mem_str m)

let alu_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Adc -> "adc" | Sbb -> "sbb" | Cmp -> "cmp" | Test -> "test"

let un_name = function Neg -> "neg" | Not -> "not" | Inc -> "inc" | Dec -> "dec"

let shift_name = function
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar" | Rol -> "rol" | Ror -> "ror"

let muldiv_name = function Mul -> "mul" | Imul1 -> "imul" | Div -> "div" | Idiv -> "idiv"

let target_str = function
  | J_rel d -> Printf.sprintf "$%+d" d
  | J_op o -> operand_str o

let instr_str i =
  let op2 name w a b =
    Printf.sprintf "%s %s, %s" name (operand_str ~w a) (operand_str ~w b)
  in
  match i with
  | Nop -> "nop"
  | Ret -> "ret"
  | Leave -> "leave"
  | Hlt -> "hlt"
  | Lahf -> "lahf"
  | Sahf -> "sahf"
  | Mov (w, d, s) -> op2 "mov" w d s
  | Xchg (w, a, b) -> op2 "xchg" w a b
  | Alu (o, w, d, s) -> op2 (alu_name o) w d s
  | Unary (o, w, a) -> Printf.sprintf "%s %s" (un_name o) (operand_str ~w a)
  | Imul2 (w, r, s) -> Printf.sprintf "imul %s, %s" (reg_name r) (operand_str ~w s)
  | MulDiv (o, a) -> Printf.sprintf "%s %s" (muldiv_name o) (operand_str a)
  | Shift (o, w, a, S_cl) -> Printf.sprintf "%s %s, cl" (shift_name o) (operand_str ~w a)
  | Shift (o, w, a, S_imm n) -> Printf.sprintf "%s %s, %d" (shift_name o) (operand_str ~w a) n
  | Cmov (c, r, s) -> Printf.sprintf "cmov%s %s, %s" (cc_name c) (reg_name r) (operand_str s)
  | Setcc (c, a) -> Printf.sprintf "set%s %s" (cc_name c) (operand_str ~w:W8 a)
  | Lea (r, m) -> Printf.sprintf "lea %s, %s" (reg_name r) (mem_str m)
  | Push a -> Printf.sprintf "push %s" (operand_str a)
  | Pop a -> Printf.sprintf "pop %s" (operand_str a)
  | Jmp t -> Printf.sprintf "jmp %s" (target_str t)
  | Jcc (c, d) -> Printf.sprintf "j%s $%+d" (cc_name c) d
  | Call t -> Printf.sprintf "call %s" (target_str t)
  | Movzx (_, sw, r, s) ->
    Printf.sprintf "movzx %s, %s" (reg_name r) (operand_str ~w:sw s)
  | Movsx (_, sw, r, s) ->
    Printf.sprintf "movsx %s, %s" (reg_name r) (operand_str ~w:sw s)

let pp_instr fmt i = Format.pp_print_string fmt (instr_str i)
