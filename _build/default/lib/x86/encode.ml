(* Byte encoder for x64-lite.

   Layout: one opcode byte followed by self-describing operand bytes.  The
   encoding is variable-length (1 to ~14 bytes) on purpose: unaligned decoding
   of a byte stream yields a different-but-often-valid instruction sequence,
   which is what the paper's gadget-confusion technique (§V-D) exploits.

   Opcode map:
     0x01 Nop   0x02 Ret   0x03 Leave   0x04 Hlt
     0x08+w          Mov w dst src
     0x0C+w          Xchg w a b
     0x10+alu*4+w    Alu (Add Sub And Or Xor Adc Sbb Cmp) w dst src
     0x30+w          Test w a b
     0x34+un*4+w     Unary (Neg Not Inc Dec) w op
     0x44+w          Imul2 w reg op
     0x48+sh*4+w     Shift (Shl Shr Sar Rol Ror) w op count
     0x5C+md         MulDiv (Mul Imul1 Div Idiv) op
     0x60 Lea reg mem        0x61 Push op   0x62 Pop op
     0x63 Jmp rel32  0x64 Jmp op  0x65 Call rel32  0x66 Call op
     0x68+cc Jcc rel32   0x78+cc Setcc op   0x88+cc Cmov reg op
     0x98+x Movzx combo reg op   0x9E+x Movsx combo reg op

   Operand mode bytes:
     0x00|r  Reg r                      0x10|r  [r + disp8]
     0x20|r  [r + disp32]               0x30|r  [r + idx*scale + disp32]
     0x40    [disp32]                   0x41    [idx*scale + disp32]
     0x50 imm8   0x51 imm32   0x52 imm64
   Shift counts: 0x00 CL, 0x01 imm8. *)

open Isa

exception Encoding_error of string

let max_instr_len = 16

let fits_i8 v = v >= -128L && v <= 127L
let fits_i32 v = v >= -2147483648L && v <= 2147483647L

let emit_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let emit_i8 buf (v : int64) = emit_u8 buf (Int64.to_int v land 0xff)

let emit_i32 buf (v : int64) =
  let v = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  emit_u8 buf v;
  emit_u8 buf (v lsr 8);
  emit_u8 buf (v lsr 16);
  emit_u8 buf (v lsr 24)

let emit_i64 buf (v : int64) =
  for i = 0 to 7 do
    emit_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

let scale_log2 = function
  | 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3
  | s -> raise (Encoding_error (Printf.sprintf "bad scale %d" s))

let emit_mem buf (m : mem) =
  match m.base, m.index with
  | Some b, None ->
    if fits_i8 m.disp then begin
      emit_u8 buf (0x10 lor reg_index b);
      emit_i8 buf m.disp
    end else if fits_i32 m.disp then begin
      emit_u8 buf (0x20 lor reg_index b);
      emit_i32 buf m.disp
    end else raise (Encoding_error "mem disp out of 32-bit range")
  | Some b, Some (ix, sc) ->
    if not (fits_i32 m.disp) then raise (Encoding_error "mem disp out of 32-bit range");
    emit_u8 buf (0x30 lor reg_index b);
    emit_u8 buf (reg_index ix lor (scale_log2 sc lsl 4));
    emit_i32 buf m.disp
  | None, None ->
    if not (fits_i32 m.disp) then raise (Encoding_error "abs disp out of 32-bit range");
    emit_u8 buf 0x40;
    emit_i32 buf m.disp
  | None, Some (ix, sc) ->
    if not (fits_i32 m.disp) then raise (Encoding_error "abs disp out of 32-bit range");
    emit_u8 buf 0x41;
    emit_u8 buf (reg_index ix lor (scale_log2 sc lsl 4));
    emit_i32 buf m.disp

(* [wide] forces the 8-byte immediate form; the ROP materializer uses it to
   keep chain strides uniform when desired. *)
let emit_operand ?(wide_imm = false) buf = function
  | Reg r -> emit_u8 buf (reg_index r)
  | Mem m -> emit_mem buf m
  | Imm v ->
    if wide_imm then begin
      emit_u8 buf 0x52;
      emit_i64 buf v
    end else if fits_i8 v then begin
      emit_u8 buf 0x50;
      emit_i8 buf v
    end else if fits_i32 v then begin
      emit_u8 buf 0x51;
      emit_i32 buf v
    end else begin
      emit_u8 buf 0x52;
      emit_i64 buf v
    end

let emit_reg buf r = emit_u8 buf (reg_index r)

let encode_into ?(wide_imm = false) buf instr =
  let op = emit_operand ~wide_imm buf in
  match instr with
  | Nop -> emit_u8 buf 0x01
  | Ret -> emit_u8 buf 0x02
  | Leave -> emit_u8 buf 0x03
  | Hlt -> emit_u8 buf 0x04
  | Lahf -> emit_u8 buf 0x05
  | Sahf -> emit_u8 buf 0x06
  | Mov (w, d, s) -> emit_u8 buf (0x08 + width_index w); op d; op s
  | Xchg (w, a, b) -> emit_u8 buf (0x0C + width_index w); op a; op b
  | Alu (Test, w, a, b) -> emit_u8 buf (0x30 + width_index w); op a; op b
  | Alu (o, w, d, s) ->
    emit_u8 buf (0x10 + alu_index o * 4 + width_index w); op d; op s
  | Unary (o, w, a) -> emit_u8 buf (0x34 + un_index o * 4 + width_index w); op a
  | Imul2 (w, r, s) -> emit_u8 buf (0x44 + width_index w); emit_reg buf r; op s
  | Shift (o, w, a, c) ->
    emit_u8 buf (0x48 + shift_index o * 4 + width_index w);
    op a;
    (match c with
     | S_cl -> emit_u8 buf 0x00
     | S_imm n -> emit_u8 buf 0x01; emit_u8 buf n)
  | MulDiv (o, a) -> emit_u8 buf (0x5C + muldiv_index o); op a
  | Lea (r, m) -> emit_u8 buf 0x60; emit_reg buf r; emit_mem buf m
  | Push a -> emit_u8 buf 0x61; op a
  | Pop a -> emit_u8 buf 0x62; op a
  | Jmp (J_rel d) -> emit_u8 buf 0x63; emit_i32 buf (Int64.of_int d)
  | Jmp (J_op a) -> emit_u8 buf 0x64; op a
  | Call (J_rel d) -> emit_u8 buf 0x65; emit_i32 buf (Int64.of_int d)
  | Call (J_op a) -> emit_u8 buf 0x66; op a
  | Jcc (c, d) -> emit_u8 buf (0x68 + cc_index c); emit_i32 buf (Int64.of_int d)
  | Setcc (c, a) -> emit_u8 buf (0x78 + cc_index c); op a
  | Cmov (c, r, s) -> emit_u8 buf (0x88 + cc_index c); emit_reg buf r; op s
  | Movzx (dw, sw, r, s) ->
    emit_u8 buf (0x98 + ext_combo_index (dw, sw)); emit_reg buf r; op s
  | Movsx (dw, sw, r, s) ->
    emit_u8 buf (0x9E + ext_combo_index (dw, sw)); emit_reg buf r; op s

let encode ?wide_imm instr =
  let buf = Buffer.create 8 in
  encode_into ?wide_imm buf instr;
  Buffer.to_bytes buf

let length ?wide_imm instr = Bytes.length (encode ?wide_imm instr)

(* Encode a whole sequence into one byte string. *)
let encode_list ?wide_imm instrs =
  let buf = Buffer.create 64 in
  List.iter (encode_into ?wide_imm buf) instrs;
  Buffer.to_bytes buf
