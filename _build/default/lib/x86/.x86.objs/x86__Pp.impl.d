lib/x86/pp.ml: Format Int64 Isa Printf String
