lib/x86/decode.ml: Bytes Char Int32 Int64 Isa List
