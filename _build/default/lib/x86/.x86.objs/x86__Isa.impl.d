lib/x86/isa.ml: Int64 List Printf
