lib/x86/encode.ml: Buffer Bytes Char Int64 Isa List Printf
