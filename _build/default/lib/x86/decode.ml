(* Byte decoder for x64-lite, the mirror of {!Encode}.

   [decode buf off] returns [Some (instr, len)] or [None] when the bytes at
   [off] do not form a valid instruction.  Decoding is deliberately total over
   offsets: the gadget finder and ROPDissector-style speculative analyses
   decode at arbitrary (including unaligned) offsets. *)

open Isa

type cursor = { buf : bytes; limit : int; mutable pos : int }

exception Bad

let u8 c =
  if c.pos >= c.limit then raise Bad;
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let i8 c =
  let v = u8 c in
  Int64.of_int (if v >= 128 then v - 256 else v)

let i32 c =
  let b0 = u8 c in
  let b1 = u8 c in
  let b2 = u8 c in
  let b3 = u8 c in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  (* sign-extend 32 -> 64 *)
  Int64.of_int32 (Int32.of_int v)

let i64 c =
  let r = ref 0L in
  for i = 0 to 7 do
    r := Int64.logor !r (Int64.shift_left (Int64.of_int (u8 c)) (8 * i))
  done;
  !r

let scale_of_log2 = function
  | 0 -> 1 | 1 -> 2 | 2 -> 4 | 3 -> 8 | _ -> raise Bad

let reg_byte c = reg_of_index (u8 c land 0xF)

let index_byte c =
  let b = u8 c in
  (reg_of_index (b land 0xF), scale_of_log2 ((b lsr 4) land 0x3))

let operand c =
  let m = u8 c in
  match m lsr 4 with
  | 0x0 -> Reg (reg_of_index (m land 0xF))
  | 0x1 ->
    let b = reg_of_index (m land 0xF) in
    let d = i8 c in
    Mem { base = Some b; index = None; disp = d }
  | 0x2 ->
    let b = reg_of_index (m land 0xF) in
    let d = i32 c in
    Mem { base = Some b; index = None; disp = d }
  | 0x3 ->
    let b = reg_of_index (m land 0xF) in
    let ix = index_byte c in
    let d = i32 c in
    Mem { base = Some b; index = Some ix; disp = d }
  | 0x4 when m = 0x40 -> Mem { base = None; index = None; disp = i32 c }
  | 0x4 when m = 0x41 ->
    let ix = index_byte c in
    let d = i32 c in
    Mem { base = None; index = Some ix; disp = d }
  | 0x5 when m = 0x50 -> Imm (i8 c)
  | 0x5 when m = 0x51 -> Imm (i32 c)
  | 0x5 when m = 0x52 -> Imm (i64 c)
  | _ -> raise Bad

let mem_operand c =
  match operand c with
  | Mem m -> m
  | Reg _ | Imm _ -> raise Bad

(* Destination operands may not be immediates. *)
let dst_operand c =
  match operand c with
  | Imm _ -> raise Bad
  | (Reg _ | Mem _) as o -> o

let shift_count c =
  match u8 c with
  | 0x00 -> S_cl
  | 0x01 -> S_imm (u8 c)
  | _ -> raise Bad

(* Reject mem-to-mem data moves, as on real x86. *)
let check_not_mem_mem a b =
  match a, b with
  | Mem _, Mem _ -> raise Bad
  | (Reg _ | Imm _ | Mem _), (Reg _ | Imm _ | Mem _) -> ()

let instr c =
  let opc = u8 c in
  match opc with
  | 0x01 -> Nop
  | 0x02 -> Ret
  | 0x03 -> Leave
  | 0x04 -> Hlt
  | 0x05 -> Lahf
  | 0x06 -> Sahf
  | _ when opc >= 0x08 && opc <= 0x0B ->
    let w = width_of_index (opc - 0x08) in
    let d = dst_operand c in
    let s = operand c in
    check_not_mem_mem d s;
    Mov (w, d, s)
  | _ when opc >= 0x0C && opc <= 0x0F ->
    let w = width_of_index (opc - 0x0C) in
    let a = dst_operand c in
    let b = dst_operand c in
    check_not_mem_mem a b;
    Xchg (w, a, b)
  | _ when opc >= 0x10 && opc <= 0x2F ->
    let o = alu_of_index ((opc - 0x10) / 4) in
    let w = width_of_index ((opc - 0x10) mod 4) in
    let d = dst_operand c in
    let s = operand c in
    check_not_mem_mem d s;
    Alu (o, w, d, s)
  | _ when opc >= 0x30 && opc <= 0x33 ->
    let w = width_of_index (opc - 0x30) in
    let a = dst_operand c in
    let b = operand c in
    check_not_mem_mem a b;
    Alu (Test, w, a, b)
  | _ when opc >= 0x34 && opc <= 0x43 ->
    let o = un_of_index ((opc - 0x34) / 4) in
    let w = width_of_index ((opc - 0x34) mod 4) in
    Unary (o, w, dst_operand c)
  | _ when opc >= 0x44 && opc <= 0x47 ->
    let w = width_of_index (opc - 0x44) in
    let r = reg_byte c in
    Imul2 (w, r, operand c)
  | _ when opc >= 0x48 && opc <= 0x5B ->
    let o = shift_of_index ((opc - 0x48) / 4) in
    let w = width_of_index ((opc - 0x48) mod 4) in
    let a = dst_operand c in
    Shift (o, w, a, shift_count c)
  | _ when opc >= 0x5C && opc <= 0x5F ->
    MulDiv (muldiv_of_index (opc - 0x5C), dst_operand c)
  | 0x60 ->
    let r = reg_byte c in
    Lea (r, mem_operand c)
  | 0x61 -> Push (operand c)
  | 0x62 -> Pop (dst_operand c)
  | 0x63 -> Jmp (J_rel (Int64.to_int (i32 c)))
  | 0x64 -> Jmp (J_op (dst_operand c))
  | 0x65 -> Call (J_rel (Int64.to_int (i32 c)))
  | 0x66 -> Call (J_op (dst_operand c))
  | _ when opc >= 0x68 && opc <= 0x77 ->
    Jcc (cc_of_index (opc - 0x68), Int64.to_int (i32 c))
  | _ when opc >= 0x78 && opc <= 0x87 ->
    Setcc (cc_of_index (opc - 0x78), dst_operand c)
  | _ when opc >= 0x88 && opc <= 0x97 ->
    let cc = cc_of_index (opc - 0x88) in
    let r = reg_byte c in
    Cmov (cc, r, operand c)
  | _ when opc >= 0x98 && opc <= 0x9D ->
    let dw, sw = ext_combo_of_index (opc - 0x98) in
    let r = reg_byte c in
    Movzx (dw, sw, r, operand c)
  | _ when opc >= 0x9E && opc <= 0xA3 ->
    let dw, sw = ext_combo_of_index (opc - 0x9E) in
    let r = reg_byte c in
    Movsx (dw, sw, r, operand c)
  | _ -> raise Bad

(* Decode one instruction at [off] in [buf], up to [limit] (default: end of
   buffer).  Returns the instruction and its encoded length. *)
let decode ?limit buf off =
  let limit = match limit with Some l -> l | None -> Bytes.length buf in
  if off < 0 || off >= limit then None
  else
    let c = { buf; limit; pos = off } in
    match instr c with
    | i -> Some (i, c.pos - off)
    | exception Bad -> None
    | exception Invalid_argument _ -> None

(* Linear sweep from [off]: decode until failure or terminator predicate. *)
let decode_all buf =
  let rec go off acc =
    if off >= Bytes.length buf then List.rev acc
    else
      match decode buf off with
      | Some (i, len) -> go (off + len) ((off, i, len) :: acc)
      | None -> List.rev acc
  in
  go 0 []
