(* Mini-C: the source language for programs we compile and then obfuscate.

   It is deliberately C-shaped (the paper obfuscates gcc output): 64-bit
   integer scalars with explicit narrow loads/stores and casts, local arrays,
   globals, loops, switch (compiled to jump tables), and function calls.
   Programs are built with the EDSL combinators at the bottom of this file;
   there is no parser because every workload in the evaluation is generated
   programmatically (RandomFuns, clbg analogs, base64, corpus). *)

type width = X86.Isa.width

type binop =
  | Add | Sub | Mul | Divs | Divu | Rems | Remu
  | Band | Bor | Bxor | Shl | Shr | Sar
  | Eq | Ne | Lts | Les | Gts | Ges | Ltu | Leu | Gtu | Geu
  | Land | Lor

type unop = Neg | Bnot | Lnot

type expr =
  | Const of int64
  | Var of string
  | Load of width * bool * expr        (* width, signed, address *)
  | Addr_local of string               (* address of a local array *)
  | Addr_global of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list
  | Cast of width * bool * expr        (* truncate to width, then extend *)

type stmt =
  | Assign of string * expr
  | Store of width * expr * expr       (* width, address, value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt * expr * stmt * stmt list
  | Switch of expr * (int * stmt list) list * stmt list
  | Return of expr
  | Expr of expr
  | Break
  | Continue

type func = {
  fname : string;
  params : string list;                (* 64-bit scalars, at most 6 *)
  locals : string list;                (* 64-bit scalars *)
  arrays : (string * int) list;        (* local buffers: name, size bytes *)
  body : stmt list;
}

type global =
  | G_bytes of string * string         (* initialized data *)
  | G_zero of string * int
  | G_quads of string * int64 list

type program = {
  globals : global list;
  funcs : func list;
}

(* ---- EDSL -------------------------------------------------------------- *)

let c i = Const (Int64.of_int i)
let c64 i = Const i
let v n = Var n
let band a b = Bin (Band, a, b)
let bor a b = Bin (Bor, a, b)
let bxor a b = Bin (Bxor, a, b)
let shl a b = Bin (Shl, a, b)
let shr a b = Bin (Shr, a, b)
let sar a b = Bin (Sar, a, b)
let neg a = Un (Neg, a)

(* Symbolic operators shadow the stdlib ones; open locally where a program is
   being described, never at file scope. *)
module Infix = struct
  let ( + ) a b = Bin (Add, a, b)
  let ( - ) a b = Bin (Sub, a, b)
  let ( * ) a b = Bin (Mul, a, b)
  let ( / ) a b = Bin (Divs, a, b)
  let ( % ) a b = Bin (Rems, a, b)
  let ( /^ ) a b = Bin (Divu, a, b)
  let ( %^ ) a b = Bin (Remu, a, b)
  let ( == ) a b = Bin (Eq, a, b)
  let ( != ) a b = Bin (Ne, a, b)
  let ( < ) a b = Bin (Lts, a, b)
  let ( <= ) a b = Bin (Les, a, b)
  let ( > ) a b = Bin (Gts, a, b)
  let ( >= ) a b = Bin (Ges, a, b)
  let ( <^ ) a b = Bin (Ltu, a, b)
  let ( >=^ ) a b = Bin (Geu, a, b)
  let ( && ) a b = Bin (Land, a, b)
  let ( || ) a b = Bin (Lor, a, b)
end
let bnot a = Un (Bnot, a)
let lnot_ a = Un (Lnot, a)
let byte e = Cast (X86.Isa.W8, false, e)          (* (unsigned char) e *)
let sbyte e = Cast (X86.Isa.W8, true, e)
let word32 e = Cast (X86.Isa.W32, false, e)
let load8 a = Load (X86.Isa.W8, false, a)
let load64 a = Load (X86.Isa.W64, false, a)
let store8 a v = Store (X86.Isa.W8, a, v)
let store64 a v = Store (X86.Isa.W64, a, v)
let set n e = Assign (n, e)
let call f args = Call (f, args)

let func ?(params = []) ?(locals = []) ?(arrays = []) fname body =
  { fname; params; locals; arrays; body }

let program ?(globals = []) funcs = { globals; funcs }
