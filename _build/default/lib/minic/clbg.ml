(* The Computer Language Benchmarks Game analogs (§VII-C2, Figure 5 and
   Table III).

   Ten benchmarks mirroring the structure of the clbg/shootout programs the
   paper measures.  Floating-point kernels (mandelbrot, n-body, sp-norm) use
   16.16 fixed-point arithmetic: ROP-encoding overhead depends on
   instruction mix and control shape, not on FP (DESIGN.md).  Each benchmark
   exposes a [bench] function taking a size parameter and returning a
   checksum so correctness is checkable across obfuscation configurations. *)

open Ast

let fx = 16  (* fixed-point fractional bits *)

(* --- b-trees: allocation-heavy tree build/check (uses a bump allocator,
   reproducing the malloc/free call pattern that makes it the worst case for
   pivoting, §VII-C2) *)
let btrees =
  let alloc =
    (* node = 24 bytes: left, right, item *)
    func ~params:[ "item" ] ~locals:[ "p" ] "bt_alloc"
      [ set "p" (load64 (Addr_global "heap_ptr"));
        store64 (Addr_global "heap_ptr") (Bin (Add, v "p", c 24));
        store64 (v "p") (c 0);
        store64 (Bin (Add, v "p", c 8)) (c 0);
        store64 (Bin (Add, v "p", c 16)) (v "item");
        Return (v "p") ]
  in
  let build =
    func ~params:[ "item"; "depth" ] ~locals:[ "n" ] "bt_build"
      [ set "n" (call "bt_alloc" [ v "item" ]);
        If (Bin (Gts, v "depth", c 0),
            [ store64 (v "n")
                (call "bt_build"
                   [ Bin (Sub, Bin (Mul, v "item", c 2), c 1);
                     Bin (Sub, v "depth", c 1) ]);
              store64 (Bin (Add, v "n", c 8))
                (call "bt_build"
                   [ Bin (Mul, v "item", c 2); Bin (Sub, v "depth", c 1) ]) ],
            []);
        Return (v "n") ]
  in
  let check =
    func ~params:[ "n" ] "bt_check"
      [ If (Bin (Eq, load64 (v "n"), c 0),
            [ Return (load64 (Bin (Add, v "n", c 16))) ],
            [ Return
                (Bin (Add, load64 (Bin (Add, v "n", c 16)),
                      Bin (Sub,
                           call "bt_check" [ load64 (v "n") ],
                           call "bt_check" [ load64 (Bin (Add, v "n", c 8)) ]))) ]) ]
  in
  let bench =
    func ~params:[ "n" ] ~locals:[ "d"; "sum"; "t" ] "bench"
      [ set "sum" (c 0);
        For (set "d" (c 1), Bin (Les, v "d", v "n"),
             set "d" (Bin (Add, v "d", c 1)),
             [ store64 (Addr_global "heap_ptr") (Addr_global "heap");
               set "t" (call "bt_build" [ c 1; v "d" ]);
               set "sum" (Bin (Add, v "sum", call "bt_check" [ v "t" ])) ]);
        Return (v "sum") ]
  in
  program
    ~globals:[ G_zero ("heap", 65536); G_quads ("heap_ptr", [ 0L ]) ]
    [ alloc; build; check; bench ]

(* --- fannkuch: permutation flipping over a small array *)
let fannkuch =
  program
    [ func ~params:[ "n" ] ~locals:[ "i"; "j"; "k"; "tmp"; "flips"; "sum"; "iter" ]
        ~arrays:[ ("perm", 64) ] "bench"
        [ set "sum" (c 0);
          For (set "iter" (c 0), Bin (Lts, v "iter", v "n"),
               set "iter" (Bin (Add, v "iter", c 1)),
               [ (* perm = rotate(identity, iter) *)
                 For (set "i" (c 0), Bin (Lts, v "i", c 7),
                      set "i" (Bin (Add, v "i", c 1)),
                      [ store8 (Bin (Add, Addr_local "perm", v "i"))
                          (Bin (Rems, Bin (Add, v "i", v "iter"), c 7)) ]);
                 set "flips" (c 0);
                 set "k" (load8 (Addr_local "perm"));
                 While (Bin (Ne, v "k", c 0),
                        [ (* reverse perm[0..k] *)
                          set "i" (c 0);
                          set "j" (v "k");
                          While (Bin (Lts, v "i", v "j"),
                                 [ set "tmp" (load8 (Bin (Add, Addr_local "perm", v "i")));
                                   store8 (Bin (Add, Addr_local "perm", v "i"))
                                     (load8 (Bin (Add, Addr_local "perm", v "j")));
                                   store8 (Bin (Add, Addr_local "perm", v "j")) (v "tmp");
                                   set "i" (Bin (Add, v "i", c 1));
                                   set "j" (Bin (Sub, v "j", c 1)) ]);
                          set "flips" (Bin (Add, v "flips", c 1));
                          If (Bin (Gts, v "flips", c 50), [ Break ], []);
                          set "k" (load8 (Addr_local "perm")) ]);
                 set "sum" (Bin (Add, v "sum", v "flips")) ]);
          Return (v "sum") ] ]

(* --- fasta: LCG-driven sequence generation *)
let fasta =
  program
    [ func ~params:[ "n" ] ~locals:[ "i"; "seed"; "c"; "sum" ]
        ~arrays:[ ("buf", 256) ] "bench"
        [ set "seed" (c 42);
          set "sum" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", Bin (Mul, v "n", c 16)),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "seed"
                   (Bin (Remu, Bin (Add, Bin (Mul, v "seed", c 3877), c 29573),
                         c 139968));
                 set "c" (Bin (Add, c 65, Bin (Remu, v "seed", c 26)));
                 store8 (Bin (Add, Addr_local "buf", band (v "i") (c 0xFF))) (v "c");
                 set "sum" (Bin (Add, v "sum", v "c")) ]);
          Return (v "sum") ] ]

(* --- fasta-redux: table-driven variant *)
let fasta_redux =
  program
    ~globals:[ G_bytes ("codes", "ACGTacgtNRYKM___") ]
    [ func ~params:[ "n" ] ~locals:[ "i"; "seed"; "c"; "sum" ] "bench"
        [ set "seed" (c 123);
          set "sum" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", Bin (Mul, v "n", c 16)),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "seed"
                   (Bin (Remu, Bin (Add, Bin (Mul, v "seed", c 3877), c 29573),
                         c 139968));
                 set "c"
                   (load8 (Bin (Add, Addr_global "codes",
                                band (v "seed") (c 15))));
                 set "sum" (bxor (Bin (Mul, v "sum", c 31)) (v "c")) ]);
          Return (v "sum") ] ]

(* --- mandelbrot: 16.16 fixed-point escape iteration *)
let mandelbrot =
  program
    [ func ~params:[ "n" ] ~locals:[ "px"; "py"; "x"; "y"; "x2"; "y2"; "it"; "cx"; "cy"; "sum" ]
        "bench"
        [ set "sum" (c 0);
          For (set "py" (c 0), Bin (Lts, v "py", v "n"),
               set "py" (Bin (Add, v "py", c 1)),
               [ For (set "px" (c 0), Bin (Lts, v "px", v "n"),
                      set "px" (Bin (Add, v "px", c 1)),
                      [ set "cx"
                          (Bin (Sub, Bin (Divs, Bin (Mul, shl (v "px") (c fx), c 3), v "n"),
                                shl (c 2) (c fx)));
                        set "cy"
                          (Bin (Sub, Bin (Divs, Bin (Mul, shl (v "py") (c fx), c 2), v "n"),
                                shl (c 1) (c fx)));
                        set "x" (c 0); set "y" (c 0); set "it" (c 0);
                        While (Bin (Lts, v "it", c 20),
                               [ set "x2" (sar (Bin (Mul, v "x", v "x")) (c fx));
                                 set "y2" (sar (Bin (Mul, v "y", v "y")) (c fx));
                                 If (Bin (Gts, Bin (Add, v "x2", v "y2"),
                                          shl (c 4) (c fx)),
                                     [ Break ], []);
                                 set "y"
                                   (Bin (Add,
                                         sar (Bin (Mul, shl (v "x") (c 1), v "y")) (c fx),
                                         v "cy"));
                                 set "x" (Bin (Add, Bin (Sub, v "x2", v "y2"), v "cx"));
                                 set "it" (Bin (Add, v "it", c 1)) ]);
                        set "sum" (Bin (Add, v "sum", v "it")) ]) ]);
          Return (v "sum") ] ]

(* --- n-body: fixed-point 2-body step loop *)
let nbody =
  program
    [ func ~params:[ "n" ] ~locals:[ "i"; "x1"; "y1"; "x2"; "y2"; "vx1"; "vy1"; "vx2"; "vy2"; "dx"; "dy"; "d2"; "f" ]
        "bench"
        [ set "x1" (shl (c 1) (c fx)); set "y1" (c 0);
          set "x2" (neg (shl (c 1) (c fx))); set "y2" (shl (c 1) (c fx));
          set "vx1" (c 0); set "vy1" (c 100); set "vx2" (c 0); set "vy2" (c (-100));
          For (set "i" (c 0), Bin (Lts, v "i", Bin (Mul, v "n", c 10)),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "dx" (Bin (Sub, v "x2", v "x1"));
                 set "dy" (Bin (Sub, v "y2", v "y1"));
                 set "d2"
                   (Bin (Add,
                         sar (Bin (Mul, v "dx", v "dx")) (c fx),
                         Bin (Add,
                              sar (Bin (Mul, v "dy", v "dy")) (c fx),
                              c 1)));
                 set "f" (Bin (Divs, shl (c 1) (c (2 * fx)), v "d2"));
                 set "vx1" (Bin (Add, v "vx1", sar (Bin (Mul, v "dx", v "f")) (c (fx + 6))));
                 set "vy1" (Bin (Add, v "vy1", sar (Bin (Mul, v "dy", v "f")) (c (fx + 6))));
                 set "vx2" (Bin (Sub, v "vx2", sar (Bin (Mul, v "dx", v "f")) (c (fx + 6))));
                 set "vy2" (Bin (Sub, v "vy2", sar (Bin (Mul, v "dy", v "f")) (c (fx + 6))));
                 set "x1" (Bin (Add, v "x1", sar (v "vx1") (c 8)));
                 set "y1" (Bin (Add, v "y1", sar (v "vy1") (c 8)));
                 set "x2" (Bin (Add, v "x2", sar (v "vx2") (c 8)));
                 set "y2" (Bin (Add, v "y2", sar (v "vy2") (c 8))) ]);
          Return (bxor (Bin (Add, v "x1", v "y2")) (Bin (Add, v "x2", v "y1"))) ] ]

(* --- pidigits: iterative spigot-flavoured integer arithmetic *)
let pidigits =
  program
    [ func ~params:[ "n" ] ~locals:[ "i"; "q"; "r"; "t"; "k"; "digit"; "sum" ] "bench"
        [ set "q" (c 1); set "r" (c 0); set "t" (c 1); set "k" (c 1);
          set "sum" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "q" (band (Bin (Mul, v "q", v "k")) (c 0xFFFFFF));
                 set "r" (band (Bin (Add, Bin (Mul, v "r", v "k"), v "q")) (c 0xFFFFFF));
                 set "t" (band (Bin (Mul, v "t", Bin (Add, v "k", c 1))) (c 0xFFFFFF));
                 set "digit"
                   (Bin (Divu, Bin (Add, Bin (Mul, v "q", c 3), v "r"),
                         Bin (Add, v "t", c 1)));
                 set "sum" (Bin (Add, Bin (Mul, v "sum", c 10), band (v "digit") (c 9)));
                 set "k" (Bin (Add, v "k", c 1)) ]);
          Return (v "sum") ] ]

(* --- regex-redux: naive pattern counting over a generated buffer *)
let regex_redux =
  program
    [ func ~params:[ "hay"; "hlen"; "a"; "b" ] ~locals:[ "i"; "cnt" ] "count2"
        [ set "cnt" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", Bin (Sub, v "hlen", c 1)),
               set "i" (Bin (Add, v "i", c 1)),
               [ If (Bin (Land,
                          Bin (Eq, load8 (Bin (Add, v "hay", v "i")), v "a"),
                          Bin (Eq, load8 (Bin (Add, v "hay", Bin (Add, v "i", c 1))), v "b")),
                     [ set "cnt" (Bin (Add, v "cnt", c 1)) ], []) ]);
          Return (v "cnt") ];
      func ~params:[ "n" ] ~locals:[ "i"; "seed"; "total" ] ~arrays:[ ("buf", 128) ] "bench"
        [ set "seed" (c 7);
          For (set "i" (c 0), Bin (Lts, v "i", c 128),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "seed" (band (Bin (Add, Bin (Mul, v "seed", c 1103515245), c 12345))
                               (c 0x7FFFFFFF));
                 store8 (Bin (Add, Addr_local "buf", v "i"))
                   (Bin (Add, c 97, band (v "seed") (c 3))) ]);
          set "total" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "total"
                   (Bin (Add, v "total",
                         Bin (Add,
                              call "count2" [ Addr_local "buf"; c 128; c 97; c 98 ],
                              call "count2" [ Addr_local "buf"; c 128; c 99; c 97 ]))) ]);
          Return (v "total") ] ]

(* --- rev-comp: reverse complement with a lookup table *)
let revcomp =
  program
    ~globals:
      [ G_bytes
          ("comp",
           (* complement table for A..Z at offsets 0..25 *)
           "TVGHEFCDIJMLKNOPQYSAABWXRZ") ]
    [ func ~params:[ "n" ] ~locals:[ "i"; "j"; "seed"; "t"; "sum" ]
        ~arrays:[ ("buf", 128) ] "bench"
        [ set "seed" (c 99);
          For (set "i" (c 0), Bin (Lts, v "i", c 128),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "seed" (band (Bin (Add, Bin (Mul, v "seed", c 75), c 74)) (c 0xFFFF));
                 store8 (Bin (Add, Addr_local "buf", v "i"))
                   (Bin (Add, c 65, Bin (Remu, v "seed", c 26))) ]);
          set "sum" (c 0);
          For (set "t" (c 0), Bin (Lts, v "t", v "n"),
               set "t" (Bin (Add, v "t", c 1)),
               [ set "i" (c 0); set "j" (c 127);
                 While (Bin (Lts, v "i", v "j"),
                        [ set "sum"
                            (Bin (Add, v "sum",
                                  load8
                                    (Bin (Add, Addr_global "comp",
                                          Bin (Sub,
                                               load8 (Bin (Add, Addr_local "buf", v "i")),
                                               c 65)))));
                          set "i" (Bin (Add, v "i", c 1));
                          set "j" (Bin (Sub, v "j", c 1)) ]) ]);
          Return (v "sum") ] ]

(* --- sp-norm: tight loop calling a short-lived subroutine (the pivoting
   worst case called out in §VII-C2) *)
let spnorm =
  program
    [ func ~params:[ "i"; "j" ] "eval_a"
        [ Return
            (Bin (Divs, shl (c 1) (c fx),
                  Bin (Add,
                       Bin (Add,
                            Bin (Divs,
                                 Bin (Mul, Bin (Add, v "i", v "j"),
                                      Bin (Add, Bin (Add, v "i", v "j"), c 1)),
                                 c 2),
                            v "i"),
                       c 1))) ];
      func ~params:[ "n" ] ~locals:[ "i"; "j"; "acc" ] "bench"
        [ set "acc" (c 0);
          For (set "i" (c 0), Bin (Lts, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ For (set "j" (c 0), Bin (Lts, v "j", v "n"),
                      set "j" (Bin (Add, v "j", c 1)),
                      [ set "acc" (Bin (Add, v "acc", call "eval_a" [ v "i"; v "j" ])) ]) ]);
          Return (v "acc") ] ]

(* All ten benchmarks with the function(s) the rewriter should obfuscate and
   a default size parameter for measurements. *)
let all : (string * program * string list * int64) list =
  [ ("b-trees", btrees, [ "bench"; "bt_build"; "bt_check"; "bt_alloc" ], 6L);
    ("fannkuch", fannkuch, [ "bench" ], 20L);
    ("fasta", fasta, [ "bench" ], 16L);
    ("fasta-redux", fasta_redux, [ "bench" ], 16L);
    ("mandelbrot", mandelbrot, [ "bench" ], 12L);
    ("n-body", nbody, [ "bench" ], 16L);
    ("pidigits", pidigits, [ "bench" ], 60L);
    ("regex-redux", regex_redux, [ "bench"; "count2" ], 4L);
    ("rev-comp", revcomp, [ "bench" ], 8L);
    ("sp-norm", spnorm, [ "bench"; "eval_a" ], 10L) ]

(* Smaller arguments used when measuring the (very slow) nested-VM baseline:
   the per-instruction slowdown ratio is size-independent. *)
let vm_args : (string * int64) list =
  [ ("b-trees", 3L); ("fannkuch", 4L); ("fasta", 2L); ("fasta-redux", 2L);
    ("mandelbrot", 3L); ("n-body", 2L); ("pidigits", 10L);
    ("regex-redux", 1L); ("rev-comp", 1L); ("sp-norm", 3L) ]
