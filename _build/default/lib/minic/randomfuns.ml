(* Generator of random hash-like functions, mirroring Tigress RandomFuns.

   Produces the 72 evaluation targets of the paper's §VII-B: 6 control
   structures (Table IV) x input sizes {1,2,4,8} bytes x 3 seeds.  Each
   function mixes its input into a set of local state variables through a
   fixed control skeleton of straight-line blocks, ifs and bounded loops.

   With [point_test] the function returns 1 iff hash(input) equals
   hash(secret) for a generation-time random secret (the G1 secret-finding
   goal); otherwise it returns the hash itself.  With [coverage_probes] every
   CFG split/join writes a distinct cell of the global [__cov] array (the G2
   code-coverage goal), like RandomFunsTrace=2. *)

open Ast

type control =
  | C_bb of int                  (* straight-line block of n statements *)
  | C_if of control * control
  | C_for of control

(* The six RandomFunsControlStructures rows of Table IV. *)
let table_iv : (string * control) list =
  [ "(if (bb 4) (bb 4))", C_if (C_bb 4, C_bb 4);
    "(for (if (bb 4) (bb 4)))", C_for (C_if (C_bb 4, C_bb 4));
    "(for (for (bb 4)))", C_for (C_for (C_bb 4));
    "(for (for (if (bb 4) (bb 4))))", C_for (C_for (C_if (C_bb 4, C_bb 4)));
    "(for (if (if (bb 4) (bb 4)) (if (bb 4) (bb 4))))",
    C_for (C_if (C_if (C_bb 4, C_bb 4), C_if (C_bb 4, C_bb 4)));
    "(if (if (if (bb 4) (bb 4)) (if (bb 4) (bb 4))) (if (bb 4) (bb 4)))",
    C_if (C_if (C_if (C_bb 4, C_bb 4), C_if (C_bb 4, C_bb 4)), C_if (C_bb 4, C_bb 4)) ]

type params = {
  seed : int;
  input_size : int;              (* bytes: 1, 2, 4 or 8 *)
  control : control;
  control_name : string;
  loop_size : int;
  state_vars : int;
  point_test : bool;
  coverage_probes : bool;
}

let default_params ?(seed = 1) ?(input_size = 4) ?(loop_size = 15)
    ?(state_vars = 3) ?(point_test = true) ?(coverage_probes = false)
    ?(control_index = 1) () =
  let name, control = List.nth table_iv control_index in
  { seed; input_size; control; control_name = name; loop_size; state_vars;
    point_test; coverage_probes }

type t = {
  params : params;
  prog : program;                (* function "target", plus probe globals *)
  secret : int64 option;         (* an input accepted by the point test *)
  n_probes : int;                (* coverage probe count *)
  input_mask : int64;            (* valid input bits *)
}

(* --- expression generation ---------------------------------------------- *)

let svar i = Printf.sprintf "s%d" i

let gen_leaf rng n_state =
  match Util.Rng.int rng 4 with
  | 0 -> v "x"
  | 1 | 2 -> v (svar (Util.Rng.int rng n_state))
  | _ -> c (Util.Rng.range rng 1 255)

let rec gen_expr rng n_state depth =
  if depth = 0 then gen_leaf rng n_state
  else
    let a = gen_expr rng n_state (depth - 1) in
    let b = gen_expr rng n_state (depth - 1) in
    match Util.Rng.int rng 8 with
    | 0 -> Bin (Add, a, b)
    | 1 -> Bin (Sub, a, b)
    | 2 -> Bin (Mul, a, b)
    | 3 -> Bin (Bxor, a, b)
    | 4 -> Bin (Band, a, b)
    | 5 -> Bin (Bor, a, b)
    | 6 -> Bin (Shl, a, c (Util.Rng.range rng 1 7))
    | _ -> Bin (Shr, a, c (Util.Rng.range rng 1 7))

(* One mutation statement of a straight-line block. *)
let gen_mutation rng n_state =
  let target = svar (Util.Rng.int rng n_state) in
  let e = gen_expr rng n_state 2 in
  let combined =
    match Util.Rng.int rng 4 with
    | 0 -> Bin (Add, v target, e)
    | 1 -> Bin (Bxor, v target, e)
    | 2 -> Bin (Mul, Bin (Bor, v target, c 1), Bin (Bor, e, c 1))
    | _ -> Bin (Add, Bin (Mul, v target, c 31), e)
  in
  set target combined

(* A branch condition over state and input, byte-masked so both sides of the
   branch are actually reachable for many inputs. *)
let gen_cond rng n_state =
  let a = band (gen_expr rng n_state 1) (c 0xFF) in
  let b = band (gen_expr rng n_state 1) (c 0xFF) in
  match Util.Rng.int rng 4 with
  | 0 -> Bin (Lts, a, b)
  | 1 -> Bin (Eq, band a (c 7), band b (c 7))
  | 2 -> Bin (Gtu, a, b)
  | _ -> Bin (Ne, band a (c 3), band b (c 3))

(* --- skeleton instantiation ---------------------------------------------- *)

type genstate = {
  rng : Util.Rng.t;
  n_state : int;
  mutable probe_count : int;
  mutable loop_depth : int;
  probes_enabled : bool;
}

let probe gs =
  if gs.probes_enabled then begin
    let k = gs.probe_count in
    gs.probe_count <- gs.probe_count + 1;
    [ store8 (Bin (Add, Addr_global "__cov", c k)) (c 1) ]
  end else []

let rec gen_control gs loop_size ctl : stmt list =
  match ctl with
  | C_bb n -> List.init n (fun _ -> gen_mutation gs.rng gs.n_state)
  | C_if (t, e) ->
    let cond = gen_cond gs.rng gs.n_state in
    let pt = probe gs in
    let then_ = probe gs @ gen_control gs loop_size t in
    let else_ = probe gs @ gen_control gs loop_size e in
    pt @ [ If (cond, then_, else_) ] @ probe gs
  | C_for body ->
    let i = Printf.sprintf "i%d" gs.loop_depth in
    gs.loop_depth <- gs.loop_depth + 1;
    let inner = gen_control gs loop_size body in
    gs.loop_depth <- gs.loop_depth - 1;
    probe gs
    @ [ For (set i (c 0), Bin (Lts, v i, c loop_size),
             set i (Bin (Add, v i, c 1)), inner) ]

let max_loop_depth ctl =
  let rec go = function
    | C_bb _ -> 0
    | C_if (a, b) -> max (go a) (go b)
    | C_for b -> 1 + go b
  in
  go ctl

(* --- top level ------------------------------------------------------------ *)

let generate (p : params) : t =
  let rng = Util.Rng.create (p.seed * 7919 + p.input_size * 131 + 17) in
  let gs =
    { rng; n_state = p.state_vars; probe_count = 0; loop_depth = 0;
      probes_enabled = p.coverage_probes }
  in
  let input_mask =
    if p.input_size >= 8 then -1L
    else Int64.sub (Int64.shift_left 1L (8 * p.input_size)) 1L
  in
  (* initialize state from input and constants *)
  let init =
    set "x" (band (v "arg") (c64 input_mask))
    :: List.init p.state_vars (fun i ->
        set (svar i) (c (Util.Rng.range rng 1 1000)))
  in
  let body_core = gen_control gs p.loop_size p.control in
  (* final mix: fold all state vars into s0 *)
  let mix =
    List.init (max 0 (p.state_vars - 1)) (fun i ->
        set (svar 0)
          (bxor (Bin (Mul, v (svar 0), c 37)) (v (svar (i + 1)))))
  in
  let loops = List.init (max_loop_depth p.control) (fun i -> Printf.sprintf "i%d" i) in
  let locals =
    "x" :: List.init p.state_vars svar @ loops
  in
  (* hash-only variant used to derive the secret's hash *)
  let hash_body = init @ body_core @ mix @ [ Return (v (svar 0)) ] in
  let hash_func = func ~params:[ "arg" ] ~locals "target" hash_body in
  let globals =
    if p.coverage_probes then [ G_zero ("__cov", max 1 gs.probe_count) ] else []
  in
  if not p.point_test then
    { params = p;
      prog = program ~globals [ hash_func ];
      secret = None;
      n_probes = gs.probe_count;
      input_mask }
  else begin
    (* pick a secret input and precompute its hash with the interpreter *)
    let secret = Int64.logand (Util.Rng.next64 rng) input_mask in
    let hash_prog = program ~globals [ hash_func ] in
    let secret_hash = Interp.run hash_prog "target" [ secret ] in
    let body =
      init @ body_core @ mix
      @ [ If (Bin (Eq, v (svar 0), c64 secret_hash),
              [ Return (c 1) ], [ Return (c 0) ]) ]
    in
    { params = p;
      prog = program ~globals [ func ~params:[ "arg" ] ~locals "target" body ];
      secret = Some secret;
      n_probes = gs.probe_count;
      input_mask }
  end

(* The paper's 72-function corpus: 6 control structures x {1,2,4,8} input
   bytes x 3 seeds. *)
let corpus ?(point_test = true) ?(coverage_probes = false) () : t list =
  List.concat_map
    (fun control_index ->
       List.concat_map
         (fun input_size ->
            List.map
              (fun seed ->
                 generate
                   (default_params ~seed ~input_size ~control_index
                      ~point_test ~coverage_probes ()))
              [ 1; 2; 3 ])
         [ 1; 2; 4; 8 ])
    [ 0; 1; 2; 3; 4; 5 ]
