(* Compiler from mini-C to x64-lite.

   The generated code is intentionally "compiler-shaped": rbp frames, frame
   slots for every variable, RAX-centric expression evaluation with stack
   temporaries, setcc/movzx for comparisons, jump tables for dense switches
   (the pattern Ghidra-style CFG reconstruction in lib/analysis recognizes),
   and leave/ret epilogues.  This is the input shape the ROP rewriter
   consumes, mirroring the gcc -O1 output the paper rewrites. *)

open X86.Isa
module A = Asm

exception Compile_error of string

type env = {
  slots : (string, int) Hashtbl.t;     (* var -> rbp-relative offset (>0) *)
  arrays : (string, int) Hashtbl.t;    (* array -> rbp-relative offset *)
  frame_size : int;
  mutable next_label : int;
  fname : string;
  mutable out : A.item list;           (* reversed *)
  mutable tables : A.item list;        (* reversed; emitted after the body *)
  mutable loop_stack : (string * string) list;  (* break, continue labels *)
}

let emit env i = env.out <- i :: env.out

let fresh env prefix =
  let n = env.next_label in
  env.next_label <- n + 1;
  Printf.sprintf ".L%s_%s%d" env.fname prefix n

let slot env name =
  match Hashtbl.find_opt env.slots name with
  | Some off -> off
  | None -> raise (Compile_error (Printf.sprintf "%s: unknown variable %s" env.fname name))

let var_mem env name = mem_b RBP (- slot env name)

let arg_regs = [ RDI; RSI; RDX; RCX; R8; R9 ]

(* Binary operator lowering; left operand in RAX, right in RCX, result in
   RAX. *)
let emit_binop env op =
  let cmp cc =
    emit env (A.Ins (Alu (Cmp, W64, Reg RAX, Reg RCX)));
    emit env (A.Ins (Setcc (cc, Reg RAX)));
    emit env (A.Ins (Movzx (W64, W8, RAX, Reg RAX)))
  in
  match op with
  | Ast.Add -> emit env (A.Ins (Alu (Add, W64, Reg RAX, Reg RCX)))
  | Ast.Sub -> emit env (A.Ins (Alu (Sub, W64, Reg RAX, Reg RCX)))
  | Ast.Mul -> emit env (A.Ins (Imul2 (W64, RAX, Reg RCX)))
  | Ast.Divs | Ast.Rems ->
    emit env (A.Ins (Mov (W64, Reg RDX, Reg RAX)));
    emit env (A.Ins (Shift (Sar, W64, Reg RDX, S_imm 63)));
    emit env (A.Ins (MulDiv (Idiv, Reg RCX)));
    if op = Ast.Rems then emit env (A.Ins (Mov (W64, Reg RAX, Reg RDX)))
  | Ast.Divu | Ast.Remu ->
    emit env (A.Ins (Mov (W64, Reg RDX, Imm 0L)));
    emit env (A.Ins (MulDiv (Div, Reg RCX)));
    if op = Ast.Remu then emit env (A.Ins (Mov (W64, Reg RAX, Reg RDX)))
  | Ast.Band -> emit env (A.Ins (Alu (And, W64, Reg RAX, Reg RCX)))
  | Ast.Bor -> emit env (A.Ins (Alu (Or, W64, Reg RAX, Reg RCX)))
  | Ast.Bxor -> emit env (A.Ins (Alu (Xor, W64, Reg RAX, Reg RCX)))
  | Ast.Shl -> emit env (A.Ins (Shift (Shl, W64, Reg RAX, S_cl)))
  | Ast.Shr -> emit env (A.Ins (Shift (Shr, W64, Reg RAX, S_cl)))
  | Ast.Sar -> emit env (A.Ins (Shift (Sar, W64, Reg RAX, S_cl)))
  | Ast.Eq -> cmp E
  | Ast.Ne -> cmp NE
  | Ast.Lts -> cmp L
  | Ast.Les -> cmp LE
  | Ast.Gts -> cmp G
  | Ast.Ges -> cmp GE
  | Ast.Ltu -> cmp B
  | Ast.Leu -> cmp BE
  | Ast.Gtu -> cmp A
  | Ast.Geu -> cmp AE
  | Ast.Land | Ast.Lor -> assert false  (* handled in emit_expr *)

let rec emit_expr env (e : Ast.expr) =
  match e with
  | Ast.Const v -> emit env (A.Ins (Mov (W64, Reg RAX, Imm v)))
  | Ast.Var n -> emit env (A.Ins (Mov (W64, Reg RAX, Mem (var_mem env n))))
  | Ast.Addr_local n ->
    (match Hashtbl.find_opt env.arrays n with
     | Some off -> emit env (A.Ins (Lea (RAX, mem_b RBP (-off))))
     | None ->
       raise (Compile_error (Printf.sprintf "%s: unknown array %s" env.fname n)))
  | Ast.Addr_global n -> emit env (A.Lea_s (RAX, n))
  | Ast.Load (w, signed, a) ->
    emit_expr env a;
    (match w, signed with
     | W64, _ -> emit env (A.Ins (Mov (W64, Reg RAX, Mem (mem_b RAX 0))))
     | w, false -> emit env (A.Ins (Movzx (W64, w, RAX, Mem (mem_b RAX 0))))
     | w, true -> emit env (A.Ins (Movsx (W64, w, RAX, Mem (mem_b RAX 0)))))
  | Ast.Bin (Ast.Land, a, b) ->
    let lfalse = fresh env "andf" and lend = fresh env "ande" in
    emit_expr env a;
    emit env (A.Ins (Alu (Test, W64, Reg RAX, Reg RAX)));
    emit env (A.Jcc_l (E, lfalse));
    emit_expr env b;
    emit env (A.Ins (Alu (Test, W64, Reg RAX, Reg RAX)));
    emit env (A.Jcc_l (E, lfalse));
    emit env (A.Ins (Mov (W64, Reg RAX, Imm 1L)));
    emit env (A.Jmp_l lend);
    emit env (A.Label lfalse);
    emit env (A.Ins (Mov (W64, Reg RAX, Imm 0L)));
    emit env (A.Label lend)
  | Ast.Bin (Ast.Lor, a, b) ->
    let ltrue = fresh env "ort" and lend = fresh env "ore" in
    emit_expr env a;
    emit env (A.Ins (Alu (Test, W64, Reg RAX, Reg RAX)));
    emit env (A.Jcc_l (NE, ltrue));
    emit_expr env b;
    emit env (A.Ins (Alu (Test, W64, Reg RAX, Reg RAX)));
    emit env (A.Jcc_l (NE, ltrue));
    emit env (A.Ins (Mov (W64, Reg RAX, Imm 0L)));
    emit env (A.Jmp_l lend);
    emit env (A.Label ltrue);
    emit env (A.Ins (Mov (W64, Reg RAX, Imm 1L)));
    emit env (A.Label lend)
  | Ast.Bin (op, a, b) ->
    emit_expr env a;
    emit env (A.Ins (Push (Reg RAX)));
    emit_expr env b;
    emit env (A.Ins (Mov (W64, Reg RCX, Reg RAX)));
    emit env (A.Ins (Pop (Reg RAX)));
    emit_binop env op
  | Ast.Un (Ast.Neg, a) ->
    emit_expr env a;
    emit env (A.Ins (Unary (Neg, W64, Reg RAX)))
  | Ast.Un (Ast.Bnot, a) ->
    emit_expr env a;
    emit env (A.Ins (Unary (Not, W64, Reg RAX)))
  | Ast.Un (Ast.Lnot, a) ->
    emit_expr env a;
    emit env (A.Ins (Alu (Test, W64, Reg RAX, Reg RAX)));
    emit env (A.Ins (Setcc (E, Reg RAX)));
    emit env (A.Ins (Movzx (W64, W8, RAX, Reg RAX)))
  | Ast.Call (f, args) ->
    if List.length args > 6 then
      raise (Compile_error (Printf.sprintf "%s: call to %s with >6 args" env.fname f));
    List.iter
      (fun a ->
         emit_expr env a;
         emit env (A.Ins (Push (Reg RAX))))
      args;
    (* pop into argument registers, last arg first *)
    let n = List.length args in
    for i = n - 1 downto 0 do
      emit env (A.Ins (Pop (Reg (List.nth arg_regs i))))
    done;
    emit env (A.Call_s f)
  | Ast.Cast (W64, _, a) -> emit_expr env a
  | Ast.Cast (w, false, a) ->
    emit_expr env a;
    emit env (A.Ins (Movzx (W64, w, RAX, Reg RAX)))
  | Ast.Cast (w, true, a) ->
    emit_expr env a;
    emit env (A.Ins (Movsx (W64, w, RAX, Reg RAX)))

let rec emit_stmt env (s : Ast.stmt) =
  match s with
  | Ast.Assign (n, e) ->
    emit_expr env e;
    emit env (A.Ins (Mov (W64, Mem (var_mem env n), Reg RAX)))
  | Ast.Store (w, a, value) ->
    emit_expr env a;
    emit env (A.Ins (Push (Reg RAX)));
    emit_expr env value;
    emit env (A.Ins (Mov (W64, Reg RCX, Reg RAX)));
    emit env (A.Ins (Pop (Reg RAX)));
    emit env (A.Ins (Mov (w, Mem (mem_b RAX 0), Reg RCX)))
  | Ast.If (cond, then_, else_) ->
    let lelse = fresh env "else" and lend = fresh env "fi" in
    emit_expr env cond;
    emit env (A.Ins (Alu (Test, W64, Reg RAX, Reg RAX)));
    emit env (A.Jcc_l (E, lelse));
    List.iter (emit_stmt env) then_;
    emit env (A.Jmp_l lend);
    emit env (A.Label lelse);
    List.iter (emit_stmt env) else_;
    emit env (A.Label lend)
  | Ast.While (cond, body) ->
    let lhead = fresh env "wh" and lend = fresh env "we" in
    emit env (A.Label lhead);
    emit_expr env cond;
    emit env (A.Ins (Alu (Test, W64, Reg RAX, Reg RAX)));
    emit env (A.Jcc_l (E, lend));
    env.loop_stack <- (lend, lhead) :: env.loop_stack;
    List.iter (emit_stmt env) body;
    env.loop_stack <- List.tl env.loop_stack;
    emit env (A.Jmp_l lhead);
    emit env (A.Label lend)
  | Ast.Do_while (body, cond) ->
    let lhead = fresh env "dw" and lcont = fresh env "dc" and lend = fresh env "de" in
    emit env (A.Label lhead);
    env.loop_stack <- (lend, lcont) :: env.loop_stack;
    List.iter (emit_stmt env) body;
    env.loop_stack <- List.tl env.loop_stack;
    emit env (A.Label lcont);
    emit_expr env cond;
    emit env (A.Ins (Alu (Test, W64, Reg RAX, Reg RAX)));
    emit env (A.Jcc_l (NE, lhead));
    emit env (A.Label lend)
  | Ast.For (init, cond, step, body) ->
    let lhead = fresh env "fh" and lcont = fresh env "fc" and lend = fresh env "fe" in
    emit_stmt env init;
    emit env (A.Label lhead);
    emit_expr env cond;
    emit env (A.Ins (Alu (Test, W64, Reg RAX, Reg RAX)));
    emit env (A.Jcc_l (E, lend));
    env.loop_stack <- (lend, lcont) :: env.loop_stack;
    List.iter (emit_stmt env) body;
    env.loop_stack <- List.tl env.loop_stack;
    emit env (A.Label lcont);
    emit_stmt env step;
    emit env (A.Jmp_l lhead);
    emit env (A.Label lend)
  | Ast.Switch (scrut, cases, default) ->
    emit_expr env scrut;
    let lend = fresh env "se" and ldef = fresh env "sd" in
    let case_labels = List.map (fun (k, _) -> (k, fresh env "sc")) cases in
    let ks = List.map fst cases in
    let kmin = List.fold_left min max_int ks
    and kmax = List.fold_left max min_int ks in
    let dense =
      List.length cases >= 4 && kmax - kmin < 2 * List.length cases + 8
    in
    if dense then begin
      (* jump table: the pattern recognized by Analysis.Jumptables *)
      let ltab = fresh env "jt" in
      if kmin <> 0 then emit env (A.Ins (Alu (Sub, W64, Reg RAX, Imm (Int64.of_int kmin))));
      emit env (A.Ins (Alu (Cmp, W64, Reg RAX, Imm (Int64.of_int (kmax - kmin)))));
      emit env (A.Jcc_l (A, ldef));
      emit env (A.Lea_l (RCX, ltab));
      emit env (A.Ins (Mov (W64, Reg RAX, Mem { base = Some RCX; index = Some (RAX, 8); disp = 0L })));
      emit env (A.Ins (Jmp (J_op (Reg RAX))));
      (* table rows *)
      let rows = ref [] in
      for k = kmax downto kmin do
        let l = try List.assoc k case_labels with Not_found -> ldef in
        rows := A.Quad_l l :: !rows
      done;
      env.tables <- List.rev_append (A.Label ltab :: !rows) env.tables
    end else begin
      List.iter
        (fun (k, l) ->
           emit env (A.Ins (Alu (Cmp, W64, Reg RAX, Imm (Int64.of_int k))));
           emit env (A.Jcc_l (E, l)))
        case_labels;
      emit env (A.Jmp_l ldef)
    end;
    env.loop_stack <- (lend, "") :: env.loop_stack;
    List.iter
      (fun (k, body) ->
         emit env (A.Label (List.assoc k case_labels));
         List.iter (emit_stmt env) body;
         emit env (A.Jmp_l lend))
      cases;
    emit env (A.Label ldef);
    List.iter (emit_stmt env) default;
    env.loop_stack <- List.tl env.loop_stack;
    emit env (A.Label lend)
  | Ast.Return e ->
    emit_expr env e;
    emit env (A.Ins Leave);
    emit env (A.Ins Ret)
  | Ast.Expr e -> emit_expr env e
  | Ast.Break ->
    (match env.loop_stack with
     | (lend, _) :: _ -> emit env (A.Jmp_l lend)
     | [] -> raise (Compile_error (env.fname ^ ": break outside loop")))
  | Ast.Continue ->
    (match env.loop_stack with
     | (_, "") :: rest ->
       (* continue skips switch scopes *)
       (match rest with
        | (_, lcont) :: _ -> emit env (A.Jmp_l lcont)
        | [] -> raise (Compile_error (env.fname ^ ": continue outside loop")))
     | (_, lcont) :: _ -> emit env (A.Jmp_l lcont)
     | [] -> raise (Compile_error (env.fname ^ ": continue outside loop")))

let align8 n = (n + 7) land lnot 7

let compile_func (f : Ast.func) : A.item list =
  let slots = Hashtbl.create 16 in
  let arrays = Hashtbl.create 4 in
  let off = ref 0 in
  List.iter
    (fun p ->
       off := !off + 8;
       Hashtbl.replace slots p !off)
    (f.params @ f.locals);
  List.iter
    (fun (name, size) ->
       off := align8 (!off + size);
       Hashtbl.replace arrays name !off)
    f.arrays;
  let frame_size = align8 !off in
  let env =
    { slots; arrays; frame_size; next_label = 0; fname = f.fname;
      out = []; tables = []; loop_stack = [] }
  in
  (* prologue *)
  emit env (A.Ins (Push (Reg RBP)));
  emit env (A.Ins (Mov (W64, Reg RBP, Reg RSP)));
  if frame_size > 0 then
    emit env (A.Ins (Alu (Sub, W64, Reg RSP, Imm (Int64.of_int frame_size))));
  (* spill parameters *)
  List.iteri
    (fun i p ->
       if i >= 6 then raise (Compile_error (f.fname ^ ": more than 6 parameters"));
       emit env (A.Ins (Mov (W64, Mem (var_mem env p), Reg (List.nth arg_regs i)))))
    f.params;
  List.iter (emit_stmt env) f.body;
  (* implicit return 0 *)
  emit env (A.Ins (Mov (W64, Reg RAX, Imm 0L)));
  emit env (A.Ins Leave);
  emit env (A.Ins Ret);
  List.rev_append env.out (List.rev env.tables)

let compile_global (g : Ast.global) : string * A.data_item list =
  match g with
  | Ast.G_bytes (n, s) -> (n, [ A.D_bytes (Bytes.of_string s) ])
  | Ast.G_zero (n, size) -> (n, [ A.D_zero size ])
  | Ast.G_quads (n, qs) -> (n, List.map (fun q -> A.D_quad q) qs)

(* Compile a whole program into a linked image. *)
let compile (p : Ast.program) : Image.t =
  let u : A.unit_ =
    { A.u_functions = List.map (fun f -> (f.Ast.fname, compile_func f)) p.funcs;
      A.u_data = List.map compile_global p.globals }
  in
  A.link u
