(* The base64 reference-implementation analog for the §VII-C3 case study.

   [b64_check] spreads its integer argument into a 6-byte buffer, encodes it
   with table lookups (the input-dependent pointers that defeat concretizing
   memory models, §VII-C3), and compares the 8 output characters against the
   encoding of a fixed 6-byte secret. *)

open Ast

let b64_alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

(* reference OCaml encoder used to embed the expected ciphertext *)
let encode_ref (bytes : int array) =
  assert (Array.length bytes = 6);
  let out = Bytes.create 8 in
  let put i v = Bytes.set out i b64_alphabet.[v land 63] in
  let b k = bytes.(k) land 0xff in
  put 0 (b 0 lsr 2);
  put 1 (((b 0 land 3) lsl 4) lor (b 1 lsr 4));
  put 2 (((b 1 land 15) lsl 2) lor (b 2 lsr 6));
  put 3 (b 2 land 63);
  put 4 (b 3 lsr 2);
  put 5 (((b 3 land 3) lsl 4) lor (b 4 lsr 4));
  put 6 (((b 4 land 15) lsl 2) lor (b 5 lsr 6));
  put 7 (b 5 land 63);
  Bytes.to_string out

let secret_bytes = [| 0x52; 0x4f; 0x50; 0x21; 0x21; 0x7b |]

let secret_arg =
  let r = ref 0L in
  for i = 5 downto 0 do
    r := Int64.logor (Int64.shift_left !r 8) (Int64.of_int secret_bytes.(i))
  done;
  !r

(* encode(src, dst): 6 bytes -> 8 base64 characters *)
let encode_func =
  func ~params:[ "src"; "dst" ] ~locals:[ "g"; "b0"; "b1"; "b2"; "o" ] "b64_encode"
    [ For (set "g" (c 0), Bin (Lts, v "g", c 2), set "g" (Bin (Add, v "g", c 1)),
           [ set "b0" (load8 (Bin (Add, v "src", Bin (Mul, v "g", c 3))));
             set "b1" (load8 (Bin (Add, v "src", Bin (Add, Bin (Mul, v "g", c 3), c 1))));
             set "b2" (load8 (Bin (Add, v "src", Bin (Add, Bin (Mul, v "g", c 3), c 2))));
             set "o" (Bin (Mul, v "g", c 4));
             store8 (Bin (Add, v "dst", v "o"))
               (load8 (Bin (Add, Addr_global "b64tab", shr (v "b0") (c 2))));
             store8 (Bin (Add, v "dst", Bin (Add, v "o", c 1)))
               (load8 (Bin (Add, Addr_global "b64tab",
                            bor (shl (band (v "b0") (c 3)) (c 4))
                              (shr (v "b1") (c 4)))));
             store8 (Bin (Add, v "dst", Bin (Add, v "o", c 2)))
               (load8 (Bin (Add, Addr_global "b64tab",
                            bor (shl (band (v "b1") (c 15)) (c 2))
                              (shr (v "b2") (c 6)))));
             store8 (Bin (Add, v "dst", Bin (Add, v "o", c 3)))
               (load8 (Bin (Add, Addr_global "b64tab", band (v "b2") (c 63)))) ]);
      Return (c 0) ]

let check_func =
  func ~params:[ "x" ] ~locals:[ "i"; "ok" ]
    ~arrays:[ ("src", 8); ("dst", 8) ] "b64_check"
    [ For (set "i" (c 0), Bin (Lts, v "i", c 6), set "i" (Bin (Add, v "i", c 1)),
           [ store8 (Bin (Add, Addr_local "src", v "i"))
               (band (shr (v "x") (Bin (Mul, v "i", c 8))) (c 0xFF)) ]);
      Expr (call "b64_encode" [ Addr_local "src"; Addr_local "dst" ]);
      set "ok" (c 1);
      For (set "i" (c 0), Bin (Lts, v "i", c 8), set "i" (Bin (Add, v "i", c 1)),
           [ If (Bin (Ne,
                      load8 (Bin (Add, Addr_local "dst", v "i")),
                      load8 (Bin (Add, Addr_global "b64expected", v "i"))),
                 [ set "ok" (c 0) ], []) ]);
      Return (v "ok") ]

(* The case-study program: b64_check returns 1 iff x encodes to the embedded
   ciphertext, i.e. iff x = secret_arg (6 bytes). *)
let base64_program () =
  let expected = encode_ref secret_bytes in
  program
    ~globals:[ G_bytes ("b64tab", b64_alphabet); G_bytes ("b64expected", expected) ]
    [ encode_func; check_func ]
