lib/minic/programs.ml: Array Ast Bytes Int64 String
