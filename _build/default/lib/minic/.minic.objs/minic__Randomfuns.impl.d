lib/minic/randomfuns.ml: Ast Int64 Interp List Printf Util
