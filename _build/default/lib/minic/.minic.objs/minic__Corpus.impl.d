lib/minic/corpus.ml: Asm Ast Codegen Image List X86
