lib/minic/codegen.ml: Asm Ast Bytes Hashtbl Image Int64 List Printf X86
