lib/minic/interp.ml: Ast Bytes Hashtbl Int64 List Machine Printf String X86
