lib/minic/clbg.ml: Ast
