lib/minic/ast.ml: Int64 X86
