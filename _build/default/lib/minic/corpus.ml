(* A heterogeneous function corpus standing in for the coreutils code base of
   the deployability study (§VII-C1): string routines, checksums, sorting,
   searching, bit manipulation, parsing and table-driven code, plus a few
   pathological hand-written assembly functions that exercise the rewriter's
   documented failure modes (push rsp-style stack tricks, bodies smaller
   than the pivoting stub). *)

open Ast

let u8 e = band e (c 0xFF)

let funcs : func list =
  [ func ~params:[ "s" ] ~locals:[ "n" ] "strlen_"
      [ set "n" (c 0);
        While (Bin (Ne, load8 (Bin (Add, v "s", v "n")), c 0),
               [ set "n" (Bin (Add, v "n", c 1)) ]);
        Return (v "n") ];
    func ~params:[ "d"; "s" ] ~locals:[ "i"; "ch" ] "strcpy_"
      [ set "i" (c 0);
        set "ch" (load8 (v "s"));
        While (Bin (Ne, v "ch", c 0),
               [ store8 (Bin (Add, v "d", v "i")) (v "ch");
                 set "i" (Bin (Add, v "i", c 1));
                 set "ch" (load8 (Bin (Add, v "s", v "i"))) ]);
        store8 (Bin (Add, v "d", v "i")) (c 0);
        Return (v "i") ];
    func ~params:[ "a"; "b" ] ~locals:[ "i"; "ca"; "cb" ] "strcmp_"
      [ set "i" (c 0);
        While (c 1,
               [ set "ca" (load8 (Bin (Add, v "a", v "i")));
                 set "cb" (load8 (Bin (Add, v "b", v "i")));
                 If (Bin (Ne, v "ca", v "cb"),
                     [ Return (Bin (Sub, v "ca", v "cb")) ], []);
                 If (Bin (Eq, v "ca", c 0), [ Return (c 0) ], []);
                 set "i" (Bin (Add, v "i", c 1)) ]);
        Return (c 0) ];
    func ~params:[ "p"; "val"; "n" ] ~locals:[ "i" ] "memset_"
      [ For (set "i" (c 0), Bin (Lts, v "i", v "n"), set "i" (Bin (Add, v "i", c 1)),
             [ store8 (Bin (Add, v "p", v "i")) (v "val") ]);
        Return (v "p") ];
    func ~params:[ "a"; "b"; "n" ] ~locals:[ "i"; "d" ] "memcmp_"
      [ For (set "i" (c 0), Bin (Lts, v "i", v "n"), set "i" (Bin (Add, v "i", c 1)),
             [ set "d" (Bin (Sub, load8 (Bin (Add, v "a", v "i")),
                             load8 (Bin (Add, v "b", v "i"))));
               If (Bin (Ne, v "d", c 0), [ Return (v "d") ], []) ]);
        Return (c 0) ];
    func ~params:[ "s" ] ~locals:[ "r"; "ch"; "i"; "sign" ] "atoi_"
      [ set "r" (c 0); set "i" (c 0); set "sign" (c 1);
        If (Bin (Eq, load8 (v "s"), c 45),
            [ set "sign" (c (-1)); set "i" (c 1) ], []);
        set "ch" (load8 (Bin (Add, v "s", v "i")));
        While (Bin (Land, Bin (Ges, v "ch", c 48), Bin (Les, v "ch", c 57)),
               [ set "r" (Bin (Add, Bin (Mul, v "r", c 10), Bin (Sub, v "ch", c 48)));
                 set "i" (Bin (Add, v "i", c 1));
                 set "ch" (load8 (Bin (Add, v "s", v "i"))) ]);
        Return (Bin (Mul, v "sign", v "r")) ];
    func ~params:[ "ch" ] "toupper_"
      [ If (Bin (Land, Bin (Ges, v "ch", c 97), Bin (Les, v "ch", c 122)),
            [ Return (Bin (Sub, v "ch", c 32)) ], [ Return (v "ch") ]) ];
    func ~params:[ "ch" ] "isdigit_"
      [ Return (Bin (Land, Bin (Ges, v "ch", c 48), Bin (Les, v "ch", c 57))) ];
    func ~params:[ "p"; "n" ] ~locals:[ "h"; "i" ] "djb2_"
      [ set "h" (c 5381);
        For (set "i" (c 0), Bin (Lts, v "i", v "n"), set "i" (Bin (Add, v "i", c 1)),
             [ set "h" (Bin (Add, Bin (Mul, v "h", c 33),
                             load8 (Bin (Add, v "p", v "i")))) ]);
        Return (v "h") ];
    func ~params:[ "p"; "n" ] ~locals:[ "h"; "i" ] "fnv_"
      [ set "h" (c64 0xcbf29ce484222325L);
        For (set "i" (c 0), Bin (Lts, v "i", v "n"), set "i" (Bin (Add, v "i", c 1)),
             [ set "h" (bxor (v "h") (load8 (Bin (Add, v "p", v "i"))));
               set "h" (Bin (Mul, v "h", c64 0x100000001b3L)) ]);
        Return (v "h") ];
    func ~params:[ "p"; "n" ] ~locals:[ "a"; "b"; "i" ] "adler_"
      [ set "a" (c 1); set "b" (c 0);
        For (set "i" (c 0), Bin (Lts, v "i", v "n"), set "i" (Bin (Add, v "i", c 1)),
             [ set "a" (Bin (Remu, Bin (Add, v "a", load8 (Bin (Add, v "p", v "i"))), c 65521));
               set "b" (Bin (Remu, Bin (Add, v "b", v "a"), c 65521)) ]);
        Return (bor (shl (v "b") (c 16)) (v "a")) ];
    func ~params:[ "p"; "n" ] ~locals:[ "i"; "j"; "t1"; "t2" ] "bubble_sort_"
      [ For (set "i" (c 0), Bin (Lts, v "i", v "n"), set "i" (Bin (Add, v "i", c 1)),
             [ For (set "j" (c 0), Bin (Lts, v "j", Bin (Sub, v "n", c 1)),
                    set "j" (Bin (Add, v "j", c 1)),
                    [ set "t1" (load8 (Bin (Add, v "p", v "j")));
                      set "t2" (load8 (Bin (Add, v "p", Bin (Add, v "j", c 1))));
                      If (Bin (Gts, v "t1", v "t2"),
                          [ store8 (Bin (Add, v "p", v "j")) (v "t2");
                            store8 (Bin (Add, v "p", Bin (Add, v "j", c 1))) (v "t1") ],
                          []) ]) ]);
        Return (c 0) ];
    func ~params:[ "p"; "n"; "key" ] ~locals:[ "lo"; "hi"; "mid"; "x" ] "bsearch_"
      [ set "lo" (c 0); set "hi" (Bin (Sub, v "n", c 1));
        While (Bin (Les, v "lo", v "hi"),
               [ set "mid" (Bin (Divs, Bin (Add, v "lo", v "hi"), c 2));
                 set "x" (load8 (Bin (Add, v "p", v "mid")));
                 If (Bin (Eq, v "x", v "key"), [ Return (v "mid") ], []);
                 If (Bin (Lts, v "x", v "key"),
                     [ set "lo" (Bin (Add, v "mid", c 1)) ],
                     [ set "hi" (Bin (Sub, v "mid", c 1)) ]) ]);
        Return (c (-1)) ];
    func ~params:[ "x" ] ~locals:[ "n" ] "popcount_"
      [ set "n" (c 0);
        While (Bin (Ne, v "x", c 0),
               [ set "x" (band (v "x") (Bin (Sub, v "x", c 1)));
                 set "n" (Bin (Add, v "n", c 1)) ]);
        Return (v "n") ];
    func ~params:[ "a"; "b" ] ~locals:[ "t" ] "gcd_"
      [ While (Bin (Ne, v "b", c 0),
               [ set "t" (Bin (Remu, v "a", v "b"));
                 set "a" (v "b");
                 set "b" (v "t") ]);
        Return (v "a") ];
    func ~params:[ "x" ] ~locals:[ "r"; "bit" ] "isqrt_"
      [ set "r" (c 0); set "bit" (shl (c 1) (c 30));
        While (Bin (Gtu, v "bit", v "x"), [ set "bit" (shr (v "bit") (c 2)) ]);
        While (Bin (Ne, v "bit", c 0),
               [ If (Bin (Geu, v "x", Bin (Add, v "r", v "bit")),
                     [ set "x" (Bin (Sub, v "x", Bin (Add, v "r", v "bit")));
                       set "r" (Bin (Add, shr (v "r") (c 1), v "bit")) ],
                     [ set "r" (shr (v "r") (c 1)) ]);
                 set "bit" (shr (v "bit") (c 2)) ]);
        Return (v "r") ];
    func ~params:[ "x" ] ~locals:[ "r"; "i" ] "revbits_"
      [ set "r" (c 0);
        For (set "i" (c 0), Bin (Lts, v "i", c 32), set "i" (Bin (Add, v "i", c 1)),
             [ set "r" (bor (shl (v "r") (c 1)) (band (shr (v "x") (v "i")) (c 1))) ]);
        Return (v "r") ];
    func ~params:[ "ch" ] "hexval_"
      [ Switch (v "ch",
                [ (48, [ Return (c 0) ]); (49, [ Return (c 1) ]);
                  (50, [ Return (c 2) ]); (51, [ Return (c 3) ]);
                  (52, [ Return (c 4) ]); (53, [ Return (c 5) ]);
                  (54, [ Return (c 6) ]); (55, [ Return (c 7) ]);
                  (56, [ Return (c 8) ]); (57, [ Return (c 9) ]) ],
                [ If (Bin (Land, Bin (Ges, v "ch", c 97), Bin (Les, v "ch", c 102)),
                      [ Return (Bin (Add, Bin (Sub, v "ch", c 97), c 10)) ],
                      [ Return (c (-1)) ]) ]) ];
    func ~params:[ "kind" ] "mode_name_"
      [ Switch (v "kind",
                [ (0, [ Return (c 100) ]); (1, [ Return (c 108) ]);
                  (2, [ Return (c 99) ]); (3, [ Return (c 98) ]);
                  (4, [ Return (c 112) ]); (5, [ Return (c 115) ]) ],
                [ Return (c 63) ]) ];
    func ~params:[ "x"; "lo"; "hi" ] "clamp_"
      [ If (Bin (Lts, v "x", v "lo"), [ Return (v "lo") ], []);
        If (Bin (Gts, v "x", v "hi"), [ Return (v "hi") ], []);
        Return (v "x") ];
    func ~params:[ "n" ] ~locals:[ "a"; "b"; "i"; "t" ] "fib_iter_"
      [ set "a" (c 0); set "b" (c 1);
        For (set "i" (c 0), Bin (Lts, v "i", v "n"), set "i" (Bin (Add, v "i", c 1)),
             [ set "t" (Bin (Add, v "a", v "b")); set "a" (v "b"); set "b" (v "t") ]);
        Return (v "a") ];
    func ~params:[ "p"; "n" ] ~locals:[ "i"; "cnt"; "inword"; "ch" ] "wc_words_"
      [ set "cnt" (c 0); set "inword" (c 0);
        For (set "i" (c 0), Bin (Lts, v "i", v "n"), set "i" (Bin (Add, v "i", c 1)),
             [ set "ch" (load8 (Bin (Add, v "p", v "i")));
               If (Bin (Lor, Bin (Eq, v "ch", c 32), Bin (Eq, v "ch", c 10)),
                   [ set "inword" (c 0) ],
                   [ If (Bin (Eq, v "inword", c 0),
                         [ set "cnt" (Bin (Add, v "cnt", c 1));
                           set "inword" (c 1) ],
                         []) ]) ]);
        Return (v "cnt") ];
    func ~params:[ "x" ] ~locals:[ "d"; "cnt" ] "digits_"
      [ set "cnt" (c 1); set "d" (v "x");
        While (Bin (Geu, v "d", c 10),
               [ set "d" (Bin (Divu, v "d", c 10));
                 set "cnt" (Bin (Add, v "cnt", c 1)) ]);
        Return (v "cnt") ];
    func ~params:[ "year" ] "leap_"
      [ Return
          (Bin (Land,
                Bin (Eq, Bin (Rems, v "year", c 4), c 0),
                Bin (Lor,
                     Bin (Ne, Bin (Rems, v "year", c 100), c 0),
                     Bin (Eq, Bin (Rems, v "year", c 400), c 0)))) ];
    func ~params:[ "a"; "b"; "m" ] ~locals:[ "r" ] "mulmod_"
      [ set "r" (Bin (Remu, Bin (Mul, Bin (Remu, v "a", v "m"), Bin (Remu, v "b", v "m")), v "m"));
        Return (v "r") ];
    func ~params:[ "base"; "e"; "m" ] ~locals:[ "r" ] "powmod_"
      [ set "r" (c 1);
        While (Bin (Gtu, v "e", c 0),
               [ If (band (v "e") (c 1),
                     [ set "r" (call "mulmod_" [ v "r"; v "base"; v "m" ]) ], []);
                 set "base" (call "mulmod_" [ v "base"; v "base"; v "m" ]);
                 set "e" (shr (v "e") (c 1)) ]);
        Return (v "r") ];
    func ~params:[ "p"; "n"; "ch" ] ~locals:[ "i" ] "strchr_"
      [ For (set "i" (c 0), Bin (Lts, v "i", v "n"), set "i" (Bin (Add, v "i", c 1)),
             [ If (Bin (Eq, load8 (Bin (Add, v "p", v "i")), v "ch"),
                   [ Return (v "i") ], []) ]);
        Return (c (-1)) ];
    func ~params:[ "x" ] "abs_"
      [ If (Bin (Lts, v "x", c 0), [ Return (neg (v "x")) ], [ Return (v "x") ]) ];
    func ~params:[ "x"; "y" ] ~locals:[ "r" ] "hypot2_"
      [ set "r" (Bin (Add, Bin (Mul, v "x", v "x"), Bin (Mul, v "y", v "y")));
        Return (call "isqrt_" [ v "r" ]) ];
    func ~params:[ "seed" ] ~locals:[ "s" ] "rand_next_"
      [ set "s" (band (Bin (Add, Bin (Mul, v "seed", c 1103515245), c 12345)) (c 0x7FFFFFFF));
        Return (v "s") ];
    func ~params:[ "p"; "n" ] ~locals:[ "i"; "c0"; "c1" ] "rot13_"
      [ For (set "i" (c 0), Bin (Lts, v "i", v "n"), set "i" (Bin (Add, v "i", c 1)),
             [ set "c0" (load8 (Bin (Add, v "p", v "i")));
               set "c1" (v "c0");
               If (Bin (Land, Bin (Ges, v "c0", c 65), Bin (Les, v "c0", c 90)),
                   [ set "c1" (Bin (Add, c 65, Bin (Rems, Bin (Add, Bin (Sub, v "c0", c 65), c 13), c 26))) ],
                   []);
               store8 (Bin (Add, v "p", v "i")) (u8 (v "c1")) ]);
        Return (c 0) ] ]

(* --- pathological raw-assembly functions (rewrite-failure seeds) -------------- *)

open X86.Isa

(* uses push rsp: unsupported by the translation step (like the paper's 19
   coreutils failures) *)
let pad =
  List.concat_map
    (fun r -> [ Asm.Ins (Mov (W64, Reg r, Imm 3L)); Asm.Ins (Alu (Add, W64, Reg RAX, Reg r)) ])
    [ RCX; RDX; RSI; R8; R9 ]

let asm_push_rsp : Asm.item list =
  pad
  @ [ Asm.Ins (Push (Reg RSP));
      Asm.Ins (Pop (Reg RAX));
      Asm.Ins Ret ]

(* pops into memory: also unsupported *)
let asm_pop_mem : Asm.item list =
  pad
  @ [ Asm.Ins (Push (Reg RDI));
      Asm.Ins (Pop (Mem (mem_abs 0x800100L)));
      Asm.Ins Ret ]

(* too small to hold the pivoting stub *)
let asm_tiny : Asm.item list =
  [ Asm.Ins (Mov (W64, Reg RAX, Reg RDI)); Asm.Ins Ret ]

(* register-pressure monster: keeps every register live across a long
   dependent computation *)
let asm_pressure : Asm.item list =
  let regs = [ RAX; RBX; RCX; RDX; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 ] in
  List.map (fun r -> Asm.Ins (Mov (W64, Reg r, Imm 1L))) regs
  @ List.concat_map
      (fun _ ->
         List.map (fun r -> Asm.Ins (Alu (Add, W64, Reg RAX, Reg r)))
           (List.tl regs))
      [ (); () ]
  @ [ Asm.Ins Ret ]

let raw_functions =
  [ ("asm_push_rsp", asm_push_rsp);
    ("asm_pop_mem", asm_pop_mem);
    ("asm_tiny", asm_tiny);
    ("asm_pressure", asm_pressure) ]

(* --- assembled corpus ---------------------------------------------------------- *)

let prog : program =
  program ~globals:[ G_zero ("scratchbuf", 256) ] funcs

let minic_names = List.map (fun f -> f.fname) funcs

let all_names = minic_names @ List.map fst raw_functions

(* Compile the corpus (mini-C functions plus the raw assembly ones) into one
   image. *)
let compile () : Image.t =
  let u : Asm.unit_ =
    { Asm.u_functions =
        List.map (fun f -> (f.fname, Codegen.compile_func f)) prog.funcs
        @ raw_functions;
      Asm.u_data = List.map Codegen.compile_global prog.globals }
  in
  Asm.link u
