lib/image/asm.ml: Buffer Bytes Char Hashtbl Image Int64 List X86
