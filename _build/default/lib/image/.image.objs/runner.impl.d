lib/image/runner.ml: Format Image Int64 List Machine X86
