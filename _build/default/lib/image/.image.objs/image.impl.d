lib/image/image.ml: Bytes Char Int64 List Machine Printf X86
