(* Symbolic assembler and linker.

   Code is written as lists of {!item}s with local labels and references to
   global symbols; [link] lays out functions in .text and data blobs in
   .data, then resolves every reference.  All symbolic encodings have a fixed
   length, so layout is a single deterministic pass. *)

open X86.Isa

type item =
  | Ins of instr                (* concrete instruction *)
  | Label of string             (* local label, scope = enclosing function *)
  | Jmp_l of string             (* jmp to local label *)
  | Jcc_l of cc * string
  | Call_s of string            (* call a global symbol *)
  | Lea_s of reg * string       (* reg := address of global symbol *)
  | Lea_l of reg * string       (* reg := absolute address of a local label *)
  | Mov_s of reg * string       (* reg := address of global symbol (imm32) *)
  | Push_s of string            (* push address of global symbol *)
  | Quad_l of string            (* 8 raw bytes: absolute address of a local
                                   label; used for in-text jump tables *)

type data_item =
  | D_bytes of bytes
  | D_quad of int64
  | D_quad_sym of string        (* 8-byte address of a global symbol *)
  | D_zero of int

let item_length = function
  | Ins i -> X86.Encode.length i
  | Label _ -> 0
  | Jmp_l _ -> 5                      (* opcode + rel32 *)
  | Jcc_l _ -> 5
  | Call_s _ -> 5
  | Lea_s _ -> 7                      (* opcode + reg + mode 0x40 + disp32 *)
  | Lea_l _ -> 7
  | Mov_s _ -> 7                      (* opcode + reg mode + imm32 mode + 4 *)
  | Push_s _ -> 6                     (* opcode + imm32 mode + 4 *)
  | Quad_l _ -> 8

let body_length items = List.fold_left (fun a i -> a + item_length i) 0 items

exception Undefined of string

(* Assemble [items] at absolute address [base]; [resolve] maps global symbol
   names to addresses. *)
let assemble ~base ~resolve items =
  (* pass 1: local label offsets *)
  let labels = Hashtbl.create 16 in
  let _ =
    List.fold_left
      (fun off it ->
         (match it with Label l -> Hashtbl.replace labels l off | _ -> ());
         off + item_length it)
      0 items
  in
  let local l =
    match Hashtbl.find_opt labels l with
    | Some off -> off
    | None -> raise (Undefined ("label " ^ l))
  in
  let global s =
    match resolve s with
    | Some a -> a
    | None -> raise (Undefined ("symbol " ^ s))
  in
  (* pass 2: emit *)
  let buf = Buffer.create 256 in
  let emit_exact expected i =
    let b = X86.Encode.encode i in
    assert (Bytes.length b = expected);
    Buffer.add_bytes buf b
  in
  List.iter
    (fun it ->
       let off = Buffer.length buf in
       let rel target_off used = target_off - (off + used) in
       match it with
       | Label _ -> ()
       | Ins i -> Buffer.add_bytes buf (X86.Encode.encode i)
       | Jmp_l l -> emit_exact 5 (Jmp (J_rel (rel (local l) 5)))
       | Jcc_l (c, l) -> emit_exact 5 (Jcc (c, rel (local l) 5))
       | Call_s s ->
         let target = global s in
         let here = Int64.add base (Int64.of_int (off + 5)) in
         emit_exact 5 (Call (J_rel (Int64.to_int (Int64.sub target here))))
       | Lea_s (r, s) -> emit_exact 7 (Lea (r, mem_abs (global s)))
       | Lea_l (r, l) ->
         emit_exact 7 (Lea (r, mem_abs (Int64.add base (Int64.of_int (local l)))))
       | Quad_l l ->
         let a = Int64.add base (Int64.of_int (local l)) in
         for i = 0 to 7 do
           Buffer.add_char buf
             (Char.chr (Int64.to_int (Int64.shift_right_logical a (8 * i)) land 0xff))
         done
       | Mov_s (r, s) ->
         (* force the imm32 form so the length is fixed *)
         let a = global s in
         assert (a >= -2147483648L && a <= 2147483647L);
         Buffer.add_char buf (Char.chr (0x08 + width_index W64));
         Buffer.add_char buf (Char.chr (reg_index r));
         Buffer.add_char buf '\x51';
         for i = 0 to 3 do
           Buffer.add_char buf
             (Char.chr (Int64.to_int (Int64.shift_right_logical a (8 * i)) land 0xff))
         done
       | Push_s s ->
         let a = global s in
         assert (a >= -2147483648L && a <= 2147483647L);
         Buffer.add_char buf '\x61';
         Buffer.add_char buf '\x51';
         for i = 0 to 3 do
           Buffer.add_char buf
             (Char.chr (Int64.to_int (Int64.shift_right_logical a (8 * i)) land 0xff))
         done)
    items;
  Buffer.to_bytes buf

let data_item_length = function
  | D_bytes b -> Bytes.length b
  | D_quad _ -> 8
  | D_quad_sym _ -> 8
  | D_zero n -> n

let data_length items = List.fold_left (fun a i -> a + data_item_length i) 0 items

let assemble_data ~resolve items =
  let buf = Buffer.create 64 in
  let quad v =
    for i = 0 to 7 do
      Buffer.add_char buf
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done
  in
  List.iter
    (function
      | D_bytes b -> Buffer.add_bytes buf b
      | D_quad v -> quad v
      | D_quad_sym s ->
        (match resolve s with
         | Some a -> quad a
         | None -> raise (Undefined ("symbol " ^ s)))
      | D_zero n -> Buffer.add_bytes buf (Bytes.make n '\000'))
    items;
  Buffer.to_bytes buf

type unit_ = {
  u_functions : (string * item list) list;
  u_data : (string * data_item list) list;
}

let align16 n = (n + 15) land lnot 15

(* Lay out and link a compilation unit into a fresh image. *)
let link (u : unit_) =
  let img = Image.create () in
  (* layout: functions in .text *)
  let text_layout = ref [] in
  let text_off = ref 0 in
  List.iter
    (fun (name, items) ->
       let size = body_length items in
       text_layout := (name, !text_off, size, items) :: !text_layout;
       text_off := align16 (!text_off + size))
    u.u_functions;
  let text_layout = List.rev !text_layout in
  (* layout: data blobs *)
  let data_layout = ref [] in
  let data_off = ref 0 in
  List.iter
    (fun (name, items) ->
       let size = data_length items in
       data_layout := (name, !data_off, size, items) :: !data_layout;
       data_off := align16 (!data_off + size))
    u.u_data;
  let data_layout = List.rev !data_layout in
  (* symbol table *)
  let table = Hashtbl.create 64 in
  List.iter
    (fun (name, off, _, _) ->
       Hashtbl.replace table name (Int64.add Image.text_base (Int64.of_int off)))
    text_layout;
  List.iter
    (fun (name, off, _, _) ->
       Hashtbl.replace table name (Int64.add Image.data_base (Int64.of_int off)))
    data_layout;
  let resolve s = Hashtbl.find_opt table s in
  (* emit text *)
  let text = Bytes.make !text_off '\000' in
  List.iter
    (fun (name, off, size, items) ->
       let base = Int64.add Image.text_base (Int64.of_int off) in
       let b = assemble ~base ~resolve items in
       Bytes.blit b 0 text off (Bytes.length b);
       Image.add_symbol img ~is_function:true ~name ~addr:base ~size ())
    text_layout;
  (* emit data *)
  let data = Bytes.make !data_off '\000' in
  List.iter
    (fun (name, off, size, items) ->
       let b = assemble_data ~resolve items in
       Bytes.blit b 0 data off (Bytes.length b);
       Image.add_symbol img ~name
         ~addr:(Int64.add Image.data_base (Int64.of_int off)) ~size ())
    data_layout;
  ignore
    (Image.add_section img ~name:".text" ~addr:Image.text_base ~data:text
       ~writable:false ~executable:true);
  ignore
    (Image.add_section img ~name:".data" ~addr:Image.data_base ~data
       ~writable:true ~executable:false);
  img
