(* Binary image: the ELF stand-in.

   An image is a set of sections plus a symbol table.  The standard layout
   mirrors a small static Linux binary:
     .text   at 0x400000   (code, gadgets)
     .data   at 0x800000   (globals, jump tables)
     .rop    at 0xA00000   (ROP chains emitted by the rewriter)
   The stack for native execution grows down from 0x70000000, and the chain
   stacks / stack-switching array live inside .data. *)

let text_base = 0x400000L
let data_base = 0x800000L
let rop_base = 0xA00000L
let stack_top = 0x7000_0000L
let stack_size = 1 lsl 20

(* Executing this address halts the machine: the harness pushes it as the
   return address of the function under test. *)
let exit_stub_addr = 0x4FF000L

type section = {
  sec_name : string;
  sec_addr : int64;
  mutable sec_data : bytes;
  sec_writable : bool;
  sec_executable : bool;
}

type symbol = {
  sym_name : string;
  sym_addr : int64;
  sym_size : int;
  sym_is_function : bool;
}

type t = {
  mutable sections : section list;
  mutable symbols : symbol list;
}

let create () = { sections = []; symbols = [] }

let add_section t ~name ~addr ~data ~writable ~executable =
  let s = { sec_name = name; sec_addr = addr; sec_data = data;
            sec_writable = writable; sec_executable = executable } in
  t.sections <- t.sections @ [ s ];
  s

let find_section t name =
  List.find_opt (fun s -> s.sec_name = name) t.sections

let section_exn t name =
  match find_section t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "no section %s" name)

let section_end s = Int64.add s.sec_addr (Int64.of_int (Bytes.length s.sec_data))

(* Append bytes to a section, returning the address they start at. *)
let append t name (b : bytes) =
  let s = section_exn t name in
  let addr = section_end s in
  s.sec_data <- Bytes.cat s.sec_data b;
  addr

let add_symbol t ?(is_function = false) ~name ~addr ~size () =
  t.symbols <- { sym_name = name; sym_addr = addr; sym_size = size;
                 sym_is_function = is_function } :: t.symbols

let find_symbol t name =
  List.find_opt (fun s -> s.sym_name = name) t.symbols

let symbol_addr t name =
  match find_symbol t name with
  | Some s -> s.sym_addr
  | None -> invalid_arg (Printf.sprintf "undefined symbol %s" name)

let functions t = List.filter (fun s -> s.sym_is_function) t.symbols

let symbol_at t addr =
  List.find_opt (fun s ->
      Int64.compare s.sym_addr addr <= 0
      && Int64.compare addr (Int64.add s.sym_addr (Int64.of_int s.sym_size)) < 0)
    t.symbols

(* Patch [len] bytes of [v] (little-endian) at absolute address [addr]. *)
let patch t addr len v =
  let s =
    List.find_opt (fun s ->
        Int64.compare s.sec_addr addr <= 0
        && Int64.compare addr (section_end s) < 0)
      t.sections
  in
  match s with
  | None -> invalid_arg (Printf.sprintf "patch outside sections: 0x%Lx" addr)
  | Some s ->
    let off = Int64.to_int (Int64.sub addr s.sec_addr) in
    for i = 0 to len - 1 do
      Bytes.set s.sec_data (off + i)
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done

let read_byte t addr =
  let s =
    List.find_opt (fun s ->
        Int64.compare s.sec_addr addr <= 0
        && Int64.compare addr (section_end s) < 0)
      t.sections
  in
  match s with
  | None -> None
  | Some s -> Some (Char.code (Bytes.get s.sec_data (Int64.to_int (Int64.sub addr s.sec_addr))))

(* Replace the body of a function in .text with [b], padding the remainder of
   the old body with invalid bytes (0x00), as the rewriter does when
   installing a pivot stub over the original code. *)
let replace_function_body t sym (b : bytes) =
  let s = section_exn t ".text" in
  let off = Int64.to_int (Int64.sub sym.sym_addr s.sec_addr) in
  if Bytes.length b > sym.sym_size then
    invalid_arg (Printf.sprintf "replacement for %s too large (%d > %d)"
                   sym.sym_name (Bytes.length b) sym.sym_size);
  Bytes.blit b 0 s.sec_data off (Bytes.length b);
  Bytes.fill s.sec_data (off + Bytes.length b) (sym.sym_size - Bytes.length b) '\000'

(* Load the image into a fresh machine, stack mapped, exit stub installed. *)
let load t =
  let mem = Machine.Memory.create () in
  List.iter (fun s -> Machine.Memory.store_bytes mem s.sec_addr s.sec_data) t.sections;
  Machine.Memory.map mem (Int64.sub stack_top (Int64.of_int stack_size)) stack_size;
  Machine.Memory.store_bytes mem exit_stub_addr (X86.Encode.encode X86.Isa.Hlt);
  mem

(* Deep copy (sections are mutable). *)
let copy t = {
  sections =
    List.map (fun s -> { s with sec_data = Bytes.copy s.sec_data }) t.sections;
  symbols = t.symbols;
}
