lib/harness/configs.ml: Image List Minic Ropc Vmobf
