lib/harness/experiments.ml: Configs Hashtbl Image Int64 List Machine Minic Option Printf Report Ropaware Ropc Runner Symex Taint Util Vmobf
