(* Fixed-width text tables for the experiment reports. *)

let pad w s =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let rule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

(* Print a table: headers and rows are string lists. *)
let table ~title ~headers rows =
  let widths =
    List.mapi
      (fun i h ->
         List.fold_left
           (fun acc row ->
              max acc (String.length (List.nth row i)))
           (String.length h) rows)
      headers
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n"
    (String.concat " | " (List.map2 pad widths headers));
  Printf.printf "%s\n" (rule widths);
  List.iter
    (fun row ->
       Printf.printf "%s\n" (String.concat " | " (List.map2 pad widths row)))
    rows;
  flush stdout

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let i v = string_of_int v
