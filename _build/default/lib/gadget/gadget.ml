(* Gadget representation.

   A gadget is a short instruction sequence located in executable memory whose
   last instruction transfers control via the stack (ret) or a register (the
   JOP gadgets used for stack switching, §IV-B2). *)

open X86.Isa

type ending =
  | E_ret                      (* ends in ret *)
  | E_jop of reg               (* ends in jmp reg *)

type t = {
  addr : int64;
  body : instr list;           (* excluding the final ret (included for jop) *)
  ending : ending;
}

let instrs g =
  match g.ending with
  | E_ret -> g.body @ [ Ret ]
  | E_jop _ -> g.body

let encode g = X86.Encode.encode_list (instrs g)

let length g = Bytes.length (encode g)

let to_string g =
  let body = String.concat "; " (List.map X86.Pp.instr_str (instrs g)) in
  Printf.sprintf "0x%Lx: %s" g.addr body

let pp fmt g = Format.pp_print_string fmt (to_string g)

(* Key identifying a gadget's semantics: its exact instruction list. *)
type key = instr list

let key g : key = g.body
