(* Gadget finder: scans executable bytes for naturally occurring sequences
   ending in ret, decoding at every offset (aligned or not) exactly like an
   attacker's gadget scanner would.  The rewriter draws on these "found"
   gadgets for program parts left unobfuscated before synthesizing artificial
   ones (§IV-A1). *)

open X86.Isa

(* Scan [buf] (loaded at [base]) and return all gadgets of at most
   [max_instrs] instructions ending in ret. *)
let scan ?(max_instrs = 3) ~base (buf : bytes) : Gadget.t list =
  let n = Bytes.length buf in
  let out = ref [] in
  for off = 0 to n - 1 do
    (* decode forward from [off], up to max_instrs *)
    let rec go pos acc count =
      if count > max_instrs then ()
      else
        match X86.Decode.decode buf pos with
        | None -> ()
        | Some (Ret, _) ->
          let body = List.rev acc in
          out :=
            { Gadget.addr = Int64.add base (Int64.of_int off);
              body;
              ending = Gadget.E_ret }
            :: !out
        | Some (Jmp (J_op (Reg r)), _) when acc <> [] ->
          out :=
            { Gadget.addr = Int64.add base (Int64.of_int off);
              body = List.rev (Jmp (J_op (Reg r)) :: acc);
              ending = Gadget.E_jop r }
            :: !out
        | Some ((Hlt | Jmp _ | Jcc _ | Call _), _) -> ()
        | Some (i, len) -> go (pos + len) (i :: acc) (count + 1)
    in
    go off [] 0
  done;
  List.rev !out

(* Scan the ranges of [img]'s .text that belong to functions NOT in
   [excluding] (those will be wiped by the rewriter). *)
let scan_image ?(max_instrs = 3) (img : Image.t) ~excluding =
  let text = Image.section_exn img ".text" in
  let excluded a =
    List.exists
      (fun name ->
         match Image.find_symbol img name with
         | Some s ->
           Int64.compare s.Image.sym_addr a <= 0
           && Int64.compare a
                (Int64.add s.Image.sym_addr (Int64.of_int s.Image.sym_size)) < 0
         | None -> false)
      excluding
  in
  let all = scan ~max_instrs ~base:text.Image.sec_addr text.Image.sec_data in
  List.filter (fun g -> not (excluded g.Gadget.addr)) all
