lib/gadget/finder.ml: Bytes Gadget Image Int64 List X86
