lib/gadget/pool.ml: Buffer Gadget Hashtbl Int64 List Option Util X86
