lib/gadget/gadget.ml: Bytes Format List Printf String X86
