(* Obfuscation configuration terminology (Table I) and appliers. *)

type obf =
  | Native
  | Rop of float                       (* ROP_k: P1 + P3 at fraction k *)
  | Rop_full of Ropc.Config.t          (* explicit rewriter configuration *)
  | Vm of int * Vmobf.implicit_layers  (* nVM-IMP_x *)

type named = { name : string; obf : obf }

(* The 15 configurations of Table II. *)
let table2_configs : named list =
  [ { name = "NATIVE"; obf = Native };
    { name = "ROP_0.05"; obf = Rop 0.05 };
    { name = "ROP_0.25"; obf = Rop 0.25 };
    { name = "ROP_0.50"; obf = Rop 0.50 };
    { name = "ROP_0.75"; obf = Rop 0.75 };
    { name = "ROP_1.00"; obf = Rop 1.00 };
    { name = "1VM-IMPall"; obf = Vm (1, Vmobf.Imp_all) };
    { name = "2VM"; obf = Vm (2, Vmobf.Imp_none) };
    { name = "2VM-IMPfirst"; obf = Vm (2, Vmobf.Imp_first) };
    { name = "2VM-IMPlast"; obf = Vm (2, Vmobf.Imp_last) };
    { name = "2VM-IMPall"; obf = Vm (2, Vmobf.Imp_all) };
    { name = "3VM"; obf = Vm (3, Vmobf.Imp_none) };
    { name = "3VM-IMPfirst"; obf = Vm (3, Vmobf.Imp_first) };
    { name = "3VM-IMPlast"; obf = Vm (3, Vmobf.Imp_last) };
    { name = "3VM-IMPall"; obf = Vm (3, Vmobf.Imp_all) } ]

let rop_ks = [ 0.0; 0.05; 0.25; 0.50; 0.75; 1.00 ]

(* ROPfuscator layer combinations (OC opaque constants, IH instruction
   hiding, PF per-function config) as named axis values for grids and
   campaigns, alongside the Table II vocabulary. *)
let layer_configs : named list =
  [ { name = "ROP_0.50+OC";
      obf = Rop_full (Ropc.Config.rop_k ~opaque:true 0.50) };
    { name = "ROP_0.50+IH";
      obf = Rop_full (Ropc.Config.rop_k ~hiding:true 0.50) };
    { name = "ROP_0.50+OC+IH";
      obf = Rop_full (Ropc.Config.rop_k ~opaque:true ~hiding:true 0.50) };
    { name = "ROP_0.50+OC+IH+PF";
      obf = Rop_full (Ropc.Config.rop_k ~opaque:true ~hiding:true ~pf:true 0.50) };
    { name = "ROP_1.00+OC+IH";
      obf = Rop_full (Ropc.Config.rop_k ~opaque:true ~hiding:true 1.00) } ]

exception Obfuscation_failed of string

(* Apply a configuration to [prog], obfuscating [funcs] (ROP) or each
   function in [funcs] (VM), and return the final image. *)
let apply ?(seed = 1) (obf : obf) (prog : Minic.Ast.program) ~funcs : Image.t =
  match obf with
  | Native -> Minic.Codegen.compile prog
  | Rop k ->
    let img = Minic.Codegen.compile prog in
    let r =
      Ropc.Rewriter.rewrite img ~functions:funcs
        ~config:(Ropc.Config.rop_k ~seed k)
    in
    List.iter
      (fun (f, res) ->
         match res with
         | Ok _ -> ()
         | Error e ->
           raise (Obfuscation_failed
                    (f ^ ": " ^ Ropc.Rewriter.failure_to_string e)))
      r.Ropc.Rewriter.funcs;
    r.Ropc.Rewriter.image
  | Rop_full config ->
    let img = Minic.Codegen.compile prog in
    let r = Ropc.Rewriter.rewrite img ~functions:funcs ~config in
    List.iter
      (fun (f, res) ->
         match res with
         | Ok _ -> ()
         | Error e ->
           raise (Obfuscation_failed
                    (f ^ ": " ^ Ropc.Rewriter.failure_to_string e)))
      r.Ropc.Rewriter.funcs;
    r.Ropc.Rewriter.image
  | Vm (layers, implicit) ->
    let prog =
      List.fold_left
        (fun prog f -> Vmobf.layered ~implicit ~layers ~seed prog f)
        prog funcs
    in
    Minic.Codegen.compile prog
