(* Fixed-width text tables for the experiment reports. *)

let pad w s =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let rule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

(* Print a table: headers and rows are string lists. *)
let table ~title ~headers rows =
  let widths =
    List.mapi
      (fun i h ->
         List.fold_left
           (fun acc row ->
              max acc (String.length (List.nth row i)))
           (String.length h) rows)
      headers
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n"
    (String.concat " | " (List.map2 pad widths headers));
  Printf.printf "%s\n" (rule widths);
  List.iter
    (fun row ->
       Printf.printf "%s\n" (String.concat " | " (List.map2 pad widths row)))
    rows;
  flush stdout

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let i v = string_of_int v

(* --- artifact files ----------------------------------------------------------

   CSV/JSON emission for machine-readable artifacts (crossover curves,
   campaign summaries).  Writers are atomic (temp + rename in the target
   directory) so an interrupted run never leaves a torn artifact, and the
   byte-identical-resume contract can compare files directly. *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(* Build a CSV document from headers and rows (RFC-4180 quoting, \n line
   ends: deterministic bytes for a deterministic row list). *)
let csv ~headers rows =
  let line cells = String.concat "," (List.map csv_escape cells) ^ "\n" in
  String.concat "" (line headers :: List.map line rows)

let write_file path contents =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let tmp = Filename.temp_file ~temp_dir:dir "report" ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s
