(* Experiment runners: one per table/figure of the paper's evaluation
   (DESIGN.md per-experiment index).  All budgets are scaled down from the
   paper's 1-hour-per-target setting; EXPERIMENTS.md records paper-vs-ours
   for every row. *)

module E = Symex.Engine

type scale = {
  budget_s : float;            (* attack wall budget per target *)
  loop_size : int;             (* RandomFuns loop bound (paper: 25) *)
  seeds : int list;            (* RandomFuns seeds (paper: 1,2,3) *)
  input_sizes : int list;      (* paper: 1,2,4,8 *)
  controls : int list;         (* Table IV rows, paper: all 6 *)
  configs : Configs.named list;
}

(* Small scale: minutes of total runtime, used by bench/main.exe. *)
let quick_scale = {
  budget_s = 2.0;
  loop_size = 4;
  seeds = [ 1 ];
  input_sizes = [ 1; 2 ];
  controls = [ 0; 1; 2; 5 ];
  configs =
    List.filter
      (fun { Configs.name; _ } ->
         List.mem name
           [ "NATIVE"; "ROP_0.05"; "ROP_0.25"; "ROP_1.00";
             "1VM-IMPall"; "2VM"; "2VM-IMPall"; "3VM-IMPall" ])
      Configs.table2_configs;
}

(* Full scale: the complete 72-function / 15-configuration matrix. *)
let full_scale = {
  budget_s = 20.0;
  loop_size = 5;
  seeds = [ 1; 2; 3 ];
  input_sizes = [ 1; 2; 4; 8 ];
  controls = [ 0; 1; 2; 3; 4; 5 ];
  configs = Configs.table2_configs;
}

let gen_corpus scale ~point_test ~coverage_probes =
  List.concat_map
    (fun control_index ->
       List.concat_map
         (fun input_size ->
            List.map
              (fun seed ->
                 Minic.Randomfuns.generate
                   (Minic.Randomfuns.default_params ~loop_size:scale.loop_size
                      ~seed ~input_size ~control_index ~point_test
                      ~coverage_probes ()))
              scale.seeds)
         scale.input_sizes)
    scale.controls

let budget_of scale =
  { E.default_budget with wall_seconds = scale.budget_s; solver_evals = 80_000 }

(* Cache identity of a scale: every field that changes a cell's value must
   appear here, because "scale_key / cell name" is the cell's address in
   the lib/jobs result cache (the executable-digest salt covers the code
   version). *)
let scale_key s =
  Printf.sprintf "budget=%g/loop=%d/seeds=%s/sizes=%s/controls=%s/nconf=%d"
    s.budget_s s.loop_size
    (String.concat "," (List.map string_of_int s.seeds))
    (String.concat "," (List.map string_of_int s.input_sizes))
    (String.concat "," (List.map string_of_int s.controls))
    (List.length s.configs)

(* Per-cell cost columns appended to every pooled table: worker-side wall
   seconds (or "cache" when the cell came from the lib/jobs result cache)
   and user+system CPU seconds from the worker's Unix.times deltas. *)
let cost_headers = [ "CELL WALL"; "CELL CPU" ]

let cell_cost (r : _ Jobs.Pool.result) =
  [ (if r.Jobs.Pool.cached then "cache"
     else Printf.sprintf "%.2fs" r.Jobs.Pool.time_s);
    Printf.sprintf "%.2fs" (r.Jobs.Pool.utime_s +. r.Jobs.Pool.stime_s) ]

(* Probes reachable natively, by concrete enumeration/sampling. *)
let reachable_probes (t : Minic.Randomfuns.t) =
  let img = Minic.Codegen.compile t.prog in
  let cov_addr = Image.symbol_addr img "__cov" in
  let reached = Hashtbl.create 16 in
  let mem0 = Image.load img in
  let inputs =
    let n = t.params.Minic.Randomfuns.input_size in
    if n <= 2 then
      List.init (1 lsl (8 * n)) Int64.of_int
    else begin
      let rng = Util.Rng.create 4242 in
      List.init 512 (fun _ ->
          Int64.logand (Util.Rng.next64 rng) t.input_mask)
    end
  in
  List.iter
    (fun x ->
       let mem = Machine.Memory.copy mem0 in
       let r = Runner.call ~fuel:10_000_000 ~mem img ~func:"target" ~args:[ x ] in
       if r.Runner.status = Machine.Exec.Halted then
         for k = 0 to t.n_probes - 1 do
           if Machine.Memory.read r.Runner.cpu.Machine.Cpu.mem
                (Int64.add cov_addr (Int64.of_int k)) 1
              <> 0L
           then Hashtbl.replace reached k ()
         done)
    inputs;
  reached

(* --- Table II: secret finding and code coverage under DSE ------------------- *)

type table2_row = {
  t2_config : string;
  t2_found : int;
  t2_total : int;
  t2_avg_time : float;         (* successful attempts only *)
  t2_covered : int;            (* targets with 100% of reachable probes *)
}

let table2 ?(pool = Jobs.Pool.default) ?(scale = quick_scale) () =
  let corpus_g1 = gen_corpus scale ~point_test:true ~coverage_probes:false in
  let corpus_g2 = gen_corpus scale ~point_test:false ~coverage_probes:true in
  let budget = budget_of scale in
  (* one pool job per configuration: the whole corpus sweep for that column
     runs in a worker and comes back as a plain-data row *)
  let row_of ({ Configs.name; obf } : Configs.named) =
    (* G1: secret finding *)
    let found = ref 0 and time_sum = ref 0.0 in
    List.iter
      (fun (t : Minic.Randomfuns.t) ->
         match Configs.apply obf t.prog ~funcs:[ "target" ] with
         | exception Configs.Obfuscation_failed _ -> ()
         | img ->
           let tgt =
             { E.img; func = "target";
               n_inputs = t.params.Minic.Randomfuns.input_size }
           in
           let r = E.dse ~goal:E.G_secret ~budget tgt in
           (match r.E.secret_input with
            | Some _ ->
              incr found;
              time_sum := !time_sum +. r.E.time
            | None -> ()))
      corpus_g1;
    (* G2: coverage *)
    let covered = ref 0 in
    List.iter
      (fun (t : Minic.Randomfuns.t) ->
         match Configs.apply obf t.prog ~funcs:[ "target" ] with
         | exception Configs.Obfuscation_failed _ -> ()
         | img ->
           let reachable = reachable_probes t in
           let tgt =
             { E.img; func = "target";
               n_inputs = t.params.Minic.Randomfuns.input_size }
           in
           let r = E.dse ~goal:E.G_coverage ~budget tgt in
           let all =
             Hashtbl.fold
               (fun k () acc -> acc && Hashtbl.mem r.E.covered k)
               reachable true
           in
           if all && Hashtbl.length reachable > 0 then incr covered)
      corpus_g2;
    { t2_config = name;
      t2_found = !found;
      t2_total = List.length corpus_g1;
      t2_avg_time =
        (if !found = 0 then 0.0 else !time_sum /. float_of_int !found);
      t2_covered = !covered }
  in
  let skey = scale_key scale in
  let results =
    Jobs.Pool.map ~label:"table2" pool
      ~key:(fun (c : Configs.named) ->
          Printf.sprintf "table2/%s/%s" skey c.Configs.name)
      ~f:row_of scale.configs
  in
  let rows =
    List.map2
      (fun ({ Configs.name; _ } : Configs.named) (r : _ Jobs.Pool.result) ->
         match r.Jobs.Pool.outcome with
         | Jobs.Pool.Done row -> row
         | Jobs.Pool.Failed m ->
           { t2_config = name ^ " [failed: " ^ m ^ "]"; t2_found = 0;
             t2_total = 0; t2_avg_time = 0.0; t2_covered = 0 }
         | Jobs.Pool.Timed_out t ->
           { t2_config = Printf.sprintf "%s [timed out %.0fs]" name t;
             t2_found = 0; t2_total = 0; t2_avg_time = 0.0; t2_covered = 0 })
      scale.configs results
  in
  Report.table ~title:"Table II: successful DSE attacks within budget"
    ~headers:
      ([ "CONFIGURATION"; "SECRET FOUND"; "AVG TIME"; "100% COVERAGE" ]
       @ cost_headers)
    (List.map2
       (fun r res ->
          [ r.t2_config;
            Printf.sprintf "%d/%d" r.t2_found r.t2_total;
            (if r.t2_found = 0 then "-" else Printf.sprintf "%.1fs" r.t2_avg_time);
            Printf.sprintf "%d/%d" r.t2_covered r.t2_total ]
          @ cell_cost res)
       rows results);
  rows

(* --- Figure 5 / Table III: clbg overhead and rewriter statistics ------------- *)

type fig5_row = {
  f5_bench : string;
  f5_native_steps : int;
  f5_vm_slowdown : float;              (* 2VM-IMPlast vs native *)
  f5_rop_slowdown : (float * float) list;   (* k, slowdown vs native *)
}

let fig5 ?(pool = Jobs.Pool.default) () =
  let row_of (name, prog, fns, n) =
    let steps_of img =
      (Runner.call_exn ~fuel:2_000_000_000 img ~func:"bench" ~args:[ n ])
        .Runner.steps
    in
    let native = steps_of (Minic.Codegen.compile prog) in
    (* the VM baseline is measured at a smaller size: its slowdown is a
       per-instruction multiplier, so the ratio carries over *)
    let n_vm = List.assoc name Minic.Clbg.vm_args in
    let steps_small img =
      (Runner.call_exn ~fuel:2_000_000_000 img ~func:"bench" ~args:[ n_vm ])
        .Runner.steps
    in
    let native_small = steps_small (Minic.Codegen.compile prog) in
    let vm_ratio =
      float_of_int
        (steps_small
           (Configs.apply (Configs.Vm (2, Vmobf.Imp_last)) prog ~funcs:fns))
      /. float_of_int native_small
    in
    let rop =
      List.map
        (fun k ->
           let img = Configs.apply (Configs.Rop k) prog ~funcs:fns in
           (k, float_of_int (steps_of img) /. float_of_int native))
        Configs.rop_ks
    in
    { f5_bench = name;
      f5_native_steps = native;
      f5_vm_slowdown = vm_ratio;
      f5_rop_slowdown = rop }
  in
  let results =
    Jobs.Pool.map ~label:"fig5" pool
      ~key:(fun (name, _, _, n) -> Printf.sprintf "fig5/%s/n=%Ld" name n)
      ~f:row_of Minic.Clbg.all
  in
  let rows =
    List.map2
      (fun (name, _, _, _) (r : _ Jobs.Pool.result) ->
         match r.Jobs.Pool.outcome with
         | Jobs.Pool.Done row -> row
         | Jobs.Pool.Failed m ->
           { f5_bench = name ^ " [failed: " ^ m ^ "]"; f5_native_steps = 0;
             f5_vm_slowdown = 1.0;
             f5_rop_slowdown = List.map (fun k -> (k, 0.0)) Configs.rop_ks }
         | Jobs.Pool.Timed_out _ ->
           { f5_bench = name ^ " [timed out]"; f5_native_steps = 0;
             f5_vm_slowdown = 1.0;
             f5_rop_slowdown = List.map (fun k -> (k, 0.0)) Configs.rop_ks })
      Minic.Clbg.all results
  in
  Report.table
    ~title:"Figure 5: run-time overhead (slowdown vs native; baseline 2VM-IMPlast)"
    ~headers:
      ([ "BENCHMARK"; "NATIVE STEPS"; "2VM-IMPlast" ]
       @ List.map (fun k -> Printf.sprintf "ROP_%.2f" k) Configs.rop_ks
       @ [ "ROP_1.00/2VM" ] @ cost_headers)
    (List.map2
       (fun r res ->
          [ r.f5_bench; string_of_int r.f5_native_steps;
            Printf.sprintf "%.1fx" r.f5_vm_slowdown ]
          @ List.map (fun (_, s) -> Printf.sprintf "%.1fx" s) r.f5_rop_slowdown
          @ [ Printf.sprintf "%.2f"
                (snd (List.nth r.f5_rop_slowdown 5) /. r.f5_vm_slowdown) ]
          @ cell_cost res)
       rows results);
  rows

type table3_row = {
  t3_bench : string;
  t3_rows : (float * int * int * int * float) list;  (* k, N, A, B, C *)
}

let table3 ?(pool = Jobs.Pool.default) () =
  let row_of (name, prog, fns, _) =
    let per_k =
      List.map
        (fun k ->
           let img = Minic.Codegen.compile prog in
           let r =
             Ropc.Rewriter.rewrite img ~functions:fns
               ~config:(Ropc.Config.rop_k k)
           in
           let n =
             List.fold_left
               (fun acc (_, res) ->
                  match res with
                  | Ok st -> acc + st.Ropc.Rewriter.fs_points
                  | Error _ -> acc)
               0 r.Ropc.Rewriter.funcs
           in
           let a = r.Ropc.Rewriter.total_gadget_uses in
           let b = r.Ropc.Rewriter.unique_gadgets in
           (k, n, a, b, float_of_int a /. float_of_int (max n 1)))
        Configs.rop_ks
    in
    { t3_bench = name; t3_rows = per_k }
  in
  let results =
    Jobs.Pool.map ~label:"table3" pool
      ~key:(fun (name, _, _, _) -> "table3/" ^ name)
      ~f:row_of Minic.Clbg.all
  in
  let rows =
    List.map2
      (fun (name, _, _, _) (r : _ Jobs.Pool.result) ->
         match r.Jobs.Pool.outcome with
         | Jobs.Pool.Done row -> row
         | Jobs.Pool.Failed m ->
           { t3_bench = name ^ " [failed: " ^ m ^ "]";
             t3_rows = List.map (fun k -> (k, 0, 0, 0, 0.0)) Configs.rop_ks }
         | Jobs.Pool.Timed_out _ ->
           { t3_bench = name ^ " [timed out]";
             t3_rows = List.map (fun k -> (k, 0, 0, 0, 0.0)) Configs.rop_ks })
      Minic.Clbg.all results
  in
  Report.table
    ~title:"Table III: rewriter statistics (N program points; A gadget uses; B unique gadgets; C = A/N)"
    ~headers:
      ([ "BENCHMARK"; "N" ]
       @ List.concat_map
           (fun k ->
              [ Printf.sprintf "A@%.2f" k; Printf.sprintf "B@%.2f" k;
                Printf.sprintf "C@%.2f" k ])
           Configs.rop_ks
       @ cost_headers)
    (List.map2
       (fun r res ->
          let n = match r.t3_rows with (_, n, _, _, _) :: _ -> n | [] -> 0 in
          [ r.t3_bench; string_of_int n ]
          @ List.concat_map
              (fun (_, _, a, b, c) ->
                 [ string_of_int a; string_of_int b; Printf.sprintf "%.1f" c ])
              r.t3_rows
          @ cell_cost res)
       rows results);
  rows

let table4 () =
  Report.table ~title:"Table IV: RandomFuns control structures"
    ~headers:[ "CONTROL STRUCTURE"; "DEPTH"; "IFS"; "LOOPS" ]
    (List.map
       (fun (name, ctl) ->
          let rec stats = function
            | Minic.Randomfuns.C_bb _ -> (0, 0, 0)
            | Minic.Randomfuns.C_if (a, b) ->
              let (d1, i1, l1) = stats a and (d2, i2, l2) = stats b in
              (1 + max d1 d2, 1 + i1 + i2, l1 + l2)
            | Minic.Randomfuns.C_for a ->
              let (d, i, l) = stats a in
              (1 + d, i, 1 + l)
          in
          let d, i, l = stats ctl in
          [ name; string_of_int d; string_of_int i; string_of_int l ])
       Minic.Randomfuns.table_iv)

(* --- §VII-A: efficacy of the strengthening transformations ------------------- *)

let efficacy ?(budget_s = 6.0) () =
  let mk ~input_size ~control_index =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:4 ~seed:1 ~input_size
         ~control_index ())
  in
  let budget = { E.default_budget with wall_seconds = budget_s } in
  let run_se img n =
    let tgt = { E.img; func = "target"; n_inputs = n } in
    E.se ~goal:E.G_secret ~budget tgt
  in
  let t = mk ~input_size:1 ~control_index:1 in
  let rows = ref [] in
  let add name (r : E.result) =
    rows :=
      [ name;
        (match r.E.secret_input with Some _ -> "found" | None -> "timeout");
        Printf.sprintf "%.2fs" r.E.time;
        string_of_int r.E.stats.E.states ]
      :: !rows
  in
  add "SE native" (run_se (Minic.Codegen.compile t.prog) 1);
  add "SE ROP-P1 (k=0)"
    (run_se (Configs.apply (Configs.Rop 0.0) t.prog ~funcs:[ "target" ]) 1);
  add "SE ROP-P1+P3 (k=1)"
    (run_se (Configs.apply (Configs.Rop 1.0) t.prog ~funcs:[ "target" ]) 1);
  Report.table ~title:"§VII-A.1: SE vs P1/P3 (secret finding)"
    ~headers:[ "TARGET"; "OUTCOME"; "TIME"; "STATES" ]
    (List.rev !rows);
  (* TDS *)
  let tds_of obf =
    let img = Configs.apply obf t.prog ~funcs:[ "target" ] in
    Taint.Tds.run ~fuel:400_000 img ~func:"target" ~n_inputs:1 ~input:[| 7 |]
  in
  let tds_rows =
    List.map
      (fun (name, obf) ->
         let s = tds_of obf in
         [ name; string_of_int s.Taint.Tds.total;
           string_of_int s.Taint.Tds.n_kept;
           string_of_int s.Taint.Tds.tainted_branches ])
      [ ("native", Configs.Native);
        ("ROP plain", Configs.Rop_full (Ropc.Config.plain ()));
        ("ROP_0 (P1)", Configs.Rop 0.0);
        ("ROP_1.0 (P1+P3)", Configs.Rop 1.0) ]
  in
  Report.table
    ~title:"§VII-A.1: TDS simplification (implicit control deps survive P1/P3)"
    ~headers:[ "TARGET"; "TRACE"; "KEPT"; "TAINTED CTRL DEPS" ] tds_rows

(* --- §VII-A.2: ROP-aware attacks --------------------------------------------- *)

let ropaware () =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:4 ~seed:2 ~input_size:1
         ~control_index:5 ())
  in
  let variants =
    [ ("plain", Ropc.Config.plain ());
      ("P2", { (Ropc.Config.plain ()) with Ropc.Config.p2 = true });
      ("P2+conf",
       { (Ropc.Config.plain ()) with
         Ropc.Config.p2 = true; gadget_confusion = true;
         skew_prob = 35; imm_confusion_prob = 50 }) ]
  in
  let rows =
    List.map
      (fun (name, config) ->
         let img0 = Minic.Codegen.compile t.prog in
         let r = Ropc.Rewriter.rewrite img0 ~functions:[ "target" ] ~config in
         let addr, len, blocks =
           match List.assoc "target" r.Ropc.Rewriter.funcs with
           | Ok st ->
             (st.Ropc.Rewriter.fs_chain_addr, st.Ropc.Rewriter.fs_chain_bytes,
              List.length st.Ropc.Rewriter.fs_block_offsets)
           | Error e -> failwith (Ropc.Rewriter.failure_to_string e)
         in
         let dis =
           Ropaware.Ropdissector.analyze r.Ropc.Rewriter.image ~chain_addr:addr
             ~chain_len:len
         in
         let guess =
           Ropaware.Ropdissector.gadget_guess ~stride:1 r.Ropc.Rewriter.image
             ~chain_addr:addr ~chain_len:len
         in
         let memu =
           Ropaware.Ropmemu.explore r.Ropc.Rewriter.image ~func:"target"
             ~args:[ 5L ]
         in
         [ name;
           string_of_int blocks;
           string_of_int (Hashtbl.length dis.Ropaware.Ropdissector.blocks);
           string_of_int dis.Ropaware.Ropdissector.unresolved;
           Printf.sprintf "%d/%d" memu.Ropaware.Ropmemu.faulted_traces
             memu.Ropaware.Ropmemu.traces;
           Printf.sprintf "%d (%d/KB)" guess.Ropaware.Ropdissector.candidates
             (guess.Ropaware.Ropdissector.candidates * 1024 / max len 1) ])
      variants
  in
  Report.table
    ~title:"§VII-A.2: ROP-aware attacks (ROPDissector blocks, ROPMEMU faults, gadget guessing)"
    ~headers:
      [ "VARIANT"; "TRUE BLOCKS"; "DIS. BLOCKS"; "UNRESOLVED"; "MEMU FAULTS";
        "GUESS CANDIDATES" ]
    rows

(* --- ROPfuscator layer matrix: robustness x overhead -------------------------- *)

(* Layer combinations (opaque constants / instruction hiding / per-function
   config) against the attacker battery, with run-time and image-size
   overhead columns.  One pool job per combination; cells carry only plain
   data so a --jobs run renders byte-identically to a serial one. *)

type layers_row = {
  ly_config : string;
  ly_cells : string list;
}

let layer_combos ~seed : (string * Ropc.Config.t option) list =
  [ ("NATIVE", None);
    ("ROP_0.5", Some (Ropc.Config.rop_k ~seed 0.5));
    ("ROP_0.5+OC", Some (Ropc.Config.rop_k ~seed ~opaque:true 0.5));
    ("ROP_0.5+IH", Some (Ropc.Config.rop_k ~seed ~hiding:true 0.5));
    ("ROP_0.5+OC+IH",
     Some (Ropc.Config.rop_k ~seed ~opaque:true ~hiding:true 0.5));
    ("ROP_0.5+OC+IH+PF",
     Some (Ropc.Config.rop_k ~seed ~opaque:true ~hiding:true ~pf:true 0.5)) ]

let layers ?(pool = Jobs.Pool.default) ?(budget_s = 3.0) ?(seed = 1) () =
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:4 ~seed:1 ~input_size:1
         ~control_index:1 ())
  in
  (* Attack cells report only the found/resisted outcome, not wall times or
     state counts: a --jobs run must render byte-identically to a serial
     one, and under this budget the outcomes have enormous margins (native
     finds the secret in well under a second; a rewritten path alone costs
     minutes of symbolic stepping — opaque recoveries in particular drag
     P1-array loads through every expression). *)
  let budget = { E.default_budget with wall_seconds = budget_s } in
  let row_of (name, config) =
    let native = Minic.Codegen.compile t.prog in
    let native_steps =
      (Runner.call_exn ~fuel:1_000_000_000 native ~func:"target" ~args:[ 7L ])
        .Runner.steps
    in
    let native_bytes = String.length (Image.serialize native) in
    let img, ropstats =
      match config with
      | None -> (native, None)
      | Some config ->
        let r = Ropc.Rewriter.rewrite native ~functions:[ "target" ] ~config in
        (match List.assoc "target" r.Ropc.Rewriter.funcs with
         | Ok st -> (r.Ropc.Rewriter.image, Some st)
         | Error e -> failwith (Ropc.Rewriter.failure_to_string e))
    in
    let tgt = { E.img; func = "target"; n_inputs = 1 } in
    let fmt (r : E.result) =
      match r.E.secret_input with
      | Some _ -> "found"
      | None -> "resisted"
    in
    let se = E.se ~goal:E.G_secret ~budget tgt in
    let dse = E.dse ~goal:E.G_secret ~budget tgt in
    let tds =
      Taint.Tds.run ~fuel:400_000 img ~func:"target" ~n_inputs:1
        ~input:[| 7 |]
    in
    let ropaware_cell =
      match ropstats with
      | None -> "-"
      | Some st ->
        let dis =
          Ropaware.Ropdissector.analyze img
            ~chain_addr:st.Ropc.Rewriter.fs_chain_addr
            ~chain_len:st.Ropc.Rewriter.fs_chain_bytes
        in
        Printf.sprintf "%d blk, %d unres"
          (Hashtbl.length dis.Ropaware.Ropdissector.blocks)
          dis.Ropaware.Ropdissector.unresolved
    in
    let steps =
      (Runner.call_exn ~fuel:1_000_000_000 img ~func:"target" ~args:[ 7L ])
        .Runner.steps
    in
    let bytes = String.length (Image.serialize img) in
    { ly_config = name;
      ly_cells =
        [ fmt se; fmt dse;
          Printf.sprintf "%d/%d" tds.Taint.Tds.tainted_branches
            tds.Taint.Tds.n_kept;
          ropaware_cell;
          Printf.sprintf "%.1fx"
            (float_of_int steps /. float_of_int native_steps);
          Printf.sprintf "%.2fx"
            (float_of_int bytes /. float_of_int native_bytes) ] }
  in
  let combos = layer_combos ~seed in
  let results =
    Jobs.Pool.map ~label:"layers" pool
      ~key:(fun (name, _) ->
          Printf.sprintf "layers/seed=%d/budget=%g/%s" seed budget_s name)
      ~f:row_of combos
  in
  let rows =
    List.map2
      (fun (name, _) (r : _ Jobs.Pool.result) ->
         match r.Jobs.Pool.outcome with
         | Jobs.Pool.Done row -> row
         | Jobs.Pool.Failed m ->
           { ly_config = name ^ " [failed: " ^ m ^ "]";
             ly_cells = [ "-"; "-"; "-"; "-"; "-"; "-" ] }
         | Jobs.Pool.Timed_out tmo ->
           { ly_config = Printf.sprintf "%s [timed out %.0fs]" name tmo;
             ly_cells = [ "-"; "-"; "-"; "-"; "-"; "-" ] })
      combos results
  in
  Report.table
    ~title:
      "ROPfuscator layers: attack robustness x overhead (OC opaque \
       constants, IH instruction hiding, PF per-function config)"
    ~headers:
      ([ "CONFIGURATION"; "SE"; "DSE"; "TAINTED/KEPT"; "ROP-AWARE";
         "STEP OVERHEAD"; "SIZE OVERHEAD" ]
       @ cost_headers)
    (List.map2 (fun r res -> (r.ly_config :: r.ly_cells) @ cell_cost res)
       rows results);
  rows

(* --- §VII-C1: deployability coverage ------------------------------------------ *)

let coverage () =
  let img = Minic.Corpus.compile () in
  let r =
    Ropc.Rewriter.rewrite img ~functions:Minic.Corpus.all_names
      ~config:(Ropc.Config.plain ())
  in
  let classify = Hashtbl.create 4 in
  let ok = ref 0 in
  List.iter
    (fun (_, res) ->
       match res with
       | Ok _ -> incr ok
       | Error e ->
         let key =
           match e with
           | Ropc.Rewriter.F_cfg -> "cfg-reconstruction"
           | Ropc.Rewriter.F_register_pressure _ -> "register-pressure"
           | Ropc.Rewriter.F_unsupported _ -> "unsupported-instruction"
           | Ropc.Rewriter.F_too_small -> "too-small"
         in
         Hashtbl.replace classify key
           (1 + Option.value (Hashtbl.find_opt classify key) ~default:0))
    r.Ropc.Rewriter.funcs;
  let total = List.length r.Ropc.Rewriter.funcs in
  Report.table ~title:"§VII-C1: corpus rewrite coverage"
    ~headers:[ "OUTCOME"; "FUNCTIONS" ]
    ([ [ "rewritten";
         Printf.sprintf "%d/%d (%.1f%%)" !ok total
           (100.0 *. float_of_int !ok /. float_of_int total) ] ]
     @ Hashtbl.fold
         (fun k v acc -> [ "failed: " ^ k; string_of_int v ] :: acc)
         classify []);
  (!ok, total)

(* --- §VII-C3: base64 case study ------------------------------------------------ *)

let casestudy ?(pool = Jobs.Pool.default) ?(budget_s = 10.0) () =
  let prog = Minic.Programs.base64_program () in
  let funcs = [ "b64_check"; "b64_encode" ] in
  let budget = { E.default_budget with wall_seconds = budget_s } in
  let attack ~toa img =
    let tgt = { E.img; func = "b64_check"; n_inputs = 6 } in
    E.dse ~toa ~goal:E.G_secret ~budget tgt
  in
  let row_of (name, obf) =
    match Configs.apply obf prog ~funcs with
    | exception Configs.Obfuscation_failed m ->
      [ name; "rewrite failed: " ^ m; "-"; "-" ]
    | img ->
      let conc = attack ~toa:false img in
      let toa = attack ~toa:true img in
      let fmt (r : E.result) =
        match r.E.secret_input with
        | Some _ -> Printf.sprintf "found %.1fs" r.E.time
        | None -> Printf.sprintf "timeout (%d paths)" r.E.stats.E.states
      in
      [ name; fmt conc; fmt toa;
        string_of_int
          (Runner.call_exn ~fuel:1_000_000_000 img ~func:"b64_check"
             ~args:[ Minic.Programs.secret_arg ]).Runner.steps ]
  in
  let cells =
    [ ("native", Configs.Native);
      ("ROP_0 (P1)", Configs.Rop 0.0);
      ("ROP_0.25", Configs.Rop 0.25);
      ("2VM-IMPlast", Configs.Vm (2, Vmobf.Imp_last)) ]
  in
  let results =
    Jobs.Pool.map ~label:"casestudy" pool
      ~key:(fun (name, _) ->
          Printf.sprintf "casestudy/budget=%g/%s" budget_s name)
      ~f:row_of cells
  in
  let rows =
    List.map2
      (fun (name, _) (r : _ Jobs.Pool.result) ->
         (match r.Jobs.Pool.outcome with
          | Jobs.Pool.Done row -> row
          | Jobs.Pool.Failed m -> [ name; "pool failure: " ^ m; "-"; "-" ]
          | Jobs.Pool.Timed_out t ->
            [ name; Printf.sprintf "pool timeout %.0fs" t; "-"; "-" ])
         @ cell_cost r)
      cells results
  in
  Report.table
    ~title:"§VII-C3: base64 case study (DSE memory models; 6-byte secret)"
    ~headers:
      ([ "CONFIG"; "DSE concretizing"; "DSE per-page ToA"; "RUN STEPS" ]
       @ cost_headers)
    rows
