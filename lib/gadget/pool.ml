(* Gadget pool: serves chain-crafting requests for gadget functionality.

   The rewriter controls the binary, so missing gadgets are synthesized as
   dead code appended to .text (§IV-A1).  For *diversity* (§I, §V-D) the pool
   keeps several variants of each requested sequence — extra synthetic copies
   at distinct addresses, optionally prefixed with dynamically-dead
   instructions over registers the requester declared clobberable — and picks
   one at random per use.  Found gadgets (from the finder) are preferred when
   their body matches a request exactly.

   Variants are shared across requests with the same body, but a variant
   carrying a dead prefix is only dead *for requesters whose clobberable set
   covers the prefix registers*; [request] filters candidates accordingly, so
   a prefix over a register that is live at some other use site is never
   served there.  The static verifier (lib/verify) re-checks this invariant
   against liveness after the fact. *)

open X86.Isa

(* Synthesized gadgets remember which registers their diversification prefix
   writes ([prefix] is empty for found gadgets and prefix-free variants). *)
type entry = {
  gadget : Gadget.t;
  prefix : reg list;
  is_found : bool;
}

type t = {
  rng : Util.Rng.t;
  found : (Gadget.key, entry list) Hashtbl.t;
  synthesized : (Gadget.key, entry list) Hashtbl.t;
  mutable next_addr : int64;            (* where the next synthetic gadget goes *)
  mutable emitted : entry list;         (* reversed *)
  variants : int;                       (* max variants kept per key *)
  dead_prefix_prob : int;               (* percent chance of a dead prefix *)
  (* usage statistics (Table III) *)
  mutable uses : int;                   (* A: total gadget uses *)
  used_addrs : (int64, unit) Hashtbl.t; (* B: unique gadgets used *)
}

let create ?(variants = 3) ?(dead_prefix_prob = 40) ~rng ~next_addr found_list =
  let found = Hashtbl.create 256 in
  List.iter
    (fun g ->
       let k = Gadget.key g in
       let prev = Option.value (Hashtbl.find_opt found k) ~default:[] in
       Hashtbl.replace found k
         ({ gadget = g; prefix = []; is_found = true } :: prev))
    found_list;
  { rng; found; synthesized = Hashtbl.create 256; next_addr; emitted = [];
    variants; dead_prefix_prob; uses = 0; used_addrs = Hashtbl.create 256 }

(* Dynamically-dead prefix instructions: harmless writes to a clobberable
   register.  They concur to nothing, diversifying the byte pattern. *)
let dead_prefix t ~clobberable =
  match clobberable with
  | [] -> ([], [])
  | regs when Util.Rng.int t.rng 100 < t.dead_prefix_prob ->
    let r = Util.Rng.choose t.rng regs in
    let ins =
      match Util.Rng.int t.rng 4 with
      | 0 -> [ Mov (W64, Reg r, Imm (Int64.of_int (Util.Rng.int t.rng 4096))) ]
      | 1 -> [ Alu (Xor, W64, Reg r, Reg r) ]
      | 2 -> [ Unary (Not, W64, Reg r) ]
      | _ -> [ Lea (r, { base = Some r; index = None; disp = 0L }) ]
    in
    (ins, [ r ])
  | _ -> ([], [])

let synthesize t ~ending ~clobberable body =
  let prefix_ins, prefix = dead_prefix t ~clobberable in
  let g =
    { Gadget.addr = t.next_addr; body = prefix_ins @ body; ending }
  in
  t.next_addr <- Int64.add t.next_addr (Int64.of_int (Gadget.length g));
  let e = { gadget = g; prefix; is_found = false } in
  t.emitted <- e :: t.emitted;
  e

let record_use t e =
  t.uses <- t.uses + 1;
  Hashtbl.replace t.used_addrs e.gadget.Gadget.addr ();
  e.gadget.Gadget.addr

(* A cached variant is only usable when every register its diversification
   prefix writes is clobberable at *this* use site. *)
let usable ~clobberable e =
  List.for_all (fun r -> List.mem r clobberable) e.prefix

(* Request a ret-ending gadget whose body is exactly [body].  [clobberable]
   lists registers that are dead at the use site, allowed to appear in
   dynamically-dead diversification prefixes. *)
let request ?(clobberable = []) t (body : instr list) : int64 =
  let key : Gadget.key = body in
  let candidates =
    List.filter (usable ~clobberable)
      (Option.value (Hashtbl.find_opt t.found key) ~default:[]
       @ Option.value (Hashtbl.find_opt t.synthesized key) ~default:[])
  in
  let e =
    if candidates = [] || List.length candidates < t.variants
       && Util.Rng.int t.rng 100 < 30
    then begin
      let e = synthesize t ~ending:Gadget.E_ret ~clobberable body in
      let prev = Option.value (Hashtbl.find_opt t.synthesized key) ~default:[] in
      Hashtbl.replace t.synthesized key (e :: prev);
      e
    end
    else Util.Rng.choose t.rng candidates
  in
  record_use t e

(* Request a JOP gadget (ends with jmp reg, no ret). *)
let request_jop ?(clobberable = []) t (body : instr list) : int64 =
  let key : Gadget.key = body in
  let cached =
    match Hashtbl.find_opt t.synthesized key with
    | Some es -> List.find_opt (usable ~clobberable) es
    | None -> None
  in
  match cached with
  | Some e -> record_use t e
  | None ->
    let e = synthesize t ~ending:(Gadget.E_jop RAX) ~clobberable body in
    (* ending reg is informational; body already contains the jmp *)
    let prev = Option.value (Hashtbl.find_opt t.synthesized key) ~default:[] in
    Hashtbl.replace t.synthesized key (e :: prev);
    record_use t e

(* Bytes of all synthesized gadgets, in address order, for appending to
   .text.  The first gadget's address must equal the pool's [next_addr] at
   creation time. *)
let emitted_bytes t =
  let gs = List.rev t.emitted in
  let buf = Buffer.create 1024 in
  List.iter (fun e -> Buffer.add_bytes buf (Gadget.encode e.gadget)) gs;
  Buffer.to_bytes buf

(* Every gadget the pool knows about — scanned and synthesized — with its
   prefix provenance, for the static verifier's address -> semantics map. *)
let all_gadgets t : entry list =
  let found = Hashtbl.fold (fun _ es acc -> es @ acc) t.found [] in
  found @ List.rev t.emitted

let stats t = (t.uses, Hashtbl.length t.used_addrs)

let reset_stats t =
  t.uses <- 0;
  Hashtbl.reset t.used_addrs
