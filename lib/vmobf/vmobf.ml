(* Virtualization obfuscation at the mini-C level — the Tigress stand-in used
   as the paper's comparison baseline (Table I: nVM, nVM-IMP_x).

   [virtualize] compiles a function's body to bytecode for a randomly
   generated stack machine (opcode assignment and handler order depend on the
   seed, reproducing the "scarce reuse of deobfuscation knowledge" property)
   and replaces the body with an interpreter: fetch, dispatch via a dense
   switch (compiled to a jump table), handlers, VPC update.

   With [implicit_vpc] every VPC load is routed through an implicit flow: the
   next VPC is rebuilt bit-by-bit with one conditional branch per bit, the
   classic counting-style implicit-flow encoding that defeats taint tracking
   and multiplies DSE states whenever the VPC becomes symbolic.  Layering is
   nesting: the interpreter is itself mini-C, so it can be virtualized
   again. *)

open Minic.Ast

(* --- bytecode -------------------------------------------------------------- *)

type opkind =
  | Op_push                       (* operand: constant *)
  | Op_load of int                (* variable slot *)
  | Op_store of int
  | Op_addr_local of string       (* push address of a local array *)
  | Op_addr_global of string
  | Op_binop of binop
  | Op_unop of unop
  | Op_cast of width * bool
  | Op_loadmem of width * bool
  | Op_storemem of width
  | Op_jmp                        (* operand: target vpc *)
  | Op_jz                         (* operand: target vpc *)
  | Op_ret
  | Op_pop
  | Op_call of string * int       (* callee, arity *)

(* instructions are (opkind, operand option); the encoded stream is one quad
   for the opcode plus one quad per operand *)
type binstr = opkind * int64 option

let op_size (_, operand) = match operand with Some _ -> 2 | None -> 1

exception Virtualize_error of string

(* Break/continue scoping mirrors Codegen: [break] exits the innermost loop
   OR switch, [continue] targets the innermost loop, skipping switch scopes.
   (An earlier desugaring pass got both wrong — continue in a for-loop
   skipped the step statement, and break inside a switch left the enclosing
   loop; the differential fuzzer flags either as a divergence from the
   reference interpreter.) *)
type scope =
  | Sc_loop of int * int           (* break label, continue label *)
  | Sc_switch of int               (* break label *)

type compile_ctx = {
  var_index : (string, int) Hashtbl.t;
  prog : program;                  (* for callee arities *)
  mutable code : binstr list;      (* reversed *)
  mutable labels : (int, int) Hashtbl.t;   (* label id -> vpc *)
  mutable fixups : (int * int) list;       (* code index (of operand), label *)
  mutable next_label : int;
  mutable loop_stack : scope list;
}

let emit ctx i = ctx.code <- i :: ctx.code

let code_len ctx = List.fold_left (fun a i -> a + op_size i) 0 ctx.code

let fresh_label ctx =
  let l = ctx.next_label in
  ctx.next_label <- l + 1;
  l

let place_label ctx l = Hashtbl.replace ctx.labels l (code_len ctx)

(* emit a jump with a symbolic target *)
let emit_jump ctx kind l =
  emit ctx (kind, Some 0L);
  (* operand position = current length - 1 *)
  ctx.fixups <- (code_len ctx - 1, l) :: ctx.fixups

let var_slot ctx name =
  match Hashtbl.find_opt ctx.var_index name with
  | Some i -> i
  | None -> raise (Virtualize_error ("unknown variable " ^ name))

let callee_arity ctx f =
  match List.find_opt (fun fn -> fn.fname = f) ctx.prog.funcs with
  | Some fn -> List.length fn.params
  | None -> raise (Virtualize_error ("unknown callee " ^ f))

let rec compile_expr ctx (e : expr) =
  match e with
  | Const v -> emit ctx (Op_push, Some v)
  | Var n -> emit ctx (Op_load (var_slot ctx n), None)
  | Load (w, signed, a) ->
    compile_expr ctx a;
    emit ctx (Op_loadmem (w, signed), None)
  | Addr_local n -> emit ctx (Op_addr_local n, None)
  | Addr_global n -> emit ctx (Op_addr_global n, None)
  | Bin (Land, a, b) ->
    (* strictness is fine for the generated corpus: both operands are pure;
       encode as (a != 0) & (b != 0) *)
    compile_expr ctx (Bin (Ne, a, c 0));
    compile_expr ctx (Bin (Ne, b, c 0));
    emit ctx (Op_binop Band, None)
  | Bin (Lor, a, b) ->
    compile_expr ctx (Bin (Ne, a, c 0));
    compile_expr ctx (Bin (Ne, b, c 0));
    emit ctx (Op_binop Bor, None)
  | Bin (op, a, b) ->
    compile_expr ctx a;
    compile_expr ctx b;
    emit ctx (Op_binop op, None)
  | Un (op, a) ->
    compile_expr ctx a;
    emit ctx (Op_unop op, None)
  | Call (f, args) ->
    List.iter (compile_expr ctx) args;
    emit ctx (Op_call (f, callee_arity ctx f), None)
  | Cast (w, signed, a) ->
    compile_expr ctx a;
    emit ctx (Op_cast (w, signed), None)

let rec compile_stmt ctx (s : stmt) =
  match s with
  | Assign (n, e) ->
    compile_expr ctx e;
    emit ctx (Op_store (var_slot ctx n), None)
  | Store (w, a, v) ->
    compile_expr ctx a;
    compile_expr ctx v;
    emit ctx (Op_storemem w, None)
  | If (e, t, f) ->
    let lelse = fresh_label ctx and lend = fresh_label ctx in
    compile_expr ctx e;
    emit_jump ctx Op_jz lelse;
    List.iter (compile_stmt ctx) t;
    emit_jump ctx Op_jmp lend;
    place_label ctx lelse;
    List.iter (compile_stmt ctx) f;
    place_label ctx lend
  | While (e, body) ->
    let lhead = fresh_label ctx and lend = fresh_label ctx in
    place_label ctx lhead;
    compile_expr ctx e;
    emit_jump ctx Op_jz lend;
    ctx.loop_stack <- Sc_loop (lend, lhead) :: ctx.loop_stack;
    List.iter (compile_stmt ctx) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    emit_jump ctx Op_jmp lhead;
    place_label ctx lend
  | For (init, e, step, body) ->
    (* continue must run [step], so it gets its own label *)
    let lhead = fresh_label ctx and lcont = fresh_label ctx
    and lend = fresh_label ctx in
    compile_stmt ctx init;
    place_label ctx lhead;
    compile_expr ctx e;
    emit_jump ctx Op_jz lend;
    ctx.loop_stack <- Sc_loop (lend, lcont) :: ctx.loop_stack;
    List.iter (compile_stmt ctx) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    place_label ctx lcont;
    compile_stmt ctx step;
    emit_jump ctx Op_jmp lhead;
    place_label ctx lend
  | Do_while (body, e) ->
    (* continue re-checks the condition, it does not re-enter the body *)
    let lhead = fresh_label ctx and lcont = fresh_label ctx
    and lend = fresh_label ctx in
    place_label ctx lhead;
    ctx.loop_stack <- Sc_loop (lend, lcont) :: ctx.loop_stack;
    List.iter (compile_stmt ctx) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    place_label ctx lcont;
    compile_expr ctx e;
    emit_jump ctx Op_jz lend;
    emit_jump ctx Op_jmp lhead;
    place_label ctx lend
  | Switch (scrut, cases, default) ->
    (* if-chain dispatch; relies on the scrutinee expression being
       re-evaluable, which holds for the pure expressions minic programs
       use.  Case bodies run in a switch scope so that break exits the
       switch, not an enclosing loop. *)
    let lend = fresh_label ctx in
    let case_labels = List.map (fun (k, _) -> (k, fresh_label ctx)) cases in
    List.iter
      (fun (k, l) ->
         (* jump-on-equal: invert the comparison so Op_jz takes the edge *)
         compile_expr ctx (Un (Lnot, Bin (Eq, scrut, c k)));
         emit_jump ctx Op_jz l)
      case_labels;
    ctx.loop_stack <- Sc_switch lend :: ctx.loop_stack;
    List.iter (compile_stmt ctx) default;
    emit_jump ctx Op_jmp lend;
    List.iter
      (fun ((_, body), (_, l)) ->
         place_label ctx l;
         List.iter (compile_stmt ctx) body;
         emit_jump ctx Op_jmp lend)
      (List.combine cases case_labels);
    ctx.loop_stack <- List.tl ctx.loop_stack;
    place_label ctx lend
  | Return e ->
    compile_expr ctx e;
    emit ctx (Op_ret, None)
  | Expr e ->
    compile_expr ctx e;
    emit ctx (Op_pop, None)
  | Break ->
    let find = function
      | Sc_loop (lend, _) :: _ -> lend
      | Sc_switch lend :: _ -> lend
      | [] -> raise (Virtualize_error "break outside loop")
    in
    emit_jump ctx Op_jmp (find ctx.loop_stack)
  | Continue ->
    (* switch scopes are transparent to continue, as in Codegen *)
    let rec find = function
      | Sc_loop (_, lcont) :: _ -> lcont
      | Sc_switch _ :: rest -> find rest
      | [] -> raise (Virtualize_error "continue outside loop")
    in
    emit_jump ctx Op_jmp (find ctx.loop_stack)

(* --- interpreter generation ------------------------------------------------ *)

type t = {
  prog : program;          (* with the function virtualized *)
  n_opcodes : int;
  code_len : int;
}

let stack_slots = 64

(* distinct opkind shapes used by this function's bytecode *)
let opkinds_of code =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (k, _) -> if not (Hashtbl.mem seen k) then Hashtbl.replace seen k ())
    code;
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

let virtualize ?(implicit_vpc = false) ~seed (prog : program) fname : t =
  let rng = Util.Rng.create (seed * 65599 + 11) in
  let f =
    match List.find_opt (fun fn -> fn.fname = fname) prog.funcs with
    | Some f -> f
    | None -> raise (Virtualize_error ("no such function " ^ fname))
  in
  let body = f.body in
  (* variable slots: params then locals *)
  let var_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace var_index n i) (f.params @ f.locals);
  let n_vars = Hashtbl.length var_index in
  let ctx =
    { var_index; prog; code = []; labels = Hashtbl.create 16; fixups = [];
      next_label = 0; loop_stack = [] }
  in
  List.iter (compile_stmt ctx) body;
  (* implicit return 0 *)
  emit ctx (Op_push, Some 0L);
  emit ctx (Op_ret, None);
  let code = List.rev ctx.code in
  (* opcode numbering: random permutation over the used opkinds *)
  let kinds = opkinds_of code in
  let kinds = Util.Rng.shuffle rng kinds in
  let opcode_of_kind = Hashtbl.create 32 in
  List.iteri (fun i k -> Hashtbl.replace opcode_of_kind k i) kinds;
  let n_opcodes = List.length kinds in
  (* encode to quads, resolving fixups *)
  let quads = Array.make (code_len ctx) 0L in
  let pos = ref 0 in
  List.iter
    (fun (k, operand) ->
       quads.(!pos) <- Int64.of_int (Hashtbl.find opcode_of_kind k);
       incr pos;
       match operand with
       | Some v ->
         quads.(!pos) <- v;
         incr pos
       | None -> ())
    code;
  List.iter
    (fun (operand_pos, label) ->
       match Hashtbl.find_opt ctx.labels label with
       | Some vpc -> quads.(operand_pos) <- Int64.of_int vpc
       | None -> raise (Virtualize_error "unresolved bytecode label"))
    ctx.fixups;
  let uid = Util.Rng.int rng 100000 in
  let code_sym = Printf.sprintf "__vmcode_%s_%d" fname uid in
  let vstk = Printf.sprintf "__vstk%d" uid in
  let vvars = Printf.sprintf "__vvars%d" uid in
  (* --- emit the interpreter ------------------------------------------- *)
  let vpc = "vpc" and sp = "sp" and op = "op" and t0 = "t0" and t1 = "t1"
  and t2 = "t2" and nx = "nx" and bi = "bi" in
  let code_at e = Load (X86.Isa.W64, false, Bin (Add, Addr_global code_sym, Bin (Mul, e, c 8))) in
  let stk_at e = Load (X86.Isa.W64, false, Bin (Add, Addr_local vstk, Bin (Mul, e, c 8))) in
  let stk_set e v = Store (X86.Isa.W64, Bin (Add, Addr_local vstk, Bin (Mul, e, c 8)), v) in
  let var_at e = Load (X86.Isa.W64, false, Bin (Add, Addr_local vvars, Bin (Mul, e, c 8))) in
  let var_set e v = Store (X86.Isa.W64, Bin (Add, Addr_local vvars, Bin (Mul, e, c 8)), v) in
  let push e = [ stk_set (v sp) e; set sp (Bin (Add, v sp, c 1)) ] in
  let pop_into x = [ set sp (Bin (Sub, v sp, c 1)); set x (stk_at (v sp)) ] in
  (* VPC update: direct, or rebuilt bit-by-bit through conditional branches
     (one implicit flow per bit) *)
  let goto target_e =
    if not implicit_vpc then [ set vpc target_e ]
    else
      [ set nx target_e;
        set vpc (c 0);
        set bi (c 0);
        While (Bin (Lts, v bi, c 17),
               [ If (Bin (Band, Bin (Shr, v nx, v bi), c 1),
                     [ set vpc (Bin (Bor, v vpc, Bin (Shl, c 1, v bi))) ],
                     []);
                 set bi (Bin (Add, v bi, c 1)) ]) ]
  in
  let advance n = goto (Bin (Add, v vpc, c n)) in
  let handler kind : stmt list =
    match kind with
    | Op_push -> push (code_at (Bin (Add, v vpc, c 1))) @ advance 2
    | Op_load slot -> push (var_at (c slot)) @ advance 1
    | Op_store slot -> pop_into t0 @ [ var_set (c slot) (v t0) ] @ advance 1
    | Op_addr_local n -> push (Addr_local n) @ advance 1
    | Op_addr_global n -> push (Addr_global n) @ advance 1
    | Op_binop op ->
      pop_into t1 @ pop_into t0
      @ push (Bin (op, v t0, v t1))
      @ advance 1
    | Op_unop op -> pop_into t0 @ push (Un (op, v t0)) @ advance 1
    | Op_cast (w, signed) -> pop_into t0 @ push (Cast (w, signed, v t0)) @ advance 1
    | Op_loadmem (w, signed) ->
      pop_into t0 @ push (Load (w, signed, v t0)) @ advance 1
    | Op_storemem w ->
      pop_into t1 @ pop_into t0
      @ [ Store (w, v t0, v t1) ]
      @ advance 1
    | Op_jmp -> goto (code_at (Bin (Add, v vpc, c 1)))
    | Op_jz ->
      if implicit_vpc then
        (* the next VPC is computed arithmetically from the (possibly
           input-tainted) condition, then rebuilt bit-by-bit: the VPC itself
           becomes symbolic under DSE and every bit is an implicit flow *)
        pop_into t0
        @ [ set t1 (Bin (Add, v vpc, c 2)) ]
        @ goto
            (Bin (Add, v t1,
                  Bin (Mul,
                       Bin (Sub, code_at (Bin (Add, v vpc, c 1)), v t1),
                       Bin (Eq, v t0, c 0))))
      else
        pop_into t0
        @ [ If (Bin (Eq, v t0, c 0),
                goto (code_at (Bin (Add, v vpc, c 1))),
                advance 2) ]
    | Op_ret -> pop_into t0 @ [ Return (v t0) ]
    | Op_pop -> pop_into t0 @ advance 1
    | Op_call (f, arity) ->
      (* pop args (last pushed = last arg) into temps, call, push result *)
      let temps = [ t0; t1; t2; nx; bi ] in
      if arity > List.length temps then
        raise (Virtualize_error "callee arity too large to virtualize");
      let used = List.filteri (fun i _ -> i < arity) temps in
      List.concat_map pop_into (List.rev used)
      @ push (Call (f, List.map (fun x -> v x) used))
      @ advance 1
  in
  let cases =
    List.mapi
      (fun i k -> (i, handler k))
      kinds
  in
  let init_vars =
    List.mapi (fun i p -> var_set (c i) (v p)) f.params
  in
  let body =
    init_vars
    @ [ set vpc (c 0);
        set sp (c 0);
        While (c 1,
               [ set op (code_at (v vpc));
                 Switch (v op, cases, [ Return (c (-1)) ]) ]) ]
  in
  let new_f =
    { fname;
      params = f.params;
      locals = [ vpc; sp; op; t0; t1; t2; nx; bi ];
      arrays =
        f.arrays
        @ [ (vstk, 8 * stack_slots); (vvars, 8 * max 1 n_vars) ];
      body }
  in
  let globals = prog.globals @ [ G_quads (code_sym, Array.to_list quads) ] in
  let funcs =
    List.map (fun fn -> if fn.fname = fname then new_f else fn) prog.funcs
  in
  { prog = { globals; funcs }; n_opcodes; code_len = Array.length quads }

(* n layers of virtualization; [implicit] says which layers get implicit VPC
   loads (Table I: first / last / all). *)
type implicit_layers = Imp_none | Imp_first | Imp_last | Imp_all

let layered ?(implicit = Imp_none) ~layers ~seed prog fname =
  let rec go i prog =
    if i > layers then prog
    else begin
      let implicit_vpc =
        match implicit with
        | Imp_none -> false
        | Imp_all -> true
        | Imp_first -> i = 1        (* innermost layer: applied first *)
        | Imp_last -> i = layers    (* outermost layer: applied last *)
      in
      let t = virtualize ~implicit_vpc ~seed:(seed + 31 * i) prog fname in
      go (i + 1) t.prog
    end
  in
  go 1 prog
