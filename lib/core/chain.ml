(* Chain representation and materialization (§IV-B3).

   During crafting a chain is a list of symbolic 8-byte slots (gadget
   addresses, immediate operands, RSP displacements towards labelled blocks)
   interleaved with zero-width label/anchor markers and, under gadget
   confusion, skew directives that shift subsequent slots by a non-multiple
   of 8.  Materialization fixes the layout and turns symbolic displacements
   into concrete byte offsets, like an assembler resolving labels. *)

type slot =
  | S_gadget of int64
  | S_imm of int64
  | S_disp of { target : string; anchor : string; bias : int64 }
      (* materializes as off(target) - off(anchor) - bias; [bias] is the
         array-encoded part [a] under P1, 0 otherwise *)
  | S_opaque of { oq_value : int64; oq_cls : int; oq_residue : int64;
                  oq_mult : int64 }
      (* opaque-constant slot (ROPfuscator layer): materializes
         value - mult*(residue+1), never the value itself.  The chain
         recovers [oq_value] at runtime by adding mult*(a+1) back, where
         a = P1[f(x)*stride + cls] mod m is extracted from the opaque
         array exactly like a P1-encoded branch displacement.  The full
         encoding is recorded so the verifier can recompute the stored
         bytes from the array's ground truth. *)
  | S_opaque_dispatch of { od_jop : int64; od_target : int64 }
      (* opaque gadget dispatch: the slot holds the address of a
         jmp-reg trampoline; the register it jumps through carries
         [od_target], recovered opaquely by the preceding slots.  The
         target's own ret then continues the chain at the next slot. *)
  | S_label of string          (* marks a chain position (block entry) *)
  | S_anchor of string         (* marks the RSP base of a displacement *)
  | S_skew of int              (* skip this many junk bytes (eta, §V-D) *)

(* The 8 bytes an opaque-constant slot actually stores.  Shared with
   lib/verify so the checker and the materializer can never drift. *)
let opaque_stored ~value ~residue ~mult =
  Int64.sub value (Int64.mul mult (Int64.add residue 1L))

type t = {
  mutable slots : slot list;   (* reversed during construction *)
  mutable n : int;             (* length of [slots] *)
}

let create () = { slots = []; n = 0 }

let push t s =
  t.slots <- s :: t.slots;
  t.n <- t.n + 1

(* Number of slots pushed so far; the builder brackets each roplet by the
   [length] at its start and end so the verifier can attribute slots to
   program points without re-walking the list. *)
let length t = t.n

let gadget t addr = push t (S_gadget addr)
let imm t v = push t (S_imm v)
let disp t ~target ~anchor ~bias = push t (S_disp { target; anchor; bias })
let opaque t ~value ~cls ~residue ~mult =
  push t (S_opaque { oq_value = value; oq_cls = cls; oq_residue = residue;
                     oq_mult = mult })
let opaque_dispatch t ~jop ~target =
  push t (S_opaque_dispatch { od_jop = jop; od_target = target })
let label t name = push t (S_label name)
let anchor t name = push t (S_anchor name)
let skew t eta = push t (S_skew eta)

let slots t = List.rev t.slots

type materialized = {
  bytes : bytes;
  (* offset of each label/anchor within the chain *)
  offsets : (string, int) Hashtbl.t;
  base : int64;                (* absolute address the chain is placed at *)
  layout : (int * slot) array;
  (* byte offset of every slot in push order, including the zero-width
     label/anchor markers; the static verifier replays the chain from this *)
}

exception Materialize_error of string

let slot_size = function
  | S_gadget _ | S_imm _ | S_disp _ | S_opaque _ | S_opaque_dispatch _ -> 8
  | S_label _ | S_anchor _ -> 0
  | S_skew eta -> eta

(* Lay out and emit the chain for placement at absolute address [base].
   [junk] supplies filler bytes for skew gaps (deceptive: they should look
   like gadget addresses).  The default filler is a fixed-seed Util.Rng
   stream rather than the ambient [Random] state: every materialization must
   be replayable from explicit seeds alone (the rewriter always passes its
   own seeded stream; the default only serves direct callers in tests). *)
let default_junk () =
  let rng = Util.Rng.create 0x6a756e6b (* "junk" *) in
  fun _ -> Util.Rng.int rng 256

let materialize ?junk ~base t =
  let junk = match junk with Some j -> j | None -> default_junk () in
  ignore junk;
  let items = slots t in
  let offsets = Hashtbl.create 32 in
  let layout_rev = ref [] in
  let total =
    List.fold_left
      (fun off s ->
         (match s with
          | S_label name | S_anchor name ->
            if Hashtbl.mem offsets name then
              raise (Materialize_error ("duplicate label " ^ name));
            Hashtbl.replace offsets name off
          | S_gadget _ | S_imm _ | S_disp _ | S_opaque _
          | S_opaque_dispatch _ | S_skew _ -> ());
         layout_rev := (off, s) :: !layout_rev;
         off + slot_size s)
      0 items
  in
  let layout = Array.of_list (List.rev !layout_rev) in
  let buf = Bytes.create total in
  let write64 off v =
    for i = 0 to 7 do
      Bytes.set buf (off + i)
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done
  in
  let lookup name =
    match Hashtbl.find_opt offsets name with
    | Some o -> o
    | None -> raise (Materialize_error ("undefined chain label " ^ name))
  in
  let _ =
    List.fold_left
      (fun off s ->
         (match s with
          | S_gadget a | S_imm a -> write64 off a
          | S_opaque { oq_value; oq_residue; oq_mult; _ } ->
            write64 off
              (opaque_stored ~value:oq_value ~residue:oq_residue ~mult:oq_mult)
          | S_opaque_dispatch { od_jop; _ } -> write64 off od_jop
          | S_disp { target; anchor; bias } ->
            let v =
              Int64.sub
                (Int64.of_int (lookup target - lookup anchor))
                bias
            in
            write64 off v
          | S_skew eta ->
            for i = 0 to eta - 1 do
              Bytes.set buf (off + i) (Char.chr (junk i))
            done
          | S_label _ | S_anchor _ -> ());
         off + slot_size s)
      0 items
  in
  { bytes = buf; offsets; base; layout }

(* Absolute address of a label in a materialized chain. *)
let label_addr m name =
  match Hashtbl.find_opt m.offsets name with
  | Some off -> Int64.add m.base (Int64.of_int off)
  | None -> raise (Materialize_error ("undefined chain label " ^ name))

(* Chain-relative displacement between two labels (for jump-table patches). *)
let label_delta m ~target ~anchor =
  match Hashtbl.find_opt m.offsets target, Hashtbl.find_opt m.offsets anchor with
  | Some t, Some a -> Int64.of_int (t - a)
  | None, _ -> raise (Materialize_error ("undefined chain label " ^ target))
  | _, None -> raise (Materialize_error ("undefined chain label " ^ anchor))
