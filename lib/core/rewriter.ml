(* The binary rewriter (Figure 2): turns compiled functions into
   self-contained ROP chains.

   Per function: CFG reconstruction -> liveness -> per-instruction roplet
   translation and chain crafting -> materialization into the .rop section ->
   pivot stub installed over the original body -> jump tables patched to hold
   chain displacements (Appendix A).  A session shares the gadget pool, the
   stack-switching array and the synthetic function-return gadget across all
   rewritten functions of an image. *)

open X86.Isa
module R = Analysis.Regset
module Cfg = Analysis.Cfg

type failure =
  | F_cfg                       (* CFG reconstruction failed *)
  | F_register_pressure of string
  | F_unsupported of string     (* e.g. push rsp, pop mem *)
  | F_too_small                 (* body cannot hold the pivoting stub *)

let failure_to_string = function
  | F_cfg -> "cfg-reconstruction"
  | F_register_pressure m -> "register-pressure: " ^ m
  | F_unsupported m -> "unsupported-instruction: " ^ m
  | F_too_small -> "too-small"

type func_stats = {
  fs_points : int;              (* N: program points (instructions) *)
  fs_chain_bytes : int;
  fs_chain_addr : int64;
  fs_blocks : int;
  fs_block_offsets : int list;  (* chain offsets of the translated blocks *)
}

type func_result = (func_stats, failure) result

type result = {
  image : Image.t;
  funcs : (string * func_result) list;
  total_gadget_uses : int;      (* A of Table III *)
  unique_gadgets : int;         (* B of Table III *)
  audit : Audit.t;              (* claims for the static verifier *)
}

exception Unsupported of string

(* --- pivot stub (Appendix A) ---------------------------------------------- *)

let pivot_stub ~ss_addr ~chain_addr =
  X86.Encode.encode_list
    [ Push (Imm ss_addr);
      Pop (Reg RAX);
      Alu (Add, W64, Mem (mem_b RAX 0), Imm 8L);
      Alu (Add, W64, Reg RAX, Mem (mem_b RAX 0));      (* step (a) *)
      Mov (W64, Mem (mem_b RAX 0), Reg RSP);           (* step (b) *)
      Push (Imm chain_addr);
      Pop (Reg RSP);                                   (* step (c) *)
      Ret ]

(* Sizing must use representative addresses: the encoder picks the smallest
   immediate form, so a stub built with address 0 comes out imm8-sized while
   the real ss/chain addresses need imm32.  (Found by differential fuzzing:
   functions between the two sizes crashed the rewrite instead of cleanly
   declining with F_too_small.) *)
let pivot_stub_size =
  Bytes.length (pivot_stub ~ss_addr:0x7FFF_FFFFL ~chain_addr:0x7FFF_FFFFL)

(* --- per-instruction translation ------------------------------------------ *)

let mentions_rsp_mem (m : mem) =
  m.base = Some RSP || (match m.index with Some (RSP, _) -> true | _ -> false)

let mentions_rsp_op = function
  | Reg RSP -> true
  | Reg _ | Imm _ -> false
  | Mem m -> mentions_rsp_mem m

(* Translate one non-terminator instruction at [live] (live-out u uses u
   defs).  [flags_live] gates diversification: dead-prefix variants may
   clobber the status flags, so directly-lowered gadgets only declare
   clobberable registers when the flags neither survive the roplet nor feed
   the instruction itself. *)
let translate_instr b ~live ~flags_live (i : instr) =
  let direct () =
    let clobber =
      if flags_live then []
      else begin
        let uses, defs = Analysis.Reguse.def_use i in
        let keep =
          R.union (R.union live (R.union uses defs)) Builder.reserved
        in
        List.filter (fun r -> not (R.mem_reg keep r)) all_regs
      end
    in
    (* opaque-constant layer: sometimes dispatch the gadget through a
       jmp-reg trampoline with its address recovered from the P1 array
       (the recovery pollutes the flags, so only when they are dead) *)
    if (not flags_live) && Builder.opaque_roll b then
      Builder.g_opaque b ~clobber ~live [ i ]
    else Builder.g b ~clobber [ i ]
  in
  (* split an ALU immediate into a chain operand with some probability, for
     diversity and to give gadget confusion material to work on *)
  let alu_imm_split op w d v =
    if Util.Rng.int b.Builder.rng 100 < 50 then
      Builder.with_scratch b ~live ~avoid:(Analysis.Reguse.use_operand d) 1
        (fun regs ->
           match regs with
           | [ s ] ->
             if (not flags_live) && Builder.opaque_roll b then
               Builder.opaque_load b ~live s v
             else Builder.load_imm b ~scratch:[] s v;
             Builder.g b [ Alu (op, w, d, Reg s) ]
           | regs ->
             Builder.template_error
               "Rewriter.alu_imm_split (imm -> chain operand, 1 scratch)" regs)
    else direct ()
  in
  match i with
  | Nop -> ()
  | Push (Reg RSP) -> raise (Unsupported "push rsp")
  | Push (Mem m) when mentions_rsp_mem m -> raise (Unsupported "push [rsp+..]")
  | Push (Reg r) -> Builder.vpush_reg b ~live r
  | Push (Imm v) -> Builder.vpush_imm b ~live v
  | Push (Mem m) ->
    Builder.with_scratch b ~live ~avoid:(Analysis.Reguse.use_mem m) 1
      (fun regs ->
         match regs with
         | [ s ] ->
           Builder.g b [ Mov (W64, Reg s, Mem m) ];
           Builder.vpush_reg b ~live:(R.add live s) s
         | regs ->
           Builder.template_error
             "Rewriter.translate_instr (push [mem], 1 scratch)" regs)
  | Pop (Reg RSP) -> raise (Unsupported "pop rsp")
  | Pop (Reg r) -> Builder.vpop b ~live r
  | Pop (Imm _) | Pop (Mem _) -> raise (Unsupported "pop to memory")
  | Mov (W64, Reg RBP, Reg RSP) -> Builder.rsp_to_reg b ~live RBP
  | Mov (W64, Reg RSP, Reg r) when r <> RSP -> Builder.reg_to_rsp b ~live r
  | Mov (W64, Reg r, Reg RSP) when r <> RSP -> Builder.rsp_to_reg b ~live r
  | Mov (_, Reg RSP, _) | Mov (_, _, Reg RSP) ->
    raise (Unsupported "unhandled rsp move")
  | Mov (w, Reg r, Mem m) when mentions_rsp_mem m ->
    (match m.base, m.index with
     | Some RSP, None ->
       Builder.rsp_read b ~live
         ~move:(fun d s ->
             match w with
             | W64 -> Mov (W64, Reg d, s)
             | w -> Movzx (W64, w, d, s))
         r (Int64.to_int m.disp)
     | _ -> raise (Unsupported "rsp-indexed addressing"))
  | Movzx (dw, sw, r, Mem m) when mentions_rsp_mem m ->
    (match m.base, m.index with
     | Some RSP, None ->
       Builder.rsp_read b ~live ~move:(fun d s -> Movzx (dw, sw, d, s))
         r (Int64.to_int m.disp)
     | _ -> raise (Unsupported "rsp-indexed addressing"))
  | Movsx (dw, sw, r, Mem m) when mentions_rsp_mem m ->
    (match m.base, m.index with
     | Some RSP, None ->
       Builder.rsp_read b ~live ~move:(fun d s -> Movsx (dw, sw, d, s))
         r (Int64.to_int m.disp)
     | _ -> raise (Unsupported "rsp-indexed addressing"))
  | Mov (w, Mem m, Reg r) when mentions_rsp_mem m ->
    (match m.base, m.index with
     | Some RSP, None -> Builder.rsp_write b ~live w (Int64.to_int m.disp) r
     | _ -> raise (Unsupported "rsp-indexed addressing"))
  | Mov (w, Mem m, Imm v) when mentions_rsp_mem m ->
    (match m.base, m.index with
     | Some RSP, None ->
       Builder.with_scratch b ~live ~avoid:R.empty 1 (fun regs ->
           match regs with
           | [ s ] ->
             Builder.load_imm b ~scratch:[] s v;
             Builder.rsp_write b ~live:(R.add live s) w (Int64.to_int m.disp) s
           | regs ->
             Builder.template_error
               "Rewriter.translate_instr ([rsp+disp] := imm, 1 scratch)" regs)
     | _ -> raise (Unsupported "rsp-indexed addressing"))
  | Lea (r, m) when mentions_rsp_mem m ->
    (match m.base, m.index with
     | Some RSP, None -> Builder.rsp_lea b ~live r (Int64.to_int m.disp)
     | _ -> raise (Unsupported "rsp-indexed lea"))
  | Alu (Add, W64, Reg RSP, Imm v) -> Builder.rsp_adjust b ~live v
  | Alu (Sub, W64, Reg RSP, Imm v) -> Builder.rsp_adjust b ~live (Int64.neg v)
  | Alu (_, _, d, s) when mentions_rsp_op d || mentions_rsp_op s ->
    raise (Unsupported "alu on rsp")
  | Leave ->
    (* mov rsp, rbp; pop rbp *)
    Builder.reg_to_rsp b ~live RBP;
    Builder.vpop b ~live RBP
  | Call (J_rel _) | Call (J_op _) ->
    invalid_arg
      "Rewriter.translate_instr: calls are lowered by the block emitter \
       (native_call needs the call site's own address)"
  | Xchg (_, a, bb) when mentions_rsp_op a || mentions_rsp_op bb ->
    raise (Unsupported "xchg with rsp")
  | Mov (W64, Reg r, Imm v) when (not flags_live) && Builder.opaque_roll b ->
    (* opaque-constant layer: the value never appears in the chain bytes *)
    Builder.opaque_load b ~live r v
  | Mov (W64, Reg r, Imm v) ->
    (* idiomatic pop-from-chain load; subject to immediate confusion *)
    Builder.with_scratch b ~live ~avoid:(R.of_reg r) 1 (fun regs ->
        Builder.load_imm b ~scratch:(List.map (fun r -> r) regs) r v)
  | Alu (op, w, d, Imm v)
    when op <> Cmp && op <> Test && not (mentions_rsp_op d) ->
    alu_imm_split op w d v
  | Mov _ | Movzx _ | Movsx _ | Lea _ | Alu _ | Unary _ | Imul2 _
  | MulDiv _ | Shift _ | Cmov _ | Setcc _ | Xchg _ | Lahf | Sahf ->
    direct ()
  | (Hlt | Ret | Jmp _ | Jcc _) as i ->
    invalid_arg
      (Printf.sprintf
         "Rewriter.translate_instr: terminator '%s' reached the \
          instruction translator (terminators are lowered from the CFG \
          block structure)"
         (X86.Pp.instr_str i))

(* --- per-function rewriting ------------------------------------------------ *)

type session = {
  img : Image.t;
  config : Config.t;
  rng : Util.Rng.t;
  pool : Pool.t;
  ss_addr : int64;
  funcret_gadget : int64;
  rop_buf : Buffer.t;            (* accumulates the .rop section *)
  mutable table_patches : (int64 * int64) list;  (* addr, value *)
}

let rop_cursor s = Int64.add Image.rop_base (Int64.of_int (Buffer.length s.rop_buf))

let rop_align8 s =
  while Buffer.length s.rop_buf land 7 <> 0 do
    Buffer.add_char s.rop_buf '\000'
  done

(* Reserve [n] zeroed bytes in .rop and return their address. *)
let rop_alloc s n =
  rop_align8 s;
  let addr = rop_cursor s in
  Buffer.add_bytes s.rop_buf (Bytes.make n '\000');
  addr

let rop_emit s (b : bytes) =
  rop_align8 s;
  let addr = rop_cursor s in
  Buffer.add_bytes s.rop_buf b;
  addr

(* Create the P1 array for one function: p periods of s cells; cell
   [i*s + c] for class c < n holds a random value congruent to a_c mod m;
   the remaining (garbage) cells are random (§V-A). *)
let make_p1_array s (p1 : Config.p1_params) =
  let a = Array.init p1.Config.n (fun _ -> Util.Rng.int s.rng p1.Config.m) in
  let cells = Bytes.create (8 * p1.Config.p * p1.Config.s) in
  for i = 0 to p1.Config.p - 1 do
    for c = 0 to p1.Config.s - 1 do
      let residue =
        if c < p1.Config.n then a.(c) else Util.Rng.int s.rng p1.Config.m
      in
      let v =
        Int64.add
          (Int64.mul (Int64.of_int p1.Config.m)
             (Int64.of_int (Util.Rng.int s.rng 0x0FFFFFF)))
          (Int64.of_int residue)
      in
      let off = 8 * (i * p1.Config.s + c) in
      for k = 0 to 7 do
        Bytes.set cells (off + k)
          (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff))
      done
    done
  done;
  (a, cells)

(* Registers the lowering of [bi] must preserve: whatever is live after it
   plus the instruction's own sources.  Its destinations are deliberately NOT
   protected: every lowering template writes them last, and for calls the
   clobbered caller-saved registers are exactly the scratch the chain wants
   (they are what the paper's allocator picks first). *)
let live_for live_info (bi : Cfg.binstr) =
  let uses, _defs = Analysis.Reguse.def_use bi.Cfg.instr in
  R.union (Analysis.Liveness.live_out_at live_info bi.Cfg.addr) uses

let rewrite_function (s : session) fname
  : (func_stats * Audit.func, failure) Stdlib.result =
  match Obs.Trace.with_span ~args:[ ("func", fname) ] "rewrite.cfg"
          (fun () -> Cfg.of_image s.img fname)
  with
  | exception Cfg.Analysis_error _ -> Error F_cfg
  | cfg when cfg.Cfg.failed -> Error F_cfg
  | cfg ->
    let sym =
      match Image.find_symbol s.img fname with
      | Some sy -> sy
      | None ->
        invalid_arg
          ("Rewriter.rewrite_function: no symbol for function '" ^ fname
           ^ "' (CFG reconstruction succeeded, so the symbol table and \
              section map disagree)")
    in
    if sym.Image.sym_size < pivot_stub_size then Error F_too_small
    else begin
      let live_info =
        Obs.Trace.with_span ~args:[ ("func", fname) ] "rewrite.liveness"
          (fun () -> Analysis.Liveness.compute cfg)
      in
      (* per-function ABI data in .rop *)
      let spill_base = rop_alloc s (8 * s.config.Config.spill_slots) in
      let flags_spill = rop_alloc s 16 in
      let p1_array, p1_class_a =
        match s.config.Config.p1 with
        | Some p1 ->
          let a, cells = make_p1_array s p1 in
          let addr = rop_emit s cells in
          (addr, a)
        | None -> (0L, [||])
      in
      let b =
        Builder.create ~pool:s.pool ~config:s.config
          ~rng:(Util.Rng.split s.rng) ~fname ~ss_addr:s.ss_addr
          ~spill_base ~flags_spill ~funcret_gadget:s.funcret_gadget
          ~p1_array ~p1_class_a
      in
      (* trampolines for P2-protected taken edges, emitted after the blocks *)
      let trampolines = ref [] in
      (* jump tables to patch once the chain layout is final *)
      let table_jobs : (int64 * string * int64 list) list ref = ref [] in
      (* instruction hiding: one seeded fault per function at most *)
      let hidden_fault_done = ref false in
      let emit_block_body block =
        List.iter
          (fun bi ->
             let live = live_for live_info bi in
             let flags_live =
               Analysis.Liveness.flags_live_after live_info bi.Cfg.addr
               || Analysis.Reguse.reads_flags bi.Cfg.instr
             in
             b.Builder.program_points <- b.Builder.program_points + 1;
             let uses, defs = Analysis.Reguse.def_use bi.Cfg.instr in
             Builder.begin_point b ~addr:bi.Cfg.addr
               ~desc:(X86.Pp.instr_str bi.Cfg.instr) ~live
               ~flags_live:
                 (Analysis.Liveness.flags_live_after live_info bi.Cfg.addr)
               ~defs;
             (* instruction hiding layer: offer the roplet to the P3
                predicate as a payload.  Calls keep their dedicated lowering
                (the stack switch must not sit inside a predicate body), and
                flag-live points are excluded: the payload would run inside
                the flag spill/restore bracket. *)
             let hideable =
               s.config.Config.instr_hiding && not flags_live
               && (match bi.Cfg.instr with Call _ | Nop -> false | _ -> true)
             in
             let hidden =
               if not hideable then begin
                 ignore (Predicates.maybe_p3 b ~live ~flags_live : bool);
                 false
               end
               else begin
                 let payload =
                   { Predicates.pl_avoid = R.union uses defs;
                     pl_emit =
                       (fun ~extra_live ->
                          let lo = Chain.length b.Builder.chain in
                          translate_instr b ~live:(R.union live extra_live)
                            ~flags_live bi.Cfg.instr;
                          (* seeded fault: a stray increment of a defined
                             register.  The clobber check excuses writes to
                             p_defs, so only a semantic validation of the
                             hidden region (roplint Transval) can see it. *)
                          (if s.config.Config.debug_hidden_payload
                              && not !hidden_fault_done then
                             match
                               List.filter
                                 (fun r -> not (R.mem_reg Builder.reserved r))
                                 (R.to_list defs)
                             with
                             | r :: _ ->
                               hidden_fault_done := true;
                               Builder.g b [ Unary (Inc, W64, Reg r) ]
                             | [] -> ());
                          Builder.note_hidden b lo
                            (Chain.length b.Builder.chain)) }
                 in
                 Predicates.maybe_p3 ~payload b ~live ~flags_live
               end
             in
             (if not hidden then
                match bi.Cfg.instr with
                | Call (J_rel d) ->
                  let target = Int64.add (Cfg.next_addr bi) (Int64.of_int d) in
                  Builder.native_call b ~live (Builder.Ct_imm target)
                | Call (J_op (Reg r)) ->
                  Builder.native_call b ~live (Builder.Ct_reg r)
                | Call (J_op (Mem m)) when not (mentions_rsp_mem m) ->
                  Builder.with_scratch b ~live
                    ~avoid:(Analysis.Reguse.use_mem m)
                    1 (fun regs ->
                        match regs with
                        | [ sr ] ->
                          Builder.g b [ Mov (W64, Reg sr, Mem m) ];
                          Builder.native_call b ~live:(R.add live sr)
                            (Builder.Ct_reg sr)
                        | regs ->
                          Builder.template_error
                            "Rewriter.emit_block_body (call [mem], 1 scratch)"
                            regs)
                | Call (J_op _) -> raise (Unsupported "call through rsp memory")
                | i -> translate_instr b ~live ~flags_live i);
             if not flags_live then Builder.maybe_skew b;
             Builder.end_point b)
          block.Cfg.b_instrs
      in
      let order = cfg.Cfg.order in
      let next_of =
        let rec pairs = function
          | a :: (bb :: _ as rest) -> (a, Some bb) :: pairs rest
          | [ a ] -> [ (a, None) ]
          | [] -> []
        in
        pairs order
      in
      let result =
        Obs.Trace.with_span ~args:[ ("func", fname) ] "rewrite.lower"
        @@ fun () ->
        try
          List.iter
            (fun (addr, next) ->
               let block = Cfg.block_exn cfg addr in
               Chain.label b.Builder.chain (Builder.block_label addr);
               emit_block_body block;
               let term_live =
                 match block.Cfg.b_term_instr with
                 | Some ti -> live_for live_info ti
                 | None -> R.all
               in
               let taddr, tdesc, tflags =
                 match block.Cfg.b_term_instr with
                 | Some ti ->
                   (ti.Cfg.addr, X86.Pp.instr_str ti.Cfg.instr,
                    Analysis.Liveness.flags_live_after live_info ti.Cfg.addr)
                 | None -> (addr, "fallthrough", false)
               in
               let point_live =
                 match block.Cfg.b_term with
                 | Cfg.T_ret -> Analysis.Liveness.exit_live
                 | Cfg.T_tail _ -> Analysis.Liveness.tail_live
                 | Cfg.T_hlt -> R.empty
                 | _ -> term_live
               in
               Builder.begin_point b ~addr:taddr ~desc:tdesc ~live:point_live
                 ~flags_live:tflags ~defs:R.empty;
               (match block.Cfg.b_term with
                | Cfg.T_hlt -> Builder.hlt b
                | Cfg.T_ret -> Builder.epilogue b ~live:Analysis.Liveness.exit_live
                | Cfg.T_tail t -> Builder.tail_jump b ~live:Analysis.Liveness.tail_live t
                | Cfg.T_jmp t ->
                  Builder.branch b ~live:term_live ~cc:None
                    ~target:(Builder.block_label t)
                | Cfg.T_fall f ->
                  if next <> Some f then
                    Builder.branch b ~live:term_live ~cc:None
                      ~target:(Builder.block_label f)
                | Cfg.T_jcc (cc, t, f) ->
                  let bv =
                    if s.config.Config.p2 && (cc = E || cc = NE) then
                      match List.rev block.Cfg.b_instrs with
                      | last :: _ -> Predicates.branch_value_of_instr last.Cfg.instr
                      | [] -> None
                    else None
                  in
                  (match bv with
                   | Some bv ->
                     (* the guards recompute d from the compared registers,
                        so those stay live through the branch group *)
                     let live =
                       R.union term_live (Predicates.branch_value_regs bv)
                     in
                     Builder.widen_point_live b
                       (Predicates.branch_value_regs bv);
                     let tramp = Builder.fresh b "p2t" in
                     Builder.branch b ~live ~cc:(Some cc) ~target:tramp;
                     trampolines :=
                       (tramp, cc, bv, Builder.block_label t, live)
                       :: !trampolines;
                     (* fall-through guard sits inline, before the next
                        block's label so only this edge runs it *)
                     Predicates.fall_guard b ~live ~cc bv
                   | None ->
                     Builder.branch b ~live:term_live ~cc:(Some cc)
                       ~target:(Builder.block_label t));
                  if next <> Some f then
                    Builder.branch b ~live:term_live ~cc:None
                      ~target:(Builder.block_label f)
                | Cfg.T_jmp_table { jump_reg; table_addr; entries; _ } ->
                  let anchor = Builder.table_jump b ~live:term_live jump_reg in
                  table_jobs := (table_addr, anchor, entries) :: !table_jobs
                | Cfg.T_jmp_unresolved _ -> raise (Unsupported "indirect jump"));
               Builder.end_point b)
            next_of;
          (* P2 trampolines: taken-edge guard, then the real transfer *)
          List.iter
            (fun (tramp, cc, bv, target, live) ->
               Chain.label b.Builder.chain tramp;
               Builder.begin_point b ~addr:0L ~desc:("p2 trampoline " ^ tramp)
                 ~live ~flags_live:false ~defs:R.empty;
               Predicates.taken_guard b ~live ~cc bv;
               Builder.branch b ~live ~cc:None ~target;
               Builder.end_point b)
            (List.rev !trampolines);
          Ok ()
        with
        | Builder.Bail m -> Error (F_register_pressure m)
        | Unsupported m -> Error (F_unsupported m)
      in
      match result with
      | Error e -> Error e
      | Ok () ->
        (* materialize *)
        rop_align8 s;
        let base = rop_cursor s in
        let rngj = Util.Rng.split s.rng in
        let m =
          Obs.Trace.with_span ~args:[ ("func", fname) ] "rewrite.materialize"
            (fun () ->
               Chain.materialize
                 ~junk:(fun _ -> Util.Rng.int rngj 256)
                 ~base b.Builder.chain)
        in
        let addr = rop_emit s m.Chain.bytes in
        assert (addr = base);
        (* install the pivot stub over the original body; the early
           pivot_stub_size check is an estimate, so re-check with the actual
           addresses rather than crash in Image.replace_function_body *)
        let stub = pivot_stub ~ss_addr:s.ss_addr ~chain_addr:base in
        if Bytes.length stub > sym.Image.sym_size then Error F_too_small
        else begin
          Image.replace_function_body s.img sym stub;
          (* patch the jump tables with chain displacements *)
          List.iter
            (fun (table_addr, anchor, entries) ->
               List.iteri
                 (fun i target ->
                    let v =
                      Chain.label_delta m ~target:(Builder.block_label target)
                        ~anchor
                    in
                    Image.patch s.img
                      (Int64.add table_addr (Int64.of_int (8 * i))) 8 v)
                 entries)
            !table_jobs;
          let block_offsets =
            Hashtbl.fold
              (fun name off acc ->
                 if String.length name > 3 && String.sub name 0 3 = "bb_" then
                   off :: acc
                 else acc)
              m.Chain.offsets []
            |> List.sort compare
          in
          let layout = m.Chain.layout in
          let audit_points =
            List.map
              (fun (p : Builder.point) ->
                 { Audit.p_addr = p.Builder.pt_addr;
                   p_desc = p.Builder.pt_desc;
                   p_live = p.Builder.pt_live;
                   p_flags_live = p.Builder.pt_flags_live;
                   p_defs = p.Builder.pt_defs;
                   p_borrowed = p.Builder.pt_borrowed;
                   p_slots =
                     Array.sub layout p.Builder.pt_start
                       (p.Builder.pt_stop - p.Builder.pt_start);
                   p_hidden =
                     (match p.Builder.pt_hidden with
                      | None -> None
                      | Some (lo, hi) ->
                        (* slot indices -> chain byte offsets *)
                        let off i =
                          if i < Array.length layout then fst layout.(i)
                          else Bytes.length m.Chain.bytes
                        in
                        Some (off lo, off hi)) })
              (Builder.points b)
          in
          let fa =
            { Audit.f_name = fname;
              f_sym_addr = sym.Image.sym_addr;
              f_sym_size = sym.Image.sym_size;
              f_stub_len = Bytes.length stub;
              f_chain_base = base;
              f_chain_len = Bytes.length m.Chain.bytes;
              f_layout = layout;
              f_labels =
                Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.Chain.offsets [];
              f_points = audit_points;
              f_tables =
                List.map
                  (fun (table_addr, anchor, entries) ->
                     (table_addr, anchor,
                      List.map Builder.block_label entries))
                  !table_jobs;
              f_p1 =
                (match s.config.Config.p1 with
                 | Some p1 when p1_array <> 0L ->
                   Some (p1_array, p1, p1_class_a)
                 | _ -> None) }
          in
          Ok
            ({ fs_points = b.Builder.program_points;
               fs_chain_bytes = Bytes.length m.Chain.bytes;
               fs_chain_addr = base;
               fs_blocks = List.length order;
               fs_block_offsets = block_offsets },
             fa)
        end
    end

(* --- session --------------------------------------------------------------- *)

(* The shareable half of a rewrite: everything that depends only on the
   input image and the function list, never on the configuration or seed.
   A resident server (lib/serve) prepares a context once per program and
   reuses it across requests, paying the gadget scan — the most expensive
   config-independent phase — exactly once; a one-shot [rewrite] call
   prepares and discards one.  The context is immutable by contract:
   [rewrite_with] copies [ctx_img] before mutating anything, so concurrent
   or repeated rewrites from one context are independent and each is
   byte-identical to a fresh one-shot run with the same configuration. *)
type context = {
  ctx_img : Image.t;             (* pristine input image; never mutated *)
  ctx_functions : string list;
  ctx_found : Gadget.t list;     (* gadget scan of the unobfuscated parts *)
}

let prepare ?(found_gadget_scan = true) (img : Image.t) ~functions : context =
  let img = Image.copy img in
  let found =
    Obs.Trace.with_span "rewrite.gadget_scan" (fun () ->
        if found_gadget_scan then Finder.scan_image img ~excluding:functions
        else [])
  in
  { ctx_img = img; ctx_functions = functions; ctx_found = found }

let rewrite_with (ctx : context) ~(config : Config.t) : result =
  let img = Image.copy ctx.ctx_img in
  let functions = ctx.ctx_functions in
  let rng = Util.Rng.create config.Config.seed in
  let found = ctx.ctx_found in
  let text = Image.section_exn img ".text" in
  let pool_base = Image.section_end text in
  let pool =
    Obs.Trace.with_span "rewrite.pool_build" (fun () ->
        Pool.create ~variants:config.Config.variants ~rng:(Util.Rng.split rng)
          ~next_addr:pool_base found)
  in
  let rop_buf = Buffer.create 4096 in
  let s =
    { img; config; rng; pool;
      ss_addr = Image.rop_base;         (* ss is the first .rop object *)
      funcret_gadget = 0L;              (* patched below *)
      rop_buf;
      table_patches = [] }
  in
  (* ss array: 64 frames *)
  let ss_addr = rop_alloc s (8 * 64) in
  assert (ss_addr = Image.rop_base);
  (* synthetic function-return gadget with hard-wired ss address *)
  let funcret =
    Pool.request_jop pool
      [ Mov (W64, Reg R11, Imm ss_addr);
        Alu (Add, W64, Reg R11, Mem (mem_b R11 0));
        Xchg (W64, Reg RSP, Mem (mem_b R11 0));
        Ret ]
  in
  let s = { s with funcret_gadget = funcret } in
  Pool.reset_stats pool;   (* the funcret request should not skew Table III *)
  let raw =
    List.map
      (fun fname ->
         (* per-function layer split: resolve the config that applies to this
            function (identity unless [config.per_function] is set); the
            session RNG stays shared so the split perturbs nothing else *)
         let fs = { s with config = Config.for_function config fname } in
         (fname,
          Obs.Trace.with_span ~args:[ ("func", fname) ] "rewrite.function"
            (fun () -> rewrite_function fs fname)))
      functions
  in
  let funcs =
    List.map (fun (fname, r) -> (fname, Result.map fst r)) raw
  in
  (* append synthesized gadgets to .text and create the .rop section *)
  let pool_bytes = Pool.emitted_bytes pool in
  let appended_at = Image.append img ".text" pool_bytes in
  assert (appended_at = pool_base);
  ignore
    (Image.add_section img ~name:".rop" ~addr:Image.rop_base
       ~data:(Buffer.to_bytes rop_buf) ~writable:true ~executable:false);
  Image.add_symbol img ~name:"__ss" ~addr:ss_addr ~size:(8 * 64) ();
  let uses, uniq = Pool.stats pool in
  if Obs.Metrics.enabled () then begin
    let c = Obs.Metrics.count in
    c "rewrite.found_gadgets" (List.length found);
    c "rewrite.gadget_uses" uses;
    c "rewrite.unique_gadgets" uniq;
    c "rewrite.pool_bytes" (Bytes.length pool_bytes);
    c "rewrite.funcs_attempted" (List.length raw);
    List.iter
      (fun (_, r) ->
         match r with
         | Ok (fs, _) ->
           c "rewrite.funcs_ok" 1;
           c "rewrite.points" fs.fs_points;
           c "rewrite.chain_bytes" fs.fs_chain_bytes;
           Obs.Metrics.observe_named "rewrite.blocks_per_func" fs.fs_blocks
         | Error _ -> c "rewrite.funcs_failed" 1)
      raw
  end;
  let audit =
    { Audit.a_ss_addr = ss_addr;
      a_funcret = funcret;
      a_pool_lo = pool_base;
      a_pool_hi = Int64.add pool_base (Int64.of_int (Bytes.length pool_bytes));
      a_gadgets =
        List.map
          (fun (e : Pool.entry) ->
             { Audit.g_addr = e.Pool.gadget.Gadget.addr;
               g_gadget = e.Pool.gadget;
               g_prefix = e.Pool.prefix;
               g_found = e.Pool.is_found })
          (Pool.all_gadgets pool);
      a_funcs =
        List.filter_map
          (fun (_, r) -> match r with Ok (_, fa) -> Some fa | Error _ -> None)
          raw }
  in
  { image = img; funcs; total_gadget_uses = uses; unique_gadgets = uniq;
    audit }

(* One-shot entry point: prepare a throwaway context and rewrite once.  The
   CLI, the experiment harness and the tests all come through here; the
   server keeps its own contexts warm and calls [rewrite_with] directly. *)
let rewrite ?found_gadget_scan (img : Image.t) ~functions
    ~(config : Config.t) : result =
  rewrite_with (prepare ?found_gadget_scan img ~functions) ~config
