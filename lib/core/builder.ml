(* Chain crafting context (§IV-B2).

   Holds the pool, the chain under construction and the per-function ABI
   addresses, and provides the gadget-sequence templates used to lower
   roplets: virtual-stack operations against other_rsp (kept in the
   stack-switching array ss), branch groups with variable RSP addends,
   native-call and epilogue stack switches, and flag spill/restore around
   flag-polluting insertions. *)

open X86.Isa
module R = Analysis.Regset

exception Bail of string

(* One lowered program point (roplet / terminator group / trampoline): which
   chain slots it produced and what liveness said there.  Recorded as a side
   effect of crafting and handed to lib/verify through the rewriter's audit;
   the verifier replays the slots against these facts. *)
type point = {
  pt_addr : int64;             (* original instruction address (0 if none) *)
  pt_desc : string;            (* human label, e.g. the source instruction *)
  mutable pt_live : R.t;       (* registers that must survive the roplet *)
  pt_flags_live : bool;        (* must the status flags survive? *)
  pt_defs : R.t;               (* registers the roplet means to define *)
  mutable pt_borrowed : R.t;   (* spilled-and-restored (scratch borrows) *)
  pt_start : int;              (* first chain slot index of the roplet *)
  mutable pt_stop : int;       (* one past the last slot index *)
  mutable pt_hidden : (int * int) option;
      (* instruction hiding: slot-index range [lo, hi) of a real roplet
         smuggled inside this point's P3 predicate body *)
}

type t = {
  pool : Pool.t;
  chain : Chain.t;
  config : Config.t;
  rng : Util.Rng.t;
  fname : string;
  ss_addr : int64;
  spill_base : int64;          (* config.spill_slots 8-byte slots *)
  flags_spill : int64;         (* 16 bytes *)
  funcret_gadget : int64;      (* shared synthetic function-return gadget *)
  p1_array : int64;            (* base of the P1 opaque array (0 if no P1) *)
  p1_class_a : int array;      (* residue per class *)
  mutable branch_ordinal : int;
  mutable opaque_ordinal : int;   (* residue-class rotation for S_opaque *)
  mutable fresh_counter : int;
  mutable program_points : int;   (* N of Table III *)
  mutable points : point list;    (* reversed; audit trace *)
  mutable cur_point : point option;
}

let create ~pool ~config ~rng ~fname ~ss_addr ~spill_base ~flags_spill
    ~funcret_gadget ~p1_array ~p1_class_a =
  { pool; chain = Chain.create (); config; rng; fname; ss_addr; spill_base;
    flags_spill; funcret_gadget; p1_array; p1_class_a;
    branch_ordinal = 0; opaque_ordinal = 0; fresh_counter = 0;
    program_points = 0;
    points = []; cur_point = None }

(* --- audit trace ---------------------------------------------------------- *)

let end_point b =
  match b.cur_point with
  | Some p ->
    p.pt_stop <- Chain.length b.chain;
    b.points <- p :: b.points;
    b.cur_point <- None
  | None -> ()

let begin_point b ~addr ~desc ~live ~flags_live ~defs =
  end_point b;
  b.cur_point <-
    Some { pt_addr = addr; pt_desc = desc; pt_live = live;
           pt_flags_live = flags_live; pt_defs = defs;
           pt_borrowed = R.empty;
           pt_start = Chain.length b.chain;
           pt_stop = Chain.length b.chain;
           pt_hidden = None }

(* Extend the live set recorded for the current point (e.g. a P2 branch value
   that must survive into the trampoline). *)
let widen_point_live b extra =
  match b.cur_point with
  | Some p -> p.pt_live <- R.union p.pt_live extra
  | None -> ()

let note_borrowed b regs =
  match b.cur_point with
  | Some p -> p.pt_borrowed <- R.union p.pt_borrowed regs
  | None -> ()

(* Record the slot-index range of a hidden roplet within the current point
   (instruction hiding layer). *)
let note_hidden b lo hi =
  match b.cur_point with
  | Some p -> p.pt_hidden <- Some (lo, hi)
  | None -> ()

let points b =
  end_point b;
  List.rev b.points

let fresh b prefix =
  let n = b.fresh_counter in
  b.fresh_counter <- n + 1;
  Printf.sprintf "%s$%s%d" b.fname prefix n

let block_label addr = Printf.sprintf "bb_%Lx" addr

(* --- scratch allocation -------------------------------------------------- *)

(* Registers the chain machinery may never allocate: the chain's own program
   counter and the frame register we keep live for the original code. *)
let reserved = R.of_list [ RSP; RBP ]

(* Allocate [n] scratch registers dead at this point ([live] from liveness,
   [avoid] = operand registers of the roplet being lowered).  When dead
   registers run short, live ones are borrowed via the spill slots
   (capacity [config.spill_slots]); beyond that the rewrite fails, which the
   coverage experiment reports like the paper's 40 register-pressure
   failures. *)
let with_scratch ?(allow_spill = true) b ~live ~avoid n (f : reg list -> unit) =
  let forbidden = R.union (R.union live avoid) reserved in
  let free = List.filter (fun r -> not (R.mem_reg forbidden r)) all_regs in
  let free = Util.Rng.shuffle b.rng free in
  if List.length free >= n then begin
    let regs = List.filteri (fun i _ -> i < n) free in
    f regs
  end else if not allow_spill then
    raise (Bail (Printf.sprintf
                   "register pressure at a spill-unsafe point: need %d, have %d"
                   n (List.length free)))
  else begin
    let missing = n - List.length free in
    if missing > b.config.Config.spill_slots then
      raise (Bail (Printf.sprintf "register pressure: need %d scratch, have %d, %d spill slots"
                     n (List.length free) b.config.Config.spill_slots));
    (* borrow live registers (not operands, not reserved) *)
    let borrowable =
      List.filter
        (fun r -> R.mem_reg live r && not (R.mem_reg (R.union avoid reserved) r)
                  && r <> RAX)
        all_regs
    in
    if List.length borrowable < missing then
      raise (Bail "register pressure: nothing left to spill");
    let borrowed = List.filteri (fun i _ -> i < missing) borrowable in
    note_borrowed b (R.of_list borrowed);
    let slot i = Int64.add b.spill_base (Int64.of_int (8 * i)) in
    List.iteri
      (fun i r ->
         Chain.gadget b.chain
           (Pool.request b.pool [ Mov (W64, Mem (mem_abs (slot i)), Reg r) ]))
      borrowed;
    f (free @ borrowed);
    List.iteri
      (fun i r ->
         Chain.gadget b.chain
           (Pool.request b.pool [ Mov (W64, Reg r, Mem (mem_abs (slot i))) ]))
      borrowed
  end

(* Internal-invariant failure: a lowering template received scratch registers
   of a shape other than the one its fixed gadget sequence needs.  Reachable
   only through a bug in [with_scratch] or the template itself, so surface
   the role and the offending operand shape instead of an anonymous assert. *)
let template_error role regs =
  invalid_arg
    (Printf.sprintf
       "Builder.%s: gadget template got scratch shape [%s]"
       role (String.concat "; " (List.map X86.Pp.reg_name regs)))

(* Emit one gadget; [clobber] lists registers usable in diversification
   prefixes (dynamically dead at this point). *)
let g b ?(clobber = []) instrs =
  Chain.gadget b.chain (Pool.request ~clobberable:clobber b.pool instrs)

let imm b v = Chain.imm b.chain v

(* Load a 64-bit constant into [r] from the chain, optionally disguising it
   as a difference of gadget addresses (gadget confusion, §V-D). *)
let load_imm b ~scratch r v =
  let confused =
    b.config.Config.gadget_confusion
    && Util.Rng.int b.rng 100 < b.config.Config.imm_confusion_prob
    && scratch <> []
  in
  if confused then begin
    let r2 = List.hd scratch in
    (* pick a cover address: an existing gadget looks most plausible *)
    let cover = b.funcret_gadget in
    g b [ Pop (Reg r) ];
    imm b (Int64.add v cover);
    g b [ Pop (Reg r2) ];
    imm b cover;
    g b [ Alu (Sub, W64, Reg r, Reg r2) ]
  end else begin
    g b [ Pop (Reg r) ];
    imm b v
  end

(* Optionally insert an unaligned RSP update (eta mod 8 <> 0) after a
   program point; the junk gap makes every 8-byte stride look like a
   plausible chain item to a scanner. *)
let maybe_skew b =
  if b.config.Config.gadget_confusion
     && Util.Rng.int b.rng 100 < b.config.Config.skew_prob
  then begin
    let eta = 8 + Util.Rng.range b.rng 1 7 in    (* 9..15, never 8-aligned *)
    g b [ Alu (Add, W64, Reg RSP, Imm (Int64.of_int (eta - 8))) ];
    Chain.skew b.chain (eta - 8)
  end

(* --- flag spill/restore (§IV-B2) ----------------------------------------- *)

let flag_spill b =
  let fs = b.flags_spill in
  let fs8 = Int64.add fs 8L in
  g b [ Mov (W64, Mem (mem_abs fs8), Reg RAX) ];
  g b [ Lahf; Setcc (O, Reg RAX) ];
  g b [ Mov (W64, Mem (mem_abs fs), Reg RAX) ];
  g b [ Mov (W64, Reg RAX, Mem (mem_abs fs8)) ]

let flag_restore b =
  let fs = b.flags_spill in
  let fs8 = Int64.add fs 8L in
  g b [ Mov (W64, Mem (mem_abs fs8), Reg RAX) ];
  g b [ Mov (W64, Reg RAX, Mem (mem_abs fs)) ];
  g b [ Alu (Add, W8, Reg RAX, Imm 0x7FL); Sahf ];
  g b [ Mov (W64, Reg RAX, Mem (mem_abs fs8)) ]

(* Run [f] with the status register preserved if [flags_live]. *)
let with_flags_preserved b ~flags_live f =
  if flags_live then begin
    (* RAX is saved/restored around the spill pair *)
    note_borrowed b (R.of_reg RAX);
    flag_spill b;
    f ();
    flag_restore b
  end else f ()

(* --- virtual stack primitives -------------------------------------------- *)

(* s1 := &other_rsp cell, i.e. ss + ss[0]. *)
let load_cell_ptr b ~scratch s1 =
  load_imm b ~scratch s1 b.ss_addr;
  g b [ Alu (Add, W64, Reg s1, Mem (mem_b s1 0)) ]

(* push <value in vr> *)
let vpush_reg b ~live vr =
  with_scratch b ~live ~avoid:(R.of_reg vr) 2 (fun regs ->
      match regs with
      | [ s1; s2 ] ->
        load_cell_ptr b ~scratch:[ s2 ] s1;
        g b [ Mov (W64, Reg s2, Mem (mem_b s1 0));
              Alu (Sub, W64, Reg s2, Imm 8L) ];
        g b [ Mov (W64, Mem (mem_b s1 0), Reg s2) ];
        g b [ Mov (W64, Mem (mem_b s2 0), Reg vr) ]
      | regs -> template_error "vpush_reg (virtual push, 2 scratch)" regs)

let vpush_imm b ~live v =
  with_scratch b ~live ~avoid:R.empty 3 (fun regs ->
      match regs with
      | [ s1; s2; s3 ] ->
        load_cell_ptr b ~scratch:[ s2 ] s1;
        g b [ Mov (W64, Reg s2, Mem (mem_b s1 0));
              Alu (Sub, W64, Reg s2, Imm 8L) ];
        g b [ Mov (W64, Mem (mem_b s1 0), Reg s2) ];
        load_imm b ~scratch:[] s3 v;
        g b [ Mov (W64, Mem (mem_b s2 0), Reg s3) ]
      | regs -> template_error "vpush_imm (virtual push imm, 3 scratch)" regs)

(* pop <into dst register> *)
let vpop b ~live dst =
  with_scratch b ~live ~avoid:(R.of_reg dst) 2 (fun regs ->
      match regs with
      | [ s1; s2 ] ->
        load_cell_ptr b ~scratch:[ s2 ] s1;
        g b [ Mov (W64, Reg s2, Mem (mem_b s1 0)) ];
        g b [ Mov (W64, Reg dst, Mem (mem_b s2 0)) ];
        g b [ Alu (Add, W64, Mem (mem_b s1 0), Imm 8L) ]
      | regs -> template_error "vpop (virtual pop, 2 scratch)" regs)

(* rsp += delta (frame allocation / release) *)
let rsp_adjust b ~live delta =
  with_scratch b ~live ~avoid:R.empty 2 (fun regs ->
      match regs with
      | [ s1; s2 ] ->
        load_cell_ptr b ~scratch:[ s2 ] s1;
        load_imm b ~scratch:[] s2 delta;
        g b [ Alu (Add, W64, Mem (mem_b s1 0), Reg s2) ]
      | regs -> template_error "rsp_adjust (virtual rsp += imm, 2 scratch)" regs)

(* dst := rsp   (e.g. mov rbp, rsp) *)
let rsp_to_reg b ~live dst =
  with_scratch b ~live ~avoid:(R.of_reg dst) 1 (fun regs ->
      match regs with
      | [ s1 ] ->
        load_cell_ptr b ~scratch:[] s1;
        g b [ Mov (W64, Reg dst, Mem (mem_b s1 0)) ]
      | regs -> template_error "rsp_to_reg (reg := virtual rsp, 1 scratch)" regs)

(* rsp := src   (e.g. mov rsp, rbp; the stack-release half of leave) *)
let reg_to_rsp b ~live src =
  with_scratch b ~live ~avoid:(R.of_reg src) 1 (fun regs ->
      match regs with
      | [ s1 ] ->
        load_cell_ptr b ~scratch:[] s1;
        g b [ Mov (W64, Mem (mem_b s1 0), Reg src) ]
      | regs -> template_error "reg_to_rsp (virtual rsp := reg, 1 scratch)" regs)

(* dst := [rsp + disp] with width/extension (Figure 3) *)
let rsp_read b ~live ~move dst disp =
  with_scratch b ~live ~avoid:(R.of_reg dst) 1 (fun regs ->
      match regs with
      | [ s1 ] ->
        load_cell_ptr b ~scratch:[] s1;
        g b [ Mov (W64, Reg s1, Mem (mem_b s1 0)) ];
        g b [ move dst (Mem (mem_b s1 disp)) ]
      | regs -> template_error "rsp_read (reg := [virtual rsp+disp], 1 scratch)" regs)

(* [rsp + disp] := src (register source) *)
let rsp_write b ~live w disp src =
  with_scratch b ~live ~avoid:(R.of_reg src) 1 (fun regs ->
      match regs with
      | [ s1 ] ->
        load_cell_ptr b ~scratch:[] s1;
        g b [ Mov (W64, Reg s1, Mem (mem_b s1 0)) ];
        g b [ Mov (w, Mem (mem_b s1 disp), Reg src) ]
      | regs -> template_error "rsp_write ([virtual rsp+disp] := reg, 1 scratch)" regs)

(* dst := rsp + disp (lea dst, [rsp+disp]) *)
let rsp_lea b ~live dst disp =
  rsp_to_reg b ~live dst;
  if disp <> 0 then
    g b [ Lea (dst, mem_b dst disp) ]

(* --- control transfers ----------------------------------------------------- *)

(* Unprotected branch group (§IV-B2).  [cc] None = unconditional.  The popped
   operand L is the offset of the destination block, a symbol materialized
   once the chain layout is final. *)
let plain_branch b ~live ~cc ~target =
  let anchor = fresh b "a" in
  with_scratch b ~live ~avoid:R.empty 2 (fun regs ->
      match regs, cc with
      | [ s1; _s2 ], None ->
        g b [ Pop (Reg s1) ];
        Chain.disp b.chain ~target ~anchor ~bias:0L;
        g b [ Alu (Add, W64, Reg RSP, Reg s1) ];
        Chain.anchor b.chain anchor
      | [ s1; s2 ], Some cc ->
        g b [ Pop (Reg s1) ];
        Chain.disp b.chain ~target ~anchor ~bias:0L;
        g b [ Mov (W64, Reg s2, Imm 0L); Cmov (cc_negate cc, s1, Reg s2) ];
        g b [ Alu (Add, W64, Reg RSP, Reg s1) ];
        Chain.anchor b.chain anchor
      | regs, _ -> template_error "plain_branch (branch group, 2 scratch)" regs)

(* P1 branch group: the branch offset is split into an array-encoded part [a]
   (recovered through the periodic opaque array, with input-derived aliasing
   via f(x)) and a branch-specific part delta-a popped from the chain
   (§V-A). *)
let p1_branch b ~live ~cc ~target =
  let p1 =
    match b.config.Config.p1 with
    | Some p -> p
    | None ->
      invalid_arg
        "Builder.p1_branch: P1 branch requested but the configuration has \
         no P1 parameters (use plain_branch when config.p1 = None)"
  in
  let ordinal = b.branch_ordinal in
  b.branch_ordinal <- ordinal + 1;
  let cls = ordinal mod p1.Config.n in
  let a = b.p1_class_a.(cls) in
  let anchor = fresh b "a" in
  let needed = match cc with Some _ -> 5 | None -> 4 in
  with_scratch b ~live ~avoid:R.empty needed (fun regs ->
      let sd, rest =
        match cc, regs with
        | Some _, sd :: rest -> (Some sd, rest)
        | None, rest -> (None, rest)
        | Some _, [] ->
          template_error "p1_branch (conditional needs a decision scratch)"
            regs
      in
      (match cc, sd with
       | Some cc, Some sd ->
         (* capture the branch decision before polluting the flags *)
         g b [ Mov (W64, Reg sd, Imm 0L) ];
         g b [ Setcc (cc, Reg sd) ]
       | None, None -> ()
       | Some _, None | None, Some _ ->
         invalid_arg
           "Builder.p1_branch: decision scratch present iff the branch is \
            conditional");
      match rest with
      | [ si; st; sv; so ] ->
        (* f(x): opaquely combine up to 4 input-derived (live) registers *)
        let sources =
          List.filter
            (fun r -> R.mem_reg live r && not (R.mem_reg reserved r))
            all_regs
        in
        let sources = Util.Rng.shuffle b.rng sources in
        let sources = List.filteri (fun i _ -> i < 4) sources in
        (match sources with
         | [] -> g b [ Mov (W64, Reg si, Imm 0L) ]
         | first :: others ->
           g b [ Mov (W64, Reg si, Reg first) ];
           List.iter
             (fun r ->
                match Util.Rng.int b.rng 3 with
                | 0 -> g b [ Alu (Add, W64, Reg si, Reg r) ]
                | 1 -> g b [ Alu (Xor, W64, Reg si, Reg r) ]
                | _ -> g b [ Alu (Add, W64, Reg si, Reg r);
                             Shift (Rol, W64, Reg si, S_imm 3) ])
             others);
        g b [ Alu (And, W64, Reg si, Imm (Int64.of_int (p1.Config.p - 1))) ];
        load_imm b ~scratch:[] st (Int64.of_int (8 * p1.Config.s));
        g b [ Imul2 (W64, si, Reg st) ];
        (* cell address = A + cls*8 + f(x)*s*8 *)
        load_imm b ~scratch:[]
          st (Int64.add b.p1_array (Int64.of_int (8 * cls)));
        g b [ Mov (W64, Reg sv, Mem { base = Some st; index = Some (si, 1); disp = 0L }) ];
        (* a = A[...] mod m *)
        if p1.Config.m land (p1.Config.m - 1) = 0 then
          g b [ Alu (And, W64, Reg sv, Imm (Int64.of_int (p1.Config.m - 1))) ]
        else begin
          (* div path: needs rax/rdx; they are scratch-only here *)
          raise (Bail "non-power-of-two P1 modulus requires the div path (unimplemented fast path)")
        end;
        (* delta = (delta - a) + a *)
        g b [ Pop (Reg so) ];
        Chain.disp b.chain ~target ~anchor ~bias:(Int64.of_int a);
        g b [ Alu (Add, W64, Reg so, Reg sv) ];
        (match sd with
         | Some sd -> g b [ Imul2 (W64, so, Reg sd) ]
         | None -> ());
        g b [ Alu (Add, W64, Reg RSP, Reg so) ];
        Chain.anchor b.chain anchor
      | regs -> template_error "p1_branch (P1 branch group, 4 scratch)" regs)

let branch b ~live ~cc ~target =
  match b.config.Config.p1 with
  | Some _ -> p1_branch b ~live ~cc ~target
  | None -> plain_branch b ~live ~cc ~target

(* --- opaque-constant slots (ROPfuscator layer) ----------------------------- *)

(* The layer piggybacks on the P1 array, so it is active only when P1 is. *)
let opaque_active b =
  b.config.Config.opaque_constants
  && b.config.Config.p1 <> None
  && Int64.compare b.p1_array 0L <> 0

(* Per-slot coin flip at [opaque_prob] percent. *)
let opaque_roll b =
  opaque_active b && Util.Rng.int b.rng 100 < b.config.Config.opaque_prob

(* Free (dead, unreserved) registers at this point, for templates that must
   not spill because their trailing slots have adjacency requirements. *)
let free_scratch _b ~live ~avoid =
  let forbidden = R.union (R.union live avoid) reserved in
  List.length (List.filter (fun r -> not (R.mem_reg forbidden r)) all_regs)

(* Shared middle of every opaque recovery: sv := P1[f(x)*s*8 + cls*8] mod m,
   clobbering [si] and [st] — byte for byte the extraction sequence of
   [p1_branch], so a scanner cannot tell a recovered constant from an
   encoded branch. *)
let opaque_residue_seq b ~live ~cls (si, st, sv) =
  let p1 =
    match b.config.Config.p1 with
    | Some p -> p
    | None -> invalid_arg "Builder.opaque_residue_seq: no P1 parameters"
  in
  let sources =
    List.filter
      (fun r -> R.mem_reg live r && not (R.mem_reg reserved r))
      all_regs
  in
  let sources = Util.Rng.shuffle b.rng sources in
  let sources = List.filteri (fun i _ -> i < 4) sources in
  (match sources with
   | [] -> g b [ Mov (W64, Reg si, Imm 0L) ]
   | first :: others ->
     g b [ Mov (W64, Reg si, Reg first) ];
     List.iter
       (fun r ->
          match Util.Rng.int b.rng 3 with
          | 0 -> g b [ Alu (Add, W64, Reg si, Reg r) ]
          | 1 -> g b [ Alu (Xor, W64, Reg si, Reg r) ]
          | _ -> g b [ Alu (Add, W64, Reg si, Reg r);
                       Shift (Rol, W64, Reg si, S_imm 3) ])
       others);
  g b [ Alu (And, W64, Reg si, Imm (Int64.of_int (p1.Config.p - 1))) ];
  load_imm b ~scratch:[] st (Int64.of_int (8 * p1.Config.s));
  g b [ Imul2 (W64, si, Reg st) ];
  load_imm b ~scratch:[] st (Int64.add b.p1_array (Int64.of_int (8 * cls)));
  g b [ Mov (W64, Reg sv,
             Mem { base = Some st; index = Some (si, 1); disp = 0L }) ];
  if p1.Config.m land (p1.Config.m - 1) = 0 then
    g b [ Alu (And, W64, Reg sv, Imm (Int64.of_int (p1.Config.m - 1))) ]
  else
    raise (Bail "non-power-of-two P1 modulus requires the div path \
                 (unimplemented fast path)")

(* Choose this slot's encoding and rotate the class.  The first slot under
   [debug_opaque_residue] records a residue that disagrees with the array's
   ground truth: the stored bytes come out mult bytes off and the runtime
   recovery genuinely miscompiles — the fault ropcheck's byte check must
   catch against [f_p1]. *)
let opaque_pick b =
  let p1 =
    match b.config.Config.p1 with
    | Some p -> p
    | None -> invalid_arg "Builder.opaque_pick: no P1 parameters"
  in
  let ordinal = b.opaque_ordinal in
  b.opaque_ordinal <- ordinal + 1;
  let cls = ordinal mod p1.Config.n in
  let a = b.p1_class_a.(cls) in
  let mult = Int64.of_int (0x10000 + Util.Rng.int b.rng 0x40000) in
  let residue =
    if b.config.Config.debug_opaque_residue && ordinal = 0 then
      Int64.of_int ((a + 1) mod p1.Config.m)
    else Int64.of_int a
  in
  (cls, residue, mult)

(* Tail of every recovery, entered with sv = a: scale to (a+1)*mult, pop the
   residual slot into [r], add the two back together. *)
let opaque_finish b ~cls ~residue ~mult r (st, sv) value =
  g b [ Pop (Reg st) ];
  imm b mult;
  g b [ Imul2 (W64, sv, Reg st) ];
  g b [ Alu (Add, W64, Reg sv, Reg st) ];
  g b [ Pop (Reg r) ];
  Chain.opaque b.chain ~value ~cls ~residue ~mult;
  g b [ Alu (Add, W64, Reg r, Reg sv) ]

(* Load [value] into [r] without the value ever appearing in the chain
   bytes: the slot stores value - mult*(a+1), and the preceding gadgets
   recover mult*(a+1) from the opaque array.  Clobbers the status flags. *)
let opaque_load b ~live r value =
  let cls, residue, mult = opaque_pick b in
  with_scratch b ~live ~avoid:(R.of_reg r) 3 (fun regs ->
      match regs with
      | [ si; st; sv ] ->
        opaque_residue_seq b ~live ~cls (si, st, sv);
        opaque_finish b ~cls ~residue ~mult r (st, sv) value
      | regs -> template_error "opaque_load (opaque recovery, 3 scratch)" regs)

(* Emit one gadget with its *address* opaque-encoded: the slot that would
   have held the gadget address holds a jmp-reg trampoline instead, and the
   register it jumps through is recovered opaquely.  The target's own ret
   continues the chain right after the dispatch slot, so callers emit the
   gadget's operand slots immediately after this returns — which is also
   why this template must never spill (restore gadgets would land between
   the dispatch and its operands); under register pressure it falls back to
   a literal slot. *)
let g_opaque b ?(clobber = []) ~live instrs =
  if free_scratch b ~live ~avoid:R.empty < 4 then g b ~clobber instrs
  else begin
    let target = Pool.request ~clobberable:clobber b.pool instrs in
    let cls, residue, mult = opaque_pick b in
    with_scratch ~allow_spill:false b ~live ~avoid:R.empty 4 (fun regs ->
        match regs with
        | [ s; si; st; sv ] ->
          opaque_residue_seq b ~live ~cls (si, st, sv);
          opaque_finish b ~cls ~residue ~mult s (st, sv) target;
          let jop = Pool.request_jop b.pool [ Jmp (J_op (Reg s)) ] in
          Chain.opaque_dispatch b.chain ~jop ~target
        | regs -> template_error "g_opaque (opaque dispatch, 4 scratch)" regs)
  end

(* Jump-table dispatch: [reg] already holds the RSP displacement loaded from
   the rewritten table (Appendix A); returns the anchor name the table
   entries must be made relative to. *)
let table_jump b ~live reg =
  ignore live;
  let anchor = fresh b "jt" in
  g b [ Alu (Add, W64, Reg RSP, Reg reg) ];
  Chain.anchor b.chain anchor;
  anchor

(* --- stack switching: calls and returns (§IV-B2, Figure 4) ---------------- *)

type call_target =
  | Ct_imm of int64            (* direct call: function entry address *)
  | Ct_reg of reg              (* indirect call through a register *)

(* Spilling across the call would not be reentrant (the slots are
   per-function, and the callee may recurse into us), so the sequence is
   shaped to need only the two caller-saved non-argument registers that are
   always dead at a call site. *)
let native_call b ~live target =
  let avoid = match target with Ct_reg r -> R.of_reg r | Ct_imm _ -> R.empty in
  with_scratch ~allow_spill:false b ~live ~avoid 2 (fun regs ->
      match regs with
      | [ s1; s2 ] ->
        load_imm b ~scratch:[ s2 ] s1 b.ss_addr;
        g b [ Alu (Add, W64, Reg s1, Mem (mem_b s1 0)) ];          (* step A *)
        g b [ Alu (Sub, W64, Mem (mem_b s1 0), Imm 8L) ];
        g b [ Mov (W64, Reg s2, Mem (mem_b s1 0)) ];
        (* step B: plant the function-return gadget as return address *)
        g b [ Mov (W64, Mem (mem_b s2 0), Imm b.funcret_gadget) ];
        (match target with
         | Ct_imm addr ->
           g b [ Pop (Reg s2) ];
           imm b addr
         | Ct_reg r -> g b [ Mov (W64, Reg s2, Reg r) ]);
        (* step C: JOP gadget switches stacks and enters the callee *)
        Chain.gadget b.chain
          (Pool.request_jop b.pool
             [ Xchg (W64, Reg RSP, Mem (mem_b s1 0)); Jmp (J_op (Reg s2)) ])
      | regs -> template_error "native_call (stack-switch call, 2 scratch)" regs)

(* Function epilogue: release the ss frame and return natively (Appendix A).
   The final gadget's own ret pops the caller's return address from the
   native stack. *)
let epilogue b ~live =
  (* seeded fault injection (tests only): skew the virtual stack right
     before the unswitch.  Every slot still typechecks individually, so
     ropcheck's linear walk passes; only a flow-sensitive stack-discipline
     analysis can see the unswitch happen at delta = +8. *)
  if b.config.Config.debug_unbalanced_epilogue then rsp_adjust b ~live 8L;
  with_scratch b ~live ~avoid:R.empty 1 (fun regs ->
      match regs with
      | [ s1 ] ->
        load_imm b ~scratch:[] s1 b.ss_addr;
        g b [ Alu (Sub, W64, Mem (mem_b s1 0), Imm 8L) ];
        g b [ Alu (Add, W64, Reg s1, Mem (mem_b s1 0));
              Alu (Add, W64, Reg s1, Imm 8L) ];
        g b [ Mov (W64, Reg RSP, Mem (mem_b s1 0)) ]
      | regs -> template_error "epilogue (stack unswitch, 1 scratch)" regs)

(* Tail-jump variant: unpivot, then jump to the tail target (Appendix A). *)
let tail_jump b ~live target =
  with_scratch b ~live ~avoid:R.empty 2 (fun regs ->
      match regs with
      | [ s1; s2 ] ->
        load_imm b ~scratch:[ s2 ] s1 b.ss_addr;
        g b [ Alu (Sub, W64, Mem (mem_b s1 0), Imm 8L) ];
        g b [ Alu (Add, W64, Reg s1, Mem (mem_b s1 0));
              Alu (Add, W64, Reg s1, Imm 8L) ];
        g b [ Pop (Reg s2) ];
        imm b target;
        Chain.gadget b.chain
          (Pool.request_jop b.pool
             [ Mov (W64, Reg RSP, Mem (mem_b s1 0)); Jmp (J_op (Reg s2)) ])
      | regs -> template_error "tail_jump (stack unswitch + jop, 2 scratch)" regs)

let hlt b = g b [ Hlt ]
