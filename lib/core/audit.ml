(* Rewrite audit artifact: everything the static verifier (lib/verify) needs
   to re-check a rewritten image without re-running the rewriter.

   The rewriter records, as a side effect of crafting, (a) every gadget the
   pool knows about with its diversification-prefix provenance, (b) the full
   slot layout of each materialized chain, and (c) one [point] per lowered
   roplet carrying the liveness facts the lowering relied on.  The verifier
   treats this as a set of *claims* and independently validates them against
   the image bytes: decoded gadget bodies must match the recorded ones, the
   chain walk must line up ret-to-ret, and recorded live sets must not
   intersect what the slots' gadgets actually clobber. *)

module R = Analysis.Regset

type gadget_rec = {
  g_addr : int64;
  g_gadget : Gadget.t;
  g_prefix : X86.Isa.reg list;  (* regs the diversification prefix writes *)
  g_found : bool;               (* scanned from untouched code vs synthesized *)
}

(* One lowered program point: a translated instruction, a terminator group,
   or a P2 trampoline.  [p_slots] are the chain slots (offset within the
   chain, symbolic slot) the lowering emitted for it, in stack order. *)
type point = {
  p_addr : int64;               (* original instruction address (0 if none) *)
  p_desc : string;
  p_live : R.t;                 (* registers that must survive the roplet *)
  p_flags_live : bool;          (* must the status flags survive? *)
  p_defs : R.t;                 (* what the roplet intends to define *)
  p_borrowed : R.t;             (* spilled-and-restored scratch borrows *)
  p_slots : (int * Chain.slot) array;
  p_hidden : (int * int) option;
      (* instruction hiding: chain-offset range [lo, hi) of the real
         roplet smuggled inside this point's P3 predicate body.  Roplint's
         Transval pass validates the hidden sub-region symbolically even
         though the surrounding predicate is shielded. *)
}

type func = {
  f_name : string;
  f_sym_addr : int64;           (* original body, now holding the pivot stub *)
  f_sym_size : int;
  f_stub_len : int;
  f_chain_base : int64;         (* placement of the chain in .rop *)
  f_chain_len : int;
  f_layout : (int * Chain.slot) array;   (* every slot, in push order *)
  f_labels : (string * int) list;        (* label/anchor -> chain offset *)
  f_points : point list;
  (* jump tables: table address, anchor label, per-entry target label *)
  f_tables : (int64 * string * string list) list;
  (* P1 opaque array: base address, parameters, per-class residues *)
  f_p1 : (int64 * Config.p1_params * int array) option;
}

type t = {
  a_ss_addr : int64;            (* stack-switching array *)
  a_funcret : int64;            (* shared function-return gadget *)
  a_pool_lo : int64;            (* synthesized gadgets live in [lo, hi) *)
  a_pool_hi : int64;
  a_gadgets : gadget_rec list;
  a_funcs : func list;          (* successfully rewritten functions only *)
}

(* Address -> gadget claim map, the verifier's central lookup. *)
let gadget_map t =
  let h = Hashtbl.create (List.length t.a_gadgets) in
  List.iter (fun g -> Hashtbl.replace h g.g_addr g) t.a_gadgets;
  h
