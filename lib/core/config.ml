(* Rewriter configuration: which strengthening predicates are active and with
   what parameters (Table I terminology). *)

type p1_params = {
  n : int;          (* residue classes encoded in the array *)
  s : int;          (* period stride; s > n leaves garbage cells *)
  p : int;          (* repetitions (power of two: f(x) is masked to p-1) *)
  m : int;          (* modulus; power of two uses the mask fast path,
                       otherwise a div-based extraction sequence is used *)
}

(* Paper setting (§VII-A): n=4, s=n, p=32.  The paper uses m=7; we default to
   m=8 so residue extraction is a single AND, which lowers chain register
   pressure; see EXPERIMENTS.md for the (immaterial) difference. *)
let default_p1 = { n = 4; s = 4; p = 32; m = 8 }

type p3_variant =
  | P3_for              (* FOR state-forking loops, adapted from [14] *)
  | P3_array            (* opaque input-derived updates to the P1 array *)

type p3_params = {
  k : float;            (* fraction of eligible program points shielded *)
  variant : p3_variant;
  max_iters : int;      (* loop bound: counter is masked to this many values *)
}

let default_p3 k = { k; variant = P3_for; max_iters = 63 }

type t = {
  seed : int;
  p1 : p1_params option;
  p2 : bool;
  p3 : p3_params option;
  gadget_confusion : bool;
  skew_prob : int;          (* percent of program points followed by an
                               unaligned RSP update (needs gadget_confusion) *)
  imm_confusion_prob : int; (* percent of immediates encoded as address
                               differences (needs gadget_confusion) *)
  variants : int;           (* gadget diversification factor *)
  spill_slots : int;        (* per-function scratch spill capacity *)
  read_only_chains : bool;  (* reserved: see §IV-C *)
  debug_unbalanced_epilogue : bool;
                            (* test-only fault injection: emit an epilogue
                               that leaves the virtual stack 8 bytes off,
                               the seeded rewriter bug Stackdisc must catch *)
}

let default = {
  seed = 1;
  p1 = None;
  p2 = false;
  p3 = None;
  gadget_confusion = false;
  skew_prob = 15;
  imm_confusion_prob = 20;
  variants = 3;
  spill_slots = 2;
  read_only_chains = false;
  debug_unbalanced_epilogue = false;
}

(* ROP_k of Table I: P1 at the paper's parameters plus P3 at fraction [k]
   (P2 and confusion are orthogonal switches used by the ROP-aware
   experiments, disabled for the DSE measurements as in §VII-B). *)
let rop_k ?(seed = 1) ?(p2 = false) ?(confusion = false) k = {
  default with
  seed;
  p1 = Some default_p1;
  p2;
  p3 = (if k > 0.0 then Some (default_p3 k) else None);
  gadget_confusion = confusion;
}

(* Plain encoding with no strengthening predicates. *)
let plain ?(seed = 1) () = { default with seed }

let describe t =
  let b = Buffer.create 64 in
  Buffer.add_string b "ROP";
  (match t.p1 with
   | Some p ->
     Buffer.add_string b
       (Printf.sprintf "+P1(n=%d,s=%d,p=%d,m=%d)" p.n p.s p.p p.m)
   | None -> ());
  if t.p2 then Buffer.add_string b "+P2";
  (match t.p3 with
   | Some p ->
     Buffer.add_string b
       (Printf.sprintf "+P3(%s,k=%.2f)"
          (match p.variant with P3_for -> "for" | P3_array -> "array")
          p.k)
   | None -> ());
  if t.gadget_confusion then Buffer.add_string b "+GC";
  Buffer.contents b
