(* Rewriter configuration: which strengthening predicates are active and with
   what parameters (Table I terminology). *)

type p1_params = {
  n : int;          (* residue classes encoded in the array *)
  s : int;          (* period stride; s > n leaves garbage cells *)
  p : int;          (* repetitions (power of two: f(x) is masked to p-1) *)
  m : int;          (* modulus; power of two uses the mask fast path,
                       otherwise a div-based extraction sequence is used *)
}

(* Paper setting (§VII-A): n=4, s=n, p=32.  The paper uses m=7; we default to
   m=8 so residue extraction is a single AND, which lowers chain register
   pressure; see EXPERIMENTS.md for the (immaterial) difference. *)
let default_p1 = { n = 4; s = 4; p = 32; m = 8 }

type p3_variant =
  | P3_for              (* FOR state-forking loops, adapted from [14] *)
  | P3_array            (* opaque input-derived updates to the P1 array *)

type p3_params = {
  k : float;            (* fraction of eligible program points shielded *)
  variant : p3_variant;
  max_iters : int;      (* loop bound: counter is masked to this many values *)
}

let default_p3 k = { k; variant = P3_for; max_iters = 63 }

type t = {
  seed : int;
  p1 : p1_params option;
  p2 : bool;
  p3 : p3_params option;
  gadget_confusion : bool;
  skew_prob : int;          (* percent of program points followed by an
                               unaligned RSP update (needs gadget_confusion) *)
  imm_confusion_prob : int; (* percent of immediates encoded as address
                               differences (needs gadget_confusion) *)
  opaque_constants : bool;  (* ROPfuscator layer: chain slot values (gadget
                               addresses and immediates) are stored as
                               residuals and recovered at runtime by opaque
                               arithmetic over the P1 array (needs p1) *)
  opaque_prob : int;        (* percent of eligible slots opaque-encoded *)
  instr_hiding : bool;      (* ROPfuscator layer: smuggle real roplets into
                               P3 predicate bodies so predicate code is no
                               longer semantically dead (needs p3) *)
  per_function : per_function option;
                            (* ROPfuscator layer: strong layers for
                               "sensitive" functions, [pf_weak] elsewhere *)
  variants : int;           (* gadget diversification factor *)
  spill_slots : int;        (* per-function scratch spill capacity *)
  read_only_chains : bool;  (* reserved: see §IV-C *)
  debug_unbalanced_epilogue : bool;
                            (* test-only fault injection: emit an epilogue
                               that leaves the virtual stack 8 bytes off,
                               the seeded rewriter bug Stackdisc must catch *)
  debug_opaque_residue : bool;
                            (* test-only fault injection: materialize one
                               opaque-encoded slot with the wrong residue
                               class, which ropcheck's byte check must catch *)
  debug_hidden_payload : bool;
                            (* test-only fault injection: append a stray
                               write to a defined register inside one hidden
                               payload, which roplint Transval must catch *)
}

and per_function = {
  pf_sensitive : string list option;
                            (* names getting the full config; None selects
                               by the deterministic name heuristic below *)
  pf_weak : t;              (* config applied to every other function *)
}

let default = {
  seed = 1;
  p1 = None;
  p2 = false;
  p3 = None;
  gadget_confusion = false;
  skew_prob = 15;
  imm_confusion_prob = 20;
  opaque_constants = false;
  opaque_prob = 60;
  instr_hiding = false;
  per_function = None;
  variants = 3;
  spill_slots = 2;
  read_only_chains = false;
  debug_unbalanced_epilogue = false;
  debug_opaque_residue = false;
  debug_hidden_payload = false;
}

(* ROP_k of Table I: P1 at the paper's parameters plus P3 at fraction [k]
   (P2 and confusion are orthogonal switches used by the ROP-aware
   experiments, disabled for the DSE measurements as in §VII-B).  [opaque]
   and [hiding] stack the ROPfuscator layers on top; [pf] wraps the result
   in a per-function split whose weak side is the bare ROP_0 encoding. *)
let rop_k ?(seed = 1) ?(p2 = false) ?(confusion = false) ?(opaque = false)
    ?(hiding = false) ?(pf = false) k =
  let base = {
    default with
    seed;
    p1 = Some default_p1;
    p2;
    p3 = (if k > 0.0 then Some (default_p3 k) else None);
    gadget_confusion = confusion;
    opaque_constants = opaque;
    instr_hiding = hiding;
  } in
  if not pf then base
  else
    { base with
      per_function =
        Some { pf_sensitive = None;
               pf_weak = { default with seed; p1 = Some default_p1 } } }

(* Plain encoding with no strengthening predicates. *)
let plain ?(seed = 1) () = { default with seed }

(* Default sensitivity heuristic: a deterministic, platform-independent
   function of the name (byte-sum parity), so roughly half of any corpus
   lands on each side of a per-function split and both paths stay hot in
   every differential run. *)
let name_sensitive name =
  let s = ref 0 in
  String.iter (fun ch -> s := !s + Char.code ch) name;
  !s land 1 = 1

(* Resolve the configuration that actually applies to [fname].  The weak
   side inherits the parent seed (one rewrite session, one RNG universe)
   and any further nesting is stripped: per-function splits do not recurse. *)
let for_function t fname =
  match t.per_function with
  | None -> t
  | Some pf ->
    let sensitive =
      match pf.pf_sensitive with
      | Some names -> List.mem fname names
      | None -> name_sensitive fname
    in
    if sensitive then { t with per_function = None }
    else { pf.pf_weak with seed = t.seed; per_function = None }

let describe t =
  let b = Buffer.create 64 in
  Buffer.add_string b "ROP";
  (match t.p1 with
   | Some p ->
     Buffer.add_string b
       (Printf.sprintf "+P1(n=%d,s=%d,p=%d,m=%d)" p.n p.s p.p p.m)
   | None -> ());
  if t.p2 then Buffer.add_string b "+P2";
  (match t.p3 with
   | Some p ->
     Buffer.add_string b
       (Printf.sprintf "+P3(%s,k=%.2f)"
          (match p.variant with P3_for -> "for" | P3_array -> "array")
          p.k)
   | None -> ());
  if t.gadget_confusion then Buffer.add_string b "+GC";
  if t.opaque_constants then
    Buffer.add_string b (Printf.sprintf "+OC(p=%d)" t.opaque_prob);
  if t.instr_hiding then Buffer.add_string b "+IH";
  (match t.per_function with
   | Some pf ->
     Buffer.add_string b
       (Printf.sprintf "+PF(%s)"
          (match pf.pf_sensitive with
           | Some names -> String.concat "," names
           | None -> "auto"))
   | None -> ());
  Buffer.contents b
