(* Strengthening predicates P2 and P3 (§V-B, §V-C).

   P1 lives in Builder.p1_branch since it replaces the RSP update sequence
   itself; P2 guards and P3 state-widening sequences are separate gadget
   groups inserted around the translated roplets. *)

open X86.Isa
module R = Analysis.Regset

(* The value whose (non-)zeroness encodes an E/NE branch decision, recovered
   from the flag-setting instruction so P2 can recompute it
   flag-independently at the branch targets. *)
type branch_value =
  | Bv_reg of reg                    (* test r, r *)
  | Bv_sub_imm of reg * int64        (* cmp r, imm *)
  | Bv_sub_reg of reg * reg          (* cmp r1, r2 *)

let branch_value_of_instr = function
  | Alu (Test, W64, Reg a, Reg b) when a = b -> Some (Bv_reg a)
  | Alu (Cmp, W64, Reg a, Imm v) -> Some (Bv_sub_imm (a, v))
  | Alu (Cmp, W64, Reg a, Reg b) -> Some (Bv_sub_reg (a, b))
  | _ -> None

let branch_value_regs = function
  | Bv_reg r -> R.of_reg r
  | Bv_sub_imm (r, _) -> R.of_reg r
  | Bv_sub_reg (a, b) -> R.union (R.of_reg a) (R.of_reg b)

(* Load d into scratch register s1. *)
let load_d b s1 = function
  | Bv_reg r -> Builder.g b [ Mov (W64, Reg s1, Reg r) ]
  | Bv_sub_imm (r, v) ->
    Builder.g b [ Mov (W64, Reg s1, Reg r) ];
    Builder.g b [ Alu (Sub, W64, Reg s1, Imm v) ]
  | Bv_sub_reg (r1, r2) ->
    Builder.g b [ Mov (W64, Reg s1, Reg r1) ];
    Builder.g b [ Alu (Sub, W64, Reg s1, Reg r2) ]

(* Guard for a path that is legitimate when d == 0:   rsp += 8*d.
   A brute-forced flip arrives with d != 0 and RSP flows into unintended
   code by a multiple of 8 (§V-B). *)
let guard_zero_ok b ~live bv =
  Builder.with_scratch b ~live ~avoid:(branch_value_regs bv) 1 (fun regs ->
      match regs with
      | [ s1 ] ->
        load_d b s1 bv;
        Builder.g b [ Shift (Shl, W64, Reg s1, S_imm 3) ];
        Builder.g b [ Alu (Add, W64, Reg RSP, Reg s1) ]
      | regs ->
        Builder.template_error "Predicates.guard_zero_ok (P2 guard, 1 scratch)"
          regs)

(* Guard for a path legitimate when d != 0:  rsp += 8*(1 - notZero(d)), with
   notZero computed flag-independently so the attacker cannot flip it. *)
let guard_nonzero_ok b ~live bv =
  Builder.with_scratch b ~live ~avoid:(branch_value_regs bv) 2 (fun regs ->
      match regs with
      | [ s1; s2 ] ->
        load_d b s1 bv;
        (* notZero(n) = (n | -n) >> 63 *)
        Builder.g b [ Mov (W64, Reg s2, Reg s1); Unary (Neg, W64, Reg s2) ];
        Builder.g b [ Alu (Or, W64, Reg s1, Reg s2) ];
        Builder.g b [ Shift (Shr, W64, Reg s1, S_imm 63) ];
        Builder.g b [ Alu (Xor, W64, Reg s1, Imm 1L) ];   (* 1 - notZero *)
        Builder.g b [ Shift (Shl, W64, Reg s1, S_imm 3) ];
        Builder.g b [ Alu (Add, W64, Reg RSP, Reg s1) ]
      | regs ->
        Builder.template_error
          "Predicates.guard_nonzero_ok (P2 guard, 2 scratch)" regs)

(* The guard a given edge needs: for an E-branch the taken path is legitimate
   when d == 0; for NE it is the other way around. *)
let taken_guard b ~live ~cc bv =
  match cc with
  | E -> guard_zero_ok b ~live bv
  | NE -> guard_nonzero_ok b ~live bv
  | O | NO | B | AE | BE | A | S | NS | P | NP | L | GE | LE | G ->
    invalid_arg "P2 guards only E/NE branches"

let fall_guard b ~live ~cc bv =
  match cc with
  | E -> guard_nonzero_ok b ~live bv
  | NE -> guard_zero_ok b ~live bv
  | O | NO | B | AE | BE | A | S | NS | P | NP | L | GE | LE | G ->
    invalid_arg "P2 guards only E/NE branches"

(* --- P3: state-space widening (§V-C) -------------------------------------- *)

(* Pick the "symbolic" register: a live value the later computation may
   depend on (approximating the paper's angr-based data-flow selection).
   [avoid] excludes registers a hidden payload defines: the identity
   fold-back reads sym after the payload, so sym must survive it. *)
let pick_sym ?(avoid = R.empty) b ~live =
  let candidates =
    List.filter
      (fun r ->
         R.mem_reg live r
         && not (R.mem_reg Builder.reserved r)
         && not (R.mem_reg avoid r))
      all_regs
  in
  match candidates with
  | [] -> None
  | cs -> Some (Util.Rng.choose b.Builder.rng cs)

(* Instruction hiding (ROPfuscator layer): a real roplet smuggled into the
   P3 predicate body, so the predicate computation is no longer
   semantically dead.  [pl_avoid] lists the registers the hidden roplet
   reads or writes (the predicate's scratch must not collide with them);
   [pl_emit] emits the roplet's slots, treating [extra_live] — the
   predicate registers still needed after the payload — as live. *)
type payload = {
  pl_avoid : R.t;
  pl_emit : extra_live:R.t -> unit;
}

(* First variant: FOR state-forking loop adapted from Ollivier et al. [14].
   A ROP loop counts up to the low bits of the symbolic register in a dead
   register, then folds the (identical) bits back: the value is preserved,
   but a path-oriented explorer sees [max_iters+1] distinct states. *)
let p3_for ?payload b ~live ~max_iters sym =
  let head = Builder.fresh b "p3h" in
  let done_ = Builder.fresh b "p3e" in
  let a_exit = Builder.fresh b "p3x" in
  let a_back = Builder.fresh b "p3b" in
  let avoid =
    match payload with
    | Some p -> R.add p.pl_avoid sym
    | None -> R.of_reg sym
  in
  Builder.with_scratch b ~live ~avoid 4 (fun regs ->
      match regs with
      | [ dead; cnt; t; u ] ->
        Builder.g b [ Mov (W64, Reg dead, Imm 0L) ];
        Builder.g b [ Mov (W64, Reg cnt, Reg sym) ];
        Builder.g b [ Alu (And, W64, Reg cnt, Imm (Int64.of_int max_iters)) ];
        Chain.label b.Builder.chain head;
        Builder.g b [ Alu (Test, W64, Reg cnt, Reg cnt) ];
        Builder.g b [ Mov (W64, Reg t, Imm 0L); Setcc (E, Reg t) ];
        Builder.g b [ Pop (Reg u) ];
        Chain.disp b.Builder.chain ~target:done_ ~anchor:a_exit ~bias:0L;
        Builder.g b [ Imul2 (W64, u, Reg t) ];
        Builder.g b [ Alu (Add, W64, Reg RSP, Reg u) ];
        Chain.anchor b.Builder.chain a_exit;
        Builder.g b [ Unary (Inc, W64, Reg dead) ];
        Builder.g b [ Unary (Dec, W64, Reg cnt) ];
        Builder.g b [ Pop (Reg u) ];
        Chain.disp b.Builder.chain ~target:head ~anchor:a_back ~bias:0L;
        Builder.g b [ Alu (Add, W64, Reg RSP, Reg u) ];
        Chain.anchor b.Builder.chain a_back;
        Chain.label b.Builder.chain done_;
        (* hidden roplet: real work emitted on the loop's exit path,
           before the fold-back reads [dead] and [sym].  The payload must
           not define either (pick_sym / pl_avoid guarantee it). *)
        (match payload with
         | Some p -> p.pl_emit ~extra_live:(R.of_reg dead)
         | None -> ());
        Builder.g b [ Alu (And, W64, Reg dead, Imm 0xFFL) ];
        Builder.g b [ Alu (Or, W64, Reg sym, Reg dead) ]
      | regs ->
        Builder.template_error "Predicates.p3_for (state fork, 4 scratch)"
          regs)

(* Second variant: opaque input-derived updates to the P1 array.  Adds a
   multiple of m to a cell selected by the symbolic register: every P1
   invariant survives, but branch offsets loaded later now (fake-)depend on
   input data, which trace simplification cannot remove without knowing the
   invariants (§V-C). *)
let p3_array b ~live sym =
  let p1 =
    match b.Builder.config.Config.p1 with
    | Some p -> p
    | None -> invalid_arg "P3 array variant requires P1"
  in
  let cls = Util.Rng.int b.Builder.rng p1.Config.n in
  Builder.with_scratch b ~live ~avoid:(R.of_reg sym) 3 (fun regs ->
      match regs with
      | [ s1; s2; s3 ] ->
        (* cell index (byte offset within the class) *)
        Builder.g b [ Mov (W64, Reg s1, Reg sym) ];
        Builder.g b [ Alu (And, W64, Reg s1, Imm (Int64.of_int (p1.Config.p - 1))) ];
        Builder.g b [ Pop (Reg s2) ];
        Builder.imm b (Int64.of_int (8 * p1.Config.s));
        Builder.g b [ Imul2 (W64, s1, Reg s2) ];
        (* opaque increment: m * (sym & 7) *)
        Builder.g b [ Mov (W64, Reg s3, Reg sym) ];
        Builder.g b [ Alu (And, W64, Reg s3, Imm 7L) ];
        Builder.g b [ Pop (Reg s2) ];
        Builder.imm b (Int64.of_int p1.Config.m);
        Builder.g b [ Imul2 (W64, s3, Reg s2) ];
        (* A[class + f(sym)*s] += m * (sym & 7) *)
        Builder.g b [ Pop (Reg s2) ];
        Builder.imm b
          (Int64.add b.Builder.p1_array (Int64.of_int (8 * cls)));
        Builder.g b
          [ Alu (Add, W64,
                 Mem { base = Some s2; index = Some (s1, 1); disp = 0L },
                 Reg s3) ]
      | regs ->
        Builder.template_error
          "Predicates.p3_array (array update, 3 scratch)" regs)

(* Insert a P3 instance at the current point if the configuration and RNG
   say so; flags are preserved when live.  When a [payload] is offered and
   a P3_for instance fires, the payload roplet is emitted inside the
   predicate body (instruction hiding); returns whether that happened so
   the caller knows not to emit the roplet again. *)
let maybe_p3 ?payload b ~live ~flags_live =
  match b.Builder.config.Config.p3 with
  | None -> false
  | Some p3 ->
    if Util.Rng.int b.Builder.rng 1000 < int_of_float (p3.Config.k *. 1000.)
    then begin
      let avoid =
        match payload with Some p -> p.pl_avoid | None -> R.empty
      in
      match pick_sym ~avoid b ~live with
      | None -> false
      | Some sym ->
        (* both variants write [sym] with a value-preserving opaque update
           (identity fold / array cell bump), so record it as borrowed: the
           static clobber check would otherwise flag a live-register write *)
        Builder.note_borrowed b (R.of_reg sym);
        let hidden = ref false in
        Builder.with_flags_preserved b ~flags_live (fun () ->
            match p3.Config.variant with
            | Config.P3_for ->
              p3_for ?payload b ~live ~max_iters:p3.Config.max_iters sym;
              hidden := Option.is_some payload
            | Config.P3_array ->
              if b.Builder.config.Config.p1 <> None then p3_array b ~live sym
              else begin
                p3_for ?payload b ~live ~max_iters:p3.Config.max_iters sym;
                hidden := Option.is_some payload
              end);
        !hidden
    end
    else false
