(* Convenience harness for calling a function inside a loaded image with the
   SysV-style convention used by the minic compiler: integer args in
   RDI, RSI, RDX, RCX, R8, R9; result in RAX.  The return address points at
   the exit stub, so a clean return halts the machine. *)

open X86.Isa

type result = {
  status : Machine.Exec.exit_status;
  rax : int64;
  steps : int;
  cpu : Machine.Cpu.t;
}

let arg_regs = [ RDI; RSI; RDX; RCX; R8; R9 ]

(* Prepare a machine with RIP at [func]'s entry and the stack set up for a
   call with [args]; does not run it.  [engine] picks the execution engine
   (default: the block-translating fast engine; [Machine.Exec.Ref] is the
   per-instruction reference stepper the fast engine is tested against). *)
let setup ?engine ?mem img ~func ~args =
  let mem = match mem with Some m -> m | None -> Image.load img in
  let cpu = Machine.Cpu.create mem in
  let entry = Image.symbol_addr img func in
  List.iteri
    (fun i a ->
       match List.nth_opt arg_regs i with
       | Some r -> Machine.Cpu.set cpu r a
       | None -> invalid_arg "Runner: more than 6 arguments")
    args;
  let sp = Int64.sub Image.stack_top 64L in
  Machine.Cpu.set cpu RSP sp;
  (* push return address = exit stub *)
  let sp = Int64.sub sp 8L in
  Machine.Memory.write_u64 mem sp Image.exit_stub_addr;
  Machine.Cpu.set cpu RSP sp;
  Machine.Cpu.set_rip cpu entry;
  Machine.Exec.make ?engine cpu

let call ?engine ?(fuel = 50_000_000) ?mem img ~func ~args =
  let t = setup ?engine ?mem img ~func ~args in
  let status = Machine.Exec.run ~fuel t in
  Machine.Exec.publish_metrics t;
  let cpu = t.Machine.Exec.cpu in
  { status; rax = Machine.Cpu.get cpu RAX; steps = cpu.Machine.Cpu.steps; cpu }

(* Call and insist on a clean return; fails with the exit status otherwise. *)
let call_exn ?engine ?fuel ?mem img ~func ~args =
  let r = call ?engine ?fuel ?mem img ~func ~args in
  match r.status with
  | Machine.Exec.Halted -> r
  | st ->
    failwith
      (Format.asprintf "Runner.call %s: %a" func Machine.Exec.pp_exit st)
