(* Binary image: the ELF stand-in.

   An image is a set of sections plus a symbol table.  The standard layout
   mirrors a small static Linux binary:
     .text   at 0x400000   (code, gadgets)
     .data   at 0x800000   (globals, jump tables)
     .rop    at 0xA00000   (ROP chains emitted by the rewriter)
   The stack for native execution grows down from 0x70000000, and the chain
   stacks / stack-switching array live inside .data. *)

let text_base = 0x400000L
let data_base = 0x800000L
let rop_base = 0xA00000L
let stack_top = 0x7000_0000L
let stack_size = 1 lsl 20

(* Executing this address halts the machine: the harness pushes it as the
   return address of the function under test. *)
let exit_stub_addr = 0x4FF000L

type section = {
  sec_name : string;
  sec_addr : int64;
  mutable sec_data : bytes;
  sec_writable : bool;
  sec_executable : bool;
}

type symbol = {
  sym_name : string;
  sym_addr : int64;
  sym_size : int;
  sym_is_function : bool;
}

type t = {
  mutable sections : section list;
  mutable symbols : symbol list;
}

let create () = { sections = []; symbols = [] }

let add_section t ~name ~addr ~data ~writable ~executable =
  let s = { sec_name = name; sec_addr = addr; sec_data = data;
            sec_writable = writable; sec_executable = executable } in
  t.sections <- t.sections @ [ s ];
  s

let find_section t name =
  List.find_opt (fun s -> s.sec_name = name) t.sections

let section_exn t name =
  match find_section t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "no section %s" name)

let section_end s = Int64.add s.sec_addr (Int64.of_int (Bytes.length s.sec_data))

(* Append bytes to a section, returning the address they start at. *)
let append t name (b : bytes) =
  let s = section_exn t name in
  let addr = section_end s in
  s.sec_data <- Bytes.cat s.sec_data b;
  addr

let add_symbol t ?(is_function = false) ~name ~addr ~size () =
  t.symbols <- { sym_name = name; sym_addr = addr; sym_size = size;
                 sym_is_function = is_function } :: t.symbols

let find_symbol t name =
  List.find_opt (fun s -> s.sym_name = name) t.symbols

let symbol_addr t name =
  match find_symbol t name with
  | Some s -> s.sym_addr
  | None -> invalid_arg (Printf.sprintf "undefined symbol %s" name)

let functions t = List.filter (fun s -> s.sym_is_function) t.symbols

let symbol_at t addr =
  List.find_opt (fun s ->
      Int64.compare s.sym_addr addr <= 0
      && Int64.compare addr (Int64.add s.sym_addr (Int64.of_int s.sym_size)) < 0)
    t.symbols

(* Patch [len] bytes of [v] (little-endian) at absolute address [addr]. *)
let patch t addr len v =
  let s =
    List.find_opt (fun s ->
        Int64.compare s.sec_addr addr <= 0
        && Int64.compare addr (section_end s) < 0)
      t.sections
  in
  match s with
  | None -> invalid_arg (Printf.sprintf "patch outside sections: 0x%Lx" addr)
  | Some s ->
    let off = Int64.to_int (Int64.sub addr s.sec_addr) in
    for i = 0 to len - 1 do
      Bytes.set s.sec_data (off + i)
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done

let read_byte t addr =
  let s =
    List.find_opt (fun s ->
        Int64.compare s.sec_addr addr <= 0
        && Int64.compare addr (section_end s) < 0)
      t.sections
  in
  match s with
  | None -> None
  | Some s -> Some (Char.code (Bytes.get s.sec_data (Int64.to_int (Int64.sub addr s.sec_addr))))

(* Replace the body of a function in .text with [b], padding the remainder of
   the old body with invalid bytes (0x00), as the rewriter does when
   installing a pivot stub over the original code. *)
let replace_function_body t sym (b : bytes) =
  let s = section_exn t ".text" in
  let off = Int64.to_int (Int64.sub sym.sym_addr s.sec_addr) in
  if Bytes.length b > sym.sym_size then
    invalid_arg (Printf.sprintf "replacement for %s too large (%d > %d)"
                   sym.sym_name (Bytes.length b) sym.sym_size);
  Bytes.blit b 0 s.sec_data off (Bytes.length b);
  Bytes.fill s.sec_data (off + Bytes.length b) (sym.sym_size - Bytes.length b) '\000'

(* Load the image into a fresh machine, stack mapped, exit stub installed. *)
let load t =
  let mem = Machine.Memory.create () in
  List.iter (fun s -> Machine.Memory.store_bytes mem s.sec_addr s.sec_data) t.sections;
  Machine.Memory.map mem (Int64.sub stack_top (Int64.of_int stack_size)) stack_size;
  Machine.Memory.store_bytes mem exit_stub_addr (X86.Encode.encode X86.Isa.Hlt);
  mem

(* Deep copy (sections are mutable). *)
let copy t = {
  sections =
    List.map (fun s -> { s with sec_data = Bytes.copy s.sec_data }) t.sections;
  symbols = t.symbols;
}

(* --- canonical serialization ------------------------------------------------

   A deterministic flat encoding ("ropimg/v1") used wherever two images must
   be compared byte-for-byte across process boundaries: the obfuscation
   server returns a serialized image as its artifact, and a served rewrite
   must be identical to a one-shot CLI rewrite of the same request.  The
   format is explicit rather than Marshal so its stability is a contract of
   this module, not of the runtime: sections and symbols in insertion order,
   every integer little-endian and fixed-width. *)

let magic = "ropimg/v1\n"

let serialize (t : t) : string =
  let b = Buffer.create 4096 in
  let u32 v =
    for i = 0 to 3 do
      Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  let u64 v =
    for i = 0 to 7 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done
  in
  let str s = u32 (String.length s); Buffer.add_string b s in
  Buffer.add_string b magic;
  u32 (List.length t.sections);
  List.iter
    (fun s ->
       str s.sec_name;
       u64 s.sec_addr;
       u32 ((if s.sec_writable then 1 else 0)
            lor (if s.sec_executable then 2 else 0));
       str (Bytes.to_string s.sec_data))
    t.sections;
  u32 (List.length t.symbols);
  List.iter
    (fun sy ->
       str sy.sym_name;
       u64 sy.sym_addr;
       u32 sy.sym_size;
       u32 (if sy.sym_is_function then 1 else 0))
    t.symbols;
  Buffer.contents b

exception Corrupt of string

let deserialize (s : string) : (t, string) Stdlib.result =
  let pos = ref 0 in
  let need n =
    if !pos + n > String.length s then raise (Corrupt "truncated image blob")
  in
  let u32 () =
    need 4;
    let v = ref 0 in
    for i = 3 downto 0 do v := (!v lsl 8) lor Char.code s.[!pos + i] done;
    pos := !pos + 4;
    !v
  in
  let u64 () =
    need 8;
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (Char.code s.[!pos + i]))
    done;
    pos := !pos + 8;
    !v
  in
  let str () =
    let n = u32 () in
    need n;
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  match
    need (String.length magic);
    if String.sub s 0 (String.length magic) <> magic then
      raise (Corrupt "bad image magic");
    pos := String.length magic;
    let nsec = u32 () in
    let sections =
      List.init nsec (fun _ ->
          let name = str () in
          let addr = u64 () in
          let flags = u32 () in
          let data = Bytes.of_string (str ()) in
          { sec_name = name; sec_addr = addr; sec_data = data;
            sec_writable = flags land 1 <> 0;
            sec_executable = flags land 2 <> 0 })
    in
    let nsym = u32 () in
    let symbols =
      List.init nsym (fun _ ->
          let name = str () in
          let addr = u64 () in
          let size = u32 () in
          let is_fn = u32 () <> 0 in
          { sym_name = name; sym_addr = addr; sym_size = size;
            sym_is_function = is_fn })
    in
    if !pos <> String.length s then raise (Corrupt "trailing bytes");
    { sections; symbols }
  with
  | img -> Ok img
  | exception Corrupt m -> Error m

(* Content address of an image: the digest of its canonical serialization. *)
let digest t = Digest.to_hex (Digest.string (serialize t))
