(* Pretty-printer for mini-C, C-flavoured.

   Exists for humans: the differential fuzzer prints shrunk failing programs
   with it, so a regression report reads like the small C function it is
   instead of an AST dump. *)

open Ast

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | Divs -> "/" | Divu -> "/u" | Rems -> "%" | Remu -> "%u"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Shl -> "<<" | Shr -> ">>u" | Sar -> ">>"
  | Eq -> "==" | Ne -> "!="
  | Lts -> "<" | Les -> "<=" | Gts -> ">" | Ges -> ">="
  | Ltu -> "<u" | Leu -> "<=u" | Gtu -> ">u" | Geu -> ">=u"
  | Land -> "&&" | Lor -> "||"

let unop_str = function Neg -> "-" | Bnot -> "~" | Lnot -> "!"

let width_str (w : width) =
  match w with
  | X86.Isa.W8 -> "u8" | X86.Isa.W16 -> "u16"
  | X86.Isa.W32 -> "u32" | X86.Isa.W64 -> "u64"

let rec expr_str (e : expr) =
  match e with
  | Const v ->
    if v >= -4096L && v <= 4096L then Int64.to_string v
    else Printf.sprintf "0x%Lx" v
  | Var n -> n
  | Load (w, signed, a) ->
    Printf.sprintf "*(%s%s*)(%s)" (if signed then "s" else "u")
      (String.sub (width_str w) 1 (String.length (width_str w) - 1))
      (expr_str a)
  | Addr_local n -> "&" ^ n
  | Addr_global n -> "&" ^ n
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Un (op, a) -> Printf.sprintf "%s(%s)" (unop_str op) (expr_str a)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args))
  | Cast (w, signed, a) ->
    Printf.sprintf "(%s%s)(%s)" (if signed then "s" else "u")
      (String.sub (width_str w) 1 (String.length (width_str w) - 1))
      (expr_str a)

let rec stmt_lines indent (s : stmt) : string list =
  let pad = String.make (2 * indent) ' ' in
  let block body = List.concat_map (stmt_lines (indent + 1)) body in
  match s with
  | Assign (n, e) -> [ Printf.sprintf "%s%s = %s;" pad n (expr_str e) ]
  | Store (w, a, v) ->
    [ Printf.sprintf "%s*(%s*)(%s) = %s;" pad (width_str w) (expr_str a)
        (expr_str v) ]
  | If (c, t, []) ->
    (Printf.sprintf "%sif (%s) {" pad (expr_str c))
    :: block t @ [ pad ^ "}" ]
  | If (c, t, e) ->
    (Printf.sprintf "%sif (%s) {" pad (expr_str c))
    :: block t @ [ pad ^ "} else {" ] @ block e @ [ pad ^ "}" ]
  | While (c, body) ->
    (Printf.sprintf "%swhile (%s) {" pad (expr_str c))
    :: block body @ [ pad ^ "}" ]
  | Do_while (body, c) ->
    (pad ^ "do {") :: block body
    @ [ Printf.sprintf "%s} while (%s);" pad (expr_str c) ]
  | For (init, c, step, body) ->
    let one s =
      match stmt_lines 0 s with [ l ] -> String.trim l | _ -> "<stmt>"
    in
    (Printf.sprintf "%sfor (%s %s; %s) {" pad (one init) (expr_str c)
       (String.concat "" (String.split_on_char ';' (one step))))
    :: block body @ [ pad ^ "}" ]
  | Switch (scrut, cases, default) ->
    (Printf.sprintf "%sswitch (%s) {" pad (expr_str scrut))
    :: List.concat_map
         (fun (k, body) ->
            (Printf.sprintf "%scase %d:" pad k) :: block body)
         cases
    @ ((pad ^ "default:") :: block default)
    @ [ pad ^ "}" ]
  | Return e -> [ Printf.sprintf "%sreturn %s;" pad (expr_str e) ]
  | Expr e -> [ Printf.sprintf "%s%s;" pad (expr_str e) ]
  | Break -> [ pad ^ "break;" ]
  | Continue -> [ pad ^ "continue;" ]

let func_str (f : func) =
  let header =
    Printf.sprintf "u64 %s(%s) {" f.fname
      (String.concat ", " (List.map (fun p -> "u64 " ^ p) f.params))
  in
  let decls =
    (match f.locals with
     | [] -> []
     | ls -> [ "  u64 " ^ String.concat ", " ls ^ ";" ])
    @ List.map (fun (n, sz) -> Printf.sprintf "  u8 %s[%d];" n sz) f.arrays
  in
  String.concat "\n"
    ((header :: decls) @ List.concat_map (stmt_lines 1) f.body @ [ "}" ])

let global_str = function
  | G_bytes (n, s) -> Printf.sprintf "u8 %s[%d] = \"...\";" n (String.length s)
  | G_zero (n, sz) -> Printf.sprintf "u8 %s[%d] = {0};" n sz
  | G_quads (n, qs) -> Printf.sprintf "u64 %s[%d] = {...};" n (List.length qs)

let program_str (p : program) =
  String.concat "\n\n"
    (List.map global_str p.globals @ List.map func_str p.funcs)
