(* Reference interpreter for mini-C.

   Serves as the semantic oracle: the property tests check that compiling a
   program and running it on the emulator produces exactly the values this
   interpreter computes.  Memory (globals, local arrays) is a real
   Machine.Memory so in-array pointer arithmetic behaves identically. *)

open Ast
module S = Machine.Semantics

exception Runtime_error of string

type state = {
  prog : program;
  mem : Machine.Memory.t;
  globals : (string, int64) Hashtbl.t;   (* symbol -> address *)
  mutable bump : int64;                  (* allocator for local arrays *)
  mutable fuel : int;
}

exception Return_exc of int64
exception Break_exc
exception Continue_exc

let create (prog : program) =
  let mem = Machine.Memory.create () in
  let globals = Hashtbl.create 8 in
  let addr = ref 0x800000L in
  List.iter
    (fun g ->
       let name, size =
         match g with
         | G_bytes (n, s) ->
           Machine.Memory.store_bytes mem !addr (Bytes.of_string s);
           (n, String.length s)
         | G_zero (n, size) ->
           Machine.Memory.map mem !addr size;
           (n, size)
         | G_quads (n, qs) ->
           List.iteri
             (fun i q ->
                Machine.Memory.write_u64 mem (Int64.add !addr (Int64.of_int (8 * i))) q)
             qs;
           (n, 8 * List.length qs)
       in
       Hashtbl.replace globals name !addr;
       addr := Int64.add !addr (Int64.of_int ((size + 15) land lnot 15)))
    prog.globals;
  { prog; mem; globals; bump = 0x2000000L; fuel = 10_000_000 }

let find_func st name =
  match List.find_opt (fun f -> f.fname = name) st.prog.funcs with
  | Some f -> f
  | None -> raise (Runtime_error ("undefined function " ^ name))

let bool_to_i64 b = if b then 1L else 0L

let eval_binop op a b =
  let shift_count b = Int64.to_int (Int64.logand b 63L) in
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Divs ->
    if b = 0L then raise (Runtime_error "division by zero") else Int64.div a b
  | Divu ->
    if b = 0L then raise (Runtime_error "division by zero")
    else Int64.unsigned_div a b
  | Rems ->
    if b = 0L then raise (Runtime_error "division by zero") else Int64.rem a b
  | Remu ->
    if b = 0L then raise (Runtime_error "division by zero")
    else Int64.unsigned_rem a b
  | Band -> Int64.logand a b
  | Bor -> Int64.logor a b
  | Bxor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (shift_count b)
  | Shr -> Int64.shift_right_logical a (shift_count b)
  | Sar -> Int64.shift_right a (shift_count b)
  | Eq -> bool_to_i64 (a = b)
  | Ne -> bool_to_i64 (a <> b)
  | Lts -> bool_to_i64 (Int64.compare a b < 0)
  | Les -> bool_to_i64 (Int64.compare a b <= 0)
  | Gts -> bool_to_i64 (Int64.compare a b > 0)
  | Ges -> bool_to_i64 (Int64.compare a b >= 0)
  | Ltu -> bool_to_i64 (Int64.unsigned_compare a b < 0)
  | Leu -> bool_to_i64 (Int64.unsigned_compare a b <= 0)
  | Gtu -> bool_to_i64 (Int64.unsigned_compare a b > 0)
  | Geu -> bool_to_i64 (Int64.unsigned_compare a b >= 0)
  | Land | Lor -> assert false

let rec eval st vars (e : expr) =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise (Runtime_error "interpreter out of fuel");
  match e with
  | Const v -> v
  | Var n ->
    (match Hashtbl.find_opt vars n with
     | Some v -> v
     | None -> raise (Runtime_error ("unbound variable " ^ n)))
  | Load (w, signed, a) ->
    let addr = eval st vars a in
    let v = Machine.Memory.read st.mem addr (X86.Isa.width_bytes w) in
    if signed then S.sign_extend w v else v
  | Addr_local n ->
    (match Hashtbl.find_opt vars ("&" ^ n) with
     | Some v -> v
     | None -> raise (Runtime_error ("unbound array " ^ n)))
  | Addr_global n ->
    (match Hashtbl.find_opt st.globals n with
     | Some v -> v
     | None -> raise (Runtime_error ("unbound global " ^ n)))
  | Bin (Land, a, b) ->
    if eval st vars a <> 0L then bool_to_i64 (eval st vars b <> 0L) else 0L
  | Bin (Lor, a, b) ->
    if eval st vars a <> 0L then 1L else bool_to_i64 (eval st vars b <> 0L)
  | Bin (op, a, b) ->
    let va = eval st vars a in
    let vb = eval st vars b in
    eval_binop op va vb
  | Un (Neg, a) -> Int64.neg (eval st vars a)
  | Un (Bnot, a) -> Int64.lognot (eval st vars a)
  | Un (Lnot, a) -> bool_to_i64 (eval st vars a = 0L)
  | Call (f, args) ->
    let vals = List.map (eval st vars) args in
    call st f vals
  | Cast (w, signed, a) ->
    let v = S.truncate w (eval st vars a) in
    if signed then S.sign_extend w v else v

and exec st vars (s : stmt) =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise (Runtime_error "interpreter out of fuel");
  match s with
  | Assign (n, e) -> Hashtbl.replace vars n (eval st vars e)
  | Store (w, a, v) ->
    let addr = eval st vars a in
    let value = eval st vars v in
    Machine.Memory.write st.mem addr (X86.Isa.width_bytes w) value
  | If (c, t, e) ->
    if eval st vars c <> 0L then exec_list st vars t else exec_list st vars e
  | While (c, body) ->
    (try
       while eval st vars c <> 0L do
         try exec_list st vars body with Continue_exc -> ()
       done
     with Break_exc -> ())
  | Do_while (body, c) ->
    (try
       let continue = ref true in
       while !continue do
         (try exec_list st vars body with Continue_exc -> ());
         continue := eval st vars c <> 0L
       done
     with Break_exc -> ())
  | For (init, c, step, body) ->
    exec st vars init;
    (try
       while eval st vars c <> 0L do
         (try exec_list st vars body with Continue_exc -> ());
         exec st vars step
       done
     with Break_exc -> ())
  | Switch (scrut, cases, default) ->
    let v = eval st vars scrut in
    (try
       match List.find_opt (fun (k, _) -> Int64.of_int k = v) cases with
       | Some (_, body) -> exec_list st vars body
       | None -> exec_list st vars default
     with Break_exc -> ())
  | Return e -> raise (Return_exc (eval st vars e))
  | Expr e -> ignore (eval st vars e)
  | Break -> raise Break_exc
  | Continue -> raise Continue_exc

and exec_list st vars body = List.iter (exec st vars) body

and call st fname args =
  let f = find_func st fname in
  if List.length args <> List.length f.params then
    raise (Runtime_error (Printf.sprintf "%s: arity mismatch" fname));
  let vars = Hashtbl.create 16 in
  List.iter2 (fun p a -> Hashtbl.replace vars p a) f.params args;
  List.iter (fun l -> Hashtbl.replace vars l 0L) f.locals;
  List.iter
    (fun (name, size) ->
       Machine.Memory.map st.mem st.bump size;
       Hashtbl.replace vars ("&" ^ name) st.bump;
       st.bump <- Int64.add st.bump (Int64.of_int ((size + 15) land lnot 15)))
    f.arrays;
  match exec_list st vars f.body with
  | () -> 0L
  | exception Return_exc v -> v

(* Run [fname] on [args] in a fresh state; returns the 64-bit result. *)
let run ?fuel prog fname args =
  let st = create prog in
  (match fuel with Some f -> st.fuel <- f | None -> ());
  call st fname args

(* Like [run], but also hands back the final state so callers can inspect
   observable memory effects (the differential oracle compares global-buffer
   contents across execution backends). *)
let run_state ?fuel prog fname args =
  let st = create prog in
  (match fuel with Some f -> st.fuel <- f | None -> ());
  let r = call st fname args in
  (r, st)

let global_addr st name = Hashtbl.find_opt st.globals name
