(* roplint driver: run the four analysis passes over one rewrite result.

   Per pass: an Obs span + counters, and wall/CPU time deltas recorded in
   the report so the JSON artifact can gate analysis-time regressions the
   way @bench gates the emulator. *)

module A = Ropc.Audit
module F = Verify.Finding

type timing = {
  t_pass : string;
  t_wall_s : float;
  t_cpu_s : float;
}

type report = {
  r_findings : F.t list;           (* all passes, in pass order *)
  r_transval : Transval.result option;
  r_stealth : Stealth.t;
  r_poolbloat : Poolbloat.t;
  r_stackdisc_stats : (string * Fixpoint.stats) list;
  r_timings : timing list;
}

let timed name f =
  let w0 = Unix.gettimeofday () in
  let c0 = Unix.times () in
  let v = Obs.Trace.with_span ("roplint." ^ name) f in
  let c1 = Unix.times () in
  let w1 = Unix.gettimeofday () in
  let cpu =
    Unix.(c1.tms_utime +. c1.tms_stime -. c0.tms_utime -. c0.tms_stime)
  in
  (v, { t_pass = name; t_wall_s = w1 -. w0; t_cpu_s = cpu })

let count_findings pass fs =
  if Obs.Metrics.enabled () then begin
    let e, w, i = F.counts fs in
    Obs.Metrics.count (Printf.sprintf "roplint.%s.errors" pass) e;
    Obs.Metrics.count (Printf.sprintf "roplint.%s.warnings" pass) w;
    Obs.Metrics.count (Printf.sprintf "roplint.%s.infos" pass) i
  end

let lint ?(transval = true) ~(orig : Image.t)
    ~(rewritten : Image.t) (audit : A.t) : report =
  let (sd_findings, sd_stats), t_sd =
    timed "stackdisc" (fun () ->
        let nf, nstats = Stackdisc.native_pass orig in
        let cf, cstats = Stackdisc.chain_pass audit in
        (nf @ cf, nstats @ cstats))
  in
  count_findings "stackdisc" sd_findings;
  let tv, t_tv =
    if transval then
      let tv, t =
        timed "transval" (fun () -> Transval.run ~orig ~rewritten audit)
      in
      count_findings "transval" tv.Transval.tv_findings;
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.count "roplint.transval.proven" tv.Transval.tv_proven;
        Obs.Metrics.count "roplint.transval.unproven" tv.Transval.tv_unproven
      end;
      (Some tv, [ t ])
    else (None, [])
  in
  let st, t_st = timed "stealth" (fun () -> Stealth.run ~rewritten audit) in
  count_findings "stealth" st.Stealth.sl_findings;
  let pb, t_pb = timed "poolbloat" (fun () -> Poolbloat.run audit) in
  count_findings "poolbloat" pb.Poolbloat.pb_findings;
  let tv_findings =
    match tv with Some t -> t.Transval.tv_findings | None -> []
  in
  { r_findings =
      sd_findings @ tv_findings @ st.Stealth.sl_findings
      @ pb.Poolbloat.pb_findings;
    r_transval = tv;
    r_stealth = st;
    r_poolbloat = pb;
    r_stackdisc_stats = sd_stats;
    r_timings = (t_sd :: t_tv) @ [ t_st; t_pb ] }
