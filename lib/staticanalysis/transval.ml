(* Translation validation: per-rewritten-region equivalence.

   For every audit point that records an original instruction address
   (p_addr <> 0), the rewriter claims the point's chain slots implement
   exactly that instruction.  This pass checks the claim by dual symbolic
   execution: both the original instruction and its ROP lowering run from
   one shared fully-symbolic machine state (each register an 8-byte
   Input-vector, each flag a symbolic bit), and the final states are
   compared on the registers/flags the liveness facts say matter, plus the
   ordered memory write logs.

   Only *directly-lowered* regions are validated: stack-shaped instructions
   (push/pop/leave/anything mentioning rsp) are re-expressed against the
   virtual stack, and calls/branches/returns are re-expressed as stack
   switches or displacement arithmetic, so their state shape is
   intentionally different — those are Stackdisc's job.  Skipped regions
   are listed with the reason, never silently dropped.

   Equivalence oracle, two tiers:
   1. syntactic — the symbolic result expressions are structurally equal
      (spill/restore round-trips are transparent thanks to the symbolic
      store's exact-match forwarding);
   2. evaluation — both sides are evaluated under K seeded random input
      models (the same total algebra the repo's solver is built on); any
      disagreeing model is a definite counterexample and becomes an
      error-severity finding, agreement on all K models marks the region
      proven by the "eval" oracle.

   Chain-side writes to the rewriter's private state (ss array, spill
   slots, flag spill, all in .rop — a section the original image does not
   have) are filtered out of the write-log comparison by the concrete
   address test "not inside any original-image section". *)

open X86.Isa
module R = Analysis.Regset
module A = Ropc.Audit
module E = Symex.Expr
module S = Symex.Sym_state
module F = Verify.Finding

type verdict =
  | Proven of string              (* which oracle: "syntactic" / "eval" *)
  | Unproven of string            (* reason *)

type region = {
  rg_func : string;
  rg_addr : int64;                (* original instruction address *)
  rg_desc : string;               (* audit point description *)
  rg_verdict : verdict;
}

type result = {
  tv_regions : region list;       (* every eligible region, in audit order *)
  tv_skipped : (string * int64 * string) list;   (* func, addr, reason *)
  tv_proven : int;
  tv_unproven : int;
  tv_findings : F.t list;
}

(* --- shared symbolic initial state ---------------------------------------- *)

(* Register i is bytes 8i..8i+7 of the input vector; flags are bits of
   bytes 128..132. *)
let reg_expr i =
  let rec go k acc =
    if k = 8 then acc
    else
      go (k + 1)
        (E.bin E.Or acc
           (E.bin E.Shl (E.Input ((8 * i) + k)) (E.Const (Int64.of_int (8 * k)))))
  in
  go 1 (E.Input (8 * i))

let flag_expr j = E.bin E.And (E.Input (128 + j)) E.one

let init_state mem rip rsp =
  let st = S.create mem rip in
  for i = 0 to 15 do
    st.S.regs.(i) <- reg_expr i
  done;
  st.S.f_cf <- flag_expr 0;
  st.S.f_zf <- flag_expr 1;
  st.S.f_sf <- flag_expr 2;
  st.S.f_of <- flag_expr 3;
  st.S.f_pf <- flag_expr 4;
  S.set st RSP (E.Const rsp);
  st

let model =
  { S.toa = true;
    concretize = (fun _ _ -> None);
    on_write = (fun _ _ -> ()) }

(* --- syntactic equality ---------------------------------------------------- *)

(* Structural equality with a physical fast path.  [Load] nodes compare
   address, size and write log but NOT the base memory snapshot: the two
   sides run on different images by construction (original vs rewritten),
   and a Load that survives into a compared value references program state
   both sides share.  The approximation only ever misproves — a false
   syntactic mismatch falls through to the evaluation oracle. *)
let rec syn_eq a b =
  a == b
  || match a, b with
  | E.Const x, E.Const y -> x = y
  | E.Input x, E.Input y -> x = y
  | E.Bin (o1, a1, b1), E.Bin (o2, a2, b2) ->
    o1 = o2 && syn_eq a1 a2 && syn_eq b1 b2
  | E.Un (o1, a1), E.Un (o2, a2) -> o1 = o2 && syn_eq a1 a2
  | E.Ite (c1, t1, e1), E.Ite (c2, t2, e2) ->
    syn_eq c1 c2 && syn_eq t1 t2 && syn_eq e1 e2
  | E.Load (m1, a1, n1), E.Load (m2, a2, n2) ->
    n1 = n2 && syn_eq a1 a2
    && List.length m1.E.writes = List.length m2.E.writes
    && List.for_all2
         (fun (wa1, wv1, wn1) (wa2, wv2, wn2) ->
            wn1 = wn2 && syn_eq wa1 wa2 && syn_eq wv1 wv2)
         m1.E.writes m2.E.writes
  | _ -> false

(* --- region classification ------------------------------------------------- *)

let classify (i : instr) =
  match i with
  | Push _ | Pop _ | Leave -> Error "stack-shaped"
  | Call _ | Jmp _ | Jcc _ | Ret | Hlt -> Error "control transfer"
  | Nop -> Error "nop"
  | i ->
    let uses, defs = Analysis.Reguse.def_use i in
    if R.mem_reg defs RSP || R.mem_reg uses RSP then Error "mentions rsp"
    else Ok ()

(* A P3 state-forking loop shares the audit point of the instruction it
   shields, and its back-edge dispatch is input-dependent by design — the
   region is no longer a direct lowering.  The loop's labels/anchors are
   minted by [Builder.fresh] as "<fname>$p3<kind><n>" and survive in the
   slot array, which is how we recognize one. *)
let p3_shielded (p : A.point) =
  let is_p3 l =
    match String.index_opt l '$' with
    | Some k ->
      String.length l >= k + 3 && l.[k + 1] = 'p' && l.[k + 2] = '3'
    | None -> false
  in
  Array.exists
    (fun (_, s) ->
       match s with
       | Ropc.Chain.S_label l | Ropc.Chain.S_anchor l -> is_p3 l
       | _ -> false)
    p.A.p_slots

let slot_size = function
  | Ropc.Chain.S_gadget _ | Ropc.Chain.S_imm _ | Ropc.Chain.S_disp _
  | Ropc.Chain.S_opaque _ | Ropc.Chain.S_opaque_dispatch _ -> 8
  | Ropc.Chain.S_skew k -> k
  | Ropc.Chain.S_label _ | Ropc.Chain.S_anchor _ -> 0

(* First executable slot of the region and the offset one past its last
   byte (where the terminal ret must deliver rsp).  A dispatch slot's
   bytes hold the jmp-reg trampoline address, so it can open a region. *)
let region_bounds (p : A.point) =
  let entry = ref None and last = ref 0 in
  Array.iter
    (fun (off, s) ->
       (match s, !entry with
        | Ropc.Chain.S_gadget a, None -> entry := Some (off, a)
        | Ropc.Chain.S_opaque_dispatch { od_jop; _ }, None ->
          entry := Some (off, od_jop)
        | _ -> ());
       last := max !last (off + slot_size s))
    p.A.p_slots;
  (!entry, !last)

(* Instruction-hiding sub-region: the slice of a shielded point's slots
   holding the real roplet (byte range [lo, hi) of the chain, recorded by
   the rewriter).  Validating the slice as its own straight-line region
   keeps the semantic check alive even though the surrounding predicate is
   input-dependent. *)
let hidden_subpoint (p : A.point) =
  match p.A.p_hidden with
  | None -> None
  | Some (lo, hi) ->
    let slots =
      Array.of_list
        (List.filter (fun (off, _) -> off >= lo && off < hi)
           (Array.to_list p.A.p_slots))
    in
    let has_entry =
      Array.exists
        (fun (_, s) ->
           match s with
           | Ropc.Chain.S_gadget _ | Ropc.Chain.S_opaque_dispatch _ -> true
           | _ -> false)
        slots
    in
    if has_entry then Some { p with A.p_slots = slots; p_hidden = None }
    else None

(* --- oracles --------------------------------------------------------------- *)

let decode_one mem rip =
  let window = Machine.Memory.read_bytes_avail mem rip X86.Encode.max_instr_len in
  X86.Decode.decode window 0

(* Compared state: live/defined registers (minus rsp), flags when live,
   plus the filtered ordered write log. *)
type compared = {
  c_regs : (reg * E.t) list;
  c_flags : (string * E.t) list;
  c_writes : (E.t * E.t * int) list;
}

let compared_state ~(orig_img : Image.t) ~private_filter (p : A.point)
    (st : S.t) =
  let inside_orig a =
    List.exists
      (fun s ->
         Int64.compare s.Image.sec_addr a <= 0
         && Int64.compare a (Image.section_end s) < 0)
      orig_img.Image.sections
  in
  let writes =
    S.full_write_log st.S.mem
    |> List.filter (fun (addr, _, _) ->
        match addr with
        | E.Const a -> inside_orig a || not private_filter
        | _ -> true)
  in
  let want = R.add (R.union p.A.p_live p.A.p_defs) RSP in
  let regs =
    List.filter_map
      (fun r ->
         if r <> RSP && R.mem_reg want r then Some (r, S.get st r) else None)
      all_regs
  in
  let flags =
    if p.A.p_flags_live then
      [ ("cf", st.S.f_cf); ("zf", st.S.f_zf); ("sf", st.S.f_sf);
        ("of", st.S.f_of); ("pf", st.S.f_pf) ]
    else []
  in
  { c_regs = regs; c_flags = flags; c_writes = writes }

let syntactic_eq a b =
  List.length a.c_writes = List.length b.c_writes
  && List.for_all2
       (fun (r1, e1) (r2, e2) -> r1 = r2 && syn_eq e1 e2)
       a.c_regs b.c_regs
  && List.for_all2
       (fun (n1, e1) (n2, e2) -> n1 = n2 && syn_eq e1 e2)
       a.c_flags b.c_flags
  && List.for_all2
       (fun (a1, v1, n1) (a2, v2, n2) ->
          n1 = n2 && syn_eq a1 a2 && syn_eq v1 v2)
       a.c_writes b.c_writes

let n_models = 5

(* Evaluate both compared states under one input model; None = equal,
   Some what = first disagreement. *)
let eval_mismatch ~rng a b =
  let bytes = Array.init 136 (fun _ -> Util.Rng.int rng 256) in
  let input i = if i < Array.length bytes then bytes.(i) else 0 in
  let ev = E.evaluator ~input in
  if List.length a.c_writes <> List.length b.c_writes then
    Some "memory write count"
  else
    let reg_bad =
      List.find_map
        (fun ((r, e1), (_, e2)) ->
           if ev e1 <> ev e2 then Some (X86.Pp.reg_name r) else None)
        (List.combine a.c_regs b.c_regs)
    in
    let flag_bad () =
      List.find_map
        (fun ((n, e1), (_, e2)) -> if ev e1 <> ev e2 then Some n else None)
        (List.combine a.c_flags b.c_flags)
    in
    let write_bad () =
      List.find_map
        (fun ((a1, v1, n1), (a2, v2, n2)) ->
           if n1 <> n2 then Some "memory write size"
           else if ev a1 <> ev a2 then Some "memory write address"
           else if ev v1 <> ev v2 then Some "memory write value"
           else None)
        (List.combine a.c_writes b.c_writes)
    in
    match reg_bad with
    | Some r -> Some ("register " ^ r)
    | None -> (
        match flag_bad () with
        | Some f -> Some ("flag " ^ f)
        | None -> write_bad ())

(* --- per-region validation ------------------------------------------------- *)

let max_chain_steps = 4096

(* Once the lowered instruction stores through a symbolic base register,
   the symbolic store's exact-read fast path shuts off and even the next
   gadget's ret pops a [Load] instead of a constant.  Chain and pool pages
   are never the target of program stores (the rewriter keeps them
   disjoint from program data; W^X in spirit), so a control-transfer
   target loaded from a concrete chain address can be resolved against the
   image bytes — unless some *concrete-addressed* write in the log
   actually overlaps it, in which case we give up rather than read stale
   bytes. *)
let resolve_ctrl (f : A.func) e =
  match e with
  | E.Load (m, E.Const a, 8)
    when Int64.compare f.A.f_chain_base a <= 0
         && Int64.compare a
              (Int64.add f.A.f_chain_base (Int64.of_int f.A.f_chain_len))
            < 0 ->
    let overlaps =
      List.exists
        (fun (wa, _, wn) ->
           match wa with
           | E.Const w ->
             Int64.compare w (Int64.add a 8L) < 0
             && Int64.compare a (Int64.add w (Int64.of_int wn)) < 0
           | _ -> false)
        m.E.writes
    in
    if overlaps then None else Some (Machine.Memory.read_u64 m.E.base a)
  | _ -> None

(* Opaque gadget dispatch: a jmp-reg whose register was recovered through
   the P1 array, so the target expression is symbolic by design.  The
   dispatch slot just consumed sits 8 bytes below the current rsp; its
   audited target is what the recovery produces (ropcheck's byte check
   already ties the stored residual to the array's ground truth), so the
   jump resolves from the layout. *)
let resolve_dispatch (f : A.func) (st : S.t) =
  match S.get st RSP with
  | E.Const rsp ->
    let off = Int64.to_int (Int64.sub rsp f.A.f_chain_base) - 8 in
    Array.fold_left
      (fun acc (o, s) ->
         match acc, s with
         | None, Ropc.Chain.S_opaque_dispatch { od_target; _ } when o = off ->
           Some od_target
         | acc, _ -> acc)
      None f.A.f_layout
  | _ -> None

(* Execute the region's chain slots: start "mid-ret" onto the first gadget
   slot and run until the pending instruction is the terminal ret that
   would pop the next region's first slot. *)
let run_chain ~mem ~decode_cache (f : A.func) (p : A.point) =
  match region_bounds p with
  | None, _ -> Error "region has no gadget slot"
  | Some (entry_off, g0), end_off ->
    let base = f.A.f_chain_base in
    let end_rsp = Int64.add base (Int64.of_int end_off) in
    let st =
      init_state mem g0 (Int64.add base (Int64.of_int (entry_off + 8)))
    in
    let rec go steps =
      if steps > max_chain_steps then Error "chain step budget exhausted"
      else
        match decode_one mem st.S.rip with
        | Some (Ret, _) when S.get st RSP = E.Const end_rsp -> Ok st
        | _ -> (
            match S.step ~model ~decode_cache st with
            | S.O_ok -> go (steps + 1)
            | S.O_branch _ -> Error "unexpected symbolic branch in chain"
            | S.O_indirect e -> (
                match resolve_ctrl f e with
                | Some v ->
                  st.S.rip <- v;
                  go (steps + 1)
                | None -> (
                    match resolve_dispatch f st with
                    | Some v ->
                      st.S.rip <- v;
                      go (steps + 1)
                    | None ->
                      Error
                        (Format.asprintf
                           "chain ret/jmp target became symbolic: %a" E.pp e)))
            | S.O_halt -> Error "chain executed hlt"
            | S.O_fault m -> Error ("chain faulted: " ^ m))
    in
    go 0

let validate_region ~orig_img ~orig_mem ~rw_mem ~decode_orig ~decode_rw
    (f : A.func) (p : A.point) (i : instr) =
  (* original side: one instruction from a non-interfering rsp *)
  let orig_st = init_state orig_mem p.A.p_addr Image.stack_top in
  match S.step ~model ~decode_cache:decode_orig orig_st with
  | S.O_branch _ | S.O_indirect _ | S.O_halt ->
    Unproven "original instruction is a control transfer"
  | S.O_fault m -> Unproven ("original instruction faulted symbolically: " ^ m)
  | S.O_ok -> (
      match run_chain ~mem:rw_mem ~decode_cache:decode_rw f p with
      | Error reason -> Unproven reason
      | Ok chain_st ->
        let a =
          compared_state ~orig_img ~private_filter:false p orig_st
        in
        let b =
          compared_state ~orig_img ~private_filter:true p chain_st
        in
        if List.length a.c_writes <> List.length b.c_writes then
          Unproven
            (Printf.sprintf
               "write-log shape differs (%d original vs %d chain writes)"
               (List.length a.c_writes) (List.length b.c_writes))
        else if syntactic_eq a b then Proven "syntactic"
        else begin
          let rng =
            Util.Rng.of_key ~seed:0
              (Printf.sprintf "transval/%s/0x%Lx" f.A.f_name p.A.p_addr)
          in
          let rec models k =
            if k = n_models then Proven "eval"
            else
              match eval_mismatch ~rng a b with
              | None -> models (k + 1)
              | Some what ->
                Unproven
                  (Printf.sprintf
                     "counterexample model %d disagrees on %s (%s)" k what
                     (X86.Pp.instr_str i))
          in
          models 0
        end)

(* --- whole-audit run ------------------------------------------------------- *)

let run ~(orig : Image.t) ~(rewritten : Image.t) (audit : A.t) : result =
  let orig_mem = Image.load orig in
  let rw_mem = Image.load rewritten in
  let decode_orig = Hashtbl.create 256 in
  let regions = ref [] and skipped = ref [] and findings = ref [] in
  List.iter
    (fun (f : A.func) ->
       let decode_rw = Hashtbl.create 256 in
       let record (p : A.point) ~desc verdict =
         (match verdict with
          | Unproven reason
            when String.length reason >= 14
                 && String.sub reason 0 14 = "counterexample" ->
            findings :=
              F.make ~func:f.A.f_name ~addr:p.A.p_addr "transval-mismatch"
                ("lowering is NOT equivalent: " ^ reason)
              :: !findings
          | Unproven reason ->
            findings :=
              F.make ~severity:F.Warning ~func:f.A.f_name ~addr:p.A.p_addr
                "transval-unproven" ("equivalence not proven: " ^ reason)
              :: !findings
          | Proven _ -> ());
         regions :=
           { rg_func = f.A.f_name; rg_addr = p.A.p_addr; rg_desc = desc;
             rg_verdict = verdict }
           :: !regions
       in
       List.iter
         (fun (p : A.point) ->
            if p.A.p_addr <> 0L then
              match decode_one orig_mem p.A.p_addr with
              | None ->
                findings :=
                  F.make ~func:f.A.f_name ~addr:p.A.p_addr "transval-decode"
                    "original instruction bytes do not decode"
                  :: !findings
              | Some (i, _) -> (
                  match classify i with
                  | Error reason ->
                    skipped := (f.A.f_name, p.A.p_addr, reason) :: !skipped
                  | Ok () when p.A.p_hidden <> None -> (
                      (* the translation was smuggled into a P3 predicate
                         body; the surrounding loop is input-forking and
                         stays shielded, but the payload slice itself is a
                         straight-line region we can validate on its own *)
                      match hidden_subpoint p with
                      | None ->
                        skipped :=
                          (f.A.f_name, p.A.p_addr,
                           "hidden payload region has no executable slots")
                          :: !skipped
                      | Some hp ->
                        let verdict =
                          try
                            validate_region ~orig_img:orig ~orig_mem ~rw_mem
                              ~decode_orig ~decode_rw f hp i
                          with S.Sym_fault m ->
                            Unproven ("symbolic fault: " ^ m)
                        in
                        record p ~desc:(p.A.p_desc ^ " [hidden in p3 body]")
                          verdict)
                  | Ok () when p3_shielded p ->
                    skipped :=
                      (f.A.f_name, p.A.p_addr,
                       "p3-shielded (input-dependent state-forking loop)")
                      :: !skipped
                  | Ok () when fst (region_bounds p) = None ->
                    skipped :=
                      (f.A.f_name, p.A.p_addr, "no gadget slots emitted")
                      :: !skipped
                  | Ok () ->
                    let verdict =
                      try
                        validate_region ~orig_img:orig ~orig_mem ~rw_mem
                          ~decode_orig ~decode_rw f p i
                      with S.Sym_fault m ->
                        Unproven ("symbolic fault: " ^ m)
                    in
                    record p ~desc:p.A.p_desc verdict))
         f.A.f_points)
    audit.A.a_funcs;
  let regions = List.rev !regions in
  let proven =
    List.length
      (List.filter (fun r -> match r.rg_verdict with Proven _ -> true | _ -> false)
         regions)
  in
  { tv_regions = regions;
    tv_skipped = List.rev !skipped;
    tv_proven = proven;
    tv_unproven = List.length regions - proven;
    tv_findings = List.rev !findings }

let proven_rate r =
  let total = List.length r.tv_regions in
  if total = 0 then 100.0
  else 100.0 *. float_of_int r.tv_proven /. float_of_int total
