(* Generic worklist fixpoint engine.

   A pass supplies two things: a NODE module (hashable program points —
   block addresses for native CFGs, chain offsets for ROP chains) and a
   DOMAIN module (the abstract state at a point, with [join] for merging
   flows and [widen] for forcing convergence on domains with infinite
   ascending chains).  The engine owns the iteration strategy: a FIFO
   worklist seeded with the entry states, [join] at every merge point, and
   [widen] at points revisited more than [widen_after] times.  Passes stay
   ~100-line plug-ins: a domain record, a transfer function, and a findings
   walk over the solved table.

   Soundness notes:
   - [transfer] returns the *successor* states, so a node with no
     successors (ret, halt) simply returns [].
   - [widen old joined] must return an upper bound of both arguments and
     must stabilize any infinite ascending chain; domains of finite height
     (e.g. flat constant lattices over a bounded register file) may use
     [join] as their [widen].
   - [max_steps] is a hard backstop; exceeding it raises [Divergence] with
     the offending node so a broken widening shows up as a typed error, not
     a hung linter. *)

exception Divergence of string

module type NODE = sig
  type t
  val equal : t -> t -> bool
  val hash : t -> int
  val to_string : t -> string
end

module type DOMAIN = sig
  type t
  val equal : t -> t -> bool
  val join : t -> t -> t

  (* [widen old joined]: [old] is the pre-state currently stored at the
     node, [joined] is [join old incoming]. *)
  val widen : t -> t -> t
end

type stats = {
  iterations : int;     (* worklist pops *)
  widenings : int;      (* times [widen] replaced [join] *)
  nodes : int;          (* distinct nodes reached *)
}

module Make (N : NODE) (D : DOMAIN) = struct
  module H = Hashtbl.Make (N)

  type result = {
    state : D.t H.t;    (* node -> abstract state at entry to that node *)
    stats : stats;
  }

  let solve ?(widen_after = 8) ?(max_steps = 200_000)
      ~(entries : (N.t * D.t) list)
      ~(transfer : N.t -> D.t -> (N.t * D.t) list) () =
    let state = H.create 64 in
    let visits = H.create 64 in
    let queue = Queue.create () in
    let widenings = ref 0 in
    let schedule node incoming =
      match H.find_opt state node with
      | None ->
        H.replace state node incoming;
        Queue.add node queue
      | Some old ->
        let joined = D.join old incoming in
        if not (D.equal joined old) then begin
          let v = (match H.find_opt visits node with Some v -> v | None -> 0) in
          let next =
            if v >= widen_after then begin
              incr widenings;
              D.widen old joined
            end else joined
          in
          if not (D.equal next old) then begin
            H.replace state node next;
            Queue.add node queue
          end
        end
    in
    List.iter (fun (n, d) -> schedule n d) entries;
    let steps = ref 0 in
    while not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      incr steps;
      if !steps > max_steps then
        raise
          (Divergence
             (Printf.sprintf
                "fixpoint did not converge after %d steps (last node %s); \
                 domain widening is broken" max_steps (N.to_string node)));
      H.replace visits node
        (1 + (match H.find_opt visits node with Some v -> v | None -> 0));
      match H.find_opt state node with
      | None -> ()   (* unreachable: scheduled nodes always have state *)
      | Some d -> List.iter (fun (n, d') -> schedule n d') (transfer node d)
    done;
    { state;
      stats =
        { iterations = !steps; widenings = !widenings;
          nodes = H.length state } }
end

(* Ready-made node modules for the two program-point shapes in this repo. *)

module Int_node = struct
  type t = int
  let equal = Int.equal
  let hash = Hashtbl.hash
  let to_string = string_of_int
end

module Int64_node = struct
  type t = int64
  let equal = Int64.equal
  let hash = Hashtbl.hash
  let to_string a = Printf.sprintf "0x%Lx" a
end
