(* Stack-discipline / return-integrity pass.

   Two cooperating analyses, both instances of the Fixpoint engine:

   - [native]: classic stack-height tracking over the *original* program's
     CFG.  The height lattice is flat (Bot < Known k < Top); a function
     whose joined height at ret/tail sites is Known k <> 0 is definitely
     unbalanced (its ret pops garbage instead of the return address), and
     every call site targeting such a function is flagged too — the
     interprocedural step ropcheck's per-chain walk has no view of.

   - [chain]: abstract interpretation of each rewritten function's ROP
     chain, tracking the rewriter's *virtual* stack machinery, which
     ropcheck deliberately does not model.  The state is the virtual stack
     pointer's offset from its entry value ([delta], held in the ss frame
     cell), the ss frame index offset ([idx], ss[0] relative to entry), and
     a 16-register abstract file distinguishing the values the templates
     route stack addresses through:

       Cst v        known constant (pops of immediates, gadget addresses)
       CellPtr k    ss + ss[0]_entry + k  — address of a frame cell
       VspVal k     entry vsp + k         — a loaded virtual stack pointer
       Disps ts     a popped displacement slot; ts are label offsets

     The discipline being checked: at every stack unswitch
     (mov/xchg rsp, [cell]) the chain must read the *entry* frame cell
     (CellPtr 0) with delta = 0 — the virtual stack balanced — and at the
     epilogue's unswitch the frame index must have been released exactly
     once (idx = -8).  An unbalanced chain epilogue returns into the
     caller with a skewed native stack, which no linear slot walk can
     notice because every individual slot still checks out.

   Separation assumption (documented, not checked here): program stores go
   through VspVal or unknown pointers and never alias the ss array, the
   spill slots or the chain itself; ropcheck's layout pass keeps those
   regions disjoint by construction. *)

open X86.Isa
module R = Analysis.Regset
module A = Ropc.Audit
module F = Verify.Finding

(* --- flat int lattice ----------------------------------------------------- *)

type v = Bot | Known of int | Top

let v_join a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | Known a', Known b' when a' = b' -> a
  | _ -> Top

let v_add a k = match a with Known x -> Known (x + k) | v -> v

let v_str = function
  | Bot -> "unreached"
  | Known k -> Printf.sprintf "%+d" k
  | Top -> "unknown"

(* ========================================================================== *)
(* Native pass: stack height over the original CFG                            *)
(* ========================================================================== *)

module Native_dom = struct
  type t = { h : v; rbp : v }
  let equal (a : t) b = a = b
  let join a b = { h = v_join a.h b.h; rbp = v_join a.rbp b.rbp }
  let widen _old joined = joined   (* flat lattice: finite height *)
end

module Nfix = Fixpoint.Make (Fixpoint.Int64_node) (Native_dom)

(* Height convention: h = entry_rsp - current_rsp, so push => h += 8 and a
   ret is well-formed iff h = 0 (rsp points at the return address). *)
let native_instr (st : Native_dom.t) (i : instr) : Native_dom.t =
  match i with
  | Push _ -> { st with h = v_add st.h 8 }
  | Pop (Reg RSP) -> { st with h = Top }
  | Pop (Reg RBP) -> { h = v_add st.h (-8); rbp = Top }
  | Pop _ -> { st with h = v_add st.h (-8) }
  | Alu (Sub, W64, Reg RSP, Imm k) -> { st with h = v_add st.h (Int64.to_int k) }
  | Alu (Add, W64, Reg RSP, Imm k) -> { st with h = v_add st.h (- Int64.to_int k) }
  | Mov (W64, Reg RBP, Reg RSP) -> { st with rbp = st.h }
  | Mov (W64, Reg RSP, Reg RBP) -> { st with h = st.rbp }
  | Lea (RSP, { base = Some RSP; index = None; disp }) ->
    { st with h = v_add st.h (- Int64.to_int disp) }
  | Leave -> { h = v_add st.rbp (-8); rbp = Top }
  | Call _ -> st   (* assume balanced; unbalanced callees flagged per site *)
  | i ->
    let _, defs = Analysis.Reguse.def_use i in
    { h = (if R.mem_reg defs RSP then Top else st.h);
      rbp = (if R.mem_reg defs RBP then Top else st.rbp) }

type native_func = {
  nf_name : string;
  nf_addr : int64;
  nf_size : int;
  nf_ret_height : v;                      (* joined height at ret/tail sites *)
  nf_calls : (int64 * int64) list;        (* site addr, resolved target *)
  nf_findings : F.t list;
  nf_stats : Fixpoint.stats option;
}

let native_func (img : Image.t) (sym : Image.symbol) : native_func =
  let name = sym.Image.sym_name in
  let fail msg =
    { nf_name = name; nf_addr = sym.Image.sym_addr;
      nf_size = sym.Image.sym_size; nf_ret_height = Top; nf_calls = [];
      nf_findings =
        [ F.make ~severity:F.Warning ~func:name ~addr:sym.Image.sym_addr
            "stack-cfg-failed" ("CFG construction failed: " ^ msg) ];
      nf_stats = None }
  in
  match Analysis.Cfg.of_image img name with
  | exception Analysis.Cfg.Analysis_error msg -> fail msg
  | exception Invalid_argument msg -> fail msg
  | cfg ->
    let block a =
      match Hashtbl.find_opt cfg.Analysis.Cfg.blocks a with
      | Some b -> b
      | None ->
        invalid_arg
          (Printf.sprintf
             "Stackdisc.native_func: %s: no block at 0x%Lx" name a)
    in
    let flow a (st : Native_dom.t) =
      List.fold_left
        (fun st (bi : Analysis.Cfg.binstr) -> native_instr st bi.instr)
        st (block a).Analysis.Cfg.b_instrs
    in
    let transfer a st =
      let st = flow a st in
      List.map (fun s -> (s, st)) (Analysis.Cfg.successors (block a))
    in
    let entry = { Native_dom.h = Known 0; rbp = Top } in
    let r =
      Nfix.solve ~entries:[ (cfg.Analysis.Cfg.entry, entry) ] ~transfer ()
    in
    let findings = ref [] and ret_height = ref Bot and calls = ref [] in
    List.iter
      (fun a ->
         match Nfix.H.find_opt r.Nfix.state a with
         | None -> ()   (* unreachable block *)
         | Some st0 ->
           let b = block a in
           (* collect resolvable direct call targets *)
           List.iter
             (fun (bi : Analysis.Cfg.binstr) ->
                match bi.instr with
                | Call (J_rel d) ->
                  let tgt =
                    Int64.add bi.addr (Int64.of_int (bi.len + d))
                  in
                  calls := (bi.addr, tgt) :: !calls
                | _ -> ())
             b.Analysis.Cfg.b_instrs;
           let st = flow a st0 in
           match b.Analysis.Cfg.b_term with
           | Analysis.Cfg.T_ret | Analysis.Cfg.T_tail _ ->
             ret_height := v_join !ret_height st.Native_dom.h;
             let site =
               match b.Analysis.Cfg.b_term_instr with
               | Some ti -> ti.Analysis.Cfg.addr
               | None -> a
             in
             let what =
               match b.Analysis.Cfg.b_term with
               | Analysis.Cfg.T_ret -> "returns"
               | _ -> "tail-jumps"
             in
             (match st.Native_dom.h with
              | Known 0 | Bot -> ()
              | Known k ->
                findings :=
                  F.make ~func:name ~addr:site "stack-ret-unbalanced"
                    (Printf.sprintf
                       "%s with stack height %+d (must be 0: rsp must \
                        point at the return address)" what k)
                  :: !findings
              | Top ->
                findings :=
                  F.make ~severity:F.Warning ~func:name ~addr:site
                    "stack-ret-unknown"
                    (what ^ " with statically-unknown stack height")
                  :: !findings)
           | _ -> ())
      cfg.Analysis.Cfg.order;
    let findings =
      if cfg.Analysis.Cfg.failed then
        F.make ~severity:F.Warning ~func:name ~addr:sym.Image.sym_addr
          "stack-cfg-incomplete"
          "CFG has an unresolved indirect jump; height facts are partial"
        :: !findings
      else !findings
    in
    { nf_name = name; nf_addr = sym.Image.sym_addr;
      nf_size = sym.Image.sym_size;
      nf_ret_height = !ret_height; nf_calls = List.rev !calls;
      nf_findings = List.rev findings; nf_stats = Some r.Nfix.stats }

(* Whole-image native pass with the interprocedural call-site step. *)
let native_pass (img : Image.t) : F.t list * (string * Fixpoint.stats) list =
  let funcs =
    Image.functions img
    |> List.sort (fun a b -> Int64.compare a.Image.sym_addr b.Image.sym_addr)
    |> List.map (native_func img)
  in
  let by_range a =
    List.find_opt
      (fun nf ->
         Int64.compare nf.nf_addr a <= 0
         && Int64.compare a (Int64.add nf.nf_addr (Int64.of_int nf.nf_size)) < 0)
      funcs
  in
  let call_findings =
    List.concat_map
      (fun nf ->
         List.filter_map
           (fun (site, tgt) ->
              match by_range tgt with
              | Some callee ->
                (match callee.nf_ret_height with
                 | Known 0 | Bot | Top -> None
                 | Known k ->
                   Some
                     (F.make ~func:nf.nf_name ~addr:site
                        "stack-call-unbalanced"
                        (Printf.sprintf
                           "calls %s, which returns with stack height %s"
                           callee.nf_name (v_str (Known k)))))
              | None -> None)
           nf.nf_calls)
      funcs
  in
  ( List.concat_map (fun nf -> nf.nf_findings) funcs @ call_findings,
    List.filter_map
      (fun nf -> Option.map (fun s -> (nf.nf_name, s)) nf.nf_stats)
      funcs )

(* ========================================================================== *)
(* Chain pass: virtual-stack discipline over the rewritten chains             *)
(* ========================================================================== *)

type absval =
  | Unknown
  | Cst of int64
  | CellPtr of int
  | VspVal of int
  | Disps of int list

let av_join a b =
  match a, b with
  | Unknown, _ | _, Unknown -> Unknown
  | Disps xs, Disps ys -> Disps (List.sort_uniq compare (xs @ ys))
  | a, b -> if a = b then a else Unknown

module Chain_dom = struct
  type t = { delta : v; idx : v; regs : absval array }
  let equal (a : t) b = a.delta = b.delta && a.idx = b.idx && a.regs = b.regs
  let join a b =
    { delta = v_join a.delta b.delta;
      idx = v_join a.idx b.idx;
      regs = Array.init 16 (fun i -> av_join a.regs.(i) b.regs.(i)) }
  (* absval is finite-height too (Disps lists are bounded by the label
     count), so join converges without a genuine widening *)
  let widen _old joined = joined
end

module Cfix = Fixpoint.Make (Fixpoint.Int_node) (Chain_dom)

type chain_ctx = {
  cc_func : A.func;
  cc_ss_addr : int64;
  cc_slot8 : (int, Ropc.Chain.slot) Hashtbl.t;   (* 8-byte data/gadget slots *)
  cc_gmap : (int64, A.gadget_rec) Hashtbl.t;
  cc_branch_targets : int list;   (* all disp/table label offsets, fallback *)
  cc_guard : (int, unit) Hashtbl.t;
  (* slot offsets owned by guard-bearing points (jcc terminator groups and
     P2 trampolines): an [add rsp, r] there with r *not* holding a popped
     displacement is a P2 guard, which adds 0 on the legitimate path *)
  cc_tables : (int, int list) Hashtbl.t;
  (* jump tables, keyed by the offset of the anchor right after the
     dispatching [add rsp, r]: the table's own target labels, a tighter
     successor set than the whole-function fallback *)
}

let chain_ctx (audit : A.t) (f : A.func) : chain_ctx =
  let slot8 = Hashtbl.create 64 in
  Array.iter
    (fun (off, s) ->
       match s with
       | Ropc.Chain.S_gadget _ | Ropc.Chain.S_imm _ | Ropc.Chain.S_disp _
       | Ropc.Chain.S_opaque _ | Ropc.Chain.S_opaque_dispatch _ ->
         Hashtbl.replace slot8 off s
       | Ropc.Chain.S_label _ | Ropc.Chain.S_anchor _ | Ropc.Chain.S_skew _ ->
         ())
    f.A.f_layout;
  let label_off name = List.assoc_opt name f.A.f_labels in
  let targets = ref [] in
  Array.iter
    (fun (_, s) ->
       match s with
       | Ropc.Chain.S_disp { target; _ } ->
         (match label_off target with
          | Some t -> targets := t :: !targets
          | None -> ())
       | _ -> ())
    f.A.f_layout;
  List.iter
    (fun (_, _, ts) ->
       List.iter
         (fun t ->
            match label_off t with
            | Some o -> targets := o :: !targets
            | None -> ())
         ts)
    f.A.f_tables;
  let guard = Hashtbl.create 16 in
  List.iter
    (fun (p : A.point) ->
       (* jcc terminator groups render as "je ..."/"jne ..." (never "jmp",
          which is an unconditional or table dispatch) *)
       let d = p.A.p_desc in
       let is_jcc =
         String.length d >= 2 && d.[0] = 'j'
         && not (String.length d >= 3 && String.sub d 0 3 = "jmp")
       in
       let is_tramp =
         String.length d >= 13 && String.sub d 0 13 = "p2 trampoline"
       in
       if is_jcc || is_tramp then
         Array.iter (fun (off, _) -> Hashtbl.replace guard off ()) p.A.p_slots)
    f.A.f_points;
  let tables = Hashtbl.create 4 in
  List.iter
    (fun (_, anchor, ts) ->
       match label_off anchor with
       | None -> ()
       | Some aoff ->
         Hashtbl.replace tables aoff (List.filter_map label_off ts))
    f.A.f_tables;
  { cc_func = f;
    cc_ss_addr = audit.A.a_ss_addr;
    cc_slot8 = slot8;
    cc_gmap = A.gadget_map audit;
    cc_branch_targets = List.sort_uniq compare !targets;
    cc_guard = guard;
    cc_tables = tables }

(* Evaluate a memory operand's address as an absval. *)
let av_addr regs (m : mem) =
  match m.index, m.base with
  | Some _, _ | _, None -> (
      match m.base, m.index with
      | None, None -> Cst m.disp
      | _ -> Unknown)
  | None, Some b -> (
      match regs.(reg_index b) with
      | Cst v -> Cst (Int64.add v m.disp)
      | CellPtr k -> CellPtr (k + Int64.to_int m.disp)
      | VspVal k -> VspVal (k + Int64.to_int m.disp)
      | _ -> Unknown)

(* One gadget's transfer: simulate its instructions against the chain
   layout, producing the successor offsets.  [emit] is a no-op while the
   fixpoint iterates and a real sink during the deterministic findings
   sweep, so diagnostics come out once per reached offset. *)
let sim (ctx : chain_ctx) ~emit off (st0 : Chain_dom.t) =
  let f = ctx.cc_func in
  match Hashtbl.find_opt ctx.cc_slot8 off with
  | None
  | Some (Ropc.Chain.S_imm _ | Ropc.Chain.S_disp _ | Ropc.Chain.S_opaque _)
    ->
    (* execution reaching a data slot / hole is ropcheck's Chain_bad_slot;
       do not duplicate it here, just cut the path *)
    []
  | Some (Ropc.Chain.S_label _ | Ropc.Chain.S_anchor _ | Ropc.Chain.S_skew _)
    ->
    invalid_arg
      (Printf.sprintf
         "Stackdisc.sim: marker slot in %s at chain+%d escaped the filter"
         f.A.f_name off)
  | Some (Ropc.Chain.S_gadget _ | Ropc.Chain.S_opaque_dispatch _ as slot) ->
    (* at runtime a dispatch slot behaves like its opaquely-recovered
       target: the jmp-reg trampoline is stack-neutral and the target's
       own ret continues the chain, so simulate the target body *)
    let ga =
      match slot with
      | Ropc.Chain.S_gadget a -> a
      | Ropc.Chain.S_opaque_dispatch { od_target; _ } -> od_target
      | _ -> assert false
    in
    match Hashtbl.find_opt ctx.cc_gmap ga with
    | None -> []   (* ropcheck's Chain_unknown_gadget *)
    | Some grec ->
      let delta = ref st0.Chain_dom.delta
      and idx = ref st0.Chain_dom.idx
      and regs = Array.copy st0.Chain_dom.regs in
      let cursor = ref (off + 8) and stopped = ref false in
      let succs = ref [] in
      let set r v = regs.(reg_index r) <- v in
      let get r = regs.(reg_index r) in
      let havoc i =
        let _, defs = Analysis.Reguse.def_use i in
        if R.mem_reg defs RSP then stopped := true
        else
          List.iter
            (fun r -> if R.mem_reg defs r then set r Unknown)
            all_regs
      in
      (* the unswitch: rsp := <frame cell contents>.  Legal only from the
         entry frame cell with the virtual stack balanced and (for the
         epilogue/tail path) the ss frame released exactly once. *)
      let unswitch via =
        (match via with
         | CellPtr 0 ->
           (match !delta with
            | Known 0 -> ()
            | Known k ->
              emit
                (F.make ~func:f.A.f_name ~chain_off:off ~addr:ga
                   "chain-unswitch-unbalanced"
                   (Printf.sprintf
                      "stack unswitch with virtual stack off by %+d bytes \
                       (native rsp will be skewed after return)" k))
            | Bot | Top ->
              emit
                (F.make ~severity:F.Warning ~func:f.A.f_name ~chain_off:off
                   ~addr:ga "chain-unswitch-unknown"
                   "stack unswitch with statically-unknown virtual stack \
                    offset"));
           (match !idx with
            | Known (-8) | Bot -> ()
            | Known k ->
              emit
                (F.make ~func:f.A.f_name ~chain_off:off ~addr:ga
                   "chain-frame-leak"
                   (Printf.sprintf
                      "stack unswitch with ss frame index %+d (expected -8: \
                       exactly one frame release)" (k)))
            | Top ->
              emit
                (F.make ~severity:F.Warning ~func:f.A.f_name ~chain_off:off
                   ~addr:ga "chain-frame-unknown"
                   "stack unswitch with statically-unknown ss frame index"))
         | CellPtr k ->
           emit
             (F.make ~func:f.A.f_name ~chain_off:off ~addr:ga
                "chain-unswitch-unbalanced"
                (Printf.sprintf
                   "stack unswitch reads frame cell %+d, not the entry cell"
                   k))
         | _ ->
           emit
             (F.make ~severity:F.Warning ~func:f.A.f_name ~chain_off:off
                ~addr:ga "chain-unswitch-unknown"
                "stack unswitch through a pointer the analysis cannot \
                 resolve"));
        stopped := true
      in
      let step_instr (i : instr) =
        match i with
        | Ret | Jmp _ | Jcc _ | Hlt -> ()   (* endings handled below *)
        | Xchg (W64, Reg RSP, Mem _) | Xchg (W64, Mem _, Reg RSP) ->
          ()   (* switch-call park; net cell effect applied at the ending *)
        | Pop (Reg RSP) -> stopped := true
        | Pop (Reg r) ->
          (match Hashtbl.find_opt ctx.cc_slot8 !cursor with
           | Some (Ropc.Chain.S_imm v) -> set r (Cst v)
           | Some (Ropc.Chain.S_gadget a) -> set r (Cst a)
           | Some (Ropc.Chain.S_opaque { oq_value; oq_residue; oq_mult; _ })
             ->
             (* the slot's bytes are the residual, not the value *)
             set r
               (Cst
                  (Ropc.Chain.opaque_stored ~value:oq_value
                     ~residue:oq_residue ~mult:oq_mult))
           | Some (Ropc.Chain.S_opaque_dispatch { od_jop; _ }) ->
             set r (Cst od_jop)
           | Some (Ropc.Chain.S_disp { target; _ }) ->
             set r
               (match List.assoc_opt target f.A.f_labels with
                | Some t -> Disps [ t ]
                | None -> Unknown)
           | _ ->
             (* popping a hole: ropcheck's Chain_stack_mismatch *)
             stopped := true);
          if not !stopped then cursor := !cursor + 8
        | Pop (Mem m) ->
          (match av_addr regs m with
           | CellPtr 0 -> delta := Top
           | _ -> ());
          cursor := !cursor + 8
        | Pop (Imm _) -> stopped := true   (* malformed *)
        | Push _ -> stopped := true        (* gadgets never push the chain *)
        | Alu (Add, W64, Reg RSP, Imm k) -> cursor := !cursor + Int64.to_int k
        | Alu (Sub, W64, Reg RSP, Imm k) -> cursor := !cursor - Int64.to_int k
        | Alu (Add, W64, Reg RSP, Reg r) ->
          (* displacement branch: rsp += r with r holding a popped disp.
             The -1 sentinel (a conditionally-zeroed displacement, see the
             Imul2 case) falls through to the anchor right after this
             gadget, i.e. the current cursor. *)
          (match get r with
           | Disps ts ->
             succs :=
               List.map (fun d -> if d = -1 then !cursor else d) ts @ !succs
           | _ when Hashtbl.mem ctx.cc_tables !cursor ->
             (* jump-table dispatch: the anchor right after this gadget
                keys the table, whose recorded labels are the successors *)
             succs := Hashtbl.find ctx.cc_tables !cursor @ !succs
           | _ when Hashtbl.mem ctx.cc_guard off ->
             (* P2 guard: rsp += 8*d with d = 0 on the legitimate path; a
                nonzero d is the attacker-derailing trap, not a successor *)
             succs := !cursor :: !succs
           | _ -> succs := ctx.cc_branch_targets @ !succs);
          stopped := true
        | Alu (_, _, Reg RSP, _) -> stopped := true
        | Alu (op, W64, Reg rd, src)
          when op = Add || op = Sub ->
          let v =
            match src, get rd with
            | (Imm _ | Reg _), Disps ts ->
              (* bias correction on a popped displacement (p1_branch adds
                 the P1 residue the slot value was biased by): the runtime
                 sum is the true displacement, so the target set stands *)
              Disps ts
            | Imm k, Cst a ->
              Cst (if op = Add then Int64.add a k else Int64.sub a k)
            | Imm k, CellPtr a ->
              let k = Int64.to_int k in
              CellPtr (if op = Add then a + k else a - k)
            | Imm k, VspVal a ->
              let k = Int64.to_int k in
              VspVal (if op = Add then a + k else a - k)
            | Reg rs, av -> (
                match av, get rs with
                | Cst a, Cst b ->
                  Cst (if op = Add then Int64.add a b else Int64.sub a b)
                | _ -> Unknown)
            | Mem m, av -> (
                (* load_cell_ptr: add s1, [s1] with s1 = &ss  =>  CellPtr idx *)
                match op, av, av_addr regs m with
                | Add, Cst base, Cst a
                  when base = ctx.cc_ss_addr && a = ctx.cc_ss_addr -> (
                    match !idx with
                    | Known k -> CellPtr k
                    | _ -> Unknown)
                | _ -> Unknown)
            | _ -> Unknown
          in
          set rd v
        | Alu (Xor, W64, Reg rd, Reg rs) when rd = rs -> set rd (Cst 0L)
        | Alu (op, W64, Mem m, src) when op = Add || op = Sub -> (
            let sign k = if op = Add then k else -k in
            match av_addr regs m, src with
            | CellPtr 0, Imm k -> delta := v_add !delta (sign (Int64.to_int k))
            | CellPtr 0, Reg r -> (
                match get r with
                | Cst k -> delta := v_add !delta (sign (Int64.to_int k))
                | _ -> delta := Top)
            | CellPtr _, _ -> ()   (* parent frame cell: out of scope *)
            | Cst a, Imm k when a = ctx.cc_ss_addr ->
              idx := v_add !idx (sign (Int64.to_int k))
            | Cst a, _ when a = ctx.cc_ss_addr -> idx := Top
            | _ -> ())
        | Alu ((Cmp | Test), _, _, _) -> ()
        | Mov (W64, Reg RSP, Mem m) -> unswitch (av_addr regs m)
        | Mov (_, Reg RSP, _) -> stopped := true
        | Mov (W64, Reg rd, Imm v) -> set rd (Cst v)
        | Mov (W64, Reg rd, Reg rs) -> set rd (get rs)
        | Mov (W64, Reg rd, Mem m) -> (
            match av_addr regs m with
            | CellPtr 0 -> (
                match !delta with
                | Known k -> set rd (VspVal k)
                | _ -> set rd Unknown)
            | _ -> set rd Unknown)
        | Mov (_, Reg rd, _) -> set rd Unknown
        | Mov (W64, Mem m, Reg rs) -> (
            match av_addr regs m with
            | CellPtr 0 -> (
                match get rs with
                | VspVal k -> delta := Known k
                | _ -> delta := Top)
            | CellPtr _ -> ()
            | Cst a when a = ctx.cc_ss_addr -> idx := Top
            | _ -> ())
        | Mov (_, Mem m, _) -> (
            match av_addr regs m with
            | CellPtr 0 -> delta := Top
            | Cst a when a = ctx.cc_ss_addr -> idx := Top
            | _ -> ())
        | Lea (rd, m) -> set rd (av_addr regs m)
        | Cmov (_, rd, src) ->
          let v =
            match src with
            | Reg rs -> get rs
            | Imm v -> Cst v
            | Mem _ -> Unknown
          in
          set rd (av_join (get rd) v)
        | Leave | Call _ -> stopped := true   (* never appear inside gadgets *)
        | Imul2 (W64, rd, _) when (match get rd with Disps _ -> true | _ -> false) ->
          (* conditional-dispatch idiom (P3 loops, jcc lowering): a popped
             displacement is multiplied by a 0/1 setcc value, so the result
             is either the displacement or zero (= fall through).  -1 is
             the fall-through sentinel resolved at the add-rsp branch. *)
          (match get rd with
           | Disps ts -> set rd (Disps (-1 :: ts))
           | _ -> ())
        | i -> havoc i
      in
      let instrs = Gadget.instrs grec.A.g_gadget in
      List.iter (fun i -> if not !stopped then step_instr i) instrs;
      let ending = (Verify.Summary.of_instrs instrs).Verify.Summary.ending in
      if not !stopped then begin
        match ending with
        | Verify.Summary.End_ret -> succs := [ !cursor ]
        | Verify.Summary.End_switch_call ->
          (* native_call pre-decremented the cell by 8 to plant the
             function-return gadget; the callee's ret + funcret restore
             net it back, so the post-call state sees delta + 8 *)
          delta := v_add !delta 8;
          succs := [ !cursor ]
        | Verify.Summary.End_jop
        | Verify.Summary.End_halt
        | Verify.Summary.End_fall -> ()
      end;
      let st' =
        { Chain_dom.delta = !delta; idx = !idx; regs }
      in
      List.map (fun o -> (o, st')) (List.sort_uniq compare !succs)

let chain_entry : Chain_dom.t =
  { delta = Known 0; idx = Known 0; regs = Array.make 16 Unknown }

(* Run the chain analysis for one rewritten function. *)
let chain_func (audit : A.t) (f : A.func) : F.t list * Fixpoint.stats =
  let ctx = chain_ctx audit f in
  let r =
    Cfix.solve
      ~entries:[ (0, chain_entry) ]
      ~transfer:(fun off st -> sim ctx ~emit:(fun _ -> ()) off st)
      ()
  in
  (* deterministic findings sweep over the solved states *)
  let findings = ref [] in
  let reached =
    Cfix.H.fold (fun off _ acc -> off :: acc) r.Cfix.state []
    |> List.sort compare
  in
  List.iter
    (fun off ->
       match Cfix.H.find_opt r.Cfix.state off with
       | None -> ()
       | Some st ->
         ignore (sim ctx ~emit:(fun d -> findings := d :: !findings) off st))
    reached;
  (List.rev !findings, r.Cfix.stats)

let chain_pass (audit : A.t) : F.t list * (string * Fixpoint.stats) list =
  let per =
    List.map (fun f -> (f.A.f_name, chain_func audit f)) audit.A.a_funcs
  in
  ( List.concat_map (fun (_, (fs, _)) -> fs) per,
    List.map (fun (n, (_, st)) -> (n, st)) per )

(* Full pass: native discipline on the original image, virtual-stack
   discipline on the rewritten chains. *)
let run ~(orig : Image.t) (audit : A.t) : F.t list =
  let nf, _ = native_pass orig in
  let cf, _ = chain_pass audit in
  nf @ cf
