(* Pool-bloat / dead-gadget analysis.

   The gadget pool is append-only during rewriting: every synthesized
   variant stays in .text whether or not the final chains reference it.
   This pass computes reachability of pool bytes from live chain slots —
   the union of every S_gadget address across every rewritten function's
   layout, plus the shared function-return gadget — and flags:

   - synthesized gadgets no chain references (dead weight a smaller
     [variants] setting would not have emitted), as warnings;
   - found gadgets that went unused (free, they are pre-existing bytes),
     as info;
   - the unreferenced pool suffix: trailing pool bytes not covered by any
     referenced gadget's encoding, i.e. how much the pool could shrink
     without relinking a single chain. *)

module A = Ropc.Audit
module F = Verify.Finding

type t = {
  pb_total : int;                 (* gadget records in the audit *)
  pb_referenced : int;
  pb_dead_synth : (int64 * string) list;   (* addr, rendering *)
  pb_dead_found : int;
  pb_pool_bytes : int;
  pb_live_bytes : int;            (* bytes covered by referenced gadgets *)
  pb_shrinkable_suffix : int;     (* releasable tail of the pool *)
  pb_findings : F.t list;
}

let run (audit : A.t) : t =
  let referenced = Hashtbl.create 256 in
  Hashtbl.replace referenced audit.A.a_funcret ();
  List.iter
    (fun (f : A.func) ->
       Array.iter
         (fun (_, s) ->
            match s with
            | Ropc.Chain.S_gadget a -> Hashtbl.replace referenced a ()
            | Ropc.Chain.S_opaque_dispatch { od_jop; od_target } ->
              (* the trampoline is referenced by the slot bytes; the target
                 is reached through the opaque recovery, never by address *)
              Hashtbl.replace referenced od_jop ();
              Hashtbl.replace referenced od_target ()
            | _ -> ())
         f.A.f_layout)
    audit.A.a_funcs;
  (* immediates that happen to equal a gadget address also pin it: a chain
     may load a gadget pointer as data (native_call return planting) *)
  let gaddrs = Hashtbl.create 256 in
  List.iter
    (fun (g : A.gadget_rec) -> Hashtbl.replace gaddrs g.A.g_addr ())
    audit.A.a_gadgets;
  List.iter
    (fun (f : A.func) ->
       Array.iter
         (fun (_, s) ->
            match s with
            | Ropc.Chain.S_imm v when Hashtbl.mem gaddrs v ->
              Hashtbl.replace referenced v ()
            | _ -> ())
         f.A.f_layout)
    audit.A.a_funcs;
  let pool_bytes =
    Int64.to_int (Int64.sub audit.A.a_pool_hi audit.A.a_pool_lo)
  in
  let live = Bytes.make (max pool_bytes 0) '\000' in
  let dead_synth = ref [] and dead_found = ref 0 and nref = ref 0 in
  List.iter
    (fun (g : A.gadget_rec) ->
       let used = Hashtbl.mem referenced g.A.g_addr in
       if used then begin
         incr nref;
         (* mark the encoded bytes of referenced *pool* gadgets live *)
         let off = Int64.to_int (Int64.sub g.A.g_addr audit.A.a_pool_lo) in
         if off >= 0 && off < pool_bytes then begin
           let len = Gadget.length g.A.g_gadget in
           for i = off to min (off + len) pool_bytes - 1 do
             Bytes.set live i '\001'
           done
         end
       end
       else if g.A.g_found then incr dead_found
       else
         dead_synth :=
           (g.A.g_addr, Gadget.to_string g.A.g_gadget) :: !dead_synth)
    audit.A.a_gadgets;
  let live_bytes = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr live_bytes) live;
  let shrinkable = ref 0 in
  (let i = ref (pool_bytes - 1) in
   while !i >= 0 && Bytes.get live !i = '\000' do
     incr shrinkable;
     decr i
   done);
  let dead_synth = List.rev !dead_synth in
  let findings =
    List.map
      (fun (addr, desc) ->
         F.make ~severity:F.Warning ~addr "pool-dead-gadget"
           ("synthesized gadget never referenced by any chain: " ^ desc))
      dead_synth
    @ (if !dead_found > 0 then
         [ F.make ~severity:F.Info "pool-unused-found"
             (Printf.sprintf
                "%d found gadgets scanned but never referenced (no pool \
                 cost)" !dead_found) ]
       else [])
    @
    if !shrinkable > 0 then
      [ F.make ~severity:F.Info ~addr:audit.A.a_pool_hi "pool-shrinkable"
          (Printf.sprintf
             "pool suffix of %d bytes is unreachable from every chain \
              slot; the pool could end at 0x%Lx" !shrinkable
             (Int64.sub audit.A.a_pool_hi (Int64.of_int !shrinkable))) ]
    else []
  in
  { pb_total = List.length audit.A.a_gadgets;
    pb_referenced = !nref;
    pb_dead_synth = dead_synth;
    pb_dead_found = !dead_found;
    pb_pool_bytes = pool_bytes;
    pb_live_bytes = !live_bytes;
    pb_shrinkable_suffix = !shrinkable;
    pb_findings = findings }
