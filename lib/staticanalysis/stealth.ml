(* Stealth lint: static detectability scoring of the rewritten image.

   Scores approximate what the pattern-matching ROP detectors the paper
   defends against (ROPdissector-style chain scanners, gadget-signature
   sweeps) can see *without running the program*:

   - slot_frac      fraction of a chain's 8-byte slots holding a gadget
                    address — a dense run of code pointers into one
                    executable region is the classic chain signature;
   - reuse          1 - normalized Shannon entropy of the chain's gadget
                    usage: hammering three gadgets is far more
                    recognizable than spreading references over many;
   - clustering     1 - (referenced address span / pool size): chains
                    whose pointers cluster in a short pool prefix give a
                    scanner a tight candidate window;
   - ret_density    max 0xc3 count per 64-byte pool window (image-wide);
   - popret         pop;ret bigrams (0x58-0x5f then 0xc3) per KiB of pool.

   Each component is normalized to [0,1]; the weighted blend scales to a
   0-100 detectability score per function (higher = more recognizable).
   Thresholds are calibrated so today's corpus lands in info/warning
   territory; error is reserved for scores no shipped configuration
   produces, making any future error-severity stealth finding a CI-visible
   regression (see check.sh's @lint step). *)

module A = Ropc.Audit
module F = Verify.Finding

type func_score = {
  fs_name : string;
  fs_score : float;               (* 0..100 *)
  fs_slot_frac : float;
  fs_reuse : float;
  fs_clustering : float;
  fs_slots : int;                 (* 8-byte slots in the chain *)
}

type t = {
  sl_funcs : func_score list;
  sl_ret_density : float;         (* 0..1: max-window 0xc3 count / 8 *)
  sl_popret_per_kib : float;
  sl_findings : F.t list;
}

let log2 x = log x /. log 2.0

(* pool byte window signals over [lo, hi) of the rewritten image *)
let pool_signals (img : Image.t) ~lo ~hi =
  let len = Int64.to_int (Int64.sub hi lo) in
  if len <= 0 then (0.0, 0.0)
  else begin
    let byte i =
      match Image.read_byte img (Int64.add lo (Int64.of_int i)) with
      | Some b -> b
      | None -> 0
    in
    let max_window = ref 0 and rets = ref 0 and popret = ref 0 in
    let window = 64 in
    let in_window = ref 0 in
    for i = 0 to len - 1 do
      let b = byte i in
      if b = 0xC3 then begin
        incr rets;
        incr in_window
      end;
      if i >= window && byte (i - window) = 0xC3 then decr in_window;
      if !in_window > !max_window then max_window := !in_window;
      if i > 0 && b = 0xC3 then begin
        let p = byte (i - 1) in
        if p >= 0x58 && p <= 0x5F then incr popret
      end
    done;
    let ret_density = min 1.0 (float_of_int !max_window /. 8.0) in
    let popret_per_kib =
      float_of_int !popret /. (float_of_int len /. 1024.0)
    in
    (ret_density, popret_per_kib)
  end

let func_score ~pool_lo ~pool_hi ~ret_density ~popret_per_kib (f : A.func) =
  let slots = ref 0 and gadget_slots = ref 0 in
  let uses = Hashtbl.create 32 in
  let lo_ref = ref Int64.max_int and hi_ref = ref Int64.min_int in
  Array.iter
    (fun (_, s) ->
       match s with
       | Ropc.Chain.S_gadget a ->
         incr slots;
         incr gadget_slots;
         Hashtbl.replace uses a (1 + Option.value ~default:0 (Hashtbl.find_opt uses a));
         if Int64.compare a !lo_ref < 0 then lo_ref := a;
         if Int64.compare a !hi_ref > 0 then hi_ref := a
       | Ropc.Chain.S_opaque_dispatch { od_jop = a; _ } ->
         (* the slot's bytes are a pool pointer (the jmp-reg trampoline),
            so a scanner sees it exactly like a literal gadget slot *)
         incr slots;
         incr gadget_slots;
         Hashtbl.replace uses a (1 + Option.value ~default:0 (Hashtbl.find_opt uses a));
         if Int64.compare a !lo_ref < 0 then lo_ref := a;
         if Int64.compare a !hi_ref > 0 then hi_ref := a
       | Ropc.Chain.S_imm _ | Ropc.Chain.S_disp _
       | Ropc.Chain.S_opaque _ ->
         (* opaque slots store residuals, indistinguishable from data *)
         incr slots
       | Ropc.Chain.S_label _ | Ropc.Chain.S_anchor _ | Ropc.Chain.S_skew _ ->
         ())
    f.A.f_layout;
  let slot_frac =
    if !slots = 0 then 0.0
    else float_of_int !gadget_slots /. float_of_int !slots
  in
  let distinct = Hashtbl.length uses in
  let reuse =
    if distinct <= 1 then 1.0
    else begin
      let total = float_of_int !gadget_slots in
      let h =
        Hashtbl.fold
          (fun _ n acc ->
             let p = float_of_int n /. total in
             acc -. (p *. log2 p))
          uses 0.0
      in
      1.0 -. (h /. log2 (float_of_int distinct))
    end
  in
  let pool_size = Int64.to_float (Int64.sub pool_hi pool_lo) in
  let clustering =
    if distinct = 0 || pool_size <= 0.0 then 0.0
    else begin
      let span = Int64.to_float (Int64.sub !hi_ref !lo_ref) in
      max 0.0 (1.0 -. (span /. pool_size))
    end
  in
  let popret_sig = min 1.0 (popret_per_kib /. 32.0) in
  let score =
    100.0
    *. ((0.35 *. slot_frac) +. (0.20 *. reuse) +. (0.15 *. clustering)
        +. (0.20 *. ret_density) +. (0.10 *. popret_sig))
  in
  { fs_name = f.A.f_name; fs_score = score; fs_slot_frac = slot_frac;
    fs_reuse = reuse; fs_clustering = clustering; fs_slots = !slots }

(* Calibrated on the current corpus x Table I/II matrix: rewritten
   functions land in the low-30s..mid-40s (max observed 44.8), so >= 60 is
   a warning-worthy outlier and >= 80 (error) only fires if a change makes
   chains categorically more recognizable.  @lint fails CI on any error. *)
let error_threshold = 80.0
let warning_threshold = 60.0

let run ~(rewritten : Image.t) (audit : A.t) : t =
  let lo = audit.A.a_pool_lo and hi = audit.A.a_pool_hi in
  let ret_density, popret_per_kib = pool_signals rewritten ~lo ~hi in
  let funcs =
    List.map
      (func_score ~pool_lo:lo ~pool_hi:hi ~ret_density ~popret_per_kib)
      audit.A.a_funcs
  in
  let findings =
    List.map
      (fun fs ->
         let severity =
           if fs.fs_score >= error_threshold then F.Error
           else if fs.fs_score >= warning_threshold then F.Warning
           else F.Info
         in
         F.make ~severity ~func:fs.fs_name "stealth-score"
           (Printf.sprintf
              "detectability %.1f/100 (slots=%.2f reuse=%.2f cluster=%.2f \
               retwin=%.2f popret=%.1f/KiB over %d slots)"
              fs.fs_score fs.fs_slot_frac fs.fs_reuse fs.fs_clustering
              ret_density popret_per_kib fs.fs_slots))
      funcs
  in
  { sl_funcs = funcs; sl_ret_density = ret_density;
    sl_popret_per_kib = popret_per_kib; sl_findings = findings }
