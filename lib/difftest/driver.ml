(* Fuzzing driver: generate -> prepare -> diff -> (on mismatch) shrink.

   Everything is a pure function of (seed, case count, config name), so any
   failure in a run reduces to a one-line replay artifact:

     dune exec bin/difftest.exe -- --seed S --replay I --config NAME

   which regenerates case I bit-for-bit, re-runs the four-way oracle, and
   re-shrinks. *)

type failure = {
  f_index : int;
  f_first : Oracle.discrepancy;     (* as found *)
  f_shrunk : Gen.t;                 (* after minimization *)
  f_shrunk_disc : Oracle.discrepancy option;  (* re-diff of the shrunk case *)
}

type summary = {
  s_config : Oracle.config;
  s_seed : int;
  s_cases : int;
  s_failures : failure list;
  s_coverage : Coverage.t;
}

(* The shrinking predicate: the candidate must still produce a discrepancy on
   the *same backend*, with the same outcome classes on both sides.  Pinning
   backend and class keeps the shrink from wandering onto an unrelated bug
   mid-minimization (e.g. from a wrong return value to a build failure). *)
let still_fails cfg (d0 : Oracle.discrepancy) case =
  match Oracle.check cfg (Oracle.prepare cfg case) with
  | Some d ->
    d.Oracle.d_backend = d0.Oracle.d_backend
    && Oracle.outcome_class d.Oracle.d_got
       = Oracle.outcome_class d0.Oracle.d_got
    && Oracle.outcome_class d.Oracle.d_expected
       = Oracle.outcome_class d0.Oracle.d_expected
  | None -> false

let run_case ?(shrink = true) ?(max_shrink_tests = 1500) (cfg : Oracle.config)
    ~seed index ~(coverage : Coverage.t) : failure option =
  let case = Gen.case ~seed index in
  let p = Oracle.prepare cfg case in
  Coverage.add_prepared coverage p;
  match Oracle.check cfg p with
  | None -> None
  | Some d ->
    let shrunk =
      if shrink then
        Shrink.minimize ~max_tests:max_shrink_tests
          ~pred:(still_fails cfg d) case
      else case
    in
    let shrunk_disc = Oracle.check cfg (Oracle.prepare cfg shrunk) in
    Some { f_index = index; f_first = d; f_shrunk = shrunk;
           f_shrunk_disc = shrunk_disc }

let run ?(progress = fun _ -> ()) ?(shrink = true) ?(max_shrink_tests = 1500)
    (cfg : Oracle.config) ~seed ~cases () : summary =
  let coverage = Coverage.create () in
  let failures = ref [] in
  for i = 0 to cases - 1 do
    progress i;
    match run_case ~shrink ~max_shrink_tests cfg ~seed i ~coverage with
    | None -> ()
    | Some f -> failures := f :: !failures
  done;
  { s_config = cfg; s_seed = seed; s_cases = cases;
    s_failures = List.rev !failures; s_coverage = coverage }

(* --- pooled runs ----------------------------------------------------------- *)

type case_time = { ct_index : int; ct_seconds : float }

(* Run through the lib/jobs pool, one job per case.  Each case is a pure
   function of (seed, index, config), results come back in case order, and
   per-case coverage is merged with the deterministic Coverage.merge, so the
   summary — and the report printed from it — is byte-identical to a serial
   run at the same seed, whatever [pool.jobs] is.  Pool-level failures (a
   worker crash is a harness bug, not an oracle discrepancy) are returned
   separately, as is the per-case wall time for budget tuning. *)
let run_jobs ?(pool = Jobs.Pool.default) ?(shrink = true)
    ?(max_shrink_tests = 1500) (cfg : Oracle.config) ~seed ~cases () :
  summary * case_time list * (int * string) list =
  let f i =
    let coverage = Coverage.create () in
    let fail = run_case ~shrink ~max_shrink_tests cfg ~seed i ~coverage in
    (fail, coverage)
  in
  let key i =
    Printf.sprintf "difftest/%s/seed=%d/shrink=%b/case=%d"
      cfg.Oracle.name seed shrink i
  in
  let results =
    Jobs.Pool.map ~label:"difftest" pool ~key ~f (List.init cases Fun.id)
  in
  let coverage = Coverage.create () in
  let failures = ref [] and errors = ref [] and times = ref [] in
  List.iteri
    (fun i (r : _ Jobs.Pool.result) ->
       times := { ct_index = i; ct_seconds = r.Jobs.Pool.time_s } :: !times;
       match r.Jobs.Pool.outcome with
       | Jobs.Pool.Done (fail, cov) ->
         Coverage.merge coverage cov;
         (match fail with Some f -> failures := f :: !failures | None -> ())
       | Jobs.Pool.Failed m -> errors := (i, m) :: !errors
       | Jobs.Pool.Timed_out t ->
         errors := (i, Printf.sprintf "timed out after %.1fs" t) :: !errors)
    results;
  ({ s_config = cfg; s_seed = seed; s_cases = cases;
     s_failures = List.rev !failures; s_coverage = coverage },
   List.rev !times, List.rev !errors)

(* The [n] slowest cases of a run, slowest first (stable on ties, so the
   listing is deterministic up to the measured times themselves). *)
let slowest n times =
  let sorted =
    List.stable_sort (fun a b -> compare b.ct_seconds a.ct_seconds) times
  in
  List.filteri (fun i _ -> i < n) sorted

(* Digest of every generated case: two runs with the same (seed, cases) must
   produce the same hex string, byte for byte.  This is the determinism
   guarantee the replay artifact rests on, checked in the smoke tier. *)
let fingerprint ~seed ~cases =
  let buf = Buffer.create 4096 in
  for i = 0 to cases - 1 do
    Buffer.add_string buf (Gen.to_string (Gen.case ~seed i))
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- reports -------------------------------------------------------------- *)

let discrepancy_str (d : Oracle.discrepancy) =
  Printf.sprintf "backend %s disagrees on f(%s):\n  interp: %s\n  %-6s: %s"
    (Oracle.backend_name d.Oracle.d_backend)
    (String.concat ", " (List.map Int64.to_string d.Oracle.d_input))
    (Oracle.outcome_str d.Oracle.d_expected)
    (Oracle.backend_name d.Oracle.d_backend)
    (Oracle.outcome_str d.Oracle.d_got)

let failure_report (s : summary) (f : failure) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "=== discrepancy in case %d (seed %d, config %s)\n"
       f.f_index s.s_seed s.s_config.Oracle.name);
  Buffer.add_string buf (discrepancy_str f.f_first ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "shrunk to %d statements:\n" (Shrink.case_size f.f_shrunk));
  Buffer.add_string buf (Gen.to_string f.f_shrunk);
  (match f.f_shrunk_disc with
   | Some d -> Buffer.add_string buf ("shrunk " ^ discrepancy_str d ^ "\n")
   | None -> ());
  Buffer.add_string buf
    (Printf.sprintf
       "replay: dune exec bin/difftest.exe -- --seed %d --replay %d --config %s\n"
       s.s_seed f.f_index s.s_config.Oracle.name);
  Buffer.contents buf

let report (s : summary) =
  let buf = Buffer.create 2048 in
  List.iter (fun f -> Buffer.add_string buf (failure_report s f))
    s.s_failures;
  Buffer.add_string buf
    (Printf.sprintf "%d cases, seed %d, config %s: %d discrepancies\n"
       s.s_cases s.s_seed s.s_config.Oracle.name (List.length s.s_failures));
  Buffer.add_string buf (Coverage.report s.s_coverage);
  Buffer.contents buf
