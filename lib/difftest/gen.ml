(* Random mini-C case generator for the differential fuzzer.

   Design constraints, all of which exist so that the four execution backends
   (reference interpreter, compiled-on-emulator, ROP-rewritten, VM-virtualized)
   are *comparable* rather than merely runnable:

   - Determinism: a case is a pure function of (seed, index).  The same pair
     must produce a byte-identical program and input set on every run, so a
     one-line replay artifact suffices to reproduce any failure.
   - No undefined behavior: divisors are forced odd-nonzero ([(e & 0xff) | 1]),
     shift counts are masked to 0..63, and every memory access is masked
     in-bounds, because a fault would surface at a different address in each
     backend and drown real bugs in layout noise.
   - No address leaks: Addr_local/Addr_global only ever appear as the base of
     a Load/Store address expression.  Local arrays live at unrelated
     addresses in the interpreter (bump allocator) and on the emulated stack
     (rbp-relative), so a leaked pointer value would be a false mismatch.
   - Termination: every loop iterates a compile-time-bounded number of times
     over a dedicated counter no other statement assigns, so fuel exhaustion
     is a per-backend budget question, not a semantic coin flip.

   The skeleton vocabulary deliberately covers the constructs the rewriter
   and virtualizer treat specially: dense switches (jump tables, Appendix A),
   nested loops (P3 interaction), calls (JOP native-call sequences and
   rop-to-rop transfers), narrow loads/stores and casts (width handling), and
   flag-rich comparison chains (lahf/sahf spill paths). *)

open Minic.Ast

type t = {
  seed : int;
  index : int;
  prog : program;
  fname : string;              (* entry point, always "f" *)
  n_params : int;
  inputs : int64 list list;    (* input vectors to diff on *)
}

(* Global scratch written by generated stores; its final contents are part of
   the observable behavior the oracle compares. *)
let gbuf = "gbuf"
let gbuf_size = 128
let gbuf_mask = 63               (* store index mask: 63 + 8 < 128 *)

(* Read-only global table (loads only). *)
let gtab = "gtab"
let gtab_quads = 8

(* Optional local array. *)
let lbuf = "lbuf"
let lbuf_size = 64
let lbuf_mask = 31               (* 31 + 8 < 64 *)

let scalar_pool = [ "a"; "b"; "t0"; "t1" ]

(* List.init with a guaranteed left-to-right evaluation order.  The stdlib
   leaves the order in which [f] is applied unspecified; with an rng-consuming
   [f] that would make generated cases depend on the stdlib version. *)
let init_ordered n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

type ctx = {
  rng : Util.Rng.t;
  params : string list;
  scalars : string list;         (* assignable scalar locals in scope *)
  has_lbuf : bool;
  has_helper : bool;
  mutable loop_depth : int;      (* also indexes the counter name l<d> *)
  mutable budget : int;          (* remaining statement allowance *)
}

let vars ctx = ctx.params @ ctx.scalars

let widths = [ X86.Isa.W8; X86.Isa.W16; X86.Isa.W32; X86.Isa.W64 ]

let gen_const rng =
  match Util.Rng.int rng 8 with
  | 0 -> c 0
  | 1 -> c 1
  | 2 -> c (-1)
  | 3 -> c (Util.Rng.range rng 2 255)
  | 4 -> c (- Util.Rng.range rng 2 255)
  | 5 -> c64 (Int64.of_int32 (Int64.to_int32 (Util.Rng.next64 rng)))
  | 6 -> c64 0x7FFFFFFFFFFFFFFFL
  | _ -> c64 (Util.Rng.next64 rng)

(* Address expression for a load: base + masked index. *)
let gen_load_addr ctx depth gen_expr =
  let base, mask =
    match Util.Rng.int ctx.rng (if ctx.has_lbuf then 3 else 2) with
    | 0 -> (Addr_global gbuf, gbuf_mask)
    | 1 -> (Addr_global gtab, 8 * gtab_quads - 8)
    | _ -> (Addr_local lbuf, lbuf_mask)
  in
  Bin (Add, base, band (gen_expr ctx (depth - 1)) (c mask))

let rec gen_expr ctx depth =
  if depth <= 0 then
    match Util.Rng.int ctx.rng 3 with
    | 0 -> gen_const ctx.rng
    | _ -> v (Util.Rng.choose ctx.rng (vars ctx))
  else
    match Util.Rng.int ctx.rng 20 with
    | 0 -> Bin (Add, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 1 -> Bin (Sub, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 2 -> Bin (Mul, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 3 -> Bin (Band, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 4 -> Bin (Bor, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 5 -> Bin (Bxor, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 6 ->
      (* shift: count masked to the word size, as both the interpreter and
         the machine do for W64 *)
      let op = Util.Rng.choose ctx.rng [ Shl; Shr; Sar ] in
      Bin (op, gen_expr ctx (depth - 1),
           band (gen_expr ctx (depth - 1)) (c 63))
    | 7 ->
      (* division: divisor forced into 1..255 (odd-ored), which rules out
         divide-by-zero and signed-overflow faults in every backend *)
      let op = Util.Rng.choose ctx.rng [ Divs; Divu; Rems; Remu ] in
      Bin (op, gen_expr ctx (depth - 1),
           bor (band (gen_expr ctx (depth - 1)) (c 0xFF)) (c 1))
    | 8 | 9 ->
      let op =
        Util.Rng.choose ctx.rng [ Eq; Ne; Lts; Les; Gts; Ges; Ltu; Leu; Gtu; Geu ]
      in
      Bin (op, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 10 ->
      let op = Util.Rng.choose ctx.rng [ Land; Lor ] in
      Bin (op, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    | 11 ->
      Un (Util.Rng.choose ctx.rng [ Neg; Bnot; Lnot ], gen_expr ctx (depth - 1))
    | 12 ->
      let w = Util.Rng.choose ctx.rng widths in
      Cast (w, Util.Rng.bool ctx.rng, gen_expr ctx (depth - 1))
    | 13 | 14 ->
      let w = Util.Rng.choose ctx.rng widths in
      Load (w, Util.Rng.bool ctx.rng, gen_load_addr ctx depth gen_expr)
    | 15 when ctx.has_helper ->
      call "g" [ gen_expr ctx (depth - 1); gen_expr ctx (depth - 1) ]
    | _ ->
      Bin (Add, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))

let gen_cond ctx = gen_expr ctx 2

let take_budget ctx = ctx.budget <- ctx.budget - 1

(* A statement; [depth] bounds nesting of compound statements. *)
let rec gen_stmt ctx depth : stmt list =
  take_budget ctx;
  let compound = depth > 0 && ctx.budget > 0 in
  match Util.Rng.int ctx.rng (if compound then 14 else 7) with
  | 0 | 1 | 2 ->
    [ set (Util.Rng.choose ctx.rng ctx.scalars) (gen_expr ctx 3) ]
  | 3 | 4 ->
    let w = Util.Rng.choose ctx.rng widths in
    let base, mask =
      if ctx.has_lbuf && Util.Rng.bool ctx.rng then (Addr_local lbuf, lbuf_mask)
      else (Addr_global gbuf, gbuf_mask)
    in
    [ Store (w, Bin (Add, base, band (gen_expr ctx 2) (c mask)),
             gen_expr ctx 2) ]
  | 5 ->
    (* break / continue, only meaningful inside a loop *)
    if ctx.loop_depth > 0 && Util.Rng.int ctx.rng 4 = 0 then
      [ If (gen_cond ctx,
            [ (if Util.Rng.bool ctx.rng then Break else Continue) ], []) ]
    else [ set (Util.Rng.choose ctx.rng ctx.scalars) (gen_expr ctx 2) ]
  | 6 ->
    (* occasionally a guarded early return; exercises Return from nested
       scopes (epilogue chains in the rewriter, Op_ret mid-bytecode) *)
    if Util.Rng.int ctx.rng 6 = 0 then
      [ If (gen_cond ctx, [ Return (gen_expr ctx 2) ], []) ]
    else [ Expr (gen_expr ctx 2) ]
  | 7 | 8 ->
    [ If (gen_cond ctx, gen_block ctx (depth - 1) 2,
          if Util.Rng.bool ctx.rng then gen_block ctx (depth - 1) 2 else []) ]
  | 9 | 10 ->
    if ctx.loop_depth >= 2 then [ If (gen_cond ctx, gen_block ctx 0 2, []) ]
    else gen_loop ctx depth
  | 11 ->
    (* dense switch over a masked scrutinee: compiles to a jump table *)
    let n_cases = Util.Rng.range ctx.rng 4 7 in
    let cases =
      init_ordered n_cases (fun k -> (k, gen_block ctx (depth - 1) 1))
    in
    [ Switch (band (gen_expr ctx 2) (c 7), cases, gen_block ctx (depth - 1) 1) ]
  | 12 ->
    [ Do_while (gen_loop_body ctx depth, c 0) ]   (* runs exactly once *)
  | _ ->
    [ set (Util.Rng.choose ctx.rng ctx.scalars) (gen_expr ctx 3) ]

(* Bounded loop over a dedicated counter.  Nothing else assigns l<d>, so the
   trip count is static and small.  In the while/do-while forms the counter
   increment comes FIRST in the body: a generated [continue] then cannot skip
   it, which would leave the condition true forever.  (The for form is safe
   as-is — continue runs the step by definition.) *)
and gen_loop ctx depth : stmt list =
  let ctr = Printf.sprintf "l%d" ctx.loop_depth in
  ctx.loop_depth <- ctx.loop_depth + 1;
  let trips = Util.Rng.range ctx.rng 1 6 in
  let body = gen_block ctx (depth - 1) 3 in
  ctx.loop_depth <- ctx.loop_depth - 1;
  match Util.Rng.int ctx.rng 3 with
  | 0 ->
    [ For (set ctr (c 0), Bin (Lts, v ctr, c trips),
           set ctr (Bin (Add, v ctr, c 1)), body) ]
  | 1 ->
    [ set ctr (c 0);
      While (Bin (Lts, v ctr, c trips),
             set ctr (Bin (Add, v ctr, c 1)) :: body) ]
  | _ ->
    [ set ctr (c 0);
      Do_while (set ctr (Bin (Add, v ctr, c 1)) :: body,
                Bin (Lts, v ctr, c trips)) ]

and gen_loop_body ctx depth = gen_block ctx (max 0 (depth - 1)) 2

and gen_block ctx depth n : stmt list =
  let n = Util.Rng.range ctx.rng 1 n in
  List.concat
    (init_ordered n (fun _ -> if ctx.budget > 0 then gen_stmt ctx depth else []))

(* Loop counters only ever appear as whole-statement assignments inside
   gen_loop, but while/do-while forms hoist [set l 0] to the current block,
   so every l<d> up to the max nesting depth must be declared. *)
let max_loop_vars = 4

let helper_func ctx =
  (* no recursive calls: g's body is generated with calls disabled.  The rng
     is shared with [ctx], so the stream stays linear. *)
  let hctx =
    { ctx with has_helper = false; params = [ "p"; "q" ];
      scalars = [ "h0"; "h1" ]; has_lbuf = false }
  in
  let body =
    init_ordered (Util.Rng.range ctx.rng 3 5) (fun _ ->
        let dst = Util.Rng.choose ctx.rng [ "h0"; "h1" ] in
        set dst (gen_expr hctx 2))
  in
  func ~params:[ "p"; "q" ] ~locals:[ "h0"; "h1" ]
    "g"
    ([ set "h0" (v "p"); set "h1" (v "q") ]
     @ body
     @ [ Return (bxor (v "h0") (Bin (Mul, v "h1", c 31))) ])

let gen_inputs rng n_params =
  let one () =
    init_ordered n_params (fun _ ->
        match Util.Rng.int rng 5 with
        | 0 -> 0L
        | 1 -> 1L
        | 2 -> -1L
        | 3 -> Int64.of_int (Util.Rng.range rng 2 1000)
        | _ -> Util.Rng.next64 rng)
  in
  init_ordered 4 (fun _ -> one ())

(* Deterministic case construction: everything flows from one splitmix64
   stream seeded with (seed, index). *)
let case ~seed index : t =
  let rng = Util.Rng.create ((seed * 1_000_003) lxor (index * 8191) lxor 0x5f) in
  let n_params = Util.Rng.range rng 1 3 in
  let params = List.init n_params (fun i -> Printf.sprintf "x%d" i) in
  let has_lbuf = Util.Rng.int rng 3 > 0 in
  let has_helper = Util.Rng.int rng 2 = 0 in
  let ctx =
    { rng; params; scalars = scalar_pool; has_lbuf; has_helper; loop_depth = 0;
      budget = Util.Rng.range rng 6 18 }
  in
  let helper = if has_helper then [ helper_func ctx ] else [] in
  let loops = List.init max_loop_vars (fun i -> Printf.sprintf "l%d" i) in
  let locals = scalar_pool @ loops in
  (* initialize every scalar: the interpreter zeroes locals, the compiled
     frame only happens to be zero on a fresh image; make it explicit *)
  let init =
    List.mapi
      (fun i l ->
         set l (if i < List.length scalar_pool && ctx.params <> []
                then v (List.nth ctx.params (i mod List.length ctx.params))
                else c 0))
      locals
  in
  let body = gen_block ctx 3 6 in
  let final_mix =
    Return
      (bxor
         (Bin (Mul, v "a", c 0x9E37))
         (bxor (v "b") (Bin (Add, v "t0", Bin (Mul, v "t1", c 131)))))
  in
  let arrays = if has_lbuf then [ (lbuf, lbuf_size) ] else [] in
  let fmain = func ~params ~locals ~arrays "f" (init @ body @ [ final_mix ]) in
  let globals =
    [ G_zero (gbuf, gbuf_size);
      G_quads (gtab, init_ordered gtab_quads (fun _ -> Util.Rng.next64 rng)) ]
  in
  let prog = program ~globals (fmain :: helper) in
  let inputs = gen_inputs rng n_params in
  { seed; index; prog; fname = "f"; n_params; inputs }

(* Full textual rendering: the C-flavoured program plus the input vectors.
   Used both for failure reports and as the determinism fingerprint (two runs
   of the same (seed, index) must produce identical strings). *)
let to_string (t : t) =
  let input_line args =
    Printf.sprintf "f(%s)" (String.concat ", " (List.map Int64.to_string args))
  in
  Printf.sprintf "// case seed=%d index=%d\n%s\n// inputs:\n%s\n" t.seed
    t.index
    (Minic.Pp.program_str t.prog)
    (String.concat "\n" (List.map input_line t.inputs))
