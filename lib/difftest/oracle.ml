(* Four-way differential oracle.

   A generated case is executed under up to four backends:

     1. the mini-C reference interpreter (ground truth),
     2. the compiled program on the machine emulator (codegen + emulator),
     3. the ROP-rewritten binary (codegen + rewriter + emulator),
     4. the VM-virtualized program (vmobf + codegen + emulator),

   and the observable behaviors are compared: the 64-bit return value, the
   final contents of the writable global buffer, and the termination class
   (clean return / fault / fuel exhaustion).  Fault *messages* are not
   compared — addresses and frame layouts legitimately differ across
   backends — only the class is.

   The rewriter declining a function (F_cfg, F_register_pressure, ...) is a
   statistic, not a discrepancy: a failed function keeps its native body,
   which is still semantically the program.  Obfuscator *crashes* at build
   time, on the other hand, are reported as Build_error discrepancies —
   the obfuscators claim to support the whole mini-C surface the generator
   emits. *)

type outcome =
  | Ret of { rax : int64; mem : string }  (* clean return + gbuf snapshot *)
  | Fault of string                       (* fault class; message is FYI *)
  | Timeout                               (* fuel / step budget exhausted *)
  | Build_error of string                 (* obfuscation pipeline crashed *)
  | Engine_split of string                (* fast and ref engines disagreed *)

type backend = Interp | Native | Rop | Vm

let backend_name = function
  | Interp -> "interp" | Native -> "native" | Rop -> "rop" | Vm -> "vm"

let outcome_str = function
  | Ret { rax; mem } ->
    Printf.sprintf "ret rax=%Ld gbuf=%s" rax (Digest.to_hex (Digest.string mem))
  | Fault m -> Printf.sprintf "fault (%s)" m
  | Timeout -> "timeout"
  | Build_error m -> Printf.sprintf "build error (%s)" m
  | Engine_split m -> Printf.sprintf "engine split (%s)" m

(* Coarse class of an outcome, used to pin a shrink to the original failure
   mode (a shrink that wanders from "wrong rax" to "build error" has found a
   different bug, not a smaller instance of the same one). *)
let outcome_class = function
  | Ret _ -> "ret" | Fault _ -> "fault" | Timeout -> "timeout"
  | Build_error _ -> "build-error" | Engine_split _ -> "engine-split"

(* Equality up to fault message.  An engine split equals nothing, itself
   included: the two execution engines disagreeing on one leg is always a
   discrepancy, whatever the other legs did. *)
let same_outcome a b =
  match (a, b) with
  | Ret a, Ret b -> a.rax = b.rax && a.mem = b.mem
  | Fault _, Fault _ -> true
  | Timeout, Timeout -> true
  | Build_error _, Build_error _ -> true
  | Engine_split _, _ | _, Engine_split _ -> false
  | _ -> false

(* Which execution engine runs the machine legs.  [E_both] is the
   cross-engine oracle: every leg runs under the fast block-translating
   engine AND the reference stepper, and any observable divergence —
   termination class, fault message, rax, retired step count, global
   buffer — is reported as an [Engine_split] discrepancy. *)
type engine_mode = E_fast | E_ref | E_both

let engine_mode_name = function
  | E_fast -> "fast" | E_ref -> "ref" | E_both -> "both"

let engine_mode_of_string = function
  | "fast" -> Some E_fast | "ref" -> Some E_ref | "both" -> Some E_both
  | _ -> None

type config = {
  name : string;
  rop : Ropc.Config.t option;                  (* None: skip the ROP leg *)
  vm : (int * Vmobf.implicit_layers) option;   (* None: skip the VM leg *)
  verify : bool;    (* run the static chain verifier on the ROP leg; an
                       error-severity diagnostic fails the build like an
                       obfuscator crash would *)
  engine : engine_mode;
  interp_fuel : int;
  native_fuel : int;
  rop_fuel : int;
  vm_fuel : int;
}

(* Fuel budgets are sized from measured maxima over healthy generated cases
   (native ~5k steps, rop ~540k, 1-layer vm ~140k): generous enough that no
   legitimate case comes near them, tight enough that a diverging case —
   which burns its whole budget — costs fractions of a second, not minutes.
   Deep-VM presets scale vm_fuel up for the per-layer amplification. *)
let default_config =
  { name = "default";
    rop = Some (Ropc.Config.rop_k ~seed:1 1.0);
    vm = Some (1, Vmobf.Imp_none);
    verify = false;
    engine = E_fast;
    interp_fuel = 2_000_000;
    native_fuel = 2_000_000;
    rop_fuel = 20_000_000;
    vm_fuel = 30_000_000 }

(* Named presets selectable from the CLI; the obfuscation legs follow the
   Table I/II terminology of the harness. *)
let configs =
  [ default_config;
    { default_config with name = "rop0.25";
      rop = Some (Ropc.Config.rop_k ~seed:1 0.25) };
    { default_config with name = "rop-p2";
      rop = Some (Ropc.Config.rop_k ~seed:1 ~p2:true 1.0) };
    { default_config with name = "rop-confusion";
      rop = Some (Ropc.Config.rop_k ~seed:1 ~confusion:true 1.0) };
    { default_config with name = "rop-verified"; verify = true };
    (* ROPfuscator layer presets: each layer alone, stacked, and stacked
       with per-function config; the -verified variant adds the static
       chain verifier to the leg *)
    { default_config with name = "rop-opaque";
      rop = Some (Ropc.Config.rop_k ~seed:1 ~opaque:true 1.0) };
    { default_config with name = "rop-hiding";
      rop = Some (Ropc.Config.rop_k ~seed:1 ~hiding:true 1.0) };
    { default_config with name = "rop-layered";
      rop = Some (Ropc.Config.rop_k ~seed:1 ~opaque:true ~hiding:true 1.0) };
    { default_config with name = "rop-perfunction";
      rop =
        Some (Ropc.Config.rop_k ~seed:1 ~opaque:true ~hiding:true ~pf:true 1.0) };
    { default_config with name = "rop-layered-verified";
      rop = Some (Ropc.Config.rop_k ~seed:1 ~opaque:true ~hiding:true 1.0);
      verify = true };
    { default_config with name = "2vm"; vm = Some (2, Vmobf.Imp_none);
      vm_fuel = 200_000_000 };
    { default_config with name = "2vm-implast";
      vm = Some (2, Vmobf.Imp_last); vm_fuel = 400_000_000 };
    { default_config with name = "1vm-impall";
      vm = Some (1, Vmobf.Imp_all); vm_fuel = 100_000_000 };
    { default_config with name = "native-only"; rop = None; vm = None } ]

let find_config name =
  List.find_opt (fun c -> c.name = name) configs

let config_names () = List.map (fun c -> c.name) configs

(* --- preparation ---------------------------------------------------------- *)

(* Per-case build products, shared across the case's input vectors. *)
type prepared = {
  case : Gen.t;
  native_img : Image.t;
  rop_img : (Image.t * bool, string) result option;
                                  (* bool: was [f] actually rewritten? *)
  vm_img : (Image.t, string) result option;
  gadget_uses : int;              (* A of Table III, 0 if rop leg off/failed *)
  gadget_unique : int;            (* B of Table III *)
}

let prepare (cfg : config) (case : Gen.t) : prepared =
  let native_img = Minic.Codegen.compile case.Gen.prog in
  let rop_img, gadget_uses, gadget_unique =
    match cfg.rop with
    | None -> (None, 0, 0)
    | Some rc ->
      (match
         Ropc.Rewriter.rewrite native_img ~functions:[ case.Gen.fname ]
           ~config:rc
       with
       | r ->
         let rewritten =
           match List.assoc_opt case.Gen.fname r.Ropc.Rewriter.funcs with
           | Some (Ok _) -> true
           | Some (Error _) | None -> false
         in
         let verify_err =
           if not cfg.verify then None
           else
             match Verify.Diag.errors (Verify.Check.check r) with
             | [] -> None
             | d :: _ as ds ->
               Some
                 (Printf.sprintf "static verification: %d error(s), first: %s"
                    (List.length ds) (Verify.Diag.render d))
         in
         ((match verify_err with
           | Some msg -> Some (Error msg)
           | None -> Some (Ok (r.Ropc.Rewriter.image, rewritten))),
          r.Ropc.Rewriter.total_gadget_uses, r.Ropc.Rewriter.unique_gadgets)
       | exception e -> (Some (Error (Printexc.to_string e)), 0, 0))
  in
  let vm_img =
    match cfg.vm with
    | None -> None
    | Some (layers, implicit) ->
      (match
         Vmobf.layered ~implicit ~layers ~seed:(case.Gen.seed + case.Gen.index)
           case.Gen.prog case.Gen.fname
       with
       | prog -> Some (Ok (Minic.Codegen.compile prog))
       | exception e -> Some (Error (Printexc.to_string e)))
  in
  { case; native_img; rop_img; vm_img; gadget_uses; gadget_unique }

(* --- execution ------------------------------------------------------------ *)

let out_of_fuel_msg = "interpreter out of fuel"

let run_interp (cfg : config) (case : Gen.t) args : outcome =
  match
    Minic.Interp.run_state ~fuel:cfg.interp_fuel case.Gen.prog case.Gen.fname
      args
  with
  | rax, st ->
    let mem =
      match Minic.Interp.global_addr st Gen.gbuf with
      | Some addr ->
        Machine.Memory.read_string st.Minic.Interp.mem addr Gen.gbuf_size
      | None -> ""
    in
    Ret { rax; mem }
  | exception Minic.Interp.Runtime_error m when m = out_of_fuel_msg -> Timeout
  | exception Minic.Interp.Runtime_error m -> Fault m
  (* shrunk candidates can dereference arbitrary addresses; an unmapped
     access raises Memory.Fault straight out of the interpreter *)
  | exception Machine.Memory.Fault (_, m) -> Fault m

let gbuf_snapshot img (r : Runner.result) =
  match Image.find_symbol img Gen.gbuf with
  | Some sym ->
    Machine.Memory.read_string r.Runner.cpu.Machine.Cpu.mem
      sym.Image.sym_addr Gen.gbuf_size
  | None -> ""

let outcome_of_result img (r : Runner.result) : outcome =
  match r.Runner.status with
  | Machine.Exec.Halted -> Ret { rax = r.Runner.rax; mem = gbuf_snapshot img r }
  | Machine.Exec.Fault m -> Fault m
  | Machine.Exec.Out_of_fuel -> Timeout

let run_machine ~fuel (cfg : config) (case : Gen.t) img args : outcome =
  match cfg.engine with
  | E_fast ->
    outcome_of_result img
      (Runner.call ~engine:Machine.Exec.Fast ~fuel img ~func:case.Gen.fname ~args)
  | E_ref ->
    outcome_of_result img
      (Runner.call ~engine:Machine.Exec.Ref ~fuel img ~func:case.Gen.fname ~args)
  | E_both ->
    (* Cross-engine oracle: the comparison is strict — identical status
       (message included), rax, retired step count and global buffer — since
       the fast engine claims observational equivalence, not just
       same-answer. *)
    let rf =
      Runner.call ~engine:Machine.Exec.Fast ~fuel img ~func:case.Gen.fname ~args
    in
    let rr =
      Runner.call ~engine:Machine.Exec.Ref ~fuel img ~func:case.Gen.fname ~args
    in
    let sf = Format.asprintf "%a" Machine.Exec.pp_exit rf.Runner.status in
    let sr = Format.asprintf "%a" Machine.Exec.pp_exit rr.Runner.status in
    if sf <> sr then
      Engine_split (Printf.sprintf "status: fast=%s ref=%s" sf sr)
    else if rf.Runner.steps <> rr.Runner.steps then
      Engine_split
        (Printf.sprintf "steps: fast=%d ref=%d (%s)" rf.Runner.steps
           rr.Runner.steps sf)
    else if rf.Runner.rax <> rr.Runner.rax then
      Engine_split
        (Printf.sprintf "rax: fast=%Ld ref=%Ld" rf.Runner.rax rr.Runner.rax)
    else begin
      let mf = gbuf_snapshot img rf and mr = gbuf_snapshot img rr in
      if mf <> mr then Engine_split "global buffer contents differ"
      else outcome_of_result img rf
    end

(* Run one input vector through every configured backend. *)
let run (cfg : config) (p : prepared) args : (backend * outcome) list =
  let interp = (Interp, run_interp cfg p.case args) in
  let native =
    (Native, run_machine ~fuel:cfg.native_fuel cfg p.case p.native_img args)
  in
  let rop =
    match p.rop_img with
    | None -> []
    | Some (Error m) -> [ (Rop, Build_error m) ]
    | Some (Ok (img, _)) ->
      [ (Rop, run_machine ~fuel:cfg.rop_fuel cfg p.case img args) ]
  in
  let vm =
    match p.vm_img with
    | None -> []
    | Some (Error m) -> [ (Vm, Build_error m) ]
    | Some (Ok img) ->
      [ (Vm, run_machine ~fuel:cfg.vm_fuel cfg p.case img args) ]
  in
  (interp :: native :: rop) @ vm

(* --- diffing -------------------------------------------------------------- *)

type discrepancy = {
  d_case : Gen.t;
  d_input : int64 list;
  d_backend : backend;
  d_expected : outcome;   (* what the reference interpreter said *)
  d_got : outcome;
}

(* Check one prepared case over all of its input vectors; returns the first
   discrepancy, if any.  The interpreter outcome is the reference. *)
let check (cfg : config) (p : prepared) : discrepancy option =
  let rec over_inputs = function
    | [] -> None
    | args :: rest ->
      let outcomes = run cfg p args in
      let reference = List.assoc Interp outcomes in
      let bad =
        List.find_opt
          (fun (b, o) -> b <> Interp && not (same_outcome reference o))
          outcomes
      in
      (match bad with
       | Some (b, o) ->
         Some { d_case = p.case; d_input = args; d_backend = b;
                d_expected = reference; d_got = o }
       | None -> over_inputs rest)
  in
  over_inputs p.case.Gen.inputs

(* Convenience: generate, prepare, check. *)
let check_case (cfg : config) ~seed index : discrepancy option =
  check cfg (prepare cfg (Gen.case ~seed index))
