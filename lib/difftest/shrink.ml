(* Greedy shrinker for failing differential cases.

   Given a case and a predicate "does this case still exhibit the failure",
   repeatedly applies the first accepted single-step simplification until no
   candidate is accepted (or the test budget runs out).  Simplification
   steps, roughly from coarsest to finest:

     - drop a statement,
     - hoist a compound statement's sub-body into its place
       (if -> branch, loop -> body, switch -> one arm),
     - replace an expression by a subexpression or by the constant 0 / 1,
     - drop input vectors and zero / one out input elements.

   Two invariants are enforced on candidates rather than assumed:

     - break/continue must stay inside a loop (or switch, for break) —
       hoisting a loop body can otherwise evict them into open code, which
       no backend gives a meaning to;
     - Addr_local/Addr_global never move into value position.  Array base
       addresses differ across backends by design (interpreter bump
       allocator vs. emulated stack), so a hoisted address would fail the
       diff for a reason that has nothing to do with the original bug. *)

open Minic.Ast

(* --- metrics -------------------------------------------------------------- *)

let rec stmt_size (s : stmt) =
  match s with
  | If (_, t, e) -> 1 + body_size t + body_size e
  | While (_, b) | Do_while (b, _) -> 1 + body_size b
  | For (i, _, st, b) -> 1 + stmt_size i + stmt_size st + body_size b
  | Switch (_, cases, d) ->
    1 + body_size d + List.fold_left (fun n (_, b) -> n + body_size b) 0 cases
  | Assign _ | Store _ | Return _ | Expr _ | Break | Continue -> 1

and body_size b = List.fold_left (fun n s -> n + stmt_size s) 0 b

(* --- validity ------------------------------------------------------------- *)

(* [in_loop]: an enclosing loop exists (continue target).
   [brk]: an enclosing loop or switch exists (break target). *)
let rec stmt_valid ~in_loop ~brk (s : stmt) =
  match s with
  | Break -> brk
  | Continue -> in_loop
  | If (_, t, e) -> body_valid ~in_loop ~brk t && body_valid ~in_loop ~brk e
  | While (_, b) | Do_while (b, _) -> body_valid ~in_loop:true ~brk:true b
  | For (i, _, st, b) ->
    stmt_valid ~in_loop ~brk i && stmt_valid ~in_loop ~brk st
    && body_valid ~in_loop:true ~brk:true b
  | Switch (_, cases, d) ->
    body_valid ~in_loop ~brk:true d
    && List.for_all (fun (_, b) -> body_valid ~in_loop ~brk:true b) cases
  | Assign _ | Store _ | Return _ | Expr _ -> true

and body_valid ~in_loop ~brk b = List.for_all (stmt_valid ~in_loop ~brk) b

(* Does [e] mention an array address outside of a Load?  (Store addresses are
   handled at the statement level.) *)
let rec leaks_addr (e : expr) =
  match e with
  | Addr_local _ | Addr_global _ -> true
  | Bin (_, a, b) -> leaks_addr a || leaks_addr b
  | Un (_, a) | Cast (_, _, a) -> leaks_addr a
  | Load _ -> false                       (* address stays in address position *)
  | Call (_, args) -> List.exists leaks_addr args
  | Const _ | Var _ -> false

(* --- expression candidates ------------------------------------------------ *)

let rec expr_shrinks (e : expr) : expr list =
  let consts =
    match e with
    | Const 0L -> []
    | Const 1L -> [ c 0 ]
    | _ -> [ c 0; c 1 ]
  in
  let hoists =
    match e with
    | Bin (_, a, b) -> List.filter (fun x -> not (leaks_addr x)) [ a; b ]
    | Un (_, a) | Cast (_, _, a) -> if leaks_addr a then [] else [ a ]
    | Call (_, args) -> List.filter (fun x -> not (leaks_addr x)) args
    | Const _ | Var _ | Load _ | Addr_local _ | Addr_global _ -> []
  in
  let inner =
    match e with
    | Bin (op, a, b) ->
      List.map (fun a' -> Bin (op, a', b)) (expr_shrinks a)
      @ List.map (fun b' -> Bin (op, a, b')) (expr_shrinks b)
    | Un (op, a) -> List.map (fun a' -> Un (op, a')) (expr_shrinks a)
    | Cast (w, s, a) -> List.map (fun a' -> Cast (w, s, a')) (expr_shrinks a)
    | Load (w, s, a) -> List.map (fun a' -> Load (w, s, a')) (expr_shrinks a)
    | Call (f, args) ->
      List.concat
        (List.mapi
           (fun i a ->
              List.map
                (fun a' ->
                   Call (f, List.mapi (fun j x -> if j = i then a' else x) args))
                (expr_shrinks a))
           args)
    | Const _ | Var _ | Addr_local _ | Addr_global _ -> []
  in
  (* an address expression may legitimately *be* an Addr-rooted term; the
     leak filter above only guards hoisting into value positions, while the
     caller decides whether [e] itself sits in address position *)
  consts @ hoists @ inner

(* --- statement / body candidates ------------------------------------------ *)

let splice body i (sub : stmt list) =
  List.concat (List.mapi (fun j x -> if j = i then sub else [ x ]) body)

let replace body i s' = List.mapi (fun j x -> if j = i then s' else x) body

(* Sub-bodies a compound statement can collapse to. *)
let stmt_hoists (s : stmt) : stmt list list =
  match s with
  | If (_, t, e) -> [ t; e ]
  | While (_, b) | Do_while (b, _) -> [ b ]
  | For (i, _, st, b) -> [ b; (i :: b) @ [ st ] ]
  | Switch (_, cases, d) -> d :: List.map snd cases
  | Assign _ | Store _ | Return _ | Expr _ | Break | Continue -> []

let rec stmt_replacements (s : stmt) : stmt list =
  match s with
  | Assign (n, e) -> List.map (fun e' -> Assign (n, e')) (expr_shrinks e)
  | Store (w, a, v) ->
    List.map (fun a' -> Store (w, a', v)) (expr_shrinks a)
    @ List.map (fun v' -> Store (w, a, v')) (expr_shrinks v)
  | Return e -> List.map (fun e' -> Return e') (expr_shrinks e)
  | Expr e -> List.map (fun e' -> Expr e') (expr_shrinks e)
  | If (c0, t, e) ->
    List.map (fun c' -> If (c', t, e)) (expr_shrinks c0)
    @ List.map (fun t' -> If (c0, t', e)) (body_candidates t)
    @ List.map (fun e' -> If (c0, t, e')) (body_candidates e)
  | While (c0, b) ->
    List.map (fun c' -> While (c', b)) (expr_shrinks c0)
    @ List.map (fun b' -> While (c0, b')) (body_candidates b)
  | Do_while (b, c0) ->
    List.map (fun c' -> Do_while (b, c')) (expr_shrinks c0)
    @ List.map (fun b' -> Do_while (b', c0)) (body_candidates b)
  | For (i, c0, st, b) ->
    List.map (fun c' -> For (i, c', st, b)) (expr_shrinks c0)
    @ List.map (fun b' -> For (i, c0, st, b')) (body_candidates b)
  | Switch (scrut, cases, d) ->
    List.map (fun s' -> Switch (s', cases, d)) (expr_shrinks scrut)
    @ List.map (fun d' -> Switch (scrut, cases, d')) (body_candidates d)
    @ List.concat
        (List.mapi
           (fun i (k, b) ->
              List.map
                (fun b' ->
                   Switch
                     (scrut,
                      List.mapi (fun j kb -> if j = i then (k, b') else kb)
                        cases,
                      d))
                (body_candidates b))
           cases)
  | Break | Continue -> []

(* All single-step simplifications of a body, coarsest first. *)
and body_candidates (body : stmt list) : stmt list list =
  let removals = List.mapi (fun i _ -> splice body i []) body in
  let hoists =
    List.concat
      (List.mapi
         (fun i s -> List.map (fun sub -> splice body i sub) (stmt_hoists s))
         body)
  in
  let repls =
    List.concat
      (List.mapi
         (fun i s -> List.map (replace body i) (stmt_replacements s))
         body)
  in
  removals @ hoists @ repls

(* --- case-level candidates ------------------------------------------------ *)

let rec expr_calls (e : expr) fname =
  match e with
  | Call (f, args) -> f = fname || List.exists (fun a -> expr_calls a fname) args
  | Bin (_, a, b) -> expr_calls a fname || expr_calls b fname
  | Un (_, a) | Cast (_, _, a) | Load (_, _, a) -> expr_calls a fname
  | Const _ | Var _ | Addr_local _ | Addr_global _ -> false

let rec stmt_calls (s : stmt) fname =
  match s with
  | Assign (_, e) | Return e | Expr e -> expr_calls e fname
  | Store (_, a, v) -> expr_calls a fname || expr_calls v fname
  | If (c0, t, e) ->
    expr_calls c0 fname || body_calls t fname || body_calls e fname
  | While (c0, b) | Do_while (b, c0) ->
    expr_calls c0 fname || body_calls b fname
  | For (i, c0, st, b) ->
    stmt_calls i fname || expr_calls c0 fname || stmt_calls st fname
    || body_calls b fname
  | Switch (scrut, cases, d) ->
    expr_calls scrut fname || body_calls d fname
    || List.exists (fun (_, b) -> body_calls b fname) cases
  | Break | Continue -> false

and body_calls b fname = List.exists (fun s -> stmt_calls s fname) b

(* Rebuild the case with a new entry-function body, dropping helper functions
   that are no longer called. *)
let with_body (case : Gen.t) (body : stmt list) : Gen.t =
  let prog = case.Gen.prog in
  let funcs =
    List.filter_map
      (fun f ->
         if f.fname = case.Gen.fname then Some { f with body }
         else if body_calls body f.fname then Some f
         else None)
      prog.funcs
  in
  { case with Gen.prog = { prog with funcs } }

let entry_body (case : Gen.t) =
  match
    List.find_opt (fun f -> f.fname = case.Gen.fname) case.Gen.prog.funcs
  with
  | Some f -> f.body
  | None -> []

let case_size (case : Gen.t) = body_size (entry_body case)

let input_candidates (case : Gen.t) : Gen.t list =
  let inputs = case.Gen.inputs in
  let drops =
    if List.length inputs > 1 then
      List.mapi
        (fun i _ ->
           { case with
             Gen.inputs = List.filteri (fun j _ -> j <> i) inputs })
        inputs
    else []
  in
  let elems =
    List.concat
      (List.mapi
         (fun i vec ->
            List.concat
              (List.mapi
                 (fun j x ->
                    let cands =
                      match x with 0L -> [] | 1L -> [ 0L ] | _ -> [ 0L; 1L ]
                    in
                    List.map
                      (fun x' ->
                         let vec' =
                           List.mapi (fun k y -> if k = j then x' else y) vec
                         in
                         { case with
                           Gen.inputs =
                             List.mapi (fun k w -> if k = i then vec' else w)
                               inputs })
                      cands)
                 vec))
         inputs)
  in
  drops @ elems

let case_candidates (case : Gen.t) : Gen.t list =
  let bodies =
    List.filter (body_valid ~in_loop:false ~brk:false)
      (body_candidates (entry_body case))
  in
  List.map (with_body case) bodies @ input_candidates case

(* --- main loop ------------------------------------------------------------ *)

(* Greedy fixpoint: take the first accepted candidate, restart from it.
   [pred case] must return true iff [case] still exhibits the failure;
   exceptions raised by [pred] reject the candidate.  [max_tests] bounds the
   total number of predicate evaluations. *)
let minimize ?(max_tests = 1500) ~pred (case0 : Gen.t) : Gen.t =
  let tests = ref 0 in
  let ok case =
    if !tests >= max_tests then false
    else begin
      incr tests;
      (try pred case with _ -> false)
    end
  in
  let rec fix case =
    if !tests >= max_tests then case
    else
      match List.find_opt ok (case_candidates case) with
      | Some case' -> fix case'
      | None -> case
  in
  fix case0
