(* Coverage counters for a fuzzing run.

   Two axes matter for judging how much of the pipeline a run exercised:

   - the opcode mix of the *native* compiled cases (decoded straight from
     each function symbol's .text bytes) — a generator that never emits
     idiv or movsx is not testing those semantics, whatever the case count;
   - gadget statistics from the rewriter (total uses / unique gadgets, the
     A and B of Table III), plus how many entry functions the rewriter
     actually rewrote vs. declined.  A run where every function is declined
     diffs the native binary against itself and proves nothing about ROP. *)

type t = {
  opcodes : (string, int) Hashtbl.t;
  mutable gadget_uses : int;
  mutable gadget_unique : int;
  mutable rop_rewritten : int;
  mutable rop_declined : int;
  mutable vm_built : int;
}

let create () =
  { opcodes = Hashtbl.create 64; gadget_uses = 0; gadget_unique = 0;
    rop_rewritten = 0; rop_declined = 0; vm_built = 0 }

let mnemonic i =
  let s = X86.Pp.instr_str i in
  match String.index_opt s ' ' with Some k -> String.sub s 0 k | None -> s

let count t m =
  Hashtbl.replace t.opcodes m
    (1 + Option.value (Hashtbl.find_opt t.opcodes m) ~default:0)

(* Decode every function symbol of [img] and count mnemonics. *)
let add_image t (img : Image.t) =
  match Image.find_section img ".text" with
  | None -> ()
  | Some sec ->
    List.iter
      (fun (sym : Image.symbol) ->
         if sym.Image.sym_is_function then begin
           let off = Int64.to_int (Int64.sub sym.Image.sym_addr sec.Image.sec_addr) in
           if off >= 0 && off + sym.Image.sym_size <= Bytes.length sec.Image.sec_data
           then begin
             let b = Bytes.sub sec.Image.sec_data off sym.Image.sym_size in
             List.iter (fun (_, i, _) -> count t (mnemonic i))
               (X86.Decode.decode_all b)
           end
         end)
      img.Image.symbols

let add_prepared t (p : Oracle.prepared) =
  add_image t p.Oracle.native_img;
  t.gadget_uses <- t.gadget_uses + p.Oracle.gadget_uses;
  t.gadget_unique <- t.gadget_unique + p.Oracle.gadget_unique;
  (match p.Oracle.rop_img with
   | Some (Ok (_, true)) -> t.rop_rewritten <- t.rop_rewritten + 1
   | Some (Ok (_, false)) -> t.rop_declined <- t.rop_declined + 1
   | Some (Error _) | None -> ());
  match p.Oracle.vm_img with
  | Some (Ok _) -> t.vm_built <- t.vm_built + 1
  | Some (Error _) | None -> ()

(* Fold the counters of [src] into [t]: parallel runs count coverage
   per-case in the worker and merge back here.  Addition is commutative, so
   the merged totals are independent of completion order. *)
let merge t (src : t) =
  Hashtbl.iter
    (fun m n ->
       Hashtbl.replace t.opcodes m
         (n + Option.value (Hashtbl.find_opt t.opcodes m) ~default:0))
    src.opcodes;
  t.gadget_uses <- t.gadget_uses + src.gadget_uses;
  t.gadget_unique <- t.gadget_unique + src.gadget_unique;
  t.rop_rewritten <- t.rop_rewritten + src.rop_rewritten;
  t.rop_declined <- t.rop_declined + src.rop_declined;
  t.vm_built <- t.vm_built + src.vm_built

(* Count-descending, ties broken by mnemonic: fully deterministic, so a
   merged parallel report is byte-identical to a serial one (Hashtbl fold
   order never leaks into the output). *)
let opcode_list t =
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.opcodes [] in
  List.sort
    (fun (ma, a) (mb, b) -> if a <> b then compare b a else compare ma mb)
    l

let report t : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "rop: %d rewritten, %d declined; %d gadget uses, %d unique gadgets\n"
       t.rop_rewritten t.rop_declined t.gadget_uses t.gadget_unique);
  Buffer.add_string buf (Printf.sprintf "vm: %d built\n" t.vm_built);
  Buffer.add_string buf
    (Printf.sprintf "opcode coverage (%d distinct):\n"
       (Hashtbl.length t.opcodes));
  List.iter
    (fun (m, n) -> Buffer.add_string buf (Printf.sprintf "  %-8s %d\n" m n))
    (opcode_list t);
  Buffer.contents buf
