(* Gadget transfer summaries (verification pass 1).

   Each gadget body is abstract-interpreted once into a summary: which
   registers it reads and writes, how it moves RSP through the chain (the
   ordered stack events), what it does to memory and to the status flags, and
   how control leaves it.  The chain walk (pass 2) replays these summaries
   against the materialized slot layout; the clobber pass (pass 3) intersects
   the writes with liveness. *)

open X86.Isa
module R = Analysis.Regset

type mem_effect = M_none | M_read | M_write | M_rw

(* How one body instruction moves RSP relative to the chain, in execution
   order.  The final ret/jop is the [ending], not an event. *)
type stack_ev =
  | Ev_pop            (* consumes the next 8-byte chain slot *)
  | Ev_skip of int    (* rsp += imm: skips a known number of junk bytes *)
  | Ev_branch         (* rsp += reg: chain-relative branch (variable addend) *)
  | Ev_stop           (* rsp replaced wholesale (stack switch, leave, push) *)

type ending =
  | End_ret           (* ret: transfers to the next chain slot *)
  | End_jop           (* jmp reg: leaves the chain *)
  | End_switch_call   (* xchg rsp, [mem]; jmp reg: the stack-switch call
                         idiom (§IV-B2).  RSP is parked pointing at the next
                         chain slot and restored there by the funcret gadget,
                         so the chain resumes right after this gadget's slot. *)
  | End_halt
  | End_fall          (* no terminal instruction: control falls off the body *)

type t = {
  reads : R.t;
  writes : R.t;           (* GPR writes; RSP tracked via events instead *)
  flags_written : bool;
  flags_dirty : bool;     (* flags differ from entry once the gadget ends
                             (a trailing sahf counts as a restore) *)
  mem : mem_effect;
  events : stack_ev list; (* execution order *)
  ending : ending;
}

let join_mem a b =
  match a, b with
  | M_none, x | x, M_none -> x
  | M_read, M_read -> M_read
  | M_write, M_write -> M_write
  | _ -> M_rw

(* Memory effect of one instruction (stack traffic is tracked separately as
   events, so push/pop count only their explicit memory operands). *)
let mem_effect_of = function
  | Mov (_, Mem _, _) -> M_write
  | Mov (_, _, Mem _) -> M_read
  | Movzx (_, _, _, Mem _) | Movsx (_, _, _, Mem _) -> M_read
  | Lea _ -> M_none                       (* address-only *)
  | Push (Mem _) -> M_read
  | Pop (Mem _) -> M_write
  | Alu ((Cmp | Test), _, Mem _, _) -> M_read
  | Alu (_, _, Mem _, _) -> M_rw
  | Alu (_, _, _, Mem _) -> M_read
  | Unary (_, _, Mem _) -> M_rw
  | Shift (_, _, Mem _, _) -> M_rw
  | Imul2 (_, _, Mem _) -> M_read
  | MulDiv (_, Mem _) -> M_read
  | Cmov (_, _, Mem _) -> M_read
  | Setcc (_, Mem _) -> M_write
  | Xchg (_, Mem _, _) | Xchg (_, _, Mem _) -> M_rw
  | _ -> M_none

let stack_ev_of = function
  | Pop _ -> Some Ev_pop
  | Push _ -> Some Ev_stop            (* writes below RSP: never chain-safe *)
  | Alu (Add, W64, Reg RSP, Imm k) -> Some (Ev_skip (Int64.to_int k))
  | Alu (Sub, W64, Reg RSP, Imm k) -> Some (Ev_skip (- Int64.to_int k))
  | Alu (_, W64, Reg RSP, Reg _) -> Some Ev_branch
  | Alu (_, _, Reg RSP, _) -> Some Ev_stop
  | Mov (_, Reg RSP, _) -> Some Ev_stop
  | Xchg (_, Reg RSP, _) | Xchg (_, _, Reg RSP) -> Some Ev_stop
  | Leave -> Some Ev_stop
  | Jmp (J_rel _) | Jcc _ | Call _ -> Some Ev_stop  (* native transfer *)
  | _ -> None

let of_instrs (instrs : instr list) : t =
  let reads = ref R.empty and writes = ref R.empty in
  let flags_written = ref false and flags_dirty = ref false in
  let mem = ref M_none in
  let events = ref [] in
  let ending = ref End_fall in
  let rec go = function
    | [] -> ()
    | [ (Xchg (_, Reg RSP, Mem _) | Xchg (_, Mem _, Reg RSP)) as x;
        Jmp (J_op op) ] ->
      let uses, _ = Analysis.Reguse.def_use x in
      reads := R.union !reads (R.union uses (Analysis.Reguse.use_operand op));
      mem := join_mem !mem M_rw;
      ending := End_switch_call
    | [ Ret ] -> ending := End_ret
    | [ Jmp (J_op op) ] ->
      reads := R.union !reads (Analysis.Reguse.use_operand op);
      ending := End_jop
    | [ Hlt ] -> ending := End_halt
    | i :: rest ->
      let uses, defs = Analysis.Reguse.def_use i in
      reads := R.union !reads uses;
      writes :=
        R.union !writes (R.diff defs (R.add_flags (R.of_reg RSP)));
      if Analysis.Reguse.clobbers_flags i then begin
        flags_written := true;
        (* sahf restores the spilled flag state; anything else pollutes it *)
        flags_dirty := i <> Sahf
      end;
      mem := join_mem !mem (mem_effect_of i);
      (match stack_ev_of i with
       | Some ev -> events := ev :: !events
       | None -> ());
      go rest
  in
  go instrs;
  { reads = !reads; writes = !writes;
    flags_written = !flags_written; flags_dirty = !flags_dirty;
    mem = !mem; events = List.rev !events; ending = !ending }

let of_gadget (g : Gadget.t) : t = of_instrs (Gadget.instrs g)

let ending_str = function
  | End_ret -> "ret"
  | End_jop -> "jmp-reg"
  | End_switch_call -> "switch-call"
  | End_halt -> "hlt"
  | End_fall -> "fallthrough"

let mem_str = function
  | M_none -> "none"
  | M_read -> "read"
  | M_write -> "write"
  | M_rw -> "read-write"

let to_string s =
  Printf.sprintf "reads{%s} writes{%s} mem:%s flags:%s ending:%s pops:%d"
    (Format.asprintf "%a" R.pp s.reads)
    (Format.asprintf "%a" R.pp s.writes)
    (mem_str s.mem)
    (if s.flags_dirty then "dirty" else if s.flags_written then "restored"
     else "preserved")
    (ending_str s.ending)
    (List.length (List.filter (fun e -> e = Ev_pop) s.events))
