(* Uniform diagnostic findings, shared by every static checker.

   ropcheck's typed diagnostics (Diag) and roplint's analysis passes
   (lib/staticanalysis) both render through this one type, so drivers can mix
   findings from either source into a single report with a stable
   severity[tag] function@addr format.  The [tag] is a machine-matchable
   kebab-case slug (tests assert on tags, not message strings). *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  tag : string;                (* machine-matchable kind, e.g. "chain-bad-slot" *)
  func : string option;        (* function the finding belongs to *)
  addr : int64 option;         (* absolute image address, when meaningful *)
  chain_off : int option;      (* offset within the function's chain *)
  msg : string;
}

let make ?(severity = Error) ?func ?addr ?chain_off tag msg =
  { severity; tag; func; addr; chain_off; msg }

let severity_str = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let render f =
  let where =
    (match f.func with Some fn -> [ fn ] | None -> [])
    @ (match f.addr with Some a -> [ Printf.sprintf "@%Lx" a ] | None -> [])
    @ (match f.chain_off with
       | Some o -> [ Printf.sprintf "chain+%d" o ]
       | None -> [])
  in
  let where = match where with [] -> "" | ws -> String.concat " " ws ^ ": " in
  Printf.sprintf "%s[%s] %s%s" (severity_str f.severity) f.tag where f.msg

let errors fs = List.filter (fun f -> f.severity = Error) fs
let warnings fs = List.filter (fun f -> f.severity = Warning) fs

let render_all fs = String.concat "\n" (List.map render fs)

(* Render for a driver report: errors always, the rest only when [verbose];
   one indented line per finding.  Drivers that run checks in worker
   processes (--jobs) build their output from this instead of printing, so
   the parent can emit results in deterministic order. *)
let render_report ?(verbose = false) fs =
  List.filter (fun f -> f.severity = Error || verbose) fs
  |> List.map (fun f -> "  " ^ render f ^ "\n")
  |> String.concat ""

(* Count per severity: (errors, warnings, infos). *)
let counts fs =
  List.fold_left
    (fun (e, w, i) f ->
       match f.severity with
       | Error -> (e + 1, w, i)
       | Warning -> (e, w + 1, i)
       | Info -> (e, w, i + 1))
    (0, 0, 0) fs

(* Escape for embedding messages in hand-emitted JSON reports. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  let b = Buffer.create 128 in
  Printf.bprintf b "{\"severity\":\"%s\",\"tag\":\"%s\""
    (severity_str f.severity) (json_escape f.tag);
  (match f.func with
   | Some fn -> Printf.bprintf b ",\"func\":\"%s\"" (json_escape fn)
   | None -> ());
  (match f.addr with
   | Some a -> Printf.bprintf b ",\"addr\":\"0x%Lx\"" a
   | None -> ());
  (match f.chain_off with
   | Some o -> Printf.bprintf b ",\"chain_off\":%d" o
   | None -> ());
  Printf.bprintf b ",\"msg\":\"%s\"}" (json_escape f.msg);
  Buffer.contents b
