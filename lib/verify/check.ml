(* The four verification passes (ropcheck's core).

   Input: a rewritten image plus the rewriter's audit artifact (Ropc.Audit).
   The audit is a set of *claims*; every pass re-derives the corresponding
   fact from the image bytes and reports divergence as a typed diagnostic.

   Pass 1  gadget summaries   decode each pool gadget from the image, check
                              it against the recorded body, and abstract it
                              into a transfer summary (Summary.t).
   Pass 2  chain typechecking byte-check every materialized slot, then walk
                              the chain abstractly: each ret must land on a
                              gadget slot, skews must be skipped exactly, and
                              P1 array cells must keep their class residue.
   Pass 3  clobber validation replay each roplet's gadget writes against the
                              liveness facts the lowering claimed.
   Pass 4  image layout       sections disjoint, pivot stub installed and in
                              bounds, chains inside .rop, jump-table entries
                              equal to their label displacement. *)

module R = Analysis.Regset
module A = Ropc.Audit
open X86.Isa

(* --- image helpers -------------------------------------------------------- *)

let section_of_addr (img : Image.t) addr =
  List.find_opt
    (fun s ->
       Int64.compare s.Image.sec_addr addr <= 0
       && Int64.compare addr (Image.section_end s) < 0)
    img.Image.sections

let read64 img addr =
  let rec go i acc =
    if i < 0 then Some acc
    else
      match Image.read_byte img (Int64.add addr (Int64.of_int i)) with
      | None -> None
      | Some b ->
        go (i - 1) (Int64.logor (Int64.shift_left acc 8) (Int64.of_int b))
  in
  go 7 0L

(* --- pass 1: gadget summaries --------------------------------------------- *)

(* Decode [n] instructions from the image starting at [addr]. *)
let decode_at img addr n =
  match section_of_addr img addr with
  | None -> None
  | Some s ->
    let off0 = Int64.to_int (Int64.sub addr s.Image.sec_addr) in
    let rec go off k acc =
      if k = 0 then Some (List.rev acc)
      else
        match X86.Decode.decode s.Image.sec_data off with
        | None -> None
        | Some (i, len) -> go (off + len) (k - 1) (i :: acc)
    in
    go off0 n []

(* Does the body read the status flags before (re)writing them?  Decides
   whether a flag-clobbering diversification prefix is safe to prepend. *)
let rec reads_flags_first = function
  | [] -> false
  | i :: rest ->
    if Analysis.Reguse.reads_flags i then true
    else if Analysis.Reguse.clobbers_flags i then false
    else reads_flags_first rest

let gadget_pass img (audit : A.t) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let summaries = Hashtbl.create (List.length audit.A.a_gadgets) in
  List.iter
    (fun (g : A.gadget_rec) ->
       let claimed = Gadget.instrs g.A.g_gadget in
       Hashtbl.replace summaries g.A.g_addr (Summary.of_instrs claimed);
       (* the claimed body must be what the image actually decodes to *)
       (match decode_at img g.A.g_addr (List.length claimed) with
        | None ->
          emit (Diag.make ~addr:g.A.g_addr Diag.Gadget_decode_mismatch
                  "gadget bytes do not decode")
        | Some actual ->
          if actual <> claimed then
            emit
              (Diag.make ~addr:g.A.g_addr Diag.Gadget_decode_mismatch
                 (Printf.sprintf "image decodes to [%s], audit claims [%s]"
                    (String.concat "; " (List.map X86.Pp.instr_str actual))
                    (String.concat "; "
                       (List.map X86.Pp.instr_str claimed)))));
       (* ending class sanity: a ret-gadget must end in ret; a jop gadget in
          jmp-reg (the shared funcret gadget legitimately ends in ret after
          an rsp exchange, so accept both there) *)
       let s = Summary.of_instrs claimed in
       (match g.A.g_gadget.Gadget.ending, s.Summary.ending with
        | Gadget.E_ret, Summary.End_ret -> ()
        | Gadget.E_jop _,
          (Summary.End_jop | Summary.End_switch_call | Summary.End_ret) -> ()
        | _, e ->
          emit
            (Diag.make ~addr:g.A.g_addr Diag.Gadget_bad_ending
               (Printf.sprintf "gadget body ends in %s"
                  (Summary.ending_str e))));
       (* diversification-prefix safety: the prefix may only write its
          recorded registers, and a flag-clobbering prefix must not feed a
          body that reads flags before rewriting them *)
       (match g.A.g_prefix, g.A.g_gadget.Gadget.body with
        | [], _ -> ()
        | _ :: _, [] ->
          emit
            (Diag.make ~addr:g.A.g_addr Diag.Gadget_prefix_unsafe
               "prefix recorded but gadget body is empty")
        | regs, first :: rest ->
          let _, defs = Analysis.Reguse.def_use first in
          let extra =
            R.diff (R.diff defs (R.of_list regs)) R.flags_bit
          in
          if extra <> R.empty then
            emit
              (Diag.make ~addr:g.A.g_addr Diag.Gadget_prefix_unsafe
                 (Format.asprintf
                    "prefix %s writes %a beyond its recorded set"
                    (X86.Pp.instr_str first) R.pp extra));
          if Analysis.Reguse.clobbers_flags first
             && reads_flags_first rest then
            emit
              (Diag.make ~addr:g.A.g_addr Diag.Gadget_prefix_unsafe
                 (Printf.sprintf
                    "flag-clobbering prefix %s feeds a flag-reading body"
                    (X86.Pp.instr_str first))));
       (* synthesized gadgets must live inside the recorded pool range *)
       if not g.A.g_found
          && not (Int64.compare audit.A.a_pool_lo g.A.g_addr <= 0
                  && Int64.compare g.A.g_addr audit.A.a_pool_hi < 0)
       then
         emit
           (Diag.make ~addr:g.A.g_addr Diag.Gadget_outside_pool
              (Printf.sprintf "synthesized gadget outside pool [%Lx, %Lx)"
                 audit.A.a_pool_lo audit.A.a_pool_hi)))
    audit.A.a_gadgets;
  (List.rev !diags, summaries)

(* --- pass 2: chain typechecking ------------------------------------------- *)

let chain_pass img summaries (f : A.func) =
  let diags = ref [] in
  let emit ?severity ?addr ?chain_off kind msg =
    diags :=
      Diag.make ?severity ~func:f.A.f_name ?addr ?chain_off kind msg
      :: !diags
  in
  let chain_addr off = Int64.add f.A.f_chain_base (Int64.of_int off) in
  (* index the layout: 8-byte data slots and skew gaps, by chain offset *)
  let slot8 = Hashtbl.create 64 and skew_at = Hashtbl.create 8 in
  Array.iter
    (fun (off, s) ->
       match s with
       | Ropc.Chain.S_gadget _ | Ropc.Chain.S_imm _ | Ropc.Chain.S_disp _
       | Ropc.Chain.S_opaque _ | Ropc.Chain.S_opaque_dispatch _ ->
         Hashtbl.replace slot8 off s
       | Ropc.Chain.S_skew eta -> Hashtbl.replace skew_at off eta
       | Ropc.Chain.S_label _ | Ropc.Chain.S_anchor _ -> ())
    f.A.f_layout;
  let label_off name = List.assoc_opt name f.A.f_labels in
  (* (a) byte check: every materialized slot must hold its symbolic value *)
  Array.iter
    (fun (off, s) ->
       let expect v =
         match read64 img (chain_addr off) with
         | Some actual when Int64.equal actual v -> ()
         | Some actual ->
           emit ~addr:(chain_addr off) ~chain_off:off Diag.Chain_byte_mismatch
             (Printf.sprintf "slot holds %Lx, expected %Lx" actual v)
         | None ->
           emit ~addr:(chain_addr off) ~chain_off:off Diag.Chain_byte_mismatch
             "slot is outside every section"
       in
       match s with
       | Ropc.Chain.S_gadget a | Ropc.Chain.S_imm a -> expect a
       | Ropc.Chain.S_opaque { oq_value; oq_cls; oq_residue; oq_mult } ->
         (* recompute the stored bytes from the P1 array's ground truth, not
            from the recorded residue: a slot encoded against the wrong
            residue class (the debug_opaque_residue seeded fault) genuinely
            recovers the wrong value at runtime, and must be flagged here *)
         let residue =
           match f.A.f_p1 with
           | Some (_, _, a) when oq_cls >= 0 && oq_cls < Array.length a ->
             Int64.of_int a.(oq_cls)
           | _ -> oq_residue
         in
         expect
           (Ropc.Chain.opaque_stored ~value:oq_value ~residue ~mult:oq_mult)
       | Ropc.Chain.S_opaque_dispatch { od_jop; _ } -> expect od_jop
       | Ropc.Chain.S_disp { target; anchor; bias } ->
         (match label_off target, label_off anchor with
          | Some t, Some a ->
            expect (Int64.sub (Int64.of_int (t - a)) bias);
            (* the displacement must deliver RSP onto a gadget slot *)
            (match Hashtbl.find_opt slot8 t with
             | Some (Ropc.Chain.S_gadget _ | Ropc.Chain.S_opaque_dispatch _)
               -> ()
             | _ ->
               emit ~chain_off:off Diag.Chain_bad_disp
                 (Printf.sprintf "target %s (chain+%d) is not a gadget slot"
                    target t))
          | None, _ ->
            emit ~chain_off:off Diag.Chain_bad_disp
              ("undefined displacement target " ^ target)
          | _, None ->
            emit ~chain_off:off Diag.Chain_bad_disp
              ("undefined displacement anchor " ^ anchor))
       | Ropc.Chain.S_label _ | Ropc.Chain.S_anchor _
       | Ropc.Chain.S_skew _ -> ())
    f.A.f_layout;
  (* (b) P1 opaque-array residues: class cells must keep a_c (mod m) *)
  (match f.A.f_p1 with
   | None -> ()
   | Some (base, p1, a) ->
     let m = Int64.of_int p1.Ropc.Config.m in
     for i = 0 to p1.Ropc.Config.p - 1 do
       for c = 0 to p1.Ropc.Config.n - 1 do
         let cell =
           Int64.add base (Int64.of_int (8 * ((i * p1.Ropc.Config.s) + c)))
         in
         match read64 img cell with
         | None ->
           emit ~addr:cell Diag.Chain_p1_invariant
             "P1 array cell outside every section"
         | Some v ->
           if Int64.to_int (Int64.rem v m) <> a.(c) then
             emit ~addr:cell Diag.Chain_p1_invariant
               (Printf.sprintf
                  "cell %d.%d holds %Ld =/= %d (mod %d)" i c v a.(c)
                  p1.Ropc.Config.m)
       done
     done);
  (* (c) abstract walk.  RSP starts at chain+0; the other entry points are
     exactly the offsets some displacement slot or jump-table entry can
     deliver RSP to (anchors are RSP *bases*, never continuations, so
     seeding all of f_labels would walk past the chain end). *)
  let visited = Hashtbl.create 64 in   (* executed gadget-slot offsets *)
  let consumed = Hashtbl.create 64 in  (* slots popped as data *)
  let queue = Queue.create () in
  Queue.add 0 queue;
  Array.iter
    (fun (_, s) ->
       match s with
       | Ropc.Chain.S_disp { target; _ } ->
         (match label_off target with
          | Some t -> Queue.add t queue
          | None -> ())
       | _ -> ())
    f.A.f_layout;
  List.iter
    (fun (_, _, targets) ->
       List.iter
         (fun t ->
            match label_off t with
            | Some o -> Queue.add o queue
            | None -> ())
         targets)
    f.A.f_tables;
  (* consume [k] bytes of chain at [cur]; true if the layout supports it *)
  let skippable cur k =
    match Hashtbl.find_opt skew_at cur with
    | Some eta -> eta = k
    | None ->
      (* no skew: only whole 8-byte slots may be skipped *)
      k >= 0 && k mod 8 = 0
      && (let ok = ref true in
          for j = 0 to (k / 8) - 1 do
            if not (Hashtbl.mem slot8 (cur + (8 * j))) then ok := false
          done;
          !ok)
  in
  (* [spec] marks a speculative path: one entered by falling through an
     [Ev_branch] (rsp += reg).  The verifier cannot decide whether such a
     fall-through is live — P2 trampolines branch unconditionally and leave a
     dead restore gadget behind the anchor — so speculative paths are walked
     (to cover genuinely-live conditional fall-throughs and to suppress false
     unreachable-slot warnings) but never produce diagnostics.  A later
     non-speculative visit upgrades the offset and re-checks it for real. *)
  let rec step ~spec off =
    let revisit_ok =
      match Hashtbl.find_opt visited off with
      | None -> true
      | Some was_spec -> was_spec && not spec
    in
    if revisit_ok then begin
      Hashtbl.replace visited off spec;
      match Hashtbl.find_opt slot8 off with
      | None ->
        if not spec then
          emit ~chain_off:off Diag.Chain_bad_slot
            "execution reaches a chain offset holding no slot"
      | Some (Ropc.Chain.S_imm _ | Ropc.Chain.S_disp _
             | Ropc.Chain.S_opaque _) ->
        if not spec then
          emit ~chain_off:off Diag.Chain_bad_slot
            "execution lands on a data slot, not a gadget address"
      | Some (Ropc.Chain.S_gadget a) ->
        (match Hashtbl.find_opt summaries a with
         | None ->
           if not spec then
             emit ~chain_off:off ~addr:a Diag.Chain_unknown_gadget
               (Printf.sprintf "slot points at %Lx, not a known gadget" a)
         | Some (s : Summary.t) -> exec_summary ~spec off a s)
      | Some (Ropc.Chain.S_opaque_dispatch { od_jop; od_target }) ->
        (* the slot holds a jmp-reg trampoline; the register it jumps
           through was recovered opaquely and carries [od_target], whose
           own ret continues the chain.  Walk the target's summary as if
           its address sat in the slot. *)
        (match Hashtbl.find_opt summaries od_jop with
         | None ->
           if not spec then
             emit ~chain_off:off ~addr:od_jop Diag.Chain_unknown_gadget
               (Printf.sprintf
                  "dispatch slot points at %Lx, not a known gadget" od_jop)
         | Some (j : Summary.t) ->
           let stackless =
             List.for_all
               (function
                 | Summary.Ev_pop | Summary.Ev_skip _ | Summary.Ev_branch ->
                   false
                 | Summary.Ev_stop -> true)
               j.Summary.events
           in
           if j.Summary.ending <> Summary.End_jop || not stackless then begin
             if not spec then
               emit ~chain_off:off ~addr:od_jop Diag.Chain_stack_mismatch
                 (Printf.sprintf
                    "dispatch trampoline %Lx is not a stack-neutral \
                     jmp-reg gadget" od_jop)
           end
           else
             match Hashtbl.find_opt summaries od_target with
             | None ->
               if not spec then
                 emit ~chain_off:off ~addr:od_target Diag.Chain_unknown_gadget
                   (Printf.sprintf
                      "opaque dispatch targets %Lx, not a known gadget"
                      od_target)
             | Some (s : Summary.t) -> exec_summary ~spec off od_target s)
      | Some ((Ropc.Chain.S_label _ | Ropc.Chain.S_anchor _
              | Ropc.Chain.S_skew _) as s) ->
        (* zero-width markers share offsets with data slots and are filtered
           out of [slot8]; reaching one means the layout table is corrupt *)
        invalid_arg
          (Printf.sprintf
             "Verify.Check.chain_pass: marker slot %s in %s at chain+%d \
              escaped the slot filter"
             (match s with
              | Ropc.Chain.S_label l -> Printf.sprintf "label %S" l
              | Ropc.Chain.S_anchor a -> Printf.sprintf "anchor %S" a
              | Ropc.Chain.S_skew k -> Printf.sprintf "skew %d" k
              | _ -> "?")
             f.A.f_name off)
    end
  (* run gadget [a]'s summary [s] for a slot at chain offset [off] *)
  and exec_summary ~spec off a (s : Summary.t) =
    let cur = ref (off + 8) and stopped = ref false in
    List.iter
      (fun ev ->
         if not !stopped then
           match ev with
           | Summary.Ev_pop ->
             if Hashtbl.mem slot8 !cur then begin
               Hashtbl.replace consumed !cur ();
               cur := !cur + 8
             end else begin
               if not spec then
                 emit ~chain_off:!cur ~addr:a Diag.Chain_stack_mismatch
                   (Printf.sprintf
                      "gadget %Lx pops chain+%d, which holds no slot"
                      a !cur);
               stopped := true
             end
           | Summary.Ev_skip k ->
             if skippable !cur k then cur := !cur + k
             else begin
               if not spec then
                 emit ~chain_off:!cur ~addr:a Diag.Chain_stack_mismatch
                   (Printf.sprintf
                      "gadget %Lx skips %d bytes at chain+%d, \
                       which the layout does not provide" a k !cur);
               stopped := true
             end
           | Summary.Ev_branch ->
             (* variable addend: the possible targets are covered by
                the displacement seeds; keep walking past the branch
                speculatively if a gadget sits there (the layout of a
                conditional fall-through), else stop *)
             (match Hashtbl.find_opt slot8 !cur with
              | Some (Ropc.Chain.S_gadget _
                     | Ropc.Chain.S_opaque_dispatch _) ->
                step ~spec:true !cur
              | _ -> ());
             stopped := true
           | Summary.Ev_stop -> stopped := true)
      s.Summary.events;
    if not !stopped then
      match s.Summary.ending with
      | Summary.End_ret | Summary.End_switch_call -> step ~spec !cur
      | Summary.End_jop | Summary.End_halt | Summary.End_fall -> ()
  in
  while not (Queue.is_empty queue) do
    step ~spec:false (Queue.pop queue)
  done;
  (* every gadget slot should either execute or be popped as data *)
  Array.iter
    (fun (off, s) ->
       match s with
       | Ropc.Chain.S_gadget _ | Ropc.Chain.S_opaque_dispatch _
         when (not (Hashtbl.mem visited off))
              && not (Hashtbl.mem consumed off) ->
         emit ~severity:Diag.Warning ~chain_off:off
           Diag.Chain_unreachable_slot
           "gadget slot neither executed nor consumed by the abstract walk"
       | _ -> ())
    f.A.f_layout;
  List.rev !diags

(* --- pass 3: clobber validation ------------------------------------------- *)

let clobber_pass summaries (f : A.func) =
  let diags = ref [] in
  List.iter
    (fun (p : A.point) ->
       let clobbered = ref R.empty and flags_dirty = ref false in
       let absorb a =
         match Hashtbl.find_opt summaries a with
         | None -> ()    (* pass 2 already reported it *)
         | Some (su : Summary.t) ->
           clobbered := R.union !clobbered su.Summary.writes;
           if su.Summary.flags_dirty then flags_dirty := true
           else if su.Summary.flags_written then flags_dirty := false
       in
       Array.iter
         (fun (_, s) ->
            match s with
            | Ropc.Chain.S_gadget a -> absorb a
            | Ropc.Chain.S_opaque_dispatch { od_jop; od_target } ->
              absorb od_jop; absorb od_target
            | _ -> ())
         p.A.p_slots;
       let excused =
         R.add (R.union p.A.p_defs p.A.p_borrowed) RSP
       in
       let bad = R.diff (R.inter !clobbered p.A.p_live) excused in
       List.iter
         (fun r ->
            diags :=
              Diag.make ~func:f.A.f_name ~addr:p.A.p_addr
                Diag.Clobber_live_reg
                (Printf.sprintf "roplet '%s' clobbers live register %s"
                   p.A.p_desc (X86.Pp.reg_name r))
              :: !diags)
         (R.to_list bad);
       if !flags_dirty && p.A.p_flags_live && not (R.mem_flags p.A.p_defs)
       then
         diags :=
           Diag.make ~func:f.A.f_name ~addr:p.A.p_addr Diag.Clobber_live_flags
             (Printf.sprintf "roplet '%s' leaves flags dirty while live"
                p.A.p_desc)
           :: !diags)
    f.A.f_points;
  List.rev !diags

(* --- pass 4: image layout ------------------------------------------------- *)

let layout_pass img (audit : A.t) (f : A.func) =
  let diags = ref [] in
  let emit ?addr kind msg =
    diags := Diag.make ~func:f.A.f_name ?addr kind msg :: !diags
  in
  (* the pivot stub must fit the original body and be byte-identical to a
     re-encoding from the recorded ss/chain addresses *)
  let stub =
    Ropc.Rewriter.pivot_stub ~ss_addr:audit.A.a_ss_addr
      ~chain_addr:f.A.f_chain_base
  in
  if Bytes.length stub > f.A.f_sym_size then
    emit ~addr:f.A.f_sym_addr Diag.Layout_stub_overflow
      (Printf.sprintf "pivot stub is %d bytes, function body only %d"
         (Bytes.length stub) f.A.f_sym_size);
  if Bytes.length stub <> f.A.f_stub_len then
    emit ~addr:f.A.f_sym_addr Diag.Layout_stub_mismatch
      (Printf.sprintf "recorded stub length %d, re-encoded %d"
         f.A.f_stub_len (Bytes.length stub))
  else begin
    let ok = ref true in
    Bytes.iteri
      (fun i b ->
         match Image.read_byte img
                 (Int64.add f.A.f_sym_addr (Int64.of_int i)) with
         | Some x when x = Char.code b -> ()
         | _ -> ok := false)
      stub;
    if not !ok then
      emit ~addr:f.A.f_sym_addr Diag.Layout_stub_mismatch
        "installed bytes differ from the re-encoded pivot stub"
  end;
  (* the chain must sit inside .rop *)
  (match Image.find_section img ".rop" with
   | None ->
     emit Diag.Layout_chain_bounds "image has no .rop section"
   | Some s ->
     let lo = s.Image.sec_addr and hi = Image.section_end s in
     let cend = Int64.add f.A.f_chain_base (Int64.of_int f.A.f_chain_len) in
     if Int64.compare f.A.f_chain_base lo < 0 || Int64.compare cend hi > 0
     then
       emit ~addr:f.A.f_chain_base Diag.Layout_chain_bounds
         (Printf.sprintf "chain [%Lx, %Lx) outside .rop [%Lx, %Lx)"
            f.A.f_chain_base cend lo hi));
  (* jump tables: each 8-byte entry must equal off(target) - off(anchor) and
     deliver RSP to a gadget slot *)
  let slot8_gadget off =
    Array.exists
      (fun (o, s) ->
         o = off
         && match s with Ropc.Chain.S_gadget _ -> true | _ -> false)
      f.A.f_layout
  in
  List.iter
    (fun (table_addr, anchor, targets) ->
       match List.assoc_opt anchor f.A.f_labels with
       | None ->
         emit ~addr:table_addr Diag.Layout_table_entry
           ("jump-table anchor " ^ anchor ^ " is not a chain label")
       | Some aoff ->
         List.iteri
           (fun i target ->
              let entry = Int64.add table_addr (Int64.of_int (8 * i)) in
              match List.assoc_opt target f.A.f_labels with
              | None ->
                emit ~addr:entry Diag.Layout_table_entry
                  ("jump-table target " ^ target ^ " is not a chain label")
              | Some toff ->
                let expected = Int64.of_int (toff - aoff) in
                (match read64 img entry with
                 | Some v when Int64.equal v expected -> ()
                 | Some v ->
                   emit ~addr:entry Diag.Layout_table_entry
                     (Printf.sprintf "entry %d holds %Ld, expected %Ld"
                        i v expected)
                 | None ->
                   emit ~addr:entry Diag.Layout_table_entry
                     "entry lies outside every section");
                if not (slot8_gadget toff) then
                  emit ~addr:entry Diag.Layout_table_entry
                    (Printf.sprintf
                       "entry %d target %s (chain+%d) is not a gadget slot"
                       i target toff))
           targets)
    f.A.f_tables;
  List.rev !diags

(* image-wide: no two non-empty sections may overlap *)
let sections_pass (img : Image.t) =
  let secs =
    List.filter (fun s -> Bytes.length s.Image.sec_data > 0)
      img.Image.sections
  in
  let rec pairs = function
    | [] -> []
    | s :: rest -> List.map (fun t -> (s, t)) rest @ pairs rest
  in
  List.filter_map
    (fun (a, b) ->
       let a_lo = a.Image.sec_addr and a_hi = Image.section_end a in
       let b_lo = b.Image.sec_addr and b_hi = Image.section_end b in
       if Int64.compare a_lo b_hi < 0 && Int64.compare b_lo a_hi < 0 then
         Some
           (Diag.make ~addr:(max a_lo b_lo) Diag.Layout_section_overlap
              (Printf.sprintf "%s [%Lx, %Lx) overlaps %s [%Lx, %Lx)"
                 a.Image.sec_name a_lo a_hi b.Image.sec_name b_lo b_hi))
       else None)
    (pairs secs)

(* --- driver ---------------------------------------------------------------- *)

let run img (audit : A.t) =
  let gdiags, summaries = gadget_pass img audit in
  let per_func =
    List.concat_map
      (fun f ->
         chain_pass img summaries f
         @ clobber_pass summaries f
         @ layout_pass img audit f)
      audit.A.a_funcs
  in
  gdiags @ per_func @ sections_pass img

let check (r : Ropc.Rewriter.result) =
  run r.Ropc.Rewriter.image r.Ropc.Rewriter.audit
