(* Typed diagnostics for the static chain verifier.

   Every finding carries a severity, a machine-matchable kind (the negative
   tests assert on kinds, not message strings), the function and image/chain
   position it anchors to, and a human rendering. *)

type severity = Error | Warning | Info

type kind =
  (* pass 1: gadget summaries *)
  | Gadget_decode_mismatch    (* image bytes do not decode to the claimed body *)
  | Gadget_bad_ending         (* recorded ending class vs decoded terminal instr *)
  | Gadget_prefix_unsafe      (* diversification prefix breaks the body's flag use *)
  | Gadget_outside_pool       (* synthesized gadget not inside the pool range *)
  (* pass 2: chain typechecking *)
  | Chain_bad_slot            (* execution lands on a non-gadget slot *)
  | Chain_stack_mismatch      (* pops/skips disagree with the slot layout *)
  | Chain_unknown_gadget      (* gadget-address slot resolves to no known gadget *)
  | Chain_byte_mismatch       (* materialized bytes disagree with the slot value *)
  | Chain_bad_disp            (* displacement labels missing or target not a gadget *)
  | Chain_p1_invariant        (* P1 opaque-array cell breaks its class residue *)
  | Chain_unreachable_slot    (* gadget slot no abstract walk reaches *)
  (* pass 3: clobber validation *)
  | Clobber_live_reg          (* roplet clobbers a live register *)
  | Clobber_live_flags        (* roplet leaves flags dirty while they are live *)
  (* pass 4: image layout *)
  | Layout_section_overlap
  | Layout_stub_overflow      (* pivot stub larger than the function body *)
  | Layout_stub_mismatch      (* installed stub bytes are not the pivot stub *)
  | Layout_table_entry        (* jump-table entry off target or out of range *)
  | Layout_chain_bounds       (* chain not inside the .rop section *)

type t = {
  severity : severity;
  kind : kind;
  func : string option;       (* rewritten function the finding belongs to *)
  addr : int64 option;        (* absolute image address, when meaningful *)
  chain_off : int option;     (* offset within the function's chain *)
  msg : string;
}

let make ?(severity = Error) ?func ?addr ?chain_off kind msg =
  { severity; kind; func; addr; chain_off; msg }

let severity_str = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let kind_str = function
  | Gadget_decode_mismatch -> "gadget-decode-mismatch"
  | Gadget_bad_ending -> "gadget-bad-ending"
  | Gadget_prefix_unsafe -> "gadget-prefix-unsafe"
  | Gadget_outside_pool -> "gadget-outside-pool"
  | Chain_bad_slot -> "chain-bad-slot"
  | Chain_stack_mismatch -> "chain-stack-mismatch"
  | Chain_unknown_gadget -> "chain-unknown-gadget"
  | Chain_byte_mismatch -> "chain-byte-mismatch"
  | Chain_bad_disp -> "chain-bad-disp"
  | Chain_p1_invariant -> "chain-p1-invariant"
  | Chain_unreachable_slot -> "chain-unreachable-slot"
  | Clobber_live_reg -> "clobber-live-reg"
  | Clobber_live_flags -> "clobber-live-flags"
  | Layout_section_overlap -> "layout-section-overlap"
  | Layout_stub_overflow -> "layout-stub-overflow"
  | Layout_stub_mismatch -> "layout-stub-mismatch"
  | Layout_table_entry -> "layout-table-entry"
  | Layout_chain_bounds -> "layout-chain-bounds"

(* Diagnostics render through the shared findings type (Finding), so
   ropcheck and roplint emit one uniform severity[tag] function@addr format
   and drivers can pool both into a single report. *)
let to_finding d : Finding.t =
  { Finding.severity =
      (match d.severity with
       | Error -> Finding.Error
       | Warning -> Finding.Warning
       | Info -> Finding.Info);
    tag = kind_str d.kind;
    func = d.func;
    addr = d.addr;
    chain_off = d.chain_off;
    msg = d.msg }

let render d = Finding.render (to_finding d)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let render_all ds = Finding.render_all (List.map to_finding ds)

(* Render for a driver report: errors always, the rest only when [verbose];
   see Finding.render_report. *)
let render_report ?verbose ds =
  Finding.render_report ?verbose (List.map to_finding ds)

(* Count per severity: (errors, warnings, infos). *)
let counts ds = Finding.counts (List.map to_finding ds)
