(* ROPMEMU-style dynamic multi-path exploration (§III-B2).

   Emulates a ROP-encoded function concretely and looks for instructions
   that read CPU condition flags (the flag-leaking sequences used to encode
   branches, §II-B).  It then re-runs the program flipping the flags at one
   such site per run, trying to force execution down the alternate path and
   so reveal new chain code.  Discovered code is measured as the set of
   chain offsets from which gadgets were fetched, plus coverage probes
   touched.

   Against P2, a blind flip leaves the guard operands untouched, so RSP
   flows into unintended code and the run faults (§V-B). *)

open X86.Isa

type config = {
  fuel : int;                  (* per trace *)
  max_traces : int;
  max_flip_depth : int;        (* how many sites flipped in one run *)
}

let default_config = { fuel = 3_000_000; max_traces = 200; max_flip_depth = 1 }

type result = {
  traces : int;
  faulted_traces : int;
  discovered_slots : (int64, unit) Hashtbl.t;   (* chain slots reached *)
  covered_probes : (int, unit) Hashtbl.t;
  flag_sites : int;            (* distinct flag-reading sites seen *)
}

let reads_flags (i : instr) =
  match i with
  | Jcc _ | Cmov _ | Setcc _ | Alu (Adc, _, _, _) | Alu (Sbb, _, _, _)
  | Lahf -> true
  | Jmp _ | Ret | Call _ | Hlt | Mov _ | Movzx _ | Movsx _ | Lea _ | Push _
  | Pop _ | Alu _ | Unary _ | Imul2 _ | MulDiv _ | Shift _ | Leave | Xchg _
  | Nop | Sahf -> false

(* Invert all condition flags so any cc-dependent decision flips. *)
let flip_flags (cpu : Machine.Cpu.t) =
  cpu.Machine.Cpu.cf <- not cpu.Machine.Cpu.cf;
  cpu.Machine.Cpu.zf <- not cpu.Machine.Cpu.zf;
  cpu.Machine.Cpu.sf <- not cpu.Machine.Cpu.sf;
  cpu.Machine.Cpu.o_f <- not cpu.Machine.Cpu.o_f

(* One trace with the k-th..(k+depth-1)-th flag-reading instructions
   flipped; records chain slots and flag-site count. *)
let run_trace ~config ~chain_range ~cov_range img ~func ~args ~flips =
  let t = Runner.setup img ~func ~args in
  let cpu = t.Machine.Exec.cpu in
  let flag_reads = ref 0 in
  let sites = Hashtbl.create 64 in
  let slots = ref [] in
  t.Machine.Exec.on_step <-
    Some
      (fun cpu rip i ->
         (* a gadget fetched via ret: RSP-8 held its address inside the chain *)
         (match chain_range with
          | Some (lo, hi) ->
            let sp = Machine.Cpu.get cpu RSP in
            let slot = Int64.sub sp 8L in
            if Int64.compare lo slot <= 0 && Int64.compare slot hi < 0 then
              slots := slot :: !slots
          | None -> ());
         if reads_flags i then begin
           Hashtbl.replace sites rip ();
           if List.mem !flag_reads flips then flip_flags cpu;
           incr flag_reads
         end);
  let status = Machine.Exec.run ~fuel:config.fuel t in
  let probes = Hashtbl.create 16 in
  (match cov_range with
   | Some (lo, hi) ->
     let n = Int64.to_int (Int64.sub hi lo) in
     for k = 0 to n - 1 do
       match Machine.Memory.read_u8_opt cpu.Machine.Cpu.mem
               (Int64.add lo (Int64.of_int k))
       with
       | Some v when v <> 0 -> Hashtbl.replace probes k ()
       | Some _ | None -> ()
     done
   | None -> ());
  (status, !slots, Hashtbl.length sites, probes, !flag_reads)

let explore ?(config = default_config) (img : Image.t) ~func ~args =
  Obs.Trace.with_span ~args:[ ("func", func) ] "ropmemu.explore" @@ fun () ->
  let chain_range =
    match Image.find_section img ".rop" with
    | Some s -> Some (s.Image.sec_addr, Image.section_end s)
    | None -> None
  in
  let cov_range =
    match Image.find_symbol img "__cov" with
    | Some s ->
      Some (s.Image.sym_addr,
            Int64.add s.Image.sym_addr (Int64.of_int s.Image.sym_size))
    | None -> None
  in
  let discovered = Hashtbl.create 256 in
  let covered = Hashtbl.create 32 in
  let faulted = ref 0 in
  let traces = ref 0 in
  let max_sites = ref 0 in
  let record (status, slots, nsites, probes, _) =
    incr traces;
    (match status with
     | Machine.Exec.Fault _ -> incr faulted
     | Machine.Exec.Halted | Machine.Exec.Out_of_fuel -> ());
    List.iter (fun s -> Hashtbl.replace discovered s ()) slots;
    Hashtbl.iter (fun k () -> Hashtbl.replace covered k ()) probes;
    if nsites > !max_sites then max_sites := nsites
  in
  (* baseline trace *)
  let baseline =
    run_trace ~config ~chain_range ~cov_range img ~func ~args ~flips:[]
  in
  record baseline;
  let _, _, _, _, n_flag_reads = baseline in
  (* flip each flag-read occurrence (depth 1), then pairs if allowed *)
  let occ = ref 0 in
  while !occ < n_flag_reads && !traces < config.max_traces do
    record (run_trace ~config ~chain_range ~cov_range img ~func ~args ~flips:[ !occ ]);
    incr occ
  done;
  if config.max_flip_depth >= 2 then begin
    let i = ref 0 in
    while !i < n_flag_reads && !traces < config.max_traces do
      let j = ref (!i + 1) in
      while !j < min n_flag_reads (!i + 8) && !traces < config.max_traces do
        record
          (run_trace ~config ~chain_range ~cov_range img ~func ~args
             ~flips:[ !i; !j ]);
        incr j
      done;
      incr i
    done
  end;
  if Obs.Metrics.enabled () then begin
    let c = Obs.Metrics.count in
    c "ropmemu.explorations" 1;
    c "ropmemu.traces" !traces;
    c "ropmemu.faulted_traces" !faulted;
    c "ropmemu.flag_sites" !max_sites;
    c "ropmemu.discovered_slots" (Hashtbl.length discovered);
    c "ropmemu.covered_probes" (Hashtbl.length covered)
  end;
  { traces = !traces;
    faulted_traces = !faulted;
    discovered_slots = discovered;
    covered_probes = covered;
    flag_sites = !max_sites }
