(* ROPDissector-style static chain analysis (§III-B2).

   Given the image and the address of a chain, walks the chain slots
   abstractly: slot values that point into executable sections are decoded
   as gadgets; a small data-flow domain tracks which registers hold
   chain-popped constants so that the variable-RSP-addend branch encoding
   (pop L; cmov; add rsp, L) can be recognized and *flipped* — exploring
   both the zero and the L displacement.  Produces a ROP CFG over chain
   offsets.

   P2 makes the displacement at a block entry depend on program values the
   static analysis cannot know (abstract Top), so flipped paths stop dead.
   Gadget confusion defeats the complementary "gadget guessing" scan by
   making every stride look like a plausible gadget address while the true
   items sit at unaligned offsets (§V-D, §VII-A2). *)

open X86.Isa

type absval =
  | A_const of int64           (* known value *)
  | A_popped of int64          (* immediate popped from the chain *)
  | A_branch of int64          (* cmov-selected: either 0 or this addend *)
  | A_top

type config = {
  max_blocks : int;
  max_gadget_instrs : int;
}

let default_config = { max_blocks = 4096; max_gadget_instrs = 16 }

type result = {
  blocks : (int64, unit) Hashtbl.t;    (* chain offsets of discovered blocks *)
  branches : int;                      (* branch points recognized & flipped *)
  unresolved : int;                    (* RSP updates with unknown addends *)
  gadgets_seen : (int64, unit) Hashtbl.t;
}

let in_text img a =
  match Image.find_section img ".text" with
  | Some s ->
    Int64.compare s.Image.sec_addr a <= 0
    && Int64.compare a (Image.section_end s) < 0
  | None -> false

let read64 img a =
  let rec bytes k acc =
    if k < 0 then Some acc
    else
      match Image.read_byte img (Int64.add a (Int64.of_int k)) with
      | Some b ->
        bytes (k - 1) (Int64.logor (Int64.shift_left acc 8) (Int64.of_int b))
      | None -> None
  in
  bytes 7 0L

(* decode the gadget at [a]: instructions up to ret / jmp-reg *)
let decode_gadget ~config img a =
  let text = Image.section_exn img ".text" in
  let buf = text.Image.sec_data in
  let off0 = Int64.to_int (Int64.sub a text.Image.sec_addr) in
  let rec go off acc n =
    if n > config.max_gadget_instrs then None
    else
      match X86.Decode.decode buf off with
      | None -> None
      | Some (Ret, _) -> Some (List.rev acc, `Ret)
      | Some (Jmp (J_op _), _) -> Some (List.rev acc, `Jop)
      | Some ((Jmp _ | Jcc _ | Call _ | Hlt), _) -> None
      | Some (i, len) -> go (off + len) (i :: acc) (n + 1)
  in
  if off0 < 0 || off0 >= Bytes.length buf then None else go off0 [] 0

(* --- abstract walk ------------------------------------------------------------ *)

type walk_state = {
  mutable regs : absval array;
}

let aget st r = st.regs.(reg_index r)
let aset st r v = st.regs.(reg_index r) <- v

let analyze ?(config = default_config) (img : Image.t) ~chain_addr ~chain_len =
  Obs.Trace.with_span "ropdissector.analyze" @@ fun () ->
  let blocks = Hashtbl.create 64 in
  let gadgets_seen = Hashtbl.create 64 in
  let branches = ref 0 in
  let unresolved = ref 0 in
  let worklist = Queue.create () in
  Queue.add 0L worklist;
  let in_chain off = Int64.compare off 0L >= 0 && Int64.compare off (Int64.of_int chain_len) < 0 in
  while not (Queue.is_empty worklist)
        && Hashtbl.length blocks < config.max_blocks do
    let entry = Queue.pop worklist in
    if not (Hashtbl.mem blocks entry) && in_chain entry then begin
      Hashtbl.replace blocks entry ();
      (* walk forward from this block entry *)
      let st = { regs = Array.make 16 A_top } in
      let off = ref entry in
      let continue_ = ref true in
      while !continue_ do
        match read64 img (Int64.add chain_addr !off) with
        | None -> continue_ := false
        | Some slot ->
          if not (in_text img slot) then continue_ := false
          else begin
            match decode_gadget ~config img slot with
            | None -> continue_ := false
            | Some (body, ending) ->
              Hashtbl.replace gadgets_seen slot ();
              off := Int64.add !off 8L;
              (* abstract transfer *)
              let rsp_jump = ref None in
              List.iter
                (fun i ->
                   match i with
                   | Pop (Reg r) ->
                     (match read64 img (Int64.add chain_addr !off) with
                      | Some v when in_chain !off ->
                        aset st r (A_popped v)
                      | Some _ | None -> aset st r A_top);
                     off := Int64.add !off 8L
                   | Mov (W64, Reg r, Imm v) -> aset st r (A_const v)
                   | Mov (W64, Reg rd, Reg rs) -> aset st rd (aget st rs)
                   | Cmov (_, rd, Reg rs) ->
                     (* branch encoding: rd becomes 0-or-its-value when the
                        other side is a known zero *)
                     (match aget st rd, aget st rs with
                      | A_popped d, A_const 0L -> aset st rd (A_branch d)
                      | A_const 0L, A_popped d -> aset st rd (A_branch d)
                      | _, _ -> aset st rd A_top)
                   | Alu (Add, W64, Reg RSP, Reg r) ->
                     rsp_jump := Some (aget st r)
                   | Alu (Add, W64, Reg RSP, Imm v) ->
                     (* unaligned skew updates also land here *)
                     off := Int64.add !off v
                   | Alu (Add, W64, Reg rd, Reg rs) ->
                     (match aget st rd, aget st rs with
                      | A_popped a, A_const b | A_const b, A_popped a ->
                        aset st rd (A_popped (Int64.add a b))
                      | A_const a, A_const b -> aset st rd (A_const (Int64.add a b))
                      | _, _ -> aset st rd A_top)
                   | Alu (_, _, Reg rd, _) -> aset st rd A_top
                   | Imul2 (_, rd, _) -> aset st rd A_top
                   | Unary (_, _, Reg rd) -> aset st rd A_top
                   | Movzx (_, _, rd, _) | Movsx (_, _, rd, _) -> aset st rd A_top
                   | Lea (rd, _) -> aset st rd A_top
                   | MulDiv _ ->
                     aset st RAX A_top;
                     aset st RDX A_top
                   | Shift (_, _, Reg rd, _) -> aset st rd A_top
                   | Setcc (_, Reg rd) -> aset st rd A_top
                   | Mov _ | Cmov _ | Alu _ | Unary _ | Shift _ | Setcc _
                   | Push _ | Pop _ | Xchg _ | Lahf | Sahf | Nop | Leave
                   | Hlt | Ret | Jmp _ | Jcc _ | Call _ -> ())
                body;
              (match ending with
               | `Jop ->
                 (* stack switch / tail call: block ends *)
                 continue_ := false
               | `Ret ->
                 (match !rsp_jump with
                  | None -> ()     (* plain gadget: fall through to next slot *)
                  | Some (A_const d) | Some (A_popped d) ->
                    (* unconditional transfer *)
                    Queue.add (Int64.add !off d) worklist;
                    continue_ := false
                  | Some (A_branch d) ->
                    (* recognized branch: flip it — both paths *)
                    incr branches;
                    Queue.add !off worklist;
                    Queue.add (Int64.add !off d) worklist;
                    continue_ := false
                  | Some A_top ->
                    incr unresolved;
                    continue_ := false))
          end
      done
    end
  done;
  if Obs.Metrics.enabled () then begin
    let c = Obs.Metrics.count in
    c "ropdissector.analyses" 1;
    c "ropdissector.blocks" (Hashtbl.length blocks);
    c "ropdissector.branches" !branches;
    c "ropdissector.unresolved" !unresolved;
    c "ropdissector.gadgets_seen" (Hashtbl.length gadgets_seen)
  end;
  { blocks; branches = !branches; unresolved = !unresolved; gadgets_seen }

(* --- gadget guessing (speculative scan, §V-D) ---------------------------------- *)

type guess_result = {
  candidates : int;            (* plausible gadget addresses found *)
  candidate_offsets : int list;
}

(* Scan the chain region: every [stride]-aligned 8-byte window whose value
   points at a decodable gadget is a candidate block start.  With gadget
   confusion on, disguised immediates and unaligned strides make this
   explode (§VII-A2). *)
let gadget_guess ?(config = default_config) ?(stride = 1) (img : Image.t)
    ~chain_addr ~chain_len =
  Obs.Trace.with_span "ropdissector.gadget_guess" @@ fun () ->
  let offs = ref [] in
  let count = ref 0 in
  let off = ref 0 in
  while !off + 8 <= chain_len do
    (match read64 img (Int64.add chain_addr (Int64.of_int !off)) with
     | Some v when in_text img v ->
       (match decode_gadget ~config img v with
        | Some _ ->
          incr count;
          offs := !off :: !offs
        | None -> ())
     | Some _ | None -> ());
    off := !off + stride
  done;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.count "ropdissector.guesses" 1;
    Obs.Metrics.count "ropdissector.guess_candidates" !count
  end;
  { candidates = !count; candidate_offsets = List.rev !offs }
