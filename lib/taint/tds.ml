(* Taint-driven simplification (the Yadegari et al. stand-in, §III-B).

   Operates on a recorded tainted trace: semantics-preserving backward
   simplification removes instructions that contribute neither to the
   program output nor to any input-tainted control decision.  The key
   restriction reproduced from the original system: flows through
   input-tainted conditional jumps must be preserved (no constant
   propagation across them), which is precisely the property P3 exploits to
   survive (§V-C).

   Untainted control transfers (the ROP ret dispatching, constant-folded VM
   dispatch) are simplified away, like TDS untangling "the control flow of
   an obfuscation method apart from that of the original program". *)

type result = {
  total : int;                 (* trace length *)
  kept : Tracer.entry list;    (* simplified trace, program order *)
  n_kept : int;
  n_removed : int;
  tainted_branches : int;      (* input-tainted control decisions (kept) *)
  kept_sites : int;            (* distinct code addresses in the result *)
}

module Locs = struct
  type t = (Tracer.loc, unit) Hashtbl.t

  let create () : t = Hashtbl.create 256
  let mem (t : t) l = Hashtbl.mem t l
  let add (t : t) l = Hashtbl.replace t l ()
  let remove (t : t) l = Hashtbl.remove t l
end

let is_control (i : X86.Isa.instr) =
  match i with
  | X86.Isa.Jmp _ | X86.Isa.Jcc _ | X86.Isa.Ret | X86.Isa.Call _
  | X86.Isa.Hlt -> true
  | X86.Isa.Mov _ | X86.Isa.Movzx _ | X86.Isa.Movsx _ | X86.Isa.Lea _
  | X86.Isa.Push _ | X86.Isa.Pop _ | X86.Isa.Alu _ | X86.Isa.Unary _
  | X86.Isa.Imul2 _ | X86.Isa.MulDiv _ | X86.Isa.Shift _ | X86.Isa.Cmov _
  | X86.Isa.Setcc _ | X86.Isa.Leave | X86.Isa.Xchg _ | X86.Isa.Nop
  | X86.Isa.Lahf | X86.Isa.Sahf -> false

(* The stack pointer is the ROP dispatching register: TDS reconstructs
   control flow separately and strips RSP bookkeeping from the semantic
   slice (like the original removes "the ret sequences"). *)
let semantic_loc = function
  | Tracer.L_reg X86.Isa.RSP -> false
  | Tracer.L_reg _ | Tracer.L_flags | Tracer.L_mem _ -> true

let simplify (trace : Tracer.trace) : result =
  Obs.Trace.with_span "taint.simplify" @@ fun () ->
  let entries = Array.of_list trace.Tracer.entries in
  let n = Array.length entries in
  let keep = Array.make n false in
  let live = Locs.create () in
  (* the program output: RAX at the end *)
  Locs.add live (Tracer.L_reg X86.Isa.RAX);
  let tainted_branches = ref 0 in
  for i = n - 1 downto 0 do
    let e = entries.(i) in
    let defines_live =
      List.exists
        (fun l -> semantic_loc l && Locs.mem live l)
        e.Tracer.e_writes
    in
    let control_kept = is_control e.Tracer.e_instr && e.Tracer.e_branch_tainted in
    if control_kept then incr tainted_branches;
    if defines_live || control_kept then begin
      keep.(i) <- true;
      (* strong update only when the write set is unambiguous *)
      List.iter (Locs.remove live) e.Tracer.e_writes;
      List.iter
        (fun l -> if semantic_loc l then Locs.add live l)
        e.Tracer.e_reads
    end
  done;
  let kept = ref [] in
  let sites = Hashtbl.create 64 in
  for i = n - 1 downto 0 do
    if keep.(i) then begin
      kept := entries.(i) :: !kept;
      Hashtbl.replace sites entries.(i).Tracer.e_rip ()
    end
  done;
  let n_kept = List.length !kept in
  if Obs.Metrics.enabled () then begin
    let c = Obs.Metrics.count in
    c "taint.traces" 1;
    c "taint.trace_entries" n;
    c "taint.kept" n_kept;
    c "taint.removed" (n - n_kept);
    c "taint.tainted_branches" !tainted_branches;
    Obs.Metrics.observe_named "taint.kept_sites" (Hashtbl.length sites)
  end;
  { total = n;
    kept = !kept;
    n_kept;
    n_removed = n - n_kept;
    tainted_branches = !tainted_branches;
    kept_sites = Hashtbl.length sites }

(* Convenience: record and simplify in one step. *)
let run ?(fuel = 2_000_000) img ~func ~n_inputs ~input =
  simplify
    (Obs.Trace.with_span ~args:[ ("func", func) ] "taint.record" (fun () ->
         Tracer.record ~fuel img ~func ~n_inputs ~input))
