(* Attack-campaign grids: attacker x configuration x budget x target.

   A grid is the declarative description of a campaign; [cells] expands it
   to the cross product and [cell_key] gives every cell a stable content
   address.  The key doubles as the cell's identity in the lib/jobs result
   cache and as the seed key for its RNG stream ([Util.Rng.of_key]), so a
   cell's outcome is a pure function of its key — the property both the
   resumable-after-SIGINT contract and serial-equals-parallel rest on.

   Budgets are deliberately expressed in deterministic units (solver
   evaluations, engine states) rather than wall seconds: two runs of the
   same cell must reach the same verdict byte-for-byte, on a loaded CI box
   or an idle laptop alike.  Wall clock exists only as a generous safety
   net per cell. *)

type attacker = {
  atk_name : string;
  atk_kind : [ `Dse | `Se ];
  atk_portfolio : bool;        (* race solver strategies (Solver.Portfolio) *)
  atk_toa : bool;              (* per-page theory-of-arrays memory model *)
}

let attackers_all =
  [ { atk_name = "dse"; atk_kind = `Dse; atk_portfolio = false; atk_toa = false };
    { atk_name = "dse-portfolio"; atk_kind = `Dse; atk_portfolio = true;
      atk_toa = false };
    { atk_name = "dse-toa"; atk_kind = `Dse; atk_portfolio = false;
      atk_toa = true };
    { atk_name = "se"; atk_kind = `Se; atk_portfolio = false; atk_toa = false };
    { atk_name = "se-portfolio"; atk_kind = `Se; atk_portfolio = true;
      atk_toa = false } ]

type budget_pt = {
  bp_name : string;            (* e.g. "8k" *)
  bp_solver_evals : int;       (* per solver query *)
  bp_total_evals : int;        (* run-wide solver-eval cap *)
  bp_max_states : int;         (* paths (DSE) / states (SE) explored *)
  bp_max_instrs : int;         (* total symbolic instructions *)
}

(* A budget point scales every engine limit off the solver-eval count so
   deterministic budgets — instructions executed, solver evaluations spent
   — are what end a losing cell, never the wall-clock safety net.
   Wall-bounded cells would make outcomes depend on machine load, which
   the byte-identical-resume contract forbids. *)
let budget_of_evals name evals =
  { bp_name = name;
    bp_solver_evals = evals;
    bp_total_evals = evals * 10;
    bp_max_states = max 16 (evals / 250);
    bp_max_instrs = evals * 1000 }

(* the default budget ladder: the x axis of a crossover curve *)
let budget_ladder =
  List.map
    (fun evals ->
       budget_of_evals (Printf.sprintf "%dk" (evals / 1000)) evals)
    [ 1_000; 2_000; 4_000; 8_000; 16_000 ]

type target_spec = {
  tg_name : string;
  tg_seed : int;
  tg_input_size : int;
  tg_control : int;            (* Table IV control-structure index *)
  tg_loop : int;               (* RandomFuns loop bound *)
}

let mk_target ~seed ~input_size ~control =
  { tg_name = Printf.sprintf "s%d-i%d-c%d" seed input_size control;
    tg_seed = seed; tg_input_size = input_size; tg_control = control;
    tg_loop = 3 }

type t = {
  g_name : string;
  attackers : attacker list;
  configs : Harness.Configs.named list;
  budgets : budget_pt list;
  targets : target_spec list;
}

type cell = {
  cl_attacker : attacker;
  cl_config : Harness.Configs.named;
  cl_budget : budget_pt;
  cl_target : target_spec;
}

let cells g =
  List.concat_map
    (fun a ->
       List.concat_map
         (fun c ->
            List.concat_map
              (fun b -> List.map (fun t ->
                   { cl_attacker = a; cl_config = c; cl_budget = b;
                     cl_target = t })
                  g.targets)
              g.budgets)
         g.configs)
    g.attackers

let size g =
  List.length g.attackers * List.length g.configs * List.length g.budgets
  * List.length g.targets

(* The cell's stable identity: every axis value that changes the outcome is
   spelled out (never a list index), so editing a grid invalidates exactly
   the cells whose meaning changed. *)
let cell_key g cl =
  Printf.sprintf "campaign/%s/%s/%s/%s/%s" g.g_name cl.cl_attacker.atk_name
    cl.cl_config.Harness.Configs.name cl.cl_budget.bp_name
    cl.cl_target.tg_name

let config_named name =
  match
    List.find_opt
      (fun (c : Harness.Configs.named) -> c.Harness.Configs.name = name)
      (Harness.Configs.table2_configs @ Harness.Configs.layer_configs)
  with
  | Some c -> c
  | None -> invalid_arg ("unknown configuration: " ^ name)

let attacker_named name =
  match List.find_opt (fun a -> a.atk_name = name) attackers_all with
  | Some a -> a
  | None -> invalid_arg ("unknown attacker: " ^ name)

let budget_named name =
  match List.find_opt (fun b -> b.bp_name = name) budget_ladder with
  | Some b -> b
  | None ->
    (* "<n>k" outside the ladder *)
    (try
       Scanf.sscanf name "%dk%!" (fun k -> budget_of_evals name (k * 1000))
     with Scanf.Scan_failure _ | Failure _ | End_of_file ->
       invalid_arg ("unknown budget: " ^ name))

(* 2 attackers x 5 configs x 5 budgets x 4 targets = 200 cells *)
let default =
  { g_name = "default";
    attackers = [ attacker_named "dse"; attacker_named "dse-portfolio" ];
    configs =
      List.map config_named
        [ "NATIVE"; "ROP_0.25"; "ROP_1.00"; "2VM"; "2VM-IMPall" ];
    budgets = budget_ladder;
    targets =
      [ mk_target ~seed:1 ~input_size:1 ~control:1;
        mk_target ~seed:2 ~input_size:1 ~control:2;
        mk_target ~seed:1 ~input_size:2 ~control:1;
        mk_target ~seed:2 ~input_size:2 ~control:5 ] }

(* 2 x 2 x 2 x 1 = 8 cells: the CI smoke grid *)
let tiny =
  { g_name = "tiny";
    attackers = [ attacker_named "dse"; attacker_named "dse-portfolio" ];
    configs = List.map config_named [ "NATIVE"; "ROP_1.00" ];
    budgets = List.map budget_named [ "1k"; "2k" ];
    targets = [ mk_target ~seed:1 ~input_size:1 ~control:1 ] }

(* Grid specs: a preset name ("tiny", "default"), or a custom description
   "name:attackers=dse,dse-portfolio;configs=NATIVE,ROP_1.00;budgets=1k,4k;
   targets=s1-i1-c1,s2-i2-c5". *)
let parse spec =
  match spec with
  | "tiny" -> tiny
  | "default" -> default
  | _ ->
    let name, body =
      match String.index_opt spec ':' with
      | Some i ->
        (String.sub spec 0 i,
         String.sub spec (i + 1) (String.length spec - i - 1))
      | None -> invalid_arg ("bad grid spec (no name): " ^ spec)
    in
    let g = ref { default with g_name = name } in
    List.iter
      (fun field ->
         match String.index_opt field '=' with
         | None -> invalid_arg ("bad grid field: " ^ field)
         | Some i ->
           let k = String.sub field 0 i in
           let vs =
             String.split_on_char ','
               (String.sub field (i + 1) (String.length field - i - 1))
           in
           (match k with
            | "attackers" ->
              g := { !g with attackers = List.map attacker_named vs }
            | "configs" -> g := { !g with configs = List.map config_named vs }
            | "budgets" -> g := { !g with budgets = List.map budget_named vs }
            | "targets" ->
              g :=
                { !g with
                  targets =
                    List.map
                      (fun v ->
                         try
                           Scanf.sscanf v "s%d-i%d-c%d%!" (fun s i c ->
                               mk_target ~seed:s ~input_size:i ~control:c)
                         with Scanf.Scan_failure _ | Failure _ | End_of_file ->
                           invalid_arg ("bad target spec: " ^ v))
                      vs }
            | _ -> invalid_arg ("unknown grid axis: " ^ k)))
      (List.filter (fun s -> s <> "") (String.split_on_char ';' body));
    !g
