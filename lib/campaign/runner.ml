(* Distributed attack-campaign runner.

   Sweeps a Grid.t over a Jobs.Pool: one pool job per cell (attacker x
   configuration x budget x target), each generating its RandomFuns target,
   applying the obfuscation, and running the attack engine with the cell's
   deterministic budget.  Results flow back as plain data and are
   aggregated into crossover curves — attack success as a function of
   budget, one curve per (attacker, configuration).

   Resumability: cells are cached in a lib/jobs content-addressed store
   keyed by [Grid.cell_key].  A run killed by SIGINT keeps every completed
   cell; re-running with [resume = true] serves those from the cache and
   computes only the remainder.  Because each cell is a pure function of
   its key (eval/state budgets, [Util.Rng.of_key] seeding, no wall-clock
   dependence in any artifact field), the resumed artifact is byte-identical
   to an uninterrupted run's — test_campaign.ml holds the runner to that.

   The solver memo (Solver.Memo) is created fresh per cell: a memo shared
   across cells could let one cell's cached model pick another cell's DSE
   witness, making results depend on execution order and breaking both
   serial-equals-parallel and resume determinism.  Pointing [solver_cache]
   at a directory opts into cross-cell sharing for throughput work where
   that trade is acceptable. *)

module E = Symex.Engine
module Solver = Symex.Solver

type cell_result = {
  cr_attacker : string;
  cr_config : string;
  cr_budget : string;
  cr_target : string;
  cr_solver_evals_budget : int;
  cr_outcome : string;         (* found | timeout | obf-failed | failed: m *)
  cr_found : bool;
  cr_states : int;
  cr_instrs : int;
  cr_evals : int;              (* solver evaluations actually spent *)
  cr_memo_hits : int;          (* per-cell solver memo *)
  cr_memo_stores : int;
}

type opts = {
  jobs : int;
  cache_dir : string;
  resume : bool;               (* false: clear the cell cache first *)
  out_dir : string;
  manifest : Jobs.Manifest.t option;
  progress : bool;
  solver_cache : string option;(* cross-cell on-disk solver memo (opt-in) *)
  wall_safety_s : float;       (* per-cell wall net; never the binding limit *)
  cache_max_bytes : int option;(* prune the cell cache to this after the run *)
}

let default_opts =
  { jobs = 1; cache_dir = "_campaign_cache"; resume = false;
    out_dir = "_campaign"; manifest = None; progress = false;
    solver_cache = None; wall_safety_s = 120.0; cache_max_bytes = None }

(* --- one cell ---------------------------------------------------------------- *)

let run_cell ~wall_safety_s ~solver_cache ~key (cl : Grid.cell) =
  let { Grid.cl_attacker = atk; cl_config = conf; cl_budget = bp;
        cl_target = tg } = cl in
  let t =
    Minic.Randomfuns.generate
      (Minic.Randomfuns.default_params ~loop_size:tg.Grid.tg_loop
         ~seed:tg.Grid.tg_seed ~input_size:tg.Grid.tg_input_size
         ~control_index:tg.Grid.tg_control ~point_test:true ())
  in
  let base =
    { cr_attacker = atk.Grid.atk_name;
      cr_config = conf.Harness.Configs.name;
      cr_budget = bp.Grid.bp_name;
      cr_target = tg.Grid.tg_name;
      cr_solver_evals_budget = bp.Grid.bp_solver_evals;
      cr_outcome = "timeout"; cr_found = false;
      cr_states = 0; cr_instrs = 0; cr_evals = 0;
      cr_memo_hits = 0; cr_memo_stores = 0 }
  in
  match Harness.Configs.apply conf.Harness.Configs.obf t.Minic.Randomfuns.prog
          ~funcs:[ "target" ] with
  | exception Harness.Configs.Obfuscation_failed m ->
    { base with cr_outcome = "obf-failed: " ^ m }
  | img ->
    let budget =
      { E.default_budget with
        E.wall_seconds = wall_safety_s;
        max_states = bp.Grid.bp_max_states;
        max_instrs = bp.Grid.bp_max_instrs;
        path_fuel = bp.Grid.bp_max_instrs;
        solver_evals = bp.Grid.bp_solver_evals;
        total_solver_evals = bp.Grid.bp_total_evals;
        portfolio = atk.Grid.atk_portfolio }
    in
    let tgt =
      { E.img; func = "target"; n_inputs = tg.Grid.tg_input_size }
    in
    (* schedule-independent randomness: the engine seed comes from the cell
       key, never from where in the run the cell executes *)
    let seed =
      Int64.to_int
        (Int64.logand
           (Util.Rng.next64 (Util.Rng.of_key ~seed:0 key))
           0x3FFFFFFFL)
    in
    let memo = Solver.Memo.create ?dir:solver_cache () in
    Solver.set_memo (Some memo);
    Fun.protect ~finally:(fun () -> Solver.set_memo None) @@ fun () ->
    let run = match atk.Grid.atk_kind with `Dse -> E.dse | `Se -> E.se in
    let r =
      run ~toa:atk.Grid.atk_toa ~seed ~goal:E.G_secret ~budget tgt
    in
    { base with
      cr_outcome = (if r.E.secret_input <> None then "found" else "timeout");
      cr_found = r.E.secret_input <> None;
      cr_states = r.E.stats.E.states;
      cr_instrs = r.E.stats.E.instrs;
      cr_evals = r.E.stats.E.solver.Solver.evals;
      cr_memo_hits = memo.Solver.Memo.hits;
      cr_memo_stores = memo.Solver.Memo.stores }

(* --- artifacts ---------------------------------------------------------------

   Only deterministic fields appear in the artifacts (no wall times: those
   live in the manifest), so the files admit byte-for-byte comparison
   between fresh, resumed, serial, and parallel runs.  One caveat: if a
   cell is slow enough that the per-cell wall safety net fires before its
   deterministic budgets do (heavy cells on a heavily loaded box), the
   cells.csv evals/memo columns reflect where the net cut the search; the
   verdict columns and the crossover artifacts — built from found/targets
   alone — stay byte-identical regardless. *)

let cells_csv results =
  Harness.Report.csv
    ~headers:
      [ "attacker"; "config"; "budget"; "target"; "solver_evals_budget";
        "outcome"; "found"; "states"; "instrs"; "evals"; "memo_hits";
        "memo_stores" ]
    (List.map
       (fun r ->
          [ r.cr_attacker; r.cr_config; r.cr_budget; r.cr_target;
            string_of_int r.cr_solver_evals_budget; r.cr_outcome;
            (if r.cr_found then "1" else "0");
            string_of_int r.cr_states; string_of_int r.cr_instrs;
            string_of_int r.cr_evals; string_of_int r.cr_memo_hits;
            string_of_int r.cr_memo_stores ])
       results)

(* curve point: (attacker, config) x budget -> success fraction *)
type point = {
  pt_budget : string;
  pt_evals : int;
  pt_found : int;
  pt_targets : int;
}

type curve = {
  cv_attacker : string;
  cv_config : string;
  cv_points : point list;
}

let crossover (g : Grid.t) results =
  List.concat_map
    (fun (a : Grid.attacker) ->
       List.map
         (fun (c : Harness.Configs.named) ->
            { cv_attacker = a.Grid.atk_name;
              cv_config = c.Harness.Configs.name;
              cv_points =
                List.map
                  (fun (b : Grid.budget_pt) ->
                     let cells =
                       List.filter
                         (fun r ->
                            r.cr_attacker = a.Grid.atk_name
                            && r.cr_config = c.Harness.Configs.name
                            && r.cr_budget = b.Grid.bp_name)
                         results
                     in
                     { pt_budget = b.Grid.bp_name;
                       pt_evals = b.Grid.bp_solver_evals;
                       pt_found =
                         List.length (List.filter (fun r -> r.cr_found) cells);
                       pt_targets = List.length cells })
                  g.Grid.budgets })
         g.Grid.configs)
    g.Grid.attackers

let crossover_csv curves =
  Harness.Report.csv
    ~headers:
      [ "attacker"; "config"; "budget"; "solver_evals"; "found"; "targets";
        "fraction" ]
    (List.concat_map
       (fun cv ->
          List.map
            (fun p ->
               [ cv.cv_attacker; cv.cv_config; p.pt_budget;
                 string_of_int p.pt_evals; string_of_int p.pt_found;
                 string_of_int p.pt_targets;
                 Printf.sprintf "%.3f"
                   (float_of_int p.pt_found
                    /. float_of_int (max 1 p.pt_targets)) ])
            cv.cv_points)
       curves)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let crossover_json (g : Grid.t) curves =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"campaign_crossover/v1\",\"grid\":\"%s\",\"cells\":%d,\"curves\":["
       (json_escape g.Grid.g_name) (Grid.size g));
  List.iteri
    (fun i cv ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf "{\"attacker\":\"%s\",\"config\":\"%s\",\"points\":["
            (json_escape cv.cv_attacker) (json_escape cv.cv_config));
       List.iteri
         (fun j p ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf
                 "{\"budget\":\"%s\",\"solver_evals\":%d,\"found\":%d,\"targets\":%d}"
                 (json_escape p.pt_budget) p.pt_evals p.pt_found p.pt_targets))
         cv.cv_points;
       Buffer.add_string b "]}")
    curves;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* --- the run ------------------------------------------------------------------ *)

type summary = {
  s_results : cell_result list;
  s_cells : int;
  s_found : int;
  s_cache_hits : int;
  s_failed : int;
}

let m_cells = Obs.Metrics.counter "campaign.cells"
let m_found = Obs.Metrics.counter "campaign.found"
let m_cell_failures = Obs.Metrics.counter "campaign.cell_failures"

let run ?(opts = default_opts) (g : Grid.t) =
  if not opts.resume then Jobs.Cache.clear ~dir:opts.cache_dir ();
  let cache = Jobs.Cache.create ~dir:opts.cache_dir () in
  let cells = Grid.cells g in
  let pool =
    { Jobs.Pool.default with
      Jobs.Pool.jobs = opts.jobs;
      cache = Some cache;
      manifest = opts.manifest;
      progress = opts.progress }
  in
  let results =
    Jobs.Pool.map ~label:("campaign/" ^ g.Grid.g_name) pool
      ~key:(Grid.cell_key g)
      ~f:(fun cl ->
          run_cell ~wall_safety_s:opts.wall_safety_s
            ~solver_cache:opts.solver_cache ~key:(Grid.cell_key g cl) cl)
      cells
  in
  let rows =
    List.map2
      (fun cl (r : _ Jobs.Pool.result) ->
         let { Grid.cl_attacker = a; cl_config = c; cl_budget = b;
               cl_target = t } = cl in
         let placeholder outcome =
           { cr_attacker = a.Grid.atk_name;
             cr_config = c.Harness.Configs.name;
             cr_budget = b.Grid.bp_name;
             cr_target = t.Grid.tg_name;
             cr_solver_evals_budget = b.Grid.bp_solver_evals;
             cr_outcome = outcome; cr_found = false; cr_states = 0;
             cr_instrs = 0; cr_evals = 0; cr_memo_hits = 0;
             cr_memo_stores = 0 }
         in
         match r.Jobs.Pool.outcome with
         | Jobs.Pool.Done row -> row
         | Jobs.Pool.Failed m -> placeholder ("failed: " ^ m)
         | Jobs.Pool.Timed_out s ->
           placeholder (Printf.sprintf "pool-timeout: %.0fs" s))
      cells results
  in
  let curves = crossover g rows in
  Harness.Report.write_file
    (Filename.concat opts.out_dir "cells.csv") (cells_csv rows);
  Harness.Report.write_file
    (Filename.concat opts.out_dir "crossover.csv") (crossover_csv curves);
  Harness.Report.write_file
    (Filename.concat opts.out_dir "crossover.json") (crossover_json g curves);
  let found = List.length (List.filter (fun r -> r.cr_found) rows) in
  let failed =
    List.length
      (List.filter (fun r -> not (r.cr_found || r.cr_outcome = "timeout"))
         rows)
  in
  let hits =
    List.length (List.filter (fun r -> r.Jobs.Pool.cached) results)
  in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.add m_cells (List.length rows);
    Obs.Metrics.add m_found found;
    Obs.Metrics.add m_cell_failures failed
  end;
  (* Bound the cell cache after the run: LRU-by-mtime, so a later --resume
     of the *same* grid keeps its hot cells as long as they fit. *)
  (match opts.cache_max_bytes with
   | Some mb -> ignore (Jobs.Cache.prune ~max_bytes:mb cache)
   | None -> ());
  { s_results = rows;
    s_cells = List.length rows;
    s_found = found;
    s_cache_hits = hits;
    s_failed = failed }

(* Console crossover summary: one row per curve, fractions across the
   budget ladder. *)
let print_summary (g : Grid.t) (s : summary) =
  let curves = crossover g s.s_results in
  Harness.Report.table
    ~title:
      (Printf.sprintf "Campaign %s: secrets found / targets per budget"
         g.Grid.g_name)
    ~headers:
      ([ "ATTACKER"; "CONFIG" ]
       @ List.map (fun (b : Grid.budget_pt) -> b.Grid.bp_name)
           g.Grid.budgets)
    (List.map
       (fun cv ->
          [ cv.cv_attacker; cv.cv_config ]
          @ List.map
              (fun p -> Printf.sprintf "%d/%d" p.pt_found p.pt_targets)
              cv.cv_points)
       curves)
