(* Content-addressed on-disk result cache for lib/jobs.

   A cache entry is the marshalled result of one job, filed under
   MD5(salt || key), where [key] is the job's stable identity string (it
   must encode every parameter that affects the result: experiment id,
   configuration name, seed, scale, ...) and [salt] defaults to a digest of
   the running executable, so rebuilding the code invalidates every entry
   without any version bookkeeping.

   Entries are written to a temp file in the cache directory and renamed
   into place, so concurrent runs sharing a cache directory never observe a
   partial entry.  [find] unmarshals to whatever type the caller expects;
   the executable-digest salt is what makes that cast sound — an entry can
   only be read back by the build that wrote it (unless the caller opts
   into an explicit cross-build salt, in which case the stability of its
   result type is the caller's contract). *)

type t = {
  dir : string;
  salt : string;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;     (* entries deleted because they failed to load *)
}

let default_dir = "_jobs_cache"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* One digest of the executable per process: ~ms, paid on first use. *)
let code_salt =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ -> "unsalted")

let create ?salt ?(dir = default_dir) () =
  let salt = match salt with Some s -> s | None -> Lazy.force code_salt in
  mkdir_p dir;
  { dir; salt; hits = 0; misses = 0; corrupt = 0 }

(* The content address of a job key: stable across runs for a fixed salt. *)
let key t k = Digest.to_hex (Digest.string (t.salt ^ "\x00" ^ k))

let path t k = Filename.concat t.dir (key t k)

(* A missing entry is an ordinary miss.  An entry that *exists* but cannot
   be unmarshalled (torn write from a crashed process, disk corruption, or
   a file from a foreign build that slipped past the salt) is deleted on
   the spot and also reported as a miss: the caller recomputes and the next
   [store] heals the slot.  The alternative — raising — would wedge every
   later run on the same poisoned key. *)
let find t k =
  let p = path t k in
  match open_in_bin p with
  | exception Sys_error _ ->
    t.misses <- t.misses + 1;
    None
  | ic ->
    (match
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> Marshal.from_channel ic)
     with
     | v ->
       t.hits <- t.hits + 1;
       Some v
     | exception _ ->
       t.corrupt <- t.corrupt + 1;
       t.misses <- t.misses + 1;
       (try Sys.remove p with Sys_error _ -> ());
       None)

let store t k v =
  match Marshal.to_string v [] with
  | exception Invalid_argument _ -> ()   (* functional value: not cacheable *)
  | s ->
    let tmp = Filename.temp_file ~temp_dir:t.dir "entry" ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc s;
    close_out oc;
    Sys.rename tmp (path t k)

(* Invalidate by removing every entry (the directory is flat). *)
let clear ?(dir = default_dir) () =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

(* --- size accounting and eviction ------------------------------------------ *)

(* Bytes currently held by the cache directory (entries only; the directory
   is flat, subdirectories are ignored). *)
let size_bytes t =
  if not (Sys.file_exists t.dir && Sys.is_directory t.dir) then 0
  else
    Array.fold_left
      (fun acc f ->
         match Unix.stat (Filename.concat t.dir f) with
         | { Unix.st_kind = Unix.S_REG; st_size; _ } -> acc + st_size
         | _ -> acc
         | exception Unix.Unix_error _ -> acc)
      0 (Sys.readdir t.dir)

(* LRU-by-mtime eviction: delete oldest entries until the directory holds at
   most [max_bytes].  "Used" means written — [store] rewrites an entry's
   file, and on filesystems mounting with relatime/noatime the modification
   time is the only recency signal that survives, so a long-lived daemon
   that keeps re-storing hot keys keeps them resident while cold keys age
   out.  Ties (equal mtime, common on coarse-granularity filesystems) break
   by file name, so eviction order is deterministic for a fixed directory
   state.  Returns (entries removed, bytes removed). *)
let prune ~max_bytes t =
  if not (Sys.file_exists t.dir && Sys.is_directory t.dir) then (0, 0)
  else begin
    let entries =
      Array.to_list (Sys.readdir t.dir)
      |> List.filter_map (fun f ->
          let p = Filename.concat t.dir f in
          match Unix.stat p with
          | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
            Some (p, st_size, st_mtime)
          | _ -> None
          | exception Unix.Unix_error _ -> None)
      |> List.sort (fun (pa, _, ma) (pb, _, mb) ->
          match compare ma mb with 0 -> compare pa pb | c -> c)
    in
    let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 entries in
    let excess = ref (total - max_bytes) in
    let removed = ref 0 and removed_bytes = ref 0 in
    List.iter
      (fun (p, sz, _) ->
         if !excess > 0 then begin
           match Sys.remove p with
           | () ->
             excess := !excess - sz;
             incr removed;
             removed_bytes := !removed_bytes + sz
           | exception Sys_error _ -> ()
         end)
      entries;
    (!removed, !removed_bytes)
  end
