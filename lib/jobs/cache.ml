(* Content-addressed on-disk result cache for lib/jobs.

   A cache entry is the marshalled result of one job, filed under
   MD5(salt || key), where [key] is the job's stable identity string (it
   must encode every parameter that affects the result: experiment id,
   configuration name, seed, scale, ...) and [salt] defaults to a digest of
   the running executable, so rebuilding the code invalidates every entry
   without any version bookkeeping.

   Entries are written to a temp file in the cache directory and renamed
   into place, so concurrent runs sharing a cache directory never observe a
   partial entry.  [find] unmarshals to whatever type the caller expects;
   the executable-digest salt is what makes that cast sound — an entry can
   only be read back by the build that wrote it (unless the caller opts
   into an explicit cross-build salt, in which case the stability of its
   result type is the caller's contract). *)

type t = {
  dir : string;
  salt : string;
  mutable hits : int;
  mutable misses : int;
}

let default_dir = "_jobs_cache"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* One digest of the executable per process: ~ms, paid on first use. *)
let code_salt =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ -> "unsalted")

let create ?salt ?(dir = default_dir) () =
  let salt = match salt with Some s -> s | None -> Lazy.force code_salt in
  mkdir_p dir;
  { dir; salt; hits = 0; misses = 0 }

(* The content address of a job key: stable across runs for a fixed salt. *)
let key t k = Digest.to_hex (Digest.string (t.salt ^ "\x00" ^ k))

let path t k = Filename.concat t.dir (key t k)

let find t k =
  match
    let ic = open_in_bin (path t k) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Marshal.from_channel ic)
  with
  | v ->
    t.hits <- t.hits + 1;
    Some v
  | exception _ ->
    t.misses <- t.misses + 1;
    None

let store t k v =
  match Marshal.to_string v [] with
  | exception Invalid_argument _ -> ()   (* functional value: not cacheable *)
  | s ->
    let tmp = Filename.temp_file ~temp_dir:t.dir "entry" ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc s;
    close_out oc;
    Sys.rename tmp (path t k)

(* Invalidate by removing every entry (the directory is flat). *)
let clear ?(dir = default_dir) () =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)
