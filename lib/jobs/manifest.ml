(* Run manifests: one JSON document per CLI invocation, accumulating one
   record per pool run (an `experiments all` invocation runs several pools,
   one per table/figure).  The manifest is the observability artifact the
   pool exports: per-job timing and attempt counts, cache hit/miss totals,
   worker utilization, and whether the run was interrupted — enough to see
   at a glance which cells were recomputed, which came from the cache, and
   where the wall-clock went. *)

type entry = {
  e_key : string;
  e_status : string;           (* ok | failed | timed-out *)
  e_time_s : float;            (* wall clock *)
  e_utime_s : float;           (* user CPU (worker-side Unix.times delta) *)
  e_stime_s : float;           (* system CPU *)
  e_attempts : int;            (* dispatches consumed; 0 for cache hits *)
  e_cached : bool;
}

type run = {
  r_label : string;
  r_jobs : int;
  r_total : int;
  r_ok : int;
  r_failed : int;
  r_timed_out : int;
  r_cache_hits : int;
  r_cache_misses : int;
  r_wall_s : float;
  r_cpu_s : float;             (* summed user+system CPU of resolved jobs:
                                  ~0 for an all-cache-hit run, ~wall*workers
                                  for a full recompute *)
  r_utilization : float;       (* worker busy time / (workers * wall) *)
  r_interrupted : bool;
  r_entries : entry list;
}

type t = { mutable runs : run list }

let create () = { runs = [] }

let add t r = t.runs <- t.runs @ [ r ]

(* --- JSON emission (no external dependency) ------------------------------- *)

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let entry_json b e =
  Printf.bprintf b
    "{\"key\":\"%s\",\"status\":\"%s\",\"time_s\":%.6f,\"utime_s\":%.6f,\
     \"stime_s\":%.6f,\"attempts\":%d,\"cached\":%b}"
    (esc e.e_key) (esc e.e_status) e.e_time_s e.e_utime_s e.e_stime_s
    e.e_attempts e.e_cached

let run_json b r =
  Printf.bprintf b
    "{\"label\":\"%s\",\"jobs\":%d,\"total\":%d,\"ok\":%d,\"failed\":%d,\
     \"timed_out\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"wall_s\":%.6f,\
     \"cpu_s\":%.6f,\"utilization\":%.4f,\"interrupted\":%b,\"entries\":["
    (esc r.r_label) r.r_jobs r.r_total r.r_ok r.r_failed r.r_timed_out
    r.r_cache_hits r.r_cache_misses r.r_wall_s r.r_cpu_s r.r_utilization
    r.r_interrupted;
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_char b ',';
       entry_json b e)
    r.r_entries;
  Buffer.add_string b "]}"

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"runs\":[";
  List.iteri
    (fun i r ->
       if i > 0 then Buffer.add_char b ',';
       run_json b r)
    t.runs;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* Atomic write (temp + rename), creating parent directories as needed. *)
let write t path =
  Cache.mkdir_p (Filename.dirname path);
  let dir =
    let d = Filename.dirname path in
    if d = "" then Filename.current_dir_name else d
  in
  let tmp = Filename.temp_file ~temp_dir:dir "manifest" ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (to_json t);
  close_out oc;
  Sys.rename tmp path
