(* Forked worker pool with marshalled task/result channels.

   [map opts ~key ~f tasks] evaluates [f] over [tasks] on [opts.jobs] worker
   processes and returns the outcomes in input order.  Each worker is a
   [Unix.fork] of the parent: it inherits [f] (and everything [f] closes
   over) through the fork, so only task and result *values* ever cross a
   pipe, each as one marshalled message.  The scheme buys three properties
   a thread pool cannot give this codebase:

   - crash isolation: a worker that raises returns a structured [Failed];
     a worker that dies outright (segfault, OOM kill, [Unix._exit] deep in
     a consumer) is detected by EOF on its result pipe, the job is
     re-dispatched up to [opts.retries] times, and the pool keeps going;
   - per-job wall-clock timeouts: a worker past its deadline is SIGKILLed,
     the job is marked [Timed_out], and a fresh worker is forked in its
     place — one pathological DSE query no longer hangs a whole matrix;
   - determinism: jobs are dispatched in input order to whichever worker is
     idle, but results are keyed by input position, so the returned list —
     and anything printed from it — is byte-identical to a serial run.
     Per-job randomness should come from [Util.Rng.of_key] on the job key,
     which is schedule-independent by construction.

   Serial mode ([opts.jobs <= 1]) runs [f] in-process: exceptions are still
   isolated per job, but timeouts are not enforced (there is no worker to
   kill) and a crash of [f] is a crash of the caller.  Both modes share the
   result cache and manifest bookkeeping, so a serial and a parallel run of
   the same matrix are interchangeable.

   SIGINT: during [map], a handler records the signal; the pool SIGKILLs
   and reaps every worker (no orphans), files a partial run record in the
   manifest (marked interrupted), restores the previous handler, and raises
   [Interrupted] for the CLI to turn into a nonzero exit. *)

exception Interrupted

type 'r outcome =
  | Done of 'r
  | Failed of string       (* worker exception or worker death *)
  | Timed_out of float     (* seconds the job ran before SIGKILL *)

type 'r result = {
  outcome : 'r outcome;
  time_s : float;          (* worker-side wall time; parent-side on timeout *)
  utime_s : float;         (* user CPU spent in [f] (Unix.times delta) *)
  stime_s : float;         (* system CPU spent in [f] *)
  attempts : int;          (* dispatches consumed; 0 for a cache hit *)
  cached : bool;
}

type opts = {
  jobs : int;              (* worker processes; <= 1 runs in-process *)
  timeout_s : float option;(* per-job wall budget (forked mode only) *)
  retries : int;           (* extra dispatches after a worker *death*;
                              a clean exception is deterministic and is
                              never retried *)
  cache : Cache.t option;
  manifest : Manifest.t option;
  progress : bool;         (* live progress line on stderr *)
}

let default =
  { jobs = 1; timeout_s = None; retries = 1; cache = None; manifest = None;
    progress = false }

(* --- worker side ----------------------------------------------------------- *)

(* The worker marshals its result to a string itself, so an unmarshallable
   result (a closure smuggled into a result type) degrades to a [Failed]
   instead of desynchronizing the pipe protocol. *)
type reply = R_ok of string | R_exn of string

(* Everything the worker reports per job: the reply plus its own wall and
   CPU clocks ([Unix.times] deltas — wall time alone cannot distinguish a
   recompute from a job that sat in a page-cache stall) and the delta of
   the metrics registry across [f], so the parent can [Obs.Metrics.absorb]
   per-worker instrumentation into its own registry.  The snapshot is plain
   data and the diff of two identical snapshots is [], so with metrics
   disabled the extra pipe traffic is an empty list. *)
type job_report = {
  jr_idx : int;
  jr_reply : reply;
  jr_wall_s : float;
  jr_utime_s : float;
  jr_stime_s : float;
  jr_metrics : Obs.Metrics.snapshot;
}

let worker_loop (f : 'a -> 'b) ic oc =
  let rec loop () =
    let (idx, task) = (Marshal.from_channel ic : int * 'a) in
    let t0 = Unix.gettimeofday () in
    let tm0 = Unix.times () in
    let m0 = Obs.Metrics.snapshot () in
    let reply =
      match f task with
      | r ->
        (try R_ok (Marshal.to_string r [])
         with Invalid_argument m -> R_exn ("unmarshallable result: " ^ m))
      | exception e -> R_exn (Printexc.to_string e)
    in
    let tm1 = Unix.times () in
    Marshal.to_channel oc
      { jr_idx = idx;
        jr_reply = reply;
        jr_wall_s = Unix.gettimeofday () -. t0;
        jr_utime_s = tm1.Unix.tms_utime -. tm0.Unix.tms_utime;
        jr_stime_s = tm1.Unix.tms_stime -. tm0.Unix.tms_stime;
        jr_metrics = Obs.Metrics.diff m0 (Obs.Metrics.snapshot ()) }
      [];
    flush oc;
    loop ()
  in
  (try loop () with End_of_file | Sys_error _ -> ());
  Unix._exit 0

type worker = {
  w_pid : int;
  w_oc : out_channel;      (* parent -> worker: (index, task) *)
  w_ic : in_channel;       (* worker -> parent: job_report *)
  w_recv : Unix.file_descr;
  (* job index, attempt, dispatch time, deadline (infinity if no timeout) *)
  mutable w_job : (int * int * float * float) option;
}

let spawn ~inherited f =
  (* anything buffered now would be flushed a second time by the child's
     stdio if it ever wrote; keep the child's buffers empty *)
  flush stdout;
  flush stderr;
  let task_r, task_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* Drop every parent-side descriptor, including the pipes of sibling
       workers forked earlier: a sibling can only see the parent's EOF if
       no other process still holds the write end. *)
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      inherited;
    Unix.close task_w;
    Unix.close res_r;
    (* the parent owns shutdown: it SIGKILLs workers deterministically *)
    Sys.set_signal Sys.sigint Sys.Signal_ignore;
    worker_loop f
      (Unix.in_channel_of_descr task_r)
      (Unix.out_channel_of_descr res_w)
  | pid ->
    Unix.close task_r;
    Unix.close res_w;
    { w_pid = pid;
      w_oc = Unix.out_channel_of_descr task_w;
      w_ic = Unix.in_channel_of_descr res_r;
      w_recv = res_r;
      w_job = None }

(* --- parent side ----------------------------------------------------------- *)

let interrupted = ref false

let with_signals k =
  interrupted := false;
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> interrupted := true))
  in
  let old_pipe =
    (* a worker dying mid-dispatch must surface as EPIPE, not kill us *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
        Sys.set_signal Sys.sigint old_int;
        match old_pipe with
        | Some b -> Sys.set_signal Sys.sigpipe b
        | None -> ())
    k

type counters = {
  mutable ok : int;
  mutable failed : int;
  mutable timed_out : int;
  mutable cache_hits : int;
  mutable busy_s : float;
  mutable cpu_s : float;       (* user+system CPU across resolved jobs *)
}

let map ?(label = "jobs") (o : opts) ~(key : 'a -> string) ~(f : 'a -> 'b)
    (tasks : 'a list) : 'b result list =
  let tasks = Array.of_list tasks in
  let keys = Array.map key tasks in
  let n = Array.length tasks in
  let results : 'b result option array = Array.make n None in
  let t_start = Unix.gettimeofday () in
  let c = { ok = 0; failed = 0; timed_out = 0; cache_hits = 0; busy_s = 0.0;
            cpu_s = 0.0 } in
  let max_workers = ref 1 in
  let last_line = ref 0.0 in
  let progress ?(force = false) () =
    if o.progress && n > 0 then begin
      let now = Unix.gettimeofday () in
      if force || now -. !last_line >= 0.1 then begin
        last_line := now;
        Printf.eprintf
          "\r[%s] %d/%d  ok %d  failed %d  timeout %d  cached %d  %.1fs%!"
          label
          (c.ok + c.failed + c.timed_out)
          n c.ok c.failed c.timed_out c.cache_hits (now -. t_start)
      end
    end
  in
  let resolve i (r : 'b result) =
    results.(i) <- Some r;
    (match r.outcome with
     | Done _ -> c.ok <- c.ok + 1
     | Failed _ -> c.failed <- c.failed + 1
     | Timed_out _ -> c.timed_out <- c.timed_out + 1);
    if r.cached then c.cache_hits <- c.cache_hits + 1;
    c.cpu_s <- c.cpu_s +. r.utime_s +. r.stime_s;
    progress ()
  in
  let finalize ~interrupted:intr =
    progress ~force:true ();
    if o.progress && n > 0 then prerr_newline ();
    if Obs.Metrics.enabled () then begin
      let cnt = Obs.Metrics.count in
      cnt "jobs.cells" n;
      cnt "jobs.ok" c.ok;
      cnt "jobs.failed" c.failed;
      cnt "jobs.timed_out" c.timed_out;
      cnt "jobs.cache_hits" c.cache_hits;
      cnt "jobs.cache_misses" (n - c.cache_hits)
    end;
    match o.manifest with
    | None -> ()
    | Some m ->
      let wall = Unix.gettimeofday () -. t_start in
      let entries =
        List.filter_map Fun.id
          (Array.to_list
             (Array.mapi
                (fun i r ->
                   Option.map
                     (fun (r : 'b result) ->
                        { Manifest.e_key = keys.(i);
                          e_status =
                            (match r.outcome with
                             | Done _ -> "ok"
                             | Failed _ -> "failed"
                             | Timed_out _ -> "timed-out");
                          e_time_s = r.time_s;
                          e_utime_s = r.utime_s;
                          e_stime_s = r.stime_s;
                          e_attempts = r.attempts;
                          e_cached = r.cached })
                     r)
                results))
      in
      Manifest.add m
        { Manifest.r_label = label;
          r_jobs = o.jobs;
          r_total = n;
          r_ok = c.ok;
          r_failed = c.failed;
          r_timed_out = c.timed_out;
          r_cache_hits = c.cache_hits;
          r_cache_misses = n - c.cache_hits;
          r_wall_s = wall;
          r_cpu_s = c.cpu_s;
          r_utilization =
            (if wall <= 0.0 then 0.0
             else c.busy_s /. (wall *. float_of_int (max 1 !max_workers)));
          r_interrupted = intr;
          r_entries = entries }
  in
  let interrupted_exit () =
    finalize ~interrupted:true;
    raise Interrupted
  in
  (* resolve cache hits up front; only misses are ever dispatched *)
  let pending = Queue.create () in
  Array.iteri
    (fun i _ ->
       match o.cache with
       | Some cache ->
         (match Cache.find cache keys.(i) with
          | Some v ->
            resolve i
              { outcome = Done v; time_s = 0.0; utime_s = 0.0; stime_s = 0.0;
                attempts = 0; cached = true }
          | None -> Queue.add (i, 1) pending)
       | None -> Queue.add (i, 1) pending)
    tasks;
  let finish_job i reply ~wall ~ut ~st attempts =
    let outcome =
      match reply with
      | R_ok s ->
        let v : 'b = Marshal.from_string s 0 in
        (match o.cache with
         | Some cache -> Cache.store cache keys.(i) v
         | None -> ());
        Done v
      | R_exn m -> Failed m
    in
    resolve i
      { outcome; time_s = wall; utime_s = ut; stime_s = st; attempts;
        cached = false }
  in

  let run_serial () =
    while not (Queue.is_empty pending) do
      if !interrupted then interrupted_exit ();
      let (i, attempt) = Queue.pop pending in
      let t0 = Unix.gettimeofday () in
      let tm0 = Unix.times () in
      let outcome =
        match f tasks.(i) with
        | v ->
          (match o.cache with
           | Some cache -> Cache.store cache keys.(i) v
           | None -> ());
          Done v
        | exception e -> Failed (Printexc.to_string e)
      in
      let tm1 = Unix.times () in
      let dt = Unix.gettimeofday () -. t0 in
      c.busy_s <- c.busy_s +. dt;
      resolve i
        { outcome; time_s = dt;
          utime_s = tm1.Unix.tms_utime -. tm0.Unix.tms_utime;
          stime_s = tm1.Unix.tms_stime -. tm0.Unix.tms_stime;
          attempts = attempt; cached = false }
    done;
    if !interrupted then interrupted_exit ()
  in

  let run_parallel () =
    let workers = ref [] in
    let spawn_one () =
      let inherited =
        List.concat_map
          (fun w ->
             [ Unix.descr_of_out_channel w.w_oc; w.w_recv ])
          !workers
      in
      let w = spawn ~inherited f in
      workers := !workers @ [ w ];
      max_workers := max !max_workers (List.length !workers)
    in
    let reap w =
      match Unix.waitpid [] w.w_pid with
      | (_, Unix.WEXITED code) -> Printf.sprintf "exit %d" code
      | (_, Unix.WSIGNALED s) -> Printf.sprintf "signal %d" s
      | (_, Unix.WSTOPPED s) -> Printf.sprintf "stopped %d" s
      | exception Unix.Unix_error _ -> "unknown"
    in
    let retire w =
      close_out_noerr w.w_oc;
      close_in_noerr w.w_ic;
      workers := List.filter (fun x -> x != w) !workers
    in
    let kill_all () =
      List.iter
        (fun w -> try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ())
        !workers;
      List.iter (fun w -> ignore (reap w)) !workers;
      List.iter
        (fun w -> close_out_noerr w.w_oc; close_in_noerr w.w_ic)
        !workers;
      workers := []
    in
    let requeue_or_fail i attempt msg dt =
      if attempt <= o.retries then Queue.add (i, attempt + 1) pending
      else
        resolve i
          { outcome = Failed msg; time_s = dt; utime_s = 0.0; stime_s = 0.0;
            attempts = attempt; cached = false }
    in
    let dispatch () =
      List.iter
        (fun w ->
           if not (Queue.is_empty pending) then begin
             let (i, attempt) = Queue.pop pending in
             match
               Marshal.to_channel w.w_oc (i, tasks.(i)) [ Marshal.Closures ];
               flush w.w_oc
             with
             | () ->
               let now = Unix.gettimeofday () in
               let deadline =
                 match o.timeout_s with
                 | Some t -> now +. t
                 | None -> infinity
               in
               w.w_job <- Some (i, attempt, now, deadline)
             | exception _ ->
               (* the worker died before accepting the task *)
               (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
               let st = reap w in
               retire w;
               requeue_or_fail i attempt
                 (Printf.sprintf "worker died before accepting task (%s)" st)
                 0.0
           end)
        (List.filter (fun w -> w.w_job = None) !workers)
    in
    let handle_reply w =
      match w.w_job with
      | None -> ()
      | Some (i, attempt, started, _) ->
        (match (Marshal.from_channel w.w_ic : job_report) with
         | jr ->
           w.w_job <- None;
           c.busy_s <- c.busy_s +. (Unix.gettimeofday () -. started);
           (* fold the worker's per-job metric delta into our registry so
              parallel totals match a serial run's *)
           Obs.Metrics.absorb jr.jr_metrics;
           finish_job i jr.jr_reply ~wall:jr.jr_wall_s ~ut:jr.jr_utime_s
             ~st:jr.jr_stime_s attempt
         | exception (End_of_file | Sys_error _ | Failure _) ->
           c.busy_s <- c.busy_s +. (Unix.gettimeofday () -. started);
           let st = reap w in
           retire w;
           requeue_or_fail i attempt
             (Printf.sprintf "worker died (%s)" st)
             (Unix.gettimeofday () -. started))
    in
    let rec loop () =
      if c.ok + c.failed + c.timed_out < n then begin
        if !interrupted then begin
          kill_all ();
          interrupted_exit ()
        end;
        (* keep the pool sized to the outstanding work, respawning after
           deaths and timeouts *)
        let busy_count =
          List.length (List.filter (fun w -> w.w_job <> None) !workers)
        in
        let want = min o.jobs (Queue.length pending + busy_count) in
        for _ = List.length !workers + 1 to want do spawn_one () done;
        dispatch ();
        let busy = List.filter (fun w -> w.w_job <> None) !workers in
        (match busy with
         | [] -> ()   (* every worker died pre-dispatch; loop respawns *)
         | busy ->
           let now = Unix.gettimeofday () in
           let next_deadline =
             List.fold_left
               (fun acc w ->
                  match w.w_job with
                  | Some (_, _, _, dl) -> Float.min acc dl
                  | None -> acc)
               infinity busy
           in
           (* cap the tick so the SIGINT flag is polled even when idle *)
           let select_t =
             if next_deadline = infinity then 0.5
             else Float.max 0.0 (Float.min 0.5 (next_deadline -. now))
           in
           let ready, _, _ =
             try Unix.select (List.map (fun w -> w.w_recv) busy) [] [] select_t
             with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
           in
           List.iter
             (fun fd ->
                match List.find_opt (fun w -> w.w_recv = fd) busy with
                | Some w -> handle_reply w
                | None -> ())
             ready;
           let now = Unix.gettimeofday () in
           List.iter
             (fun w ->
                match w.w_job with
                | Some (i, attempt, started, dl)
                  when now >= dl && List.memq w !workers ->
                  (try Unix.kill w.w_pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  ignore (reap w);
                  retire w;
                  c.busy_s <- c.busy_s +. (now -. started);
                  resolve i
                    { outcome = Timed_out (now -. started);
                      time_s = now -. started; utime_s = 0.0; stime_s = 0.0;
                      attempts = attempt; cached = false }
                | _ -> ())
             busy;
           progress ());
        loop ()
      end
    in
    loop ();
    (* closing the task pipe is the idle workers' EOF; then reap them all *)
    List.iter (fun w -> close_out_noerr w.w_oc) !workers;
    List.iter (fun w -> ignore (reap w); close_in_noerr w.w_ic) !workers;
    workers := []
  in

  with_signals (fun () ->
      if not (Queue.is_empty pending) then
        if o.jobs <= 1 then run_serial ()
        else begin
          max_workers := min o.jobs (Queue.length pending);
          run_parallel ()
        end
      else if !interrupted then interrupted_exit ());
  finalize ~interrupted:false;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> { outcome = Failed "job never resolved"; time_s = 0.0;
                     utime_s = 0.0; stime_s = 0.0;
                     attempts = 0; cached = false })
       results)

(* Run [k] with a fresh manifest accumulator and write it to [path] (when
   given) on normal completion *and* on pool interruption, so a Ctrl-C still
   leaves a partial run manifest behind.  Returns the process exit code;
   interruption maps to 130 (128 + SIGINT). *)
let with_manifest path k =
  let m = Manifest.create () in
  let write () =
    match path with Some p -> Manifest.write m p | None -> ()
  in
  match k m with
  | code -> write (); code
  | exception Interrupted ->
    write ();
    Printf.eprintf "interrupted: workers killed and reaped%s\n%!"
      (match path with
       | Some p -> Printf.sprintf "; partial manifest in %s" p
       | None -> "");
    130
