(* Resident forked worker pool for long-running servers.

   [Pool.map] is batch-shaped: it owns the event loop until every task in a
   list resolves.  A daemon needs the inverse control flow — an external
   event loop (watching sockets as well as workers) that feeds tasks in as
   they arrive and collects results as they finish.  This module keeps the
   worker side of [Pool] (same fork/marshal pipe protocol, same crash
   isolation, same per-job metrics absorption) and inverts the parent side:

     let p = Persist.create ~jobs:4 f in
     ... select ( your fds @ Persist.fds p ) ...
     match Persist.try_submit p task with
     | Some ticket -> ...                  (* dispatched to an idle worker *)
     | None -> ...                         (* all workers busy: queue or shed *)
     List.iter handle (Persist.handle_ready p fd);   (* fd came up readable *)
     List.iter handle (Persist.expire p ~now);       (* enforce timeouts *)

   Workers are forked once at [create] and live for the pool's lifetime, so
   per-worker warm state (lazily built caches inside [f]'s closure) persists
   across jobs — the property the obfuscation server leans on for warm
   rewriter contexts.  A worker that dies is reaped, its job surfaces as
   [Failed], and a replacement is forked so capacity never decays.  A worker
   past its deadline is SIGKILLed and replaced, its job surfacing as
   [Timed_out]. *)

type 'r outcome =
  | Done of 'r
  | Failed of string
  | Timed_out of float

type ('a, 'b) t = {
  p_f : 'a -> 'b;                      (* kept for respawns *)
  p_jobs : int;
  p_timeout_s : float option;
  mutable p_workers : Pool.worker list;
  mutable p_next : int;                (* next ticket *)
  mutable p_stopped : bool;
}

let spawn_one t =
  let inherited =
    List.concat_map
      (fun (w : Pool.worker) ->
         [ Unix.descr_of_out_channel w.Pool.w_oc; w.Pool.w_recv ])
      t.p_workers
  in
  let w = Pool.spawn ~inherited t.p_f in
  t.p_workers <- t.p_workers @ [ w ]

let create ?timeout_s ~jobs (f : 'a -> 'b) : ('a, 'b) t =
  if jobs < 1 then invalid_arg "Jobs.Persist.create: jobs must be >= 1";
  let t =
    { p_f = f; p_jobs = jobs; p_timeout_s = timeout_s; p_workers = [];
      p_next = 0; p_stopped = false }
  in
  for _ = 1 to jobs do spawn_one t done;
  t

let size t = t.p_jobs

let busy t =
  List.length (List.filter (fun w -> w.Pool.w_job <> None) t.p_workers)

let idle t = List.length t.p_workers - busy t

(* Result-pipe descriptors of busy workers: what an external event loop
   should select on alongside its own fds. *)
let fds t =
  List.filter_map
    (fun (w : Pool.worker) ->
       if w.Pool.w_job = None then None else Some w.Pool.w_recv)
    t.p_workers

let next_deadline t =
  List.fold_left
    (fun acc (w : Pool.worker) ->
       match w.Pool.w_job with
       | Some (_, _, _, dl) -> Float.min acc dl
       | None -> acc)
    infinity t.p_workers

let reap (w : Pool.worker) =
  match Unix.waitpid [] w.Pool.w_pid with
  | (_, Unix.WEXITED c) -> Printf.sprintf "exit %d" c
  | (_, Unix.WSIGNALED s) -> Printf.sprintf "signal %d" s
  | (_, Unix.WSTOPPED s) -> Printf.sprintf "stopped %d" s
  | exception Unix.Unix_error _ -> "unknown"

let retire t (w : Pool.worker) =
  close_out_noerr w.Pool.w_oc;
  close_in_noerr w.Pool.w_ic;
  t.p_workers <- List.filter (fun x -> x != w) t.p_workers

(* Replace a dead/killed worker so the pool stays at [p_jobs] capacity. *)
let replace t w =
  retire t w;
  if not t.p_stopped then spawn_one t

(* Dispatch to an idle worker.  [None] means every worker is busy — the
   caller queues or sheds; that admission policy deliberately lives outside
   this module.  A worker that dies on dispatch is replaced and the dispatch
   retried on another idle worker (each attempt consumes a distinct ticket
   only on success). *)
let rec try_submit (t : ('a, 'b) t) (task : 'a) : int option =
  if t.p_stopped then None
  else
    match List.find_opt (fun w -> w.Pool.w_job = None) t.p_workers with
    | None -> None
    | Some w ->
      let ticket = t.p_next in
      (match
         Marshal.to_channel w.Pool.w_oc (ticket, task) [ Marshal.Closures ];
         flush w.Pool.w_oc
       with
       | () ->
         t.p_next <- ticket + 1;
         let now = Unix.gettimeofday () in
         let deadline =
           match t.p_timeout_s with Some s -> now +. s | None -> infinity
         in
         w.Pool.w_job <- Some (ticket, 0, now, deadline);
         Some ticket
       | exception _ ->
         (try Unix.kill w.Pool.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
         ignore (reap w);
         replace t w;
         try_submit t task)

(* A result-pipe descriptor came up readable: collect the finished job.
   Also the place worker *death* is detected (EOF instead of a report). *)
let handle_ready (t : ('a, 'b) t) (fd : Unix.file_descr)
  : (int * 'b outcome * float) option =
  match
    List.find_opt
      (fun w -> w.Pool.w_recv = fd && w.Pool.w_job <> None)
      t.p_workers
  with
  | None -> None
  | Some w ->
    let (ticket, _, started, _) = Option.get w.Pool.w_job in
    (match (Marshal.from_channel w.Pool.w_ic : Pool.job_report) with
     | jr ->
       w.Pool.w_job <- None;
       Obs.Metrics.absorb jr.Pool.jr_metrics;
       let outcome =
         match jr.Pool.jr_reply with
         | Pool.R_ok s -> Done (Marshal.from_string s 0 : 'b)
         | Pool.R_exn m -> Failed m
       in
       Some (ticket, outcome, jr.Pool.jr_wall_s)
     | exception (End_of_file | Sys_error _ | Failure _) ->
       let dt = Unix.gettimeofday () -. started in
       let st = reap w in
       replace t w;
       Some (ticket, Failed (Printf.sprintf "worker died (%s)" st), dt))

(* Kill workers past their deadline; their jobs surface as [Timed_out]. *)
let expire (t : ('a, 'b) t) ~now : (int * 'b outcome * float) list =
  List.filter_map
    (fun (w : Pool.worker) ->
       match w.Pool.w_job with
       | Some (ticket, _, started, dl) when now >= dl ->
         (try Unix.kill w.Pool.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
         ignore (reap w);
         replace t w;
         let dt = now -. started in
         Some (ticket, Timed_out dt, dt)
       | _ -> None)
    t.p_workers

(* Block until one in-flight result is ready (or [timeout_s] passes) and
   collect everything readable.  Convenience for callers without their own
   select loop (drain paths, tests). *)
let poll (t : ('a, 'b) t) ~timeout_s : (int * 'b outcome * float) list =
  let now = Unix.gettimeofday () in
  let expired = expire t ~now in
  if expired <> [] then expired
  else
    match fds t with
    | [] -> []
    | watch ->
      let wait =
        let dl = next_deadline t in
        if dl = infinity then timeout_s
        else Float.max 0.0 (Float.min timeout_s (dl -. now))
      in
      let ready, _, _ =
        try Unix.select watch [] [] wait
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.filter_map (handle_ready t) ready

(* Tear the pool down.  Workers are SIGKILLed rather than asked: a graceful
   close could block forever behind a worker mid-way through writing a large
   reply nobody will read.  Callers wanting in-flight work finished drain
   via [poll] first (the server's signal path does). *)
let shutdown t =
  t.p_stopped <- true;
  List.iter
    (fun (w : Pool.worker) ->
       try Unix.kill w.Pool.w_pid Sys.sigkill with Unix.Unix_error _ -> ())
    t.p_workers;
  List.iter (fun w -> ignore (reap w)) t.p_workers;
  List.iter
    (fun (w : Pool.worker) ->
       close_out_noerr w.Pool.w_oc;
       close_in_noerr w.Pool.w_ic)
    t.p_workers;
  t.p_workers <- []
