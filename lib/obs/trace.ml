(* Bounded ring-buffer span tracer with chrome://tracing export.

   [with_span name f] times the evaluation of [f] and files a completed
   span; spans nest naturally because each call records its own start and
   duration (chrome://tracing reconstructs the stack from containment, so
   no parent ids are needed for a single-threaded trace).  [instant] files
   a zero-duration marker.  The buffer is a fixed-capacity ring: tracing a
   long run costs bounded memory and the export keeps the most recent
   [capacity] spans, oldest first.

   Cost contract: when disabled (the default), [with_span] is one bool load
   and a tail call of the thunk, and [instant] is a bool load — no time
   syscall, no ring write, no allocation beyond what the caller's closure
   itself captures.  Hot loops should not carry spans at all (see
   DESIGN.md); the intended grain is a pipeline phase or an analysis run,
   tens to thousands of spans per process.

   The export is the chrome://tracing / Perfetto JSON array format:
   "X" (complete) events for spans, "i" for instants, and "C" (counter)
   events appended from a metrics snapshot so one file carries both the
   flame view and the final counter values. *)

type span = {
  s_name : string;
  s_ts_us : float;                  (* start, microseconds since enable *)
  s_dur_us : float;                 (* 0 for instants *)
  s_instant : bool;
  s_args : (string * string) list;
}

let default_capacity = 8192

let enabled_flag = ref false
let epoch = ref 0.0
let ring : span array ref = ref [||]
let total = ref 0                   (* spans ever filed; ring slot = total mod cap *)
let dropped () = max 0 (!total - Array.length !ring)

let enabled () = !enabled_flag

let empty_span =
  { s_name = ""; s_ts_us = 0.0; s_dur_us = 0.0; s_instant = false; s_args = [] }

(* Enabling (re)arms the ring and restarts the clock; disabling keeps the
   collected spans so a CLI can stop tracing and then export. *)
let set_enabled ?(capacity = default_capacity) on =
  if on then begin
    if capacity <= 0 then invalid_arg "Obs.Trace: capacity must be positive";
    ring := Array.make capacity empty_span;
    total := 0;
    epoch := Unix.gettimeofday ()
  end;
  enabled_flag := on

let push s =
  let r = !ring in
  let cap = Array.length r in
  if cap > 0 then begin
    r.(!total mod cap) <- s;
    incr total
  end

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let instant ?(args = []) name =
  if !enabled_flag then
    push { s_name = name; s_ts_us = now_us (); s_dur_us = 0.0;
           s_instant = true; s_args = args }

let with_span ?(args = []) name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
          push { s_name = name; s_ts_us = t0; s_dur_us = now_us () -. t0;
                 s_instant = false; s_args = args })
      f
  end

(* Collected spans, oldest first (at most [capacity] of them). *)
let spans () =
  let r = !ring in
  let cap = Array.length r in
  let kept = min !total cap in
  List.init kept (fun i -> r.((!total - kept + i) mod cap))

(* --- chrome://tracing JSON export ---------------------------------------- *)

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let span_json b s =
  if s.s_instant then
    Printf.bprintf b
      "{\"name\":\"%s\",\"cat\":\"raindrop\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":1"
      (esc s.s_name) s.s_ts_us
  else
    Printf.bprintf b
      "{\"name\":\"%s\",\"cat\":\"raindrop\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1"
      (esc s.s_name) s.s_ts_us s.s_dur_us;
  (match s.s_args with
   | [] -> ()
   | args ->
     Buffer.add_string b ",\"args\":{";
     List.iteri
       (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "\"%s\":\"%s\"" (esc k) (esc v))
       args;
     Buffer.add_char b '}');
  Buffer.add_char b '}'

(* Counter events from a metrics snapshot, stamped at the trace end so the
   exported file carries the final counter values alongside the flame
   view.  Histograms expand to .count/.sum; gauges and counters emit one
   event each. *)
let counter_json b ts (k, (v : Metrics.value)) =
  let one name n =
    Printf.bprintf b
      ",{\"name\":\"%s\",\"cat\":\"raindrop\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"args\":{\"value\":%d}}"
      (esc name) ts n
  in
  match v with
  | Metrics.Counter n | Metrics.Gauge n -> one k n
  | Metrics.Hist h -> one (k ^ ".count") h.count; one (k ^ ".sum") h.sum

let to_json ?(metrics : Metrics.snapshot = []) () =
  let b = Buffer.create 4096 in
  let ss = spans () in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"raindrop\"}}";
  List.iter (fun s -> Buffer.add_char b ','; span_json b s) ss;
  let end_ts =
    List.fold_left (fun acc s -> Float.max acc (s.s_ts_us +. s.s_dur_us)) 0.0 ss
  in
  List.iter (counter_json b end_ts) metrics;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* --- schema validation ---------------------------------------------------- *)

(* Validate a chrome://tracing JSON document: the shape chrome accepts and
   the shape [to_json] promises.  Returns the number of events on success.
   Used by test_obs (round-trip) and by the CLIs' --trace path, which
   refuses to write a file that fails its own schema. *)
let validate_json (doc : string) : (int, string) result =
  match Json.parse doc with
  | Error e -> Error e
  | Ok root ->
    (match Json.member "traceEvents" root with
     | None -> Error "missing traceEvents"
     | Some evs ->
       (match Json.to_list evs with
        | None -> Error "traceEvents is not an array"
        | Some evs ->
          let check i ev =
            let str k = Option.bind (Json.member k ev) Json.to_string in
            let num k = Option.bind (Json.member k ev) Json.to_float in
            let fail msg = Error (Printf.sprintf "event %d: %s" i msg) in
            match str "name", str "ph" with
            | None, _ -> fail "missing name"
            | _, None -> fail "missing ph"
            | Some _, Some ph ->
              (match ph with
               | "M" -> Ok ()
               | "X" ->
                 (match num "ts", num "dur" with
                  | Some ts, Some dur ->
                    if ts < 0.0 then fail "negative ts"
                    else if dur < 0.0 then fail "negative dur"
                    else if num "pid" = None || num "tid" = None then
                      fail "missing pid/tid"
                    else Ok ()
                  | _ -> fail "X event missing ts/dur")
               | "i" ->
                 if num "ts" = None then fail "i event missing ts" else Ok ()
               | "C" ->
                 (match num "ts", Json.path [ "args"; "value" ] ev with
                  | Some _, Some (Json.Num _) -> Ok ()
                  | Some _, _ -> fail "C event missing numeric args.value"
                  | None, _ -> fail "C event missing ts")
               | ph -> fail (Printf.sprintf "unknown phase %S" ph))
          in
          let rec go i = function
            | [] -> Ok i
            | ev :: rest ->
              (match check i ev with Ok () -> go (i + 1) rest | Error _ as e -> e)
          in
          go 0 evs))
