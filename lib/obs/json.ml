(* Minimal JSON reader.

   The repo emits JSON by hand (lib/jobs/manifest.ml, bench/main.ml,
   Trace.to_json) and, with this module, can read it back without an
   external dependency: the trace schema validator re-parses what
   Trace.to_json wrote, and bench/main.exe reads the committed
   BENCH_emulator.json baseline for its regression gate.  It is a strict
   recursive-descent parser over the full document — no streaming, no
   extensions beyond standard JSON. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string * int      (* message, byte offset *)

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l; v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           let code =
             try int_of_string ("0x" ^ hex)
             with Failure _ -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           (* Encode the code point as UTF-8; surrogates are passed through
              byte-wise, which is enough for round-tripping our own output
              (the emitters only escape control characters). *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while (match peek () with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance (); skip_ws ();
      if peek () = '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws (); expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((k, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | '[' ->
      advance (); skip_ws ();
      if peek () = ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> parse_number ()
    | c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, off) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" off msg)

(* --- accessors ------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None

(* Follow a path of object keys. *)
let rec path ks v =
  match ks with
  | [] -> Some v
  | k :: rest -> (match member k v with Some v -> path rest v | None -> None)
