(* Typed metrics behind a process-global registry.

   Instrumented code registers a handle once (at module init, a cold path)
   and then records through it:

     let translations = Obs.Metrics.counter "exec.blocks_translated"
     ...
     Obs.Metrics.add translations 1

   The cost contract is the whole point of the design:

   - disabled (the default): [add]/[set]/[observe] are a load of one global
     bool and a conditional branch.  No allocation, no hashing, no store.
     test_obs pins this down with a [Gc.minor_words] check, and the @bench
     alias gates the fast engine's steps/sec against the committed baseline
     with metrics compiled in but disabled.
   - enabled: a handle update is one or two unboxed mutations on a record
     found at registration time; the name table is never touched again.

   Snapshots are plain immutable data — `(string * value) list`, sorted by
   name — so they marshal across the lib/jobs pipe channel as-is.  A forked
   worker inherits the parent's registry through the fork; it reports the
   per-job [diff] of two snapshots and the parent [absorb]s it, so a
   `--jobs N` run accumulates exactly the totals a serial run would (all
   merge operations are commutative and associative: counters and histogram
   buckets add, gauges take the max). *)

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;             (* max_int when empty *)
  mutable h_max : int;             (* min_int when empty *)
  h_buckets : int array;           (* log2 buckets: index = bit width of v *)
}

type metric =
  | M_counter of int ref
  | M_gauge of int ref
  | M_hist of hist

(* Immutable mirror of [metric] for snapshots: marshal-safe plain data. *)
type value =
  | Counter of int
  | Gauge of int
  | Hist of { count : int; sum : int; min_v : int; max_v : int;
              buckets : int array }

type snapshot = (string * value) list

let n_buckets = 64                  (* one per possible bit width of an int *)

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* name -> metric; also an insertion list so registration order is cheap to
   recover, though snapshots sort by name for determinism anyway. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name m =
  match Hashtbl.find_opt registry name with
  | Some existing ->
    (* idempotent re-registration keeps handles stable across modules that
       name the same metric; a kind clash is a programming error *)
    (match existing, m with
     | M_counter _, M_counter _ | M_gauge _, M_gauge _ | M_hist _, M_hist _ ->
       existing
     | _ -> invalid_arg (Printf.sprintf "Obs.Metrics: %s re-registered with a different kind" name))
  | None -> Hashtbl.replace registry name m; m

let counter name =
  match register name (M_counter (ref 0)) with
  | M_counter r -> r
  | _ -> assert false

let gauge name =
  match register name (M_gauge (ref 0)) with
  | M_gauge r -> r
  | _ -> assert false

let histogram name =
  match register name
          (M_hist { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int;
                    h_buckets = Array.make n_buckets 0 })
  with
  | M_hist h -> h
  | _ -> assert false

(* --- record operations (the only calls that may sit near hot code) ------- *)

let add (c : int ref) n = if !enabled_flag then c := !c + n
let incr (c : int ref) = if !enabled_flag then c := !c + 1
let set (g : int ref) v = if !enabled_flag then g := v
let set_max (g : int ref) v = if !enabled_flag && v > !g then g := v

(* log2 bucket = bit width of v; 0 and negatives land in bucket 0 *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do Stdlib.incr b; v := !v lsr 1 done;
    min !b (n_buckets - 1)
  end

let observe (h : hist) v =
  if !enabled_flag then begin
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1
  end

(* Cold-path convenience: record through the name table.  For publish
   functions that run once per pipeline stage, not per retired event. *)
let count name n = add (counter name) n
let observe_named name v = observe (histogram name) v

(* --- snapshots ------------------------------------------------------------ *)

let freeze = function
  | M_counter r -> Counter !r
  | M_gauge r -> Gauge !r
  | M_hist h ->
    Hist { count = h.h_count; sum = h.h_sum; min_v = h.h_min; max_v = h.h_max;
           buckets = Array.copy h.h_buckets }

let is_zero = function
  | Counter 0 | Gauge 0 -> true
  | Hist h -> h.count = 0
  | _ -> false

(* Sorted by name; zero-valued entries dropped so a never-recorded handle
   does not pollute dumps or pipe traffic. *)
let snapshot () =
  Hashtbl.fold (fun k m acc -> (k, freeze m) :: acc) registry []
  |> List.filter (fun (_, v) -> not (is_zero v))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* [diff base cur]: what happened between two snapshots of the same
   registry.  Counters and histograms subtract; a gauge reports its current
   value.  Zero deltas are dropped, so two identical snapshots diff to []. *)
let diff (base : snapshot) (cur : snapshot) : snapshot =
  let base_tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace base_tbl k v) base;
  cur
  |> List.filter_map (fun (k, v) ->
      let v' =
        match v, Hashtbl.find_opt base_tbl k with
        | v, None -> v
        | Counter c, Some (Counter c0) -> Counter (c - c0)
        | Gauge g, Some (Gauge _) -> Gauge g
        | Hist h, Some (Hist h0) ->
          Hist { count = h.count - h0.count; sum = h.sum - h0.sum;
                 min_v = h.min_v; max_v = h.max_v;
                 buckets = Array.mapi (fun i b -> b - h0.buckets.(i)) h.buckets }
        | v, Some _ -> v
      in
      if is_zero v' then None else Some (k, v'))

(* Merge a snapshot (a worker's per-job delta) into the live registry.
   Counter/hist merges are additive, gauges take the max: every operation is
   commutative and associative, so the result is independent of worker
   scheduling and equals the serial run's totals. *)
let absorb (snap : snapshot) =
  List.iter
    (fun (k, v) ->
       match v with
       | Counter n -> add (counter k) n
       | Gauge g -> set_max (gauge k) g
       | Hist h ->
         let dst = histogram k in
         dst.h_count <- dst.h_count + h.count;
         dst.h_sum <- dst.h_sum + h.sum;
         if h.min_v < dst.h_min then dst.h_min <- h.min_v;
         if h.max_v > dst.h_max then dst.h_max <- h.max_v;
         Array.iteri (fun i b -> dst.h_buckets.(i) <- dst.h_buckets.(i) + b)
           h.buckets)
    snap

let reset () =
  Hashtbl.iter
    (fun _ m ->
       match m with
       | M_counter r | M_gauge r -> r := 0
       | M_hist h ->
         h.h_count <- 0; h.h_sum <- 0; h.h_min <- max_int; h.h_max <- min_int;
         Array.fill h.h_buckets 0 n_buckets 0)
    registry

(* --- rendering ------------------------------------------------------------ *)

let pp_value b = function
  | Counter n -> Printf.bprintf b "%d" n
  | Gauge n -> Printf.bprintf b "%d (gauge)" n
  | Hist h ->
    Printf.bprintf b "count %d  sum %d  min %d  max %d  avg %.1f"
      h.count h.sum h.min_v h.max_v
      (if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count)

let render (snap : snapshot) =
  let b = Buffer.create 1024 in
  let w = List.fold_left (fun w (k, _) -> max w (String.length k)) 0 snap in
  List.iter
    (fun (k, v) ->
       Printf.bprintf b "  %-*s  " w k;
       pp_value b v;
       Buffer.add_char b '\n')
    snap;
  Buffer.contents b
