(* CLI wiring: one call shared by the four binaries.

     Obs.Run.with_reporting ~trace ~metrics (fun () -> ...exit code...)

   enables the requested collectors, runs the body, and on the way out
   dumps the metrics snapshot to stderr (--metrics) and writes the
   chrome://tracing JSON (--trace FILE).  The trace is validated against
   Trace.validate_json before it is written; a schema failure — which would
   mean a bug in the emitter — refuses the file and turns the run into a
   nonzero exit, which is what check.sh's @obs smoke leans on. *)

let with_reporting ?(trace : string option) ?(metrics = false) (k : unit -> int) : int =
  if metrics then Metrics.set_enabled true;
  if trace <> None then Trace.set_enabled true;
  (* Tracing implies we want counters in the exported file too. *)
  if trace <> None then Metrics.set_enabled true;
  let code = k () in
  let snap = Metrics.snapshot () in
  if metrics then begin
    Printf.eprintf "== metrics (%d keys) ==\n%s%!" (List.length snap)
      (Metrics.render snap)
  end;
  match trace with
  | None -> code
  | Some path ->
    let doc = Trace.to_json ~metrics:snap () in
    (match Trace.validate_json doc with
     | Ok n ->
       let oc = open_out_bin path in
       output_string oc doc;
       close_out oc;
       Printf.eprintf
         "trace: %d events (%d spans dropped), %d metric keys -> %s (schema ok)\n%!"
         n (Trace.dropped ()) (List.length snap) path;
       code
     | Error e ->
       Printf.eprintf "trace: schema validation failed, not writing %s: %s\n%!"
         path e;
       if code = 0 then 2 else code)
