(* Corpus load generator: replays a (program x config x seed) grid against
   a running daemon from one process multiplexing N connections.

   Two drive modes:
   - closed loop: each connection keeps exactly one request outstanding and
     fires the next on completion — measures sustainable throughput;
   - fixed rate: requests go out on a global schedule (round-robin over the
     connections, pipelined) regardless of completions — measures behaviour
     under offered load, including how much the server sheds.

   Shed (429) and deadline (504) responses are counted, not retried: the
   point of the measurement is the admission-control behaviour itself. *)

type spec = { g_prog : string; g_config : string; g_seed : int }

type mode = Closed | Rate of float   (* requests/second *)

type result = {
  r_wall_s : float;
  r_sent : int;
  r_completed : int;           (* rewrite replies received *)
  r_hits : int;
  r_misses : int;
  r_coalesced : int;
  r_shed : int;                (* 429 *)
  r_expired : int;             (* 504 *)
  r_errors : int;              (* other error responses *)
  r_rps : float;               (* completed / wall *)
  r_p50_ms : float;
  r_p90_ms : float;
  r_p99_ms : float;
  r_hit_rate : float;          (* percent of completions served from cache *)
}

type cstate = {
  l_fd : Unix.file_descr;
  l_defr : Protocol.deframer;
  mutable l_out : string;
  mutable l_inflight : (int, float) Hashtbl.t;   (* id -> send time *)
  mutable l_eof : bool;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p /. 100.0 *. float_of_int (n - 1) +. 0.5)))

let run ~socket ~conns ?(want_image = false) ?(mode = Closed)
    ?(duration_s = 5.0) ?(max_wall_s = 600.0) ~specs ~rounds () :
  (result, string) Stdlib.result =
  if specs = [] then Error "empty spec list"
  else if conns < 1 then Error "need at least one connection"
  else begin
    ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
    let connect_one () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () ->
        Unix.set_nonblock fd;
        Ok { l_fd = fd; l_defr = Protocol.deframer (); l_out = "";
             l_inflight = Hashtbl.create 8; l_eof = false }
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "connect %s: %s" socket (Unix.error_message e))
    in
    let rec mk acc n =
      if n = 0 then Ok (List.rev acc)
      else
        match connect_one () with
        | Ok c -> mk (c :: acc) (n - 1)
        | Error m ->
          List.iter (fun c -> try Unix.close c.l_fd with _ -> ()) acc;
          Error m
    in
    match mk [] conns with
    | Error m -> Error m
    | Ok cs ->
      let cs = Array.of_list cs in
      let next_id = ref 1 in
      let sent = ref 0 and completed = ref 0 in
      let hits = ref 0 and misses = ref 0 and coalesced = ref 0 in
      let shed = ref 0 and expired = ref 0 and errors = ref 0 in
      let lats = ref [] in
      let closed_todo =
        ref
          (List.concat
             (List.init rounds (fun _ -> specs)))
      in
      let cycle = ref [] in
      let next_spec_rate () =
        (match !cycle with [] -> cycle := specs | _ -> ());
        match !cycle with
        | s :: rest -> cycle := rest; s
        | [] -> assert false
      in
      let t0 = Unix.gettimeofday () in
      let t_end = t0 +. duration_s in
      let next_send = ref t0 in
      let rr = ref 0 in
      let send c (s : spec) =
        let id = !next_id in
        next_id := id + 1;
        let req =
          { Protocol.rq_id = id;
            rq_body =
              Protocol.Rewrite
                { Protocol.q_prog = Some s.g_prog; q_digest = None;
                  q_config = s.g_config; q_seed = s.g_seed;
                  q_want_image = want_image } }
        in
        c.l_out <- c.l_out ^ Protocol.frame (Protocol.encode_request req);
        Hashtbl.replace c.l_inflight id (Unix.gettimeofday ());
        incr sent
      in
      let on_response c payload =
        match Protocol.decode_response payload with
        | Error _ -> incr errors
        | Ok rs ->
          let take () =
            match Hashtbl.find_opt c.l_inflight rs.Protocol.rs_id with
            | None -> None
            | Some t_send ->
              Hashtbl.remove c.l_inflight rs.Protocol.rs_id;
              Some t_send
          in
          (match rs.Protocol.rs_body with
           | Protocol.R_rewrite r ->
             (match take () with
              | None -> ()
              | Some t_send ->
                incr completed;
                lats := (Unix.gettimeofday () -. t_send) *. 1000.0 :: !lats;
                (match r.Protocol.rr_cache with
                 | Protocol.Hit -> incr hits
                 | Protocol.Miss -> incr misses
                 | Protocol.Coalesced -> incr coalesced))
           | Protocol.R_error e ->
             ignore (take ());
             if e.code = 429 then incr shed
             else if e.code = 504 then incr expired
             else incr errors
           | _ -> ())
      in
      let flush c =
        if c.l_out <> "" && not c.l_eof then
          match
            Unix.write_substring c.l_fd c.l_out 0 (String.length c.l_out)
          with
          | n -> c.l_out <- String.sub c.l_out n (String.length c.l_out - n)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (_, _, _) -> c.l_eof <- true
      in
      let read c =
        let buf = Bytes.create 65536 in
        let rec go () =
          if c.l_eof then ()
          else
            match Unix.read c.l_fd buf 0 (Bytes.length buf) with
            | 0 -> c.l_eof <- true
            | n ->
              (match Protocol.feed c.l_defr (Bytes.sub_string buf 0 n) with
               | Error _ -> c.l_eof <- true
               | Ok frames -> List.iter (on_response c) frames; go ())
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error (_, _, _) -> c.l_eof <- true
        in
        go ()
      in
      let inflight_total () =
        Array.fold_left (fun acc c -> acc + Hashtbl.length c.l_inflight) 0 cs
      in
      let alive () = Array.exists (fun c -> not c.l_eof) cs in
      let finished now =
        match mode with
        | Closed -> !closed_todo = [] && inflight_total () = 0
        | Rate _ -> now >= t_end && inflight_total () = 0
      in
      let deadline = t0 +. max_wall_s in
      let err = ref None in
      let rec loop () =
        let now = Unix.gettimeofday () in
        if now > deadline then err := Some "load generator timed out"
        else if not (alive ()) && inflight_total () > 0 then
          err := Some "server closed connections with requests in flight"
        else if finished now then ()
        else begin
          (* issue new work *)
          (match mode with
           | Closed ->
             Array.iter
               (fun c ->
                  if (not c.l_eof) && Hashtbl.length c.l_inflight = 0 then
                    match !closed_todo with
                    | [] -> ()
                    | s :: rest -> closed_todo := rest; send c s)
               cs
           | Rate r ->
             let dt = 1.0 /. Float.max 0.001 r in
             while !next_send <= now && now < t_end do
               let c = cs.(!rr mod Array.length cs) in
               incr rr;
               if not c.l_eof then send c (next_spec_rate ());
               next_send := !next_send +. dt
             done);
          let rfds =
            Array.to_list cs
            |> List.filter_map (fun c -> if c.l_eof then None else Some c.l_fd)
          in
          let wfds =
            Array.to_list cs
            |> List.filter_map (fun c ->
                if c.l_out <> "" && not c.l_eof then Some c.l_fd else None)
          in
          let timeout =
            match mode with
            | Rate _ -> Float.max 0.0 (Float.min 0.05 (!next_send -. now))
            | Closed -> 0.25
          in
          (match Unix.select rfds wfds [] timeout with
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
           | ready_r, ready_w, _ ->
             Array.iter
               (fun c -> if List.mem c.l_fd ready_w then flush c)
               cs;
             Array.iter
               (fun c -> if List.mem c.l_fd ready_r then read c)
               cs);
          if !err = None then loop ()
        end
      in
      loop ();
      let wall = Unix.gettimeofday () -. t0 in
      Array.iter (fun c -> try Unix.close c.l_fd with _ -> ()) cs;
      match !err with
      | Some m -> Error m
      | None ->
        let sorted = Array.of_list !lats in
        Array.sort compare sorted;
        Ok { r_wall_s = wall;
             r_sent = !sent;
             r_completed = !completed;
             r_hits = !hits;
             r_misses = !misses;
             r_coalesced = !coalesced;
             r_shed = !shed;
             r_expired = !expired;
             r_errors = !errors;
             r_rps = float_of_int !completed /. Float.max 1e-9 wall;
             r_p50_ms = percentile sorted 50.0;
             r_p90_ms = percentile sorted 90.0;
             r_p99_ms = percentile sorted 99.0;
             r_hit_rate =
               (if !completed = 0 then 0.0
                else 100.0 *. float_of_int !hits /. float_of_int !completed) }
  end
